// Batch throughput: evaluate a §6.1-style workload of imprecise queries
// through QueryEngine::RunBatch at increasing thread counts and report the
// wall-clock speedup. Demonstrates that answers are identical at every
// thread count (the engine's const query paths share no mutable state).
//
//   build/examples/batch_throughput [--threads=N]
//
// With --threads=N only that thread count is run; otherwise 1, 2, 4 and
// all hardware threads are swept.

#include <cstdio>
#include <vector>

#include "benchutil/harness.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"

using namespace ilq;

int main(int argc, char** argv) {
  // A scaled-down California-like dataset (see bench/bench_common.h for
  // the full paper configuration).
  SyntheticConfig points_config;
  points_config.count = 20000;
  points_config.seed = 20070415;
  std::vector<PointObject> points =
      GenerateCaliforniaLikePoints(points_config);

  RectangleConfig rects_config;
  rects_config.base.count = 15000;
  rects_config.base.seed = 20070416;
  Result<std::vector<UncertainObject>> objects =
      MakeUniformUncertainObjects(GenerateLongBeachLikeRects(rects_config));
  ILQ_CHECK(objects.ok(), objects.status().ToString());

  Result<QueryEngine> built = QueryEngine::Build(
      std::move(points), std::move(*objects), EngineConfig{});
  ILQ_CHECK(built.ok(), built.status().ToString());
  const QueryEngine engine = std::move(built).ValueOrDie();

  WorkloadConfig wc;
  wc.queries = 200;
  Result<Workload> workload = GenerateWorkload(wc);
  ILQ_CHECK(workload.ok(), workload.status().ToString());
  const BatchSpec spec{workload->spec};

  std::vector<size_t> sweep;
  const size_t requested = BenchThreads(argc, argv, /*fallback=*/0);
  if (requested > 0) {
    sweep.push_back(requested);
  } else {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4},
                           ThreadPool::DefaultThreadCount()}) {
      if (sweep.empty() || sweep.back() < threads) sweep.push_back(threads);
    }
  }

  std::printf("IPQ batch: %zu queries over %zu points / %zu uncertain "
              "objects\n\n",
              workload->issuers.size(), engine.points().size(),
              engine.uncertains().size());
  std::printf("%8s  %12s  %12s  %10s\n", "threads", "wall (ms)",
              "queries/s", "speedup");
  double baseline_wall = 0.0;
  bool first_run = true;
  std::vector<AnswerSet> baseline_answers;
  for (size_t threads : sweep) {
    BatchOptions options;
    options.threads = threads;
    const BatchResult result =
        engine.RunBatch(QueryMethod::kIpq, workload->issuers, spec, options);
    if (first_run) {
      first_run = false;
      baseline_wall = result.wall_ms;
      baseline_answers = result.answers;
    } else {
      ILQ_CHECK(result.answers == baseline_answers,
                "parallel answers must match the first run exactly");
    }
    const bool timed = result.wall_ms > 0.0;
    const double qps =
        timed ? 1000.0 * static_cast<double>(result.answers.size()) /
                    result.wall_ms
              : 0.0;
    std::printf("%8zu  %12.1f  %12.0f  %9.2fx\n", result.threads_used,
                result.wall_ms, qps,
                timed ? baseline_wall / result.wall_ms : 0.0);
  }
  std::printf("\nanswers are bit-identical at every thread count; "
              "total_stats merged %llu node accesses per run.\n",
              static_cast<unsigned long long>(
                  engine
                      .RunBatch(QueryMethod::kIpq, workload->issuers, spec,
                                BatchOptions{})
                      .total_stats.node_accesses));
  return 0;
}
