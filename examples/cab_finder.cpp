// Cab finder — the paper's opening scenario: "find the available cabs
// within two miles of my current location", where both the rider's phone
// fix and the cabs' reported positions are imprecise.
//
// Simulates a fleet of cabs whose positions are known only up to an
// uncertainty region (stale GPS pings + movement since the ping), a rider
// with a coarse network-derived fix, and shows how the probability
// threshold turns a noisy candidate list into a confident dispatch list.
//
//   build/examples/cab_finder

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "core/engine.h"
#include "prob/uniform_pdf.h"

using namespace ilq;

namespace {

constexpr double kMile = 1000.0;  // world units per mile

std::unique_ptr<UniformRectPdf> Uniform(const Rect& region) {
  Result<UniformRectPdf> pdf = UniformRectPdf::Make(region);
  ILQ_CHECK(pdf.ok(), pdf.status().ToString());
  return std::make_unique<UniformRectPdf>(std::move(pdf).ValueOrDie());
}

}  // namespace

int main() {
  Rng rng(2024);
  const Rect city(0, 10 * kMile, 0, 10 * kMile);

  // 400 cabs; each reported position is stale, so the cab lies somewhere
  // in a box whose size grows with the ping age (up to ~0.4 miles drift).
  std::vector<UncertainObject> cabs;
  for (ObjectId id = 1; id <= 400; ++id) {
    const Point ping(rng.Uniform(city.xmin, city.xmax),
                     rng.Uniform(city.ymin, city.ymax));
    const double drift = rng.Uniform(0.05, 0.4) * kMile;
    const Rect region(std::max(city.xmin, ping.x - drift),
                      std::min(city.xmax, ping.x + drift),
                      std::max(city.ymin, ping.y - drift),
                      std::min(city.ymax, ping.y + drift));
    cabs.emplace_back(id, Uniform(region));
  }

  Result<QueryEngine> built = QueryEngine::Build({}, std::move(cabs));
  ILQ_CHECK(built.ok(), built.status().ToString());
  QueryEngine engine = std::move(built).ValueOrDie();

  // The rider's fix comes from cell towers: a quarter-mile box downtown.
  const Point fix(5 * kMile, 5 * kMile);
  const double fix_error = 0.25 * kMile;
  Result<UncertainObject> rider = engine.MakeIssuer(Uniform(
      Rect(fix.x - fix_error, fix.x + fix_error, fix.y - fix_error,
           fix.y + fix_error)));
  ILQ_CHECK(rider.ok(), rider.status().ToString());

  std::printf("rider fix: (%.0f, %.0f) ± %.2f miles\n", fix.x, fix.y,
              fix_error / kMile);
  std::printf("query: cabs within 2 miles of the rider's true position\n\n");

  // Unconstrained: everything with any chance at all.
  const RangeQuerySpec two_miles(2 * kMile, 2 * kMile);
  AnswerSet all = engine.Iuq(*rider, two_miles);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.probability > b.probability;
  });
  std::printf("IUQ: %zu cabs have non-zero probability; top 5:\n",
              all.size());
  for (size_t i = 0; i < std::min<size_t>(5, all.size()); ++i) {
    std::printf("  cab %-4u p = %.3f\n", all[i].id, all[i].probability);
  }

  // Dispatcher view: how the candidate list shrinks with confidence.
  std::printf("\nthreshold sweep (C-IUQ via PTI):\n");
  std::printf("  %-6s  %-10s  %-14s\n", "Qp", "cabs", "index candidates");
  for (double qp : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    IndexStats stats;
    const AnswerSet confident = engine.CiuqPti(
        *rider, RangeQuerySpec(2 * kMile, 2 * kMile, qp), CiuqPruneConfig{},
        &stats);
    std::printf("  %-6.2f  %-10zu  %-14llu\n", qp, confident.size(),
                static_cast<unsigned long long>(stats.candidates));
  }
  std::printf("\nhigher thresholds mean fewer-but-surer cabs AND less work: "
              "the p-expanded-query prunes low-probability cabs before any "
              "probability is computed.\n");
  return 0;
}
