// Serving-layer tour: build a ShardedEngine over a scaled-down catalog,
// front it with an AsyncServer (futures API + answer cache), push a burst
// of skewed traffic through it, and verify on the way out that the sharded
// answers are bit-identical to a monolithic QueryEngine — the serving
// layer's determinism guarantee.
//
//   build/examples/serve_demo [--threads=N]

#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "common/logging.h"
#include "core/engine.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "serve/async_server.h"
#include "serve/sharded_engine.h"

using namespace ilq;

int main(int, char**) {
  // A scaled-down California/Long Beach catalog (paper §6.1 geometry).
  SyntheticConfig points_config;
  points_config.count = 20000;
  points_config.seed = 20070415;
  std::vector<PointObject> points =
      GenerateCaliforniaLikePoints(points_config);

  RectangleConfig rects_config;
  rects_config.base.count = 15000;
  rects_config.base.seed = 20070416;
  Result<std::vector<UncertainObject>> objects =
      MakeUniformUncertainObjects(GenerateLongBeachLikeRects(rects_config));
  ILQ_CHECK(objects.ok(), objects.status().ToString());

  // The same catalog twice: monolithic (reference) and 4-way sharded.
  Result<QueryEngine> mono =
      QueryEngine::Build(points, *objects, EngineConfig{});
  ILQ_CHECK(mono.ok(), mono.status().ToString());

  ShardedEngineConfig sharded_config;
  sharded_config.shards = 4;
  Result<ShardedEngine> sharded = ShardedEngine::Build(
      std::move(points), std::move(*objects), sharded_config);
  ILQ_CHECK(sharded.ok(), sharded.status().ToString());
  std::printf("catalog: %zu points + %zu uncertain objects across %zu "
              "spatial shards\n",
              points_config.count, rects_config.base.count,
              sharded->shard_count());

  // Zipfian traffic from a pool of registered issuers (non-zero ids, so
  // the answer cache can key on them).
  WorkloadConfig base;
  SkewConfig traffic;
  traffic.pool = 48;
  traffic.requests = 400;
  traffic.zipf_s = 1.1;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, traffic);
  ILQ_CHECK(workload.ok(), workload.status().ToString());

  AsyncServerOptions options;
  options.threads = 4;
  options.queue_capacity = 64;
  options.cache_capacity = 256;
  AsyncServer server(*sharded, options);

  const BatchSpec spec{workload->spec};
  std::vector<std::future<AnswerSet>> futures;
  futures.reserve(workload->sequence.size());
  for (const size_t pick : workload->sequence) {
    // Alternate the query classes so every per-method counter moves.
    const QueryMethod method =
        (futures.size() % 2 == 0) ? QueryMethod::kIpq : QueryMethod::kIuq;
    futures.push_back(server.Submit(workload->pool[pick], spec, method));
  }

  size_t total_answers = 0;
  for (auto& future : futures) total_answers += future.get().size();
  server.Drain();

  const ServeStats stats = server.stats();
  std::printf("\nserved %llu requests (%zu qualifying answers)\n",
              static_cast<unsigned long long>(stats.completed),
              total_answers);
  std::printf("latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
              stats.p50_ms, stats.p95_ms, stats.p99_ms);
  std::printf("cache:   %llu hits / %llu misses (%.0f%% hit rate from "
              "Zipfian repeats)\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              stats.cache_hits + stats.cache_misses == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(stats.cache_hits) /
                        static_cast<double>(stats.cache_hits +
                                            stats.cache_misses));
  for (const QueryMethod method : AllQueryMethods()) {
    const uint64_t count = stats.per_method[static_cast<size_t>(method)];
    if (count > 0) {
      std::printf("method:  %-10s %llu requests\n", QueryMethodName(method),
                  static_cast<unsigned long long>(count));
    }
  }

  // Determinism spot-check: the sharded answers match the monolithic
  // engine bit for bit (sorted by id) for the hottest issuer.
  const UncertainObject& hot = workload->pool.front();
  AnswerSet sharded_answers = sharded->Run(QueryMethod::kIpq, hot, spec);
  AnswerSet mono_answers = RunQueryMethod(*mono, QueryMethod::kIpq, hot,
                                          spec);
  std::sort(mono_answers.begin(), mono_answers.end(),
            [](const ProbabilisticAnswer& a, const ProbabilisticAnswer& b) {
              return a.id < b.id;
            });
  ILQ_CHECK(sharded_answers.size() == mono_answers.size(),
            "sharded/monolithic answer-count mismatch");
  for (size_t i = 0; i < sharded_answers.size(); ++i) {
    ILQ_CHECK(sharded_answers[i].id == mono_answers[i].id &&
                  sharded_answers[i].probability ==
                      mono_answers[i].probability,
              "sharded/monolithic answer mismatch");
  }
  std::printf("\ndeterminism: %zu answers bit-identical to the monolithic "
              "engine for the hottest issuer.\n",
              sharded_answers.size());
  return 0;
}
