// Minimal find_package(ilq) consumer: builds an engine over a tiny dataset
// and runs one query through the PdfVariant fast path and one through the
// AnyPdf escape hatch, exercising installed headers and every linked module.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "prob/pdf_variant.h"
#include "prob/uniform_pdf.h"

int main() {
  using namespace ilq;

  std::vector<PointObject> points;
  for (int i = 0; i < 50; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(10.0 * i, 7.0 * (i % 10)));
  }
  std::vector<UncertainObject> objects;
  for (int i = 0; i < 20; ++i) {
    Result<UniformRectPdf> pdf = UniformRectPdf::Make(
        Rect(20.0 * i, 20.0 * i + 15, 10.0, 40.0));
    if (!pdf.ok()) return 1;
    objects.emplace_back(
        static_cast<ObjectId>(i + 1),
        std::make_unique<UniformRectPdf>(std::move(pdf).ValueOrDie()));
  }

  Result<QueryEngine> engine =
      QueryEngine::Build(std::move(points), std::move(objects));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  Result<UniformRectPdf> issuer_pdf =
      UniformRectPdf::Make(Rect(100, 200, 10, 60));
  if (!issuer_pdf.ok()) return 1;

  // Variant fast path.
  Result<UncertainObject> issuer = engine->MakeIssuer(
      std::make_unique<UniformRectPdf>(*issuer_pdf));
  if (!issuer.ok()) return 1;
  const AnswerSet fast = engine->Ipq(*issuer, RangeQuerySpec(50, 50));

  // AnyPdf escape hatch: same pdf through the virtual interface.
  UncertainObject veiled(
      0, PdfVariant(AnyPdf(std::make_unique<UniformRectPdf>(*issuer_pdf))));
  if (!veiled.BuildCatalog(engine->config().catalog_values).ok()) return 1;
  const AnswerSet legacy = engine->Ipq(veiled, RangeQuerySpec(50, 50));

  if (fast.size() != legacy.size()) {
    std::fprintf(stderr, "fast/legacy mismatch: %zu vs %zu\n", fast.size(),
                 legacy.size());
    return 1;
  }
  std::printf("ilq consumer smoke OK: %zu answers (variant == AnyPdf)\n",
              fast.size());
  return 0;
}
