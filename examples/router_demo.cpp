// Multi-process serving tier, end to end on one machine: generate a
// catalog image, split it into per-shard image files + a shard map (the
// exact artifacts a real deployment distributes), boot a fleet of
// ShardServers from the *files*, fan queries out through a Router — and
// verify the merged answers are bit-identical to a monolithic QueryEngine
// built from the original image.
//
//   build/examples/router_demo [--shards=N] [--queries=N] [--keep-files]
//                              [--bundle-dirs]
//
// --keep-files leaves shard<i>.ilqs + shards.ilqm in the working directory
// for use with standalone examples/shard_server processes. --bundle-dirs
// additionally writes each shard as an out-of-core disk bundle
// (shard<i>/ with catalog.ilqs + paged *.ilqp index files,
// wire/disk_bundle.h) for shard_server --index-dir bootstraps that mount
// the prebuilt indexes instead of rebuilding them.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/batch.h"
#include "core/engine.h"
#include "datagen/snapshot_gen.h"
#include "datagen/workload.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "serve/partition.h"
#include "serve/sharded_engine.h"
#include "wire/disk_bundle.h"
#include "wire/shard_map.h"
#include "wire/snapshot_codec.h"

using namespace ilq;

namespace {

double ParseFlag(int argc, char** argv, const char* flag, double fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) != 0) continue;
    if (argv[i][flag_len] == '=') return std::atof(argv[i] + flag_len + 1);
    if (argv[i][flag_len] == '\0' && i + 1 < argc) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const auto shards =
      static_cast<size_t>(ParseFlag(argc, argv, "--shards", 4));
  const auto queries =
      static_cast<size_t>(ParseFlag(argc, argv, "--queries", 24));
  const bool keep_files = HasFlag(argc, argv, "--keep-files");
  const bool bundle_dirs = HasFlag(argc, argv, "--bundle-dirs");

  // 1. One deterministic catalog image (scaled-down paper geometry).
  SnapshotGenConfig gen;
  gen.points.count = 12000;
  gen.points.seed = 20070415;
  gen.uncertains.base.count = 9000;
  gen.uncertains.base.seed = 20070416;
  Result<CatalogImage> image = GenerateCatalogImage(gen);
  ILQ_CHECK(image.ok(), image.status().ToString());

  // 2. Split into shard images + routing map, and round-trip everything
  // through the on-disk formats — the fleet boots from files, not RAM.
  Result<SplitImage> split = SplitCatalogImage(*image, shards);
  ILQ_CHECK(split.ok(), split.status().ToString());
  std::vector<std::string> shard_files;
  for (size_t s = 0; s < split->shards.size(); ++s) {
    shard_files.push_back("shard" + std::to_string(s) + ".ilqs");
    const Status saved =
        SaveCatalogImage(shard_files.back(), split->shards[s]);
    ILQ_CHECK(saved.ok(), saved.ToString());
  }
  const std::string map_file = "shards.ilqm";
  ILQ_CHECK(SaveShardMap(map_file, split->map).ok(), "shard map save");
  std::printf("split %zu+%zu objects into %zu shard images + %s\n",
              image->points.size(), image->uncertains.size(),
              split->shards.size(), map_file.c_str());
  if (bundle_dirs) {
    // Out-of-core variant of the same artifacts: each shard as a mounted
    // bundle (catalog + STR-bulk-loaded paged index files).
    for (size_t s = 0; s < split->shards.size(); ++s) {
      const std::string dir = "shard" + std::to_string(s);
      const Status written = WriteDiskBundle(split->shards[s], dir);
      ILQ_CHECK(written.ok(), written.ToString());
    }
    std::printf("wrote %zu disk bundles shard0/..shard%zu/ (serve with "
                "shard_server --index-dir=shardN)\n",
                split->shards.size(), split->shards.size() - 1);
  }

  // 3. Boot the fleet from the files (threads here; the same bytes drive
  // standalone shard_server processes).
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  std::vector<std::unique_ptr<ShardServer>> servers;
  RouterOptions router_options;
  for (const std::string& file : shard_files) {
    Result<CatalogImage> shard_image = LoadCatalogImage(file);
    ILQ_CHECK(shard_image.ok(), shard_image.status().ToString());
    ShardedEngineConfig engine_config;
    engine_config.shards = 1;
    Result<ShardedEngine> engine = ShardedEngine::Build(
        std::move(shard_image->points), std::move(shard_image->uncertains),
        engine_config);
    ILQ_CHECK(engine.ok(), engine.status().ToString());
    engines.push_back(
        std::make_unique<ShardedEngine>(std::move(engine).ValueOrDie()));
    servers.push_back(std::make_unique<ShardServer>(*engines.back()));
    ILQ_CHECK(servers.back()->Start().ok(), "server start");
    router_options.endpoints.push_back(
        RouterEndpoint{"127.0.0.1", servers.back()->port()});
  }

  Result<ShardMap> map = LoadShardMap(map_file);
  ILQ_CHECK(map.ok(), map.status().ToString());
  router_options.map = std::move(map).ValueOrDie();
  Result<Router> router = Router::Make(std::move(router_options));
  ILQ_CHECK(router.ok(), router.status().ToString());

  // 4. The reference: a monolithic engine over the original image.
  Result<QueryEngine> mono =
      QueryEngine::Build(image->points, image->uncertains, EngineConfig{});
  ILQ_CHECK(mono.ok(), mono.status().ToString());

  // 5. Fan out a workload across every query method; every answer must be
  // bit-identical to the monolith.
  WorkloadConfig workload_config;
  workload_config.queries = queries;
  workload_config.seed = 7;
  Result<Workload> workload = GenerateWorkload(workload_config);
  ILQ_CHECK(workload.ok(), workload.status().ToString());
  BatchSpec spec;
  spec.query = workload->spec;

  size_t checked = 0, answers_total = 0;
  for (const UncertainObject& issuer : workload->issuers) {
    for (const QueryMethod method : AllQueryMethods()) {
      Result<AnswerSet> remote = router->Query(issuer, method, spec);
      ILQ_CHECK(remote.ok(), remote.status().ToString());
      AnswerSet local = RunQueryMethod(*mono, method, issuer, spec);
      CanonicalizeAnswers(&local);
      ILQ_CHECK(remote->size() == local.size(), "answer count mismatch");
      for (size_t i = 0; i < local.size(); ++i) {
        ILQ_CHECK((*remote)[i].id == local[i].id &&
                      (*remote)[i].probability == local[i].probability,
                  "answer mismatch vs monolithic engine");
      }
      ++checked;
      answers_total += local.size();
    }
  }

  const RouterStats stats = router->stats();
  std::printf("%zu queries x %zu methods: %zu answers, all bit-identical "
              "to the monolithic engine\n",
              workload->issuers.size(),
              static_cast<size_t>(kQueryMethodCount), answers_total);
  std::printf("router:  %llu shard calls for %llu queries (%.2f avg "
              "fan-out of %zu shards), %llu retries\n",
              static_cast<unsigned long long>(stats.shard_calls),
              static_cast<unsigned long long>(stats.queries),
              stats.queries == 0 ? 0.0
                                 : static_cast<double>(stats.shard_calls) /
                                       static_cast<double>(stats.queries),
              router->shard_count(),
              static_cast<unsigned long long>(stats.retries));
  for (size_t s = 0; s < servers.size(); ++s) {
    const ShardServerStats server_stats = servers[s]->stats();
    std::printf("shard %zu: %llu requests served on port %u\n", s,
                static_cast<unsigned long long>(server_stats.requests_ok),
                servers[s]->port());
  }

  for (auto& server : servers) server->Stop();
  if (!keep_files) {
    for (const std::string& file : shard_files) std::remove(file.c_str());
    std::remove(map_file.c_str());
  } else {
    std::printf("kept %zu shard images + %s (serve them with "
                "examples/shard_server)\n",
                shard_files.size(), map_file.c_str());
  }
  ILQ_CHECK(checked == workload->issuers.size() * kQueryMethodCount,
            "coverage");
  return 0;
}
