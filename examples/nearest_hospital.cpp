// Probabilistic nearest neighbour under location uncertainty — the §7
// future-work extension. "Which hospital is closest to me?" has no single
// answer when the phone's fix is imprecise: each hospital gets the
// probability that it is truly the nearest one.
//
//   build/examples/nearest_hospital

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "core/inn.h"
#include "prob/gaussian_pdf.h"
#include "prob/uniform_pdf.h"

using namespace ilq;

namespace {

struct Hospital {
  const char* name;
  Point location;
};

}  // namespace

int main() {
  const Hospital hospitals[] = {
      {"St. Mary's", {420, 520}},     {"City General", {580, 470}},
      {"Harbor View", {510, 300}},    {"Northside Clinic", {500, 700}},
      {"Eastgate Medical", {760, 540}},
  };

  std::vector<RTree::Item> items;
  for (size_t i = 0; i < std::size(hospitals); ++i) {
    items.push_back({Rect::AtPoint(hospitals[i].location),
                     static_cast<ObjectId>(i + 1)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ILQ_CHECK(tree.ok(), tree.status().ToString());

  // The caller's fix: somewhere in a 140x140 box around (500, 500).
  const Rect fix(430, 570, 430, 570);
  std::printf("caller's location: somewhere in %s\n\n",
              fix.ToString().c_str());

  auto report = [&](const char* title, const AnswerSet& answers) {
    std::printf("%s\n", title);
    AnswerSet sorted = answers;
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.probability > b.probability;
    });
    for (const auto& a : sorted) {
      std::printf("  %-18s p(nearest) = %.3f\n", hospitals[a.id - 1].name,
                  a.probability);
    }
    std::printf("\n");
  };

  // Uniform uncertainty (worst case: no idea where in the box).
  Result<UniformRectPdf> uniform = UniformRectPdf::Make(fix);
  ILQ_CHECK(uniform.ok(), uniform.status().ToString());
  UncertainObject uniform_caller(
      0, std::make_unique<UniformRectPdf>(std::move(uniform).ValueOrDie()));
  InnOptions options;
  options.samples = 50000;
  report("uniform pdf (no knowledge inside the box):",
         EvaluateINN(*tree, uniform_caller, options));

  // Gaussian uncertainty (fix is probably near the box centre).
  Result<TruncatedGaussianPdf> gaussian =
      TruncatedGaussianPdf::MakePaperDefault(fix);
  ILQ_CHECK(gaussian.ok(), gaussian.status().ToString());
  UncertainObject gaussian_caller(
      0,
      std::make_unique<TruncatedGaussianPdf>(std::move(gaussian).ValueOrDie()));
  report("gaussian pdf (fix concentrated at the centre):",
         EvaluateINN(*tree, gaussian_caller, options));

  // Deterministic check with the grid evaluator.
  options.grid_per_axis = 96;
  report("uniform pdf, deterministic grid evaluation:",
         EvaluateINNGrid(*tree, uniform_caller, options));

  std::printf("the ranking can differ from the nearest-to-the-box-centre "
              "answer: probability mass, not a single representative point, "
              "decides.\n");
  return 0;
}
