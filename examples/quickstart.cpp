// Quickstart: build a QueryEngine over a few objects and run each of the
// four query classes of the paper.
//
//   build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "core/engine.h"
#include "prob/uniform_pdf.h"

using namespace ilq;

namespace {

std::unique_ptr<UniformRectPdf> Uniform(const Rect& region) {
  Result<UniformRectPdf> pdf = UniformRectPdf::Make(region);
  ILQ_CHECK(pdf.ok(), pdf.status().ToString());
  return std::make_unique<UniformRectPdf>(std::move(pdf).ValueOrDie());
}

void PrintAnswers(const char* title, const AnswerSet& answers) {
  std::printf("%s (%zu answers)\n", title, answers.size());
  for (const auto& a : answers) {
    std::printf("  object %u  qualification probability %.3f\n", a.id,
                a.probability);
  }
}

}  // namespace

int main() {
  // A handful of precise point objects (e.g. gas stations)...
  std::vector<PointObject> stations = {
      {1, {120, 80}}, {2, {200, 200}}, {3, {420, 260}}, {4, {900, 900}}};

  // ...and uncertain objects (e.g. moving vehicles reported as uncertainty
  // regions with uniform pdfs).
  std::vector<UncertainObject> vehicles;
  vehicles.emplace_back(1, Uniform(Rect(150, 250, 120, 220)));
  vehicles.emplace_back(2, Uniform(Rect(300, 380, 300, 360)));
  vehicles.emplace_back(3, Uniform(Rect(700, 820, 600, 700)));

  Result<QueryEngine> built =
      QueryEngine::Build(std::move(stations), std::move(vehicles));
  ILQ_CHECK(built.ok(), built.status().ToString());
  QueryEngine engine = std::move(built).ValueOrDie();

  // The query issuer's own location is imprecise: somewhere in a 60×60
  // region around (200, 180).
  Result<UncertainObject> issuer =
      engine.MakeIssuer(Uniform(Rect(170, 230, 150, 210)));
  ILQ_CHECK(issuer.ok(), issuer.status().ToString());

  // "Return everything within 120 × 120 units of wherever I actually am."
  const RangeQuerySpec range(120, 120);
  PrintAnswers("IPQ — point objects", engine.Ipq(*issuer, range));
  PrintAnswers("IUQ — uncertain objects", engine.Iuq(*issuer, range));

  // Constrained variants: only answers that qualify with at least 50%.
  const RangeQuerySpec confident(120, 120, /*qp=*/0.5);
  PrintAnswers("C-IPQ (Qp = 0.5)", engine.Cipq(*issuer, confident));
  PrintAnswers("C-IUQ (Qp = 0.5)", engine.CiuqPti(*issuer, confident));
  return 0;
}
