// Privacy patrol — the §6.1 scenario: "a policeman may wish to look for
// suspect vehicles within some distance from his (imprecise) location",
// combined with the paper's motivation that users may *deliberately*
// coarsen their location for privacy ([Cheng et al., PET'06]).
//
// Sweeps the issuer's cloaking-box size and shows the privacy/service
// trade-off: more cloaking (larger U0) keeps the officer's position hidden
// but dilutes qualification probabilities and inflates the work the server
// must do.
//
//   build/examples/privacy_patrol

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "core/engine.h"
#include "datagen/synthetic.h"
#include "prob/uniform_pdf.h"

using namespace ilq;

namespace {

std::unique_ptr<UniformRectPdf> Uniform(const Rect& region) {
  Result<UniformRectPdf> pdf = UniformRectPdf::Make(region);
  ILQ_CHECK(pdf.ok(), pdf.status().ToString());
  return std::make_unique<UniformRectPdf>(std::move(pdf).ValueOrDie());
}

}  // namespace

int main() {
  // Suspect vehicles: a Long-Beach-like set of 5000 uncertain objects.
  RectangleConfig config;
  config.base.count = 5000;
  config.base.seed = 99;
  Result<std::vector<UncertainObject>> vehicles =
      MakeUniformUncertainObjects(GenerateLongBeachLikeRects(config));
  ILQ_CHECK(vehicles.ok(), vehicles.status().ToString());

  Result<QueryEngine> built =
      QueryEngine::Build({}, std::move(vehicles).ValueOrDie());
  ILQ_CHECK(built.ok(), built.status().ToString());
  QueryEngine engine = std::move(built).ValueOrDie();

  const Point officer(5000, 5000);  // true position, never sent to server
  const double patrol_radius = 500;

  std::printf("officer true position (%.0f, %.0f); patrol range %.0f; "
              "reporting vehicles with p >= 0.5\n\n",
              officer.x, officer.y, patrol_radius);
  std::printf("%-14s  %-10s  %-12s  %-12s  %-12s\n", "cloak half-side",
              "answers", "candidates", "node I/O", "top p");
  for (double cloak : {10.0, 100.0, 250.0, 500.0, 1000.0}) {
    Result<UncertainObject> issuer = engine.MakeIssuer(Uniform(
        Rect(officer.x - cloak, officer.x + cloak, officer.y - cloak,
             officer.y + cloak)));
    ILQ_CHECK(issuer.ok(), issuer.status().ToString());
    IndexStats stats;
    AnswerSet answers = engine.CiuqPti(
        *issuer, RangeQuerySpec(patrol_radius, patrol_radius, 0.5),
        CiuqPruneConfig{}, &stats);
    std::sort(answers.begin(), answers.end(),
              [](const auto& a, const auto& b) {
                return a.probability > b.probability;
              });
    std::printf("%-14.0f  %-10zu  %-12llu  %-12llu  %-12s\n", cloak,
                answers.size(),
                static_cast<unsigned long long>(stats.candidates),
                static_cast<unsigned long long>(stats.node_accesses),
                answers.empty()
                    ? "-"
                    : std::to_string(answers.front().probability).c_str());
  }
  std::printf("\nsmall cloaks give crisp answers; large cloaks protect the "
              "officer's position but wash out probabilities (fewer answers "
              "clear the 0.5 bar) and widen the expanded query the server "
              "must process — the quality/privacy trade-off of the paper's "
              "reference [6].\n");
  return 0;
}
