// ilq_cli — command-line front end for the library: generate datasets,
// inspect them, and run ad-hoc imprecise queries from a shell.
//
//   ilq_cli gen-points <n> <out.csv> [seed]
//   ilq_cli gen-rects  <n> <out.csv> [seed]
//   ilq_cli ipq  <points.csv> <cx> <cy> <u> <w> [qp]
//   ilq_cli iuq  <rects.csv>  <cx> <cy> <u> <w> [qp]
//   ilq_cli inn  <points.csv> <cx> <cy> <u>
//
// (cx, cy) is the issuer-region centre, u its half side, w the query
// half-width, qp the optional probability threshold. Datasets are the
// "x,y" / "xmin,ymin,xmax,ymax" CSV formats of datagen/dataset_io.h, so
// real TIGER extracts can be substituted for the synthetic data.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "core/engine.h"
#include "core/inn.h"
#include "datagen/dataset_io.h"
#include "datagen/synthetic.h"
#include "prob/uniform_pdf.h"

using namespace ilq;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ilq_cli gen-points <n> <out.csv> [seed]\n"
               "  ilq_cli gen-rects  <n> <out.csv> [seed]\n"
               "  ilq_cli ipq  <points.csv> <cx> <cy> <u> <w> [qp]\n"
               "  ilq_cli iuq  <rects.csv>  <cx> <cy> <u> <w> [qp]\n"
               "  ilq_cli inn  <points.csv> <cx> <cy> <u>\n");
  return 2;
}

// Dies with a readable message on a non-OK status.
void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

Result<UncertainObject> MakeUniformIssuer(double cx, double cy, double u) {
  Result<UniformRectPdf> pdf =
      UniformRectPdf::Make(Rect(cx - u, cx + u, cy - u, cy + u));
  if (!pdf.ok()) return pdf.status();
  UncertainObject issuer(
      0, std::make_unique<UniformRectPdf>(std::move(pdf).ValueOrDie()));
  ILQ_RETURN_NOT_OK(issuer.BuildCatalog(UCatalog::EvenlySpacedValues(11)));
  return issuer;
}

void PrintAnswers(AnswerSet answers, size_t limit = 20) {
  std::sort(answers.begin(), answers.end(), [](const auto& a, const auto& b) {
    return a.probability > b.probability;
  });
  std::printf("%zu answers", answers.size());
  if (answers.size() > limit) std::printf(" (showing top %zu)", limit);
  std::printf("\n");
  for (size_t i = 0; i < std::min(limit, answers.size()); ++i) {
    std::printf("  object %-8u p = %.4f\n", answers[i].id,
                answers[i].probability);
  }
}

int GenPoints(int argc, char** argv) {
  if (argc < 4) return Usage();
  SyntheticConfig config;
  config.count = static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
  if (argc > 4) config.seed = std::strtoull(argv[4], nullptr, 10);
  DieIf(SavePointsCsv(argv[3], GenerateCaliforniaLikePoints(config)));
  std::printf("wrote %zu points to %s\n", config.count, argv[3]);
  return 0;
}

int GenRects(int argc, char** argv) {
  if (argc < 4) return Usage();
  RectangleConfig config;
  config.base.count =
      static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
  if (argc > 4) config.base.seed = std::strtoull(argv[4], nullptr, 10);
  DieIf(SaveRectsCsv(argv[3], GenerateLongBeachLikeRects(config)));
  std::printf("wrote %zu rectangles to %s\n", config.base.count, argv[3]);
  return 0;
}

int RunIpq(int argc, char** argv) {
  if (argc < 7) return Usage();
  Result<std::vector<PointObject>> points = LoadPointsCsv(argv[2]);
  DieIf(points.status());
  Result<QueryEngine> engine =
      QueryEngine::Build(std::move(points).ValueOrDie(), {});
  DieIf(engine.status());
  Result<UncertainObject> issuer = MakeUniformIssuer(
      std::atof(argv[3]), std::atof(argv[4]), std::atof(argv[5]));
  DieIf(issuer.status());
  const double w = std::atof(argv[6]);
  const double qp = argc > 7 ? std::atof(argv[7]) : 0.0;
  IndexStats stats;
  const AnswerSet answers =
      qp > 0.0 ? engine->Cipq(*issuer, RangeQuerySpec(w, w, qp),
                              CipqFilter::kPExpanded, &stats)
               : engine->Ipq(*issuer, RangeQuerySpec(w, w), &stats);
  PrintAnswers(answers);
  std::printf("candidates %llu, node accesses %llu\n",
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.node_accesses));
  return 0;
}

int RunIuq(int argc, char** argv) {
  if (argc < 7) return Usage();
  Result<std::vector<Rect>> rects = LoadRectsCsv(argv[2]);
  DieIf(rects.status());
  Result<std::vector<UncertainObject>> objects =
      MakeUniformUncertainObjects(*rects);
  DieIf(objects.status());
  Result<QueryEngine> engine =
      QueryEngine::Build({}, std::move(objects).ValueOrDie());
  DieIf(engine.status());
  Result<UncertainObject> issuer = MakeUniformIssuer(
      std::atof(argv[3]), std::atof(argv[4]), std::atof(argv[5]));
  DieIf(issuer.status());
  const double w = std::atof(argv[6]);
  const double qp = argc > 7 ? std::atof(argv[7]) : 0.0;
  IndexStats stats;
  const AnswerSet answers =
      qp > 0.0
          ? engine->CiuqPti(*issuer, RangeQuerySpec(w, w, qp),
                            CiuqPruneConfig{}, &stats)
          : engine->Iuq(*issuer, RangeQuerySpec(w, w), &stats);
  PrintAnswers(answers);
  std::printf("candidates %llu, node accesses %llu\n",
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.node_accesses));
  return 0;
}

int RunInn(int argc, char** argv) {
  if (argc < 6) return Usage();
  Result<std::vector<PointObject>> points = LoadPointsCsv(argv[2]);
  DieIf(points.status());
  std::vector<RTree::Item> items;
  for (const PointObject& p : *points) {
    items.push_back({Rect::AtPoint(p.location), p.id});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  DieIf(tree.status());
  Result<UncertainObject> issuer = MakeUniformIssuer(
      std::atof(argv[3]), std::atof(argv[4]), std::atof(argv[5]));
  DieIf(issuer.status());
  InnOptions options;
  options.samples = 20000;
  PrintAnswers(EvaluateINN(*tree, *issuer, options));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen-points") return GenPoints(argc, argv);
  if (command == "gen-rects") return GenRects(argc, argv);
  if (command == "ipq") return RunIpq(argc, argv);
  if (command == "iuq") return RunIuq(argc, argv);
  if (command == "inn") return RunInn(argc, argv);
  return Usage();
}
