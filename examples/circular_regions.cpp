// Circular uncertainty regions — the paper's §7 future-work item,
// implemented as an ILQ extension.
//
// GPS receivers report circular error bounds, so the natural issuer model
// is a disk, not a rectangle. This example runs an imprecise range query
// with a disk-shaped issuer three ways and shows they agree:
//
//   1. exact: disk–rectangle overlap areas (closed form, this library);
//   2. rectangle approximation: the disk's bounding box (what a
//      rectangles-only system would do);
//   3. Monte-Carlo over the disk (the general fallback).
//
//   build/examples/circular_regions

#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "core/duality.h"
#include "geometry/minkowski.h"
#include "prob/disk_pdf.h"
#include "prob/uniform_pdf.h"

using namespace ilq;

int main() {
  // Issuer: GPS fix at (500, 500) with a 95% error circle of radius 80.
  const Circle error_circle(Point(500, 500), 80);
  Result<UniformDiskPdf> disk = UniformDiskPdf::Make(error_circle);
  ILQ_CHECK(disk.ok(), disk.status().ToString());
  Result<UniformRectPdf> bbox =
      UniformRectPdf::Make(error_circle.BoundingBox());
  ILQ_CHECK(bbox.ok(), bbox.status().ToString());

  const double w = 150;
  const double h = 150;

  // The expanded query for a circular issuer is a rounded rectangle.
  const RoundedRect expanded = ExpandedQueryRangeCircular(error_circle, w, h);
  std::printf("disk issuer: centre (%.0f, %.0f), radius %.0f\n",
              error_circle.center.x, error_circle.center.y,
              error_circle.radius);
  std::printf("expanded query: rounded rect core %s, corner radius %.0f, "
              "area %.0f (bbox-only expansion would cover %.0f)\n\n",
              expanded.core.ToString().c_str(), expanded.radius,
              expanded.Area(), expanded.BoundingBox().Area());

  // Qualification probabilities for a ring of candidate points.
  std::printf("%-22s  %-10s  %-12s  %-12s\n", "point object",
              "exact disk", "bbox approx", "Monte-Carlo");
  Rng rng(7);
  const Point probes[] = {{560, 520}, {650, 500}, {700, 640},
                          {430, 380}, {760, 760}, {500, 745}};
  for (const Point& s : probes) {
    const double exact = PointQualification(*disk, s, w, h);
    const double approx = PointQualification(*bbox, s, w, h);
    const double mc = PointQualificationMC(*disk, s, w, h, 200000, &rng);
    std::printf("(%4.0f, %4.0f)          %-10.4f  %-12.4f  %-12.4f%s\n",
                s.x, s.y, exact, approx, mc,
                expanded.Contains(s) ? "" : "   <- outside expanded query");
  }
  std::printf("\nthe bounding-box approximation misstates probabilities by "
              "up to ~20%% near the circle edge; the exact disk kernel "
              "matches Monte-Carlo to sampling noise while remaining "
              "closed-form.\n");
  return 0;
}
