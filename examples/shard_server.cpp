// Shard server process: loads a catalog-image file (or mounts an on-disk
// bundle) and serves it over the binary wire protocol until
// SIGTERM/SIGINT, then drains gracefully (in-flight queries complete and
// their responses go out before exit).
//
//   build/examples/shard_server --snapshot=shard0.ilqs [--port=9090]
//                               [--threads=N] [--timeout-ms=MS]
//   build/examples/shard_server --index-dir=shard0/ [--buffer-mb=MB] ...
//
// --snapshot rebuilds the indexes in memory from the catalog image.
// --index-dir bootstraps out-of-core: the directory is a disk bundle
// (wire/disk_bundle.h — catalog.ilqs + *.ilqp paged index files, written
// by WriteDiskBundle or router_demo --bundle-dirs), the index files are
// mounted read-only behind LRU buffers of --buffer-mb megabytes each, and
// the process starts serving without ever rebuilding an R-tree. Answers
// are bit-identical between the two bootstraps.
//
// Produce per-shard image files with examples/router_demo --keep-files or
// wire/snapshot_codec.h's SaveCatalogImage; port 0 (default) binds an
// ephemeral port and prints it, which is what the loopback tests use.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "net/shard_server.h"
#include "serve/sharded_engine.h"
#include "wire/disk_bundle.h"
#include "wire/snapshot_codec.h"

using namespace ilq;

namespace {

// Signal handlers may only flip the flag; main does the draining.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_release); }

std::string ParseStringFlag(int argc, char** argv, const char* flag,
                            const std::string& fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) != 0) continue;
    if (argv[i][flag_len] == '=') return std::string(argv[i] + flag_len + 1);
    if (argv[i][flag_len] == '\0' && i + 1 < argc) return argv[i + 1];
  }
  return fallback;
}

long ParseLongFlag(int argc, char** argv, const char* flag, long fallback) {
  const std::string value =
      ParseStringFlag(argc, argv, flag, std::to_string(fallback));
  return std::strtol(value.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string snapshot_path =
      ParseStringFlag(argc, argv, "--snapshot", "");
  const std::string index_dir = ParseStringFlag(argc, argv, "--index-dir", "");
  if (snapshot_path.empty() == index_dir.empty()) {
    std::fprintf(stderr,
                 "usage: shard_server --snapshot=FILE [--port=N] "
                 "[--threads=N] [--timeout-ms=MS]\n"
                 "       shard_server --index-dir=DIR [--buffer-mb=MB] "
                 "[--port=N] [--threads=N] [--timeout-ms=MS]\n");
    return 2;
  }

  // One server process serves its whole image slice: a single-shard
  // engine (the cross-shard fan-out happens in the Router).
  Result<ShardedEngine> engine = [&]() -> Result<ShardedEngine> {
    if (!index_dir.empty()) {
      // Out-of-core bootstrap: mount the bundle's paged index files.
      EngineConfig config;
      config.storage = StorageMode::kPaged;
      config.buffer_pool_bytes =
          static_cast<size_t>(ParseLongFlag(argc, argv, "--buffer-mb", 8))
          << 20;
      Result<QueryEngine> opened = OpenDiskBundle(index_dir, config);
      if (!opened.ok()) return opened.status();
      std::printf(
          "mounted %s: epoch %llu, %zu points, %zu uncertain objects "
          "(paged, %zu-page buffers)\n",
          index_dir.c_str(),
          static_cast<unsigned long long>(opened->epoch()),
          opened->points().size(), opened->uncertains().size(),
          opened->point_index().buffer_capacity_pages());
      return ShardedEngine::FromEngine(std::move(opened).ValueOrDie());
    }
    Result<CatalogImage> image = LoadCatalogImage(snapshot_path);
    if (!image.ok()) return image.status();
    std::printf("loaded %s: epoch %llu, %zu points, %zu uncertain objects\n",
                snapshot_path.c_str(),
                static_cast<unsigned long long>(image->epoch),
                image->points.size(), image->uncertains.size());
    ShardedEngineConfig engine_config;
    engine_config.shards = 1;
    return ShardedEngine::Build(std::move(image->points),
                                std::move(image->uncertains), engine_config);
  }();
  if (!engine.ok()) {
    std::fprintf(stderr, "cannot bootstrap: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  ShardServerOptions options;
  options.port = static_cast<uint16_t>(ParseLongFlag(argc, argv, "--port", 0));
  options.recv_timeout_ms =
      static_cast<int>(ParseLongFlag(argc, argv, "--timeout-ms", 0));
  options.serve.threads =
      static_cast<size_t>(ParseLongFlag(argc, argv, "--threads", 0));

  ShardServer server(*engine, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving on port %u (SIGTERM drains and exits)\n",
              server.port());

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  server.Stop();
  const ShardServerStats stats = server.stats();
  std::printf("served %llu requests over %llu connections "
              "(%llu rejected, %llu I/O errors)\n",
              static_cast<unsigned long long>(stats.requests_ok),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests_rejected),
              static_cast<unsigned long long>(stats.io_errors));
  return 0;
}
