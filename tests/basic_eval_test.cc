#include "core/basic_eval.h"

#include <gtest/gtest.h>

#include <map>

#include "core/duality.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

struct PointFixture {
  std::vector<PointObject> objects;
  RTree index;
};

PointFixture MakePointFixture(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<PointObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < n; ++i) {
    const Point p(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    objects.emplace_back(static_cast<ObjectId>(i + 1), p);
    items.push_back({Rect::AtPoint(p), static_cast<ObjectId>(i + 1)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  EXPECT_TRUE(tree.ok());
  return {std::move(objects), std::move(tree).ValueOrDie()};
}

TEST(BasicEvalTest, IPQGridConvergesToDuality) {
  PointFixture fixture = MakePointFixture(300, 81);
  UncertainObject issuer(0, MakeUniform(Rect(400, 600, 400, 600)));
  const RangeQuerySpec spec(150, 150);

  BasicEvalOptions coarse;
  coarse.grid_per_axis = 8;
  BasicEvalOptions fine;
  fine.grid_per_axis = 64;

  const AnswerSet exact_answers =
      [&] {
        AnswerSet out;
        for (const PointObject& s : fixture.objects) {
          const double pi =
              PointQualification(issuer.pdf(), s.location, spec.w, spec.h);
          if (pi > 0) out.push_back({s.id, pi});
        }
        return out;
      }();
  std::map<ObjectId, double> exact;
  for (const auto& a : exact_answers) exact[a.id] = a.probability;

  auto max_error = [&](const AnswerSet& got) {
    double worst = 0.0;
    for (const auto& a : got) {
      const auto it = exact.find(a.id);
      const double truth = it == exact.end() ? 0.0 : it->second;
      worst = std::max(worst, std::abs(a.probability - truth));
    }
    return worst;
  };

  const double coarse_err = max_error(EvaluateIPQBasic(
      fixture.index, fixture.objects, issuer, spec, coarse));
  const double fine_err = max_error(
      EvaluateIPQBasic(fixture.index, fixture.objects, issuer, spec, fine));
  EXPECT_LT(fine_err, coarse_err);
  EXPECT_LT(fine_err, 0.02);
}

TEST(BasicEvalTest, IPQIndexAndScanAgree) {
  PointFixture fixture = MakePointFixture(500, 82);
  UncertainObject issuer(0, MakeUniform(Rect(100, 400, 100, 400)));
  const RangeQuerySpec spec(120, 120);
  BasicEvalOptions with_index;
  BasicEvalOptions scan;
  scan.use_index = false;
  AnswerSet a = EvaluateIPQBasic(fixture.index, fixture.objects, issuer,
                                 spec, with_index);
  AnswerSet b =
      EvaluateIPQBasic(fixture.index, fixture.objects, issuer, spec, scan);
  auto key = [](const ProbabilisticAnswer& x) { return x.id; };
  std::sort(a.begin(), a.end(), [&](auto& l, auto& r) {
    return key(l) < key(r);
  });
  std::sort(b.begin(), b.end(), [&](auto& l, auto& r) {
    return key(l) < key(r);
  });
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_NEAR(a[i].probability, b[i].probability, 1e-12);
  }
}

TEST(BasicEvalTest, IUQGridConvergesToClosedForm) {
  Rng rng(83);
  std::vector<UncertainObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 150; ++i) {
    const Rect region = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 80);
    objects.emplace_back(static_cast<ObjectId>(i + 1), MakeUniform(region));
    items.push_back({region, static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ASSERT_TRUE(tree.ok());
  UncertainObject issuer(0, MakeUniform(Rect(300, 700, 300, 700)));
  const RangeQuerySpec spec(180, 180);

  BasicEvalOptions fine;
  fine.grid_per_axis = 48;
  const AnswerSet got =
      EvaluateIUQBasic(*tree, objects, issuer, spec, fine);
  ASSERT_FALSE(got.empty());
  for (const auto& a : got) {
    const UncertainObject& obj = objects[a.id - 1];
    const double exact = UniformUniformQualification(
        issuer.region(), obj.region(), spec.w, spec.h);
    EXPECT_NEAR(a.probability, exact, 0.01) << "object " << a.id;
  }
}

TEST(BasicEvalTest, AnswersSortedByIdOnBothPaths) {
  // The index path visits candidates in R-tree traversal order, the scan
  // path in dataset order; both must hand back the AnswerSet sorted by
  // object id so `use_index` cannot change the ordering.
  PointFixture fixture = MakePointFixture(400, 84);
  UncertainObject issuer(0, MakeUniform(Rect(200, 700, 200, 700)));
  const RangeQuerySpec spec(150, 150);
  BasicEvalOptions with_index;
  BasicEvalOptions scan;
  scan.use_index = false;
  const AnswerSet a = EvaluateIPQBasic(fixture.index, fixture.objects,
                                       issuer, spec, with_index);
  const AnswerSet b = EvaluateIPQBasic(fixture.index, fixture.objects,
                                       issuer, spec, scan);
  ASSERT_FALSE(a.empty());
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1].id, a[i].id);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1].id, b[i].id);
  EXPECT_EQ(a, b);  // identical answers in identical order
}

TEST(BasicEvalTest, IUQAnswersSortedByIdOnBothPaths) {
  Rng rng(85);
  std::vector<UncertainObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 120; ++i) {
    const Rect region = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 80);
    objects.emplace_back(static_cast<ObjectId>(i + 1), MakeUniform(region));
    items.push_back({region, static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ASSERT_TRUE(tree.ok());
  UncertainObject issuer(0, MakeUniform(Rect(300, 700, 300, 700)));
  const RangeQuerySpec spec(180, 180);
  BasicEvalOptions with_index;
  BasicEvalOptions scan;
  scan.use_index = false;
  const AnswerSet a = EvaluateIUQBasic(*tree, objects, issuer, spec,
                                       with_index);
  const AnswerSet b = EvaluateIUQBasic(*tree, objects, issuer, spec, scan);
  ASSERT_FALSE(a.empty());
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1].id, a[i].id);
  EXPECT_EQ(a, b);
}

TEST(BasicEvalTest, ProbabilitiesClampedToOne) {
  // A coarse midpoint grid over a peaked Gaussian issuer overshoots: the
  // raw Eq. 2 weights can sum above 1 near region boundaries. With a query
  // range covering every sample an unclamped evaluator would report
  // pi > 1; the contract is pi ∈ [0, 1].
  const Rect region(0, 100, 0, 100);
  const size_t per_axis = 4;
  auto gaussian = ::ilq::testing::MakeGaussian(region);

  // Reproduce the evaluator's midpoint weights to confirm this
  // configuration actually overshoots (otherwise the clamp is untested).
  const double dx = region.Width() / static_cast<double>(per_axis);
  const double dy = region.Height() / static_cast<double>(per_axis);
  double total = 0.0;
  for (size_t i = 0; i < per_axis; ++i) {
    for (size_t j = 0; j < per_axis; ++j) {
      const Point p(region.xmin + (static_cast<double>(i) + 0.5) * dx,
                    region.ymin + (static_cast<double>(j) + 0.5) * dy);
      total += gaussian->Density(p) * dx * dy;
    }
  }
  ASSERT_GT(total, 1.0) << "grid does not overshoot; pick a coarser grid";

  PointFixture fixture = MakePointFixture(50, 86);
  UncertainObject issuer(0, std::move(gaussian));
  const RangeQuerySpec spec(2000, 2000);  // covers every sampled range
  BasicEvalOptions options;
  options.grid_per_axis = per_axis;
  for (bool use_index : {true, false}) {
    options.use_index = use_index;
    const AnswerSet got = EvaluateIPQBasic(fixture.index, fixture.objects,
                                           issuer, spec, options);
    ASSERT_FALSE(got.empty());
    for (const auto& a : got) {
      EXPECT_LE(a.probability, 1.0) << "object " << a.id;
      EXPECT_GE(a.probability, 0.0) << "object " << a.id;
      // Every sample covers every object here, so the clamped value is
      // exactly 1.
      EXPECT_DOUBLE_EQ(a.probability, 1.0) << "object " << a.id;
    }
  }
}

TEST(BasicEvalTest, EmptyDatasetYieldsNoAnswers) {
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, {});
  ASSERT_TRUE(tree.ok());
  UncertainObject issuer(0, MakeUniform(Rect(0, 10, 0, 10)));
  EXPECT_TRUE(
      EvaluateIPQBasic(*tree, {}, issuer, RangeQuerySpec(5, 5), {}).empty());
  EXPECT_TRUE(
      EvaluateIUQBasic(*tree, {}, issuer, RangeQuerySpec(5, 5), {}).empty());
}

}  // namespace
}  // namespace ilq
