// Differential fuzzing: on randomized datasets, issuers and query shapes,
// every independent evaluation path must tell the same story —
//   * enhanced vs basic evaluators,
//   * analytic kernels vs Monte-Carlo,
//   * Minkowski vs p-expanded filtering,
//   * R-tree vs PTI vs grid vs linear scan,
//   * rectangular vs equivalent degenerate configurations.
// Seeds parameterize whole universes, so each TEST_P instance explores a
// different random world.

#include <gtest/gtest.h>

#include <map>

#include "core/circular.h"
#include "core/duality.h"
#include "core/engine.h"
#include "core/inn.h"
#include "index/grid_index.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, FilterChainsAgreeOnAnswers) {
  Rng rng(GetParam());
  // Random mixed-pdf dataset.
  std::vector<PointObject> points;
  std::vector<UncertainObject> objects;
  for (size_t i = 0; i < 400; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
    const Rect region = RandomRect(&rng, Rect(0, 1000, 0, 1000), 5, 90);
    std::unique_ptr<UncertaintyPdf> pdf;
    switch (i % 3) {
      case 0:
        pdf = MakeUniform(region);
        break;
      case 1:
        pdf = MakeGaussian(region);
        break;
      default:
        pdf = MakeSkewedHistogram(region, 3, 3, GetParam() + i);
        break;
    }
    objects.emplace_back(static_cast<ObjectId>(i + 1), std::move(pdf));
  }
  Result<QueryEngine> built =
      QueryEngine::Build(std::move(points), std::move(objects));
  ASSERT_TRUE(built.ok());
  const QueryEngine& engine = *built;

  for (int round = 0; round < 6; ++round) {
    const double u = rng.Uniform(5, 200);
    const double cx = rng.Uniform(u, 1000 - u);
    const double cy = rng.Uniform(u, 1000 - u);
    const Rect region(cx - u, cx + u, cy - u, cy + u);
    Result<UncertainObject> issuer = engine.MakeIssuer(
        round % 2 == 0
            ? std::unique_ptr<UncertaintyPdf>(MakeUniform(region))
            : std::unique_ptr<UncertaintyPdf>(MakeGaussian(region)));
    ASSERT_TRUE(issuer.ok());
    const RangeQuerySpec spec(rng.Uniform(20, 250), rng.Uniform(20, 250),
                              rng.Uniform(0.0, 1.0));

    // C-IPQ: both filters identical answers.
    auto by_id = [](const AnswerSet& a) {
      std::map<ObjectId, double> m;
      for (const auto& x : a) m[x.id] = x.probability;
      return m;
    };
    EXPECT_EQ(by_id(engine.Cipq(*issuer, spec, CipqFilter::kMinkowski)),
              by_id(engine.Cipq(*issuer, spec, CipqFilter::kPExpanded)));

    // C-IUQ: R-tree baseline == PTI with all strategies.
    EXPECT_EQ(by_id(engine.CiuqRTree(*issuer, spec)),
              by_id(engine.CiuqPti(*issuer, spec)));

    // IPQ via the engine == direct duality over a scan.
    const std::map<ObjectId, double> ipq =
        by_id(engine.Ipq(*issuer, spec));
    std::map<ObjectId, double> scan;
    for (const PointObject& s : engine.points()) {
      const double pi =
          PointQualification(issuer->pdf(), s.location, spec.w, spec.h);
      if (pi > 0) scan[s.id] = pi;
    }
    EXPECT_EQ(ipq.size(), scan.size());
    for (const auto& [id, pi] : ipq) {
      EXPECT_NEAR(pi, scan.at(id), 1e-9);
    }
  }
}

TEST_P(FuzzTest, IndexesAgreeOnCandidateSets) {
  Rng rng(GetParam() * 31);
  const Rect space(0, 1000, 0, 1000);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 1500; ++i) {
    items.push_back(
        {RandomRect(&rng, space, 1, 70), static_cast<ObjectId>(i)});
  }
  Result<RTree> rtree = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(rtree.ok());
  Result<GridIndex> grid_made = GridIndex::Create(space, 24, 24);
  ASSERT_TRUE(grid_made.ok());
  GridIndex grid = std::move(grid_made).ValueOrDie();
  for (const RTree::Item& item : items) grid.Insert(item.box, item.id);

  for (int q = 0; q < 40; ++q) {
    const Rect range = RandomRect(&rng, space, 10, 350);
    std::vector<ObjectId> a = rtree->QueryIds(range);
    std::vector<ObjectId> b = grid.QueryIds(range);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST_P(FuzzTest, KernelsAgreeAcrossPdfFamilies) {
  Rng rng(GetParam() * 77);
  for (int round = 0; round < 8; ++round) {
    const Rect u0 = RandomRect(&rng, Rect(0, 800, 0, 800), 40, 200);
    const Rect ui = RandomRect(&rng, Rect(0, 800, 0, 800), 20, 150);
    const double w = rng.Uniform(20, 200);
    const double h = rng.Uniform(20, 200);
    auto issuer = (round % 2 == 0)
                      ? std::unique_ptr<UncertaintyPdf>(MakeUniform(u0))
                      : std::unique_ptr<UncertaintyPdf>(MakeGaussian(u0));
    auto object =
        (round % 3 == 0)
            ? std::unique_ptr<UncertaintyPdf>(
                  MakeSkewedHistogram(ui, 4, 3,
                                      GetParam() + 100 +
                                          static_cast<uint64_t>(round)))
        : (round % 3 == 1)
            ? std::unique_ptr<UncertaintyPdf>(MakeUniform(ui))
            : std::unique_ptr<UncertaintyPdf>(MakeGaussian(ui));

    const double analytic =
        UncertainQualification(*issuer, *object, w, h, 16);
    Rng mc_rng(GetParam() * 1000 + static_cast<uint64_t>(round));
    const double mc =
        UncertainQualificationMC(*issuer, *object, w, h, 150000, &mc_rng);
    EXPECT_NEAR(analytic, mc, 0.01)
        << issuer->name() << " x " << object->name() << " round " << round;
  }
}

TEST_P(FuzzTest, InnEvaluatorsAgree) {
  Rng rng(GetParam() * 131);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 250; ++i) {
    items.push_back({Rect::AtPoint(Point(rng.Uniform(0, 1000),
                                         rng.Uniform(0, 1000))),
                     static_cast<ObjectId>(i + 1)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ASSERT_TRUE(tree.ok());
  for (int round = 0; round < 3; ++round) {
    const Rect u0 = RandomRect(&rng, Rect(50, 950, 50, 950), 80, 300);
    const AnswerSet exact = EvaluateINNExactUniform(*tree, u0);
    double sum = 0.0;
    for (const auto& a : exact) sum += a.probability;
    EXPECT_NEAR(sum, 1.0, 1e-9);

    UncertainObject issuer(0, MakeUniform(u0));
    InnOptions options;
    options.samples = 20000;
    options.seed = GetParam() + static_cast<uint64_t>(round);
    const AnswerSet mc = EvaluateINN(*tree, issuer, options);
    std::map<ObjectId, double> exact_by_id;
    for (const auto& a : exact) exact_by_id[a.id] = a.probability;
    for (const auto& a : mc) {
      ASSERT_TRUE(exact_by_id.count(a.id));
      EXPECT_NEAR(a.probability, exact_by_id[a.id], 0.025);
    }
  }
}

TEST_P(FuzzTest, CircularAndRectangularConsistent) {
  // A disk issuer's answers must be a subset of its bounding-box issuer's
  // candidates, and probabilities must stay in range.
  Rng rng(GetParam() * 17);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 1000; ++i) {
    items.push_back({Rect::AtPoint(Point(rng.Uniform(0, 1000),
                                         rng.Uniform(0, 1000))),
                     static_cast<ObjectId>(i + 1)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ASSERT_TRUE(tree.ok());
  for (int round = 0; round < 5; ++round) {
    const double r = rng.Uniform(30, 150);
    const Circle disk(Point(rng.Uniform(200, 800), rng.Uniform(200, 800)),
                      r);
    Result<UniformDiskPdf> issuer = UniformDiskPdf::Make(disk);
    ASSERT_TRUE(issuer.ok());
    const RangeQuerySpec spec(rng.Uniform(40, 200), rng.Uniform(40, 200));
    const AnswerSet disk_answers =
        EvaluateIPQCircular(*tree, *issuer, spec);
    // Reference via scan.
    std::map<ObjectId, double> scan;
    tree->Query(Rect(-1, 1001, -1, 1001), [&](const Rect& box, ObjectId id) {
      const double pi =
          PointQualification(*issuer, box.Center(), spec.w, spec.h);
      if (pi > 0) scan[id] = pi;
    });
    ASSERT_EQ(disk_answers.size(), scan.size());
    for (const auto& a : disk_answers) {
      EXPECT_NEAR(a.probability, scan.at(a.id), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Universes, FuzzTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006));

}  // namespace
}  // namespace ilq
