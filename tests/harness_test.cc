#include "benchutil/harness.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ilq {
namespace {

TEST(HarnessEnvTest, QueriesDefaultWithoutEnv) {
  unsetenv("ILQ_BENCH_QUERIES");
  EXPECT_EQ(BenchQueriesPerPoint(120), 120u);
}

TEST(HarnessEnvTest, QueriesParsesEnv) {
  setenv("ILQ_BENCH_QUERIES", "500", 1);
  EXPECT_EQ(BenchQueriesPerPoint(120), 500u);
  unsetenv("ILQ_BENCH_QUERIES");
}

TEST(HarnessEnvTest, QueriesIgnoresGarbage) {
  setenv("ILQ_BENCH_QUERIES", "not-a-number", 1);
  EXPECT_EQ(BenchQueriesPerPoint(120), 120u);
  setenv("ILQ_BENCH_QUERIES", "-5", 1);
  EXPECT_EQ(BenchQueriesPerPoint(120), 120u);
  unsetenv("ILQ_BENCH_QUERIES");
}

TEST(HarnessEnvTest, ScaleAcceptsAnyPositiveFactor) {
  unsetenv("ILQ_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchDatasetScale(), 1.0);
  setenv("ILQ_BENCH_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(BenchDatasetScale(), 0.25);
  // Larger-than-paper catalogs are a valid request, not clamped away.
  setenv("ILQ_BENCH_SCALE", "7.0", 1);
  EXPECT_DOUBLE_EQ(BenchDatasetScale(), 7.0);
  setenv("ILQ_BENCH_SCALE", "2", 1);
  EXPECT_DOUBLE_EQ(BenchDatasetScale(), 2.0);
  unsetenv("ILQ_BENCH_SCALE");
}

TEST(HarnessEnvTest, ScaleWarnsAndDefaultsOnNonsense) {
  for (const char* bad : {"0", "-3", "not-a-number", "1.5x", "inf", "nan"}) {
    setenv("ILQ_BENCH_SCALE", bad, 1);
    EXPECT_DOUBLE_EQ(BenchDatasetScale(), 1.0) << "value " << bad;
  }
  unsetenv("ILQ_BENCH_SCALE");
}

TEST(HarnessTest, MicroBenchJsonPathHonorsEnv) {
  unsetenv("ILQ_BENCH_JSON");
  EXPECT_EQ(MicroBenchJsonPath(), "BENCH_micro.json");
  setenv("ILQ_BENCH_JSON", "/tmp/custom.json", 1);
  EXPECT_EQ(MicroBenchJsonPath(), "/tmp/custom.json");
  unsetenv("ILQ_BENCH_JSON");
}

TEST(HarnessTest, WriteMicroBenchJsonRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "ilq_harness_bench_micro.json";
  const std::vector<MicroBenchResult> results = {
      {"BM_IntegrateGL/16", 10.5, 10.4, 1266288.0},
      {"BM_quote\"name", 1.0, 1.0, 1.0},
      {"BM_ctrl\nname", 1.0, 1.0, 1.0},
  };
  ASSERT_TRUE(WriteMicroBenchJson(path, results).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(json.find("\"BM_IntegrateGL/16\""), std::string::npos);
  EXPECT_NE(json.find("\"real_time_ns\": 10.5000"), std::string::npos);
  EXPECT_NE(json.find("BM_quote\\\"name"), std::string::npos);
  EXPECT_NE(json.find("BM_ctrl\\u000aname"), std::string::npos);
  std::remove(path.c_str());
}

TEST(HarnessTest, WriteMicroBenchJsonFailsOnBadPath) {
  const Status status =
      WriteMicroBenchJson("/nonexistent/dir/out.json", {});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST(HarnessTest, CsvWriteFailsOnBadPath) {
  SeriesTable table("t", "x", {"m"});
  table.AddRow(1, {CellResult{}});
  const Status status = table.WriteCsv("/nonexistent/dir/out.csv");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST(HarnessTest, RunCellTimesEveryIssuer) {
  // Empty issuer list yields a zeroed cell rather than dividing by zero.
  const CellResult empty = RunCell({}, [](const UncertainObject&,
                                          IndexStats*) { return size_t{0}; });
  EXPECT_EQ(empty.queries, 0u);
  EXPECT_EQ(empty.mean_ms, 0.0);
}

}  // namespace
}  // namespace ilq
