#include "benchutil/harness.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ilq {
namespace {

TEST(HarnessEnvTest, QueriesDefaultWithoutEnv) {
  unsetenv("ILQ_BENCH_QUERIES");
  EXPECT_EQ(BenchQueriesPerPoint(120), 120u);
}

TEST(HarnessEnvTest, QueriesParsesEnv) {
  setenv("ILQ_BENCH_QUERIES", "500", 1);
  EXPECT_EQ(BenchQueriesPerPoint(120), 500u);
  unsetenv("ILQ_BENCH_QUERIES");
}

TEST(HarnessEnvTest, QueriesIgnoresGarbage) {
  setenv("ILQ_BENCH_QUERIES", "not-a-number", 1);
  EXPECT_EQ(BenchQueriesPerPoint(120), 120u);
  setenv("ILQ_BENCH_QUERIES", "-5", 1);
  EXPECT_EQ(BenchQueriesPerPoint(120), 120u);
  unsetenv("ILQ_BENCH_QUERIES");
}

TEST(HarnessEnvTest, ScaleDefaultsAndClamps) {
  unsetenv("ILQ_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchDatasetScale(), 1.0);
  setenv("ILQ_BENCH_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(BenchDatasetScale(), 0.25);
  setenv("ILQ_BENCH_SCALE", "7.0", 1);  // out of range -> default
  EXPECT_DOUBLE_EQ(BenchDatasetScale(), 1.0);
  setenv("ILQ_BENCH_SCALE", "0", 1);
  EXPECT_DOUBLE_EQ(BenchDatasetScale(), 1.0);
  unsetenv("ILQ_BENCH_SCALE");
}

TEST(HarnessTest, CsvWriteFailsOnBadPath) {
  SeriesTable table("t", "x", {"m"});
  table.AddRow(1, {CellResult{}});
  const Status status = table.WriteCsv("/nonexistent/dir/out.csv");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST(HarnessTest, RunCellTimesEveryIssuer) {
  // Empty issuer list yields a zeroed cell rather than dividing by zero.
  const CellResult empty = RunCell({}, [](const UncertainObject&,
                                          IndexStats*) { return size_t{0}; });
  EXPECT_EQ(empty.queries, 0u);
  EXPECT_EQ(empty.mean_ms, 0.0);
}

}  // namespace
}  // namespace ilq
