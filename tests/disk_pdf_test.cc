#include "prob/disk_pdf.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ilq {
namespace {

UniformDiskPdf Make(const Circle& c) {
  Result<UniformDiskPdf> made = UniformDiskPdf::Make(c);
  EXPECT_TRUE(made.ok());
  return std::move(made).ValueOrDie();
}

TEST(DiskPdfTest, RejectsNonPositiveRadius) {
  EXPECT_FALSE(UniformDiskPdf::Make(Circle(Point(0, 0), 0)).ok());
  EXPECT_FALSE(UniformDiskPdf::Make(Circle(Point(0, 0), -1)).ok());
}

TEST(DiskPdfTest, TotalMassIsOne) {
  const UniformDiskPdf pdf = Make(Circle(Point(5, 5), 2));
  EXPECT_NEAR(pdf.MassIn(Rect(-10, 20, -10, 20)), 1.0, 1e-9);
}

TEST(DiskPdfTest, DensityInsideOutside) {
  const UniformDiskPdf pdf = Make(Circle(Point(0, 0), 2));
  EXPECT_GT(pdf.Density(Point(1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Density(Point(2.1, 0)), 0.0);
  // Corner of the bounding box is outside the disk.
  EXPECT_DOUBLE_EQ(pdf.Density(Point(1.9, 1.9)), 0.0);
}

TEST(DiskPdfTest, HalfPlaneMass) {
  const UniformDiskPdf pdf = Make(Circle(Point(0, 0), 3));
  EXPECT_NEAR(pdf.MassIn(Rect(0, 10, -10, 10)), 0.5, 1e-9);
  EXPECT_NEAR(pdf.CdfX(0), 0.5, 1e-9);
}

TEST(DiskPdfTest, CdfMonotoneAndBounded) {
  const UniformDiskPdf pdf = Make(Circle(Point(0, 0), 2));
  double prev = -1.0;
  for (double x = -2.5; x <= 2.5; x += 0.1) {
    const double c = pdf.CdfX(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(pdf.CdfX(-2), 0.0);
  EXPECT_DOUBLE_EQ(pdf.CdfX(2), 1.0);
}

TEST(DiskPdfTest, QuantileInvertsCdf) {
  const UniformDiskPdf pdf = Make(Circle(Point(3, -1), 2));
  for (double p = 0.05; p < 1.0; p += 0.1) {
    EXPECT_NEAR(pdf.CdfX(pdf.QuantileX(p)), p, 1e-9);
    EXPECT_NEAR(pdf.CdfY(pdf.QuantileY(p)), p, 1e-9);
  }
}

TEST(DiskPdfTest, MarginalIsChordLengthOverArea) {
  const UniformDiskPdf pdf = Make(Circle(Point(0, 0), 2));
  // At x = 0 the chord has length 4; density = 4 / (4π).
  EXPECT_NEAR(pdf.MarginalPdfX(0), 4.0 / (4.0 * 3.14159265358979323846),
              1e-12);
  EXPECT_DOUBLE_EQ(pdf.MarginalPdfX(2.0), 0.0);
}

TEST(DiskPdfTest, SamplesInsideDiskAndUniform) {
  const Circle disk(Point(10, 10), 3);
  const UniformDiskPdf pdf = Make(disk);
  Rng rng(12);
  const int n = 50000;
  int inner = 0;  // within r/sqrt(2) — should hold exactly half the mass
  for (int i = 0; i < n; ++i) {
    const Point p = pdf.Sample(&rng);
    ASSERT_TRUE(disk.Contains(p));
    if (disk.center.SquaredDistanceTo(p) <= disk.radius * disk.radius / 2) {
      ++inner;
    }
  }
  EXPECT_NEAR(static_cast<double>(inner) / n, 0.5, 0.01);
}

TEST(DiskPdfTest, MassInMatchesSampleFrequency) {
  const UniformDiskPdf pdf = Make(Circle(Point(0, 0), 2));
  const Rect probe(-1, 0.5, 0, 1.7);
  Rng rng(13);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (probe.Contains(pdf.Sample(&rng))) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, pdf.MassIn(probe), 0.01);
}

TEST(DiskPdfTest, NotProduct) {
  EXPECT_FALSE(Make(Circle(Point(0, 0), 1)).IsProduct());
}

}  // namespace
}  // namespace ilq
