#include "core/ipq.h"

#include <gtest/gtest.h>

#include <map>

#include "core/duality.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;

struct Fixture {
  std::vector<PointObject> objects;
  RTree index;
};

Fixture MakeFixture(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<PointObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < n; ++i) {
    const Point p(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    objects.emplace_back(static_cast<ObjectId>(i + 1), p);
    items.push_back({Rect::AtPoint(p), static_cast<ObjectId>(i + 1)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  EXPECT_TRUE(tree.ok());
  return {std::move(objects), std::move(tree).ValueOrDie()};
}

// Brute-force reference: probability for every object via duality, no index.
std::map<ObjectId, double> Reference(const Fixture& fixture,
                                     const UncertainObject& issuer,
                                     const RangeQuerySpec& spec) {
  std::map<ObjectId, double> out;
  for (const PointObject& s : fixture.objects) {
    const double pi =
        PointQualification(issuer.pdf(), s.location, spec.w, spec.h);
    if (pi > 0) out[s.id] = pi;
  }
  return out;
}

TEST(IpqTest, MatchesBruteForceUniform) {
  Fixture fixture = MakeFixture(2000, 91);
  UncertainObject issuer(0, MakeUniform(Rect(300, 500, 300, 500)));
  const RangeQuerySpec spec(150, 150);
  const AnswerSet got = EvaluateIPQ(fixture.index, issuer, spec, {});
  const std::map<ObjectId, double> expected =
      Reference(fixture, issuer, spec);
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& a : got) {
    ASSERT_TRUE(expected.count(a.id));
    EXPECT_NEAR(a.probability, expected.at(a.id), 1e-12);
  }
}

TEST(IpqTest, MatchesBruteForceGaussianIssuer) {
  Fixture fixture = MakeFixture(2000, 92);
  UncertainObject issuer(0, MakeGaussian(Rect(200, 600, 200, 600)));
  const RangeQuerySpec spec(100, 100);
  const AnswerSet got = EvaluateIPQ(fixture.index, issuer, spec, {});
  const std::map<ObjectId, double> expected =
      Reference(fixture, issuer, spec);
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& a : got) {
    EXPECT_NEAR(a.probability, expected.at(a.id), 1e-9);
  }
}

TEST(IpqTest, AnswersAreWithinMinkowskiSum) {
  Fixture fixture = MakeFixture(3000, 93);
  UncertainObject issuer(0, MakeUniform(Rect(450, 550, 450, 550)));
  const RangeQuerySpec spec(80, 60);
  const Rect expanded = issuer.region().Expanded(spec.w, spec.h);
  const AnswerSet got = EvaluateIPQ(fixture.index, issuer, spec, {});
  for (const auto& a : got) {
    EXPECT_TRUE(expanded.Contains(fixture.objects[a.id - 1].location));
    EXPECT_GT(a.probability, 0.0);
    EXPECT_LE(a.probability, 1.0 + 1e-12);
  }
}

TEST(IpqTest, ObjectInsideEveryQueryHasProbabilityOne) {
  std::vector<RTree::Item> items = {{Rect::AtPoint(Point(500, 500)), 1}};
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ASSERT_TRUE(tree.ok());
  UncertainObject issuer(0, MakeUniform(Rect(480, 520, 480, 520)));
  // w = 100: R(x,y) covers (500,500) for every issuer position.
  const AnswerSet got = EvaluateIPQ(*tree, issuer, RangeQuerySpec(100, 100),
                                    {});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NEAR(got[0].probability, 1.0, 1e-12);
}

TEST(IpqTest, MonteCarloKernelApproximatesAnalytic) {
  Fixture fixture = MakeFixture(200, 94);
  UncertainObject issuer(0, MakeUniform(Rect(300, 700, 300, 700)));
  const RangeQuerySpec spec(150, 150);
  EvalOptions mc;
  mc.kernel = ProbabilityKernel::kMonteCarlo;
  mc.mc_samples = 5000;
  const AnswerSet analytic = EvaluateIPQ(fixture.index, issuer, spec, {});
  const AnswerSet sampled = EvaluateIPQ(fixture.index, issuer, spec, mc);
  std::map<ObjectId, double> truth;
  for (const auto& a : analytic) truth[a.id] = a.probability;
  for (const auto& a : sampled) {
    ASSERT_TRUE(truth.count(a.id));
    EXPECT_NEAR(a.probability, truth[a.id], 0.05);
  }
}

TEST(IpqTest, StatsReportCandidates) {
  Fixture fixture = MakeFixture(5000, 95);
  UncertainObject issuer(0, MakeUniform(Rect(400, 600, 400, 600)));
  IndexStats stats;
  const AnswerSet got =
      EvaluateIPQ(fixture.index, issuer, RangeQuerySpec(100, 100), {},
                  &stats);
  EXPECT_EQ(stats.candidates, got.size());  // all candidates qualify (>0)
  EXPECT_GT(stats.node_accesses, 0u);
}

TEST(IpqTest, LargerUncertaintyFindsMoreCandidates) {
  Fixture fixture = MakeFixture(5000, 96);
  const RangeQuerySpec spec(100, 100);
  IndexStats small_stats;
  UncertainObject small(0, MakeUniform(Rect(495, 505, 495, 505)));
  EvaluateIPQ(fixture.index, small, spec, {}, &small_stats);
  IndexStats large_stats;
  UncertainObject large(0, MakeUniform(Rect(300, 700, 300, 700)));
  EvaluateIPQ(fixture.index, large, spec, {}, &large_stats);
  EXPECT_GT(large_stats.candidates, small_stats.candidates);
}

}  // namespace
}  // namespace ilq
