#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace ilq {
namespace {

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.Uniform(-5.0, 11.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 11.0);
  }
}

TEST(RngTest, UniformDegenerateRangeReturnsLo) {
  Rng rng(1);
  EXPECT_EQ(rng.Uniform(3.5, 3.5), 3.5);
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBelowStaysBelow) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianScaledMoments) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace ilq
