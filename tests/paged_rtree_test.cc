// Disk-resident R-tree suite (ISSUE 8 tentpole): SavePaged → OpenPaged must
// be an *exact* round trip of query behaviour, not just of answers —
// traversal order, node-access counts and k-NN results are pinned equal to
// the arena tree the file was saved from, including under a buffer budget of
// a single page (maximal thrash). Also: paged trees validate, expose buffer
// counters whose hits + misses equal the paged node reads, honor the
// max_leaf_id bound for positionally-indexed trees, and refuse too-small
// page budgets with Status.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "index/rtree.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::RandomRect;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "ilq_paged_rtree_" + name;
}

std::vector<RTree::Item> RandomItems(uint64_t seed, size_t count) {
  Rng rng(seed);
  const Rect space(0, 1000, 0, 1000);
  std::vector<RTree::Item> items;
  items.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    items.push_back(RTree::Item{RandomRect(&rng, space, 1, 40),
                                static_cast<ObjectId>(i)});
  }
  return items;
}

// Runs the same query workload against both trees and expects bit-equal
// results *and* bit-equal node-access counters (SavePaged preserves tree
// shape and entry order, so even the traversal statistics must agree).
void ExpectQueriesIdentical(const RTree& ram, const RTree& disk,
                            uint64_t seed, bool expect_counter_parity) {
  Rng rng(seed);
  const Rect space(0, 1000, 0, 1000);
  for (int q = 0; q < 60; ++q) {
    const Rect range = RandomRect(&rng, space, 10, 220);
    IndexStats ram_stats, disk_stats;
    const std::vector<ObjectId> ram_ids = ram.QueryIds(range, &ram_stats);
    const std::vector<ObjectId> disk_ids = disk.QueryIds(range, &disk_stats);
    ASSERT_EQ(ram_ids, disk_ids) << "query " << q;
    ASSERT_EQ(ram_stats.candidates, disk_stats.candidates);
    if (expect_counter_parity) {
      ASSERT_EQ(ram_stats.node_accesses, disk_stats.node_accesses);
      ASSERT_EQ(ram_stats.leaf_accesses, disk_stats.leaf_accesses);
    }
    // Every paged node read is exactly one buffer hit or miss.
    ASSERT_EQ(disk_stats.page_hits + disk_stats.page_misses,
              disk_stats.node_accesses)
        << "query " << q;
    ASSERT_EQ(ram_stats.page_hits + ram_stats.page_misses, 0u);
  }
  // k-NN takes the best-first path (priority queue over MBR distances);
  // it too must be bit-identical.
  for (int q = 0; q < 20; ++q) {
    const Point query(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    const auto ram_nn = ram.Nearest(query, 5);
    const auto disk_nn = disk.Nearest(query, 5);
    ASSERT_EQ(ram_nn.size(), disk_nn.size());
    for (size_t i = 0; i < ram_nn.size(); ++i) {
      EXPECT_EQ(ram_nn[i].id, disk_nn[i].id);
      EXPECT_EQ(ram_nn[i].distance, disk_nn[i].distance);
    }
  }
}

TEST(PagedRTreeTest, BulkLoadedTreeRoundTripsBitIdentically) {
  RTreeOptions options;
  options.page_size_bytes = 512;  // several levels at 600 items
  auto ram = RTree::BulkLoad(options, RandomItems(7, 600));
  ASSERT_TRUE(ram.ok()) << ram.status().ToString();

  const std::string path = TempPath("bulk.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());
  auto disk = RTree::OpenPaged(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  EXPECT_TRUE(disk->is_paged());
  EXPECT_FALSE(ram->is_paged());
  EXPECT_EQ(disk->size(), ram->size());
  EXPECT_EQ(disk->height(), ram->height());
  EXPECT_EQ(disk->node_count(), ram->node_count());
  EXPECT_EQ(disk->max_entries(), ram->max_entries());
  EXPECT_EQ(disk->min_entries(), ram->min_entries());
  EXPECT_EQ(disk->page_size_bytes(), ram->page_size_bytes());
  const Rect rb = ram->bounds();
  const Rect db = disk->bounds();
  EXPECT_EQ(rb.xmin, db.xmin);
  EXPECT_EQ(rb.xmax, db.xmax);
  EXPECT_EQ(rb.ymin, db.ymin);
  EXPECT_EQ(rb.ymax, db.ymax);
  EXPECT_TRUE(disk->Validate().ok());

  ExpectQueriesIdentical(*ram, *disk, 19, /*expect_counter_parity=*/true);
  std::remove(path.c_str());
}

TEST(PagedRTreeTest, SinglePageBufferThrashesButStaysBitIdentical) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  auto ram = RTree::BulkLoad(options, RandomItems(11, 400));
  ASSERT_TRUE(ram.ok());

  const std::string path = TempPath("thrash.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());
  PagedOpenOptions open;
  open.buffer_pool_bytes = 1;  // resolves to a single resident page
  auto disk = RTree::OpenPaged(path, open);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_EQ(disk->buffer_capacity_pages(), 1u);

  ExpectQueriesIdentical(*ram, *disk, 23, /*expect_counter_parity=*/true);

  // With one slot for a multi-page tree the workload must have evicted.
  const BufferCounters counters = disk->buffer_counters();
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_GT(counters.misses, counters.hits);
  std::remove(path.c_str());
}

TEST(PagedRTreeTest, InsertBuiltTreeWithRecycledSlotsRoundTrips) {
  // Insert/Remove churn leaves recycled arena slots; SavePaged must skip
  // them and still preserve traversal behaviour exactly.
  RTreeOptions options;
  options.page_size_bytes = 256;
  auto ram = RTree::Create(options);
  ASSERT_TRUE(ram.ok());
  const std::vector<RTree::Item> items = RandomItems(13, 500);
  for (const RTree::Item& item : items) ram->Insert(item.box, item.id);
  for (size_t i = 0; i < items.size(); i += 3) {
    ASSERT_TRUE(ram->Remove(items[i].box, items[i].id));
  }
  ASSERT_TRUE(ram->Validate().ok());

  const std::string path = TempPath("churn.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());
  auto disk = RTree::OpenPaged(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(disk->size(), ram->size());
  EXPECT_EQ(disk->node_count(), ram->node_count());
  // The file holds only live nodes — recycled slots are compacted away, so
  // the paged arena_size equals the live node count.
  EXPECT_EQ(disk->arena_size(), ram->node_count());
  ExpectQueriesIdentical(*ram, *disk, 29, /*expect_counter_parity=*/true);
  std::remove(path.c_str());
}

TEST(PagedRTreeTest, EmptyTreeRoundTrips) {
  auto ram = RTree::Create(RTreeOptions{});
  ASSERT_TRUE(ram.ok());
  const std::string path = TempPath("empty.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());
  auto disk = RTree::OpenPaged(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(disk->size(), 0u);
  EXPECT_EQ(disk->height(), 0u);
  EXPECT_TRUE(disk->QueryIds(Rect(0, 1000, 0, 1000)).empty());
  EXPECT_TRUE(disk->Nearest(Point(0, 0), 3).empty());
  EXPECT_TRUE(disk->Validate().ok());
  std::remove(path.c_str());
}

TEST(PagedRTreeTest, ExtraEntryBytesRoundTripThroughTheHeader) {
  // The PTI charges catalog bytes per entry; a mounted file must restore
  // the same fanout or the engine cross-check (and the paper's PTI fanout
  // math) would diverge.
  RTreeOptions options;
  options.page_size_bytes = 1024;
  options.extra_entry_bytes = 11 * 4 * sizeof(double);
  auto ram = RTree::BulkLoad(options, RandomItems(17, 300));
  ASSERT_TRUE(ram.ok());

  const std::string path = TempPath("extra.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());
  auto disk = RTree::OpenPaged(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(disk->extra_entry_bytes(), options.extra_entry_bytes);
  EXPECT_EQ(disk->max_entries(), ram->max_entries());
  ExpectQueriesIdentical(*ram, *disk, 31, /*expect_counter_parity=*/true);
  std::remove(path.c_str());
}

TEST(PagedRTreeTest, MaxEntriesOverrideGrowsThePhysicalPage) {
  // A fanout override beyond what the page budget holds forces SavePaged
  // to grow the physical page so every node still fits one page.
  RTreeOptions options;
  options.page_size_bytes = 128;
  options.max_entries_override = 40;  // needs 16 + 40*36 = 1456 bytes
  auto ram = RTree::BulkLoad(options, RandomItems(37, 250));
  ASSERT_TRUE(ram.ok());

  const std::string path = TempPath("override.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());
  auto disk = RTree::OpenPaged(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(disk->max_entries(), 40u);
  EXPECT_GE(disk->page_size_bytes(), size_t{16 + 40 * 36});
  ExpectQueriesIdentical(*ram, *disk, 41, /*expect_counter_parity=*/true);
  std::remove(path.c_str());
}

TEST(PagedRTreeTest, MaxLeafIdBoundRejectsForeignFiles) {
  // Positionally-indexed trees (uncertain/PTI) open with max_leaf_id =
  // catalog size - 1, so mounting a file whose leaves reference beyond the
  // catalog fails up front instead of reading out of bounds at query time.
  auto ram = RTree::BulkLoad(RTreeOptions{}, RandomItems(43, 120));
  ASSERT_TRUE(ram.ok());
  const std::string path = TempPath("leafid.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());

  PagedOpenOptions open;
  open.max_leaf_id = 118;  // ids run 0..119
  EXPECT_EQ(RTree::OpenPaged(path, open).status().code(),
            StatusCode::kInvalidArgument);
  open.max_leaf_id = 119;
  EXPECT_TRUE(RTree::OpenPaged(path, open).ok());
  std::remove(path.c_str());
}

TEST(PagedRTreeTest, SkippingDeepVerifyStillOpensGoodFiles) {
  auto ram = RTree::BulkLoad(RTreeOptions{}, RandomItems(47, 200));
  ASSERT_TRUE(ram.ok());
  const std::string path = TempPath("fast.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());
  PagedOpenOptions open;
  open.deep_verify = false;
  auto disk = RTree::OpenPaged(path, open);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ExpectQueriesIdentical(*ram, *disk, 53, /*expect_counter_parity=*/true);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ilq
