#include "geometry/minkowski.h"

#include <gtest/gtest.h>

#include <numbers>

#include "common/rng.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MonteCarloArea;

TEST(MinkowskiTest, ExpandedQueryRangeIsGrownRect) {
  // Figure 2: U0 grown by w horizontally, h vertically.
  const Rect u0(100, 200, 50, 80);
  EXPECT_EQ(ExpandedQueryRange(u0, 30, 10), Rect(70, 230, 40, 90));
}

TEST(MinkowskiTest, PolygonSumOfSquares) {
  // Square ⊕ square = square with summed extents.
  const ConvexPolygon a = ConvexPolygon::FromRect(Rect(0, 2, 0, 2));
  const ConvexPolygon b = ConvexPolygon::FromRect(Rect(-1, 1, -1, 1));
  const ConvexPolygon sum = MinkowskiSum(a, b);
  EXPECT_EQ(sum.BoundingBox(), Rect(-1, 3, -1, 3));
  EXPECT_NEAR(sum.Area(), 16.0, 1e-9);
}

TEST(MinkowskiTest, PolygonSumMatchesRectExpansion) {
  // rect ⊕ centred rect must equal Rect::Expanded — the paper's O(1) case.
  const Rect u0(10, 30, -5, 5);
  const double w = 4;
  const double h = 7;
  const ConvexPolygon sum =
      MinkowskiSum(ConvexPolygon::FromRect(u0),
                   ConvexPolygon::FromRect(Rect(-w, w, -h, h)));
  EXPECT_EQ(sum.BoundingBox(), u0.Expanded(w, h));
  EXPECT_NEAR(sum.Area(), u0.Expanded(w, h).Area(), 1e-9);
}

TEST(MinkowskiTest, TriangleSumVertexCount) {
  // Footnote 1: at most m + n edges.
  Result<ConvexPolygon> t1 =
      ConvexPolygon::MakeConvex({{0, 0}, {2, 0}, {0, 2}});
  Result<ConvexPolygon> t2 =
      ConvexPolygon::MakeConvex({{0, 0}, {1, 0}, {0.5, 1}});
  ASSERT_TRUE(t1.ok() && t2.ok());
  const ConvexPolygon sum = MinkowskiSum(*t1, *t2);
  EXPECT_LE(sum.size(), 6u);
  EXPECT_GE(sum.size(), 3u);
}

TEST(MinkowskiTest, SumContainsAllPairwiseSums) {
  Rng rng(99);
  Result<ConvexPolygon> a = ConvexPolygon::ConvexHull(
      {{0, 0}, {3, 1}, {4, 4}, {1, 3}, {2, 2}});
  Result<ConvexPolygon> b = ConvexPolygon::ConvexHull(
      {{-1, 0}, {1, -1}, {2, 1}, {0, 2}});
  ASSERT_TRUE(a.ok() && b.ok());
  const ConvexPolygon sum = MinkowskiSum(*a, *b);
  for (int i = 0; i < 500; ++i) {
    // Random points inside a and b via rejection.
    Point pa;
    do {
      pa = Point(rng.Uniform(0, 4), rng.Uniform(0, 4));
    } while (!a->Contains(pa));
    Point pb;
    do {
      pb = Point(rng.Uniform(-1, 2), rng.Uniform(-1, 2));
    } while (!b->Contains(pb));
    EXPECT_TRUE(sum.Contains(pa + pb))
        << "(" << pa.x + pb.x << "," << pa.y + pb.y << ") not in sum";
  }
}

TEST(RoundedRectTest, AreaFormula) {
  const RoundedRect rr{Rect(0, 4, 0, 2), 1.0};
  // core 8 + slabs 2*1*(4+2)=12 + full corner disk pi.
  EXPECT_NEAR(rr.Area(), 8 + 12 + std::numbers::pi, 1e-12);
}

TEST(RoundedRectTest, ContainsRespectsCorners) {
  const RoundedRect rr{Rect(0, 4, 0, 4), 1.0};
  EXPECT_TRUE(rr.Contains(Point(2, 2)));
  EXPECT_TRUE(rr.Contains(Point(-1, 2)));            // side slab
  EXPECT_TRUE(rr.Contains(Point(-0.6, -0.6)));       // inside corner arc
  EXPECT_FALSE(rr.Contains(Point(-0.8, -0.8)));      // outside corner arc
  EXPECT_FALSE(rr.Contains(Point(-1.1, 2)));
}

TEST(RoundedRectTest, IntersectsMatchesDistance) {
  const RoundedRect rr{Rect(0, 4, 0, 4), 1.0};
  EXPECT_TRUE(rr.Intersects(Rect(4.5, 6, 1, 2)));    // within radius of side
  EXPECT_FALSE(rr.Intersects(Rect(5.1, 6, 1, 2)));
  EXPECT_TRUE(rr.Intersects(Rect(4.6, 6, 4.6, 6)));  // corner within sqrt(.72)
  EXPECT_FALSE(rr.Intersects(Rect(4.8, 6, 4.8, 6)));
}

TEST(RoundedRectTest, IntersectionAreaDegenereatesToRect) {
  const RoundedRect rr{Rect(0, 4, 0, 4), 0.0};
  EXPECT_DOUBLE_EQ(rr.IntersectionArea(Rect(2, 6, 2, 6)), 4.0);
}

TEST(RoundedRectTest, ExpandedQueryRangeCircular) {
  const Circle u0(Point(10, 10), 2);
  const RoundedRect rr = ExpandedQueryRangeCircular(u0, 5, 3);
  EXPECT_EQ(rr.core, Rect(5, 15, 7, 13));
  EXPECT_DOUBLE_EQ(rr.radius, 2.0);
  EXPECT_EQ(rr.BoundingBox(), Rect(3, 17, 5, 15));
}

class RoundedRectAreaPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundedRectAreaPropertyTest, OverlapMatchesMonteCarlo) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 15; ++iter) {
    const RoundedRect rr{
        Rect::Centered(Point(rng.Uniform(-3, 3), rng.Uniform(-3, 3)),
                       rng.Uniform(0.5, 3), rng.Uniform(0.5, 3)),
        rng.Uniform(0.2, 2.0)};
    const Rect r = Rect::Centered(
        Point(rng.Uniform(-4, 4), rng.Uniform(-4, 4)),
        rng.Uniform(0.5, 4), rng.Uniform(0.5, 4));
    const double exact = rr.IntersectionArea(r);
    const double mc = MonteCarloArea(
        r, [&](const Point& p) { return rr.Contains(p); }, 150000,
        GetParam() * 31 + static_cast<uint64_t>(iter));
    EXPECT_NEAR(exact, mc, 0.05 * std::max(1.0, r.Area()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundedRectAreaPropertyTest,
                         ::testing::Values(7, 14, 21));

}  // namespace
}  // namespace ilq
