// Differential and determinism tests for QueryEngine::RunBatch: for every
// query method, parallel batch evaluation must return bit-identical
// answers and identical merged IndexStats to the serial loop, regardless
// of thread count or chunking — the contract documented in engine.h.

#include <gtest/gtest.h>

#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "datagen/workload.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

constexpr uint64_t kWorkloadSeed = 20070417;

QueryEngine BuildSmallEngine(EngineConfig config = EngineConfig{},
                             size_t points = 600, size_t uncertains = 300) {
  Rng rng(991);
  std::vector<PointObject> pts;
  for (size_t i = 0; i < points; ++i) {
    pts.emplace_back(static_cast<ObjectId>(i + 1),
                     Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  std::vector<UncertainObject> objs;
  for (size_t i = 0; i < uncertains; ++i) {
    objs.emplace_back(
        static_cast<ObjectId>(i + 1),
        MakeUniform(RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 60)));
  }
  Result<QueryEngine> engine =
      QueryEngine::Build(std::move(pts), std::move(objs), std::move(config));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

// A seeded §6.1-style workload scaled to the small engine's space.
Workload MakeSeededWorkload(double qp, size_t queries = 12,
                            IssuerPdfKind kind = IssuerPdfKind::kUniform) {
  WorkloadConfig config;
  config.space = Rect(0, 1000, 0, 1000);
  config.u = 25.0;
  config.w = 50.0;
  config.qp = qp;
  config.queries = queries;
  config.issuer_pdf = kind;
  config.seed = kWorkloadSeed;
  Result<Workload> workload = GenerateWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  return std::move(workload).ValueOrDie();
}

// The serial reference: the plain issuer loop RunBatch must reproduce.
AnswerSet DispatchSerial(const QueryEngine& engine, QueryMethod method,
                         const UncertainObject& issuer, const BatchSpec& spec,
                         IndexStats* stats) {
  switch (method) {
    case QueryMethod::kIpq:
      return engine.Ipq(issuer, spec.query, stats);
    case QueryMethod::kIpqBasic:
      return engine.IpqBasic(issuer, spec.query, stats);
    case QueryMethod::kIuq:
      return engine.Iuq(issuer, spec.query, stats);
    case QueryMethod::kIuqBasic:
      return engine.IuqBasic(issuer, spec.query, stats);
    case QueryMethod::kCipqPExpanded:
      return engine.Cipq(issuer, spec.query, CipqFilter::kPExpanded, stats);
    case QueryMethod::kCipqMinkowski:
      return engine.Cipq(issuer, spec.query, CipqFilter::kMinkowski, stats);
    case QueryMethod::kCiuqRTree:
      return engine.CiuqRTree(issuer, spec.query, stats);
    case QueryMethod::kCiuqPti:
      return engine.CiuqPti(issuer, spec.query, spec.prune, stats);
  }
  return {};
}

struct SerialRun {
  std::vector<AnswerSet> answers;
  std::vector<IndexStats> per_query;
  IndexStats total;
};

SerialRun RunSerial(const QueryEngine& engine, QueryMethod method,
                    const std::vector<UncertainObject>& issuers,
                    const BatchSpec& spec) {
  SerialRun run;
  for (const UncertainObject& issuer : issuers) {
    IndexStats stats;
    run.answers.push_back(
        DispatchSerial(engine, method, issuer, spec, &stats));
    run.per_query.push_back(stats);
    run.total += stats;
  }
  return run;
}

TEST(BatchParallelTest, EveryMethodBitIdenticalAcrossThreadCounts) {
  const QueryEngine engine = BuildSmallEngine();
  for (double qp : {0.0, 0.4}) {
    const Workload workload = MakeSeededWorkload(qp);
    const BatchSpec spec(workload.spec);
    for (QueryMethod method : AllQueryMethods()) {
      const SerialRun serial =
          RunSerial(engine, method, workload.issuers, spec);
      for (size_t threads : {1u, 2u, 8u}) {
        BatchOptions options;
        options.threads = threads;
        const BatchResult batch =
            engine.RunBatch(method, workload.issuers, spec, options);
        ASSERT_EQ(batch.answers.size(), workload.issuers.size());
        EXPECT_EQ(batch.answers, serial.answers)
            << QueryMethodName(method) << " qp=" << qp << " threads="
            << threads;
        EXPECT_EQ(batch.per_query_stats, serial.per_query)
            << QueryMethodName(method) << " qp=" << qp << " threads="
            << threads;
      }
    }
  }
}

TEST(BatchParallelTest, ChunkingDoesNotChangeAnswers) {
  const QueryEngine engine = BuildSmallEngine();
  const Workload workload = MakeSeededWorkload(0.2);
  const BatchSpec spec(workload.spec);
  const SerialRun serial =
      RunSerial(engine, QueryMethod::kIpq, workload.issuers, spec);
  for (size_t chunk : {1u, 3u, 100u}) {
    BatchOptions options;
    options.threads = 4;
    options.chunk = chunk;
    const BatchResult batch =
        engine.RunBatch(QueryMethod::kIpq, workload.issuers, spec, options);
    EXPECT_EQ(batch.answers, serial.answers) << "chunk=" << chunk;
  }
}

TEST(BatchParallelTest, MonteCarloKernelIsThreadCountInvariant) {
  // Per-query Rng streams are seeded from EvalOptions::mc_seed, so even
  // the sampling kernels must be bit-identical across thread counts.
  EngineConfig config;
  config.eval.kernel = ProbabilityKernel::kMonteCarlo;
  config.eval.mc_samples = 64;
  const QueryEngine engine = BuildSmallEngine(std::move(config));
  const Workload workload =
      MakeSeededWorkload(0.3, /*queries=*/8, IssuerPdfKind::kGaussian);
  const BatchSpec spec(workload.spec);
  for (QueryMethod method :
       {QueryMethod::kIpq, QueryMethod::kCipqPExpanded,
        QueryMethod::kCiuqPti}) {
    const SerialRun serial = RunSerial(engine, method, workload.issuers, spec);
    for (size_t threads : {2u, 8u}) {
      BatchOptions options;
      options.threads = threads;
      const BatchResult batch =
          engine.RunBatch(method, workload.issuers, spec, options);
      EXPECT_EQ(batch.answers, serial.answers)
          << QueryMethodName(method) << " threads=" << threads;
    }
  }
}

TEST(BatchDeterminismTest, MergedStatsIdenticalAcrossThreadCounts) {
  // Same WorkloadConfig seed -> identical merged counters at every thread
  // count. A racy stats accumulation (shared IndexStats without
  // synchronization, or per-thread partials merged into the wrong slot)
  // shows up here as flaky counter totals.
  const QueryEngine engine = BuildSmallEngine();
  for (QueryMethod method : AllQueryMethods()) {
    const Workload workload = MakeSeededWorkload(0.3);
    const BatchSpec spec(workload.spec);
    const SerialRun serial = RunSerial(engine, method, workload.issuers, spec);
    for (size_t threads : {1u, 2u, 8u}) {
      BatchOptions options;
      options.threads = threads;
      const BatchResult batch =
          engine.RunBatch(method, workload.issuers, spec, options);
      EXPECT_EQ(batch.total_stats, serial.total)
          << QueryMethodName(method) << " threads=" << threads;
    }
  }
}

TEST(BatchDeterminismTest, RegeneratedWorkloadGivesIdenticalStats) {
  const QueryEngine engine = BuildSmallEngine();
  IndexStats first;
  for (int round = 0; round < 2; ++round) {
    const Workload workload = MakeSeededWorkload(0.0);
    BatchOptions options;
    options.threads = 8;
    const BatchResult batch = engine.RunBatch(
        QueryMethod::kIuq, workload.issuers, BatchSpec(workload.spec),
        options);
    if (round == 0) {
      first = batch.total_stats;
    } else {
      EXPECT_EQ(batch.total_stats, first);
    }
  }
}

TEST(BatchParallelTest, EmptyIssuerListYieldsEmptyResult) {
  const QueryEngine engine = BuildSmallEngine();
  BatchOptions options;
  options.threads = 8;
  const BatchResult batch = engine.RunBatch(
      QueryMethod::kIpq, {}, BatchSpec(RangeQuerySpec(50, 50)), options);
  EXPECT_TRUE(batch.answers.empty());
  EXPECT_TRUE(batch.per_query_stats.empty());
  EXPECT_EQ(batch.total_stats, IndexStats{});
  EXPECT_EQ(batch.threads_used, 1u);  // clamped to the work available
}

TEST(BatchParallelTest, DefaultThreadsResolvesHardware) {
  const QueryEngine engine = BuildSmallEngine();
  const Workload workload = MakeSeededWorkload(0.0, /*queries=*/6);
  BatchOptions options;
  options.threads = 0;  // all hardware threads, clamped to 6 queries
  const BatchResult batch = engine.RunBatch(
      QueryMethod::kIpq, workload.issuers, BatchSpec(workload.spec), options);
  EXPECT_GE(batch.threads_used, 1u);
  EXPECT_LE(batch.threads_used, 6u);
  EXPECT_EQ(batch.answers.size(), 6u);
}

TEST(BatchParallelTest, TimingsOptional) {
  const QueryEngine engine = BuildSmallEngine();
  const Workload workload = MakeSeededWorkload(0.0, /*queries=*/4);
  BatchOptions options;
  options.threads = 2;
  options.collect_timings = false;
  const BatchResult batch = engine.RunBatch(
      QueryMethod::kIpq, workload.issuers, BatchSpec(workload.spec), options);
  EXPECT_TRUE(batch.query_ms.empty());
  EXPECT_EQ(batch.answers.size(), 4u);
  options.collect_timings = true;
  const BatchResult timed = engine.RunBatch(
      QueryMethod::kIpq, workload.issuers, BatchSpec(workload.spec), options);
  EXPECT_EQ(timed.query_ms.size(), 4u);
}

}  // namespace
}  // namespace ilq
