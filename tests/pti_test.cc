#include "index/pti.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

std::vector<UncertainObject> MakeObjects(size_t n, uint64_t seed,
                                         bool with_catalogs = true) {
  Rng rng(seed);
  const Rect space(0, 1000, 0, 1000);
  std::vector<UncertainObject> objects;
  for (size_t i = 0; i < n; ++i) {
    objects.emplace_back(static_cast<ObjectId>(i + 1),
                         MakeUniform(RandomRect(&rng, space, 2, 40)));
    if (with_catalogs) {
      EXPECT_TRUE(objects.back()
                      .BuildCatalog(UCatalog::EvenlySpacedValues(11))
                      .ok());
    }
  }
  return objects;
}

// Accept-all node pruner for plain-range query tests.
bool NoPrune(const Rect&, const UCatalog&) { return false; }

TEST(PTITest, BuildRequiresObjects) {
  EXPECT_FALSE(PTI::Build(PTIOptions(4096, 11), {}).ok());
}

TEST(PTITest, BuildRequiresCatalogs) {
  std::vector<UncertainObject> objects =
      MakeObjects(10, 31, /*with_catalogs=*/false);
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  EXPECT_FALSE(pti.ok());
  EXPECT_EQ(pti.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PTITest, BuildRejectsMixedLadders) {
  std::vector<UncertainObject> objects = MakeObjects(5, 32);
  ASSERT_TRUE(objects[2].BuildCatalog({0.0, 0.5}).ok());  // different ladder
  EXPECT_FALSE(PTI::Build(PTIOptions(4096, 11), objects).ok());
}

TEST(PTITest, FanoutLowerThanPlainRTree) {
  // §5.3: catalog MBRs make PTI entries bigger, so fewer fit per 4K page.
  std::vector<UncertainObject> objects = MakeObjects(5000, 33);
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  ASSERT_TRUE(pti.ok());
  RTreeOptions plain;
  plain.page_size_bytes = 4096;
  EXPECT_LT(pti->tree().max_entries(), 20u);
  EXPECT_EQ(MaxEntriesForPage(plain), 113u);
  EXPECT_GT(pti->tree().node_count(), 5000u / 20u);
  EXPECT_TRUE(pti->tree().Validate().ok());
}

TEST(PTITest, QueryWithoutPruningMatchesBruteForce) {
  std::vector<UncertainObject> objects = MakeObjects(2000, 34);
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  ASSERT_TRUE(pti.ok());
  Rng rng(35);
  for (int q = 0; q < 50; ++q) {
    const Rect range = RandomRect(&rng, Rect(0, 1000, 0, 1000), 20, 300);
    std::set<size_t> expected;
    for (size_t i = 0; i < objects.size(); ++i) {
      if (objects[i].region().Intersects(range)) expected.insert(i);
    }
    std::set<size_t> got;
    pti->Query(range, NoPrune, [&](ObjectId idx) { got.insert(idx); });
    EXPECT_EQ(got, expected);
  }
}

TEST(PTITest, NodeCatalogsEncloseChildObjects) {
  // Soundness of index-level pruning: for every leaf, the leaf node's merged
  // p-bound lines must bound each member object's own lines.
  std::vector<UncertainObject> objects = MakeObjects(500, 36);
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  ASSERT_TRUE(pti.ok());
  const RTree& tree = pti->tree();
  // Walk all nodes; for leaves compare member catalogs to the node catalog.
  for (int32_t nid = 0; nid < static_cast<int32_t>(tree.node_count());
       ++nid) {
    if (!tree.IsLeaf(nid)) continue;
    const UCatalog& node_cat = pti->node_catalog(nid);
    for (size_t e = 0; e < tree.EntryCount(nid); ++e) {
      const UCatalog* obj_cat = objects[tree.EntryId(nid, e)].catalog();
      ASSERT_NE(obj_cat, nullptr);
      for (size_t i = 0; i < node_cat.size(); ++i) {
        EXPECT_LE(node_cat.bound(i).l, obj_cat->bound(i).l);
        EXPECT_GE(node_cat.bound(i).r, obj_cat->bound(i).r);
        EXPECT_LE(node_cat.bound(i).b, obj_cat->bound(i).b);
        EXPECT_GE(node_cat.bound(i).t, obj_cat->bound(i).t);
      }
    }
  }
}

TEST(PTITest, RootCatalogEnclosesEveryObject) {
  std::vector<UncertainObject> objects = MakeObjects(300, 37);
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  ASSERT_TRUE(pti.ok());
  const UCatalog& root_cat = pti->node_catalog(pti->tree().root());
  for (const UncertainObject& obj : objects) {
    const UCatalog* cat = obj.catalog();
    for (size_t i = 0; i < root_cat.size(); ++i) {
      EXPECT_LE(root_cat.bound(i).l, cat->bound(i).l);
      EXPECT_GE(root_cat.bound(i).r, cat->bound(i).r);
    }
  }
}

TEST(PTITest, NodePruningSkipsSubtrees) {
  std::vector<UncertainObject> objects = MakeObjects(2000, 38);
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  ASSERT_TRUE(pti.ok());
  const Rect range(0, 1000, 0, 1000);
  IndexStats no_prune_stats;
  size_t visited_all = 0;
  pti->Query(range, NoPrune, [&](ObjectId) { ++visited_all; },
             &no_prune_stats);
  IndexStats prune_stats;
  size_t visited_pruned = 0;
  // Prune any subtree whose MBR lies left of x = 500.
  pti->Query(
      range,
      [](const Rect& mbr, const UCatalog&) { return mbr.xmax < 500; },
      [&](ObjectId) { ++visited_pruned; }, &prune_stats);
  EXPECT_EQ(visited_all, 2000u);
  EXPECT_LT(visited_pruned, visited_all);
  EXPECT_LT(prune_stats.node_accesses, no_prune_stats.node_accesses);
}

TEST(PTITest, GaussianObjectsBuildAndQuery) {
  Rng rng(39);
  std::vector<UncertainObject> objects;
  for (size_t i = 0; i < 300; ++i) {
    objects.emplace_back(
        static_cast<ObjectId>(i + 1),
        MakeGaussian(RandomRect(&rng, Rect(0, 1000, 0, 1000), 5, 50)));
    ASSERT_TRUE(
        objects.back().BuildCatalog(UCatalog::EvenlySpacedValues(11)).ok());
  }
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  ASSERT_TRUE(pti.ok());
  size_t visited = 0;
  pti->Query(Rect(0, 1000, 0, 1000), NoPrune, [&](ObjectId) { ++visited; });
  EXPECT_EQ(visited, 300u);
}

}  // namespace
}  // namespace ilq
