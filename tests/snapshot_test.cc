// Catalog-image persistence suite (ISSUE: snapshot round-trip satellite).
//
//  * encode→decode and save→load preserve epoch, ids, and every pdf
//    parameter bit-exactly for all four encodable PdfVariant alternatives;
//  * an engine built from a loaded image answers bit-identically to one
//    built from the original vectors, for all eight query methods and
//    both probability kernels — the property that lets shard processes
//    bootstrap from files;
//  * corrupt/truncated/wrong-magic/wrong-version bytes (and an AnyPdf
//    object on the encode side) return an error Status, never a crash;
//  * SplitCatalogImage is a disjoint cover whose per-shard bounds contain
//    every member, and shard-map files round-trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "datagen/snapshot_gen.h"
#include "prob/disk_pdf.h"
#include "serve/partition.h"
#include "test_util.h"
#include "wire/codec.h"
#include "wire/shard_map.h"
#include "wire/snapshot_codec.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

CatalogImage MakeMixedImage(uint64_t seed, size_t uncertains,
                            size_t points) {
  Rng rng(seed);
  CatalogImage image;
  image.epoch = 77;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < points; ++i) {
    image.points.emplace_back(
        static_cast<ObjectId>(i + 1),
        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  for (size_t i = 0; i < uncertains; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 4) {
      case 0:
        image.uncertains.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        image.uncertains.emplace_back(id, MakeGaussian(region));
        break;
      case 2:
        image.uncertains.emplace_back(
            id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
      default: {
        const double r = std::min(region.Width(), region.Height()) / 2.0;
        image.uncertains.emplace_back(
            id, PdfVariant(UniformDiskPdf::Make(Circle{region.Center(), r})
                               .ValueOrDie()));
        break;
      }
    }
  }
  return image;
}

std::vector<uint8_t> EncodeImageBytes(const CatalogImage& image) {
  ByteWriter writer;
  const Status status = EncodeSnapshot(image, &writer);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return std::move(writer).Take();
}

void ExpectImagesEqual(const CatalogImage& actual,
                       const CatalogImage& expected) {
  EXPECT_EQ(actual.epoch, expected.epoch);
  ASSERT_EQ(actual.points.size(), expected.points.size());
  for (size_t i = 0; i < expected.points.size(); ++i) {
    EXPECT_EQ(actual.points[i].id, expected.points[i].id);
    EXPECT_EQ(actual.points[i].location.x, expected.points[i].location.x);
    EXPECT_EQ(actual.points[i].location.y, expected.points[i].location.y);
  }
  ASSERT_EQ(actual.uncertains.size(), expected.uncertains.size());
  for (size_t i = 0; i < expected.uncertains.size(); ++i) {
    const UncertainObject& a = actual.uncertains[i];
    const UncertainObject& e = expected.uncertains[i];
    EXPECT_EQ(a.id(), e.id());
    EXPECT_EQ(a.pdf_variant().index(), e.pdf_variant().index());
    const Rect ar = a.region();
    const Rect er = e.region();
    EXPECT_EQ(ar.xmin, er.xmin);
    EXPECT_EQ(ar.xmax, er.xmax);
    EXPECT_EQ(ar.ymin, er.ymin);
    EXPECT_EQ(ar.ymax, er.ymax);
  }
}

TEST(SnapshotCodecTest, RoundTripsAllPdfAlternativesBitExactly) {
  const CatalogImage image = MakeMixedImage(11, 40, 25);
  auto decoded = DecodeSnapshot(EncodeImageBytes(image));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectImagesEqual(*decoded, image);
  // Re-encoding the decoded image yields the same bytes: the codec is a
  // bijection on its value range (no renormalization drift anywhere).
  EXPECT_EQ(EncodeImageBytes(*decoded), EncodeImageBytes(image));
}

TEST(SnapshotCodecTest, RoundTripsEmptyImage) {
  CatalogImage image;
  image.epoch = 5;
  auto decoded = DecodeSnapshot(EncodeImageBytes(image));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 5u);
  EXPECT_TRUE(decoded->points.empty());
  EXPECT_TRUE(decoded->uncertains.empty());
}

TEST(SnapshotCodecTest, AnyPdfObjectsAreNotSnapshotable) {
  CatalogImage image;
  image.uncertains.emplace_back(
      1, PdfVariant(AnyPdf(MakeUniform(Rect(0, 1, 0, 1)))));
  ByteWriter writer;
  EXPECT_EQ(EncodeSnapshot(image, &writer).code(),
            StatusCode::kNotImplemented);
}

TEST(SnapshotCodecTest, RejectsCorruptBytesWithStatusNotCrash) {
  const std::vector<uint8_t> valid =
      EncodeImageBytes(MakeMixedImage(13, 12, 8));

  {  // wrong magic
    std::vector<uint8_t> bytes = valid;
    bytes[0] ^= 0xFF;
    auto decoded = DecodeSnapshot(bytes);
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  {  // wrong version
    std::vector<uint8_t> bytes = valid;
    bytes[4] = 0x7F;
    auto decoded = DecodeSnapshot(bytes);
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  {  // every truncation point decodes to an error, never a crash
    for (size_t length = 0; length < valid.size(); ++length) {
      auto decoded = DecodeSnapshot(std::vector<uint8_t>(
          valid.begin(), valid.begin() + static_cast<ptrdiff_t>(length)));
      EXPECT_FALSE(decoded.ok()) << "truncated to " << length;
    }
  }
  {  // forged point count cannot force a giant allocation
    std::vector<uint8_t> bytes = valid;
    for (size_t i = 14; i < 18; ++i) bytes[i] = 0xFF;  // count after header
    auto decoded = DecodeSnapshot(bytes);
    EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
  }
  {  // trailing garbage
    std::vector<uint8_t> bytes = valid;
    bytes.push_back(0xAB);
    auto decoded = DecodeSnapshot(bytes);
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SnapshotFileTest, SaveLoadRoundTripAndMissingFile) {
  const CatalogImage image = MakeMixedImage(17, 30, 20);
  const std::string path = ::testing::TempDir() + "ilq_snapshot_test.ilqs";
  ASSERT_TRUE(SaveCatalogImage(path, image).ok());
  auto loaded = LoadCatalogImage(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectImagesEqual(*loaded, image);
  std::remove(path.c_str());

  auto missing = LoadCatalogImage(path + ".does-not-exist");
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);
}

TEST(SnapshotFileTest, MmapAndReadLoadPathsAreBitExact) {
  // ISSUE 8 satellite: LoadCatalogImage defaults to an mmap fast-load with
  // a read() fallback. Both transports must decode the same bytes to the
  // same image — pinned via re-encoding, which is bit-exact by the codec
  // bijection test above.
  const CatalogImage image = MakeMixedImage(19, 35, 25);
  const std::string path = ::testing::TempDir() + "ilq_snapshot_mmap.ilqs";
  ASSERT_TRUE(SaveCatalogImage(path, image).ok());

  auto mapped = LoadCatalogImage(path, SnapshotLoadMode::kMmap);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto streamed = LoadCatalogImage(path, SnapshotLoadMode::kRead);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  auto automatic = LoadCatalogImage(path, SnapshotLoadMode::kAuto);
  ASSERT_TRUE(automatic.ok()) << automatic.status().ToString();

  const std::vector<uint8_t> want = EncodeImageBytes(image);
  EXPECT_EQ(EncodeImageBytes(*mapped), want);
  EXPECT_EQ(EncodeImageBytes(*streamed), want);
  EXPECT_EQ(EncodeImageBytes(*automatic), want);
  std::remove(path.c_str());

  // Every mode reports a missing file the same way.
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kAuto, SnapshotLoadMode::kMmap,
        SnapshotLoadMode::kRead}) {
    EXPECT_EQ(LoadCatalogImage(path, mode).status().code(),
              StatusCode::kIOError);
  }
}

TEST(SnapshotFileTest, MmapLoadRejectsCorruptBytesWithStatus) {
  // Decode failures are properties of the bytes, not the transport: the
  // mmap path must surface them as kInvalidArgument, and kAuto must NOT
  // retry them through the read path (same bytes, same failure).
  const CatalogImage image = MakeMixedImage(21, 10, 8);
  const std::string path =
      ::testing::TempDir() + "ilq_snapshot_mmap_bad.ilqs";
  ASSERT_TRUE(SaveCatalogImage(path, image).ok());
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);  // break the magic
    file.seekp(0);
    file.write(&byte, 1);
  }
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kAuto, SnapshotLoadMode::kMmap,
        SnapshotLoadMode::kRead}) {
    auto loaded = LoadCatalogImage(path, mode);
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, LoadingADirectoryReturnsIOError) {
  // A directory opens but is not a readable stream — tellg()/read() fail
  // and must surface as Status, not as a SIZE_MAX vector allocation.
  auto snapshot = LoadCatalogImage(::testing::TempDir());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kIOError)
      << snapshot.status().ToString();
  auto map = LoadShardMap(::testing::TempDir());
  EXPECT_EQ(map.status().code(), StatusCode::kIOError)
      << map.status().ToString();
}

TEST(SnapshotFileTest, GeneratedImageIsDeterministic) {
  SnapshotGenConfig config;
  config.points.count = 500;
  config.uncertains.base.count = 300;
  config.epoch = 9;
  auto a = GenerateCatalogImage(config);
  auto b = GenerateCatalogImage(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(EncodeImageBytes(*a), EncodeImageBytes(*b));
  EXPECT_EQ(a->epoch, 9u);
}

// The property that matters: an engine built from a loaded image answers
// bit-identically to an engine built from the original vectors.
TEST(SnapshotFileTest, LoadedEngineIsBitIdenticalToBuilderEngine) {
  const CatalogImage image = MakeMixedImage(23, 120, 80);
  auto loaded = DecodeSnapshot(EncodeImageBytes(image));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const ProbabilityKernel kernel :
       {ProbabilityKernel::kAnalytic, ProbabilityKernel::kMonteCarlo}) {
    EngineConfig config;
    config.eval.kernel = kernel;
    auto original = QueryEngine::Build(image.points, image.uncertains,
                                       config);
    auto reloaded = QueryEngine::Build(loaded->points, loaded->uncertains,
                                       config);
    ASSERT_TRUE(original.ok() && reloaded.ok());

    auto issuer = original->MakeIssuer(MakeUniform(Rect(300, 500, 300,
                                                        500)));
    ASSERT_TRUE(issuer.ok());
    BatchSpec spec;
    spec.query.w = 120.0;
    spec.query.h = 120.0;
    spec.query.threshold = 0.3;
    for (const QueryMethod method : AllQueryMethods()) {
      AnswerSet a = RunQueryMethod(*original, method, *issuer, spec);
      AnswerSet b = RunQueryMethod(*reloaded, method, *issuer, spec);
      ASSERT_EQ(a.size(), b.size()) << QueryMethodName(method);
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << QueryMethodName(method);
        EXPECT_EQ(a[i].probability, b[i].probability)
            << QueryMethodName(method);
      }
    }
  }
}

// ---- SplitCatalogImage + shard map -----------------------------------------

TEST(SplitImageTest, IsADisjointCoverWithContainingBounds) {
  const CatalogImage image = MakeMixedImage(29, 90, 60);
  auto split = SplitCatalogImage(image, 4);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_EQ(split->shards.size(), 4u);
  ASSERT_EQ(split->map.size(), 4u);

  std::set<ObjectId> point_ids, uncertain_ids;
  size_t points_total = 0, uncertains_total = 0;
  for (size_t s = 0; s < split->shards.size(); ++s) {
    const CatalogImage& shard = split->shards[s];
    EXPECT_EQ(shard.epoch, image.epoch);
    for (const PointObject& point : shard.points) {
      EXPECT_TRUE(point_ids.insert(point.id).second) << "duplicate point";
      EXPECT_TRUE(split->map[s].point_bounds.Contains(point.location));
    }
    for (const UncertainObject& object : shard.uncertains) {
      EXPECT_TRUE(uncertain_ids.insert(object.id()).second)
          << "duplicate uncertain";
      const Rect bounds = split->map[s].uncertain_bounds;
      const Rect region = object.region();
      EXPECT_LE(bounds.xmin, region.xmin);
      EXPECT_GE(bounds.xmax, region.xmax);
      EXPECT_LE(bounds.ymin, region.ymin);
      EXPECT_GE(bounds.ymax, region.ymax);
    }
    points_total += shard.points.size();
    uncertains_total += shard.uncertains.size();
  }
  EXPECT_EQ(points_total, image.points.size());
  EXPECT_EQ(uncertains_total, image.uncertains.size());
}

TEST(ShardMapFileTest, RoundTripsAndRejectsCorruption) {
  ShardMap map(3);
  map[0].point_bounds = Rect(0, 10, 0, 10);
  map[0].uncertain_bounds = Rect(-1, 11, -2, 12);
  map[2].point_bounds = Rect(100, 200, 100, 200);
  // map[1] stays empty — empty shards must survive the trip.

  const std::string path = ::testing::TempDir() + "ilq_shard_map_test.ilqm";
  ASSERT_TRUE(SaveShardMap(path, map).ok());
  auto loaded = LoadShardMap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), map.size());
  for (size_t s = 0; s < map.size(); ++s) {
    EXPECT_EQ((*loaded)[s].point_bounds.xmin, map[s].point_bounds.xmin);
    EXPECT_EQ((*loaded)[s].point_bounds.xmax, map[s].point_bounds.xmax);
    EXPECT_EQ((*loaded)[s].uncertain_bounds.ymin,
              map[s].uncertain_bounds.ymin);
    EXPECT_EQ((*loaded)[s].uncertain_bounds.ymax,
              map[s].uncertain_bounds.ymax);
  }
  std::remove(path.c_str());

  ByteWriter writer;
  EncodeShardMap(map, &writer);
  std::vector<uint8_t> bytes = writer.bytes();
  bytes[0] ^= 0xFF;  // wrong magic
  EXPECT_EQ(DecodeShardMap(bytes).status().code(),
            StatusCode::kInvalidArgument);
  for (size_t length = 0; length < writer.size(); ++length) {
    auto truncated = DecodeShardMap(std::vector<uint8_t>(
        writer.bytes().begin(),
        writer.bytes().begin() + static_cast<ptrdiff_t>(length)));
    EXPECT_FALSE(truncated.ok()) << "truncated to " << length;
  }
}

}  // namespace
}  // namespace ilq
