#include "core/ciuq.h"

#include <gtest/gtest.h>

#include <map>

#include "core/duality.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

struct Fixture {
  std::vector<UncertainObject> objects;
  RTree rtree;
  PTI pti;
};

Fixture MakeFixture(size_t n, uint64_t seed, bool gaussian = false) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < n; ++i) {
    const Rect region = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 80);
    objects.emplace_back(
        static_cast<ObjectId>(i + 1),
        gaussian ? std::unique_ptr<UncertaintyPdf>(MakeGaussian(region))
                 : std::unique_ptr<UncertaintyPdf>(MakeUniform(region)));
    EXPECT_TRUE(
        objects.back().BuildCatalog(UCatalog::EvenlySpacedValues(11)).ok());
    items.push_back({region, static_cast<ObjectId>(i)});
  }
  Result<RTree> rtree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  EXPECT_TRUE(rtree.ok());
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  EXPECT_TRUE(pti.ok());
  return {std::move(objects), std::move(rtree).ValueOrDie(),
          std::move(pti).ValueOrDie()};
}

UncertainObject MakeIssuer(const Rect& region, bool gaussian = false) {
  UncertainObject issuer(
      0, gaussian ? std::unique_ptr<UncertaintyPdf>(MakeGaussian(region))
                  : std::unique_ptr<UncertaintyPdf>(MakeUniform(region)));
  EXPECT_TRUE(issuer.BuildCatalog(UCatalog::EvenlySpacedValues(11)).ok());
  return issuer;
}

std::map<ObjectId, double> ById(const AnswerSet& answers) {
  std::map<ObjectId, double> out;
  for (const auto& a : answers) out[a.id] = a.probability;
  return out;
}

bool AnswersMatch(const AnswerSet& a, const AnswerSet& b, double tol) {
  const std::map<ObjectId, double> ma = ById(a);
  const std::map<ObjectId, double> mb = ById(b);
  if (ma.size() != mb.size()) return false;
  for (const auto& [id, p] : ma) {
    const auto it = mb.find(id);
    if (it == mb.end() || std::abs(it->second - p) > tol) return false;
  }
  return true;
}

TEST(CiuqTest, PTIMatchesRTreeBaselineUniform) {
  Fixture fixture = MakeFixture(1500, 141);
  for (double qp : {0.0, 0.2, 0.5, 0.8}) {
    UncertainObject issuer = MakeIssuer(Rect(300, 650, 250, 600));
    const RangeQuerySpec spec(180, 180, qp);
    const AnswerSet baseline = EvaluateCIUQRTree(
        fixture.rtree, fixture.objects, issuer, spec, {});
    const AnswerSet pti = EvaluateCIUQPTI(fixture.pti, fixture.objects,
                                          issuer, spec, {});
    EXPECT_TRUE(AnswersMatch(baseline, pti, 1e-12)) << "qp=" << qp;
  }
}

TEST(CiuqTest, PTIMatchesRTreeBaselineGaussian) {
  Fixture fixture = MakeFixture(400, 142, /*gaussian=*/true);
  for (double qp : {0.1, 0.4, 0.7}) {
    UncertainObject issuer =
        MakeIssuer(Rect(300, 650, 250, 600), /*gaussian=*/true);
    const RangeQuerySpec spec(150, 150, qp);
    const AnswerSet baseline = EvaluateCIUQRTree(
        fixture.rtree, fixture.objects, issuer, spec, {});
    const AnswerSet pti = EvaluateCIUQPTI(fixture.pti, fixture.objects,
                                          issuer, spec, {});
    EXPECT_TRUE(AnswersMatch(baseline, pti, 1e-9)) << "qp=" << qp;
  }
}

TEST(CiuqTest, AllAnswersMeetThreshold) {
  Fixture fixture = MakeFixture(1000, 143);
  UncertainObject issuer = MakeIssuer(Rect(200, 700, 200, 700));
  for (double qp : {0.3, 0.6, 0.95}) {
    const AnswerSet got = EvaluateCIUQPTI(
        fixture.pti, fixture.objects, issuer,
        RangeQuerySpec(200, 200, qp), {});
    for (const auto& a : got) {
      EXPECT_GE(a.probability, qp);
      EXPECT_LE(a.probability, 1.0 + 1e-9);
    }
  }
}

TEST(CiuqTest, NoQualifyingObjectIsPruned) {
  // Soundness of strategies 1–3 + index pruning: every object whose true
  // probability clearly exceeds Qp must be returned.
  Fixture fixture = MakeFixture(1200, 144);
  UncertainObject issuer = MakeIssuer(Rect(250, 700, 300, 750));
  for (double qp : {0.15, 0.45, 0.7}) {
    const RangeQuerySpec spec(220, 220, qp);
    const std::map<ObjectId, double> got = ById(EvaluateCIUQPTI(
        fixture.pti, fixture.objects, issuer, spec, {}));
    for (const UncertainObject& obj : fixture.objects) {
      const double pi = UniformUniformQualification(
          issuer.region(), obj.region(), spec.w, spec.h);
      if (pi >= qp + 1e-9) {
        ASSERT_TRUE(got.count(obj.id()))
            << "object " << obj.id() << " with pi=" << pi
            << " pruned at qp=" << qp;
        EXPECT_NEAR(got.at(obj.id()), pi, 1e-12);
      }
    }
  }
}

TEST(CiuqTest, PTIPrunesMoreAtHigherThresholds) {
  Fixture fixture = MakeFixture(20000, 145);
  UncertainObject issuer = MakeIssuer(Rect(300, 700, 300, 700));
  uint64_t prev_candidates = std::numeric_limits<uint64_t>::max();
  for (double qp : {0.0, 0.3, 0.6, 0.9}) {
    IndexStats stats;
    EvaluateCIUQPTI(fixture.pti, fixture.objects, issuer,
                    RangeQuerySpec(250, 250, qp), {}, CiuqPruneConfig{},
                    &stats);
    EXPECT_LE(stats.candidates, prev_candidates) << "qp=" << qp;
    prev_candidates = stats.candidates;
  }
}

TEST(CiuqTest, PTIBeatsRTreeOnCandidatesAtHighThreshold) {
  Fixture fixture = MakeFixture(20000, 146);
  UncertainObject issuer = MakeIssuer(Rect(300, 700, 300, 700));
  const RangeQuerySpec spec(250, 250, 0.6);
  IndexStats rtree_stats;
  EvaluateCIUQRTree(fixture.rtree, fixture.objects, issuer, spec, {},
                    &rtree_stats);
  IndexStats pti_stats;
  EvaluateCIUQPTI(fixture.pti, fixture.objects, issuer, spec, {},
                  CiuqPruneConfig{}, &pti_stats);
  EXPECT_LT(pti_stats.candidates, rtree_stats.candidates);
}

TEST(CiuqTest, StrategyTogglesPreserveAnswers) {
  // Disabling any pruning strategy must never change the answer set, only
  // the amount of work.
  Fixture fixture = MakeFixture(800, 147);
  UncertainObject issuer = MakeIssuer(Rect(250, 650, 250, 650));
  const RangeQuerySpec spec(200, 200, 0.5);
  const AnswerSet all_on = EvaluateCIUQPTI(fixture.pti, fixture.objects,
                                           issuer, spec, {});
  for (int mask = 0; mask < 8; ++mask) {
    CiuqPruneConfig prune;
    prune.strategy1 = (mask & 1) != 0;
    prune.strategy2 = (mask & 2) != 0;
    prune.strategy3 = (mask & 4) != 0;
    const AnswerSet got = EvaluateCIUQPTI(fixture.pti, fixture.objects,
                                          issuer, spec, {}, prune);
    EXPECT_TRUE(AnswersMatch(all_on, got, 1e-12)) << "mask=" << mask;
  }
}

TEST(CiuqTest, Strategy1PrunesWithoutThreshold2) {
  // With S2 off (Minkowski traversal) S1 alone must still reduce
  // candidates at high Qp.
  Fixture fixture = MakeFixture(20000, 148);
  UncertainObject issuer = MakeIssuer(Rect(300, 700, 300, 700));
  const RangeQuerySpec spec(250, 250, 0.7);
  CiuqPruneConfig none;
  none.strategy1 = none.strategy2 = none.strategy3 = false;
  CiuqPruneConfig s1_only;
  s1_only.strategy2 = s1_only.strategy3 = false;
  IndexStats none_stats;
  EvaluateCIUQPTI(fixture.pti, fixture.objects, issuer, spec, {}, none,
                  &none_stats);
  IndexStats s1_stats;
  EvaluateCIUQPTI(fixture.pti, fixture.objects, issuer, spec, {}, s1_only,
                  &s1_stats);
  EXPECT_LT(s1_stats.node_accesses, none_stats.node_accesses);
}

TEST(CiuqTest, CertainObjectSurvivesThresholdOne) {
  // Regression: an object engulfed by the query at every issuer position
  // has pi = 1 and must be returned at Qp = 1 — the vacuous M = 1 p-bound
  // must not prune it.
  std::vector<UncertainObject> objects;
  objects.emplace_back(1, MakeUniform(Rect(495, 505, 495, 505)));
  ASSERT_TRUE(
      objects.back().BuildCatalog(UCatalog::EvenlySpacedValues(11)).ok());
  Result<PTI> pti = PTI::Build(PTIOptions(4096, 11), objects);
  ASSERT_TRUE(pti.ok());
  UncertainObject issuer = MakeIssuer(Rect(480, 520, 480, 520));
  const RangeQuerySpec spec(200, 200, 1.0);
  const AnswerSet got =
      EvaluateCIUQPTI(*pti, objects, issuer, spec, {});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].probability, 1.0);
}

TEST(CiuqTest, EmptyAnswerForImpossibleThreshold) {
  Fixture fixture = MakeFixture(500, 149);
  UncertainObject issuer = MakeIssuer(Rect(0, 1000, 0, 1000));
  const AnswerSet got = EvaluateCIUQPTI(
      fixture.pti, fixture.objects, issuer, RangeQuerySpec(5, 5, 0.9), {});
  EXPECT_TRUE(got.empty());
}

// Property: PTI and baseline agree over random issuers, thresholds and
// query shapes.
class CiuqEquivalencePropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CiuqEquivalencePropertyTest, MethodsAgree) {
  Fixture fixture = MakeFixture(1000, GetParam());
  Rng rng(GetParam() * 17);
  for (int iter = 0; iter < 10; ++iter) {
    const double u = rng.Uniform(20, 250);
    const double cx = rng.Uniform(u, 1000 - u);
    const double cy = rng.Uniform(u, 1000 - u);
    UncertainObject issuer =
        MakeIssuer(Rect(cx - u, cx + u, cy - u, cy + u), iter % 2 == 1);
    const RangeQuerySpec spec(rng.Uniform(50, 300), rng.Uniform(50, 300),
                              rng.Uniform(0.0, 1.0));
    const AnswerSet baseline = EvaluateCIUQRTree(
        fixture.rtree, fixture.objects, issuer, spec, {});
    const AnswerSet pti = EvaluateCIUQPTI(fixture.pti, fixture.objects,
                                          issuer, spec, {});
    EXPECT_TRUE(AnswersMatch(baseline, pti, 1e-9))
        << "iter=" << iter << " qp=" << spec.threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CiuqEquivalencePropertyTest,
                         ::testing::Values(151, 152, 153, 154));

}  // namespace
}  // namespace ilq
