#include "geometry/polygon.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ilq {
namespace {

ConvexPolygon MustMake(std::vector<Point> v) {
  Result<ConvexPolygon> r = ConvexPolygon::MakeConvex(std::move(v));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

TEST(PolygonTest, MakeConvexAcceptsCcwTriangle) {
  const ConvexPolygon p = MustMake({{0, 0}, {4, 0}, {0, 3}});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.Area(), 6.0);
}

TEST(PolygonTest, MakeConvexRejectsClockwise) {
  Result<ConvexPolygon> r =
      ConvexPolygon::MakeConvex({{0, 0}, {0, 3}, {4, 0}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolygonTest, MakeConvexRejectsConcave) {
  Result<ConvexPolygon> r = ConvexPolygon::MakeConvex(
      {{0, 0}, {4, 0}, {1, 1}, {0, 4}});  // dent at (1,1)
  EXPECT_FALSE(r.ok());
}

TEST(PolygonTest, MakeConvexRejectsTooFew) {
  EXPECT_FALSE(ConvexPolygon::MakeConvex({{0, 0}, {1, 1}}).ok());
}

TEST(PolygonTest, MakeConvexCollapsesCollinear) {
  const ConvexPolygon p =
      MustMake({{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_EQ(p.size(), 4u);  // (2,0) dropped
  EXPECT_DOUBLE_EQ(p.Area(), 16.0);
}

TEST(PolygonTest, ConvexHullOfCloud) {
  Result<ConvexPolygon> r = ConvexPolygon::ConvexHull(
      {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {3, 1}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
  EXPECT_DOUBLE_EQ(r->Area(), 16.0);
}

TEST(PolygonTest, ConvexHullRejectsCollinear) {
  EXPECT_FALSE(
      ConvexPolygon::ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).ok());
}

TEST(PolygonTest, FromRectMatches) {
  const ConvexPolygon p = ConvexPolygon::FromRect(Rect(1, 5, 2, 4));
  EXPECT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.Area(), 8.0);
  EXPECT_EQ(p.BoundingBox(), Rect(1, 5, 2, 4));
}

TEST(PolygonTest, ContainsClosed) {
  const ConvexPolygon p = MustMake({{0, 0}, {4, 0}, {0, 4}});
  EXPECT_TRUE(p.Contains(Point(1, 1)));
  EXPECT_TRUE(p.Contains(Point(0, 0)));      // vertex
  EXPECT_TRUE(p.Contains(Point(2, 2)));      // on hypotenuse
  EXPECT_FALSE(p.Contains(Point(3, 3)));
  EXPECT_FALSE(p.Contains(Point(-0.1, 0)));
}

TEST(PolygonTest, ClipInsideRectIsIdentity) {
  const ConvexPolygon p = MustMake({{1, 1}, {3, 1}, {2, 3}});
  const ConvexPolygon clipped = p.ClippedTo(Rect(0, 10, 0, 10));
  EXPECT_NEAR(clipped.Area(), p.Area(), 1e-12);
}

TEST(PolygonTest, ClipDisjointIsEmpty) {
  const ConvexPolygon p = MustMake({{1, 1}, {3, 1}, {2, 3}});
  EXPECT_EQ(p.ClippedTo(Rect(10, 20, 10, 20)).size(), 0u);
  EXPECT_DOUBLE_EQ(p.IntersectionArea(Rect(10, 20, 10, 20)), 0.0);
}

TEST(PolygonTest, ClipHalfSquare) {
  const ConvexPolygon p = ConvexPolygon::FromRect(Rect(0, 4, 0, 4));
  EXPECT_DOUBLE_EQ(p.IntersectionArea(Rect(2, 10, -10, 10)), 8.0);
}

TEST(PolygonTest, TriangleRectOverlap) {
  const ConvexPolygon tri = MustMake({{0, 0}, {4, 0}, {0, 4}});
  // Clip to the unit square: the whole square is inside the triangle
  // except nothing — area 1. (x + y <= 4 over [0,1]^2 always.)
  EXPECT_NEAR(tri.IntersectionArea(Rect(0, 1, 0, 1)), 1.0, 1e-12);
  // Clip to [1.5, 4] x [1.5, 4]: triangle corner region.
  // Within that box, x + y <= 4 cuts a right triangle with legs 1.
  EXPECT_NEAR(tri.IntersectionArea(Rect(1.5, 4, 1.5, 4)), 0.5, 1e-12);
}

TEST(PolygonTest, HalfPlaneClipSquare) {
  const ConvexPolygon square = ConvexPolygon::FromRect(Rect(0, 4, 0, 4));
  // x <= 2 keeps the left half.
  const ConvexPolygon left = square.ClippedToHalfPlane(1, 0, 2);
  EXPECT_NEAR(left.Area(), 8.0, 1e-12);
  EXPECT_EQ(left.BoundingBox(), Rect(0, 2, 0, 4));
  // x + y <= 4 cuts the upper-right triangle off.
  const ConvexPolygon diag = square.ClippedToHalfPlane(1, 1, 4);
  EXPECT_NEAR(diag.Area(), 16.0 - 8.0, 1e-12);
}

TEST(PolygonTest, HalfPlaneClipNoop) {
  const ConvexPolygon square = ConvexPolygon::FromRect(Rect(0, 4, 0, 4));
  const ConvexPolygon all = square.ClippedToHalfPlane(1, 0, 100);
  EXPECT_NEAR(all.Area(), 16.0, 1e-12);
}

TEST(PolygonTest, HalfPlaneClipEverything) {
  const ConvexPolygon square = ConvexPolygon::FromRect(Rect(0, 4, 0, 4));
  const ConvexPolygon none = square.ClippedToHalfPlane(1, 0, -1);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(none.Area(), 0.0);
}

TEST(PolygonTest, HalfPlaneClipSequenceMatchesRectClip) {
  const ConvexPolygon square = ConvexPolygon::FromRect(Rect(0, 10, 0, 10));
  // Four axis-aligned half-planes == rectangle clip.
  ConvexPolygon clipped = square.ClippedToHalfPlane(1, 0, 7);   // x <= 7
  clipped = clipped.ClippedToHalfPlane(-1, 0, -2);              // x >= 2
  clipped = clipped.ClippedToHalfPlane(0, 1, 9);                // y <= 9
  clipped = clipped.ClippedToHalfPlane(0, -1, -3);              // y >= 3
  EXPECT_NEAR(clipped.Area(), square.IntersectionArea(Rect(2, 7, 3, 9)),
              1e-12);
}

TEST(PolygonTest, TranslatedPreservesAreaAndShifts) {
  const ConvexPolygon p = MustMake({{0, 0}, {4, 0}, {0, 3}});
  const ConvexPolygon t = p.Translated(Point(10, 20));
  EXPECT_DOUBLE_EQ(t.Area(), p.Area());
  EXPECT_EQ(t.BoundingBox(), Rect(10, 14, 20, 23));
}

// Property: clip area of random convex polygons against random rects
// equals the Monte-Carlo estimate of the overlap.
class PolygonClipPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolygonClipPropertyTest, ClipAreaMatchesMembershipSampling) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    // Random convex polygon via hull of a point cloud.
    std::vector<Point> cloud;
    for (int i = 0; i < 12; ++i) {
      cloud.emplace_back(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    }
    Result<ConvexPolygon> hull = ConvexPolygon::ConvexHull(cloud);
    ASSERT_TRUE(hull.ok());
    const Rect clip = Rect::Centered(
        Point(rng.Uniform(-3, 3), rng.Uniform(-3, 3)),
        rng.Uniform(1, 5), rng.Uniform(1, 5));
    const double exact = hull->IntersectionArea(clip);

    Rng mc(GetParam() * 77 + static_cast<uint64_t>(iter));
    size_t hits = 0;
    const size_t samples = 100000;
    for (size_t s = 0; s < samples; ++s) {
      const Point p(mc.Uniform(clip.xmin, clip.xmax),
                    mc.Uniform(clip.ymin, clip.ymax));
      if (hull->Contains(p)) ++hits;
    }
    const double est =
        clip.Area() * static_cast<double>(hits) / static_cast<double>(samples);
    EXPECT_NEAR(exact, est, 0.05 * std::max(1.0, clip.Area()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolygonClipPropertyTest,
                         ::testing::Values(3, 5, 8));

}  // namespace
}  // namespace ilq
