// ILQP corruption suite (ISSUE 8 satellite): a hostile or rotted paged
// index file must be rejected with the documented Status codes — never a
// crash, hang, out-of-bounds read or giant allocation.
//
// Layers under attack:
//  * header: every single-byte flip of the 64 header bytes is caught
//    (magic/version checks or the header CRC), truncation → kOutOfRange;
//  * pages: any flipped byte in a data page fails that page's CRC; flips in
//    the unchecksummed page-0 padding are provably harmless (the mounted
//    tree answers bit-identically);
//  * structure: forged fields with *valid* checksums — entry counts beyond
//    the fanout, out-of-range child ids, child cycles, bad leaf flags,
//    leaves at the wrong depth, MBRs escaping their parent cover, forged
//    header item counts/heights, leaf ids beyond max_leaf_id — are all
//    caught by the iterative ValidatePagedTree walk (explicit stack +
//    visited set: a forged cycle cannot recurse or loop forever).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/node_store.h"
#include "index/rtree.h"
#include "storage/checksum.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::RandomRect;

constexpr size_t kItems = 300;

// PID-unique scratch paths: ctest runs each test of this suite as its own
// process, in parallel — shared names would let one process rewrite a file
// another process is mid-way through validating.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "ilq_paged_corruption_" +
         std::to_string(::getpid()) + "_" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(file),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(file.good()) << path;
}

size_t PageOffset(size_t page_size, uint32_t page_id) {
  return (static_cast<size_t>(page_id) + 1) * page_size;
}

// Recomputes a forged page's CRC so only the *structural* check can catch
// the forgery (that is what is under test, not the checksum).
void RestampPage(std::vector<uint8_t>* bytes, size_t page_size,
                 uint32_t page_id) {
  uint8_t* page = bytes->data() + PageOffset(page_size, page_id);
  StoreLe32(page, Crc32(page + kPageChecksumBytes,
                        page_size - kPageChecksumBytes));
}

void RestampHeader(std::vector<uint8_t>* bytes) {
  StoreLe32(bytes->data() + 60, Crc32(bytes->data(), 60));
}

// The shared fixture: one bulk-loaded multi-level tree saved to disk, plus
// the raw file bytes to forge copies from.
class PagedCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(61);
    const Rect space(0, 1000, 0, 1000);
    std::vector<RTree::Item> items;
    for (size_t i = 0; i < kItems; ++i) {
      items.push_back(RTree::Item{RandomRect(&rng, space, 1, 30),
                                  static_cast<ObjectId>(i)});
    }
    RTreeOptions options;
    options.page_size_bytes = 256;
    auto tree = RTree::BulkLoad(options, std::move(items));
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ASSERT_GE(tree->height(), 2u) << "fixture must have interior nodes";
    ram_ = new RTree(std::move(tree).ValueOrDie());
    path_ = TempPath("fixture.ilqp");
    ASSERT_TRUE(ram_->SavePaged(path_).ok());
    valid_ = new std::vector<uint8_t>(ReadFileBytes(path_));
  }

  static void TearDownTestSuite() {
    std::remove(path_.c_str());
    delete ram_;
    delete valid_;
    ram_ = nullptr;
    valid_ = nullptr;
  }

  static size_t page_size() {
    return LoadLe32(valid_->data() + 8);
  }
  static uint32_t page_count() {
    return LoadLe32(valid_->data() + 12);
  }
  static uint32_t root_page() {
    return LoadLe32(valid_->data() + 16);
  }
  static uint32_t max_entries() {
    return LoadLe32(valid_->data() + 32);
  }

  // First page whose leaf flag matches \p leaf.
  static uint32_t FindPage(const std::vector<uint8_t>& bytes, bool leaf) {
    for (uint32_t p = 0; p < page_count(); ++p) {
      if ((bytes[PageOffset(page_size(), p) + kNodePageLeafOffset] != 0) ==
          leaf) {
        return p;
      }
    }
    ADD_FAILURE() << "no " << (leaf ? "leaf" : "interior") << " page";
    return 0;
  }

  // Writes \p bytes to a scratch file and mounts it with full validation
  // and the positional leaf-id bound the engine would use.
  static Result<RTree> OpenForged(const std::vector<uint8_t>& bytes) {
    const std::string path = TempPath("forged.ilqp");
    WriteFileBytes(path, bytes);
    PagedOpenOptions open;
    open.deep_verify = true;
    open.max_leaf_id = kItems - 1;
    Result<RTree> opened = RTree::OpenPaged(path, open);
    std::remove(path.c_str());
    return opened;
  }

  static void ExpectRejected(const std::vector<uint8_t>& bytes,
                             const char* what) {
    Result<RTree> opened = OpenForged(bytes);
    EXPECT_FALSE(opened.ok()) << what;
    if (!opened.ok()) {
      EXPECT_TRUE(opened.status().code() == StatusCode::kInvalidArgument ||
                  opened.status().code() == StatusCode::kOutOfRange)
          << what << ": " << opened.status().ToString();
    }
  }

  static RTree* ram_;
  static std::string path_;
  static std::vector<uint8_t>* valid_;
};

RTree* PagedCorruptionTest::ram_ = nullptr;
std::string PagedCorruptionTest::path_;
std::vector<uint8_t>* PagedCorruptionTest::valid_ = nullptr;

TEST_F(PagedCorruptionTest, FixtureOpensCleanly) {
  Result<RTree> opened = OpenForged(*valid_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->size(), kItems);
}

TEST_F(PagedCorruptionTest, EveryHeaderByteFlipIsRejected) {
  for (size_t offset = 0; offset < kPageFileHeaderBytes; ++offset) {
    std::vector<uint8_t> bytes = *valid_;
    bytes[offset] ^= 0xFF;
    Result<RTree> opened = OpenForged(bytes);
    EXPECT_FALSE(opened.ok()) << "header byte " << offset;
  }
}

TEST_F(PagedCorruptionTest, TruncationsAreRejectedNotCrashes) {
  const size_t sizes[] = {0,
                          1,
                          kPageFileHeaderBytes - 1,
                          kPageFileHeaderBytes,
                          page_size(),
                          page_size() + 1,
                          valid_->size() - page_size(),
                          valid_->size() - 1};
  for (const size_t size : sizes) {
    std::vector<uint8_t> bytes(*valid_);
    bytes.resize(size);
    ExpectRejected(bytes, "truncated file");
  }
}

TEST_F(PagedCorruptionTest, DataPageByteFlipsFailTheirChecksum) {
  Rng rng(67);
  for (int trial = 0; trial < 120; ++trial) {
    const size_t offset =
        page_size() +
        static_cast<size_t>(rng.Uniform(
            0, static_cast<double>(valid_->size() - page_size() - 1)));
    std::vector<uint8_t> bytes = *valid_;
    bytes[offset] ^= static_cast<uint8_t>(1u << (trial % 8));
    if (bytes[offset] == (*valid_)[offset]) continue;  // zero-bit flip
    ExpectRejected(bytes, "data page flip");
  }
}

TEST_F(PagedCorruptionTest, Page0PaddingFlipsAreHarmless) {
  // Bytes [64, page_size) of page 0 are unchecksummed padding — prove
  // flips there cannot change an answer.
  std::vector<uint8_t> bytes = *valid_;
  for (size_t offset = kPageFileHeaderBytes; offset < page_size();
       offset += 7) {
    bytes[offset] ^= 0xFF;
  }
  Result<RTree> opened = OpenForged(bytes);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Rng rng(71);
  const Rect space(0, 1000, 0, 1000);
  for (int q = 0; q < 20; ++q) {
    const Rect range = RandomRect(&rng, space, 20, 200);
    EXPECT_EQ(opened->QueryIds(range), ram_->QueryIds(range));
  }
}

TEST_F(PagedCorruptionTest, ForgedEntryCountsAreRejected) {
  const uint32_t root = root_page();
  {  // count beyond the declared fanout
    std::vector<uint8_t> bytes = *valid_;
    StoreLe16(bytes.data() + PageOffset(page_size(), root) +
                  kNodePageCountOffset,
              static_cast<uint16_t>(max_entries() + 1));
    RestampPage(&bytes, page_size(), root);
    ExpectRejected(bytes, "entry count > max_entries");
  }
  {  // empty node
    std::vector<uint8_t> bytes = *valid_;
    StoreLe16(bytes.data() + PageOffset(page_size(), root) +
                  kNodePageCountOffset,
              0);
    RestampPage(&bytes, page_size(), root);
    ExpectRejected(bytes, "entry count == 0");
  }
}

TEST_F(PagedCorruptionTest, ForgedChildIdsAreRejected) {
  const uint32_t root = FindPage(*valid_, /*leaf=*/false);
  const size_t child_at = PageOffset(page_size(), root) +
                          kNodePageHeaderBytes + kNodeEntryChildOffset;
  {  // out of range
    std::vector<uint8_t> bytes = *valid_;
    StoreLe32(bytes.data() + child_at, page_count());
    RestampPage(&bytes, page_size(), root);
    ExpectRejected(bytes, "child id out of range");
  }
  {  // cycle back to the root: visited-twice, must terminate and reject
    std::vector<uint8_t> bytes = *valid_;
    StoreLe32(bytes.data() + child_at, root);
    RestampPage(&bytes, page_size(), root);
    ExpectRejected(bytes, "child cycle");
  }
}

TEST_F(PagedCorruptionTest, ForgedLeafFlagsAreRejected) {
  const uint32_t interior = FindPage(*valid_, /*leaf=*/false);
  {  // flag outside {0, 1}
    std::vector<uint8_t> bytes = *valid_;
    bytes[PageOffset(page_size(), interior) + kNodePageLeafOffset] = 2;
    RestampPage(&bytes, page_size(), interior);
    ExpectRejected(bytes, "leaf flag = 2");
  }
  {  // interior node claiming to be a leaf: depth uniformity broken
    std::vector<uint8_t> bytes = *valid_;
    bytes[PageOffset(page_size(), interior) + kNodePageLeafOffset] = 1;
    RestampPage(&bytes, page_size(), interior);
    ExpectRejected(bytes, "leaf above leaf depth");
  }
  {  // leaf claiming to be interior: its ids now read as child pointers
    const uint32_t leaf = FindPage(*valid_, /*leaf=*/true);
    std::vector<uint8_t> bytes = *valid_;
    bytes[PageOffset(page_size(), leaf) + kNodePageLeafOffset] = 0;
    RestampPage(&bytes, page_size(), leaf);
    ExpectRejected(bytes, "interior at leaf depth");
  }
}

TEST_F(PagedCorruptionTest, MbrEscapingParentCoverIsRejected) {
  const uint32_t leaf = FindPage(*valid_, /*leaf=*/true);
  std::vector<uint8_t> bytes = *valid_;
  // Drag the first leaf entry's xmin far outside any parent MBR.
  StoreLeF64(bytes.data() + PageOffset(page_size(), leaf) +
                 kNodePageHeaderBytes,
             -1.0e9);
  RestampPage(&bytes, page_size(), leaf);
  ExpectRejected(bytes, "leaf MBR outside parent cover");
}

TEST_F(PagedCorruptionTest, ForgedHeaderCountsAreRejected) {
  {  // item count off by one (re-stamped header CRC)
    std::vector<uint8_t> bytes = *valid_;
    StoreLe64(bytes.data() + 24, kItems + 1);
    RestampHeader(&bytes);
    ExpectRejected(bytes, "forged item_count");
  }
  {  // height off by one: no leaf sits at the claimed depth
    std::vector<uint8_t> bytes = *valid_;
    StoreLe32(bytes.data() + 20, LoadLe32(bytes.data() + 20) + 1);
    RestampHeader(&bytes);
    ExpectRejected(bytes, "forged height");
  }
  {  // root pointing at a leaf: most pages become unreachable
    std::vector<uint8_t> bytes = *valid_;
    StoreLe32(bytes.data() + 16, FindPage(*valid_, /*leaf=*/true));
    RestampHeader(&bytes);
    ExpectRejected(bytes, "forged root");
  }
}

TEST_F(PagedCorruptionTest, LeafIdBeyondMaxLeafIdIsRejected) {
  const uint32_t leaf = FindPage(*valid_, /*leaf=*/true);
  std::vector<uint8_t> bytes = *valid_;
  StoreLe32(bytes.data() + PageOffset(page_size(), leaf) +
                kNodePageHeaderBytes + kNodeEntryChildOffset,
            0x00FFFFFF);
  RestampPage(&bytes, page_size(), leaf);
  // With the positional bound: rejected before any query could index a
  // catalog vector out of bounds.
  ExpectRejected(bytes, "leaf id beyond max_leaf_id");
  // Without a bound the id is just an opaque ObjectId — the file is
  // structurally fine (point trees store arbitrary ids).
  const std::string path = TempPath("bigid.ilqp");
  WriteFileBytes(path, bytes);
  PagedOpenOptions open;
  open.deep_verify = true;
  EXPECT_TRUE(RTree::OpenPaged(path, open).ok());
  std::remove(path.c_str());
}

TEST_F(PagedCorruptionTest, RandomFlipFuzzNeverCrashesOrLies) {
  // The closing property: for *any* single-byte flip anywhere in the file,
  // mounting either fails with Status or serves bit-identical answers.
  Rng rng(73);
  const Rect space(0, 1000, 0, 1000);
  for (int trial = 0; trial < 150; ++trial) {
    const size_t offset = static_cast<size_t>(
        rng.Uniform(0, static_cast<double>(valid_->size() - 1)));
    std::vector<uint8_t> bytes = *valid_;
    bytes[offset] ^= static_cast<uint8_t>(1u << (trial % 8));
    if (bytes[offset] == (*valid_)[offset]) continue;
    Result<RTree> opened = OpenForged(bytes);
    if (!opened.ok()) continue;  // rejection is always acceptable
    const Rect range = RandomRect(&rng, space, 20, 200);
    EXPECT_EQ(opened->QueryIds(range), ram_->QueryIds(range))
        << "offset " << offset;
  }
}

}  // namespace
}  // namespace ilq
