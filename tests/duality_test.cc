#include "core/duality.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/disk_pdf.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;
using ::ilq::testing::ReferencePointQualification;
using ::ilq::testing::ReferenceUncertainQualification;

// ---------------------------------------------------------------- Lemma 2

TEST(DualityTest, Lemma2PointDuality) {
  // Si in R(Sq) iff Sq in R(Si), for random pairs and query shapes.
  Rng rng(51);
  for (int iter = 0; iter < 2000; ++iter) {
    const Point si(rng.Uniform(0, 100), rng.Uniform(0, 100));
    const Point sq(rng.Uniform(0, 100), rng.Uniform(0, 100));
    const double w = rng.Uniform(1, 40);
    const double h = rng.Uniform(1, 40);
    EXPECT_EQ(Rect::Centered(sq, w, h).Contains(si),
              Rect::Centered(si, w, h).Contains(sq));
  }
}

// ---------------------------------------------------------------- Lemma 3

TEST(DualityTest, PointQualificationUniformIsAreaRatio) {
  // Eq. 6: for uniform issuers pi = |R(si) ∩ U0| / |U0|.
  auto issuer = MakeUniform(Rect(0, 100, 0, 100));
  // R(si) with w=h=30 centred at (110, 50) overlaps 20x60... compute:
  // R = [80,140]x[20,80] → overlap [80,100]x[20,80] = 20*60 = 1200.
  const double pi = PointQualification(*issuer, Point(110, 50), 30, 30);
  EXPECT_NEAR(pi, 1200.0 / 10000.0, 1e-12);
}

TEST(DualityTest, PointQualificationMatchesEq2Reference) {
  // Lemma 3 equals the direct Eq. 2 integral, for uniform and Gaussian
  // issuers at assorted object positions.
  auto uniform = MakeUniform(Rect(0, 100, 0, 100));
  auto gaussian = MakeGaussian(Rect(0, 100, 0, 100));
  for (const UncertaintyPdf* issuer :
       {static_cast<const UncertaintyPdf*>(uniform.get()),
        static_cast<const UncertaintyPdf*>(gaussian.get())}) {
    for (const Point& s :
         {Point(50, 50), Point(0, 0), Point(120, 50), Point(95, 130)}) {
      const double direct = PointQualification(*issuer, s, 40, 40);
      const double reference =
          ReferencePointQualification(*issuer, s, 40, 40);
      EXPECT_NEAR(direct, reference, 5e-3)
          << issuer->name() << " at (" << s.x << "," << s.y << ")";
    }
  }
}

TEST(DualityTest, PointQualificationZeroOutsideMinkowski) {
  auto issuer = MakeUniform(Rect(0, 100, 0, 100));
  // Object at x = 151 with w = 50: dual range [101, 201] misses U0.
  EXPECT_DOUBLE_EQ(PointQualification(*issuer, Point(151, 50), 50, 50), 0.0);
  // Boundary-touching object has measure-zero overlap.
  EXPECT_DOUBLE_EQ(PointQualification(*issuer, Point(150, 50), 50, 50), 0.0);
}

TEST(DualityTest, PointQualificationMCConverges) {
  auto issuer = MakeGaussian(Rect(0, 100, 0, 100));
  const Point s(70, 60);
  const double exact = PointQualification(*issuer, s, 30, 30);
  Rng rng(52);
  const double mc = PointQualificationMC(*issuer, s, 30, 30, 200000, &rng);
  EXPECT_NEAR(mc, exact, 0.01);
}

// -------------------------------------------------- overlap-length integral

TEST(DualityTest, OverlapIntegralFullyInside) {
  // Window [x-1, x+1] fully inside [0, 10] for x in [2, 6]: length 2 each.
  EXPECT_NEAR(OverlapLengthIntegral(2, 6, 1, 0, 10), 8.0, 1e-12);
}

TEST(DualityTest, OverlapIntegralRampRegion) {
  // w=2, [a,b]=[0,10]; for x in [-2,2] overlap = x+2 (ramp 0→4):
  // integral = 8.
  EXPECT_NEAR(OverlapLengthIntegral(-2, 2, 2, 0, 10), 8.0, 1e-12);
}

TEST(DualityTest, OverlapIntegralZeroCases) {
  EXPECT_EQ(OverlapLengthIntegral(5, 5, 1, 0, 10), 0.0);   // empty interval
  EXPECT_EQ(OverlapLengthIntegral(20, 30, 1, 0, 10), 0.0);  // no overlap
  EXPECT_EQ(OverlapLengthIntegral(0, 10, 0, 0, 10), 0.0);   // zero width
}

TEST(DualityTest, OverlapIntegralMatchesNumeric) {
  Rng rng(53);
  for (int iter = 0; iter < 200; ++iter) {
    const double a = rng.Uniform(-50, 50);
    const double b = a + rng.Uniform(1, 100);
    const double w = rng.Uniform(0.5, 60);
    const double x0 = rng.Uniform(-100, 100);
    const double x1 = x0 + rng.Uniform(1, 120);
    const double exact = OverlapLengthIntegral(x0, x1, w, a, b);
    // Fine Riemann sum.
    const int n = 4000;
    const double dx = (x1 - x0) / n;
    double approx = 0.0;
    for (int i = 0; i < n; ++i) {
      const double x = x0 + (i + 0.5) * dx;
      const double lo = std::max(x - w, a);
      const double hi = std::min(x + w, b);
      approx += std::max(0.0, hi - lo) * dx;
    }
    EXPECT_NEAR(exact, approx, 1e-2 * std::max(1.0, approx));
  }
}

// ---------------------------------------------------------- Eq. 8 kernels

TEST(DualityTest, UniformUniformMatchesReference) {
  Rng rng(54);
  for (int iter = 0; iter < 30; ++iter) {
    const Rect u0 = RandomRect(&rng, Rect(0, 500, 0, 500), 30, 150);
    const Rect ui = RandomRect(&rng, Rect(0, 500, 0, 500), 10, 120);
    const double w = rng.Uniform(20, 150);
    const double h = rng.Uniform(20, 150);
    auto issuer = MakeUniform(u0);
    auto object = MakeUniform(ui);
    const double closed = UniformUniformQualification(u0, ui, w, h);
    const double reference =
        ReferenceUncertainQualification(*issuer, *object, w, h);
    EXPECT_NEAR(closed, reference, 6e-3) << "iter " << iter;
    EXPECT_GE(closed, -1e-12);
    EXPECT_LE(closed, 1.0 + 1e-12);
  }
}

TEST(DualityTest, ProductPathMatchesClosedFormForUniform) {
  // The separable quadrature path must agree with the closed form when both
  // pdfs are uniform.
  Rng rng(55);
  for (int iter = 0; iter < 30; ++iter) {
    const Rect u0 = RandomRect(&rng, Rect(0, 500, 0, 500), 30, 150);
    const Rect ui = RandomRect(&rng, Rect(0, 500, 0, 500), 10, 120);
    const double w = rng.Uniform(20, 150);
    const double h = rng.Uniform(20, 150);
    auto issuer = MakeUniform(u0);
    auto object = MakeUniform(ui);
    const double closed = UniformUniformQualification(u0, ui, w, h);
    const double product = ProductQualification(*issuer, *object, w, h, 16);
    EXPECT_NEAR(closed, product, 1e-10);
  }
}

TEST(DualityTest, GaussianGaussianMatchesReference) {
  Rng rng(56);
  for (int iter = 0; iter < 10; ++iter) {
    const Rect u0 = RandomRect(&rng, Rect(0, 500, 0, 500), 40, 160);
    const Rect ui = RandomRect(&rng, Rect(0, 500, 0, 500), 20, 120);
    const double w = rng.Uniform(30, 150);
    const double h = rng.Uniform(30, 150);
    auto issuer = MakeGaussian(u0);
    auto object = MakeGaussian(ui);
    const double product = ProductQualification(*issuer, *object, w, h, 16);
    const double reference =
        ReferenceUncertainQualification(*issuer, *object, w, h, 300);
    EXPECT_NEAR(product, reference, 5e-3) << "iter " << iter;
  }
}

TEST(DualityTest, GenericPathMatchesProductPathForProductPdfs) {
  Rng rng(57);
  for (int iter = 0; iter < 10; ++iter) {
    const Rect u0 = RandomRect(&rng, Rect(0, 500, 0, 500), 40, 160);
    const Rect ui = RandomRect(&rng, Rect(0, 500, 0, 500), 20, 120);
    const double w = rng.Uniform(30, 150);
    const double h = rng.Uniform(30, 150);
    auto issuer = MakeGaussian(u0);
    auto object = MakeGaussian(ui);
    const double product = ProductQualification(*issuer, *object, w, h, 16);
    const double generic = GenericQualification(*issuer, *object, w, h, 16);
    EXPECT_NEAR(product, generic, 1e-6);
  }
}

TEST(DualityTest, HistogramObjectMatchesReference) {
  // Non-product object pdf exercises the generic 2-D quadrature path with
  // histogram breakpoints.
  Rng rng(58);
  auto issuer = MakeUniform(Rect(100, 300, 100, 300));
  auto object = MakeSkewedHistogram(Rect(150, 360, 80, 240), 5, 4, 59);
  const double generic = GenericQualification(*issuer, *object, 80, 60, 16);
  const double reference =
      ReferenceUncertainQualification(*issuer, *object, 80, 60, 400);
  EXPECT_NEAR(generic, reference, 5e-3);
}

TEST(DualityTest, DiskIssuerMatchesMC) {
  // Non-product issuer (uniform disk) exercises Q-via-MassIn in the generic
  // path.
  Result<UniformDiskPdf> disk =
      UniformDiskPdf::Make(Circle(Point(200, 200), 80));
  ASSERT_TRUE(disk.ok());
  auto object = MakeUniform(Rect(240, 330, 150, 260));
  const double generic = GenericQualification(*disk, *object, 70, 70, 24);
  Rng rng(60);
  const double mc =
      UncertainQualificationMC(*disk, *object, 70, 70, 400000, &rng);
  EXPECT_NEAR(generic, mc, 0.01);
}

TEST(DualityTest, DispatchPicksConsistentAnswers) {
  // UncertainQualification must agree with the specific paths it selects.
  Rng rng(61);
  const Rect u0 = RandomRect(&rng, Rect(0, 500, 0, 500), 50, 150);
  const Rect ui = RandomRect(&rng, Rect(0, 500, 0, 500), 30, 100);
  auto u_issuer = MakeUniform(u0);
  auto u_object = MakeUniform(ui);
  EXPECT_DOUBLE_EQ(UncertainQualification(*u_issuer, *u_object, 50, 50, 16),
                   UniformUniformQualification(u0, ui, 50, 50));
  auto g_issuer = MakeGaussian(u0);
  auto g_object = MakeGaussian(ui);
  EXPECT_DOUBLE_EQ(UncertainQualification(*g_issuer, *g_object, 50, 50, 16),
                   ProductQualification(*g_issuer, *g_object, 50, 50, 16));
}

TEST(DualityTest, MCPairSamplingConverges) {
  auto issuer = MakeUniform(Rect(0, 200, 0, 200));
  auto object = MakeUniform(Rect(150, 260, 40, 130));
  const double exact =
      UniformUniformQualification(issuer->bounds(), object->bounds(), 60, 60);
  Rng rng(62);
  const double mc =
      UncertainQualificationMC(*issuer, *object, 60, 60, 300000, &rng);
  EXPECT_NEAR(mc, exact, 0.01);
}

// Probability bounds: every kernel returns values in [0, 1].
class KernelRangePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelRangePropertyTest, ProbabilitiesInUnitInterval) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const Rect u0 = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 300);
    const Rect ui = RandomRect(&rng, Rect(0, 1000, 0, 1000), 5, 200);
    const double w = rng.Uniform(5, 300);
    const double h = rng.Uniform(5, 300);
    auto issuer = (iter % 2 == 0)
                      ? std::unique_ptr<UncertaintyPdf>(MakeUniform(u0))
                      : std::unique_ptr<UncertaintyPdf>(MakeGaussian(u0));
    auto object = (iter % 3 == 0)
                      ? std::unique_ptr<UncertaintyPdf>(MakeGaussian(ui))
                      : std::unique_ptr<UncertaintyPdf>(MakeUniform(ui));
    const double pi = UncertainQualification(*issuer, *object, w, h, 12);
    EXPECT_GE(pi, -1e-9);
    EXPECT_LE(pi, 1.0 + 1e-9);
    const double pt = PointQualification(*issuer, ui.Center(), w, h);
    EXPECT_GE(pt, 0.0);
    EXPECT_LE(pt, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelRangePropertyTest,
                         ::testing::Values(71, 72, 73));

}  // namespace
}  // namespace ilq
