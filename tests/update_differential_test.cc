// Differential suite for epoch-versioned updates: an engine that lived
// through a churn stream (QueryEngine::ApplyUpdates) must answer every
// QueryMethod bit-identically to a monolithic engine freshly Built from
// the surviving objects — same ids, same probability doubles, both
// probability kernels. Likewise the ShardedEngine after routed updates and
// a load-triggered re-split. This is the acceptance bar for the mutable
// catalog: updates are a maintenance strategy, never an answer change.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/workload.h"
#include "serve/sharded_engine.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;

AnswerSet SortedById(AnswerSet answers) {
  std::sort(answers.begin(), answers.end(),
            [](const ProbabilisticAnswer& a, const ProbabilisticAnswer& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.probability < b.probability;
            });
  return answers;
}

void ExpectBitIdentical(const AnswerSet& updated, const AnswerSet& rebuilt,
                        const std::string& what) {
  ASSERT_EQ(updated.size(), rebuilt.size()) << what;
  for (size_t i = 0; i < updated.size(); ++i) {
    EXPECT_EQ(updated[i].id, rebuilt[i].id) << what << " answer #" << i;
    EXPECT_EQ(updated[i].probability, rebuilt[i].probability)
        << what << " answer #" << i << " (id " << updated[i].id << ")";
  }
}

EngineConfig TestEngineConfig(ProbabilityKernel kernel) {
  EngineConfig config;
  config.eval.kernel = kernel;
  config.eval.quadrature_order = 8;
  config.eval.mc_samples = 100;
  // Exercise both PTI maintenance paths (refresh and rebuild) within one
  // modest churn stream.
  config.pti_rebuild_min_updates = 8;
  return config;
}

// Plain-vector mirror of the object sets: the ground truth a fresh Build
// is run over. Kept by id, erased by swap like the catalog itself (order
// must not matter for the comparison to be meaningful — and it does not,
// because answers are id-sorted and probabilities are per-object pure).
struct Mirror {
  std::vector<PointObject> points;
  std::vector<UncertainObject> uncertains;

  void Apply(const UpdateOp& op) {
    switch (op.kind) {
      case UpdateKind::kInsertPoint:
        points.push_back({op.id, op.location});
        break;
      case UpdateKind::kErasePoint:
        EraseById(&points, op.id);
        break;
      case UpdateKind::kMovePoint:
        FindById(&points, op.id)->location = op.location;
        break;
      case UpdateKind::kInsertUncertain:
        uncertains.emplace_back(op.id, *op.pdf);
        break;
      case UpdateKind::kEraseUncertain:
        EraseById(&uncertains, op.id);
        break;
      case UpdateKind::kMoveUncertain:
        *FindById(&uncertains, op.id) = UncertainObject(op.id, *op.pdf);
        break;
    }
  }

  template <typename T>
  static T* FindById(std::vector<T>* objects, ObjectId id) {
    for (T& object : *objects) {
      if (ObjectIdOf(object) == id) return &object;
    }
    ADD_FAILURE() << "mirror: unknown id " << id;
    return nullptr;
  }
  template <typename T>
  static void EraseById(std::vector<T>* objects, ObjectId id) {
    T* found = FindById(objects, id);
    *found = std::move(objects->back());
    objects->pop_back();
  }
  static ObjectId ObjectIdOf(const PointObject& p) { return p.id; }
  static ObjectId ObjectIdOf(const UncertainObject& u) { return u.id(); }
};

Result<ChurnWorkload> MakeChurn(uint64_t seed, size_t ops) {
  WorkloadConfig base;
  base.space = Rect(0, 1000, 0, 1000);
  base.seed = seed;
  ChurnConfig churn;
  churn.initial_points = 150;
  churn.initial_uncertains = 60;
  churn.ops = ops;
  churn.object_half_extent = 25.0;
  return GenerateChurnWorkload(base, churn);
}

void CompareAllMethods(const QueryEngine& updated, const QueryEngine& rebuilt,
                       const std::string& tag) {
  std::vector<Result<UncertainObject>> issuers;
  issuers.push_back(
      updated.MakeIssuer(MakeUniform(Rect(350, 650, 350, 650))));
  issuers.push_back(
      updated.MakeIssuer(MakeGaussian(Rect(100, 420, 500, 800))));
  const std::vector<RangeQuerySpec> specs = {RangeQuerySpec(140, 140, 0.0),
                                             RangeQuerySpec(250, 180, 0.3)};
  for (const auto& issuer : issuers) {
    ASSERT_TRUE(issuer.ok()) << issuer.status().ToString();
    for (const RangeQuerySpec& query : specs) {
      const BatchSpec spec{query};
      for (const QueryMethod method : AllQueryMethods()) {
        const std::string what = tag + " " + QueryMethodName(method) +
                                 " w=" + std::to_string(query.w);
        ExpectBitIdentical(
            SortedById(RunQueryMethod(updated, method, *issuer, spec)),
            SortedById(RunQueryMethod(rebuilt, method, *issuer, spec)),
            what);
      }
    }
  }
}

void RunEngineDifferential(ProbabilityKernel kernel) {
  const EngineConfig config = TestEngineConfig(kernel);
  Result<ChurnWorkload> churn = MakeChurn(501, 240);
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();

  Mirror mirror{churn->initial_points, churn->initial_uncertains};
  Result<QueryEngine> updated = QueryEngine::Build(
      churn->initial_points, churn->initial_uncertains, config);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated->epoch(), 0u);

  constexpr size_t kBatch = 24;
  size_t batches = 0;
  for (size_t begin = 0; begin < churn->stream.size(); begin += kBatch) {
    const size_t end = std::min(begin + kBatch, churn->stream.size());
    const UpdateBatch batch(churn->stream.begin() + begin,
                            churn->stream.begin() + end);
    ASSERT_TRUE(updated->ApplyUpdates(batch).ok());
    for (const UpdateOp& op : batch) mirror.Apply(op);
    ++batches;
    EXPECT_EQ(updated->epoch(), batches);
  }

  EXPECT_EQ(updated->points().size(), mirror.points.size());
  EXPECT_EQ(updated->uncertains().size(), mirror.uncertains.size());
  const UpdateStats stats = updated->update_stats();
  EXPECT_EQ(stats.batches, batches);
  EXPECT_EQ(stats.ops, churn->stream.size());
  EXPECT_GT(stats.pti_rebuilds + stats.pti_refreshes, 0u);

  Result<QueryEngine> rebuilt =
      QueryEngine::Build(mirror.points, mirror.uncertains, config);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  CompareAllMethods(*updated, *rebuilt, "engine");
}

TEST(UpdateDifferentialTest, EngineMatchesRebuildAnalytic) {
  RunEngineDifferential(ProbabilityKernel::kAnalytic);
}

TEST(UpdateDifferentialTest, EngineMatchesRebuildMonteCarlo) {
  RunEngineDifferential(ProbabilityKernel::kMonteCarlo);
}

TEST(UpdateDifferentialTest, FailedBatchLeavesEngineUntouched) {
  const EngineConfig config = TestEngineConfig(ProbabilityKernel::kAnalytic);
  Result<ChurnWorkload> churn = MakeChurn(502, 0);
  ASSERT_TRUE(churn.ok());
  Result<QueryEngine> engine = QueryEngine::Build(
      churn->initial_points, churn->initial_uncertains, config);
  ASSERT_TRUE(engine.ok());

  UpdateBatch bad;
  bad.push_back(UpdateOp::InsertPoint(9000, Point(1, 1)));
  bad.push_back(UpdateOp::ErasePoint(424242));  // unknown id
  EXPECT_FALSE(engine->ApplyUpdates(bad).ok());
  EXPECT_EQ(engine->epoch(), 0u);
  EXPECT_EQ(engine->points().size(), churn->initial_points.size());

  Result<QueryEngine> rebuilt = QueryEngine::Build(
      churn->initial_points, churn->initial_uncertains, config);
  ASSERT_TRUE(rebuilt.ok());
  CompareAllMethods(*engine, *rebuilt, "after-rejected-batch");
}

// Empty→populated→empty transitions: the PTI must appear with the first
// uncertain insert and disappear with the last erase.
TEST(UpdateDifferentialTest, UncertainSetLifecycle) {
  const EngineConfig config = TestEngineConfig(ProbabilityKernel::kAnalytic);
  Result<QueryEngine> engine = QueryEngine::Build({}, {}, config);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->pti(), nullptr);

  Result<UniformRectPdf> pdf =
      UniformRectPdf::Make(Rect(100, 150, 100, 150));
  ASSERT_TRUE(pdf.ok());
  UpdateBatch batch;
  batch.push_back(
      UpdateOp::InsertUncertain(1, PdfVariant(std::move(pdf).ValueOrDie())));
  ASSERT_TRUE(engine->ApplyUpdates(batch).ok());
  ASSERT_NE(engine->pti(), nullptr);
  EXPECT_EQ(engine->uncertains().size(), 1u);

  Result<UncertainObject> issuer =
      engine->MakeIssuer(MakeUniform(Rect(80, 180, 80, 180)));
  ASSERT_TRUE(issuer.ok());
  const BatchSpec spec{RangeQuerySpec(100, 100, 0.0)};
  EXPECT_FALSE(engine->Iuq(*issuer, spec.query).empty());

  ASSERT_TRUE(engine->ApplyUpdates({UpdateOp::EraseUncertain(1)}).ok());
  EXPECT_EQ(engine->pti(), nullptr);
  EXPECT_TRUE(engine->Iuq(*issuer, spec.query).empty());
  EXPECT_TRUE(engine->CiuqPti(*issuer, spec.query, CiuqPruneConfig{}).empty());
}

// The sharded engine under churn plus a load-triggered re-split: answers
// stay bit-identical to a monolith over the survivors, object counts are
// conserved across the re-partition, and the epoch observes every publish.
void RunShardedDifferential(ProbabilityKernel kernel) {
  ShardedEngineConfig config;
  config.shards = 4;
  config.engine = TestEngineConfig(kernel);
  config.resplit_load_ratio = 1.5;
  config.resplit_min_requests = 64;

  Result<ChurnWorkload> churn = MakeChurn(503, 200);
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();
  Mirror mirror{churn->initial_points, churn->initial_uncertains};
  Result<ShardedEngine> sharded = ShardedEngine::Build(
      churn->initial_points, churn->initial_uncertains, config);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // A tight issuer parked on one seed point routes (almost) every request
  // to that point's shard, building up exactly the imbalance the re-split
  // trigger watches for. (A query window must cover real data to route at
  // all — bounds that don't intersect are skipped, counting no load.)
  const Point hot = churn->initial_points.front().location;
  Result<UncertainObject> corner = sharded->MakeIssuer(
      MakeUniform(Rect(hot.x - 5, hot.x + 5, hot.y - 5, hot.y + 5)));
  ASSERT_TRUE(corner.ok());
  const BatchSpec corner_spec{RangeQuerySpec(10, 10, 0.0)};

  constexpr size_t kBatch = 25;
  for (size_t begin = 0; begin < churn->stream.size(); begin += kBatch) {
    for (int q = 0; q < 20; ++q) {
      sharded->Run(QueryMethod::kIpq, *corner, corner_spec);
    }
    const size_t end = std::min(begin + kBatch, churn->stream.size());
    const UpdateBatch batch(churn->stream.begin() + begin,
                            churn->stream.begin() + end);
    const uint64_t before = sharded->epoch();
    ASSERT_TRUE(sharded->ApplyUpdates(batch).ok());
    for (const UpdateOp& op : batch) mirror.Apply(op);
    // Every publish bumps the epoch: +1 for the batch, +1 more when the
    // load trigger re-split right after it.
    EXPECT_GE(sharded->epoch(), before + 1);
    EXPECT_LE(sharded->epoch(), before + 2);
  }
  EXPECT_GE(sharded->resplit_count(), 1u)
      << "the skewed query stream should have triggered a re-split";

  // Conservation: every survivor lives in exactly one shard.
  size_t points = 0;
  size_t uncertains = 0;
  for (size_t s = 0; s < sharded->shard_count(); ++s) {
    points += sharded->shard(s).points().size();
    uncertains += sharded->shard(s).uncertains().size();
  }
  EXPECT_EQ(points, mirror.points.size());
  EXPECT_EQ(uncertains, mirror.uncertains.size());

  Result<QueryEngine> rebuilt =
      QueryEngine::Build(mirror.points, mirror.uncertains, config.engine);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  std::vector<Result<UncertainObject>> issuers;
  issuers.push_back(
      sharded->MakeIssuer(MakeUniform(Rect(350, 650, 350, 650))));
  issuers.push_back(
      sharded->MakeIssuer(MakeGaussian(Rect(100, 420, 500, 800))));
  const std::vector<RangeQuerySpec> specs = {RangeQuerySpec(140, 140, 0.0),
                                             RangeQuerySpec(250, 180, 0.3)};
  for (const auto& issuer : issuers) {
    ASSERT_TRUE(issuer.ok()) << issuer.status().ToString();
    for (const RangeQuerySpec& query : specs) {
      const BatchSpec spec{query};
      for (const QueryMethod method : AllQueryMethods()) {
        const std::string what = std::string("sharded ") +
                                 QueryMethodName(method) +
                                 " w=" + std::to_string(query.w);
        ExpectBitIdentical(
            sharded->Run(method, *issuer, spec),
            SortedById(RunQueryMethod(*rebuilt, method, *issuer, spec)),
            what);
      }
    }
  }
}

TEST(UpdateDifferentialTest, ShardedMatchesRebuildAnalytic) {
  RunShardedDifferential(ProbabilityKernel::kAnalytic);
}

TEST(UpdateDifferentialTest, ShardedMatchesRebuildMonteCarlo) {
  RunShardedDifferential(ProbabilityKernel::kMonteCarlo);
}

// Manual Resplit on a quiet engine is also answer-preserving and tightens
// the conservative (grown) routing bounds back to the actual data.
TEST(UpdateDifferentialTest, ManualResplitPreservesAnswers) {
  ShardedEngineConfig config;
  config.shards = 3;
  config.engine = TestEngineConfig(ProbabilityKernel::kAnalytic);
  Result<ChurnWorkload> churn = MakeChurn(504, 120);
  ASSERT_TRUE(churn.ok());
  Mirror mirror{churn->initial_points, churn->initial_uncertains};
  Result<ShardedEngine> sharded = ShardedEngine::Build(
      churn->initial_points, churn->initial_uncertains, config);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(sharded->ApplyUpdates(churn->stream).ok());
  for (const UpdateOp& op : churn->stream) mirror.Apply(op);

  const uint64_t before = sharded->epoch();
  ASSERT_TRUE(sharded->Resplit().ok());
  EXPECT_EQ(sharded->epoch(), before + 1);
  EXPECT_EQ(sharded->resplit_count(), 1u);

  Result<QueryEngine> rebuilt =
      QueryEngine::Build(mirror.points, mirror.uncertains, config.engine);
  ASSERT_TRUE(rebuilt.ok());
  Result<UncertainObject> issuer =
      sharded->MakeIssuer(MakeUniform(Rect(300, 700, 300, 700)));
  ASSERT_TRUE(issuer.ok());
  const BatchSpec spec{RangeQuerySpec(200, 200, 0.0)};
  for (const QueryMethod method : AllQueryMethods()) {
    ExpectBitIdentical(
        sharded->Run(method, *issuer, spec),
        SortedById(RunQueryMethod(*rebuilt, method, *issuer, spec)),
        QueryMethodName(method));
  }
}

}  // namespace
}  // namespace ilq
