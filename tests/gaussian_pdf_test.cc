#include "prob/gaussian_pdf.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/integrate.h"

namespace ilq {
namespace {

TruncatedGaussianPdf MakePaper(const Rect& r) {
  Result<TruncatedGaussianPdf> made =
      TruncatedGaussianPdf::MakePaperDefault(r);
  EXPECT_TRUE(made.ok());
  return std::move(made).ValueOrDie();
}

TEST(GaussianPdfTest, RejectsBadArguments) {
  EXPECT_FALSE(TruncatedGaussianPdf::Make(Rect::Empty(), 1, 1).ok());
  EXPECT_FALSE(TruncatedGaussianPdf::Make(Rect(0, 1, 0, 1), 0, 1).ok());
  EXPECT_FALSE(TruncatedGaussianPdf::Make(Rect(0, 1, 0, 1), 1, -2).ok());
}

TEST(GaussianPdfTest, PaperDefaultSigmaIsSixthOfExtent) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 60, 0, 120));
  EXPECT_DOUBLE_EQ(pdf.sigma_x(), 10.0);
  EXPECT_DOUBLE_EQ(pdf.sigma_y(), 20.0);
}

TEST(GaussianPdfTest, TotalMassIsOne) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(-3, 3, -3, 3));
  EXPECT_NEAR(pdf.MassIn(Rect(-10, 10, -10, 10)), 1.0, 1e-12);
}

TEST(GaussianPdfTest, DensityIntegratesToOne) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 6, 0, 4));
  const double mass = IntegrateGL2D(
      [&](double x, double y) { return pdf.Density(Point(x, y)); },
      Rect(0, 6, 0, 4), 64, 64);
  EXPECT_NEAR(mass, 1.0, 1e-8);
}

TEST(GaussianPdfTest, DensityZeroOutsideRegion) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 6, 0, 4));
  EXPECT_DOUBLE_EQ(pdf.Density(Point(-0.1, 2)), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Density(Point(3, 4.01)), 0.0);
  EXPECT_GT(pdf.Density(Point(3, 2)), 0.0);
}

TEST(GaussianPdfTest, MassConcentratedAtCenter) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 60, 0, 60));
  // Central ±1σ square should hold far more mass than a corner square of
  // the same size.
  const double central = pdf.MassIn(Rect(20, 40, 20, 40));
  const double corner = pdf.MassIn(Rect(0, 20, 0, 20));
  EXPECT_GT(central, 5.0 * corner);
}

TEST(GaussianPdfTest, CdfMatchesMassIn) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 10, 0, 10));
  for (double x = 0.0; x <= 10.0; x += 1.0) {
    EXPECT_NEAR(pdf.CdfX(x), pdf.MassIn(Rect(0, x, 0, 10)), 1e-12);
  }
}

TEST(GaussianPdfTest, QuantileInvertsCdf) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 10, -5, 5));
  for (double p = 0.01; p < 1.0; p += 0.07) {
    EXPECT_NEAR(pdf.CdfX(pdf.QuantileX(p)), p, 1e-9);
    EXPECT_NEAR(pdf.CdfY(pdf.QuantileY(p)), p, 1e-9);
  }
}

TEST(GaussianPdfTest, QuantileSymmetricAroundCenter) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 10, 0, 10));
  EXPECT_NEAR(pdf.QuantileX(0.5), 5.0, 1e-9);
  EXPECT_NEAR(pdf.QuantileX(0.25) + pdf.QuantileX(0.75), 10.0, 1e-9);
}

TEST(GaussianPdfTest, MarginalIntegratesToOne) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 10, 0, 4));
  const double mx = IntegrateGL(
      [&](double x) { return pdf.MarginalPdfX(x); }, 0, 10, 64);
  EXPECT_NEAR(mx, 1.0, 1e-10);
  const double my = IntegrateGL(
      [&](double y) { return pdf.MarginalPdfY(y); }, 0, 4, 64);
  EXPECT_NEAR(my, 1.0, 1e-10);
}

TEST(GaussianPdfTest, SampleMomentsMatchTruncatedNormal) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 60, 0, 60));
  Rng rng(5);
  const int n = 40000;
  double sx = 0.0;
  double sx2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const Point p = pdf.Sample(&rng);
    ASSERT_TRUE(pdf.bounds().Contains(p));
    sx += p.x;
    sx2 += p.x * p.x;
  }
  const double mean = sx / n;
  const double var = sx2 / n - mean * mean;
  EXPECT_NEAR(mean, 30.0, 0.2);
  // ±3σ truncation keeps the variance within ~1.5% of σ² = 100.
  EXPECT_NEAR(var, 100.0, 5.0);
}

TEST(GaussianPdfTest, MassInMatchesSampleFrequency) {
  const TruncatedGaussianPdf pdf = MakePaper(Rect(0, 30, 0, 30));
  const Rect probe(5, 17, 9, 22);
  Rng rng(6);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (probe.Contains(pdf.Sample(&rng))) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, pdf.MassIn(probe), 0.01);
}

}  // namespace
}  // namespace ilq
