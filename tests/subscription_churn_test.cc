// Concurrency suite for the continuous serving tier: SubscriptionManager
// under register/update/unregister churn from many threads, concurrently
// with catalog updates republishing the ShardedEngine's epoch. Run under
// TSan via the `thread` label. Correctness here is freedom from races plus
// the coherence contract of subscription_manager.h: every answer is
// bit-identical to ShardedEngine::Run *at the answer's own epoch* — which
// this suite checks for the quiescent phases before and after the churn
// (during churn the reference engine itself is moving, so there the suite
// asserts structural sanity: OK-or-NotFound statuses, monotone counters).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/batch.h"
#include "datagen/workload.h"
#include "serve/sharded_engine.h"
#include "serve/subscription_manager.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

std::vector<UncertainObject> MakeObjects(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < count; ++i) {
    objects.emplace_back(static_cast<ObjectId>(i + 1),
                         MakeUniform(RandomRect(&rng, space, 15, 70)));
  }
  return objects;
}

std::vector<PointObject> MakePoints(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<PointObject> points;
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  return points;
}

TrajectoryWorkload MakeTrajectories(size_t issuers, size_t steps) {
  WorkloadConfig base;
  base.space = Rect(0, 1000, 0, 1000);
  base.w = 120.0;
  base.seed = 1234;
  TrajectoryConfig traj;
  traj.issuers = issuers;
  traj.steps = steps;
  traj.step = 60.0;
  traj.u_min = 30.0;
  traj.u_max = 40.0;
  Result<TrajectoryWorkload> workload =
      GenerateTrajectoryWorkload(base, traj);
  ILQ_CHECK(workload.ok(), workload.status().ToString());
  return std::move(workload).ValueOrDie();
}

// N streamer threads each own a trajectory and re-register/stream/drop it
// in a loop; one churn thread moves catalog objects (epoch republishes);
// one thrash thread fires updates at ids it does not own, so NotFound
// races (update vs unregister) are continuously exercised.
TEST(SubscriptionChurnTest, ConcurrentRegisterUpdateUnregisterAndEpochChurn) {
  ShardedEngineConfig config;
  config.shards = 3;
  config.engine.eval.quadrature_order = 8;
  Result<ShardedEngine> engine = ShardedEngine::Build(
      MakePoints(51, 200), MakeObjects(52, 80), config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  AsyncServerOptions serve_options;
  serve_options.threads = 3;
  serve_options.queue_capacity = 64;
  serve_options.cache_capacity = 128;
  AsyncServer server(*engine, serve_options);
  SubscriptionManager manager(&server);

  constexpr size_t kStreamers = 4;
  constexpr size_t kRounds = 3;
  const TrajectoryWorkload workload =
      MakeTrajectories(kStreamers, /*steps=*/8);
  const BatchSpec spec{workload.spec};

  // gtest assertions are not reliable off the main thread (same idiom as
  // update_concurrency_test): worker threads count violations atomically,
  // the main thread asserts after the join.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> violations{0};
  std::atomic<SubscriptionId> last_id{0};

  std::vector<std::thread> threads;
  for (size_t s = 0; s < kStreamers; ++s) {
    threads.emplace_back([&, s] {
      const std::vector<UncertainObject>& trajectory = workload.steps[s];
      const QueryMethod method =
          AllQueryMethods()[s % AllQueryMethods().size()];
      for (size_t round = 0; round < kRounds; ++round) {
        auto registered =
            manager.Register(method, spec, trajectory.front());
        if (!registered.ok()) {
          violations.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        last_id.store(registered->id, std::memory_order_relaxed);
        for (size_t t = 1; t < trajectory.size(); ++t) {
          auto answer =
              manager.UpdatePosition(registered->id, trajectory[t]);
          if (!answer.ok() ||
              !answer->valid_region.ContainsRect(trajectory[t].region())) {
            violations.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          answered.fetch_add(1, std::memory_order_relaxed);
        }
        if (!manager.Unregister(registered->id).ok()) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Epoch churn: keep republishing the catalog under the live sessions.
  threads.emplace_back([&] {
    Rng rng(77);
    uint64_t op = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const ObjectId id = static_cast<ObjectId>(1 + (op++ % 200));
      const Point to(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
      if (!engine->ApplyUpdates({UpdateOp::MovePoint(id, to)}).ok()) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  // Foreign-id thrash: updates against ids owned (or already dropped) by
  // the streamers — every call must come back OK or NotFound, never a
  // crash or a torn answer.
  threads.emplace_back([&] {
    UncertainObject probe(9001u, MakeUniform(Rect(450, 520, 450, 520)));
    ILQ_CHECK(probe.BuildCatalog(
                      engine->config().engine.catalog_values).ok(),
              "probe catalog");
    while (!stop.load(std::memory_order_relaxed)) {
      const SubscriptionId id = last_id.load(std::memory_order_relaxed);
      if (id != 0) {
        auto answer = manager.UpdatePosition(id, probe);
        if (answer.ok()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else if (answer.status().code() != StatusCode::kNotFound) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::yield();
    }
  });

  for (size_t s = 0; s < kStreamers; ++s) threads[s].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t s = kStreamers; s < threads.size(); ++s) threads[s].join();

  EXPECT_EQ(violations.load(), 0u);

  const ContinuousStats stats = manager.continuous_stats();
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.registrations, kStreamers * kRounds);
  EXPECT_EQ(stats.unregistrations, kStreamers * kRounds);
  // Every successful answer was counted exactly once, on one side of the
  // validation/re-evaluation split.
  EXPECT_EQ(stats.validations + stats.reevaluations,
            answered.load() + stats.registrations);

  // Quiescent coda: with the churn stopped, a fresh session must be
  // bit-identical to the reference engine at the now-stable epoch.
  const UncertainObject& issuer = workload.steps[0][2];
  auto registered = manager.Register(QueryMethod::kIuq, spec, issuer);
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  const AnswerSet reference = engine->Run(QueryMethod::kIuq, issuer, spec);
  ASSERT_EQ(registered->answer.answers.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(registered->answer.answers[i].id, reference[i].id);
    EXPECT_EQ(registered->answer.answers[i].probability,
              reference[i].probability);
  }
  EXPECT_TRUE(manager.Unregister(registered->id).ok());
}

}  // namespace
}  // namespace ilq
