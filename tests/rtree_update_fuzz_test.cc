// Fuzz-differential test for dynamic R-tree maintenance: random
// insert/remove interleavings must leave a tree that answers Query and
// Nearest identically to a fresh BulkLoad over the surviving items, and
// must keep every structural invariant (Validate) at each step. This is
// the index-layer guarantee the mutable-catalog engine rests on — update
// paths may reshape the tree arbitrarily, but never its answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/rtree.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::RandomRect;

struct LiveItem {
  Rect box;
  ObjectId id;
};

std::vector<ObjectId> Sorted(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Compares the dynamic tree against a bulk-loaded reference over the same
// survivors: identical Query id sets for a spread of ranges and identical
// Nearest distance profiles for a spread of query points.
void ExpectEquivalent(const RTree& dynamic, const std::vector<LiveItem>& live,
                      const RTreeOptions& options, Rng* rng,
                      const Rect& space, const std::string& what) {
  std::vector<RTree::Item> items;
  items.reserve(live.size());
  for (const LiveItem& item : live) items.push_back({item.box, item.id});
  Result<RTree> reference = RTree::BulkLoad(options, std::move(items));
  ASSERT_TRUE(reference.ok()) << what << ": " << reference.status().ToString();

  ASSERT_EQ(dynamic.size(), live.size()) << what;
  ASSERT_TRUE(dynamic.Validate().ok())
      << what << ": " << dynamic.Validate().ToString();

  for (int q = 0; q < 12; ++q) {
    const Rect range = RandomRect(rng, space, 20, 400);
    EXPECT_EQ(Sorted(dynamic.QueryIds(range)),
              Sorted(reference->QueryIds(range)))
        << what << " range query #" << q;
  }
  for (int q = 0; q < 8; ++q) {
    const Point p(rng->Uniform(space.xmin, space.xmax),
                  rng->Uniform(space.ymin, space.ymax));
    const size_t k = 1 + static_cast<size_t>(rng->NextBelow(8));
    const std::vector<RTree::Neighbor> got = dynamic.Nearest(p, k);
    const std::vector<RTree::Neighbor> want = reference->Nearest(p, k);
    ASSERT_EQ(got.size(), want.size()) << what << " kNN #" << q;
    for (size_t i = 0; i < got.size(); ++i) {
      // Distances must agree exactly; ids may differ only on exact ties.
      EXPECT_EQ(got[i].distance, want[i].distance)
          << what << " kNN #" << q << " neighbor " << i;
    }
  }
}

void RunFuzz(uint64_t seed, const RTreeOptions& options) {
  const Rect space(0, 1000, 0, 1000);
  Rng rng(seed);

  Result<RTree> tree = RTree::Create(options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  std::vector<LiveItem> live;
  ObjectId next_id = 1;
  const std::string what = "seed=" + std::to_string(seed);

  for (int step = 0; step < 600; ++step) {
    // Bias toward inserts so the tree grows, with removal bursts mixed in;
    // removing from an empty tree is exercised as a no-op.
    const bool remove = !live.empty() && rng.NextDouble() < 0.45;
    if (remove) {
      const size_t at = static_cast<size_t>(rng.NextBelow(live.size()));
      const LiveItem victim = live[at];
      live[at] = live.back();
      live.pop_back();
      EXPECT_TRUE(tree->Remove(victim.box, victim.id))
          << what << " step " << step;
      // Removing it again must report absence.
      EXPECT_FALSE(tree->Remove(victim.box, victim.id));
    } else {
      const Rect box = RandomRect(&rng, space, 1, 60);
      tree->Insert(box, next_id);
      live.push_back({box, next_id});
      ++next_id;
    }
    if (step % 60 == 59) {
      ExpectEquivalent(*tree, live, options, &rng, space,
                       what + " step " + std::to_string(step));
    }
  }

  // Drain to empty: condensation must survive the root collapsing.
  while (!live.empty()) {
    const size_t at = static_cast<size_t>(rng.NextBelow(live.size()));
    const LiveItem victim = live[at];
    live[at] = live.back();
    live.pop_back();
    ASSERT_TRUE(tree->Remove(victim.box, victim.id)) << what;
  }
  EXPECT_EQ(tree->size(), 0u);
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  EXPECT_TRUE(tree->QueryIds(space).empty());

  // The drained tree remains fully usable.
  tree->Insert(Rect(10, 20, 10, 20), 424242);
  EXPECT_EQ(Sorted(tree->QueryIds(space)), std::vector<ObjectId>{424242});
}

TEST(RTreeUpdateFuzzTest, DefaultPageSize) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RunFuzz(seed, RTreeOptions{});
  }
}

// Tiny nodes force frequent splits, condensation and reinsertion — the
// structurally hostile regime for Guttman delete.
TEST(RTreeUpdateFuzzTest, TinyFanout) {
  RTreeOptions options;
  options.max_entries_override = 4;
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    RunFuzz(seed, options);
  }
}

// Duplicate boxes with distinct ids, and duplicate (box, id) pairs: Remove
// must take out exactly one matching entry per call.
TEST(RTreeUpdateFuzzTest, DuplicateEntries) {
  RTreeOptions options;
  options.max_entries_override = 4;
  Result<RTree> tree = RTree::Create(options);
  ASSERT_TRUE(tree.ok());
  const Rect box(100, 120, 100, 120);
  for (ObjectId id = 1; id <= 6; ++id) tree->Insert(box, id);
  tree->Insert(box, 3);  // duplicate pair
  EXPECT_EQ(tree->size(), 7u);

  EXPECT_TRUE(tree->Remove(box, 3));
  EXPECT_EQ(tree->size(), 6u);
  std::vector<ObjectId> ids = Sorted(tree->QueryIds(box));
  EXPECT_EQ(ids, (std::vector<ObjectId>{1, 2, 3, 4, 5, 6}));

  EXPECT_TRUE(tree->Remove(box, 3));
  EXPECT_FALSE(tree->Remove(box, 3));
  EXPECT_EQ(Sorted(tree->QueryIds(box)),
            (std::vector<ObjectId>{1, 2, 4, 5, 6}));
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
}

}  // namespace
}  // namespace ilq
