// Loopback end-to-end differential suite (ISSUE: satellite 3). A Router
// talking to N ShardServers over real localhost sockets must produce
// AnswerSets bit-identical to BOTH the monolithic QueryEngine and the
// in-process ShardedEngine — all eight query methods, analytic and
// Monte-Carlo kernels, uniform and mixed pdf issuers. The three stacks are
// built from the same SplitCatalogImage artifacts the multi-process
// deployment distributes, so this is the whole tentpole chain under test:
// snapshot split → file-less fleet boot → wire round-trip → fan-out →
// id-sorted merge.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "serve/partition.h"
#include "serve/sharded_engine.h"
#include "test_util.h"
#include "wire/disk_bundle.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

CatalogImage MakeImage(uint64_t seed, size_t uncertains, size_t points) {
  Rng rng(seed);
  CatalogImage image;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < points; ++i) {
    image.points.emplace_back(
        static_cast<ObjectId>(i + 1),
        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  for (size_t i = 0; i < uncertains; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 3) {
      case 0:
        image.uncertains.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        image.uncertains.emplace_back(id, MakeGaussian(region));
        break;
      default:
        image.uncertains.emplace_back(
            id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
    }
  }
  return image;
}

AnswerSet Sorted(AnswerSet answers) {
  CanonicalizeAnswers(&answers);
  return answers;
}

class NetLoopbackTest : public ::testing::TestWithParam<ProbabilityKernel> {
};

TEST_P(NetLoopbackTest, RouterMatchesMonolithAndShardedEngineBitExactly) {
  const CatalogImage image = MakeImage(101, 150, 100);
  EngineConfig engine_config;
  engine_config.eval.kernel = GetParam();
  engine_config.eval.mc_samples = 64;  // keep the MC variant fast

  // Reference 1: monolithic engine over the full image.
  auto mono =
      QueryEngine::Build(image.points, image.uncertains, engine_config);
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();

  // Reference 2: in-process sharded engine, same shard count.
  constexpr size_t kShards = 3;
  ShardedEngineConfig sharded_config;
  sharded_config.shards = kShards;
  sharded_config.engine = engine_config;
  auto sharded = ShardedEngine::Build(image.points, image.uncertains,
                                      sharded_config);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // The fleet: split → per-shard servers → router.
  auto split = SplitCatalogImage(image, kShards);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  std::vector<std::unique_ptr<ShardServer>> servers;
  RouterOptions router_options;
  router_options.map = split->map;
  for (CatalogImage& shard : split->shards) {
    ShardedEngineConfig shard_config;
    shard_config.shards = 1;
    shard_config.engine = engine_config;
    auto engine =
        ShardedEngine::Build(std::move(shard.points),
                             std::move(shard.uncertains), shard_config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engines.push_back(
        std::make_unique<ShardedEngine>(std::move(engine).ValueOrDie()));
    servers.push_back(std::make_unique<ShardServer>(*engines.back()));
    ASSERT_TRUE(servers.back()->Start().ok());
    router_options.endpoints.push_back(
        RouterEndpoint{"127.0.0.1", servers.back()->port()});
  }
  auto router = Router::Make(std::move(router_options));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Issuers crossing every encodable pdf family.
  std::vector<UncertainObject> issuers;
  issuers.emplace_back(501u, MakeUniform(Rect(200, 400, 200, 400)));
  issuers.emplace_back(502u, MakeGaussian(Rect(600, 760, 100, 260)));
  issuers.emplace_back(503u,
                       MakeSkewedHistogram(Rect(100, 260, 600, 760), 3, 3,
                                           7));
  for (UncertainObject& issuer : issuers) {
    ASSERT_TRUE(
        issuer.BuildCatalog(sharded->config().engine.catalog_values).ok());
  }

  BatchSpec spec;
  spec.query.w = 120.0;
  spec.query.h = 120.0;
  spec.query.threshold = 0.3;

  for (const UncertainObject& issuer : issuers) {
    for (const QueryMethod method : AllQueryMethods()) {
      SCOPED_TRACE(std::string(QueryMethodName(method)) + " issuer " +
                   std::to_string(issuer.id()));
      auto remote = router->Query(issuer, method, spec);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      const AnswerSet mono_answers =
          Sorted(RunQueryMethod(*mono, method, issuer, spec));
      const AnswerSet sharded_answers =
          Sorted(sharded->Run(method, issuer, spec));

      ASSERT_EQ(remote->size(), mono_answers.size());
      ASSERT_EQ(remote->size(), sharded_answers.size());
      for (size_t i = 0; i < mono_answers.size(); ++i) {
        EXPECT_EQ((*remote)[i].id, mono_answers[i].id);
        EXPECT_EQ((*remote)[i].probability, mono_answers[i].probability);
        EXPECT_EQ((*remote)[i].id, sharded_answers[i].id);
        EXPECT_EQ((*remote)[i].probability,
                  sharded_answers[i].probability);
      }
    }
  }

  // The fan-out actually spread: every server saw at least one request.
  const RouterStats stats = router->stats();
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.retries, 0u);
  uint64_t served = 0;
  for (const auto& server : servers) served += server->stats().requests_ok;
  EXPECT_EQ(served, stats.shard_calls);

  for (auto& server : servers) server->Stop();
}

// The out-of-core bootstrap (ISSUE 8): shard servers whose engines are
// *mounted* from disk bundles (WriteDiskBundle → OpenDiskBundle →
// ShardedEngine::FromEngine — exactly what `shard_server --index-dir`
// runs) must answer over the wire bit-identically to the monolithic
// engine, under buffer budgets small enough to thrash.
TEST_P(NetLoopbackTest, DiskBootstrappedFleetMatchesMonolithBitExactly) {
  const CatalogImage image = MakeImage(107, 120, 80);
  EngineConfig engine_config;
  engine_config.eval.kernel = GetParam();
  engine_config.eval.mc_samples = 64;

  auto mono =
      QueryEngine::Build(image.points, image.uncertains, engine_config);
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();

  constexpr size_t kShards = 2;
  auto split = SplitCatalogImage(image, kShards);
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  std::vector<std::string> dirs;
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  std::vector<std::unique_ptr<ShardServer>> servers;
  RouterOptions router_options;
  router_options.map = split->map;
  for (size_t s = 0; s < split->shards.size(); ++s) {
    // PID-unique scratch: ctest runs each kernel parameterization as its
    // own process, in parallel — shared names would race.
    dirs.push_back(::testing::TempDir() + "ilq_net_disk_" +
                   std::to_string(::getpid()) + "_shard" + std::to_string(s));
    std::filesystem::remove_all(dirs.back());
    ASSERT_TRUE(
        WriteDiskBundle(split->shards[s], dirs.back(), engine_config).ok());

    EngineConfig paged = engine_config;
    paged.storage = StorageMode::kPaged;
    paged.buffer_pool_bytes = 1 << 14;  // 4 pages per index: thrash
    auto opened = OpenDiskBundle(dirs.back(), paged);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_TRUE(opened->is_paged());
    auto engine = ShardedEngine::FromEngine(std::move(opened).ValueOrDie());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engines.push_back(
        std::make_unique<ShardedEngine>(std::move(engine).ValueOrDie()));
    servers.push_back(std::make_unique<ShardServer>(*engines.back()));
    ASSERT_TRUE(servers.back()->Start().ok());
    router_options.endpoints.push_back(
        RouterEndpoint{"127.0.0.1", servers.back()->port()});
  }
  auto router = Router::Make(std::move(router_options));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  std::vector<UncertainObject> issuers;
  issuers.emplace_back(601u, MakeUniform(Rect(250, 450, 250, 450)));
  issuers.emplace_back(602u, MakeGaussian(Rect(550, 710, 150, 310)));
  for (UncertainObject& issuer : issuers) {
    ASSERT_TRUE(
        issuer.BuildCatalog(mono->config().catalog_values).ok());
  }
  BatchSpec spec;
  spec.query.w = 120.0;
  spec.query.h = 120.0;
  spec.query.threshold = 0.3;

  for (const UncertainObject& issuer : issuers) {
    for (const QueryMethod method : AllQueryMethods()) {
      SCOPED_TRACE(std::string(QueryMethodName(method)) + " issuer " +
                   std::to_string(issuer.id()));
      auto remote = router->Query(issuer, method, spec);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      const AnswerSet expected =
          Sorted(RunQueryMethod(*mono, method, issuer, spec));
      ASSERT_EQ(remote->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ((*remote)[i].id, expected[i].id);
        EXPECT_EQ((*remote)[i].probability, expected[i].probability);
      }
    }
  }

  for (auto& server : servers) server->Stop();
  for (const std::string& dir : dirs) std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Kernels, NetLoopbackTest,
                         ::testing::Values(ProbabilityKernel::kAnalytic,
                                           ProbabilityKernel::kMonteCarlo),
                         [](const auto& info) {
                           return info.param ==
                                          ProbabilityKernel::kAnalytic
                                      ? "analytic"
                                      : "monte_carlo";
                         });

TEST(NetLoopbackStatsTest, ResponseCarriesEpochAndServerStats) {
  const CatalogImage image = MakeImage(303, 60, 40);
  auto split = SplitCatalogImage(image, 2);
  ASSERT_TRUE(split.ok());
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  std::vector<std::unique_ptr<ShardServer>> servers;
  RouterOptions options;
  options.map = split->map;
  for (CatalogImage& shard : split->shards) {
    ShardedEngineConfig config;
    config.shards = 1;
    auto engine = ShardedEngine::Build(std::move(shard.points),
                                       std::move(shard.uncertains), config);
    ASSERT_TRUE(engine.ok());
    engines.push_back(
        std::make_unique<ShardedEngine>(std::move(engine).ValueOrDie()));
    servers.push_back(std::make_unique<ShardServer>(*engines.back()));
    ASSERT_TRUE(servers.back()->Start().ok());
    options.endpoints.push_back(
        RouterEndpoint{"127.0.0.1", servers.back()->port()});
  }
  auto router = Router::Make(std::move(options));
  ASSERT_TRUE(router.ok());

  UncertainObject issuer(9u, MakeUniform(Rect(0, 1000, 0, 1000)));
  BatchSpec spec;
  spec.query.w = 200.0;
  spec.query.h = 200.0;
  WireServeStats stats;
  auto answers = router->Query(issuer, QueryMethod::kIpq, spec, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(stats.epoch, 0u);      // freshly built fleet
  EXPECT_GE(stats.submitted, 1u);  // the server counted our request
  // The worker fulfils the future before bumping `completed`, so the
  // snapshot taken while answering may legitimately still read 0.
  EXPECT_LE(stats.completed, stats.submitted);
  for (auto& server : servers) server->Stop();
}

}  // namespace
}  // namespace ilq
