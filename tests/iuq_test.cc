#include "core/iuq.h"

#include <gtest/gtest.h>

#include <map>

#include "core/basic_eval.h"
#include "core/duality.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

struct Fixture {
  std::vector<UncertainObject> objects;
  RTree index;
};

enum class PdfKind { kUniform, kGaussian, kHistogram };

Fixture MakeFixture(size_t n, uint64_t seed, PdfKind kind) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < n; ++i) {
    const Rect region = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 80);
    std::unique_ptr<UncertaintyPdf> pdf;
    switch (kind) {
      case PdfKind::kUniform:
        pdf = MakeUniform(region);
        break;
      case PdfKind::kGaussian:
        pdf = MakeGaussian(region);
        break;
      case PdfKind::kHistogram:
        pdf = MakeSkewedHistogram(region, 4, 4, seed + i);
        break;
    }
    objects.emplace_back(static_cast<ObjectId>(i + 1), std::move(pdf));
    items.push_back({region, static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  EXPECT_TRUE(tree.ok());
  return {std::move(objects), std::move(tree).ValueOrDie()};
}

TEST(IuqTest, UniformAnswersMatchClosedForm) {
  Fixture fixture = MakeFixture(1000, 111, PdfKind::kUniform);
  UncertainObject issuer(0, MakeUniform(Rect(300, 600, 300, 600)));
  const RangeQuerySpec spec(150, 150);
  const AnswerSet got =
      EvaluateIUQ(fixture.index, fixture.objects, issuer, spec, {});
  ASSERT_FALSE(got.empty());
  for (const auto& a : got) {
    const double exact = UniformUniformQualification(
        issuer.region(), fixture.objects[a.id - 1].region(), spec.w, spec.h);
    EXPECT_NEAR(a.probability, exact, 1e-12);
  }
}

TEST(IuqTest, FindsEveryObjectWithNonZeroProbability) {
  // Lemma 1 soundness: brute-force scan must not find extra answers.
  Fixture fixture = MakeFixture(800, 112, PdfKind::kUniform);
  UncertainObject issuer(0, MakeUniform(Rect(200, 500, 500, 800)));
  const RangeQuerySpec spec(120, 90);
  const AnswerSet got =
      EvaluateIUQ(fixture.index, fixture.objects, issuer, spec, {});
  std::map<ObjectId, double> by_id;
  for (const auto& a : got) by_id[a.id] = a.probability;
  for (const UncertainObject& obj : fixture.objects) {
    const double exact = UniformUniformQualification(
        issuer.region(), obj.region(), spec.w, spec.h);
    if (exact > 0) {
      ASSERT_TRUE(by_id.count(obj.id())) << "missed object " << obj.id();
      EXPECT_NEAR(by_id[obj.id()], exact, 1e-12);
    } else {
      EXPECT_FALSE(by_id.count(obj.id()));
    }
  }
}

TEST(IuqTest, GaussianAnswersMatchBasicReference) {
  Fixture fixture = MakeFixture(150, 113, PdfKind::kGaussian);
  UncertainObject issuer(0, MakeGaussian(Rect(350, 650, 350, 650)));
  const RangeQuerySpec spec(140, 140);
  const AnswerSet enhanced =
      EvaluateIUQ(fixture.index, fixture.objects, issuer, spec, {});
  BasicEvalOptions fine;
  fine.grid_per_axis = 48;
  const AnswerSet basic = EvaluateIUQBasic(fixture.index, fixture.objects,
                                           issuer, spec, fine);
  std::map<ObjectId, double> basic_by_id;
  for (const auto& a : basic) basic_by_id[a.id] = a.probability;
  ASSERT_FALSE(enhanced.empty());
  for (const auto& a : enhanced) {
    if (a.probability < 0.05) continue;  // below grid-baseline resolution
    ASSERT_TRUE(basic_by_id.count(a.id)) << "object " << a.id;
    EXPECT_NEAR(a.probability, basic_by_id[a.id], 0.02);
  }
}

TEST(IuqTest, HistogramObjectsEvaluate) {
  Fixture fixture = MakeFixture(60, 114, PdfKind::kHistogram);
  UncertainObject issuer(0, MakeUniform(Rect(300, 700, 300, 700)));
  const RangeQuerySpec spec(200, 200);
  const AnswerSet got =
      EvaluateIUQ(fixture.index, fixture.objects, issuer, spec, {});
  ASSERT_FALSE(got.empty());
  for (const auto& a : got) {
    EXPECT_GT(a.probability, 0.0);
    EXPECT_LE(a.probability, 1.0 + 1e-9);
  }
}

TEST(IuqTest, ObjectEngulfedByQueryHasProbabilityOne) {
  std::vector<UncertainObject> objects;
  objects.emplace_back(1, MakeUniform(Rect(490, 510, 490, 510)));
  Result<RTree> tree = RTree::BulkLoad(
      RTreeOptions{}, {{objects[0].region(), 0}});
  ASSERT_TRUE(tree.ok());
  UncertainObject issuer(0, MakeUniform(Rect(480, 520, 480, 520)));
  // Query so large that Ui ⊆ R(x, y) for every issuer position.
  const AnswerSet got =
      EvaluateIUQ(*tree, objects, issuer, RangeQuerySpec(200, 200), {});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NEAR(got[0].probability, 1.0, 1e-9);
}

TEST(IuqTest, MonteCarloKernelApproximatesAnalytic) {
  Fixture fixture = MakeFixture(100, 115, PdfKind::kUniform);
  UncertainObject issuer(0, MakeUniform(Rect(300, 700, 300, 700)));
  const RangeQuerySpec spec(180, 180);
  EvalOptions mc;
  mc.kernel = ProbabilityKernel::kMonteCarlo;
  mc.mc_samples = 20000;
  const AnswerSet analytic =
      EvaluateIUQ(fixture.index, fixture.objects, issuer, spec, {});
  const AnswerSet sampled =
      EvaluateIUQ(fixture.index, fixture.objects, issuer, spec, mc);
  std::map<ObjectId, double> truth;
  for (const auto& a : analytic) truth[a.id] = a.probability;
  for (const auto& a : sampled) {
    EXPECT_NEAR(a.probability, truth[a.id], 0.03);
  }
}

TEST(IuqTest, StatsTrackCandidatesAndIO) {
  Fixture fixture = MakeFixture(3000, 116, PdfKind::kUniform);
  UncertainObject issuer(0, MakeUniform(Rect(400, 600, 400, 600)));
  IndexStats stats;
  EvaluateIUQ(fixture.index, fixture.objects, issuer,
              RangeQuerySpec(100, 100), {}, &stats);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GT(stats.node_accesses, stats.leaf_accesses);
}

}  // namespace
}  // namespace ilq
