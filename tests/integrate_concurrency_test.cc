// Regression tests for the lock-free Gauss–Legendre rule cache: before
// PR 3, GetGaussLegendreRule took a global std::mutex on every call, so
// RunBatch workers serialized on one lock inside every quadrature
// evaluation. These tests hammer the cache — eager table, overflow
// snapshot path, and first-use races — from 8 threads and are labeled
// `thread`, so the tsan preset/CI job races them under ThreadSanitizer.

#include "prob/integrate.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <thread>
#include <vector>

namespace ilq {
namespace {

constexpr size_t kThreads = 8;

double WeightSum(const GaussLegendreRule& rule) {
  double sum = 0.0;
  for (double w : rule.weights) sum += w;
  return sum;
}

TEST(IntegrateConcurrencyTest, EagerOrdersFromManyThreads) {
  // Every thread fetches every common order (the evaluators' range) and
  // integrates with it; all checksums must agree and every rule must be
  // well-formed. Under TSan this fails if any lookup touches shared
  // mutable state.
  std::array<double, kThreads> sums{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &sums] {
      double sum = 0.0;
      for (int round = 0; round < 50; ++round) {
        for (size_t n = 1; n <= 64; ++n) {
          const GaussLegendreRule& rule = GetGaussLegendreRule(n);
          sum += WeightSum(rule);
          sum += IntegrateGL([](double x) { return x * x; }, 0.0, 1.0, n);
        }
      }
      sums[t] = sum;
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(sums[t], sums[0]) << "thread " << t;
  }
  // Per round: 64 orders × weight-sum 2, ∫x² = 1/3 for every order ≥ 2,
  // and the 1-point midpoint rule gives 0.25 for x².
  EXPECT_NEAR(sums[0], 50.0 * (64.0 * 2.0 + 63.0 / 3.0 + 0.25), 1e-6);
}

TEST(IntegrateConcurrencyTest, OverflowOrdersRaceOnFirstUse) {
  // Orders beyond the eager table go through the append-only snapshot
  // path. All 8 threads request the same fresh orders at once, so the
  // publish race (first thread computes, the rest must observe the same
  // rule) is exercised on every run of this binary.
  std::array<double, kThreads> sums{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &sums] {
      double sum = 0.0;
      for (size_t n : {65u, 96u, 100u, 128u, 163u, 200u}) {
        const GaussLegendreRule& rule = GetGaussLegendreRule(n);
        ASSERT_EQ(rule.nodes.size(), n);
        sum += WeightSum(rule);
      }
      sums[t] = sum;
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_NEAR(sums[t], 6 * 2.0, 1e-12) << "thread " << t;
  }
}

TEST(IntegrateConcurrencyTest, ReferencesAreStableAcrossThreads) {
  // The reference returned for an order is the same object from every
  // thread and every call — the contract that lets evaluators hold on to
  // a rule across a batch.
  std::array<const GaussLegendreRule*, kThreads> eager{};
  std::array<const GaussLegendreRule*, kThreads> overflow{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &eager, &overflow] {
      eager[t] = &GetGaussLegendreRule(16);
      overflow[t] = &GetGaussLegendreRule(150);
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(eager[t], eager[0]);
    EXPECT_EQ(overflow[t], overflow[0]);
  }
  EXPECT_EQ(&GetGaussLegendreRule(16), eager[0]);
  EXPECT_EQ(&GetGaussLegendreRule(150), overflow[0]);
}

TEST(IntegrateConcurrencyTest, ConcurrentQuadratureMatchesSerial) {
  // Full kernels (1-D, 2-D, Monte-Carlo with per-thread streams) running
  // concurrently produce exactly the serial results.
  const double serial_1d =
      IntegrateGL([](double x) { return std::exp(-x * x); }, -1.0, 2.0, 32);
  const double serial_2d = IntegrateGL2D(
      [](double x, double y) { return x * x + y; }, Rect(0, 2, -1, 1), 24,
      24);
  std::array<double, kThreads> got_1d{};
  std::array<double, kThreads> got_2d{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &got_1d, &got_2d] {
      for (int round = 0; round < 100; ++round) {
        got_1d[t] = IntegrateGL([](double x) { return std::exp(-x * x); },
                                -1.0, 2.0, 32);
        got_2d[t] =
            IntegrateGL2D([](double x, double y) { return x * x + y; },
                          Rect(0, 2, -1, 1), 24, 24);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got_1d[t], serial_1d) << "thread " << t;
    EXPECT_EQ(got_2d[t], serial_2d) << "thread " << t;
  }
}

}  // namespace
}  // namespace ilq
