// Shared helpers for the ILQ test suite: pdf factories, random geometry,
// and slow-but-independent reference evaluators used as ground truth.

#ifndef ILQ_TESTS_TEST_UTIL_H_
#define ILQ_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "geometry/rect.h"
#include "prob/gaussian_pdf.h"
#include "prob/histogram_pdf.h"
#include "prob/pdf.h"
#include "prob/uniform_pdf.h"

namespace ilq::testing {

inline std::unique_ptr<UniformRectPdf> MakeUniform(const Rect& region) {
  Result<UniformRectPdf> made = UniformRectPdf::Make(region);
  ILQ_CHECK(made.ok(), made.status().ToString());
  return std::make_unique<UniformRectPdf>(std::move(made).ValueOrDie());
}

inline std::unique_ptr<TruncatedGaussianPdf> MakeGaussian(
    const Rect& region) {
  Result<TruncatedGaussianPdf> made =
      TruncatedGaussianPdf::MakePaperDefault(region);
  ILQ_CHECK(made.ok(), made.status().ToString());
  return std::make_unique<TruncatedGaussianPdf>(
      std::move(made).ValueOrDie());
}

inline std::unique_ptr<HistogramPdf> MakeSkewedHistogram(const Rect& region,
                                                         size_t nx,
                                                         size_t ny,
                                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(nx * ny);
  for (double& w : weights) w = rng.NextDouble() * rng.NextDouble();
  weights[0] += 3.0;  // deliberately non-separable corner spike
  Result<HistogramPdf> made =
      HistogramPdf::Make(region, nx, ny, std::move(weights));
  ILQ_CHECK(made.ok(), made.status().ToString());
  return std::make_unique<HistogramPdf>(std::move(made).ValueOrDie());
}

/// Random non-degenerate rectangle inside \p space with sides in
/// [min_side, max_side].
inline Rect RandomRect(Rng* rng, const Rect& space, double min_side,
                       double max_side) {
  const double w = rng->Uniform(min_side, max_side);
  const double h = rng->Uniform(min_side, max_side);
  const double x = rng->Uniform(space.xmin, space.xmax - w);
  const double y = rng->Uniform(space.ymin, space.ymax - h);
  return Rect(x, x + w, y, y + h);
}

/// Ground-truth point qualification (Eq. 2) by dense midpoint integration
/// over U0, using only Density — independent of MassIn/CdfX code paths.
inline double ReferencePointQualification(const UncertaintyPdf& issuer,
                                          const Point& s, double w, double h,
                                          size_t grid = 400) {
  const Rect u0 = issuer.bounds();
  const double dx = u0.Width() / static_cast<double>(grid);
  const double dy = u0.Height() / static_cast<double>(grid);
  double pi = 0.0;
  for (size_t i = 0; i < grid; ++i) {
    const double x = u0.xmin + (static_cast<double>(i) + 0.5) * dx;
    if (std::abs(x - s.x) > w) continue;
    for (size_t j = 0; j < grid; ++j) {
      const double y = u0.ymin + (static_cast<double>(j) + 0.5) * dy;
      if (std::abs(y - s.y) > h) continue;
      pi += issuer.Density(Point(x, y));
    }
  }
  return pi * dx * dy;
}

/// Ground-truth uncertain qualification (Eq. 4) by dense midpoint
/// integration over U0 of Density × (object mass inside the range there).
inline double ReferenceUncertainQualification(const UncertaintyPdf& issuer,
                                              const UncertaintyPdf& object,
                                              double w, double h,
                                              size_t grid = 200) {
  const Rect u0 = issuer.bounds();
  const double dx = u0.Width() / static_cast<double>(grid);
  const double dy = u0.Height() / static_cast<double>(grid);
  double pi = 0.0;
  for (size_t i = 0; i < grid; ++i) {
    const double x = u0.xmin + (static_cast<double>(i) + 0.5) * dx;
    for (size_t j = 0; j < grid; ++j) {
      const double y = u0.ymin + (static_cast<double>(j) + 0.5) * dy;
      const Point p(x, y);
      const double f0 = issuer.Density(p);
      if (f0 <= 0.0) continue;
      pi += f0 * object.MassIn(Rect::Centered(p, w, h));
    }
  }
  return pi * dx * dy;
}

/// Monte-Carlo area of (region predicate) within \p box — used to verify
/// exact geometric areas.
template <typename Inside>
double MonteCarloArea(const Rect& box, Inside&& inside, size_t samples,
                      uint64_t seed) {
  Rng rng(seed);
  size_t hits = 0;
  for (size_t i = 0; i < samples; ++i) {
    const Point p(rng.Uniform(box.xmin, box.xmax),
                  rng.Uniform(box.ymin, box.ymax));
    if (inside(p)) ++hits;
  }
  return box.Area() * static_cast<double>(hits) /
         static_cast<double>(samples);
}

}  // namespace ilq::testing

#endif  // ILQ_TESTS_TEST_UTIL_H_
