#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ilq {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
}

TEST(SummaryStatsTest, MeanAndSum) {
  SummaryStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 6.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(SummaryStatsTest, MinMax) {
  SummaryStats s;
  for (double v : {5.0, -1.0, 3.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Min(), -1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(SummaryStatsTest, SampleStdDev) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  // Known dataset: sample variance = 32/7.
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryStatsTest, StdDevSingleSampleIsZero) {
  SummaryStats s;
  s.Add(42.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(SummaryStatsTest, PercentileInterpolates) {
  SummaryStats s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(s.Median(), 25.0);
}

TEST(SummaryStatsTest, PercentileCacheInvalidatedByAdd) {
  SummaryStats s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 3.0);
}

TEST(SummaryStatsTest, PercentileClampsRange) {
  SummaryStats s;
  s.Add(5.0);
  s.Add(6.0);
  EXPECT_DOUBLE_EQ(s.Percentile(-10), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(500), 6.0);
}

TEST(SummaryStatsTest, ResetClearsEverything) {
  SummaryStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Sum(), 0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 10.0);
}

}  // namespace
}  // namespace ilq
