#include "prob/integrate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ilq {
namespace {

TEST(GaussLegendreTest, RuleWeightsSumToTwo) {
  for (size_t n : {1u, 2u, 5u, 16u, 33u, 64u}) {
    const GaussLegendreRule& rule = GetGaussLegendreRule(n);
    ASSERT_EQ(rule.nodes.size(), n);
    double sum = 0.0;
    for (double w : rule.weights) sum += w;
    EXPECT_NEAR(sum, 2.0, 1e-12) << "order " << n;
  }
}

TEST(GaussLegendreTest, NodesSortedInsideInterval) {
  const GaussLegendreRule& rule = GetGaussLegendreRule(16);
  for (size_t i = 0; i < rule.nodes.size(); ++i) {
    EXPECT_GT(rule.nodes[i], -1.0);
    EXPECT_LT(rule.nodes[i], 1.0);
    if (i > 0) {
      EXPECT_GT(rule.nodes[i], rule.nodes[i - 1]);
    }
  }
}

TEST(GaussLegendreTest, ExactForPolynomials) {
  // Order n integrates degree 2n-1 exactly: check x^7 with n = 4.
  const double got = IntegrateGL(
      [](double x) { return 7 * std::pow(x, 6); }, 0.0, 2.0, 4);
  EXPECT_NEAR(got, 128.0, 1e-9);
}

TEST(GaussLegendreTest, SmoothFunction) {
  const double got =
      IntegrateGL([](double x) { return std::sin(x); }, 0.0, 3.14159265358979,
                  16);
  EXPECT_NEAR(got, 2.0, 1e-12);
}

TEST(GaussLegendreTest, EmptyIntervalIsZero) {
  EXPECT_EQ(IntegrateGL([](double) { return 1.0; }, 2.0, 2.0, 8), 0.0);
  EXPECT_EQ(IntegrateGL([](double) { return 1.0; }, 3.0, 2.0, 8), 0.0);
}

TEST(GaussLegendre2DTest, ConstantOverRect) {
  const double got = IntegrateGL2D([](double, double) { return 3.0; },
                                   Rect(0, 2, 0, 5), 4, 4);
  EXPECT_NEAR(got, 30.0, 1e-12);
}

TEST(GaussLegendre2DTest, SeparablePolynomial) {
  // ∫∫ x^2 y over [0,1]x[0,2] = (1/3)(2) = 2/3.
  const double got = IntegrateGL2D(
      [](double x, double y) { return x * x * y; }, Rect(0, 1, 0, 2), 8, 8);
  EXPECT_NEAR(got, 2.0 / 3.0, 1e-12);
}

TEST(GaussLegendre2DTest, EmptyRectIsZero) {
  EXPECT_EQ(IntegrateGL2D([](double, double) { return 1.0; }, Rect::Empty(),
                          4, 4),
            0.0);
}

TEST(MonteCarloTest, MeanOfConstantIsConstant) {
  Rng rng(1);
  const double got = MonteCarloMean(
      [](Rng* r) { return Point(r->NextDouble(), r->NextDouble()); },
      [](const Point&) { return 2.5; }, 100, &rng);
  EXPECT_DOUBLE_EQ(got, 2.5);
}

TEST(MonteCarloTest, EstimatesExpectation) {
  Rng rng(2);
  // E[x] for x ~ U[0,1) is 0.5.
  const double got = MonteCarloMean(
      [](Rng* r) { return Point(r->NextDouble(), 0.0); },
      [](const Point& p) { return p.x; }, 200000, &rng);
  EXPECT_NEAR(got, 0.5, 0.005);
}

}  // namespace
}  // namespace ilq
