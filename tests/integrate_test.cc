#include "prob/integrate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ilq {
namespace {

TEST(GaussLegendreTest, RuleWeightsSumToTwo) {
  for (size_t n : {1u, 2u, 5u, 16u, 33u, 64u}) {
    const GaussLegendreRule& rule = GetGaussLegendreRule(n);
    ASSERT_EQ(rule.nodes.size(), n);
    double sum = 0.0;
    for (double w : rule.weights) sum += w;
    EXPECT_NEAR(sum, 2.0, 1e-12) << "order " << n;
  }
}

TEST(GaussLegendreTest, NodesSortedInsideInterval) {
  const GaussLegendreRule& rule = GetGaussLegendreRule(16);
  for (size_t i = 0; i < rule.nodes.size(); ++i) {
    EXPECT_GT(rule.nodes[i], -1.0);
    EXPECT_LT(rule.nodes[i], 1.0);
    if (i > 0) {
      EXPECT_GT(rule.nodes[i], rule.nodes[i - 1]);
    }
  }
}

TEST(GaussLegendreTest, ExactForPolynomials) {
  // Order n integrates degree 2n-1 exactly: check x^7 with n = 4.
  const double got = IntegrateGL(
      [](double x) { return 7 * std::pow(x, 6); }, 0.0, 2.0, 4);
  EXPECT_NEAR(got, 128.0, 1e-9);
}

TEST(GaussLegendreTest, SmoothFunction) {
  const double got =
      IntegrateGL([](double x) { return std::sin(x); }, 0.0, 3.14159265358979,
                  16);
  EXPECT_NEAR(got, 2.0, 1e-12);
}

TEST(GaussLegendreTest, EmptyIntervalIsZero) {
  EXPECT_EQ(IntegrateGL([](double) { return 1.0; }, 2.0, 2.0, 8), 0.0);
  EXPECT_EQ(IntegrateGL([](double) { return 1.0; }, 3.0, 2.0, 8), 0.0);
}

TEST(GaussLegendre2DTest, ConstantOverRect) {
  const double got = IntegrateGL2D([](double, double) { return 3.0; },
                                   Rect(0, 2, 0, 5), 4, 4);
  EXPECT_NEAR(got, 30.0, 1e-12);
}

TEST(GaussLegendre2DTest, SeparablePolynomial) {
  // ∫∫ x^2 y over [0,1]x[0,2] = (1/3)(2) = 2/3.
  const double got = IntegrateGL2D(
      [](double x, double y) { return x * x * y; }, Rect(0, 1, 0, 2), 8, 8);
  EXPECT_NEAR(got, 2.0 / 3.0, 1e-12);
}

TEST(GaussLegendre2DTest, EmptyRectIsZero) {
  EXPECT_EQ(IntegrateGL2D([](double, double) { return 1.0; }, Rect::Empty(),
                          4, 4),
            0.0);
}

TEST(GaussLegendreTest, OverflowOrdersBeyondEagerTable) {
  // Orders past the eagerly built table go through the snapshot path and
  // must be just as well-formed and stable.
  for (size_t n : {65u, 100u, 128u, 257u}) {
    const GaussLegendreRule& rule = GetGaussLegendreRule(n);
    ASSERT_EQ(rule.nodes.size(), n);
    double sum = 0.0;
    for (double w : rule.weights) sum += w;
    EXPECT_NEAR(sum, 2.0, 1e-11) << "order " << n;
    EXPECT_EQ(&GetGaussLegendreRule(n), &rule) << "order " << n;
  }
}

// The templated kernels and the std::function overloads must agree to the
// last bit — the overloads forward to the templates, and the evaluators
// rely on the two forms being interchangeable. Orders cover everything the
// evaluators use (quadrature_order default 16, ablation sweep to 64) plus
// an overflow-path order.
TEST(TemplatedKernelTest, IntegrateGLBitIdenticalToFunctionOverload) {
  auto f = [](double x) { return std::sin(x) * x + 0.5; };
  const std::function<double(double)> erased = f;
  for (size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const double templated = IntegrateGL(f, -0.5, 2.5, n);
    const double type_erased = IntegrateGL(erased, -0.5, 2.5, n);
    EXPECT_EQ(templated, type_erased) << "order " << n;
  }
}

TEST(TemplatedKernelTest, IntegrateGL2DBitIdenticalToFunctionOverload) {
  auto f = [](double x, double y) { return std::cos(x) * y + x; };
  const std::function<double(double, double)> erased = f;
  const Rect rect(-1, 2, 0.5, 3);
  for (size_t n : {1u, 4u, 8u, 16u, 32u, 64u}) {
    const double templated = IntegrateGL2D(f, rect, n, n);
    const double type_erased = IntegrateGL2D(erased, rect, n, n);
    EXPECT_EQ(templated, type_erased) << "order " << n;
  }
}

TEST(TemplatedKernelTest, MonteCarloMeanBitIdenticalToFunctionOverload) {
  auto sampler = [](Rng* r) {
    return Point(r->NextDouble(), r->NextDouble());
  };
  auto f = [](const Point& p) { return p.x * p.y + 1.0; };
  const std::function<Point(Rng*)> erased_sampler = sampler;
  const std::function<double(const Point&)> erased_f = f;
  for (size_t samples : {1u, 200u, 250u}) {
    Rng rng_a(42);
    Rng rng_b(42);
    const double templated = MonteCarloMean(sampler, f, samples, &rng_a);
    const double type_erased =
        MonteCarloMean(erased_sampler, erased_f, samples, &rng_b);
    EXPECT_EQ(templated, type_erased) << "samples " << samples;
  }
}

TEST(TemplatedKernelTest, EmptyIntervalAndRectAreZero) {
  // b < a / b == a and empty rects short-circuit to 0 without evaluating
  // the integrand.
  auto must_not_run = [](double) -> double {
    ADD_FAILURE() << "integrand evaluated on empty interval";
    return 1.0;
  };
  EXPECT_EQ(IntegrateGL(must_not_run, 2.0, 2.0, 8), 0.0);
  EXPECT_EQ(IntegrateGL(must_not_run, 3.0, 2.0, 8), 0.0);
  auto must_not_run_2d = [](double, double) -> double {
    ADD_FAILURE() << "integrand evaluated on empty rect";
    return 1.0;
  };
  EXPECT_EQ(IntegrateGL2D(must_not_run_2d, Rect::Empty(), 4, 4), 0.0);
  EXPECT_EQ(IntegrateGL2D(must_not_run_2d, Rect(3, 1, 0, 2), 4, 4), 0.0);
  EXPECT_EQ(IntegrateGL2D(must_not_run_2d, Rect(0, 2, 5, 4), 4, 4), 0.0);
}

TEST(TemplatedKernelTest, MutableCallableAccumulates) {
  // The templated form accepts stateful callables (e.g. evaluation
  // counters) without copying them.
  size_t calls = 0;
  auto counting = [&calls](double x) {
    ++calls;
    return x;
  };
  IntegrateGL(counting, 0.0, 1.0, 16);
  EXPECT_EQ(calls, 16u);
  calls = 0;
  IntegrateGL2D([&calls](double, double) {
    ++calls;
    return 1.0;
  }, Rect(0, 1, 0, 1), 8, 8);
  EXPECT_EQ(calls, 64u);
}

TEST(MonteCarloTest, MeanOfConstantIsConstant) {
  Rng rng(1);
  const double got = MonteCarloMean(
      [](Rng* r) { return Point(r->NextDouble(), r->NextDouble()); },
      [](const Point&) { return 2.5; }, 100, &rng);
  EXPECT_DOUBLE_EQ(got, 2.5);
}

TEST(MonteCarloTest, EstimatesExpectation) {
  Rng rng(2);
  // E[x] for x ~ U[0,1) is 0.5.
  const double got = MonteCarloMean(
      [](Rng* r) { return Point(r->NextDouble(), 0.0); },
      [](const Point& p) { return p.x; }, 200000, &rng);
  EXPECT_NEAR(got, 0.5, 0.005);
}

}  // namespace
}  // namespace ilq
