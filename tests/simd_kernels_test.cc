// Unit tests for the explicit-SIMD kernel layer (src/simd/).
//
// Three concerns, each checked for every tier this machine supports:
//
//   * strict-mode bit identity: each wide kernel must produce exactly the
//     scalar tier's doubles, including at ±0.0 ties, NaN/∞ probes, and
//     points exactly on region boundaries;
//   * tail handling: batch sizes 0, 1, W−1, W, W+1 for every vector width
//     W ∈ {2, 4, 8} (the sizes that historically break remainder loops),
//     plus non-multiple-of-8 histogram grids;
//   * the sample-block contract: NaN-padded lanes never count as hits.
//
// Policy plumbing (env parsing, clamping, scoped overrides) is covered at
// the bottom.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geometry/circle.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "prob/disk_pdf.h"
#include "prob/gaussian_pdf.h"
#include "prob/histogram_pdf.h"
#include "prob/normal.h"
#include "prob/uniform_pdf.h"
#include "simd/qual_kernels.h"
#include "simd/sample_block.h"
#include "simd/simd_policy.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeSkewedHistogram;

// Sizes covering 0, 1, and W−1 / W / W+1 for every vector width the tiers
// use (2, 4, 8), plus a couple of larger non-multiple sizes.
const size_t kTailSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1024};

std::vector<simd::SimdLevel> SupportedLevels() {
  std::vector<simd::SimdLevel> levels;
  for (int l = 0; l <= static_cast<int>(simd::DetectedSimdLevel()); ++l) {
    levels.push_back(static_cast<simd::SimdLevel>(l));
  }
  return levels;
}

// Probe points spanning inside / outside / boundary / non-finite cases for
// a region spanning [0,500]².
std::vector<Point> MakeProbes(size_t n, uint64_t seed) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 8) {
      case 0:  // exactly on the region corner / edges
        pts.emplace_back(0.0, 500.0);
        break;
      case 1:  // negative zero coordinates (ties against xmin = +0.0)
        pts.emplace_back(-0.0, rng.Uniform(0, 500));
        break;
      case 2:  // NaN lane
        pts.emplace_back(kNaN, rng.Uniform(0, 500));
        break;
      case 3:  // infinite lane
        pts.emplace_back(kInf, -kInf);
        break;
      default:  // straddle the region
        pts.emplace_back(rng.Uniform(-200, 700), rng.Uniform(-200, 700));
        break;
    }
  }
  return pts;
}

std::vector<Rect> MakeProbeRects(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 5 == 0) {
      // Touching-edge overlap: the clamped overlap width is exactly 0.
      rects.push_back(Rect(500.0, 700.0, 0.0, 100.0));
    } else {
      rects.push_back(Rect::Centered(
          Point(rng.Uniform(-100, 600), rng.Uniform(-100, 600)),
          rng.Uniform(1, 200), rng.Uniform(1, 200)));
    }
  }
  return rects;
}

void ExpectSameDoubles(std::span<const double> got,
                       std::span<const double> want, const char* what,
                       simd::SimdLevel level) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    // EXPECT_EQ on doubles is exact — the strict-mode contract.
    EXPECT_EQ(got[i], want[i])
        << what << " lane " << i << " at tier "
        << simd::SimdLevelName(level);
  }
}

TEST(SimdKernelsTest, UniformKernelsBitIdenticalAcrossTiersAllTails) {
  const simd::UniformRectParams params{0.0, 500.0, 0.0, 500.0,
                                       1.0 / (500.0 * 500.0)};
  const simd::KernelSet& scalar = simd::Kernels(simd::SimdLevel::kScalar);
  for (size_t n : kTailSizes) {
    const std::vector<Point> pts = MakeProbes(n, 100 + n);
    const std::vector<Rect> rects = MakeProbeRects(n, 200 + n);
    std::vector<double> want_d(n), want_m(n), want_c(n);
    scalar.uniform_density(params, pts.data(), n, want_d.data());
    scalar.uniform_mass_in(params, rects.data(), n, want_m.data());
    scalar.uniform_mass_centered(params, pts.data(), n, 120, 90,
                                 want_c.data());
    for (simd::SimdLevel level : SupportedLevels()) {
      const simd::KernelSet& k = simd::Kernels(level);
      std::vector<double> got(n, -1.0);
      k.uniform_density(params, pts.data(), n, got.data());
      ExpectSameDoubles(got, want_d, "uniform_density", level);
      k.uniform_mass_in(params, rects.data(), n, got.data());
      ExpectSameDoubles(got, want_m, "uniform_mass_in", level);
      k.uniform_mass_centered(params, pts.data(), n, 120, 90, got.data());
      ExpectSameDoubles(got, want_c, "uniform_mass_centered", level);
    }
  }
}

TEST(SimdKernelsTest, DiskKernelBitIdenticalAcrossTiersAllTails) {
  const simd::DiskParams params{250.0, 250.0, 150.0 * 150.0,
                                1.0 / (3.14159 * 150.0 * 150.0)};
  const simd::KernelSet& scalar = simd::Kernels(simd::SimdLevel::kScalar);
  for (size_t n : kTailSizes) {
    const std::vector<Point> pts = MakeProbes(n, 300 + n);
    std::vector<double> want(n);
    scalar.disk_density(params, pts.data(), n, want.data());
    for (simd::SimdLevel level : SupportedLevels()) {
      std::vector<double> got(n, -1.0);
      simd::Kernels(level).disk_density(params, pts.data(), n, got.data());
      ExpectSameDoubles(got, want, "disk_density", level);
    }
  }
}

TEST(SimdKernelsTest, HistogramKernelBitIdenticalNonMultipleOf8Grids) {
  // Grid sides deliberately not multiples of 8 (and a 1×1 degenerate) so
  // the int32 index arithmetic and gather bounds are exercised off the
  // easy power-of-two path.
  const struct {
    size_t nx, ny;
  } grids[] = {{1, 1}, {3, 3}, {5, 7}, {9, 2}, {13, 11}};
  const Rect region(0, 500, 0, 500);
  for (const auto& grid : grids) {
    const auto pdf = MakeSkewedHistogram(region, grid.nx, grid.ny,
                                         1000 + grid.nx * grid.ny);
    const simd::HistogramParams params{
        region.xmin,
        region.xmax,
        region.ymin,
        region.ymax,
        region.Width() / static_cast<double>(grid.nx),
        region.Height() / static_cast<double>(grid.ny),
        (region.Width() / static_cast<double>(grid.nx)) *
            (region.Height() / static_cast<double>(grid.ny)),
        static_cast<int32_t>(grid.nx),
        static_cast<int32_t>(grid.ny),
        pdf->cell_masses().data()};
    const simd::KernelSet& scalar = simd::Kernels(simd::SimdLevel::kScalar);
    for (size_t n : kTailSizes) {
      const std::vector<Point> pts = MakeProbes(n, 400 + n);
      std::vector<double> want(n);
      scalar.histogram_density(params, pts.data(), n, want.data());
      // The scalar kernel must replay the pdf member exactly.
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(want[i], pdf->Density(pts[i])) << "scalar kernel lane "
                                                 << i;
      }
      for (simd::SimdLevel level : SupportedLevels()) {
        std::vector<double> got(n, -1.0);
        simd::Kernels(level).histogram_density(params, pts.data(), n,
                                               got.data());
        ExpectSameDoubles(got, want, "histogram_density", level);
      }
    }
  }
}

TEST(SimdKernelsTest, GaussianMassKernelBitIdenticalAcrossTiersAllTails) {
  const Rect region(0, 500, 0, 500);
  Result<TruncatedGaussianPdf> pdf =
      TruncatedGaussianPdf::MakePaperDefault(region);
  ASSERT_TRUE(pdf.ok());
  // Hoist the pdf into kernel params the same way gaussian_pdf.cc does.
  const Point mu = region.Center();
  const double sx = region.Width() / 6.0, sy = region.Height() / 6.0;
  simd::GaussianParams params;
  params.xmin = region.xmin;
  params.xmax = region.xmax;
  params.ymin = region.ymin;
  params.ymax = region.ymax;
  params.mux = mu.x;
  params.muy = mu.y;
  params.sx = sx;
  params.sy = sy;
  params.mass_x = NormalCdf((region.xmax - mu.x) / sx) -
                  NormalCdf((region.xmin - mu.x) / sx);
  params.mass_y = NormalCdf((region.ymax - mu.y) / sy) -
                  NormalCdf((region.ymin - mu.y) / sy);
  params.cdf_lo_x = NormalCdf((region.xmin - mu.x) / sx);
  params.cdf_lo_y = NormalCdf((region.ymin - mu.y) / sy);
  params.normal_cdf = &NormalCdf;
  const simd::KernelSet& scalar = simd::Kernels(simd::SimdLevel::kScalar);
  for (size_t n : kTailSizes) {
    // Probe mix includes boundary/±0.0/NaN/∞ centers, plus a box size that
    // covers the region entirely (both CDFs hit their clamped branches) and
    // one that misses it (empty intersection) via the straddling probes.
    const std::vector<Point> pts = MakeProbes(n, 800 + n);
    std::vector<double> want(n);
    scalar.gaussian_mass_centered(params, pts.data(), n, 120, 90,
                                  want.data());
    // The scalar kernel must replay the pdf member exactly. (NaN centers
    // lose every std::min/max against the region bounds in both paths, so
    // the outputs stay finite — the full region mass — and EXPECT_EQ works.)
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(want[i], pdf->MassIn(Rect::Centered(pts[i], 120, 90)))
          << "scalar kernel lane " << i;
    }
    for (simd::SimdLevel level : SupportedLevels()) {
      std::vector<double> got(n, -1.0);
      simd::Kernels(level).gaussian_mass_centered(params, pts.data(), n, 120,
                                                  90, got.data());
      ExpectSameDoubles(got, want, "gaussian_mass_centered", level);
    }
  }
}

// The batch entry points of all four pdfs must equal their per-element
// scalar members at every tier and every tail size.
TEST(SimdKernelsTest, PdfBatchEntryPointsMatchScalarMembersAllTiers) {
  const Rect region(0, 500, 0, 500);
  Result<UniformRectPdf> uniform = UniformRectPdf::Make(region);
  ASSERT_TRUE(uniform.ok());
  Result<UniformDiskPdf> disk =
      UniformDiskPdf::Make(Circle(Point(250, 250), 150));
  ASSERT_TRUE(disk.ok());
  Result<TruncatedGaussianPdf> gaussian =
      TruncatedGaussianPdf::MakePaperDefault(region);
  ASSERT_TRUE(gaussian.ok());
  const auto histogram = MakeSkewedHistogram(region, 5, 7, 99);

  auto check_pdf = [&](const auto& pdf, const char* name) {
    for (size_t n : kTailSizes) {
      const std::vector<Point> pts = MakeProbes(n, 500 + n);
      const std::vector<Rect> rects = MakeProbeRects(n, 600 + n);
      std::vector<double> want_d(n), want_m(n), want_c(n);
      for (size_t i = 0; i < n; ++i) {
        want_d[i] = pdf.Density(pts[i]);
        want_m[i] = pdf.MassIn(rects[i]);
        want_c[i] = pdf.MassIn(Rect::Centered(pts[i], 120, 90));
      }
      for (simd::SimdLevel level : SupportedLevels()) {
        simd::ScopedSimdLevel scoped(level);
        SCOPED_TRACE(std::string(name) + " n=" + std::to_string(n) +
                     " tier=" + simd::SimdLevelName(level));
        std::vector<double> got(n, -1.0);
        pdf.DensityBatch(pts, got);
        ExpectSameDoubles(got, want_d, "DensityBatch", level);
        pdf.MassInBatch(rects, got);
        ExpectSameDoubles(got, want_m, "MassInBatch", level);
        pdf.MassInCenteredBatch(pts, 120, 90, got);
        ExpectSameDoubles(got, want_c, "MassInCenteredBatch", level);
      }
    }
  };
  check_pdf(*uniform, "uniform");
  check_pdf(*disk, "disk");
  check_pdf(*gaussian, "gaussian");
  check_pdf(*histogram, "histogram");
}

TEST(SimdKernelsTest, CountInRectMatchesScalarContainsAllTiers) {
  const Rect rect(100, 400, 150, 350);
  for (size_t n : kTailSizes) {
    if (n > simd::PointSampleBlock::kCapacity) continue;
    const std::vector<Point> pts = MakeProbes(n, 700 + n);
    simd::PointSampleBlock block;
    size_t want = 0;
    for (size_t i = 0; i < n; ++i) {
      block.Set(i, pts[i]);
      if (rect.Contains(pts[i])) ++want;
    }
    block.Seal(n);
    for (simd::SimdLevel level : SupportedLevels()) {
      EXPECT_EQ(simd::Kernels(level).count_in_rect(
                    rect.xmin, rect.xmax, rect.ymin, rect.ymax, block.x(),
                    block.y(), n),
                want)
          << "n=" << n << " tier=" << simd::SimdLevelName(level);
    }
  }
}

TEST(SimdKernelsTest, CountPairsCenteredMatchesScalarContainsAllTiers) {
  Rng rng(41);
  for (size_t n : kTailSizes) {
    if (n > simd::PairSampleBlock::kCapacity) continue;
    simd::PairSampleBlock block;
    size_t want = 0;
    for (size_t i = 0; i < n; ++i) {
      const Point q(rng.Uniform(0, 500), rng.Uniform(0, 500));
      const Point o(rng.Uniform(0, 500), rng.Uniform(0, 500));
      block.Set(i, q, o);
      if (Rect::Centered(q, 120, 90).Contains(o)) ++want;
    }
    block.Seal(n);
    for (simd::SimdLevel level : SupportedLevels()) {
      EXPECT_EQ(simd::Kernels(level).count_pairs_centered(
                    block.qx(), block.qy(), block.ox(), block.oy(), n, 120,
                    90),
                want)
          << "n=" << n << " tier=" << simd::SimdLevelName(level);
    }
  }
}

// Padding lanes must never count: fill the whole block with guaranteed
// hits, then seal a shorter length — the count must be the sealed length,
// not the padded one.
TEST(SimdKernelsTest, SealedPaddingLanesNeverCount) {
  simd::PointSampleBlock block;
  const Rect rect(0, 500, 0, 500);
  for (size_t n : {size_t{1}, size_t{5}, size_t{9}, size_t{17}}) {
    // Re-fill every sealed lane each round: Seal NaN-pads the lanes past n,
    // so the previous (shorter) seal clobbered them.
    for (size_t i = 0; i < n; ++i) {
      block.Set(i, Point(250, 250));  // inside every query below
    }
    block.Seal(n);
    for (simd::SimdLevel level : SupportedLevels()) {
      EXPECT_EQ(simd::Kernels(level).count_in_rect(
                    rect.xmin, rect.xmax, rect.ymin, rect.ymax, block.x(),
                    block.y(), n),
                n)
          << "tier=" << simd::SimdLevelName(level);
    }
  }
  // An empty rect (min > max) counts nothing — Rect::Contains semantics.
  for (size_t i = 0; i < 8; ++i) block.Set(i, Point(250, 250));
  block.Seal(8);
  for (simd::SimdLevel level : SupportedLevels()) {
    EXPECT_EQ(simd::Kernels(level).count_in_rect(400, 100, 0, 500,
                                                 block.x(), block.y(), 8),
              0u);
  }
}

TEST(SimdKernelsTest, PaddedCountRoundsUpToLaneGroups) {
  EXPECT_EQ(simd::PaddedCount(0), 0u);
  EXPECT_EQ(simd::PaddedCount(1), 8u);
  EXPECT_EQ(simd::PaddedCount(7), 8u);
  EXPECT_EQ(simd::PaddedCount(8), 8u);
  EXPECT_EQ(simd::PaddedCount(9), 16u);
  EXPECT_EQ(simd::PaddedCount(256), 256u);
}

// --- Policy plumbing --------------------------------------------------------

TEST(SimdPolicyTest, ParseSimdLevelRecognizesCanonicalNames) {
  EXPECT_EQ(simd::ParseSimdLevel("scalar"), simd::SimdLevel::kScalar);
  EXPECT_EQ(simd::ParseSimdLevel("sse2"), simd::SimdLevel::kSse2);
  EXPECT_EQ(simd::ParseSimdLevel("avx2"), simd::SimdLevel::kAvx2);
  EXPECT_EQ(simd::ParseSimdLevel("avx512"), simd::SimdLevel::kAvx512);
  EXPECT_FALSE(simd::ParseSimdLevel("AVX2").has_value());
  EXPECT_FALSE(simd::ParseSimdLevel("").has_value());
  EXPECT_FALSE(simd::ParseSimdLevel("avx-512").has_value());
}

TEST(SimdPolicyTest, ParseKernelVariantRecognizesCanonicalNames) {
  EXPECT_EQ(simd::ParseKernelVariant("strict"),
            simd::KernelVariant::kStrict);
  EXPECT_EQ(simd::ParseKernelVariant("fast"), simd::KernelVariant::kFast);
  EXPECT_FALSE(simd::ParseKernelVariant("FAST").has_value());
  EXPECT_FALSE(simd::ParseKernelVariant("").has_value());
}

TEST(SimdPolicyTest, LevelNamesRoundTrip) {
  for (simd::SimdLevel level : SupportedLevels()) {
    EXPECT_EQ(simd::ParseSimdLevel(simd::SimdLevelName(level)), level);
  }
}

TEST(SimdPolicyTest, SetActiveClampsToDetected) {
  const simd::SimdLevel detected = simd::DetectedSimdLevel();
  // Requesting the widest tier installs at most the detected one.
  simd::ScopedSimdLevel scoped(simd::SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(scoped.installed()),
            static_cast<int>(detected));
  EXPECT_EQ(simd::ActiveSimdLevel(), scoped.installed());
}

TEST(SimdPolicyTest, ScopedOverridesRestore) {
  const simd::SimdLevel before = simd::ActiveSimdLevel();
  {
    simd::ScopedSimdLevel scoped(simd::SimdLevel::kScalar);
    EXPECT_EQ(simd::ActiveSimdLevel(), simd::SimdLevel::kScalar);
  }
  EXPECT_EQ(simd::ActiveSimdLevel(), before);

  const simd::KernelVariant variant_before = simd::ActiveKernelVariant();
  {
    simd::ScopedKernelVariant scoped(simd::KernelVariant::kFast);
    EXPECT_EQ(simd::ActiveKernelVariant(), simd::KernelVariant::kFast);
  }
  EXPECT_EQ(simd::ActiveKernelVariant(), variant_before);
}

TEST(SimdPolicyTest, KernelsClampOutOfRangeLevels) {
  // Kernels() must answer a callable table even for a tier above the
  // detected one (dispatch clamps rather than reading past the table).
  const simd::KernelSet& k = simd::Kernels(simd::SimdLevel::kAvx512);
  ASSERT_NE(k.uniform_density, nullptr);
  ASSERT_NE(k.dot, nullptr);
  const double a[3] = {1.0, 2.0, 3.0};
  const double b[3] = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(k.dot(a, b, 3), 32.0);
}

}  // namespace
}  // namespace ilq
