// Concurrency tests for the async serving layer (labeled `thread`, run
// under TSan in CI): futures-based submission, backpressure on the bounded
// queue, answer-cache integration, graceful drain/shutdown, and the
// submit-after-shutdown contract. Determinism of the answers themselves is
// sharded_differential_test's job; here every returned future is checked
// against a direct ShardedEngine::Run of the same query.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/async_server.h"
#include "serve/sharded_engine.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

class ServeAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1234);
    std::vector<PointObject> points;
    for (size_t i = 0; i < 250; ++i) {
      points.emplace_back(static_cast<ObjectId>(i + 1),
                          Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
    }
    std::vector<UncertainObject> uncertains;
    for (size_t i = 0; i < 80; ++i) {
      const Rect region = RandomRect(&rng, Rect(0, 1000, 0, 1000), 15, 60);
      uncertains.emplace_back(static_cast<ObjectId>(i + 1),
                              MakeUniform(region));
    }
    ShardedEngineConfig config;
    config.shards = 4;
    config.engine.eval.quadrature_order = 8;
    Result<ShardedEngine> built = ShardedEngine::Build(
        std::move(points), std::move(uncertains), config);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    engine_ = std::make_unique<ShardedEngine>(std::move(built).ValueOrDie());
  }

  /// Issuer with a non-zero id (cacheable) at the given spot.
  UncertainObject MakeClient(uint64_t id, double cx, double cy) {
    UncertainObject issuer(static_cast<ObjectId>(id),
                           MakeUniform(Rect(cx - 80, cx + 80, cy - 80,
                                            cy + 80)));
    const Status status = issuer.BuildCatalog(
        engine_->config().engine.catalog_values);
    ILQ_CHECK(status.ok(), status.ToString());
    return issuer;
  }

  std::unique_ptr<ShardedEngine> engine_;
};

TEST_F(ServeAsyncTest, SubmittedFuturesMatchDirectRun) {
  AsyncServerOptions options;
  options.threads = 3;
  AsyncServer server(*engine_, options);
  const BatchSpec spec{RangeQuerySpec(150, 150, 0.0)};

  std::vector<UncertainObject> issuers;
  std::vector<std::future<AnswerSet>> futures;
  for (size_t i = 0; i < 24; ++i) {
    issuers.push_back(MakeClient(i + 1, 100.0 + 35.0 * i, 500.0));
    const QueryMethod method = AllQueryMethods()[i % kQueryMethodCount];
    futures.push_back(server.Submit(issuers.back(), spec, method));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const QueryMethod method = AllQueryMethods()[i % kQueryMethodCount];
    const AnswerSet expected = engine_->Run(method, issuers[i], spec);
    const AnswerSet got = futures[i].get();
    ASSERT_EQ(got.size(), expected.size()) << "request " << i;
    for (size_t a = 0; a < got.size(); ++a) {
      EXPECT_EQ(got[a].id, expected[a].id);
      EXPECT_EQ(got[a].probability, expected[a].probability);
    }
  }
  server.Drain();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 24u);
  EXPECT_EQ(stats.completed, 24u);
  EXPECT_EQ(stats.pending, 0u);
  uint64_t per_method_total = 0;
  for (const uint64_t count : stats.per_method) per_method_total += count;
  EXPECT_EQ(per_method_total, 24u);
}

TEST_F(ServeAsyncTest, ConcurrentSubmittersAllComplete) {
  AsyncServerOptions options;
  options.threads = 3;
  options.queue_capacity = 8;  // small queue: submitters block and wake
  AsyncServer server(*engine_, options);
  const BatchSpec spec{RangeQuerySpec(120, 120, 0.0)};

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 25;
  std::vector<std::thread> clients;
  std::vector<uint64_t> answered(kClients, 0);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        const UncertainObject issuer =
            MakeClient(c * 100 + i + 1, 50.0 + 9.0 * (c * kPerClient + i),
                       300.0 + 150.0 * c);
        std::future<AnswerSet> future =
            server.Submit(issuer, spec, QueryMethod::kIpq);
        const AnswerSet got = future.get();
        const AnswerSet expected =
            engine_->Run(QueryMethod::kIpq, issuer, spec);
        if (got.size() == expected.size()) ++answered[c];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(answered[c], kPerClient) << "client " << c;
  }
  server.Drain();
  EXPECT_EQ(server.stats().completed, kClients * kPerClient);
}

TEST_F(ServeAsyncTest, BackpressureRefusesWhenQueueFull) {
  AsyncServerOptions options;
  options.threads = 2;
  options.queue_capacity = 4;
  options.start_paused = true;  // workers parked: queue depth is exact
  AsyncServer server(*engine_, options);
  const BatchSpec spec{RangeQuerySpec(100, 100, 0.0)};
  const UncertainObject issuer = MakeClient(9, 500, 500);

  std::vector<std::future<AnswerSet>> accepted;
  for (size_t i = 0; i < 4; ++i) {
    auto future = server.TrySubmit(issuer, spec, QueryMethod::kIuq);
    ASSERT_TRUE(future.has_value()) << "slot " << i;
    accepted.push_back(std::move(*future));
  }
  EXPECT_FALSE(server.TrySubmit(issuer, spec, QueryMethod::kIuq).has_value());
  EXPECT_FALSE(server.TrySubmit(issuer, spec, QueryMethod::kIuq).has_value());
  EXPECT_EQ(server.stats().rejected, 2u);
  EXPECT_EQ(server.stats().pending, 4u);

  server.Resume();
  for (auto& future : accepted) {
    EXPECT_EQ(future.get().size(),
              engine_->Run(QueryMethod::kIuq, issuer, spec).size());
  }
  server.Drain();
  EXPECT_EQ(server.stats().pending, 0u);
  EXPECT_EQ(server.stats().completed, 4u);
}

TEST_F(ServeAsyncTest, BlockedSubmitWakesWhenSlotFrees) {
  AsyncServerOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  options.start_paused = true;
  AsyncServer server(*engine_, options);
  const BatchSpec spec{RangeQuerySpec(100, 100, 0.0)};
  const UncertainObject issuer = MakeClient(5, 400, 400);

  std::future<AnswerSet> first =
      server.Submit(issuer, spec, QueryMethod::kIpq);  // fills the queue
  std::thread blocked([&] {
    // Blocks until the worker pops `first`, then must be accepted.
    std::future<AnswerSet> second =
        server.Submit(issuer, spec, QueryMethod::kIpq);
    second.get();
  });
  server.Resume();
  blocked.join();
  first.get();
  server.Drain();
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST_F(ServeAsyncTest, ShutdownDrainsAcceptedRequests) {
  auto server = std::make_unique<AsyncServer>(*engine_);
  const BatchSpec spec{RangeQuerySpec(130, 130, 0.0)};
  std::vector<std::future<AnswerSet>> futures;
  for (size_t i = 0; i < 16; ++i) {
    futures.push_back(server->Submit(MakeClient(i + 1, 60.0 * i + 50, 600),
                                     spec, QueryMethod::kCipqPExpanded));
  }
  server->Shutdown();
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());  // graceful: every accepted future lands
  }
  EXPECT_EQ(server->stats().completed, 16u);
  EXPECT_EQ(server->stats().pending, 0u);
  server.reset();  // double-shutdown via the destructor must be a no-op
}

TEST_F(ServeAsyncTest, SubmitAfterShutdownThrows) {
  AsyncServer server(*engine_);
  server.Shutdown();
  const BatchSpec spec{RangeQuerySpec(100, 100, 0.0)};
  const UncertainObject issuer = MakeClient(3, 300, 300);
  EXPECT_THROW(server.Submit(issuer, spec, QueryMethod::kIpq),
               std::logic_error);
  EXPECT_THROW(server.TrySubmit(issuer, spec, QueryMethod::kIpq),
               std::logic_error);
}

TEST_F(ServeAsyncTest, CacheServesRepeatedQueries) {
  AsyncServerOptions options;
  options.threads = 2;
  options.cache_capacity = 32;
  AsyncServer server(*engine_, options);
  const BatchSpec spec{RangeQuerySpec(150, 150, 0.0)};
  const UncertainObject issuer = MakeClient(77, 500, 500);

  const AnswerSet first =
      server.Submit(issuer, spec, QueryMethod::kIuq).get();
  server.Drain();  // the insert happens before Drain returns
  const AnswerSet second =
      server.Submit(issuer, spec, QueryMethod::kIuq).get();
  server.Drain();

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].probability, second[i].probability);
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 2u);

  // A different spec misses; an id-0 (anonymous) issuer is never cached.
  server.Submit(issuer, BatchSpec{RangeQuerySpec(151, 151, 0.0)},
                QueryMethod::kIuq)
      .get();
  EXPECT_EQ(server.stats().cache_misses, 2u);
  Result<UncertainObject> anonymous =
      engine_->MakeIssuer(MakeUniform(Rect(420, 580, 420, 580)));
  ASSERT_TRUE(anonymous.ok());
  server.Submit(*anonymous, spec, QueryMethod::kIuq).get();
  server.Submit(*anonymous, spec, QueryMethod::kIuq).get();
  server.Drain();
  const ServeStats after = server.stats();
  EXPECT_EQ(after.cache_hits, 1u);  // unchanged: anonymous never cached
}

TEST_F(ServeAsyncTest, StatsTrackLatencyQuantiles) {
  AsyncServer server(*engine_);
  const BatchSpec spec{RangeQuerySpec(140, 140, 0.0)};
  for (size_t i = 0; i < 12; ++i) {
    server.Submit(MakeClient(i + 1, 80.0 * i + 40, 500), spec,
                  QueryMethod::kIpq);
  }
  server.Drain();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
}

}  // namespace
}  // namespace ilq
