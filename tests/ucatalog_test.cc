#include "object/ucatalog.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeUniform;

UCatalog MakeCatalog(const UncertaintyPdf& pdf, std::vector<double> values) {
  Result<UCatalog> made = UCatalog::Make(pdf, std::move(values));
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  return std::move(made).ValueOrDie();
}

TEST(UCatalogTest, EvenlySpacedValues) {
  const std::vector<double> v = UCatalog::EvenlySpacedValues(11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_NEAR(v[3], 0.3, 1e-12);
}

TEST(UCatalogTest, RejectsMissingZero) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  EXPECT_FALSE(UCatalog::Make(*pdf, {0.1, 0.5}).ok());
}

TEST(UCatalogTest, RejectsOutOfRange) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  EXPECT_FALSE(UCatalog::Make(*pdf, {0.0, 1.5}).ok());
  EXPECT_FALSE(UCatalog::Make(*pdf, {-0.1, 0.0}).ok());
  EXPECT_FALSE(UCatalog::Make(*pdf, {}).ok());
}

TEST(UCatalogTest, SortsAndDeduplicates) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const UCatalog cat = MakeCatalog(*pdf, {0.5, 0.0, 0.2, 0.5});
  ASSERT_EQ(cat.size(), 3u);
  EXPECT_DOUBLE_EQ(cat.value(0), 0.0);
  EXPECT_DOUBLE_EQ(cat.value(1), 0.2);
  EXPECT_DOUBLE_EQ(cat.value(2), 0.5);
}

TEST(UCatalogTest, BoundsMatchDirectComputation) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const UCatalog cat = MakeCatalog(*pdf, {0.0, 0.25, 0.5});
  EXPECT_DOUBLE_EQ(cat.bound(1).l, 2.5);
  EXPECT_DOUBLE_EQ(cat.bound(1).r, 7.5);
  EXPECT_DOUBLE_EQ(cat.bound(2).l, 5.0);
}

TEST(UCatalogTest, FloorIndexPicksLargestNotAbove) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const UCatalog cat = MakeCatalog(*pdf, {0.0, 0.2, 0.4, 0.6});
  EXPECT_EQ(cat.FloorIndex(0.0), 0u);
  EXPECT_EQ(cat.FloorIndex(0.1), 0u);
  EXPECT_EQ(cat.FloorIndex(0.2), 1u);
  EXPECT_EQ(cat.FloorIndex(0.35), 1u);
  EXPECT_EQ(cat.FloorIndex(0.9), 3u);
}

TEST(UCatalogTest, CeilIndexPicksSmallestNotBelow) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const UCatalog cat = MakeCatalog(*pdf, {0.0, 0.2, 0.4, 0.6});
  EXPECT_EQ(cat.CeilIndex(0.0).value(), 0u);
  EXPECT_EQ(cat.CeilIndex(0.1).value(), 1u);
  EXPECT_EQ(cat.CeilIndex(0.2).value(), 1u);
  EXPECT_EQ(cat.CeilIndex(0.5).value(), 3u);
  EXPECT_FALSE(cat.CeilIndex(0.7).has_value());
}

TEST(UCatalogTest, FloorBoundIsConservative) {
  // The floor bound's beyond-mass is <= the queried threshold.
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const UCatalog cat = MakeCatalog(*pdf, UCatalog::EvenlySpacedValues(11));
  const PBound& b = cat.FloorBound(0.37);  // floor value 0.3
  const Rect region = pdf->bounds();
  EXPECT_NEAR(pdf->MassIn(Rect(region.xmin, b.l, region.ymin, region.ymax)),
              0.3, 1e-9);
}

TEST(UCatalogTest, SameValuesComparesLadder) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const UCatalog a = MakeCatalog(*pdf, {0.0, 0.5});
  const UCatalog b = MakeCatalog(*pdf, {0.0, 0.5});
  const UCatalog c = MakeCatalog(*pdf, {0.0, 0.4});
  EXPECT_TRUE(a.SameValues(b));
  EXPECT_FALSE(a.SameValues(c));
}

TEST(UCatalogTest, MergeCoversBothCatalogs) {
  auto left = MakeUniform(Rect(0, 10, 0, 10));
  auto right = MakeUniform(Rect(20, 40, -10, 0));
  const std::vector<double> ladder = {0.0, 0.2, 0.4};
  const UCatalog cat_left = MakeCatalog(*left, ladder);
  const UCatalog cat_right = MakeCatalog(*right, ladder);

  UCatalog merged = UCatalog::EmptyLike(cat_left);
  merged.MergeFrom(cat_left);
  merged.MergeFrom(cat_right);
  for (size_t i = 0; i < merged.size(); ++i) {
    // Merged lines must be the envelope of both.
    EXPECT_DOUBLE_EQ(merged.bound(i).l,
                     std::min(cat_left.bound(i).l, cat_right.bound(i).l));
    EXPECT_DOUBLE_EQ(merged.bound(i).r,
                     std::max(cat_left.bound(i).r, cat_right.bound(i).r));
    EXPECT_DOUBLE_EQ(merged.bound(i).b,
                     std::min(cat_left.bound(i).b, cat_right.bound(i).b));
    EXPECT_DOUBLE_EQ(merged.bound(i).t,
                     std::max(cat_left.bound(i).t, cat_right.bound(i).t));
  }
}

TEST(UCatalogTest, EmptyLikeFirstMergeCopies) {
  auto pdf = MakeUniform(Rect(5, 6, 5, 6));
  const UCatalog proto = MakeCatalog(*pdf, {0.0, 0.3});
  UCatalog merged = UCatalog::EmptyLike(proto);
  merged.MergeFrom(proto);
  EXPECT_DOUBLE_EQ(merged.bound(1).l, proto.bound(1).l);
}

}  // namespace
}  // namespace ilq
