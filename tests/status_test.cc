#include "common/status.h"

#include <gtest/gtest.h>

namespace ilq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad w");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad w");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad w");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    ILQ_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace ilq
