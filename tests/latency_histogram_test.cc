// Unit tests for the serving layer's streaming latency histogram: bucket
// resolution contract (quantiles within one log-bucket of the truth),
// monotonicity, edge values, and reset.

#include "serve/latency_histogram.h"

#include <gtest/gtest.h>

namespace ilq {
namespace {

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.TotalCount(), 0u);
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
  EXPECT_EQ(histogram.Quantile(0.99), 0.0);
}

TEST(LatencyHistogramTest, QuantileWithinOneBucketOfTruth) {
  LatencyHistogram histogram;
  const double value = 3.7;  // ms
  for (int i = 0; i < 1000; ++i) histogram.Record(value);
  EXPECT_EQ(histogram.TotalCount(), 1000u);
  // All mass in one bucket: every quantile reports that bucket's midpoint,
  // which is within one bucket's growth factor (~1.33x) of the true value.
  for (const double q : {0.5, 0.95, 0.99}) {
    const double got = histogram.Quantile(q);
    EXPECT_GT(got, value / 1.4) << "q=" << q;
    EXPECT_LT(got, value * 1.4) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantilesAreMonotonicAndSeparate) {
  LatencyHistogram histogram;
  // 90% fast requests around 1 ms, 10% slow around 100 ms.
  for (int i = 0; i < 900; ++i) histogram.Record(1.0);
  for (int i = 0; i < 100; ++i) histogram.Record(100.0);
  const double p50 = histogram.Quantile(0.50);
  const double p95 = histogram.Quantile(0.95);
  const double p99 = histogram.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LT(p50, 2.0);
  EXPECT_GT(p95, 50.0);  // the tail lives in the slow bucket
}

TEST(LatencyHistogramTest, ExtremesClampToEdgeBuckets) {
  LatencyHistogram histogram;
  histogram.Record(0.0);                       // below the first bucket
  histogram.Record(-1.0);                      // nonsense: clamps, no throw
  histogram.Record(1e9);                       // beyond the last bucket
  EXPECT_EQ(histogram.TotalCount(), 3u);
  EXPECT_GT(histogram.Quantile(1.0), 1e4);     // overflow bucket is huge
  EXPECT_LT(histogram.Quantile(0.01), 0.01);   // underflow bucket is tiny
}

TEST(LatencyHistogramTest, ResetForgetsEverything) {
  LatencyHistogram histogram;
  for (int i = 0; i < 10; ++i) histogram.Record(5.0);
  histogram.Reset();
  EXPECT_EQ(histogram.TotalCount(), 0u);
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, BucketEdgesGrowMonotonically) {
  double previous = 0.0;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const double edge = LatencyHistogram::BucketLowerMs(i);
    EXPECT_GT(edge, previous);
    previous = edge;
  }
  EXPECT_NEAR(LatencyHistogram::BucketLowerMs(0), LatencyHistogram::kMinMs,
              1e-12);
}

}  // namespace
}  // namespace ilq
