// Interface-conformance suite: every UncertaintyPdf implementation must
// satisfy the same contract, since all evaluators are written against the
// interface alone (§3.1's "our solutions are applicable to any form of
// uncertainty pdf"). Parameterized over pdf factories so new pdfs get the
// whole battery by adding one line.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "prob/disk_pdf.h"
#include "prob/integrate.h"
#include "test_util.h"

namespace ilq {
namespace {

using Factory = std::function<std::unique_ptr<UncertaintyPdf>()>;

struct PdfCase {
  std::string name;
  Factory make;
};

std::unique_ptr<UncertaintyPdf> MakeDiskPdf() {
  Result<UniformDiskPdf> made =
      UniformDiskPdf::Make(Circle(Point(50, 40), 25));
  ILQ_CHECK(made.ok(), made.status().ToString());
  return std::make_unique<UniformDiskPdf>(std::move(made).ValueOrDie());
}

class PdfConformanceTest : public ::testing::TestWithParam<PdfCase> {
 protected:
  std::unique_ptr<UncertaintyPdf> pdf_ = GetParam().make();
};

TEST_P(PdfConformanceTest, TotalMassIsOne) {
  const Rect everything = pdf_->bounds().Expanded(10, 10);
  EXPECT_NEAR(pdf_->MassIn(everything), 1.0, 1e-9);
}

TEST_P(PdfConformanceTest, MassOutsideSupportIsZero) {
  const Rect b = pdf_->bounds();
  EXPECT_EQ(pdf_->MassIn(Rect(b.xmax + 1, b.xmax + 10, b.ymin, b.ymax)),
            0.0);
  EXPECT_EQ(pdf_->MassIn(Rect::Empty()), 0.0);
}

TEST_P(PdfConformanceTest, DensityZeroOutsideBounds) {
  const Rect b = pdf_->bounds();
  EXPECT_EQ(pdf_->Density(Point(b.xmax + 1, b.Center().y)), 0.0);
  EXPECT_EQ(pdf_->Density(Point(b.Center().x, b.ymin - 1)), 0.0);
}

TEST_P(PdfConformanceTest, MassIsAdditiveAcrossSplit) {
  const Rect b = pdf_->bounds();
  const double mid = b.Center().x;
  const double left = pdf_->MassIn(Rect(b.xmin, mid, b.ymin, b.ymax));
  const double right = pdf_->MassIn(Rect(mid, b.xmax, b.ymin, b.ymax));
  EXPECT_NEAR(left + right, 1.0, 1e-9);
}

TEST_P(PdfConformanceTest, MassIsMonotoneInRect) {
  const Rect b = pdf_->bounds();
  const Rect small = Rect::Centered(b.Center(), b.Width() / 4,
                                    b.Height() / 4);
  const Rect large = Rect::Centered(b.Center(), b.Width() / 2,
                                    b.Height() / 2);
  EXPECT_LE(pdf_->MassIn(small), pdf_->MassIn(large) + 1e-12);
}

TEST_P(PdfConformanceTest, CdfMatchesHalfPlaneMass) {
  const Rect b = pdf_->bounds();
  for (double frac : {0.1, 0.35, 0.5, 0.8}) {
    const double x = b.xmin + frac * b.Width();
    EXPECT_NEAR(pdf_->CdfX(x),
                pdf_->MassIn(Rect(b.xmin - 1, x, b.ymin - 1, b.ymax + 1)),
                1e-9)
        << "frac=" << frac;
    const double y = b.ymin + frac * b.Height();
    EXPECT_NEAR(pdf_->CdfY(y),
                pdf_->MassIn(Rect(b.xmin - 1, b.xmax + 1, b.ymin - 1, y)),
                1e-9);
  }
}

TEST_P(PdfConformanceTest, CdfMonotoneWithCorrectLimits) {
  const Rect b = pdf_->bounds();
  double prev = -1.0;
  for (int i = 0; i <= 20; ++i) {
    const double x = b.xmin - 1 + (b.Width() + 2) * i / 20.0;
    const double c = pdf_->CdfX(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_EQ(pdf_->CdfX(b.xmin - 1), 0.0);
  EXPECT_EQ(pdf_->CdfX(b.xmax + 1), 1.0);
}

TEST_P(PdfConformanceTest, QuantileInvertsCdf) {
  for (double p = 0.05; p < 1.0; p += 0.09) {
    EXPECT_NEAR(pdf_->CdfX(pdf_->QuantileX(p)), p, 1e-6) << "p=" << p;
    EXPECT_NEAR(pdf_->CdfY(pdf_->QuantileY(p)), p, 1e-6) << "p=" << p;
  }
}

TEST_P(PdfConformanceTest, MarginalDensityIntegratesToCdfDifferences) {
  const Rect b = pdf_->bounds();
  // Integrate the marginal piecewise (histogram marginals step at cell
  // borders) and compare against CDF differences.
  std::vector<double> cuts;
  pdf_->AppendBreakpointsX(&cuts);
  cuts.push_back(b.xmin);
  cuts.push_back(b.xmax);
  std::sort(cuts.begin(), cuts.end());
  double integral = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    integral += IntegrateGL(
        [&](double x) { return pdf_->MarginalPdfX(x); }, cuts[i],
        cuts[i + 1], 64);
  }
  // The disk marginal has sqrt endpoints where fixed-order quadrature
  // converges slowly; product pdfs are near-exact.
  EXPECT_NEAR(integral, 1.0, pdf_->name() == "uniform-disk" ? 5e-3 : 1e-6);
}

TEST_P(PdfConformanceTest, SamplesRespectBoundsAndMass) {
  Rng rng(99);
  const Rect b = pdf_->bounds();
  const Rect probe = Rect::Centered(b.Center(), b.Width() * 0.3,
                                    b.Height() * 0.3);
  const int n = 60000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    const Point p = pdf_->Sample(&rng);
    ASSERT_TRUE(b.Contains(p)) << GetParam().name;
    if (probe.Contains(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, pdf_->MassIn(probe), 0.01);
}

TEST_P(PdfConformanceTest, CloneBehavesIdentically) {
  const auto clone = pdf_->Clone();
  const Rect b = pdf_->bounds();
  EXPECT_EQ(clone->name(), pdf_->name());
  EXPECT_EQ(clone->bounds(), b);
  EXPECT_EQ(clone->IsProduct(), pdf_->IsProduct());
  const Rect probe = Rect::Centered(b.Center(), b.Width() / 3,
                                    b.Height() / 5);
  EXPECT_DOUBLE_EQ(clone->MassIn(probe), pdf_->MassIn(probe));
  EXPECT_DOUBLE_EQ(clone->CdfX(b.Center().x), pdf_->CdfX(b.Center().x));
}

TEST_P(PdfConformanceTest, DensityIntegratesToOne) {
  // 2-D quadrature over the support split at density breakpoints.
  const Rect b = pdf_->bounds();
  std::vector<double> x_cuts{b.xmin, b.xmax};
  std::vector<double> y_cuts{b.ymin, b.ymax};
  pdf_->AppendBreakpointsX(&x_cuts);
  pdf_->AppendBreakpointsY(&y_cuts);
  std::sort(x_cuts.begin(), x_cuts.end());
  std::sort(y_cuts.begin(), y_cuts.end());
  double total = 0.0;
  for (size_t i = 0; i + 1 < x_cuts.size(); ++i) {
    for (size_t j = 0; j + 1 < y_cuts.size(); ++j) {
      total += IntegrateGL2D(
          [&](double x, double y) { return pdf_->Density(Point(x, y)); },
          Rect(x_cuts[i], x_cuts[i + 1], y_cuts[j], y_cuts[j + 1]), 48, 48);
    }
  }
  // The disk's discontinuous boundary limits fixed-order quadrature;
  // product pdfs are near-exact.
  EXPECT_NEAR(total, 1.0, pdf_->name() == "uniform-disk" ? 2e-2 : 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    AllPdfs, PdfConformanceTest,
    ::testing::Values(
        PdfCase{"uniform",
                [] {
                  return std::unique_ptr<UncertaintyPdf>(
                      ::ilq::testing::MakeUniform(Rect(10, 90, -20, 44)));
                }},
        PdfCase{"gaussian",
                [] {
                  return std::unique_ptr<UncertaintyPdf>(
                      ::ilq::testing::MakeGaussian(Rect(0, 120, 30, 90)));
                }},
        PdfCase{"histogram",
                [] {
                  return std::unique_ptr<UncertaintyPdf>(
                      ::ilq::testing::MakeSkewedHistogram(
                          Rect(-30, 60, 0, 45), 5, 4, 77));
                }},
        PdfCase{"disk", [] { return MakeDiskPdf(); }}),
    [](const ::testing::TestParamInfo<PdfCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace ilq
