// Object-layer tests for the mutable catalog (object/catalog.h): snapshot
// construction, copy-on-write updates with epoch bumps, the listener
// contract the index layers build on, error atomicity, and the lock-free
// reader guarantee of the Catalog container.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "object/catalog.h"
#include "prob/uniform_pdf.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeUniform;

PdfVariant RectPdf(double x0, double x1, double y0, double y1) {
  Result<UniformRectPdf> made = UniformRectPdf::Make(Rect(x0, x1, y0, y1));
  ILQ_CHECK(made.ok(), made.status().ToString());
  return PdfVariant(std::move(made).ValueOrDie());
}

std::vector<PointObject> ThreePoints() {
  return {{1, Point(10, 10)}, {2, Point(20, 20)}, {3, Point(30, 30)}};
}

std::vector<UncertainObject> TwoUncertains() {
  std::vector<UncertainObject> objects;
  objects.emplace_back(1, RectPdf(0, 10, 0, 10));
  objects.emplace_back(2, RectPdf(50, 60, 50, 60));
  return objects;
}

TEST(CatalogSnapshotTest, BuildsPositionalMaps) {
  const CatalogSnapshotPtr snap =
      MakeCatalogSnapshot(ThreePoints(), TwoUncertains());
  EXPECT_EQ(snap->epoch, 0u);
  ASSERT_EQ(snap->points.size(), 3u);
  ASSERT_EQ(snap->uncertains.size(), 2u);
  for (const PointObject& p : snap->points) {
    const PointObject* found = snap->FindPoint(p.id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->location.x, p.location.x);
  }
  const UncertainObject* u = snap->FindUncertain(2);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->region().xmin, 50.0);
  EXPECT_EQ(snap->FindPoint(99), nullptr);
  EXPECT_EQ(snap->FindUncertain(99), nullptr);
}

TEST(CatalogSnapshotTest, ApplyProducesNextEpochWithoutTouchingPrev) {
  const CatalogSnapshotPtr prev =
      MakeCatalogSnapshot(ThreePoints(), TwoUncertains());
  UpdateBatch batch;
  batch.push_back(UpdateOp::InsertPoint(4, Point(40, 40)));
  batch.push_back(UpdateOp::ErasePoint(1));
  batch.push_back(UpdateOp::MovePoint(2, Point(25, 25)));
  batch.push_back(UpdateOp::InsertUncertain(3, RectPdf(80, 90, 80, 90)));
  batch.push_back(UpdateOp::EraseUncertain(1));
  batch.push_back(UpdateOp::MoveUncertain(2, RectPdf(55, 65, 55, 65)));

  Result<CatalogSnapshotPtr> next =
      ApplyCatalogUpdates(*prev, batch, UCatalog::EvenlySpacedValues(11));
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  const CatalogSnapshot& snap = **next;

  EXPECT_EQ(snap.epoch, 1u);
  EXPECT_EQ(snap.points.size(), 3u);
  EXPECT_EQ(snap.FindPoint(1), nullptr);
  ASSERT_NE(snap.FindPoint(2), nullptr);
  EXPECT_EQ(snap.FindPoint(2)->location.x, 25.0);
  ASSERT_NE(snap.FindPoint(4), nullptr);
  EXPECT_EQ(snap.uncertains.size(), 2u);
  EXPECT_EQ(snap.FindUncertain(1), nullptr);
  ASSERT_NE(snap.FindUncertain(2), nullptr);
  EXPECT_EQ(snap.FindUncertain(2)->region().xmin, 55.0);
  // Inserted/moved uncertains carry a freshly built U-catalog.
  EXPECT_NE(snap.FindUncertain(2)->catalog(), nullptr);
  EXPECT_NE(snap.FindUncertain(3)->catalog(), nullptr);

  // COW: the previous epoch is untouched.
  EXPECT_EQ(prev->epoch, 0u);
  EXPECT_EQ(prev->points.size(), 3u);
  ASSERT_NE(prev->FindPoint(1), nullptr);
  ASSERT_NE(prev->FindUncertain(1), nullptr);
  EXPECT_EQ(prev->FindUncertain(2)->region().xmin, 50.0);
}

TEST(CatalogSnapshotTest, RejectsInvalidOps) {
  const CatalogSnapshotPtr snap =
      MakeCatalogSnapshot(ThreePoints(), TwoUncertains());
  const std::vector<double> ladder = UCatalog::EvenlySpacedValues(11);

  const auto expect_rejected = [&](UpdateOp op, const std::string& what) {
    Result<CatalogSnapshotPtr> r =
        ApplyCatalogUpdates(*snap, {std::move(op)}, ladder);
    EXPECT_FALSE(r.ok()) << what;
  };
  expect_rejected(UpdateOp::InsertPoint(1, Point(0, 0)), "duplicate point id");
  expect_rejected(UpdateOp::ErasePoint(99), "unknown point id");
  expect_rejected(UpdateOp::MovePoint(99, Point(0, 0)), "unknown point id");
  expect_rejected(UpdateOp::InsertUncertain(1, RectPdf(0, 1, 0, 1)),
                  "duplicate uncertain id");
  expect_rejected(UpdateOp::EraseUncertain(99), "unknown uncertain id");
  expect_rejected(UpdateOp::MoveUncertain(99, RectPdf(0, 1, 0, 1)),
                  "unknown uncertain id");

  UpdateOp missing_pdf;
  missing_pdf.kind = UpdateKind::kInsertUncertain;
  missing_pdf.id = 7;
  expect_rejected(std::move(missing_pdf), "missing pdf");

  // Error messages carry the op position and kind.
  UpdateBatch batch;
  batch.push_back(UpdateOp::InsertPoint(10, Point(1, 1)));
  batch.push_back(UpdateOp::ErasePoint(99));
  Result<CatalogSnapshotPtr> r = ApplyCatalogUpdates(*snap, batch, ladder);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("op #1"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("erase_point"), std::string::npos)
      << r.status().ToString();
}

TEST(CatalogSnapshotTest, DuplicateIdsDegradeToReadOnly) {
  std::vector<PointObject> points = {{1, Point(0, 0)}, {1, Point(5, 5)}};
  const CatalogSnapshotPtr snap = MakeCatalogSnapshot(std::move(points), {});
  // Read-only: the map keeps the last occurrence.
  ASSERT_NE(snap->FindPoint(1), nullptr);
  EXPECT_EQ(snap->FindPoint(1)->location.x, 5.0);
  // Updates are ambiguous and rejected up front.
  Result<CatalogSnapshotPtr> r = ApplyCatalogUpdates(
      *snap, {UpdateOp::MovePoint(1, Point(9, 9))}, {});
  EXPECT_FALSE(r.ok());
}

// Records listener callbacks as strings for order-sensitive assertions.
class RecordingListener : public CatalogListener {
 public:
  void PointInserted(const PointObject& object) override {
    events.push_back("P+" + std::to_string(object.id));
  }
  void PointErased(const PointObject& object) override {
    events.push_back("P-" + std::to_string(object.id));
  }
  void UncertainInserted(uint32_t pos, const UncertainObject& object) override {
    events.push_back("U+" + std::to_string(object.id()) + "@" +
                     std::to_string(pos));
  }
  void UncertainErased(uint32_t pos, const UncertainObject& object) override {
    events.push_back("U-" + std::to_string(object.id()) + "@" +
                     std::to_string(pos));
  }
  void UncertainRelocated(uint32_t from, uint32_t to,
                          const UncertainObject& object) override {
    events.push_back("U~" + std::to_string(object.id()) + ":" +
                     std::to_string(from) + ">" + std::to_string(to));
  }
  std::vector<std::string> events;
};

TEST(CatalogSnapshotTest, ListenerSeesEveryPhysicalMutation) {
  std::vector<UncertainObject> uncertains;
  uncertains.emplace_back(1, RectPdf(0, 10, 0, 10));
  uncertains.emplace_back(2, RectPdf(20, 30, 20, 30));
  uncertains.emplace_back(3, RectPdf(40, 50, 40, 50));
  const CatalogSnapshotPtr snap =
      MakeCatalogSnapshot({{7, Point(1, 1)}}, std::move(uncertains));

  RecordingListener listener;
  UpdateBatch batch;
  batch.push_back(UpdateOp::MovePoint(7, Point(2, 2)));
  // Erasing position 0 swap-moves object 3 (position 2) into the hole.
  batch.push_back(UpdateOp::EraseUncertain(1));
  Result<CatalogSnapshotPtr> next =
      ApplyCatalogUpdates(*snap, batch, {}, &listener);
  ASSERT_TRUE(next.ok()) << next.status().ToString();

  const std::vector<std::string> expected = {"P-7", "P+7", "U-1@0",
                                             "U~3:2>0"};
  EXPECT_EQ(listener.events, expected);
  // The relocated object is findable at its new position.
  ASSERT_NE((*next)->FindUncertain(3), nullptr);
  EXPECT_EQ((*next)->uncertain_pos.at(3), 0u);
}

TEST(CatalogTest, SingleOpConveniencesBumpEpochs) {
  Catalog catalog({}, {}, UCatalog::EvenlySpacedValues(11));
  EXPECT_EQ(catalog.epoch(), 0u);
  ASSERT_TRUE(catalog.InsertPoint(1, Point(5, 5)).ok());
  ASSERT_TRUE(catalog.InsertUncertain(1, RectPdf(0, 10, 0, 10)).ok());
  EXPECT_EQ(catalog.epoch(), 2u);
  ASSERT_TRUE(catalog.MovePoint(1, Point(6, 6)).ok());
  ASSERT_TRUE(catalog.MoveUncertain(1, RectPdf(1, 11, 1, 11)).ok());
  ASSERT_TRUE(catalog.ErasePoint(1).ok());
  ASSERT_TRUE(catalog.EraseUncertain(1).ok());
  EXPECT_EQ(catalog.epoch(), 6u);
  EXPECT_TRUE(catalog.snapshot()->points.empty());
  EXPECT_TRUE(catalog.snapshot()->uncertains.empty());

  // A failing Apply publishes nothing.
  EXPECT_FALSE(catalog.ErasePoint(1).ok());
  EXPECT_EQ(catalog.epoch(), 6u);
}

TEST(CatalogTest, FailedBatchIsAllOrNothing) {
  Catalog catalog(ThreePoints(), {}, {});
  UpdateBatch batch;
  batch.push_back(UpdateOp::InsertPoint(10, Point(1, 1)));
  batch.push_back(UpdateOp::ErasePoint(99));  // fails
  EXPECT_FALSE(catalog.Apply(batch).ok());
  EXPECT_EQ(catalog.epoch(), 0u);
  EXPECT_EQ(catalog.snapshot()->FindPoint(10), nullptr);
}

// Readers pin a snapshot and never see a partially applied batch: each
// batch erases one id and inserts two, so for every published epoch e the
// point count is exactly 3 + e.
TEST(CatalogTest, ConcurrentReadersSeeWholeEpochs) {
  Catalog catalog(ThreePoints(), {}, {});
  std::atomic<bool> stop{false};
  std::atomic<size_t> violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const CatalogSnapshotPtr snap = catalog.snapshot();
        if (snap->points.size() != 3 + snap->epoch) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ObjectId next_id = 4;
  for (uint64_t batch = 0; batch < 200; ++batch) {
    UpdateBatch ops;
    ops.push_back(UpdateOp::ErasePoint(next_id - 1));
    ops.push_back(UpdateOp::InsertPoint(next_id, Point(1, 1)));
    ops.push_back(UpdateOp::InsertPoint(next_id + 1, Point(2, 2)));
    next_id += 2;
    ASSERT_TRUE(catalog.Apply(ops).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(catalog.epoch(), 200u);
  EXPECT_EQ(catalog.snapshot()->points.size(), 203u);
}

}  // namespace
}  // namespace ilq
