#include "index/index_stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace ilq {
namespace {

IndexStats Make(uint64_t nodes, uint64_t leaves, uint64_t candidates) {
  IndexStats s;
  s.node_accesses = nodes;
  s.leaf_accesses = leaves;
  s.candidates = candidates;
  return s;
}

TEST(IndexStatsTest, MergeAddsEveryCounter) {
  IndexStats a = Make(10, 4, 7);
  a.Merge(Make(5, 2, 1));
  EXPECT_EQ(a, Make(15, 6, 8));
}

TEST(IndexStatsTest, MergeWithDefaultIsIdentity) {
  IndexStats a = Make(3, 2, 1);
  a.Merge(IndexStats{});
  EXPECT_EQ(a, Make(3, 2, 1));
}

TEST(IndexStatsTest, MergeMatchesPlusEquals) {
  IndexStats merged = Make(1, 2, 3);
  merged.Merge(Make(10, 20, 30));
  IndexStats summed = Make(1, 2, 3);
  summed += Make(10, 20, 30);
  EXPECT_EQ(merged, summed);
}

TEST(IndexStatsTest, MergeOrderInvariant) {
  // The property RunBatch relies on: folding per-thread partials in any
  // order yields identical totals.
  const std::vector<IndexStats> partials = {Make(1, 0, 2), Make(7, 3, 0),
                                            Make(0, 0, 9), Make(4, 4, 4)};
  IndexStats forward;
  for (const IndexStats& p : partials) forward.Merge(p);
  IndexStats backward;
  for (auto it = partials.rbegin(); it != partials.rend(); ++it) {
    backward.Merge(*it);
  }
  EXPECT_EQ(forward, backward);
}

TEST(IndexStatsTest, ResetClearsAndEqualityDiscriminates) {
  IndexStats a = Make(1, 1, 1);
  EXPECT_NE(a, IndexStats{});
  a.Reset();
  EXPECT_EQ(a, IndexStats{});
}

}  // namespace
}  // namespace ilq
