// Disk-resident engine differential suite — the ISSUE 8 acceptance bar:
// a QueryEngine mounted from paged index files (QueryEngine::OpenPaged /
// wire/disk_bundle.h) answers bit-identically to the RAM engine it was
// saved from, for all eight query methods and both probability kernels,
// even with a buffer budget below 10% of the index file size (maximal
// thrash). On top of the differential:
//  * per-query IndexStats node accesses match the RAM engine, and every
//    paged node read is exactly one buffer hit or miss;
//  * OpenPaged cross-checks index geometry and item counts against the
//    config/catalog (kFailedPrecondition, not silent wrong answers);
//  * paged engines are read-only: ApplyUpdates fails with
//    kFailedPrecondition and the published epoch never moves;
//  * ShardedEngine::FromEngine serves a disk engine as a single shard,
//    bit-identical to the monolith, and rejects updates/re-splits.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "object/catalog.h"
#include "prob/disk_pdf.h"
#include "serve/sharded_engine.h"
#include "test_util.h"
#include "wire/disk_bundle.h"
#include "wire/snapshot_codec.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

CatalogImage MakeImage(uint64_t seed, size_t uncertains, size_t points) {
  Rng rng(seed);
  CatalogImage image;
  image.epoch = 12;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < points; ++i) {
    image.points.emplace_back(
        static_cast<ObjectId>(i + 1),
        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  for (size_t i = 0; i < uncertains; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 4) {
      case 0:
        image.uncertains.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        image.uncertains.emplace_back(id, MakeGaussian(region));
        break;
      case 2:
        image.uncertains.emplace_back(
            id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
      default: {
        const double r = std::min(region.Width(), region.Height()) / 2.0;
        image.uncertains.emplace_back(
            id, PdfVariant(UniformDiskPdf::Make(Circle{region.Center(), r})
                               .ValueOrDie()));
        break;
      }
    }
  }
  return image;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ilq_disk_engine_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t IndexBytes(const PagedIndexFiles& files) {
  uint64_t total = 0;
  for (const std::string& path :
       {files.point_index, files.uncertain_index, files.pti_index}) {
    std::error_code ec;
    const uint64_t size = std::filesystem::file_size(path, ec);
    if (!ec) total += size;
  }
  return total;
}

std::vector<UncertainObject> MakeIssuers(const QueryEngine& engine) {
  std::vector<UncertainObject> issuers;
  issuers.emplace_back(901u, MakeUniform(Rect(200, 400, 200, 400)));
  issuers.emplace_back(902u, MakeGaussian(Rect(600, 760, 100, 260)));
  issuers.emplace_back(
      903u, MakeSkewedHistogram(Rect(100, 260, 600, 760), 3, 3, 5));
  for (UncertainObject& issuer : issuers) {
    EXPECT_TRUE(
        issuer.BuildCatalog(engine.config().catalog_values).ok());
  }
  return issuers;
}

BatchSpec MakeSpec() {
  BatchSpec spec;
  spec.query.w = 120.0;
  spec.query.h = 120.0;
  spec.query.threshold = 0.3;
  return spec;
}

class DiskEngineTest : public ::testing::TestWithParam<ProbabilityKernel> {
};

// The acceptance differential: 8 methods x both kernels, buffer budget
// under 10% of the index file size.
TEST_P(DiskEngineTest, PagedEngineIsBitIdenticalUnderTinyBudget) {
  const CatalogImage image = MakeImage(211, 160, 110);
  EngineConfig config;
  config.eval.kernel = GetParam();
  config.eval.mc_samples = 64;  // keep the MC variant fast
  // Small pages give many of them (a real buffer workload) while still
  // fitting two PTI entries (36 + 11*32 bytes each) per node.
  config.page_size_bytes = 1024;

  auto ram = QueryEngine::Build(image.points, image.uncertains, config);
  ASSERT_TRUE(ram.ok()) << ram.status().ToString();

  const std::string dir = FreshDir("diff");
  const PagedIndexFiles files = PagedIndexFiles::InDir(dir);
  ASSERT_TRUE(ram->SavePagedIndexes(files).ok());

  const uint64_t index_bytes = IndexBytes(files);
  ASSERT_GT(index_bytes, 0u);
  // Per-index budget such that the *combined* buffers stay under 10% of
  // the combined file size — the "far below index size" acceptance bar.
  config.buffer_pool_bytes =
      std::max<uint64_t>(1, index_bytes / 40);
  ASSERT_LT(3 * config.buffer_pool_bytes, index_bytes / 10);
  config.storage = StorageMode::kPaged;

  auto disk = QueryEngine::OpenPaged(MakeImage(211, 160, 110), files,
                                     config);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_TRUE(disk->is_paged());
  EXPECT_FALSE(ram->is_paged());
  EXPECT_EQ(disk->epoch(), image.epoch);

  const BatchSpec spec = MakeSpec();
  for (const UncertainObject& issuer : MakeIssuers(*ram)) {
    for (const QueryMethod method : AllQueryMethods()) {
      SCOPED_TRACE(std::string(QueryMethodName(method)) + " issuer " +
                   std::to_string(issuer.id()));
      IndexStats ram_stats, disk_stats;
      const AnswerSet a =
          RunQueryMethod(*ram, method, issuer, spec, &ram_stats);
      const AnswerSet b =
          RunQueryMethod(*disk, method, issuer, spec, &disk_stats);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].probability, b[i].probability);
      }
      // Same tree shape -> same traversal -> same node-access counts; and
      // on the paged side every node read is one buffer hit or miss.
      EXPECT_EQ(ram_stats.node_accesses, disk_stats.node_accesses);
      EXPECT_EQ(ram_stats.leaf_accesses, disk_stats.leaf_accesses);
      EXPECT_EQ(disk_stats.page_hits + disk_stats.page_misses,
                disk_stats.node_accesses);
      EXPECT_EQ(ram_stats.page_hits + ram_stats.page_misses, 0u);
    }
  }

  // The tiny budget really thrashed (counters also prove the engine is
  // reading through the buffer, not some hidden cache).
  BufferCounters total = disk->point_index().buffer_counters();
  const BufferCounters uncertain =
      disk->uncertain_index().buffer_counters();
  total.hits += uncertain.hits;
  total.misses += uncertain.misses;
  total.evictions += uncertain.evictions;
  EXPECT_GT(total.misses, 0u);
  EXPECT_GT(total.evictions, 0u);
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Kernels, DiskEngineTest,
                         ::testing::Values(ProbabilityKernel::kAnalytic,
                                           ProbabilityKernel::kMonteCarlo),
                         [](const auto& info) {
                           return info.param ==
                                          ProbabilityKernel::kAnalytic
                                      ? "analytic"
                                      : "monte_carlo";
                         });

TEST(DiskEngineCrossCheckTest, MismatchedConfigOrCatalogIsRejected) {
  const CatalogImage image = MakeImage(223, 60, 40);
  EngineConfig config;
  config.page_size_bytes = 1024;
  auto ram = QueryEngine::Build(image.points, image.uncertains, config);
  ASSERT_TRUE(ram.ok());
  const std::string dir = FreshDir("crosscheck");
  const PagedIndexFiles files = PagedIndexFiles::InDir(dir);
  ASSERT_TRUE(ram->SavePagedIndexes(files).ok());

  {  // wrong page size in the mounting config
    EngineConfig wrong = config;
    wrong.page_size_bytes = 4096;
    wrong.storage = StorageMode::kPaged;
    auto opened = QueryEngine::OpenPaged(MakeImage(223, 60, 40), files,
                                         wrong);
    EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition)
        << opened.status().ToString();
  }
  {  // wrong catalog ladder: the PTI's per-entry charge disagrees
    EngineConfig wrong = config;
    wrong.catalog_values = {0.0, 0.5, 1.0};
    wrong.storage = StorageMode::kPaged;
    auto opened = QueryEngine::OpenPaged(MakeImage(223, 60, 40), files,
                                         wrong);
    EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition)
        << opened.status().ToString();
  }
  {  // catalog with fewer points: the item-count cross-check fires
    CatalogImage smaller = MakeImage(223, 60, 40);
    smaller.points.pop_back();
    EngineConfig paged = config;
    paged.storage = StorageMode::kPaged;
    auto opened = QueryEngine::OpenPaged(std::move(smaller), files, paged);
    EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition)
        << opened.status().ToString();
  }
  {  // catalog with fewer uncertains: the positional leaf-id bound fires
    // first (a leaf references position 59 of a 59-element catalog) — the
    // stale file is rejected either way, never silently served.
    CatalogImage smaller = MakeImage(223, 60, 40);
    smaller.uncertains.pop_back();
    EngineConfig paged = config;
    paged.storage = StorageMode::kPaged;
    auto opened = QueryEngine::OpenPaged(std::move(smaller), files, paged);
    EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument)
        << opened.status().ToString();
  }
  {  // matching everything mounts fine
    EngineConfig paged = config;
    paged.storage = StorageMode::kPaged;
    auto opened = QueryEngine::OpenPaged(MakeImage(223, 60, 40), files,
                                         paged);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  }
  std::filesystem::remove_all(dir);
}

TEST(DiskEngineReadOnlyTest, ApplyUpdatesFailsAndEpochHolds) {
  const CatalogImage image = MakeImage(227, 50, 30);
  auto ram = QueryEngine::Build(image.points, image.uncertains,
                                EngineConfig{});
  ASSERT_TRUE(ram.ok());
  const std::string dir = FreshDir("readonly");
  const PagedIndexFiles files = PagedIndexFiles::InDir(dir);
  ASSERT_TRUE(ram->SavePagedIndexes(files).ok());
  EngineConfig config;
  config.storage = StorageMode::kPaged;
  auto disk = QueryEngine::OpenPaged(MakeImage(227, 50, 30), files, config);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  const uint64_t epoch_before = disk->epoch();
  UpdateBatch batch;
  batch.push_back(UpdateOp::InsertPoint(9001u, Point(10, 10)));
  const Status applied = disk->ApplyUpdates(batch);
  EXPECT_EQ(applied.code(), StatusCode::kFailedPrecondition)
      << applied.ToString();
  EXPECT_EQ(disk->epoch(), epoch_before);
  EXPECT_EQ(disk->update_stats().batches, 0u);

  // Still serving after the rejected batch.
  const std::vector<UncertainObject> issuers = MakeIssuers(*disk);
  const AnswerSet a =
      RunQueryMethod(*ram, QueryMethod::kIpq, issuers[0], MakeSpec());
  const AnswerSet b =
      RunQueryMethod(*disk, QueryMethod::kIpq, issuers[0], MakeSpec());
  ASSERT_EQ(a.size(), b.size());
  std::filesystem::remove_all(dir);
}

TEST(DiskBundleTest, WriteOpenRoundTripsBothStorageModes) {
  const CatalogImage image = MakeImage(229, 70, 50);
  auto ram = QueryEngine::Build(image.points, image.uncertains,
                                EngineConfig{});
  ASSERT_TRUE(ram.ok());

  const std::string dir = FreshDir("bundle");
  ASSERT_TRUE(WriteDiskBundle(image, dir).ok());

  EngineConfig paged;
  paged.storage = StorageMode::kPaged;
  paged.buffer_pool_bytes = 1 << 16;
  auto disk = OpenDiskBundle(dir, paged);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_TRUE(disk->is_paged());
  EXPECT_EQ(disk->epoch(), image.epoch);

  auto memory = OpenDiskBundle(dir, EngineConfig{});
  ASSERT_TRUE(memory.ok()) << memory.status().ToString();
  EXPECT_FALSE(memory->is_paged());

  const BatchSpec spec = MakeSpec();
  for (const UncertainObject& issuer : MakeIssuers(*ram)) {
    for (const QueryMethod method : AllQueryMethods()) {
      SCOPED_TRACE(QueryMethodName(method));
      const AnswerSet a = RunQueryMethod(*ram, method, issuer, spec);
      const AnswerSet b = RunQueryMethod(*disk, method, issuer, spec);
      const AnswerSet c = RunQueryMethod(*memory, method, issuer, spec);
      ASSERT_EQ(a.size(), b.size());
      ASSERT_EQ(a.size(), c.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].probability, b[i].probability);
        EXPECT_EQ(a[i].id, c[i].id);
        EXPECT_EQ(a[i].probability, c[i].probability);
      }
    }
  }

  EXPECT_FALSE(OpenDiskBundle(dir + "_missing", paged).ok());
  std::filesystem::remove_all(dir);
}

TEST(DiskBundleTest, TruncatedIndexFileFailsToMount) {
  const CatalogImage image = MakeImage(233, 40, 25);
  const std::string dir = FreshDir("truncated");
  ASSERT_TRUE(WriteDiskBundle(image, dir).ok());
  const PagedIndexFiles files = PagedIndexFiles::InDir(dir);
  const uint64_t size = std::filesystem::file_size(files.uncertain_index);
  std::filesystem::resize_file(files.uncertain_index, size - 7);
  EngineConfig paged;
  paged.storage = StorageMode::kPaged;
  auto opened = OpenDiskBundle(dir, paged);
  EXPECT_FALSE(opened.ok());
  std::filesystem::remove_all(dir);
}

TEST(FromEngineTest, DiskEngineServesAsSingleShardBitIdentically) {
  const CatalogImage image = MakeImage(239, 80, 55);
  auto mono = QueryEngine::Build(image.points, image.uncertains,
                                 EngineConfig{});
  ASSERT_TRUE(mono.ok());

  const std::string dir = FreshDir("fromengine");
  ASSERT_TRUE(WriteDiskBundle(image, dir).ok());
  EngineConfig paged;
  paged.storage = StorageMode::kPaged;
  paged.buffer_pool_bytes = 1 << 15;
  auto disk = OpenDiskBundle(dir, paged);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  auto sharded = ShardedEngine::FromEngine(std::move(disk).ValueOrDie());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->shard_count(), 1u);
  EXPECT_EQ(sharded->epoch(), image.epoch);
  EXPECT_EQ(sharded->ExportShardMap().size(), 1u);

  const BatchSpec spec = MakeSpec();
  for (const UncertainObject& issuer : MakeIssuers(*mono)) {
    for (const QueryMethod method : AllQueryMethods()) {
      SCOPED_TRACE(QueryMethodName(method));
      AnswerSet expected = RunQueryMethod(*mono, method, issuer, spec);
      CanonicalizeAnswers(&expected);
      const AnswerSet got = sharded->Run(method, issuer, spec);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_EQ(got[i].probability, expected[i].probability);
      }
    }
  }

  // Read-only all the way up: updates and re-splits are rejected before
  // touching anything.
  UpdateBatch batch;
  batch.push_back(UpdateOp::InsertPoint(9002u, Point(5, 5)));
  EXPECT_EQ(sharded->ApplyUpdates(batch).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded->Resplit().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded->epoch(), image.epoch);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ilq
