#include "prob/uniform_pdf.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ilq {
namespace {

UniformRectPdf Make(const Rect& r) {
  Result<UniformRectPdf> made = UniformRectPdf::Make(r);
  EXPECT_TRUE(made.ok());
  return std::move(made).ValueOrDie();
}

TEST(UniformPdfTest, RejectsDegenerateRegion) {
  EXPECT_FALSE(UniformRectPdf::Make(Rect::Empty()).ok());
  EXPECT_FALSE(UniformRectPdf::Make(Rect(0, 0, 0, 5)).ok());
  EXPECT_FALSE(UniformRectPdf::Make(Rect(0, 5, 2, 2)).ok());
}

TEST(UniformPdfTest, DensityConstantInsideZeroOutside) {
  const UniformRectPdf pdf = Make(Rect(0, 4, 0, 2));
  EXPECT_DOUBLE_EQ(pdf.Density(Point(1, 1)), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(pdf.Density(Point(0, 0)), 1.0 / 8.0);  // boundary
  EXPECT_DOUBLE_EQ(pdf.Density(Point(-0.01, 1)), 0.0);
}

TEST(UniformPdfTest, MassInIsAreaRatio) {
  const UniformRectPdf pdf = Make(Rect(0, 10, 0, 10));
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(0, 5, 0, 10)), 0.5);
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(-100, 100, -100, 100)), 1.0);
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(20, 30, 0, 10)), 0.0);
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(2.5, 5, 2.5, 5)), 0.0625);
}

TEST(UniformPdfTest, CdfLinearRamp) {
  const UniformRectPdf pdf = Make(Rect(10, 20, -4, 0));
  EXPECT_DOUBLE_EQ(pdf.CdfX(10), 0.0);
  EXPECT_DOUBLE_EQ(pdf.CdfX(15), 0.5);
  EXPECT_DOUBLE_EQ(pdf.CdfX(20), 1.0);
  EXPECT_DOUBLE_EQ(pdf.CdfX(9), 0.0);
  EXPECT_DOUBLE_EQ(pdf.CdfX(25), 1.0);
  EXPECT_DOUBLE_EQ(pdf.CdfY(-2), 0.5);
}

TEST(UniformPdfTest, QuantileInvertsCdf) {
  const UniformRectPdf pdf = Make(Rect(10, 20, -4, 0));
  for (double p = 0.0; p <= 1.0; p += 0.1) {
    EXPECT_NEAR(pdf.CdfX(pdf.QuantileX(p)), p, 1e-12);
    EXPECT_NEAR(pdf.CdfY(pdf.QuantileY(p)), p, 1e-12);
  }
  EXPECT_DOUBLE_EQ(pdf.QuantileX(0.0), 10.0);
  EXPECT_DOUBLE_EQ(pdf.QuantileX(1.0), 20.0);
}

TEST(UniformPdfTest, MarginalDensity) {
  const UniformRectPdf pdf = Make(Rect(0, 4, 0, 2));
  EXPECT_DOUBLE_EQ(pdf.MarginalPdfX(2), 0.25);
  EXPECT_DOUBLE_EQ(pdf.MarginalPdfX(5), 0.0);
  EXPECT_DOUBLE_EQ(pdf.MarginalPdfY(1), 0.5);
}

TEST(UniformPdfTest, IsProduct) {
  EXPECT_TRUE(Make(Rect(0, 1, 0, 1)).IsProduct());
}

TEST(UniformPdfTest, SamplesStayInsideAndCoverRegion) {
  const Rect region(5, 7, -3, -1);
  const UniformRectPdf pdf = Make(region);
  Rng rng(3);
  double sx = 0.0;
  double sy = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Point p = pdf.Sample(&rng);
    ASSERT_TRUE(region.Contains(p));
    sx += p.x;
    sy += p.y;
  }
  EXPECT_NEAR(sx / n, 6.0, 0.02);
  EXPECT_NEAR(sy / n, -2.0, 0.02);
}

TEST(UniformPdfTest, CloneIsIndependentCopy) {
  const UniformRectPdf pdf = Make(Rect(0, 1, 0, 1));
  auto clone = pdf.Clone();
  EXPECT_EQ(clone->name(), "uniform");
  EXPECT_DOUBLE_EQ(clone->MassIn(Rect(0, 0.5, 0, 1)), 0.5);
}

}  // namespace
}  // namespace ilq
