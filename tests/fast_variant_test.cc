// Tests for the opt-in fast-FMA kernel variant.
//
// kFast trades bit-for-bit reproducibility across SIMD tiers for speed: the
// Gauss-Legendre weight contractions go through the reassociated (and, on
// AVX tiers, FMA-fused) dot kernel instead of the ordered sequential sum.
// The contract pinned here:
//
//   * fast mode is OFF by default — a freshly configured engine runs strict;
//   * within one process the fast answers are deterministic (same inputs →
//     same doubles, twice);
//   * fast answers agree with strict answers to tight absolute tolerance
//     (probabilities live in [0, 1]; reassociating <=64-term weight sums
//     moves them by ~ulps, so 1e-9 is generous yet meaningful);
//   * Monte-Carlo answers are bit-identical under kFast — the variant only
//     licenses reassociation in *weighted reductions*, never in the
//     qualification counting kernels;
//   * EngineConfig::kernel_variant reaches the dispatch policy at Build.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/engine.h"
#include "simd/qual_kernels.h"
#include "simd/simd_policy.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

std::vector<UncertainObject> MakeMixedObjects(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < count; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 3) {
      case 0:
        objects.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        objects.emplace_back(id, MakeGaussian(region));
        break;
      default:
        objects.emplace_back(id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
    }
  }
  return objects;
}

std::vector<PointObject> MakePoints(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<PointObject> points;
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  return points;
}

void ExpectSameIdsNearProbabilities(const AnswerSet& fast,
                                    const AnswerSet& strict,
                                    const char* what, double tol) {
  ASSERT_EQ(fast.size(), strict.size()) << what;
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].id, strict[i].id) << what << " answer #" << i;
    EXPECT_NEAR(fast[i].probability, strict[i].probability, tol)
        << what << " answer #" << i << " (id " << fast[i].id << ")";
  }
}

void ExpectBitIdentical(const AnswerSet& a, const AnswerSet& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << what << " answer #" << i;
    EXPECT_EQ(a[i].probability, b[i].probability)
        << what << " answer #" << i;
  }
}

TEST(FastVariantTest, StrictIsTheDefault) {
  // Nothing in the test binary has permanently flipped the variant, and a
  // default EngineConfig does not either.
  EXPECT_EQ(simd::ActiveKernelVariant(), simd::KernelVariant::kStrict);
  EngineConfig config;
  EXPECT_FALSE(config.kernel_variant.has_value());
}

TEST(FastVariantTest, DotKernelIsDeterministicAndAccurate) {
  Rng rng(91);
  std::vector<double> a(259), b(259);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Uniform(-1, 1);
    b[i] = rng.Uniform(0, 2);
  }
  for (int l = 0; l <= static_cast<int>(simd::DetectedSimdLevel()); ++l) {
    const simd::KernelSet& k =
        simd::Kernels(static_cast<simd::SimdLevel>(l));
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                     size_t{259}}) {
      const double once = k.dot(a.data(), b.data(), n);
      const double twice = k.dot(a.data(), b.data(), n);
      // Deterministic within a tier: exactly the same double both times.
      EXPECT_EQ(once, twice) << "tier " << l << " n=" << n;
      double seq = 0.0;
      for (size_t i = 0; i < n; ++i) seq += a[i] * b[i];
      EXPECT_NEAR(once, seq, 1e-10 * (1.0 + std::abs(seq)))
          << "tier " << l << " n=" << n;
    }
  }
}

TEST(FastVariantTest, FastAnswersDeterministicAndNearStrict) {
  EngineConfig config;
  config.eval.quadrature_order = 8;
  Result<QueryEngine> engine = QueryEngine::Build(
      MakePoints(321, 200), MakeMixedObjects(322, 75), config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Result<UncertainObject> issuer =
      engine->MakeIssuer(MakeGaussian(Rect(350, 650, 350, 650)));
  ASSERT_TRUE(issuer.ok());
  const RangeQuerySpec spec(200, 200, 0.2);

  auto run_all = [&](const QueryEngine& e) {
    std::vector<AnswerSet> r;
    r.push_back(e.IpqBasic(*issuer, spec));
    r.push_back(e.IuqBasic(*issuer, spec));
    r.push_back(e.Ipq(*issuer, spec));
    r.push_back(e.Iuq(*issuer, spec));
    r.push_back(e.Cipq(*issuer, spec));
    r.push_back(e.CiuqRTree(*issuer, spec));
    r.push_back(e.CiuqPti(*issuer, spec));
    return r;
  };
  static const char* const kNames[] = {"IpqBasic",  "IuqBasic", "Ipq", "Iuq",
                                       "Cipq",      "CiuqRTree", "CiuqPti"};

  const std::vector<AnswerSet> strict = run_all(*engine);
  std::vector<AnswerSet> fast, fast_again;
  {
    simd::ScopedKernelVariant scoped(simd::KernelVariant::kFast);
    fast = run_all(*engine);
    fast_again = run_all(*engine);
  }
  for (size_t m = 0; m < strict.size(); ++m) {
    ASSERT_FALSE(strict[m].empty()) << kNames[m];
    // Fast is deterministic in-process...
    ExpectBitIdentical(fast[m], fast_again[m], kNames[m]);
    // ...and tolerance-pinned against strict.
    ExpectSameIdsNearProbabilities(fast[m], strict[m], kNames[m], 1e-9);
  }
}

TEST(FastVariantTest, MonteCarloAnswersBitIdenticalUnderFast) {
  EngineConfig config;
  config.eval.kernel = ProbabilityKernel::kMonteCarlo;
  config.eval.mc_samples = 120;
  Result<QueryEngine> engine = QueryEngine::Build(
      MakePoints(321, 200), MakeMixedObjects(322, 75), config);
  ASSERT_TRUE(engine.ok());
  Result<UncertainObject> issuer =
      engine->MakeIssuer(MakeUniform(Rect(350, 650, 350, 650)));
  ASSERT_TRUE(issuer.ok());
  const RangeQuerySpec spec(200, 200, 0.2);

  const AnswerSet strict_ipq = engine->Ipq(*issuer, spec);
  const AnswerSet strict_iuq = engine->Iuq(*issuer, spec);
  simd::ScopedKernelVariant scoped(simd::KernelVariant::kFast);
  ExpectBitIdentical(engine->Ipq(*issuer, spec), strict_ipq, "Ipq/mc");
  ExpectBitIdentical(engine->Iuq(*issuer, spec), strict_iuq, "Iuq/mc");
}

TEST(FastVariantTest, EngineConfigPlumbsKernelVariant) {
  const simd::KernelVariant before = simd::ActiveKernelVariant();
  EngineConfig config;
  config.kernel_variant = simd::KernelVariant::kFast;
  Result<QueryEngine> engine = QueryEngine::Build(
      MakePoints(31, 10), MakeMixedObjects(32, 6), config);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(simd::ActiveKernelVariant(), simd::KernelVariant::kFast);
  simd::SetActiveKernelVariant(before);
}

}  // namespace
}  // namespace ilq
