// Differential suite for the sharded serving engine: ShardedEngine::Run
// must merge bit-identical AnswerSets to the monolithic QueryEngine —
// same ids, same probability doubles — for every shard count, all eight
// QueryMethods, and both probability kernels. This is the determinism
// guarantee the serving layer advertises (serve/sharded_engine.h): spatial
// partitioning is a pure routing optimization, never an answer change.
//
// The monolithic engine's answers are canonicalized by sorting on id (the
// sharded engine merges id-sorted; enhanced evaluators emit traversal
// order); probabilities are compared exactly, not with a tolerance — the
// per-candidate Monte-Carlo streams (MixSeeds) make even the sampled
// kernels order-invariant.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "serve/sharded_engine.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

constexpr size_t kShardCounts[] = {1, 2, 4, 7};

// Mixed-pdf dataset so every monomorphized kernel pair is crossed by the
// fan-out (uniform closed forms, gaussian separable, histogram generic).
std::vector<UncertainObject> MakeMixedObjects(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < count; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 3) {
      case 0:
        objects.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        objects.emplace_back(id, MakeGaussian(region));
        break;
      default:
        objects.emplace_back(id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
    }
  }
  return objects;
}

std::vector<PointObject> MakePoints(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<PointObject> points;
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  return points;
}

AnswerSet SortedById(AnswerSet answers) {
  std::sort(answers.begin(), answers.end(),
            [](const ProbabilisticAnswer& a, const ProbabilisticAnswer& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.probability < b.probability;
            });
  return answers;
}

void ExpectBitIdentical(const AnswerSet& sharded, const AnswerSet& mono,
                        const std::string& what) {
  ASSERT_EQ(sharded.size(), mono.size()) << what;
  for (size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].id, mono[i].id) << what << " answer #" << i;
    EXPECT_EQ(sharded[i].probability, mono[i].probability)
        << what << " answer #" << i << " (id " << sharded[i].id << ")";
  }
}

EngineConfig TestEngineConfig(ProbabilityKernel kernel) {
  EngineConfig config;
  config.eval.kernel = kernel;
  config.eval.quadrature_order = 8;
  config.eval.mc_samples = 100;
  return config;
}

// Runs every method over every shard count against the monolithic answers.
void RunDifferential(ProbabilityKernel kernel) {
  const EngineConfig config = TestEngineConfig(kernel);
  Result<QueryEngine> mono = QueryEngine::Build(
      MakePoints(901, 400), MakeMixedObjects(902, 150), config);
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();

  std::vector<Result<UncertainObject>> issuers;
  issuers.push_back(mono->MakeIssuer(MakeUniform(Rect(350, 650, 350, 650))));
  issuers.push_back(mono->MakeIssuer(MakeGaussian(Rect(100, 420, 500, 800))));
  for (const auto& issuer : issuers) {
    ASSERT_TRUE(issuer.ok()) << issuer.status().ToString();
  }

  const std::vector<RangeQuerySpec> specs = {RangeQuerySpec(140, 140, 0.0),
                                             RangeQuerySpec(250, 180, 0.3)};

  for (const size_t shards : kShardCounts) {
    ShardedEngineConfig sharded_config;
    sharded_config.shards = shards;
    sharded_config.engine = config;
    Result<ShardedEngine> sharded = ShardedEngine::Build(
        MakePoints(901, 400), MakeMixedObjects(902, 150), sharded_config);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_EQ(sharded->shard_count(), shards);

    for (const auto& issuer : issuers) {
      for (const RangeQuerySpec& query : specs) {
        const BatchSpec spec{query};
        for (const QueryMethod method : AllQueryMethods()) {
          const std::string what =
              std::string(QueryMethodName(method)) + " S=" +
              std::to_string(shards) + " w=" + std::to_string(query.w);
          const AnswerSet mono_answers = SortedById(
              RunQueryMethod(*mono, method, *issuer, spec, nullptr));
          const AnswerSet sharded_answers =
              sharded->Run(method, *issuer, spec);
          ExpectBitIdentical(sharded_answers, mono_answers, what);
        }
      }
    }
  }
}

TEST(ShardedDifferentialTest, BitIdenticalAnalytic) {
  RunDifferential(ProbabilityKernel::kAnalytic);
}

TEST(ShardedDifferentialTest, BitIdenticalMonteCarlo) {
  RunDifferential(ProbabilityKernel::kMonteCarlo);
}

TEST(ShardedDifferentialTest, ShardsPartitionTheCatalog) {
  ShardedEngineConfig config;
  config.shards = 4;
  Result<ShardedEngine> sharded = ShardedEngine::Build(
      MakePoints(11, 300), MakeMixedObjects(12, 90), config);
  ASSERT_TRUE(sharded.ok());
  size_t points = 0;
  size_t uncertains = 0;
  for (size_t s = 0; s < sharded->shard_count(); ++s) {
    points += sharded->shard(s).points().size();
    uncertains += sharded->shard(s).uncertains().size();
    // Shard bounds contain every member (the routing invariant).
    for (const PointObject& p : sharded->shard(s).points()) {
      EXPECT_TRUE(sharded->shard_point_bounds(s).Contains(p.location));
    }
    for (const UncertainObject& u : sharded->shard(s).uncertains()) {
      EXPECT_TRUE(
          sharded->shard_uncertain_bounds(s).ContainsRect(u.region()));
    }
  }
  EXPECT_EQ(points, 300u);
  EXPECT_EQ(uncertains, 90u);
}

TEST(ShardedDifferentialTest, UnroutedShardsContributeNothing) {
  ShardedEngineConfig config;
  config.shards = 4;
  Result<ShardedEngine> sharded = ShardedEngine::Build(
      MakePoints(21, 300), MakeMixedObjects(22, 90), config);
  ASSERT_TRUE(sharded.ok());
  // A small query in one corner should skip at least one shard, and every
  // skipped shard must answer empty when asked directly — routing is a
  // pure optimization.
  Result<UncertainObject> issuer =
      sharded->MakeIssuer(MakeUniform(Rect(50, 150, 50, 150)));
  ASSERT_TRUE(issuer.ok());
  const RangeQuerySpec query(60, 60, 0.0);
  const BatchSpec spec{query};
  for (const QueryMethod method : AllQueryMethods()) {
    const std::vector<size_t> routed =
        sharded->Route(method, *issuer, query);
    std::vector<bool> is_routed(sharded->shard_count(), false);
    for (const size_t s : routed) is_routed[s] = true;
    for (size_t s = 0; s < sharded->shard_count(); ++s) {
      if (is_routed[s]) continue;
      EXPECT_TRUE(
          RunQueryMethod(sharded->shard(s), method, *issuer, spec).empty())
          << QueryMethodName(method) << " shard " << s;
    }
  }
}

TEST(ShardedDifferentialTest, EmptyAndLopsidedDatasets) {
  ShardedEngineConfig config;
  config.shards = 3;
  const BatchSpec spec{RangeQuerySpec(100, 100, 0.0)};

  Result<ShardedEngine> empty = ShardedEngine::Build({}, {}, config);
  ASSERT_TRUE(empty.ok());
  Result<UncertainObject> issuer =
      empty->MakeIssuer(MakeUniform(Rect(400, 600, 400, 600)));
  ASSERT_TRUE(issuer.ok());
  for (const QueryMethod method : AllQueryMethods()) {
    EXPECT_TRUE(empty->Run(method, *issuer, spec).empty());
  }

  Result<ShardedEngine> points_only =
      ShardedEngine::Build(MakePoints(31, 120), {}, config);
  ASSERT_TRUE(points_only.ok());
  EXPECT_FALSE(points_only->Run(QueryMethod::kIpq, *issuer, spec).empty());
  EXPECT_TRUE(points_only->Run(QueryMethod::kIuq, *issuer, spec).empty());

  Result<ShardedEngine> uncertain_only =
      ShardedEngine::Build({}, MakeMixedObjects(32, 45), config);
  ASSERT_TRUE(uncertain_only.ok());
  EXPECT_TRUE(uncertain_only->Run(QueryMethod::kIpq, *issuer, spec).empty());
  EXPECT_FALSE(uncertain_only->Run(QueryMethod::kIuq, *issuer, spec).empty());
}

TEST(ShardedDifferentialTest, MoreShardsThanObjects) {
  ShardedEngineConfig config;
  config.shards = 7;
  config.engine.eval.quadrature_order = 8;
  Result<ShardedEngine> sharded =
      ShardedEngine::Build(MakePoints(41, 3), MakeMixedObjects(42, 2),
                           config);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->shard_count(), 7u);

  Result<QueryEngine> mono = QueryEngine::Build(
      MakePoints(41, 3), MakeMixedObjects(42, 2),
      sharded->config().engine);
  ASSERT_TRUE(mono.ok());
  Result<UncertainObject> issuer =
      mono->MakeIssuer(MakeUniform(Rect(0, 1000, 0, 1000)));
  ASSERT_TRUE(issuer.ok());
  const BatchSpec spec{RangeQuerySpec(400, 400, 0.0)};
  for (const QueryMethod method : AllQueryMethods()) {
    ExpectBitIdentical(
        sharded->Run(method, *issuer, spec),
        SortedById(RunQueryMethod(*mono, method, *issuer, spec)),
        QueryMethodName(method));
  }
}

}  // namespace
}  // namespace ilq
