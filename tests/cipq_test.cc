#include "core/cipq.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/duality.h"
#include "core/ipq.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;

struct Fixture {
  std::vector<PointObject> objects;
  RTree index;
};

Fixture MakeFixture(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<PointObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < n; ++i) {
    const Point p(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    objects.emplace_back(static_cast<ObjectId>(i + 1), p);
    items.push_back({Rect::AtPoint(p), static_cast<ObjectId>(i + 1)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  EXPECT_TRUE(tree.ok());
  return {std::move(objects), std::move(tree).ValueOrDie()};
}

UncertainObject MakeIssuerWithCatalog(std::unique_ptr<UncertaintyPdf> pdf) {
  UncertainObject issuer(0, std::move(pdf));
  EXPECT_TRUE(issuer.BuildCatalog(UCatalog::EvenlySpacedValues(11)).ok());
  return issuer;
}

std::map<ObjectId, double> ById(const AnswerSet& answers) {
  std::map<ObjectId, double> out;
  for (const auto& a : answers) out[a.id] = a.probability;
  return out;
}

TEST(CipqTest, ZeroThresholdEqualsIPQ) {
  Fixture fixture = MakeFixture(2000, 121);
  UncertainObject issuer =
      MakeIssuerWithCatalog(MakeUniform(Rect(300, 600, 300, 600)));
  const RangeQuerySpec spec(150, 150, 0.0);
  const AnswerSet via_cipq = EvaluateCIPQ(fixture.index, issuer, spec,
                                          CipqFilter::kPExpanded, {});
  const AnswerSet via_ipq = EvaluateIPQ(fixture.index, issuer, spec, {});
  EXPECT_EQ(ById(via_cipq), ById(via_ipq));
}

TEST(CipqTest, BothFiltersReturnIdenticalAnswers) {
  // The p-expanded filter is an optimization, never a semantic change.
  Fixture fixture = MakeFixture(3000, 122);
  for (double qp : {0.1, 0.3, 0.55, 0.8}) {
    UncertainObject issuer =
        MakeIssuerWithCatalog(MakeUniform(Rect(350, 650, 250, 550)));
    const RangeQuerySpec spec(180, 140, qp);
    const AnswerSet mink = EvaluateCIPQ(fixture.index, issuer, spec,
                                        CipqFilter::kMinkowski, {});
    const AnswerSet pexp = EvaluateCIPQ(fixture.index, issuer, spec,
                                        CipqFilter::kPExpanded, {});
    EXPECT_EQ(ById(mink), ById(pexp)) << "qp=" << qp;
  }
}

TEST(CipqTest, AllAnswersMeetThreshold) {
  Fixture fixture = MakeFixture(3000, 123);
  UncertainObject issuer =
      MakeIssuerWithCatalog(MakeGaussian(Rect(300, 700, 300, 700)));
  for (double qp : {0.2, 0.5, 0.9}) {
    const RangeQuerySpec spec(150, 150, qp);
    const AnswerSet got = EvaluateCIPQ(fixture.index, issuer, spec,
                                       CipqFilter::kPExpanded, {});
    for (const auto& a : got) {
      EXPECT_GE(a.probability, qp);
    }
  }
}

TEST(CipqTest, NoQualifyingObjectIsLost) {
  // Pruning soundness: every object with pi >= qp appears in the answer.
  Fixture fixture = MakeFixture(2000, 124);
  UncertainObject issuer =
      MakeIssuerWithCatalog(MakeUniform(Rect(200, 600, 400, 800)));
  for (double qp : {0.15, 0.4, 0.75}) {
    const RangeQuerySpec spec(170, 170, qp);
    const std::map<ObjectId, double> got = ById(EvaluateCIPQ(
        fixture.index, issuer, spec, CipqFilter::kPExpanded, {}));
    for (const PointObject& s : fixture.objects) {
      const double pi =
          PointQualification(issuer.pdf(), s.location, spec.w, spec.h);
      if (pi >= qp + 1e-9) {
        EXPECT_TRUE(got.count(s.id))
            << "object " << s.id << " with pi=" << pi << " lost at qp=" << qp;
      }
    }
  }
}

TEST(CipqTest, PExpandedVisitsFewerCandidates) {
  Fixture fixture = MakeFixture(20000, 125);
  UncertainObject issuer =
      MakeIssuerWithCatalog(MakeUniform(Rect(300, 700, 300, 700)));
  const RangeQuerySpec spec(250, 250, 0.6);
  IndexStats mink_stats;
  EvaluateCIPQ(fixture.index, issuer, spec, CipqFilter::kMinkowski, {},
               &mink_stats);
  IndexStats pexp_stats;
  EvaluateCIPQ(fixture.index, issuer, spec, CipqFilter::kPExpanded, {},
               &pexp_stats);
  EXPECT_LT(pexp_stats.candidates, mink_stats.candidates);
  EXPECT_LE(pexp_stats.node_accesses, mink_stats.node_accesses);
}

TEST(CipqTest, CandidateCountShrinksWithThreshold) {
  Fixture fixture = MakeFixture(20000, 126);
  UncertainObject issuer =
      MakeIssuerWithCatalog(MakeUniform(Rect(300, 700, 300, 700)));
  uint64_t prev = std::numeric_limits<uint64_t>::max();
  for (double qp : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    IndexStats stats;
    EvaluateCIPQ(fixture.index, issuer, RangeQuerySpec(250, 250, qp),
                 CipqFilter::kPExpanded, {}, &stats);
    EXPECT_LE(stats.candidates, prev) << "qp=" << qp;
    prev = stats.candidates;
  }
}

TEST(CipqTest, WorksWithoutCatalogViaExactQuantiles) {
  Fixture fixture = MakeFixture(1000, 127);
  UncertainObject bare_issuer(0, MakeUniform(Rect(300, 600, 300, 600)));
  ASSERT_EQ(bare_issuer.catalog(), nullptr);
  const RangeQuerySpec spec(150, 150, 0.3);
  const AnswerSet got = EvaluateCIPQ(fixture.index, bare_issuer, spec,
                                     CipqFilter::kPExpanded, {});
  for (const auto& a : got) EXPECT_GE(a.probability, 0.3);
}

TEST(CipqTest, ImpossibleThresholdReturnsEmpty) {
  Fixture fixture = MakeFixture(1000, 128);
  UncertainObject issuer =
      MakeIssuerWithCatalog(MakeUniform(Rect(0, 1000, 0, 1000)));
  // Tiny query, huge uncertainty: nothing can reach pi = 0.9.
  const AnswerSet got =
      EvaluateCIPQ(fixture.index, issuer, RangeQuerySpec(5, 5, 0.9),
                   CipqFilter::kPExpanded, {});
  EXPECT_TRUE(got.empty());
}

// Property: Minkowski and p-expanded agree across random configurations
// and issuer pdf families.
class CipqEquivalencePropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CipqEquivalencePropertyTest, FiltersAgree) {
  Fixture fixture = MakeFixture(1500, GetParam());
  Rng rng(GetParam() * 13);
  for (int iter = 0; iter < 12; ++iter) {
    const double u = rng.Uniform(20, 250);
    const double cx = rng.Uniform(u, 1000 - u);
    const double cy = rng.Uniform(u, 1000 - u);
    const Rect region(cx - u, cx + u, cy - u, cy + u);
    UncertainObject issuer = MakeIssuerWithCatalog(
        iter % 2 == 0
            ? std::unique_ptr<UncertaintyPdf>(MakeUniform(region))
            : std::unique_ptr<UncertaintyPdf>(MakeGaussian(region)));
    const RangeQuerySpec spec(rng.Uniform(50, 300), rng.Uniform(50, 300),
                              rng.Uniform(0.0, 1.0));
    const AnswerSet mink = EvaluateCIPQ(fixture.index, issuer, spec,
                                        CipqFilter::kMinkowski, {});
    const AnswerSet pexp = EvaluateCIPQ(fixture.index, issuer, spec,
                                        CipqFilter::kPExpanded, {});
    EXPECT_EQ(ById(mink), ById(pexp));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CipqEquivalencePropertyTest,
                         ::testing::Values(131, 132, 133, 134));

}  // namespace
}  // namespace ilq
