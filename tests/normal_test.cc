#include "prob/normal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ilq {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalTest, CdfMonotone) {
  double prev = 0.0;
  for (double z = -6.0; z <= 6.0; z += 0.05) {
    const double p = NormalCdf(z);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(NormalTest, CdfSymmetry) {
  for (double z = 0.0; z < 5.0; z += 0.13) {
    EXPECT_NEAR(NormalCdf(z) + NormalCdf(-z), 1.0, 1e-14);
  }
}

TEST(NormalTest, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-14);
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-9);
}

TEST(NormalTest, QuantileEndpoints) {
  EXPECT_EQ(NormalQuantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(NormalQuantile(1.0), std::numeric_limits<double>::infinity());
}

TEST(NormalTest, QuantileCdfRoundtrip) {
  for (double p = 0.0005; p < 1.0; p += 0.0101) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-11) << "p=" << p;
  }
}

TEST(NormalTest, CdfQuantileRoundtripTails) {
  for (double z = -5.0; z <= 5.0; z += 0.25) {
    EXPECT_NEAR(NormalQuantile(NormalCdf(z)), z, 1e-8) << "z=" << z;
  }
}

}  // namespace
}  // namespace ilq
