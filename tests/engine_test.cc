#include "core/engine.h"

#include <gtest/gtest.h>

#include <map>

#include "core/duality.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

QueryEngine BuildSmallEngine(uint64_t seed, size_t points = 500,
                             size_t uncertains = 300) {
  Rng rng(seed);
  std::vector<PointObject> pts;
  for (size_t i = 0; i < points; ++i) {
    pts.emplace_back(static_cast<ObjectId>(i + 1),
                     Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  std::vector<UncertainObject> objs;
  for (size_t i = 0; i < uncertains; ++i) {
    objs.emplace_back(
        static_cast<ObjectId>(i + 1),
        MakeUniform(RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 60)));
  }
  Result<QueryEngine> engine =
      QueryEngine::Build(std::move(pts), std::move(objs));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

TEST(EngineTest, BuildPopulatesIndexesAndCatalogs) {
  QueryEngine engine = BuildSmallEngine(161);
  EXPECT_EQ(engine.point_index().size(), 500u);
  EXPECT_EQ(engine.uncertain_index().size(), 300u);
  ASSERT_NE(engine.pti(), nullptr);
  EXPECT_EQ(engine.pti()->size(), 300u);
  for (const UncertainObject& obj : engine.uncertains()) {
    EXPECT_NE(obj.catalog(), nullptr);
    EXPECT_EQ(obj.catalog()->size(), 11u);
  }
}

TEST(EngineTest, BuildAcceptsEmptyDatasets) {
  Result<QueryEngine> engine = QueryEngine::Build({}, {});
  ASSERT_TRUE(engine.ok());
  UncertainObject issuer(0, MakeUniform(Rect(0, 10, 0, 10)));
  EXPECT_TRUE(engine->Ipq(issuer, RangeQuerySpec(5, 5)).empty());
  EXPECT_TRUE(engine->Iuq(issuer, RangeQuerySpec(5, 5)).empty());
  EXPECT_TRUE(engine->CiuqPti(issuer, RangeQuerySpec(5, 5, 0.5)).empty());
  EXPECT_EQ(engine->pti(), nullptr);
}

TEST(EngineTest, MakeIssuerBuildsCatalog) {
  QueryEngine engine = BuildSmallEngine(162);
  Result<UncertainObject> issuer =
      engine.MakeIssuer(MakeUniform(Rect(100, 300, 100, 300)));
  ASSERT_TRUE(issuer.ok());
  ASSERT_NE(issuer->catalog(), nullptr);
  EXPECT_EQ(issuer->catalog()->size(), 11u);
}

TEST(EngineTest, MakeIssuerRejectsNull) {
  QueryEngine engine = BuildSmallEngine(163);
  EXPECT_FALSE(engine.MakeIssuer(nullptr).ok());
}

TEST(EngineTest, IpqAgreesWithBasic) {
  QueryEngine engine = BuildSmallEngine(164);
  Result<UncertainObject> issuer =
      engine.MakeIssuer(MakeUniform(Rect(300, 600, 300, 600)));
  ASSERT_TRUE(issuer.ok());
  const RangeQuerySpec spec(150, 150);
  const AnswerSet fast = engine.Ipq(*issuer, spec);
  const AnswerSet slow = engine.IpqBasic(*issuer, spec);
  std::map<ObjectId, double> slow_by_id;
  for (const auto& a : slow) slow_by_id[a.id] = a.probability;
  // The 20×20 grid baseline quantizes probabilities in 1/400 steps and can
  // miss objects near the Minkowski boundary entirely; compare only answers
  // comfortably above its resolution.
  for (const auto& a : fast) {
    if (a.probability < 0.05) continue;
    ASSERT_TRUE(slow_by_id.count(a.id)) << "object " << a.id;
    EXPECT_NEAR(a.probability, slow_by_id[a.id], 0.05);
  }
  // Conversely, everything the baseline finds the exact method must find.
  std::map<ObjectId, double> fast_by_id;
  for (const auto& a : fast) fast_by_id[a.id] = a.probability;
  for (const auto& a : slow) {
    EXPECT_TRUE(fast_by_id.count(a.id)) << "object " << a.id;
  }
}

TEST(EngineTest, IuqAgreesWithBasic) {
  QueryEngine engine = BuildSmallEngine(165);
  Result<UncertainObject> issuer =
      engine.MakeIssuer(MakeUniform(Rect(250, 650, 250, 650)));
  ASSERT_TRUE(issuer.ok());
  const RangeQuerySpec spec(180, 180);
  const AnswerSet fast = engine.Iuq(*issuer, spec);
  const AnswerSet slow = engine.IuqBasic(*issuer, spec);
  std::map<ObjectId, double> slow_by_id;
  for (const auto& a : slow) slow_by_id[a.id] = a.probability;
  for (const auto& a : fast) {
    if (a.probability < 0.05) continue;  // below grid-baseline resolution
    ASSERT_TRUE(slow_by_id.count(a.id));
    EXPECT_NEAR(a.probability, slow_by_id[a.id], 0.05);
  }
}

TEST(EngineTest, CiuqMethodsAgree) {
  QueryEngine engine = BuildSmallEngine(166);
  Result<UncertainObject> issuer =
      engine.MakeIssuer(MakeUniform(Rect(200, 700, 200, 700)));
  ASSERT_TRUE(issuer.ok());
  for (double qp : {0.0, 0.35, 0.7}) {
    const RangeQuerySpec spec(200, 200, qp);
    const AnswerSet a = engine.CiuqRTree(*issuer, spec);
    const AnswerSet b = engine.CiuqPti(*issuer, spec);
    std::map<ObjectId, double> ma;
    for (const auto& x : a) ma[x.id] = x.probability;
    std::map<ObjectId, double> mb;
    for (const auto& x : b) mb[x.id] = x.probability;
    EXPECT_EQ(ma, mb) << "qp=" << qp;
  }
}

TEST(EngineTest, CipqFiltersAgree) {
  QueryEngine engine = BuildSmallEngine(167);
  Result<UncertainObject> issuer =
      engine.MakeIssuer(MakeGaussian(Rect(250, 650, 250, 650)));
  ASSERT_TRUE(issuer.ok());
  const RangeQuerySpec spec(170, 170, 0.4);
  const AnswerSet a = engine.Cipq(*issuer, spec, CipqFilter::kMinkowski);
  const AnswerSet b = engine.Cipq(*issuer, spec, CipqFilter::kPExpanded);
  ASSERT_EQ(a.size(), b.size());
}

TEST(EngineTest, ConfigCatalogLadderRespected) {
  Rng rng(168);
  std::vector<UncertainObject> objs;
  objs.emplace_back(1,
                    MakeUniform(RandomRect(&rng, Rect(0, 100, 0, 100), 5, 20)));
  EngineConfig config;
  config.catalog_values = {0.0, 0.25, 0.5};
  Result<QueryEngine> engine = QueryEngine::Build({}, std::move(objs), config);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->uncertains()[0].catalog()->size(), 3u);
}

TEST(EngineTest, PageSizeAffectsIndexShape) {
  Rng rng(169);
  std::vector<PointObject> pts;
  for (size_t i = 0; i < 20000; ++i) {
    pts.emplace_back(static_cast<ObjectId>(i + 1),
                     Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  EngineConfig small;
  small.page_size_bytes = 1024;
  EngineConfig large;
  large.page_size_bytes = 8192;
  Result<QueryEngine> e_small = QueryEngine::Build(pts, {}, small);
  Result<QueryEngine> e_large =
      QueryEngine::Build(std::move(pts), {}, large);
  ASSERT_TRUE(e_small.ok() && e_large.ok());
  EXPECT_GT(e_small->point_index().node_count(),
            e_large->point_index().node_count());
}

}  // namespace
}  // namespace ilq
