// PdfVariant unit tests: MakePdfVariant's closed-world mapping, the AnyPdf
// escape hatch, the UncertaintyPdf& view, and bit-identity of the batched
// entry points with their scalar counterparts (the contract the evaluator
// rewrites rely on).

#include "prob/pdf_variant.h"

#include <gtest/gtest.h>

#include <memory>
#include <variant>
#include <vector>

#include "geometry/circle.h"
#include "prob/disk_pdf.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;

std::unique_ptr<UniformDiskPdf> MakeDisk(const Point& c, double r) {
  Result<UniformDiskPdf> made = UniformDiskPdf::Make(Circle{c, r});
  ILQ_CHECK(made.ok(), made.status().ToString());
  return std::make_unique<UniformDiskPdf>(std::move(made).ValueOrDie());
}

// Minimal open-world pdf (not one of the four closed-world types): uniform
// over a rectangle, implemented directly against the virtual interface.
class CustomUniformPdf final : public UncertaintyPdf {
 public:
  explicit CustomUniformPdf(const Rect& region) : region_(region) {}

  Rect bounds() const override { return region_; }
  double Density(const Point& p) const override {
    return region_.Contains(p) ? 1.0 / region_.Area() : 0.0;
  }
  double MassIn(const Rect& r) const override {
    return region_.IntersectionArea(r) / region_.Area();
  }
  double CdfX(double x) const override {
    if (x <= region_.xmin) return 0.0;
    if (x >= region_.xmax) return 1.0;
    return (x - region_.xmin) / region_.Width();
  }
  double CdfY(double y) const override {
    if (y <= region_.ymin) return 0.0;
    if (y >= region_.ymax) return 1.0;
    return (y - region_.ymin) / region_.Height();
  }
  double MarginalPdfX(double x) const override {
    return (x >= region_.xmin && x <= region_.xmax) ? 1.0 / region_.Width()
                                                    : 0.0;
  }
  double MarginalPdfY(double y) const override {
    return (y >= region_.ymin && y <= region_.ymax) ? 1.0 / region_.Height()
                                                    : 0.0;
  }
  bool IsProduct() const override { return true; }
  Point Sample(Rng* rng) const override {
    return Point(rng->Uniform(region_.xmin, region_.xmax),
                 rng->Uniform(region_.ymin, region_.ymax));
  }
  std::string name() const override { return "custom-uniform"; }
  std::unique_ptr<UncertaintyPdf> Clone() const override {
    return std::make_unique<CustomUniformPdf>(*this);
  }

 private:
  Rect region_;
};

TEST(PdfVariantTest, ClosedWorldTypesLandOnTheirAlternative) {
  EXPECT_TRUE(std::holds_alternative<UniformRectPdf>(
      MakePdfVariant(MakeUniform(Rect(0, 10, 0, 10)))));
  EXPECT_TRUE(std::holds_alternative<UniformDiskPdf>(
      MakePdfVariant(MakeDisk(Point(5, 5), 3))));
  EXPECT_TRUE(std::holds_alternative<TruncatedGaussianPdf>(
      MakePdfVariant(MakeGaussian(Rect(0, 10, 0, 10)))));
  EXPECT_TRUE(std::holds_alternative<HistogramPdf>(
      MakePdfVariant(MakeSkewedHistogram(Rect(0, 10, 0, 10), 4, 3, 7))));
}

TEST(PdfVariantTest, OpenWorldPdfFallsBackToAnyPdf) {
  PdfVariant v = MakePdfVariant(
      std::make_unique<CustomUniformPdf>(Rect(0, 10, 0, 20)));
  ASSERT_TRUE(std::holds_alternative<AnyPdf>(v));
  EXPECT_EQ(PdfName(v), "custom-uniform");
  EXPECT_EQ(PdfBounds(v), Rect(0, 10, 0, 20));
  EXPECT_DOUBLE_EQ(PdfMassIn(v, Rect(0, 5, 0, 20)), 0.5);
  EXPECT_TRUE(PdfIsProduct(v));
}

TEST(PdfVariantTest, AnyPdfCopyDeepClones) {
  PdfVariant v = MakePdfVariant(
      std::make_unique<CustomUniformPdf>(Rect(0, 4, 0, 4)));
  PdfVariant copy = v;  // must clone, not alias
  EXPECT_NE(&AsUncertaintyPdf(v), &AsUncertaintyPdf(copy));
  EXPECT_EQ(PdfDensity(copy, Point(1, 1)), PdfDensity(v, Point(1, 1)));
}

TEST(PdfVariantTest, AsUncertaintyPdfViewsTheStoredAlternative) {
  PdfVariant v = MakePdfVariant(MakeUniform(Rect(0, 10, 0, 10)));
  const UncertaintyPdf& base = AsUncertaintyPdf(v);
  EXPECT_EQ(base.name(), "uniform");
  EXPECT_EQ(&base,
            static_cast<const UncertaintyPdf*>(&std::get<UniformRectPdf>(v)));
}

TEST(PdfVariantTest, DispatchHelpersMatchVirtualInterface) {
  std::vector<PdfVariant> variants;
  variants.push_back(MakePdfVariant(MakeUniform(Rect(0, 10, 0, 8))));
  variants.push_back(MakePdfVariant(MakeDisk(Point(5, 4), 3)));
  variants.push_back(MakePdfVariant(MakeGaussian(Rect(0, 10, 0, 8))));
  variants.push_back(
      MakePdfVariant(MakeSkewedHistogram(Rect(0, 10, 0, 8), 5, 4, 11)));
  variants.push_back(MakePdfVariant(
      std::make_unique<CustomUniformPdf>(Rect(0, 10, 0, 8))));
  const Point p(3.25, 4.5);
  const Rect r(1, 7, 2, 6);
  for (const PdfVariant& v : variants) {
    const UncertaintyPdf& base = AsUncertaintyPdf(v);
    EXPECT_EQ(PdfBounds(v), base.bounds()) << base.name();
    EXPECT_EQ(PdfDensity(v, p), base.Density(p)) << base.name();
    EXPECT_EQ(PdfMassIn(v, r), base.MassIn(r)) << base.name();
    EXPECT_EQ(PdfIsProduct(v), base.IsProduct()) << base.name();
    EXPECT_EQ(PdfName(v), base.name());
    // Identical rng streams must produce identical samples.
    Rng rng_a(99), rng_b(99);
    const Point sa = PdfSample(v, &rng_a);
    const Point sb = base.Sample(&rng_b);
    EXPECT_EQ(sa.x, sb.x) << base.name();
    EXPECT_EQ(sa.y, sb.y) << base.name();
  }
}

TEST(PdfVariantTest, KPdfIsProductMirrorsRuntimeIsProduct) {
  EXPECT_TRUE(kPdfIsProduct<UniformRectPdf>);
  EXPECT_TRUE(kPdfIsProduct<TruncatedGaussianPdf>);
  EXPECT_FALSE(kPdfIsProduct<UniformDiskPdf>);
  EXPECT_FALSE(kPdfIsProduct<HistogramPdf>);
  // AnyPdf must stay false regardless of the wrapped pdf: the dispatch
  // falls back to the runtime check instead.
  EXPECT_FALSE(kPdfIsProduct<AnyPdf>);
}

// The batched entry points promise bit-identical results to the scalar
// loop — that is what lets the evaluators swap one for the other without
// perturbing any AnswerSet.
TEST(PdfVariantTest, BatchedEntryPointsAreBitIdenticalToScalar) {
  std::vector<PdfVariant> variants;
  variants.push_back(MakePdfVariant(MakeUniform(Rect(0, 100, 0, 80))));
  variants.push_back(MakePdfVariant(MakeDisk(Point(50, 40), 30)));
  variants.push_back(MakePdfVariant(MakeGaussian(Rect(0, 100, 0, 80))));
  variants.push_back(
      MakePdfVariant(MakeSkewedHistogram(Rect(0, 100, 0, 80), 6, 5, 23)));
  variants.push_back(MakePdfVariant(
      std::make_unique<CustomUniformPdf>(Rect(0, 100, 0, 80))));

  Rng rng(41);
  std::vector<Point> pts;
  std::vector<Rect> rects;
  for (int i = 0; i < 257; ++i) {  // odd count: exercises any vector tail
    pts.emplace_back(rng.Uniform(-20, 120), rng.Uniform(-20, 100));
    rects.push_back(Rect::Centered(
        Point(rng.Uniform(-20, 120), rng.Uniform(-20, 100)),
        rng.Uniform(0.5, 40), rng.Uniform(0.5, 40)));
  }

  for (const PdfVariant& v : variants) {
    const UncertaintyPdf& base = AsUncertaintyPdf(v);
    std::vector<double> batch(pts.size());
    DensityBatch(v, pts, batch);
    for (size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(batch[i], base.Density(pts[i]))
          << base.name() << " density #" << i;
    }
    std::vector<double> mass(rects.size());
    MassInBatch(v, rects, mass);
    for (size_t i = 0; i < rects.size(); ++i) {
      EXPECT_EQ(mass[i], base.MassIn(rects[i]))
          << base.name() << " mass #" << i;
    }
    std::vector<double> centered(pts.size());
    MassInCenteredBatch(v, pts, 17.5, 9.25, centered);
    for (size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(centered[i],
                base.MassIn(Rect::Centered(pts[i], 17.5, 9.25)))
          << base.name() << " centered mass #" << i;
    }
  }
}

TEST(PdfVariantTest, BaseClassBatchDefaultsMatchScalar) {
  // The UncertaintyPdf default implementations (used by pdfs that do not
  // override the batch hooks) must satisfy the same contract.
  CustomUniformPdf pdf(Rect(0, 10, 0, 10));
  std::vector<Point> pts = {Point(1, 1), Point(-1, 5), Point(9.5, 9.5)};
  std::vector<double> out(pts.size());
  pdf.DensityBatch(pts, out);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(out[i], pdf.Density(pts[i]));
  }
  std::vector<Rect> rects = {Rect(0, 5, 0, 5), Rect(20, 30, 20, 30)};
  std::vector<double> mass(rects.size());
  pdf.MassInBatch(rects, mass);
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ(mass[i], pdf.MassIn(rects[i]));
  }
}

}  // namespace
}  // namespace ilq
