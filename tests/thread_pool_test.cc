#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace ilq {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ThreadCountMatchesConstruction) {
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(4).thread_count(), 4u);
  EXPECT_GE(ThreadPool(0).thread_count(), 1u);  // 0 = hardware
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, SingleItemRuns) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  size_t seen_index = 123;
  pool.ParallelFor(1, [&](size_t i, size_t) {
    ++calls;
    seen_index = i;
  });
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(seen_index, 0u);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  for (size_t threads : {1u, 2u, 5u}) {
    for (size_t chunk : {0u, 1u, 3u, 1000u}) {
      ThreadPool pool(threads);
      constexpr size_t kN = 777;
      std::vector<std::atomic<int>> visits(kN);
      pool.ParallelFor(
          kN, [&](size_t i, size_t) { ++visits[i]; }, chunk);
      for (size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads "
                                       << threads << " chunk " << chunk;
      }
    }
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<size_t> workers;
  pool.ParallelFor(
      200,
      [&](size_t, size_t worker) {
        std::lock_guard<std::mutex> lk(mu);
        workers.insert(worker);
      },
      /*chunk=*/1);
  EXPECT_FALSE(workers.empty());
  for (size_t w : workers) EXPECT_LT(w, pool.thread_count());
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i, size_t) {
                                  if (i == 42) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(
          10, [&](size_t, size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(50, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 50u);
}

TEST(ThreadPoolTest, ExceptionAbandonsRemainingChunks) {
  ThreadPool pool(1);  // serial: deterministic iteration order
  std::atomic<size_t> calls{0};
  EXPECT_THROW(pool.ParallelFor(1000,
                                [&](size_t i, size_t) {
                                  ++calls;
                                  if (i == 5) {
                                    throw std::runtime_error("stop");
                                  }
                                },
                                /*chunk=*/1),
               std::runtime_error);
  EXPECT_LT(calls.load(), 1000u);
}

TEST(ThreadPoolTest, NestedUseRejected) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(4,
                                [&](size_t, size_t) {
                                  pool.ParallelFor(
                                      2, [](size_t, size_t) {});
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedUseOfOtherPoolAlsoRejected) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  EXPECT_THROW(outer.ParallelFor(4,
                                 [&](size_t, size_t) {
                                   inner.ParallelFor(
                                       2, [](size_t, size_t) {});
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, ManyJobsOnOnePool) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(20, [&](size_t, size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50u * 20u);
}

TEST(ParallelForTest, FreeFunctionCoversRange) {
  for (size_t threads : {1u, 3u}) {
    std::vector<std::atomic<int>> visits(100);
    ParallelFor(threads, 100, [&](size_t i, size_t) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1);
    }
  }
}

}  // namespace
}  // namespace ilq
