#include "datagen/synthetic.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "datagen/dataset_io.h"

namespace ilq {
namespace {

TEST(SyntheticTest, CaliforniaLikeCountAndBounds) {
  SyntheticConfig config;
  config.count = 5000;
  const std::vector<PointObject> points =
      GenerateCaliforniaLikePoints(config);
  ASSERT_EQ(points.size(), 5000u);
  for (const PointObject& p : points) {
    EXPECT_TRUE(config.space.Contains(p.location));
  }
  // Ids are 1..n.
  EXPECT_EQ(points.front().id, 1u);
  EXPECT_EQ(points.back().id, 5000u);
}

TEST(SyntheticTest, DeterministicWithSeed) {
  SyntheticConfig config;
  config.count = 1000;
  config.seed = 77;
  const auto a = GenerateCaliforniaLikePoints(config);
  const auto b = GenerateCaliforniaLikePoints(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].location, b[i].location);
  }
  config.seed = 78;
  const auto c = GenerateCaliforniaLikePoints(config);
  size_t same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].location == c[i].location) ++same;
  }
  EXPECT_LT(same, 10u);
}

TEST(SyntheticTest, PointsAreSpatiallySkewed) {
  // Road-like clustering should leave some regions far denser than others:
  // compare occupancy across a coarse grid.
  SyntheticConfig config;
  config.count = 20000;
  const auto points = GenerateCaliforniaLikePoints(config);
  constexpr size_t kCells = 20;
  std::vector<size_t> histogram(kCells * kCells, 0);
  for (const PointObject& p : points) {
    const auto ix = std::min(
        kCells - 1, static_cast<size_t>(p.location.x / 10000.0 * kCells));
    const auto iy = std::min(
        kCells - 1, static_cast<size_t>(p.location.y / 10000.0 * kCells));
    ++histogram[iy * kCells + ix];
  }
  const size_t max_cell =
      *std::max_element(histogram.begin(), histogram.end());
  const double uniform_cell =
      static_cast<double>(config.count) / (kCells * kCells);
  EXPECT_GT(static_cast<double>(max_cell), 3.0 * uniform_cell);
}

TEST(SyntheticTest, LongBeachLikeRectsRespectSideBounds) {
  RectangleConfig config;
  config.base.count = 5000;
  const std::vector<Rect> rects = GenerateLongBeachLikeRects(config);
  ASSERT_EQ(rects.size(), 5000u);
  for (const Rect& r : rects) {
    EXPECT_FALSE(r.IsEmpty());
    EXPECT_GE(r.Width(), config.min_side - 1e-9);
    EXPECT_LE(r.Width(), config.max_side + 1e-9);
    EXPECT_GE(r.Height(), config.min_side - 1e-9);
    EXPECT_LE(r.Height(), config.max_side + 1e-9);
    EXPECT_TRUE(config.base.space.ContainsRect(r));
  }
}

TEST(SyntheticTest, RectSidesAreSkewedSmall) {
  RectangleConfig config;
  config.base.count = 10000;
  const std::vector<Rect> rects = GenerateLongBeachLikeRects(config);
  double mean_w = 0.0;
  for (const Rect& r : rects) mean_w += r.Width();
  mean_w /= static_cast<double>(rects.size());
  // Exponential-ish with mean ~ mean_side (clamping shifts it slightly).
  EXPECT_GT(mean_w, 0.5 * config.mean_side);
  EXPECT_LT(mean_w, 2.0 * config.mean_side);
}

TEST(SyntheticTest, UniformObjectsWrapRegions) {
  RectangleConfig config;
  config.base.count = 100;
  const std::vector<Rect> rects = GenerateLongBeachLikeRects(config);
  Result<std::vector<UncertainObject>> objects =
      MakeUniformUncertainObjects(rects);
  ASSERT_TRUE(objects.ok());
  ASSERT_EQ(objects->size(), rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ((*objects)[i].region(), rects[i]);
    EXPECT_EQ((*objects)[i].pdf().name(), "uniform");
    EXPECT_EQ((*objects)[i].id(), i + 1);
  }
}

TEST(SyntheticTest, GaussianObjectsUsePaperSigma) {
  RectangleConfig config;
  config.base.count = 50;
  const std::vector<Rect> rects = GenerateLongBeachLikeRects(config);
  Result<std::vector<UncertainObject>> objects =
      MakeGaussianUncertainObjects(rects);
  ASSERT_TRUE(objects.ok());
  for (const UncertainObject& obj : *objects) {
    EXPECT_EQ(obj.pdf().name(), "gaussian");
    // Mass concentrated centrally: central quarter-area rectangle holds
    // well over the uniform share.
    const Rect r = obj.region();
    const Rect central(r.Center().x - r.Width() / 4,
                       r.Center().x + r.Width() / 4,
                       r.Center().y - r.Height() / 4,
                       r.Center().y + r.Height() / 4);
    EXPECT_GT(obj.pdf().MassIn(central), 0.5);
  }
}

TEST(DatasetIoTest, PointsRoundtrip) {
  SyntheticConfig config;
  config.count = 200;
  const auto points = GenerateCaliforniaLikePoints(config);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ilq_points_test.csv")
          .string();
  ASSERT_TRUE(SavePointsCsv(path, points).ok());
  Result<std::vector<PointObject>> loaded = LoadPointsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_NEAR((*loaded)[i].location.x, points[i].location.x, 1e-6);
    EXPECT_NEAR((*loaded)[i].location.y, points[i].location.y, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RectsRoundtrip) {
  RectangleConfig config;
  config.base.count = 200;
  const auto rects = GenerateLongBeachLikeRects(config);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ilq_rects_test.csv")
          .string();
  ASSERT_TRUE(SaveRectsCsv(path, rects).ok());
  Result<std::vector<Rect>> loaded = LoadRectsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_NEAR((*loaded)[i].xmin, rects[i].xmin, 1e-6);
    EXPECT_NEAR((*loaded)[i].ymax, rects[i].ymax, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadRejectsMalformedLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ilq_bad_test.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1.0,2.0\nnot,a,number\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadRectsCsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  Result<std::vector<PointObject>> r =
      LoadPointsCsv("/nonexistent/path/points.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

namespace {

// Writes raw bytes for the malformed/truncated-file tests below.
std::string WriteTempFile(const char* name, const std::string& contents) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return path;
}

}  // namespace

TEST(DatasetIoTest, LoadPointsRejectsMalformedAndShortLines) {
  // A word where a number belongs, and a line with only one coordinate:
  // both must fail with the offending line number in the message.
  for (const char* bad : {"1.0,2.0\nfoo,3.0\n", "1.0,2.0\n4.5\n"}) {
    const std::string path = WriteTempFile("ilq_bad_points.csv", bad);
    Result<std::vector<PointObject>> r = LoadPointsCsv(path);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().ToString().find(":2"), std::string::npos)
        << r.status().ToString();
    std::remove(path.c_str());
  }
}

TEST(DatasetIoTest, LoadRectsRejectsTruncatedRecord) {
  // File cut off mid-record (3 of 4 coordinates, no trailing newline) — the
  // shape a partial download / interrupted save produces.
  const std::string path =
      WriteTempFile("ilq_trunc_rects.csv",
                    "# xmin,ymin,xmax,ymax\n1,2,3,4\n5,6,7");
  Result<std::vector<Rect>> r = LoadRectsCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find(":3"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadPointsRejectsTruncatedRecord) {
  const std::string path =
      WriteTempFile("ilq_trunc_points.csv", "# x,y\n10,20\n30");
  Result<std::vector<PointObject>> r = LoadPointsCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadRectsRejectsInvertedRectangle) {
  const std::string path =
      WriteTempFile("ilq_inverted_rects.csv", "5,5,1,9\n");
  Result<std::vector<Rect>> r = LoadRectsCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("inverted"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyAndCommentOnlyFilesLoadAsEmptyDatasets) {
  const std::string empty = WriteTempFile("ilq_empty.csv", "");
  const std::string comments =
      WriteTempFile("ilq_comments.csv", "# header only\n\n# more\n");
  Result<std::vector<PointObject>> p = LoadPointsCsv(empty);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->empty());
  Result<std::vector<Rect>> r = LoadRectsCsv(comments);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  std::remove(empty.c_str());
  std::remove(comments.c_str());
}

TEST(DatasetIoTest, RoundtripSurvivesExtremeCoordinates) {
  // %.10g must preserve sub-ulp detail well enough for exact equality on
  // values with short decimal expansions and keep huge/tiny magnitudes.
  const std::vector<PointObject> points = {
      {1, Point(0.0, -0.5)},
      {2, Point(1e-30, 1e30)},
      {3, Point(-123456789.5, 0.25)},
  };
  const std::string path =
      (std::filesystem::temp_directory_path() / "ilq_extreme.csv").string();
  ASSERT_TRUE(SavePointsCsv(path, points).ok());
  Result<std::vector<PointObject>> loaded = LoadPointsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ((*loaded)[i].location.x, points[i].location.x);
    EXPECT_EQ((*loaded)[i].location.y, points[i].location.y);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ilq
