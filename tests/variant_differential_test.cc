// Differential bit-identity suite for the PdfVariant fast path.
//
// The legacy evaluation path is the virtual UncertaintyPdf interface; since
// the PdfVariant refactor it is reachable by wrapping every pdf in AnyPdf
// ("veiling"), which forces each Density/MassIn/CdfX/Sample through virtual
// dispatch exactly as the pre-variant evaluators did. This suite runs every
// evaluator — basic IPQ/IUQ, enhanced IPQ/IUQ, C-IPQ, C-IUQ over R-tree and
// PTI, and the circular-issuer IUQ — over identical datasets with concrete
// variants on one side and veiled pdfs on the other, and asserts the
// AnswerSets match bit for bit: same ids, same order, same probability
// doubles. Both analytic and Monte-Carlo kernels are covered.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/circular.h"
#include "core/engine.h"
#include "geometry/circle.h"
#include "prob/disk_pdf.h"
#include "prob/pdf_variant.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

// Forces the legacy virtual path: the same pdf, but stored as the AnyPdf
// alternative so no evaluator can monomorphize over it.
UncertainObject Veil(const UncertainObject& obj) {
  return UncertainObject(obj.id(),
                         PdfVariant(AnyPdf(obj.pdf().Clone())));
}

std::vector<UncertainObject> VeilAll(
    const std::vector<UncertainObject>& objects) {
  std::vector<UncertainObject> veiled;
  veiled.reserve(objects.size());
  for (const UncertainObject& obj : objects) veiled.push_back(Veil(obj));
  return veiled;
}

// Mixed-pdf dataset: uniform, gaussian, and histogram objects interleaved
// so every QualifyPair instantiation (closed form, separable, generic) is
// exercised.
std::vector<UncertainObject> MakeMixedObjects(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < count; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 3) {
      case 0:
        objects.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        objects.emplace_back(id, MakeGaussian(region));
        break;
      default:
        objects.emplace_back(id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
    }
  }
  return objects;
}

std::vector<PointObject> MakePoints(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<PointObject> points;
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  return points;
}

void ExpectBitIdentical(const AnswerSet& fast, const AnswerSet& legacy,
                        const char* what) {
  ASSERT_EQ(fast.size(), legacy.size()) << what;
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].id, legacy[i].id) << what << " answer #" << i;
    // Exact double comparison — the refactor's contract is bit identity,
    // not tolerance.
    EXPECT_EQ(fast[i].probability, legacy[i].probability)
        << what << " answer #" << i << " (id " << fast[i].id << ")";
  }
}

class VariantDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.eval.quadrature_order = 8;  // keep generic quadrature affordable
    Result<QueryEngine> fast = QueryEngine::Build(
        MakePoints(301, 250), MakeMixedObjects(302, 90), config);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    fast_.emplace(std::move(fast).ValueOrDie());

    Result<QueryEngine> legacy = QueryEngine::Build(
        MakePoints(301, 250), VeilAll(MakeMixedObjects(302, 90)), config);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
    legacy_.emplace(std::move(legacy).ValueOrDie());
  }

  // The same issuer twice: concrete variant and veiled.
  struct IssuerPair {
    UncertainObject fast;
    UncertainObject legacy;
  };

  IssuerPair MakeIssuerPair(std::unique_ptr<UncertaintyPdf> pdf) {
    Result<UncertainObject> fast = fast_->MakeIssuer(pdf->Clone());
    ILQ_CHECK(fast.ok(), fast.status().ToString());
    // MakeIssuer would unwrap the concrete type; build the veiled issuer
    // directly so it stays on the virtual path.
    UncertainObject veiled(0, PdfVariant(AnyPdf(std::move(pdf))));
    ILQ_CHECK(
        veiled.BuildCatalog(legacy_->config().catalog_values).ok(),
        "veiled issuer catalog");
    return {std::move(fast).ValueOrDie(), std::move(veiled)};
  }

  std::optional<QueryEngine> fast_;
  std::optional<QueryEngine> legacy_;
};

TEST_F(VariantDifferentialTest, AllEvaluatorsBitIdenticalAnalytic) {
  std::vector<std::unique_ptr<UncertaintyPdf>> issuers;
  issuers.push_back(MakeUniform(Rect(350, 650, 350, 650)));
  issuers.push_back(MakeGaussian(Rect(400, 700, 300, 600)));
  issuers.push_back(MakeSkewedHistogram(Rect(300, 620, 380, 700), 3, 3, 77));

  for (auto& pdf : issuers) {
    IssuerPair issuer = MakeIssuerPair(std::move(pdf));
    const std::string who = issuer.fast.pdf().name();
    for (const RangeQuerySpec spec :
         {RangeQuerySpec(120, 120, 0.0), RangeQuerySpec(250, 180, 0.3)}) {
      SCOPED_TRACE(who + " w=" + std::to_string(spec.w));
      ExpectBitIdentical(fast_->IpqBasic(issuer.fast, spec),
                         legacy_->IpqBasic(issuer.legacy, spec), "IpqBasic");
      ExpectBitIdentical(fast_->IuqBasic(issuer.fast, spec),
                         legacy_->IuqBasic(issuer.legacy, spec), "IuqBasic");
      ExpectBitIdentical(fast_->Ipq(issuer.fast, spec),
                         legacy_->Ipq(issuer.legacy, spec), "Ipq");
      ExpectBitIdentical(fast_->Iuq(issuer.fast, spec),
                         legacy_->Iuq(issuer.legacy, spec), "Iuq");
      ExpectBitIdentical(fast_->Cipq(issuer.fast, spec),
                         legacy_->Cipq(issuer.legacy, spec), "Cipq");
      ExpectBitIdentical(
          fast_->Cipq(issuer.fast, spec, CipqFilter::kMinkowski),
          legacy_->Cipq(issuer.legacy, spec, CipqFilter::kMinkowski),
          "Cipq/minkowski");
      ExpectBitIdentical(fast_->CiuqRTree(issuer.fast, spec),
                         legacy_->CiuqRTree(issuer.legacy, spec),
                         "CiuqRTree");
      ExpectBitIdentical(fast_->CiuqPti(issuer.fast, spec),
                         legacy_->CiuqPti(issuer.legacy, spec), "CiuqPti");
    }
  }
}

TEST_F(VariantDifferentialTest, AllEvaluatorsBitIdenticalMonteCarlo) {
  EngineConfig config;
  config.eval.kernel = ProbabilityKernel::kMonteCarlo;
  config.eval.mc_samples = 120;
  Result<QueryEngine> fast = QueryEngine::Build(
      MakePoints(301, 250), MakeMixedObjects(302, 90), config);
  ASSERT_TRUE(fast.ok());
  Result<QueryEngine> legacy = QueryEngine::Build(
      MakePoints(301, 250), VeilAll(MakeMixedObjects(302, 90)), config);
  ASSERT_TRUE(legacy.ok());

  Result<UncertainObject> issuer_fast =
      fast->MakeIssuer(MakeGaussian(Rect(350, 650, 350, 650)));
  ASSERT_TRUE(issuer_fast.ok());
  UncertainObject issuer_legacy(
      0, PdfVariant(AnyPdf(MakeGaussian(Rect(350, 650, 350, 650)))));
  ASSERT_TRUE(
      issuer_legacy.BuildCatalog(legacy->config().catalog_values).ok());

  const RangeQuerySpec spec(200, 200, 0.2);
  ExpectBitIdentical(fast->Ipq(*issuer_fast, spec),
                     legacy->Ipq(issuer_legacy, spec), "Ipq/mc");
  ExpectBitIdentical(fast->Iuq(*issuer_fast, spec),
                     legacy->Iuq(issuer_legacy, spec), "Iuq/mc");
  ExpectBitIdentical(fast->Cipq(*issuer_fast, spec),
                     legacy->Cipq(issuer_legacy, spec), "Cipq/mc");
  ExpectBitIdentical(fast->CiuqRTree(*issuer_fast, spec),
                     legacy->CiuqRTree(issuer_legacy, spec), "CiuqRTree/mc");
  ExpectBitIdentical(fast->CiuqPti(*issuer_fast, spec),
                     legacy->CiuqPti(issuer_legacy, spec), "CiuqPti/mc");
}

TEST_F(VariantDifferentialTest, CircularIuqBitIdentical) {
  Result<UniformDiskPdf> disk =
      UniformDiskPdf::Make(Circle(Point(500, 500), 140));
  ASSERT_TRUE(disk.ok());
  const RangeQuerySpec spec(150, 150);
  EvalOptions options;
  options.quadrature_order = 8;

  const AnswerSet fast =
      EvaluateIUQCircular(fast_->uncertain_index(), fast_->uncertains(),
                          *disk, spec, options);
  const AnswerSet legacy =
      EvaluateIUQCircular(legacy_->uncertain_index(), legacy_->uncertains(),
                          *disk, spec, options);
  ExpectBitIdentical(fast, legacy, "IuqCircular");
  EXPECT_FALSE(fast.empty());

  EvalOptions mc = options;
  mc.kernel = ProbabilityKernel::kMonteCarlo;
  mc.mc_samples = 150;
  const AnswerSet fast_mc =
      EvaluateIUQCircular(fast_->uncertain_index(), fast_->uncertains(),
                          *disk, spec, mc);
  const AnswerSet legacy_mc =
      EvaluateIUQCircular(legacy_->uncertain_index(), legacy_->uncertains(),
                          *disk, spec, mc);
  ExpectBitIdentical(fast_mc, legacy_mc, "IuqCircular/mc");
}

// The engine's answers must also not have drifted from the pre-variant
// semantics: spot-check that veiled and concrete agree with an independent
// reference on a couple of candidates (guards against both paths being
// wrong in the same way at the dispatch layer).
TEST_F(VariantDifferentialTest, FastPathMatchesReferenceIntegration) {
  Result<UncertainObject> issuer =
      fast_->MakeIssuer(MakeUniform(Rect(400, 600, 400, 600)));
  ASSERT_TRUE(issuer.ok());
  const RangeQuerySpec spec(150, 150);
  const AnswerSet answers = fast_->Iuq(*issuer, spec);
  ASSERT_FALSE(answers.empty());
  size_t checked = 0;
  for (const ProbabilisticAnswer& a : answers) {
    if (checked >= 3) break;
    const UncertainObject* obj = nullptr;
    for (const UncertainObject& o : fast_->uncertains()) {
      if (o.id() == a.id) obj = &o;
    }
    ASSERT_NE(obj, nullptr);
    const double reference = ::ilq::testing::ReferenceUncertainQualification(
        issuer->pdf(), obj->pdf(), spec.w, spec.h, 150);
    EXPECT_NEAR(a.probability, reference, 0.02);
    ++checked;
  }
}

}  // namespace
}  // namespace ilq
