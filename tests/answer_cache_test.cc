// Unit + concurrency tests for the serving layer's sharded LRU answer
// cache: hit/miss semantics, key sensitivity (every field of CacheKey
// distinguishes entries), per-shard LRU eviction, counters, the disabled
// (capacity 0) mode, and a multi-threaded hammer that TSan races.

#include "serve/answer_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ilq {
namespace {

CacheKey KeyFor(uint64_t issuer, double w = 100.0,
                QueryMethod method = QueryMethod::kIpq) {
  CacheKey key;
  key.issuer_id = issuer;
  key.method = method;
  key.w = w;
  key.h = w;
  key.threshold = 0.0;
  return key;
}

AnswerSet Answers(ObjectId id, double probability) {
  return AnswerSet{{id, probability}};
}

TEST(AnswerCacheTest, InsertThenLookupRoundtrips) {
  AnswerCache cache(/*capacity=*/16);
  EXPECT_FALSE(cache.Lookup(KeyFor(1)).has_value());
  cache.Insert(KeyFor(1), Answers(42, 0.5));
  const auto hit = cache.Lookup(KeyFor(1));
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].id, 42u);
  EXPECT_EQ((*hit)[0].probability, 0.5);

  const AnswerCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.insertions, 1u);
  EXPECT_EQ(counters.entries, 1u);
}

TEST(AnswerCacheTest, EveryKeyFieldDistinguishes) {
  AnswerCache cache(/*capacity=*/64);
  cache.Insert(KeyFor(1), Answers(1, 0.1));

  EXPECT_FALSE(cache.Lookup(KeyFor(2)).has_value());  // issuer id
  EXPECT_FALSE(
      cache.Lookup(KeyFor(1, 100.0, QueryMethod::kIuq)).has_value());
  EXPECT_FALSE(cache.Lookup(KeyFor(1, 101.0)).has_value());  // spec w/h

  CacheKey threshold = KeyFor(1);
  threshold.threshold = 0.5;
  EXPECT_FALSE(cache.Lookup(threshold).has_value());

  CacheKey prune = KeyFor(1);
  prune.strategy3 = false;
  EXPECT_FALSE(cache.Lookup(prune).has_value());

  EXPECT_TRUE(cache.Lookup(KeyFor(1)).has_value());
}

TEST(AnswerCacheTest, LruEvictsOldestAndRefreshesOnLookup) {
  // One shard makes the LRU order deterministic and observable.
  AnswerCache cache(/*capacity=*/2, /*shards=*/1);
  cache.Insert(KeyFor(1), Answers(1, 0.1));
  cache.Insert(KeyFor(2), Answers(2, 0.2));
  ASSERT_TRUE(cache.Lookup(KeyFor(1)).has_value());  // 1 is now MRU

  cache.Insert(KeyFor(3), Answers(3, 0.3));  // evicts 2 (LRU), not 1
  EXPECT_TRUE(cache.Lookup(KeyFor(1)).has_value());
  EXPECT_FALSE(cache.Lookup(KeyFor(2)).has_value());
  EXPECT_TRUE(cache.Lookup(KeyFor(3)).has_value());
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(AnswerCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  AnswerCache cache(/*capacity=*/4, /*shards=*/1);
  cache.Insert(KeyFor(1), Answers(1, 0.1));
  cache.Insert(KeyFor(1), Answers(1, 0.9));
  EXPECT_EQ(cache.counters().entries, 1u);
  const auto hit = cache.Lookup(KeyFor(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].probability, 0.9);
}

TEST(AnswerCacheTest, ZeroCapacityDisablesEverything) {
  AnswerCache cache(/*capacity=*/0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(KeyFor(1), Answers(1, 0.1));
  EXPECT_FALSE(cache.Lookup(KeyFor(1)).has_value());
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_EQ(cache.counters().insertions, 0u);
}

TEST(AnswerCacheTest, ConcurrentMixedTrafficIsSafe) {
  // 4 threads inserting and looking up overlapping key ranges across the
  // shard locks; TSan validates the locking, the asserts validate that
  // every hit returns the exact answers stored for that key.
  AnswerCache cache(/*capacity=*/64, /*shards=*/4);
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 1998;  // divisible by 3: exact op counts
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const uint64_t issuer = (t * 31 + i) % 100;
        if (i % 3 == 0) {
          cache.Insert(KeyFor(issuer),
                       Answers(static_cast<ObjectId>(issuer),
                               static_cast<double>(issuer) / 100.0));
        } else if (const auto hit = cache.Lookup(KeyFor(issuer))) {
          ASSERT_EQ(hit->size(), 1u);
          EXPECT_EQ((*hit)[0].id, issuer);
          EXPECT_EQ((*hit)[0].probability,
                    static_cast<double>(issuer) / 100.0);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const AnswerCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits + counters.misses,
            kThreads * kOpsPerThread * 2 / 3);
  EXPECT_LE(counters.entries, 64u);
}

}  // namespace
}  // namespace ilq
