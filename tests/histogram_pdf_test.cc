#include "prob/histogram_pdf.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/integrate.h"

namespace ilq {
namespace {

HistogramPdf Make(const Rect& region, size_t nx, size_t ny,
                  std::vector<double> weights) {
  Result<HistogramPdf> made =
      HistogramPdf::Make(region, nx, ny, std::move(weights));
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  return std::move(made).ValueOrDie();
}

TEST(HistogramPdfTest, RejectsBadArguments) {
  EXPECT_FALSE(HistogramPdf::Make(Rect::Empty(), 2, 2, {1, 1, 1, 1}).ok());
  EXPECT_FALSE(HistogramPdf::Make(Rect(0, 1, 0, 1), 0, 2, {}).ok());
  EXPECT_FALSE(HistogramPdf::Make(Rect(0, 1, 0, 1), 2, 2, {1, 1}).ok());
  EXPECT_FALSE(
      HistogramPdf::Make(Rect(0, 1, 0, 1), 2, 2, {1, -1, 1, 1}).ok());
  EXPECT_FALSE(
      HistogramPdf::Make(Rect(0, 1, 0, 1), 2, 2, {0, 0, 0, 0}).ok());
}

TEST(HistogramPdfTest, UniformWeightsBehaveUniformly) {
  const HistogramPdf pdf = Make(Rect(0, 4, 0, 4), 4, 4,
                                std::vector<double>(16, 1.0));
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(0, 2, 0, 4)), 0.5);
  EXPECT_DOUBLE_EQ(pdf.Density(Point(1, 1)), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(pdf.CdfX(1), 0.25);
}

TEST(HistogramPdfTest, TotalMassIsOne) {
  Rng rng(4);
  std::vector<double> w(24);
  for (double& v : w) v = rng.NextDouble() + 0.01;
  const HistogramPdf pdf = Make(Rect(-3, 9, 2, 10), 6, 4, w);
  EXPECT_NEAR(pdf.MassIn(Rect(-100, 100, -100, 100)), 1.0, 1e-12);
}

TEST(HistogramPdfTest, MassInPartialCells) {
  // 2x1 grid: left cell 75% of mass, right cell 25%.
  const HistogramPdf pdf = Make(Rect(0, 2, 0, 1), 2, 1, {3, 1});
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(0, 1, 0, 1)), 0.75);
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(0, 0.5, 0, 1)), 0.375);  // half a cell
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(0.5, 1.5, 0, 1)), 0.375 + 0.125);
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(0, 2, 0, 0.5)), 0.5);
}

TEST(HistogramPdfTest, DensityStepsBetweenCells) {
  const HistogramPdf pdf = Make(Rect(0, 2, 0, 1), 2, 1, {3, 1});
  EXPECT_DOUBLE_EQ(pdf.Density(Point(0.5, 0.5)), 0.75);
  EXPECT_DOUBLE_EQ(pdf.Density(Point(1.5, 0.5)), 0.25);
  EXPECT_DOUBLE_EQ(pdf.Density(Point(2.5, 0.5)), 0.0);
}

TEST(HistogramPdfTest, CdfPiecewiseLinear) {
  const HistogramPdf pdf = Make(Rect(0, 2, 0, 1), 2, 1, {3, 1});
  EXPECT_DOUBLE_EQ(pdf.CdfX(0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.CdfX(0.5), 0.375);
  EXPECT_DOUBLE_EQ(pdf.CdfX(1.0), 0.75);
  EXPECT_DOUBLE_EQ(pdf.CdfX(1.5), 0.875);
  EXPECT_DOUBLE_EQ(pdf.CdfX(2.0), 1.0);
}

TEST(HistogramPdfTest, QuantileInvertsCdf) {
  const HistogramPdf pdf = Make(Rect(0, 2, 0, 2), 2, 2, {3, 1, 2, 2});
  for (double p = 0.05; p < 1.0; p += 0.07) {
    EXPECT_NEAR(pdf.CdfX(pdf.QuantileX(p)), p, 1e-9) << "p=" << p;
    EXPECT_NEAR(pdf.CdfY(pdf.QuantileY(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(HistogramPdfTest, MarginalsIntegrateToOne) {
  const HistogramPdf pdf = Make(Rect(0, 3, 0, 2), 3, 2, {1, 5, 2, 4, 1, 3});
  // The marginal density is piecewise constant — integrate cell by cell so
  // quadrature is exact.
  double mx = 0.0;
  for (int c = 0; c < 3; ++c) {
    mx += IntegrateGL([&](double x) { return pdf.MarginalPdfX(x); }, c,
                      c + 1, 8);
  }
  EXPECT_NEAR(mx, 1.0, 1e-12);
  double my = 0.0;
  for (int c = 0; c < 2; ++c) {
    my += IntegrateGL([&](double y) { return pdf.MarginalPdfY(y); }, c,
                      c + 1, 8);
  }
  EXPECT_NEAR(my, 1.0, 1e-12);
}

TEST(HistogramPdfTest, BreakpointsReportInteriorCellLines) {
  const HistogramPdf pdf = Make(Rect(0, 3, 0, 2), 3, 2,
                                std::vector<double>(6, 1.0));
  std::vector<double> bx;
  pdf.AppendBreakpointsX(&bx);
  ASSERT_EQ(bx.size(), 2u);
  EXPECT_DOUBLE_EQ(bx[0], 1.0);
  EXPECT_DOUBLE_EQ(bx[1], 2.0);
  std::vector<double> by;
  pdf.AppendBreakpointsY(&by);
  ASSERT_EQ(by.size(), 1u);
  EXPECT_DOUBLE_EQ(by[0], 1.0);
}

TEST(HistogramPdfTest, SamplingMatchesCellMasses) {
  const HistogramPdf pdf = Make(Rect(0, 2, 0, 1), 2, 1, {3, 1});
  Rng rng(8);
  const int n = 100000;
  int left = 0;
  for (int i = 0; i < n; ++i) {
    const Point p = pdf.Sample(&rng);
    ASSERT_TRUE(pdf.bounds().Contains(p));
    if (p.x < 1.0) ++left;
  }
  EXPECT_NEAR(static_cast<double>(left) / n, 0.75, 0.01);
}

TEST(HistogramPdfTest, NotProduct) {
  const HistogramPdf pdf = Make(Rect(0, 2, 0, 1), 2, 1, {3, 1});
  EXPECT_FALSE(pdf.IsProduct());
}

// --- Edge cases ------------------------------------------------------------

TEST(HistogramPdfTest, ZeroMassBinsAreDeadRegions) {
  // Mass only in the two corner cells of the main diagonal.
  const HistogramPdf pdf = Make(Rect(0, 2, 0, 2), 2, 2, {1, 0, 0, 1});
  // Dead cells: zero density, zero mass.
  EXPECT_DOUBLE_EQ(pdf.Density(Point(1.5, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Density(Point(0.5, 1.5)), 0.0);
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(1, 2, 0, 1)), 0.0);
  // Live cells carry half the mass each; total still normalizes to 1.
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(0, 1, 0, 1)), 0.5);
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(1, 2, 1, 2)), 0.5);
  EXPECT_NEAR(pdf.MassIn(pdf.bounds()), 1.0, 1e-12);
  // The x-marginal is flat (each column holds 0.5) even though the joint
  // density is anything but uniform.
  EXPECT_DOUBLE_EQ(pdf.MarginalPdfX(0.5), 0.5);
  EXPECT_DOUBLE_EQ(pdf.MarginalPdfX(1.5), 0.5);
  // Sampling never lands in a dead cell.
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const Point p = pdf.Sample(&rng);
    EXPECT_GT(pdf.Density(p), 0.0) << p.x << "," << p.y;
  }
}

TEST(HistogramPdfTest, ZeroMassRowStillQuantiles) {
  // Middle row empty: the y-CDF has a flat plateau across [1, 2].
  const HistogramPdf pdf =
      Make(Rect(0, 1, 0, 3), 1, 3, {1, 0, 1});
  EXPECT_DOUBLE_EQ(pdf.CdfY(1.0), 0.5);
  EXPECT_DOUBLE_EQ(pdf.CdfY(1.7), 0.5);
  EXPECT_DOUBLE_EQ(pdf.CdfY(2.0), 0.5);
  // The quantile at the plateau value must return a point of the plateau
  // (smallest y with CdfY >= p).
  const double q = pdf.QuantileY(0.5);
  EXPECT_NEAR(pdf.CdfY(q), 0.5, 1e-9);
  EXPECT_LE(q, 2.0 + 1e-9);
}

TEST(HistogramPdfTest, QueryRectFullyOutsideSupport) {
  const HistogramPdf pdf = Make(Rect(0, 2, 0, 2), 2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(5, 9, 5, 9)), 0.0);     // disjoint
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(-4, -1, 0, 2)), 0.0);   // left of support
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(0, 2, 2, 5)), 0.0);     // touching edge
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect::Empty()), 0.0);        // empty rect
  EXPECT_DOUBLE_EQ(pdf.Density(Point(-0.001, 1)), 0.0);
  EXPECT_DOUBLE_EQ(pdf.CdfX(-3), 0.0);
  EXPECT_DOUBLE_EQ(pdf.CdfX(7), 1.0);
}

TEST(HistogramPdfTest, SingleBinHistogramIsUniform) {
  const HistogramPdf pdf = Make(Rect(1, 3, 2, 6), 1, 1, {42.0});
  EXPECT_EQ(pdf.nx(), 1u);
  EXPECT_EQ(pdf.ny(), 1u);
  // One cell over a 2x4 region: density 1/8 everywhere inside.
  EXPECT_DOUBLE_EQ(pdf.Density(Point(2, 4)), 0.125);
  EXPECT_DOUBLE_EQ(pdf.Density(Point(1, 2)), 0.125);   // corner (closed set)
  EXPECT_DOUBLE_EQ(pdf.Density(Point(3, 6)), 0.125);   // far corner clamps
  EXPECT_DOUBLE_EQ(pdf.MassIn(Rect(1, 2, 2, 6)), 0.5);
  EXPECT_DOUBLE_EQ(pdf.CdfX(2), 0.5);
  EXPECT_DOUBLE_EQ(pdf.CdfY(4), 0.5);
  // No interior discontinuities to report.
  std::vector<double> bx, by;
  pdf.AppendBreakpointsX(&bx);
  pdf.AppendBreakpointsY(&by);
  EXPECT_TRUE(bx.empty());
  EXPECT_TRUE(by.empty());
  // Quantiles are the plain linear inverse.
  EXPECT_NEAR(pdf.QuantileX(0.25), 1.5, 1e-9);
  EXPECT_NEAR(pdf.QuantileY(0.75), 5.0, 1e-9);
}

TEST(HistogramPdfTest, BatchEntryPointsHandleEdgeShapes) {
  // Batched calls on degenerate histograms (single bin, dead bins) must
  // match the scalar ops exactly — these shapes stress the clamping paths.
  const HistogramPdf single = Make(Rect(0, 1, 0, 1), 1, 1, {1.0});
  const HistogramPdf sparse = Make(Rect(0, 2, 0, 2), 2, 2, {1, 0, 0, 1});
  const std::vector<Point> pts = {Point(0, 0),     Point(1, 1),
                                  Point(0.5, 0.5), Point(1.5, 0.5),
                                  Point(2, 2),     Point(-1, -1)};
  const std::vector<Rect> rects = {Rect(0, 1, 0, 1), Rect(1, 2, 0, 1),
                                   Rect(5, 6, 5, 6), Rect::Empty()};
  for (const HistogramPdf* pdf : {&single, &sparse}) {
    std::vector<double> d(pts.size());
    pdf->DensityBatch(pts, d);
    for (size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(d[i], pdf->Density(pts[i])) << i;
    }
    std::vector<double> m(rects.size());
    pdf->MassInBatch(rects, m);
    for (size_t i = 0; i < rects.size(); ++i) {
      EXPECT_EQ(m[i], pdf->MassIn(rects[i])) << i;
    }
  }
}

}  // namespace
}  // namespace ilq
