// Fault-injection suite for the socket serving tier (ISSUE: satellite 2).
// Each scenario drives a real ShardServer over localhost with a
// misbehaving peer and asserts (a) the documented Status/error-frame code
// and (b) that the server keeps serving well-behaved connections:
//
//   * malformed request payload  -> kError frame, same connection serves on
//   * oversized frame            -> kError frame (kOutOfRange), close
//   * mid-frame disconnect       -> connection dropped (io_errors counter),
//                                   other connections unaffected
//   * slow peer                  -> kError frame (kDeadlineExceeded), close
//   * connection limit           -> kError frame (kFailedPrecondition)
//   * shard restart              -> router reconnects and retries, query
//                                   succeeds (retries counter moves)

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "serve/sharded_engine.h"
#include "test_util.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

ShardedEngine MakeSmallEngine() {
  Rng rng(55);
  std::vector<PointObject> points;
  std::vector<UncertainObject> uncertains;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < 50; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
    uncertains.emplace_back(static_cast<ObjectId>(i + 1),
                            MakeUniform(RandomRect(&rng, space, 15, 70)));
  }
  ShardedEngineConfig config;
  config.shards = 1;
  auto engine = ShardedEngine::Build(std::move(points),
                                     std::move(uncertains), config);
  ILQ_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).ValueOrDie();
}

std::vector<uint8_t> ValidRequestBytes() {
  WireRequest request;
  request.issuer_id = 9;
  request.issuer_pdf =
      PdfVariant(UniformRectPdf::Make(Rect(100, 300, 100, 300))
                     .ValueOrDie());
  request.method = QueryMethod::kIpq;
  request.spec.query.w = 150.0;
  request.spec.query.h = 150.0;
  ByteWriter writer;
  const Status status = EncodeRequest(request, &writer);
  ILQ_CHECK(status.ok(), status.ToString());
  return std::move(writer).Take();
}

Socket ConnectTo(const ShardServer& server) {
  auto socket = Socket::Connect("127.0.0.1", server.port());
  ILQ_CHECK(socket.ok(), socket.status().ToString());
  return std::move(socket).ValueOrDie();
}

// Sends one valid request over \p socket and expects a kResponse frame.
void ExpectServedOn(Socket& socket) {
  ASSERT_TRUE(
      WriteFrame(socket, FrameType::kRequest, ValidRequestBytes()).ok());
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFrame(socket, kDefaultMaxFrameBytes, &type, &payload).ok());
  ASSERT_EQ(type, FrameType::kResponse);
  auto response = DecodeResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->answers.empty());
}

// Reads one frame and expects a kError payload with \p code.
void ExpectErrorFrame(Socket& socket, StatusCode code) {
  FrameType type = FrameType::kResponse;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFrame(socket, kDefaultMaxFrameBytes, &type, &payload).ok());
  ASSERT_EQ(type, FrameType::kError);
  Status error = Status::OK();
  ASSERT_TRUE(DecodeError(payload, &error).ok());
  EXPECT_EQ(error.code(), code) << error.ToString();
}

TEST(NetFaultTest, MalformedPayloadGetsErrorFrameAndConnectionServesOn) {
  ShardedEngine engine = MakeSmallEngine();
  ShardServer server(engine);
  ASSERT_TRUE(server.Start().ok());

  Socket socket = ConnectTo(server);
  // Garbage payload in a well-formed frame: per-message rejection.
  const std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(WriteFrame(socket, FrameType::kRequest, garbage).ok());
  {
    FrameType type = FrameType::kResponse;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(
        ReadFrame(socket, kDefaultMaxFrameBytes, &type, &payload).ok());
    ASSERT_EQ(type, FrameType::kError);
    Status error = Status::OK();
    ASSERT_TRUE(DecodeError(payload, &error).ok());
    EXPECT_FALSE(error.ok());
  }
  // The SAME connection still serves valid requests afterwards.
  ExpectServedOn(socket);
  EXPECT_GE(server.stats().requests_rejected, 1u);
  server.Stop();
}

TEST(NetFaultTest, OversizedFrameIsRejectedWithOutOfRangeAndClosed) {
  ShardedEngine engine = MakeSmallEngine();
  ShardServerOptions options;
  options.max_frame_bytes = 256;  // tiny limit; our pdfs fit well below
  ShardServer server(engine, options);
  ASSERT_TRUE(server.Start().ok());

  Socket socket = ConnectTo(server);
  // A header declaring a payload far above the server's limit. The server
  // must reject BEFORE reading/allocating the payload — which it proves by
  // answering even though we never send those bytes.
  ByteWriter header;
  EncodeFrameHeader(FrameType::kRequest, 1 << 30, &header);
  ASSERT_TRUE(socket.SendAll(header.bytes()).ok());
  ExpectErrorFrame(socket, StatusCode::kOutOfRange);
  // The stream cannot be resynced: server closes after the error frame.
  uint8_t byte = 0;
  EXPECT_EQ(socket.RecvExact(&byte, 1).code(), StatusCode::kNotFound);

  // The server keeps serving fresh connections.
  Socket fresh = ConnectTo(server);
  ExpectServedOn(fresh);
  server.Stop();
}

TEST(NetFaultTest, MidFrameDisconnectLeavesOtherConnectionsServing) {
  ShardedEngine engine = MakeSmallEngine();
  ShardServer server(engine);
  ASSERT_TRUE(server.Start().ok());

  Socket healthy = ConnectTo(server);
  ExpectServedOn(healthy);  // established and served before the fault

  {
    Socket doomed = ConnectTo(server);
    // Header promises 64 payload bytes; send 10 and vanish.
    ByteWriter header;
    EncodeFrameHeader(FrameType::kRequest, 64, &header);
    ASSERT_TRUE(doomed.SendAll(header.bytes()).ok());
    const std::vector<uint8_t> partial(10, 0xAA);
    ASSERT_TRUE(doomed.SendAll(partial).ok());
  }  // doomed closes mid-frame here

  // The drop is counted as an I/O error (poll briefly; the handler races
  // the assertion) and the healthy connection is untouched.
  for (int i = 0; i < 100 && server.stats().io_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.stats().io_errors, 1u);
  ExpectServedOn(healthy);
  // The counter bumps after the response hits the socket, so the client
  // can see the answer slightly before the stat — poll.
  for (int i = 0; i < 100 && server.stats().requests_ok < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().requests_ok, 2u);
  server.Stop();
}

TEST(NetFaultTest, SlowPeerIsDroppedWithDeadlineExceeded) {
  ShardedEngine engine = MakeSmallEngine();
  ShardServerOptions options;
  options.recv_timeout_ms = 100;
  ShardServer server(engine, options);
  ASSERT_TRUE(server.Start().ok());

  Socket socket = ConnectTo(server);
  // Half a header, then silence — the server's receive deadline fires.
  const std::vector<uint8_t> stall = {0x01, 0x02, 0x03};
  ASSERT_TRUE(socket.SendAll(stall).ok());
  ExpectErrorFrame(socket, StatusCode::kDeadlineExceeded);
  uint8_t byte = 0;
  EXPECT_EQ(socket.RecvExact(&byte, 1).code(), StatusCode::kNotFound);

  Socket fresh = ConnectTo(server);
  ExpectServedOn(fresh);
  server.Stop();
}

TEST(NetFaultTest, ConnectionLimitRefusesWithFailedPrecondition) {
  ShardedEngine engine = MakeSmallEngine();
  ShardServerOptions options;
  options.max_connections = 1;
  ShardServer server(engine, options);
  ASSERT_TRUE(server.Start().ok());

  Socket first = ConnectTo(server);
  ExpectServedOn(first);  // occupies the single slot

  Socket second = ConnectTo(server);
  ExpectErrorFrame(second, StatusCode::kFailedPrecondition);
  EXPECT_GE(server.stats().connections_refused, 1u);

  // The admitted connection is unaffected; freeing the slot admits again.
  ExpectServedOn(first);
  first.Close();
  for (int i = 0; i < 100; ++i) {
    Socket retry = ConnectTo(server);
    ASSERT_TRUE(
        WriteFrame(retry, FrameType::kRequest, ValidRequestBytes()).ok());
    FrameType type = FrameType::kError;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(
        ReadFrame(retry, kDefaultMaxFrameBytes, &type, &payload).ok());
    if (type == FrameType::kResponse) {
      server.Stop();
      return;  // slot was reclaimed
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "closed connection's slot was never reclaimed";
}

TEST(NetFaultTest, RouterRetriesAcrossShardRestart) {
  ShardedEngine engine = MakeSmallEngine();
  auto server = std::make_unique<ShardServer>(engine);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  RouterOptions options;
  options.endpoints = {{"127.0.0.1", port}};
  options.map = engine.ExportShardMap();
  options.timeout_ms = 2000;
  options.retries = 1;
  auto router = Router::Make(std::move(options));
  ASSERT_TRUE(router.ok());

  UncertainObject issuer(9u, MakeUniform(Rect(100, 300, 100, 300)));
  BatchSpec spec;
  spec.query.w = 150.0;
  spec.query.h = 150.0;
  auto before = router->Query(issuer, QueryMethod::kIpq, spec);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Kill the shard and restart it on the SAME port (SO_REUSEADDR): the
  // router's cached connection is now dead.
  server->Stop();
  server.reset();
  ShardServerOptions restart_options;
  restart_options.port = port;
  server = std::make_unique<ShardServer>(engine, restart_options);
  ASSERT_TRUE(server->Start().ok());
  ASSERT_EQ(server->port(), port);

  auto after = router->Query(issuer, QueryMethod::kIpq, spec);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GE(router->stats().retries, 1u);
  EXPECT_EQ(router->stats().failures, 0u);

  // Same catalog, same engine: identical answers across the restart.
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].id, (*after)[i].id);
    EXPECT_EQ((*before)[i].probability, (*after)[i].probability);
  }
  server->Stop();

  // With the fleet gone for good, the query fails with a transport error
  // after exhausting retries — not a hang, not partial answers.
  auto dead = router->Query(issuer, QueryMethod::kIpq, spec);
  EXPECT_FALSE(dead.ok());
  EXPECT_GE(router->stats().failures, 1u);
}

TEST(NetFaultTest, BoundedConnectServesNormallyOverBlockingIO) {
  // The timeout path connects non-blocking and must restore blocking mode
  // before handing the socket over — proven by a full request/response
  // round-trip over the same socket.
  ShardedEngine engine = MakeSmallEngine();
  ShardServer server(engine);
  ASSERT_TRUE(server.Start().ok());

  auto connected =
      Socket::Connect("127.0.0.1", server.port(), /*timeout_ms=*/2000);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Socket socket = std::move(connected).ValueOrDie();
  ExpectServedOn(socket);
  server.Stop();
}

}  // namespace
}  // namespace ilq
