#include "core/circular.h"

#include <gtest/gtest.h>

#include <map>

#include "core/duality.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

UniformDiskPdf MakeDisk(const Circle& c) {
  Result<UniformDiskPdf> made = UniformDiskPdf::Make(c);
  EXPECT_TRUE(made.ok());
  return std::move(made).ValueOrDie();
}

struct PointFixture {
  std::vector<PointObject> objects;
  RTree index;
};

PointFixture MakePoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<PointObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < n; ++i) {
    const Point p(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    objects.emplace_back(static_cast<ObjectId>(i + 1), p);
    items.push_back({Rect::AtPoint(p), static_cast<ObjectId>(i + 1)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  EXPECT_TRUE(tree.ok());
  return {std::move(objects), std::move(tree).ValueOrDie()};
}

TEST(CircularIpqTest, MatchesBruteForce) {
  PointFixture fixture = MakePoints(3000, 171);
  const UniformDiskPdf issuer = MakeDisk(Circle(Point(500, 500), 120));
  const RangeQuerySpec spec(150, 130);
  const AnswerSet got =
      EvaluateIPQCircular(fixture.index, issuer, spec);
  std::map<ObjectId, double> by_id;
  for (const auto& a : got) by_id[a.id] = a.probability;
  size_t qualifying = 0;
  for (const PointObject& s : fixture.objects) {
    const double pi = PointQualification(issuer, s.location, spec.w, spec.h);
    if (pi > 0) {
      ++qualifying;
      ASSERT_TRUE(by_id.count(s.id)) << "missed object " << s.id;
      EXPECT_NEAR(by_id[s.id], pi, 1e-12);
    } else {
      EXPECT_FALSE(by_id.count(s.id));
    }
  }
  EXPECT_EQ(got.size(), qualifying);
}

TEST(CircularIpqTest, RoundedRectRefinementPrunesCorners) {
  // A point in the bounding box of the rounded rect but outside its corner
  // arc has zero probability and must not be returned.
  std::vector<RTree::Item> items = {
      {Rect::AtPoint(Point(649, 649)), 1},   // corner of bbox, outside arc
      {Rect::AtPoint(Point(500, 500)), 2}};  // centre, certainly inside
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ASSERT_TRUE(tree.ok());
  const UniformDiskPdf issuer = MakeDisk(Circle(Point(500, 500), 50));
  const AnswerSet got =
      EvaluateIPQCircular(*tree, issuer, RangeQuerySpec(100, 100));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 2u);
  EXPECT_NEAR(got[0].probability, 1.0, 1e-12);
}

TEST(CircularCipqTest, ThresholdSubsetsUnconstrained) {
  PointFixture fixture = MakePoints(2000, 172);
  const UniformDiskPdf issuer = MakeDisk(Circle(Point(400, 600), 150));
  for (double qp : {0.2, 0.5, 0.8}) {
    const RangeQuerySpec spec(180, 180, qp);
    const AnswerSet constrained =
        EvaluateCIPQCircular(fixture.index, issuer, spec);
    const AnswerSet all = EvaluateIPQCircular(fixture.index, issuer, spec);
    std::map<ObjectId, double> all_by_id;
    for (const auto& a : all) all_by_id[a.id] = a.probability;
    for (const auto& a : constrained) {
      EXPECT_GE(a.probability, qp);
      EXPECT_NEAR(a.probability, all_by_id[a.id], 1e-12);
    }
    // No qualifying answer lost.
    size_t expected = 0;
    for (const auto& [id, p] : all_by_id) {
      if (p >= qp) ++expected;
    }
    EXPECT_EQ(constrained.size(), expected) << "qp=" << qp;
  }
}

TEST(CircularCipqTest, FewerCandidatesAtHighThreshold) {
  PointFixture fixture = MakePoints(20000, 173);
  const UniformDiskPdf issuer = MakeDisk(Circle(Point(500, 500), 150));
  IndexStats low;
  EvaluateCIPQCircular(fixture.index, issuer, RangeQuerySpec(200, 200, 0.0),
                       &low);
  IndexStats high;
  EvaluateCIPQCircular(fixture.index, issuer, RangeQuerySpec(200, 200, 0.7),
                       &high);
  EXPECT_LT(high.candidates, low.candidates);
}

TEST(CircularIuqTest, MatchesMonteCarloReference) {
  Rng rng(174);
  std::vector<UncertainObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 40; ++i) {
    const Rect region = RandomRect(&rng, Rect(300, 800, 300, 800), 20, 80);
    objects.emplace_back(static_cast<ObjectId>(i + 1), MakeUniform(region));
    items.push_back({region, static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ASSERT_TRUE(tree.ok());
  const UniformDiskPdf issuer = MakeDisk(Circle(Point(550, 550), 100));
  const RangeQuerySpec spec(120, 120);
  const AnswerSet analytic =
      EvaluateIUQCircular(*tree, objects, issuer, spec, {});
  EvalOptions mc;
  mc.kernel = ProbabilityKernel::kMonteCarlo;
  mc.mc_samples = 60000;
  const AnswerSet sampled =
      EvaluateIUQCircular(*tree, objects, issuer, spec, mc);
  std::map<ObjectId, double> truth;
  for (const auto& a : analytic) truth[a.id] = a.probability;
  ASSERT_FALSE(analytic.empty());
  for (const auto& a : sampled) {
    ASSERT_TRUE(truth.count(a.id));
    EXPECT_NEAR(a.probability, truth[a.id], 0.02) << "object " << a.id;
  }
}

TEST(CircularIuqTest, ProbabilitiesInUnitRange) {
  Rng rng(175);
  std::vector<UncertainObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 100; ++i) {
    const Rect region = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 100);
    objects.emplace_back(static_cast<ObjectId>(i + 1), MakeUniform(region));
    items.push_back({region, static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  ASSERT_TRUE(tree.ok());
  const UniformDiskPdf issuer = MakeDisk(Circle(Point(500, 500), 200));
  const AnswerSet got =
      EvaluateIUQCircular(*tree, objects, issuer, RangeQuerySpec(150, 150),
                          {});
  for (const auto& a : got) {
    EXPECT_GT(a.probability, 0.0);
    EXPECT_LE(a.probability, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace ilq
