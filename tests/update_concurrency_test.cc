// Concurrency tests for epoch-versioned updates (run under TSan via the
// `thread` label): queries racing ApplyUpdates must each observe exactly
// one published epoch — never a torn mix of two — at every layer
// (QueryEngine snapshots, ShardedEngine shard sets, AsyncServer's
// epoch-tagged answer cache).
//
// The detector: every update batch inserts exactly one point (id base+e in
// batch e) into a window the reader queries with probability threshold 0,
// so any answer's dynamic-id set must be a contiguous prefix
// {base+1, ..., base+m}. A reader that mixed epochs would observe a gap.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/sharded_engine.h"
#include "serve/async_server.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeUniform;

constexpr ObjectId kDynamicBase = 1000;

EngineConfig FastConfig() {
  EngineConfig config;
  config.eval.quadrature_order = 8;
  config.pti_rebuild_min_updates = 4;  // rebuilds race the readers too
  return config;
}

std::vector<PointObject> BasePoints(size_t count) {
  Rng rng(61);
  std::vector<PointObject> points;
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  return points;
}

std::vector<UncertainObject> BaseUncertains(size_t count) {
  Rng rng(62);
  std::vector<UncertainObject> objects;
  for (size_t i = 0; i < count; ++i) {
    const double x = rng.Uniform(50, 900);
    const double y = rng.Uniform(50, 900);
    objects.emplace_back(static_cast<ObjectId>(i + 1),
                         MakeUniform(Rect(x, x + 30, y, y + 30)));
  }
  return objects;
}

// Ids >= kDynamicBase in \p answers, sorted. The caller asserts they form
// a contiguous prefix of the insertion order.
std::vector<ObjectId> DynamicIds(const AnswerSet& answers) {
  std::vector<ObjectId> ids;
  for (const ProbabilisticAnswer& a : answers) {
    if (a.id > kDynamicBase) ids.push_back(a.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ExpectPrefix(const std::vector<ObjectId>& ids, size_t max_batches,
                  std::atomic<size_t>* violations) {
  if (ids.size() > max_batches) {
    violations->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != kDynamicBase + 1 + i) {
      violations->fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

TEST(UpdateConcurrencyTest, EngineQueriesObserveExactlyOneEpoch) {
  constexpr size_t kBatches = 60;
  Result<QueryEngine> engine =
      QueryEngine::Build(BasePoints(120), BaseUncertains(40), FastConfig());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Result<UncertainObject> issuer =
      engine->MakeIssuer(MakeUniform(Rect(480, 520, 480, 520)));
  ASSERT_TRUE(issuer.ok());
  // Covers the whole space: every point and every uncertain region
  // qualifies with probability 1, so answers reflect membership exactly.
  const RangeQuerySpec query(1200, 1200, 0.0);

  std::atomic<bool> stop{false};
  std::atomic<size_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        // Alternate the point and uncertain paths (IPQ vs IUQ/PTI) so the
        // index copies and PTI rebuilds race the readers as well.
        const AnswerSet answers = (t % 2 == 0)
                                      ? engine->Ipq(*issuer, query)
                                      : engine->Iuq(*issuer, query);
        ExpectPrefix(DynamicIds(answers), kBatches, &violations);
        // Snapshot-level invariant: counts are a pure function of epoch.
        const QueryEngine::SnapshotPtr snap = engine->snapshot();
        const uint64_t e = snap->epoch();
        if (snap->catalog->points.size() != 120 + e ||
            snap->catalog->uncertains.size() != 40 + e) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Rng rng(63);
  for (size_t e = 1; e <= kBatches; ++e) {
    const ObjectId id = static_cast<ObjectId>(kDynamicBase + e);
    const double x = rng.Uniform(200, 800);
    const double y = rng.Uniform(200, 800);
    UpdateBatch batch;
    batch.push_back(UpdateOp::InsertPoint(id, Point(x, y)));
    Result<UniformRectPdf> pdf =
        UniformRectPdf::Make(Rect(x, x + 20, y, y + 20));
    ASSERT_TRUE(pdf.ok());
    batch.push_back(
        UpdateOp::InsertUncertain(id, PdfVariant(std::move(pdf).ValueOrDie())));
    ASSERT_TRUE(engine->ApplyUpdates(batch).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(engine->epoch(), kBatches);
  // The final state is fully visible.
  EXPECT_EQ(DynamicIds(engine->Ipq(*issuer, query)).size(), kBatches);
  EXPECT_EQ(DynamicIds(engine->Iuq(*issuer, query)).size(), kBatches);
}

TEST(UpdateConcurrencyTest, ShardedRunRacesUpdatesAndResplits) {
  constexpr size_t kBatches = 50;
  ShardedEngineConfig config;
  config.shards = 3;
  config.engine = FastConfig();
  Result<ShardedEngine> sharded =
      ShardedEngine::Build(BasePoints(150), BaseUncertains(30), config);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  Result<UncertainObject> issuer =
      sharded->MakeIssuer(MakeUniform(Rect(480, 520, 480, 520)));
  ASSERT_TRUE(issuer.ok());
  const BatchSpec spec{RangeQuerySpec(1200, 1200, 0.0)};

  std::atomic<bool> stop{false};
  std::atomic<size_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      const QueryMethod method =
          (t % 2 == 0) ? QueryMethod::kIpq : QueryMethod::kIuq;
      while (!stop.load(std::memory_order_acquire)) {
        ExpectPrefix(DynamicIds(sharded->Run(method, *issuer, spec)),
                     kBatches, &violations);
      }
    });
  }

  Rng rng(64);
  for (size_t e = 1; e <= kBatches; ++e) {
    const ObjectId id = static_cast<ObjectId>(kDynamicBase + e);
    const double x = rng.Uniform(200, 800);
    const double y = rng.Uniform(200, 800);
    UpdateBatch batch;
    batch.push_back(UpdateOp::InsertPoint(id, Point(x, y)));
    Result<UniformRectPdf> pdf =
        UniformRectPdf::Make(Rect(x, x + 20, y, y + 20));
    ASSERT_TRUE(pdf.ok());
    batch.push_back(
        UpdateOp::InsertUncertain(id, PdfVariant(std::move(pdf).ValueOrDie())));
    ASSERT_TRUE(sharded->ApplyUpdates(batch).ok());
    // Re-splits race the readers too: the whole shard table is swapped
    // underneath in-flight Runs.
    if (e % 10 == 0) ASSERT_TRUE(sharded->Resplit().ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(sharded->resplit_count(), kBatches / 10);
  EXPECT_EQ(DynamicIds(sharded->Run(QueryMethod::kIpq, *issuer, spec)).size(),
            kBatches);
}

// End-to-end through the async server: cached answers must never survive
// an epoch change. The same issuer+query is submitted before and after
// each update; the post-update answer must reflect the new membership
// even though the pre-update answer was cached.
TEST(UpdateConcurrencyTest, ServerCacheNeverServesStaleEpochs) {
  ShardedEngineConfig config;
  config.shards = 2;
  config.engine = FastConfig();
  Result<ShardedEngine> sharded =
      ShardedEngine::Build(BasePoints(80), {}, config);
  ASSERT_TRUE(sharded.ok());

  AsyncServerOptions options;
  options.threads = 3;
  options.cache_capacity = 64;
  AsyncServer server(*sharded, options);

  // MakeIssuer yields id 0 (uncacheable); use a real id so the cache path
  // engages.
  Result<UniformRectPdf> pdf = UniformRectPdf::Make(Rect(480, 520, 480, 520));
  ASSERT_TRUE(pdf.ok());
  UncertainObject warm(7, PdfVariant(std::move(pdf).ValueOrDie()));
  ASSERT_TRUE(warm.BuildCatalog(UCatalog::EvenlySpacedValues(11)).ok());
  const BatchSpec spec{RangeQuerySpec(1200, 1200, 0.0)};

  Rng rng(65);
  for (size_t e = 1; e <= 30; ++e) {
    // Warm the cache at the current epoch (twice, so a hit is plausible).
    server.Submit(warm, spec, QueryMethod::kIpq).get();
    server.Submit(warm, spec, QueryMethod::kIpq).get();

    const ObjectId id = static_cast<ObjectId>(kDynamicBase + e);
    ASSERT_TRUE(sharded
                    ->ApplyUpdates({UpdateOp::InsertPoint(
                        id, Point(rng.Uniform(200, 800),
                                  rng.Uniform(200, 800)))})
                    .ok());

    // Post-update answer must include every inserted point — a stale
    // cached answer from the previous epoch would be one short.
    const AnswerSet fresh =
        server.Submit(warm, spec, QueryMethod::kIpq).get();
    EXPECT_EQ(DynamicIds(fresh).size(), e) << "epoch " << e;
  }
  server.Shutdown();
  const ServeStats stats = server.stats();
  EXPECT_GT(stats.cache_hits + stats.cache_invalidations, 0u);
}

}  // namespace
}  // namespace ilq
