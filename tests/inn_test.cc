#include "core/inn.h"

#include <gtest/gtest.h>

#include <map>

#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;

struct Fixture {
  std::vector<PointObject> objects;
  RTree index;
};

Fixture MakePoints(std::vector<Point> locations) {
  std::vector<PointObject> objects;
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < locations.size(); ++i) {
    objects.emplace_back(static_cast<ObjectId>(i + 1), locations[i]);
    items.push_back(
        {Rect::AtPoint(locations[i]), static_cast<ObjectId>(i + 1)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  EXPECT_TRUE(tree.ok());
  return {std::move(objects), std::move(tree).ValueOrDie()};
}

Fixture MakeRandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> locations;
  for (size_t i = 0; i < n; ++i) {
    locations.emplace_back(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
  }
  return MakePoints(std::move(locations));
}

double Sum(const AnswerSet& answers) {
  double s = 0.0;
  for (const auto& a : answers) s += a.probability;
  return s;
}

TEST(InnTest, EmptyIndexYieldsNothing) {
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, {});
  ASSERT_TRUE(tree.ok());
  UncertainObject issuer(0, MakeUniform(Rect(0, 10, 0, 10)));
  EXPECT_TRUE(EvaluateINN(*tree, issuer, {}).empty());
  EXPECT_TRUE(EvaluateINNGrid(*tree, issuer, {}).empty());
}

TEST(InnTest, ProbabilitiesSumToOne) {
  Fixture fixture = MakeRandomPoints(500, 181);
  UncertainObject issuer(0, MakeUniform(Rect(300, 700, 300, 700)));
  InnOptions options;
  options.samples = 2000;
  const AnswerSet mc = EvaluateINN(fixture.index, issuer, options);
  EXPECT_NEAR(Sum(mc), 1.0, 1e-9);
  const AnswerSet grid = EvaluateINNGrid(fixture.index, issuer, options);
  EXPECT_NEAR(Sum(grid), 1.0, 1e-9);
}

TEST(InnTest, NearlyPreciseIssuerPicksTrueNN) {
  Fixture fixture = MakeRandomPoints(300, 182);
  // A 0.02-wide issuer region is effectively a point at (400, 400).
  UncertainObject issuer(0,
                         MakeUniform(Rect(399.99, 400.01, 399.99, 400.01)));
  // Brute-force NN of (400, 400).
  ObjectId expected = 0;
  double best = std::numeric_limits<double>::infinity();
  for (const PointObject& s : fixture.objects) {
    const double d = s.location.SquaredDistanceTo(Point(400, 400));
    if (d < best) {
      best = d;
      expected = s.id;
    }
  }
  const AnswerSet got = EvaluateINN(fixture.index, issuer, {});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, expected);
  EXPECT_DOUBLE_EQ(got[0].probability, 1.0);
}

TEST(InnTest, SymmetricConfigurationSplitsEvenly) {
  // Two objects mirrored about the issuer's centre line split the
  // probability ~50/50.
  Fixture fixture = MakePoints({Point(400, 500), Point(600, 500)});
  UncertainObject issuer(0, MakeUniform(Rect(450, 550, 450, 550)));
  InnOptions options;
  options.samples = 20000;
  const AnswerSet got = EvaluateINN(fixture.index, issuer, options);
  ASSERT_EQ(got.size(), 2u);
  for (const auto& a : got) {
    EXPECT_NEAR(a.probability, 0.5, 0.02);
  }
}

TEST(InnTest, GridAndMonteCarloAgree) {
  Fixture fixture = MakeRandomPoints(200, 183);
  UncertainObject issuer(0, MakeUniform(Rect(200, 600, 300, 700)));
  InnOptions options;
  options.samples = 30000;
  options.grid_per_axis = 64;
  const AnswerSet mc = EvaluateINN(fixture.index, issuer, options);
  const AnswerSet grid = EvaluateINNGrid(fixture.index, issuer, options);
  std::map<ObjectId, double> grid_by_id;
  for (const auto& a : grid) grid_by_id[a.id] = a.probability;
  for (const auto& a : mc) {
    if (a.probability < 0.02) continue;  // both tails are noisy
    ASSERT_TRUE(grid_by_id.count(a.id)) << "object " << a.id;
    EXPECT_NEAR(a.probability, grid_by_id[a.id], 0.03);
  }
}

TEST(InnTest, GaussianIssuerFavoursCentralObject) {
  // With a centre-peaked issuer pdf the object at the centre wins far more
  // often than under a uniform pdf.
  Fixture fixture = MakePoints(
      {Point(500, 500), Point(380, 500), Point(620, 500), Point(500, 380),
       Point(500, 620)});
  InnOptions options;
  options.samples = 20000;
  UncertainObject uniform_issuer(0, MakeUniform(Rect(350, 650, 350, 650)));
  UncertainObject gaussian_issuer(0, MakeGaussian(Rect(350, 650, 350, 650)));
  auto central_probability = [&](const UncertainObject& issuer) {
    for (const auto& a : EvaluateINN(fixture.index, issuer, options)) {
      if (a.id == 1) return a.probability;
    }
    return 0.0;
  };
  const double uniform_p = central_probability(uniform_issuer);
  const double gaussian_p = central_probability(gaussian_issuer);
  EXPECT_GT(gaussian_p, uniform_p + 0.1);
}

TEST(InnTest, DistantObjectHasZeroProbability) {
  Fixture fixture = MakePoints(
      {Point(500, 500), Point(520, 500), Point(5000, 5000)});
  UncertainObject issuer(0, MakeUniform(Rect(480, 540, 480, 520)));
  InnOptions options;
  options.samples = 5000;
  const AnswerSet got = EvaluateINN(fixture.index, issuer, options);
  for (const auto& a : got) {
    EXPECT_NE(a.id, 3u) << "far object can never be nearest";
  }
}

TEST(InnExactTest, TwoSymmetricObjectsSplitExactlyInHalf) {
  Fixture fixture = MakePoints({Point(400, 500), Point(600, 500)});
  const AnswerSet got =
      EvaluateINNExactUniform(fixture.index, Rect(450, 550, 450, 550));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0].probability, 0.5);
  EXPECT_DOUBLE_EQ(got[1].probability, 0.5);
}

TEST(InnExactTest, ProbabilitiesSumToOne) {
  Fixture fixture = MakeRandomPoints(400, 186);
  const AnswerSet got =
      EvaluateINNExactUniform(fixture.index, Rect(300, 700, 200, 600));
  EXPECT_NEAR(Sum(got), 1.0, 1e-9);
}

TEST(InnExactTest, MatchesMonteCarlo) {
  Fixture fixture = MakeRandomPoints(300, 187);
  const Rect u0(250, 650, 350, 750);
  const AnswerSet exact = EvaluateINNExactUniform(fixture.index, u0);
  UncertainObject issuer(0, MakeUniform(u0));
  InnOptions options;
  options.samples = 40000;
  const AnswerSet mc = EvaluateINN(fixture.index, issuer, options);
  std::map<ObjectId, double> exact_by_id;
  for (const auto& a : exact) exact_by_id[a.id] = a.probability;
  for (const auto& a : mc) {
    ASSERT_TRUE(exact_by_id.count(a.id)) << "object " << a.id;
    EXPECT_NEAR(a.probability, exact_by_id[a.id], 0.02);
  }
}

TEST(InnExactTest, MatchesGridEvaluator) {
  Fixture fixture = MakeRandomPoints(150, 188);
  const Rect u0(100, 500, 500, 900);
  const AnswerSet exact = EvaluateINNExactUniform(fixture.index, u0);
  UncertainObject issuer(0, MakeUniform(u0));
  InnOptions options;
  options.grid_per_axis = 128;
  const AnswerSet grid = EvaluateINNGrid(fixture.index, issuer, options);
  std::map<ObjectId, double> grid_by_id;
  for (const auto& a : grid) grid_by_id[a.id] = a.probability;
  for (const auto& a : exact) {
    if (a.probability < 0.005) continue;  // below grid resolution
    ASSERT_TRUE(grid_by_id.count(a.id)) << "object " << a.id;
    EXPECT_NEAR(a.probability, grid_by_id[a.id], 0.01);
  }
}

TEST(InnExactTest, SingleObjectIsCertain) {
  Fixture fixture = MakePoints({Point(123, 456)});
  const AnswerSet got =
      EvaluateINNExactUniform(fixture.index, Rect(0, 100, 0, 100));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].probability, 1.0);
}

TEST(InnExactTest, CoLocatedObjectsTieBreakById) {
  Fixture fixture = MakePoints({Point(500, 500), Point(500, 500)});
  const AnswerSet got =
      EvaluateINNExactUniform(fixture.index, Rect(400, 600, 400, 600));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 1u);
  EXPECT_DOUBLE_EQ(got[0].probability, 1.0);
}

TEST(InnExactTest, EmptyIndexYieldsNothing) {
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(EvaluateINNExactUniform(*tree, Rect(0, 10, 0, 10)).empty());
}

TEST(InnTest, StatsAccumulateNodeAccesses) {
  Fixture fixture = MakeRandomPoints(5000, 184);
  UncertainObject issuer(0, MakeUniform(Rect(400, 600, 400, 600)));
  InnOptions options;
  options.samples = 100;
  IndexStats stats;
  EvaluateINN(fixture.index, issuer, options, &stats);
  EXPECT_GT(stats.node_accesses, 100u);  // at least one node per sample
}

TEST(InnTest, DeterministicForFixedSeed) {
  Fixture fixture = MakeRandomPoints(300, 185);
  UncertainObject issuer(0, MakeUniform(Rect(300, 700, 300, 700)));
  InnOptions options;
  options.samples = 1000;
  const AnswerSet a = EvaluateINN(fixture.index, issuer, options);
  const AnswerSet b = EvaluateINN(fixture.index, issuer, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].probability, b[i].probability);
  }
}

}  // namespace
}  // namespace ilq
