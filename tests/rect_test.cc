#include "geometry/rect.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ilq {
namespace {

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Width(), 0.0);
}

TEST(RectTest, CenteredConstructor) {
  const Rect r = Rect::Centered(Point(10, 20), 3, 4);
  EXPECT_DOUBLE_EQ(r.xmin, 7);
  EXPECT_DOUBLE_EQ(r.xmax, 13);
  EXPECT_DOUBLE_EQ(r.ymin, 16);
  EXPECT_DOUBLE_EQ(r.ymax, 24);
  EXPECT_EQ(r.Center(), Point(10, 20));
}

TEST(RectTest, AtPointIsDegenerateButNotEmpty) {
  const Rect r = Rect::AtPoint(Point(5, 5));
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_TRUE(r.Contains(Point(5, 5)));
}

TEST(RectTest, ContainsIsClosed) {
  const Rect r(0, 10, 0, 10);
  EXPECT_TRUE(r.Contains(Point(0, 0)));
  EXPECT_TRUE(r.Contains(Point(10, 10)));
  EXPECT_TRUE(r.Contains(Point(5, 5)));
  EXPECT_FALSE(r.Contains(Point(10.0001, 5)));
  EXPECT_FALSE(r.Contains(Point(-0.0001, 5)));
}

TEST(RectTest, IntersectsSharedBoundaryCounts) {
  const Rect a(0, 10, 0, 10);
  const Rect b(10, 20, 0, 10);  // touches at x = 10
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_DOUBLE_EQ(a.IntersectionArea(b), 0.0);
}

TEST(RectTest, DisjointDoNotIntersect) {
  const Rect a(0, 10, 0, 10);
  const Rect b(11, 20, 0, 10);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(a.Intersection(b).IsEmpty());
}

TEST(RectTest, EmptyNeverIntersects) {
  const Rect a(0, 10, 0, 10);
  EXPECT_FALSE(a.Intersects(Rect::Empty()));
  EXPECT_FALSE(Rect::Empty().Intersects(a));
}

TEST(RectTest, IntersectionGeometry) {
  const Rect a(0, 10, 0, 10);
  const Rect b(5, 15, -5, 5);
  const Rect i = a.Intersection(b);
  EXPECT_EQ(i, Rect(5, 10, 0, 5));
  EXPECT_DOUBLE_EQ(a.IntersectionArea(b), 25.0);
}

TEST(RectTest, ContainsRect) {
  const Rect outer(0, 10, 0, 10);
  EXPECT_TRUE(outer.ContainsRect(Rect(2, 8, 2, 8)));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_TRUE(outer.ContainsRect(Rect::Empty()));
  EXPECT_FALSE(outer.ContainsRect(Rect(2, 11, 2, 8)));
  EXPECT_FALSE(Rect::Empty().ContainsRect(outer));
}

TEST(RectTest, UnionCoversBoth) {
  const Rect a(0, 1, 0, 1);
  const Rect b(5, 6, -2, 0.5);
  const Rect u = a.Union(b);
  EXPECT_TRUE(u.ContainsRect(a));
  EXPECT_TRUE(u.ContainsRect(b));
  EXPECT_EQ(u, Rect(0, 6, -2, 1));
}

TEST(RectTest, UnionWithEmptyIsIdentity) {
  const Rect a(0, 1, 0, 1);
  EXPECT_EQ(a.Union(Rect::Empty()), a);
  EXPECT_EQ(Rect::Empty().Union(a), a);
}

TEST(RectTest, ExpandedGrowsEachSide) {
  const Rect r(0, 10, 0, 10);
  EXPECT_EQ(r.Expanded(2, 3), Rect(-2, 12, -3, 13));
}

TEST(RectTest, NegativeExpansionCanEmpty) {
  const Rect r(0, 10, 0, 10);
  EXPECT_TRUE(r.Expanded(-6, 0).IsEmpty());
}

TEST(RectTest, MinDistanceToPoint) {
  const Rect r(0, 10, 0, 10);
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(Point(5, 5)), 0.0);
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(Point(13, 5)), 3.0);
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(Point(13, 14)), 5.0);  // 3-4-5 corner
}

TEST(RectTest, MarginIsHalfPerimeter) {
  EXPECT_DOUBLE_EQ(Rect(0, 4, 0, 6).Margin(), 10.0);
}

TEST(RectTest, ToStringRenders) {
  EXPECT_EQ(Rect::Empty().ToString(), "[empty]");
  EXPECT_EQ(Rect(0, 1, 2, 3).ToString(), "[0,1]x[2,3]");
}

// Property sweep: intersection area is symmetric, bounded and consistent
// with the Intersects predicate on random rectangles.
class RectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectPropertyTest, IntersectionInvariants) {
  Rng rng(GetParam());
  const Rect space(-100, 100, -100, 100);
  for (int iter = 0; iter < 200; ++iter) {
    const double w1 = rng.Uniform(0.1, 50);
    const double h1 = rng.Uniform(0.1, 50);
    const double w2 = rng.Uniform(0.1, 50);
    const double h2 = rng.Uniform(0.1, 50);
    const Rect a = Rect::Centered(
        Point(rng.Uniform(-80, 80), rng.Uniform(-80, 80)), w1, h1);
    const Rect b = Rect::Centered(
        Point(rng.Uniform(-80, 80), rng.Uniform(-80, 80)), w2, h2);
    const double area_ab = a.IntersectionArea(b);
    EXPECT_DOUBLE_EQ(area_ab, b.IntersectionArea(a));
    EXPECT_LE(area_ab, std::min(a.Area(), b.Area()) + 1e-9);
    EXPECT_GE(area_ab, 0.0);
    if (area_ab > 0.0) {
      EXPECT_TRUE(a.Intersects(b));
    }
    const Rect i = a.Intersection(b);
    if (!i.IsEmpty()) {
      EXPECT_NEAR(i.Area(), area_ab, 1e-9);
      EXPECT_TRUE(a.ContainsRect(i));
      EXPECT_TRUE(b.ContainsRect(i));
    } else {
      EXPECT_EQ(area_ab, 0.0);
    }
    // Union must contain both and have at least max area.
    const Rect u = a.Union(b);
    EXPECT_TRUE(u.ContainsRect(a));
    EXPECT_TRUE(u.ContainsRect(b));
    EXPECT_GE(u.Area() + 1e-9, std::max(a.Area(), b.Area()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ilq
