// Differential suite for the continuous-query tier (monolith flavour):
// a ContinuousEngine session streamed along a trajectory must answer every
// position update bit-identically to a one-shot QueryEngine query at that
// position — same ids, same probability doubles — for all eight
// QueryMethods, both probability kernels, reuse ON and OFF. This is the
// exactness claim of candidate_basis.h: the valid region is a *proof of
// coverage*, so replaying the prefetched basis is indistinguishable from
// re-running the indexes, and the validations the session pockets are pure
// savings, never approximations.
//
// Probabilities are compared exactly, not with a tolerance: the
// per-candidate Monte-Carlo streams (MixSeeds) make even the sampled
// kernels placement-pure, so any mismatch is a real coverage bug.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "continuous/continuous_engine.h"
#include "core/batch.h"
#include "core/engine.h"
#include "core/inn.h"
#include "datagen/workload.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

// Mixed-pdf dataset so every monomorphized kernel pair is crossed by the
// replay (uniform closed forms, gaussian separable, histogram generic).
std::vector<UncertainObject> MakeMixedObjects(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < count; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 3) {
      case 0:
        objects.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        objects.emplace_back(id, MakeGaussian(region));
        break;
      default:
        objects.emplace_back(id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
    }
  }
  return objects;
}

std::vector<PointObject> MakePoints(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<PointObject> points;
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  return points;
}

AnswerSet Canonical(AnswerSet answers) {
  CanonicalizeAnswers(&answers);
  return answers;
}

void ExpectBitIdentical(const AnswerSet& continuous, const AnswerSet& oneshot,
                        const std::string& what) {
  ASSERT_EQ(continuous.size(), oneshot.size()) << what;
  for (size_t i = 0; i < continuous.size(); ++i) {
    EXPECT_EQ(continuous[i].id, oneshot[i].id) << what << " answer #" << i;
    EXPECT_EQ(continuous[i].probability, oneshot[i].probability)
        << what << " answer #" << i << " (id " << continuous[i].id << ")";
  }
}

EngineConfig TestEngineConfig(ProbabilityKernel kernel) {
  EngineConfig config;
  config.eval.kernel = kernel;
  config.eval.quadrature_order = 8;
  config.eval.mc_samples = 64;
  return config;
}

// Trajectories small enough to validate often but long enough to leave the
// initial valid region (step σ of 60 against a default horizon of 2·u=80),
// so both the replay path and the re-evaluation path are crossed per method.
TrajectoryWorkload MakeTrajectories(double threshold, size_t issuers,
                                    size_t steps) {
  WorkloadConfig base;
  base.space = Rect(0, 1000, 0, 1000);
  base.w = 120.0;
  base.qp = threshold;
  base.seed = 42;
  TrajectoryConfig traj;
  traj.issuers = issuers;
  traj.steps = steps;
  traj.kind = TrajectoryKind::kRandomWalk;
  traj.step = 60.0;
  traj.u_min = 30.0;
  traj.u_max = 45.0;
  Result<TrajectoryWorkload> workload =
      GenerateTrajectoryWorkload(base, traj);
  ILQ_CHECK(workload.ok(), workload.status().ToString());
  return std::move(workload).ValueOrDie();
}

// One trajectory through one method: register at the first step, stream the
// rest, and pin every answer against the one-shot engine.
void RunTrajectoryDifferential(const QueryEngine& engine,
                               ContinuousEngine* continuous,
                               QueryMethod method, const BatchSpec& spec,
                               const std::vector<UncertainObject>& trajectory,
                               const std::string& what) {
  Result<ContinuousEngine::Registered> registered =
      continuous->Register(method, spec, trajectory.front());
  ASSERT_TRUE(registered.ok()) << what << ": "
                               << registered.status().ToString();
  EXPECT_FALSE(registered->answer.revalidated) << what;
  EXPECT_TRUE(registered->answer.valid_region.ContainsRect(
      trajectory.front().region()))
      << what;
  ExpectBitIdentical(
      registered->answer.answers,
      Canonical(RunQueryMethod(engine, method, trajectory.front(), spec)),
      what + " register");

  for (size_t t = 1; t < trajectory.size(); ++t) {
    Result<ContinuousAnswer> answer =
        continuous->UpdatePosition(registered->id, trajectory[t]);
    ASSERT_TRUE(answer.ok()) << what << ": " << answer.status().ToString();
    EXPECT_TRUE(answer->valid_region.ContainsRect(trajectory[t].region()))
        << what << " step " << t;
    EXPECT_EQ(answer->epoch, engine.epoch()) << what << " step " << t;
    ExpectBitIdentical(
        answer->answers,
        Canonical(RunQueryMethod(engine, method, trajectory[t], spec)),
        what + " step " + std::to_string(t));
  }
  EXPECT_TRUE(continuous->Unregister(registered->id).ok()) << what;
}

void RunDifferential(ProbabilityKernel kernel, bool reuse) {
  const EngineConfig config = TestEngineConfig(kernel);
  Result<QueryEngine> engine = QueryEngine::Build(
      MakePoints(901, 300), MakeMixedObjects(902, 120), config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  ContinuousOptions options;
  options.reuse = reuse;
  ContinuousEngine continuous(&*engine, options);

  // threshold 0 exercises the basic/expanded methods' "report everything
  // touched" shape; 0.3 exercises the catalog/PTI pruning bounds.
  for (const double threshold : {0.0, 0.3}) {
    const TrajectoryWorkload workload =
        MakeTrajectories(threshold, /*issuers=*/2, /*steps=*/8);
    const BatchSpec spec{workload.spec};
    for (const std::vector<UncertainObject>& trajectory : workload.steps) {
      for (const QueryMethod method : AllQueryMethods()) {
        RunTrajectoryDifferential(
            *engine, &continuous, method, spec, trajectory,
            std::string(QueryMethodName(method)) + " Qp=" +
                std::to_string(threshold) + (reuse ? " reuse" : " naive"));
      }
    }
  }

  const ContinuousStats stats = continuous.stats();
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.unregistrations, stats.registrations);
  if (reuse) {
    // Local wandering must actually hit the replay path, or the suite only
    // covered rebuilds.
    EXPECT_GT(stats.validations, 0u);
  } else {
    // The naive baseline never validates — every update is a rebuild.
    EXPECT_EQ(stats.validations, 0u);
  }
  EXPECT_GT(stats.reevaluations, 0u);
}

TEST(ContinuousDifferentialTest, BitIdenticalAnalytic) {
  RunDifferential(ProbabilityKernel::kAnalytic, /*reuse=*/true);
}

TEST(ContinuousDifferentialTest, BitIdenticalMonteCarlo) {
  RunDifferential(ProbabilityKernel::kMonteCarlo, /*reuse=*/true);
}

TEST(ContinuousDifferentialTest, NaiveBaselineMatchesToo) {
  RunDifferential(ProbabilityKernel::kAnalytic, /*reuse=*/false);
}

TEST(ContinuousDifferentialTest, EpochChangeInvalidatesTheBasis) {
  const EngineConfig config = TestEngineConfig(ProbabilityKernel::kAnalytic);
  Result<QueryEngine> engine = QueryEngine::Build(
      MakePoints(31, 200), MakeMixedObjects(32, 80), config);
  ASSERT_TRUE(engine.ok());
  ContinuousEngine continuous(&*engine);

  const TrajectoryWorkload workload =
      MakeTrajectories(/*threshold=*/0.0, /*issuers=*/1, /*steps=*/3);
  const std::vector<UncertainObject>& trajectory = workload.steps.front();
  const BatchSpec spec{workload.spec};
  Result<ContinuousEngine::Registered> registered =
      continuous.Register(QueryMethod::kIpq, spec, trajectory[0]);
  ASSERT_TRUE(registered.ok());

  // Insert a point inside the query range at the issuer's next position:
  // the stale basis does not contain it, so a replay would be wrong — the
  // epoch check must force a rebuild that sees it.
  const Point inside(trajectory[1].region().Center());
  ASSERT_TRUE(
      engine->ApplyUpdates({UpdateOp::InsertPoint(9001, inside)}).ok());

  Result<ContinuousAnswer> answer =
      continuous.UpdatePosition(registered->id, trajectory[1]);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->revalidated);
  EXPECT_EQ(answer->epoch, engine->epoch());
  ExpectBitIdentical(
      answer->answers,
      Canonical(RunQueryMethod(*engine, QueryMethod::kIpq, trajectory[1],
                               spec)),
      "post-update step");
  EXPECT_TRUE(std::any_of(answer->answers.begin(), answer->answers.end(),
                          [](const ProbabilisticAnswer& a) {
                            return a.id == 9001;
                          }));
}

TEST(ContinuousDifferentialTest, InnSessionMatchesOneShotEvaluator) {
  const EngineConfig config = TestEngineConfig(ProbabilityKernel::kAnalytic);
  Result<QueryEngine> engine =
      QueryEngine::Build(MakePoints(71, 250), {}, config);
  ASSERT_TRUE(engine.ok());
  ContinuousEngine continuous(&*engine);

  const TrajectoryWorkload workload =
      MakeTrajectories(/*threshold=*/0.0, /*issuers=*/2, /*steps=*/10);
  InnOptions options;
  options.samples = 200;
  for (const std::vector<UncertainObject>& trajectory : workload.steps) {
    Result<ContinuousEngine::Registered> registered =
        continuous.RegisterInn(options, trajectory.front());
    ASSERT_TRUE(registered.ok()) << registered.status().ToString();
    for (size_t t = 0; t < trajectory.size(); ++t) {
      Result<ContinuousAnswer> answer =
          t == 0 ? Result<ContinuousAnswer>(registered->answer)
                 : continuous.UpdatePosition(registered->id, trajectory[t]);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      EXPECT_GE(answer->support_margin, 0.0);
      ExpectBitIdentical(
          answer->answers,
          Canonical(EvaluateINN(engine->point_index(), trajectory[t],
                                options)),
          "inn step " + std::to_string(t));
    }
    EXPECT_TRUE(continuous.Unregister(registered->id).ok());
  }
  EXPECT_GT(continuous.stats().validations, 0u);
}

TEST(ContinuousDifferentialTest, UnknownAndDroppedSessionsAreNotFound) {
  const EngineConfig config = TestEngineConfig(ProbabilityKernel::kAnalytic);
  Result<QueryEngine> engine = QueryEngine::Build(
      MakePoints(81, 50), MakeMixedObjects(82, 20), config);
  ASSERT_TRUE(engine.ok());
  ContinuousEngine continuous(&*engine);

  UncertainObject issuer(501u, MakeUniform(Rect(400, 500, 400, 500)));
  ASSERT_TRUE(issuer.BuildCatalog(engine->config().catalog_values).ok());
  EXPECT_EQ(continuous.UpdatePosition(12345, issuer).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(continuous.Unregister(12345).code(), StatusCode::kNotFound);

  Result<ContinuousEngine::Registered> registered =
      continuous.Register(QueryMethod::kIuq, BatchSpec{RangeQuerySpec(100,
                                                                      100,
                                                                      0.0)},
                          issuer);
  ASSERT_TRUE(registered.ok());
  EXPECT_TRUE(continuous.Unregister(registered->id).ok());
  EXPECT_EQ(continuous.UpdatePosition(registered->id, issuer).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(continuous.Unregister(registered->id).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ilq
