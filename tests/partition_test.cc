// Unit tests for the serving layer's k-d centroid partitioner: shard
// indices in range, proportional balance, determinism, spatial coherence,
// and the degenerate inputs (one shard, more shards than items, empty).

#include "serve/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "geometry/rect.h"

namespace ilq {
namespace {

std::vector<Point> RandomCentroids(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<Point> centroids;
  centroids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    centroids.emplace_back(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
  }
  return centroids;
}

std::vector<size_t> ShardSizes(const Partition& partition) {
  std::vector<size_t> sizes(partition.shards, 0);
  for (const uint32_t s : partition.assignment) {
    EXPECT_LT(s, partition.shards);
    ++sizes[s];
  }
  return sizes;
}

TEST(PartitionTest, AssignsEveryInputToAValidShard) {
  const auto centroids = RandomCentroids(1, 500);
  for (const size_t shards : {1u, 2u, 4u, 7u, 16u}) {
    const Partition partition = PartitionByCentroid(centroids, shards);
    EXPECT_EQ(partition.shards, shards);
    ASSERT_EQ(partition.assignment.size(), centroids.size());
    ShardSizes(partition);  // asserts the range
  }
}

TEST(PartitionTest, ProportionallyBalanced) {
  const auto centroids = RandomCentroids(2, 700);
  for (const size_t shards : {2u, 4u, 7u}) {
    const std::vector<size_t> sizes =
        ShardSizes(PartitionByCentroid(centroids, shards));
    const size_t ideal = centroids.size() / shards;
    for (const size_t size : sizes) {
      // Median splits with proportional cuts land within a couple of items
      // of the ideal; allow generous slack so the test pins balance, not
      // the exact cut arithmetic.
      EXPECT_GE(size, ideal - ideal / 4 - 2);
      EXPECT_LE(size, ideal + ideal / 4 + 2);
    }
  }
}

TEST(PartitionTest, DeterministicAcrossCalls) {
  const auto centroids = RandomCentroids(3, 400);
  const Partition a = PartitionByCentroid(centroids, 7);
  const Partition b = PartitionByCentroid(centroids, 7);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(PartitionTest, DeterministicUnderDuplicateCentroids) {
  // All-equal centroids exercise the tie-break path: the comparator's
  // index tie-break must still produce one canonical assignment.
  std::vector<Point> centroids(100, Point(5, 5));
  const Partition a = PartitionByCentroid(centroids, 4);
  const Partition b = PartitionByCentroid(centroids, 4);
  EXPECT_EQ(a.assignment, b.assignment);
  const std::vector<size_t> sizes = ShardSizes(a);
  for (const size_t size : sizes) EXPECT_EQ(size, 25u);
}

TEST(PartitionTest, ShardsAreSpatiallyCoherent) {
  // With points on a uniform grid, the summed shard bounding-box area must
  // be well below shards x full-space area — shards tile space instead of
  // interleaving.
  std::vector<Point> centroids;
  for (int x = 0; x < 30; ++x) {
    for (int y = 0; y < 30; ++y) {
      centroids.emplace_back(x * 10.0, y * 10.0);
    }
  }
  const Partition partition = PartitionByCentroid(centroids, 4);
  std::vector<Rect> bounds(4, Rect::Empty());
  for (size_t i = 0; i < centroids.size(); ++i) {
    bounds[partition.assignment[i]] =
        bounds[partition.assignment[i]].Union(Rect::AtPoint(centroids[i]));
  }
  double total_area = 0.0;
  for (const Rect& r : bounds) total_area += r.Area();
  const double full = 290.0 * 290.0;
  EXPECT_LT(total_area, 1.5 * full);  // 4 interleaved shards would give ~4x
}

TEST(PartitionTest, DegenerateInputs) {
  EXPECT_EQ(PartitionByCentroid({}, 4).assignment.size(), 0u);
  EXPECT_EQ(PartitionByCentroid({}, 0).shards, 1u);

  const auto centroids = RandomCentroids(4, 10);
  const Partition one = PartitionByCentroid(centroids, 1);
  for (const uint32_t s : one.assignment) EXPECT_EQ(s, 0u);

  // More shards than items: every item still lands in range; surplus
  // shards stay empty.
  const Partition many = PartitionByCentroid(centroids, 32);
  EXPECT_EQ(many.shards, 32u);
  ShardSizes(many);
}

}  // namespace
}  // namespace ilq
