// Storage-layer suite for the out-of-core tentpole (ISSUE 8): the "ILQP"
// fixed-page file (storage/page_file.h) and the pinning LRU buffer
// (storage/buffer_manager.h), below any R-tree semantics.
//
//  * writer → reader round-trips pages bit-exactly, header last (a crashed
//    writer leaves an unopenable file, not a silently short index);
//  * raw-byte corruption of header and pages returns the documented Status
//    codes (kInvalidArgument / kOutOfRange / kIOError), never a crash, and
//    the division-form size check stops forged page counts;
//  * the LRU buffer counts every Pin as exactly one hit or miss, evicts in
//    LRU order, and an in-flight PageHandle keeps its page's bytes alive
//    across eviction.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/checksum.h"
#include "storage/page_file.h"

namespace ilq {
namespace {

constexpr uint32_t kPage = 128;  // small pages keep the fixtures tiny

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "ilq_paged_storage_" + name;
}

std::vector<uint8_t> PatternPage(uint32_t page_id) {
  std::vector<uint8_t> page(kPage, 0);
  // First kPageChecksumBytes stay zero: the writer owns the checksum slot.
  for (size_t i = kPageChecksumBytes; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>((page_id * 131 + i) & 0xFF);
  }
  return page;
}

// Writes a well-formed file of \p pages pattern pages and returns its path.
std::string WritePatternFile(const std::string& name, uint32_t pages) {
  const std::string path = TempPath(name);
  auto writer = PageFileWriter::Create(path, kPage);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (uint32_t p = 0; p < pages; ++p) {
    const Status written = writer->WritePage(PatternPage(p));
    EXPECT_TRUE(written.ok()) << written.ToString();
  }
  PageFileHeader header;
  header.page_size = kPage;
  header.page_count = pages;
  header.root = pages == 0 ? -1 : 0;
  header.height = pages == 0 ? 0 : 1;
  header.item_count = 0;
  header.max_entries = 8;
  header.min_entries = 2;
  const Status finished = writer->Finish(header);
  EXPECT_TRUE(finished.ok()) << finished.ToString();
  return path;
}

void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xFF);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TEST(PageFileTest, WriterReaderRoundTripsPagesBitExactly) {
  const std::string path = WritePatternFile("roundtrip.ilqp", 5);
  auto file = PageFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->page_size(), kPage);
  EXPECT_EQ((*file)->page_count(), 5u);
  EXPECT_EQ((*file)->header().max_entries, 8u);
  EXPECT_EQ((*file)->header().min_entries, 2u);

  std::vector<uint8_t> got;
  for (uint32_t p = 0; p < 5; ++p) {
    ASSERT_TRUE((*file)->ReadPage(p, &got).ok());
    const std::vector<uint8_t> want = PatternPage(p);
    // Payload beyond the checksum slot is byte-identical.
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = kPageChecksumBytes; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "page " << p << " byte " << i;
    }
    // And the stored checksum really covers that payload.
    EXPECT_EQ(LoadLe32(got.data()),
              Crc32(got.data() + kPageChecksumBytes,
                    got.size() - kPageChecksumBytes));
  }
  std::remove(path.c_str());
}

TEST(PageFileTest, EmptyFileRoundTrips) {
  const std::string path = WritePatternFile("empty.ilqp", 0);
  auto file = PageFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->page_count(), 0u);
  EXPECT_EQ((*file)->header().root, -1);
  std::vector<uint8_t> page;
  EXPECT_EQ((*file)->ReadPage(0, &page).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PageFileTest, WriterRejectsMisuse) {
  EXPECT_EQ(PageFileWriter::Create(TempPath("bad.ilqp"), kMinPageSize - 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const std::string path = TempPath("misuse.ilqp");
  auto writer = PageFileWriter::Create(path, kPage);
  ASSERT_TRUE(writer.ok());
  std::vector<uint8_t> short_page(kPage - 1, 0);
  EXPECT_EQ(writer->WritePage(short_page).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(writer->WritePage(PatternPage(0)).ok());
  PageFileHeader header;
  header.page_size = kPage;
  header.page_count = 2;  // lies about the pages written
  EXPECT_EQ(writer->Finish(header).code(), StatusCode::kInvalidArgument);
  header.page_count = 1;
  header.root = 0;
  header.height = 1;
  header.max_entries = 4;
  header.min_entries = 2;
  ASSERT_TRUE(writer->Finish(header).ok());
  // The writer is closed: further calls fail with Status, not UB.
  EXPECT_EQ(writer->WritePage(PatternPage(0)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Finish(header).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(PageFileTest, OpenRejectsCorruptHeadersWithDocumentedCodes) {
  {  // missing file / directory -> kIOError
    EXPECT_EQ(PageFile::Open(TempPath("nope.ilqp")).status().code(),
              StatusCode::kIOError);
    EXPECT_EQ(PageFile::Open(::testing::TempDir()).status().code(),
              StatusCode::kIOError);
  }
  {  // wrong magic -> kInvalidArgument
    const std::string path = WritePatternFile("magic.ilqp", 2);
    FlipByte(path, 0);
    EXPECT_EQ(PageFile::Open(path).status().code(),
              StatusCode::kInvalidArgument);
    std::remove(path.c_str());
  }
  {  // wrong version -> kInvalidArgument
    const std::string path = WritePatternFile("version.ilqp", 2);
    FlipByte(path, 4);
    EXPECT_EQ(PageFile::Open(path).status().code(),
              StatusCode::kInvalidArgument);
    std::remove(path.c_str());
  }
  {  // any flipped header byte (covered by the header CRC) is caught
    const std::string path = WritePatternFile("hdrcrc.ilqp", 2);
    FlipByte(path, 13);  // inside page_count
    EXPECT_EQ(PageFile::Open(path).status().code(),
              StatusCode::kInvalidArgument);
    std::remove(path.c_str());
  }
  {  // truncation below the header -> kOutOfRange
    const std::string path = WritePatternFile("short.ilqp", 2);
    std::filesystem::resize_file(path, kPageFileHeaderBytes - 8);
    EXPECT_EQ(PageFile::Open(path).status().code(),
              StatusCode::kOutOfRange);
    std::remove(path.c_str());
  }
  {  // truncated mid-page: the division-form size check fires
    const std::string path = WritePatternFile("midpage.ilqp", 3);
    std::filesystem::resize_file(path, 4 * kPage - 17);
    EXPECT_EQ(PageFile::Open(path).status().code(),
              StatusCode::kOutOfRange);
    std::remove(path.c_str());
  }
  {  // forged page_count with a re-stamped CRC: size check still fires
    const std::string path = WritePatternFile("forged.ilqp", 2);
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    PageFileHeader header;
    header.page_size = kPage;
    header.page_count = 0xFFFFFFFFu;  // would overflow count * page_size
    header.root = 0;
    header.height = 1;
    header.max_entries = 8;
    header.min_entries = 2;
    uint8_t raw[kPageFileHeaderBytes];
    EncodePageFileHeader(header, raw);
    file.write(reinterpret_cast<const char*>(raw), sizeof(raw));
    file.close();
    EXPECT_EQ(PageFile::Open(path).status().code(),
              StatusCode::kOutOfRange);
    std::remove(path.c_str());
  }
}

TEST(PageFileTest, ReadPageCatchesFlippedPayloadBytes) {
  const std::string path = WritePatternFile("flip.ilqp", 4);
  // Flip one payload byte of page 2: only that page's read fails.
  FlipByte(path, (2 + 1) * kPage + kPage / 2);
  auto file = PageFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  std::vector<uint8_t> page;
  EXPECT_TRUE((*file)->ReadPage(0, &page).ok());
  EXPECT_TRUE((*file)->ReadPage(1, &page).ok());
  EXPECT_EQ((*file)->ReadPage(2, &page).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE((*file)->ReadPage(3, &page).ok());
  EXPECT_EQ((*file)->ReadPage(4, &page).code(),
            StatusCode::kInvalidArgument);  // out of range
  std::remove(path.c_str());
}

// ---- BufferManager ---------------------------------------------------------

TEST(BufferManagerTest, CountsEveryPinAsExactlyOneHitOrMiss) {
  const std::string path = WritePatternFile("buffer.ilqp", 5);
  auto file = PageFile::Open(path);
  ASSERT_TRUE(file.ok());
  BufferManager buffer(*file, 2 * kPage);  // capacity: 2 pages
  ASSERT_EQ(buffer.capacity_pages(), 2u);

  BufferCounters sum;
  const auto pin = [&](uint32_t page_id) {
    BufferCounters delta;
    auto handle = buffer.Pin(page_id, &delta);
    EXPECT_TRUE(handle.ok()) << handle.status().ToString();
    EXPECT_EQ(delta.hits + delta.misses, 1u) << "page " << page_id;
    sum.hits += delta.hits;
    sum.misses += delta.misses;
    sum.evictions += delta.evictions;
    return delta;
  };

  EXPECT_EQ(pin(0).misses, 1u);  // cold
  EXPECT_EQ(pin(0).hits, 1u);    // resident
  EXPECT_EQ(pin(1).misses, 1u);  // resident {0, 1}, MRU = 1
  {
    const BufferCounters delta = pin(2);  // evicts LRU page 0
    EXPECT_EQ(delta.misses, 1u);
    EXPECT_EQ(delta.evictions, 1u);
  }
  EXPECT_EQ(pin(1).hits, 1u);    // still resident, now MRU
  {
    const BufferCounters delta = pin(0);  // evicts page 2 (LRU), not 1
    EXPECT_EQ(delta.misses, 1u);
    EXPECT_EQ(delta.evictions, 1u);
  }
  EXPECT_EQ(pin(1).hits, 1u);  // proof page 1 survived the last eviction

  // Per-call deltas sum to the lifetime counters.
  const BufferCounters total = buffer.counters();
  EXPECT_EQ(total.hits, sum.hits);
  EXPECT_EQ(total.misses, sum.misses);
  EXPECT_EQ(total.evictions, sum.evictions);
  EXPECT_EQ(buffer.resident_pages(), 2u);
  std::remove(path.c_str());
}

TEST(BufferManagerTest, PinnedHandleSurvivesEviction) {
  const std::string path = WritePatternFile("pin.ilqp", 3);
  auto file = PageFile::Open(path);
  ASSERT_TRUE(file.ok());
  BufferManager buffer(*file, 1);  // sub-page budget -> capacity 1
  ASSERT_EQ(buffer.capacity_pages(), 1u);

  auto held = buffer.Pin(0);
  ASSERT_TRUE(held.ok());
  const std::vector<uint8_t> before = **held;

  // Thrash the single slot; page 0 is evicted from the buffer.
  ASSERT_TRUE(buffer.Pin(1).ok());
  ASSERT_TRUE(buffer.Pin(2).ok());
  EXPECT_GE(buffer.counters().evictions, 2u);
  EXPECT_EQ(buffer.resident_pages(), 1u);

  // The held handle still reads the original bytes.
  EXPECT_EQ(**held, before);

  // Re-pinning the evicted page misses (it was really dropped) but yields
  // the same bytes.
  BufferCounters delta;
  auto again = buffer.Pin(0, &delta);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(**again, before);
  std::remove(path.c_str());
}

TEST(BufferManagerTest, ErrorsAreReturnedAndNeverCached) {
  const std::string path = WritePatternFile("err.ilqp", 2);
  FlipByte(path, (1 + 1) * kPage + 10);  // corrupt page 1
  auto file = PageFile::Open(path);
  ASSERT_TRUE(file.ok());
  BufferManager buffer(*file, 4 * kPage);
  EXPECT_TRUE(buffer.Pin(0).ok());
  EXPECT_EQ(buffer.Pin(1).status().code(), StatusCode::kInvalidArgument);
  // The failed page was not cached: a second pin fails again (it would
  // "hit" and succeed if the error had been stored).
  EXPECT_EQ(buffer.Pin(1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(buffer.resident_pages(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ilq
