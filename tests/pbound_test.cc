#include "object/pbound.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;

TEST(PBoundTest, ZeroBoundIsRegionBoundary) {
  auto pdf = MakeUniform(Rect(0, 10, 20, 40));
  const PBound b = PBound::FromPdf(*pdf, 0.0);
  EXPECT_DOUBLE_EQ(b.l, 0);
  EXPECT_DOUBLE_EQ(b.r, 10);
  EXPECT_DOUBLE_EQ(b.b, 20);
  EXPECT_DOUBLE_EQ(b.t, 40);
  EXPECT_EQ(b.Box(), Rect(0, 10, 20, 40));
}

TEST(PBoundTest, UniformBoundsAreLinear) {
  // Figure 4 semantics: mass left of l(p) is exactly p.
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const PBound b = PBound::FromPdf(*pdf, 0.2);
  EXPECT_DOUBLE_EQ(b.l, 2.0);
  EXPECT_DOUBLE_EQ(b.r, 8.0);
  EXPECT_DOUBLE_EQ(b.b, 2.0);
  EXPECT_DOUBLE_EQ(b.t, 8.0);
}

TEST(PBoundTest, MassBeyondEachLineEqualsP) {
  auto pdf = MakeGaussian(Rect(0, 60, 0, 60));
  for (double p : {0.05, 0.1, 0.3, 0.5}) {
    const PBound b = PBound::FromPdf(*pdf, p);
    const Rect region = pdf->bounds();
    EXPECT_NEAR(pdf->MassIn(Rect(region.xmin, b.l, region.ymin, region.ymax)),
                p, 1e-9);
    EXPECT_NEAR(pdf->MassIn(Rect(b.r, region.xmax, region.ymin, region.ymax)),
                p, 1e-9);
    EXPECT_NEAR(pdf->MassIn(Rect(region.xmin, region.xmax, region.ymin, b.b)),
                p, 1e-9);
    EXPECT_NEAR(pdf->MassIn(Rect(region.xmin, region.xmax, b.t, region.ymax)),
                p, 1e-9);
  }
}

TEST(PBoundTest, HalfBoundCollapsesBoxToCenterLines) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const PBound b = PBound::FromPdf(*pdf, 0.5);
  EXPECT_DOUBLE_EQ(b.l, 5.0);
  EXPECT_DOUBLE_EQ(b.r, 5.0);
}

TEST(PBoundTest, BeyondHalfLinesCross) {
  auto pdf = MakeUniform(Rect(0, 10, 0, 10));
  const PBound b = PBound::FromPdf(*pdf, 0.7);
  EXPECT_DOUBLE_EQ(b.l, 7.0);
  EXPECT_DOUBLE_EQ(b.r, 3.0);
  EXPECT_TRUE(b.Box().IsEmpty());
}

TEST(PBoundTest, BoxesNestWithP) {
  auto pdf = MakeGaussian(Rect(0, 100, 0, 100));
  const PBound b1 = PBound::FromPdf(*pdf, 0.1);
  const PBound b2 = PBound::FromPdf(*pdf, 0.3);
  // Larger p pushes lines inward.
  EXPECT_GT(b2.l, b1.l);
  EXPECT_LT(b2.r, b1.r);
  EXPECT_TRUE(b1.Box().ContainsRect(b2.Box()));
}

TEST(PBoundTest, RegionBeyondDetectsEachSide) {
  PBound b{2.0, 8.0, 2.0, 8.0};
  EXPECT_TRUE(b.RegionBeyond(Rect(0, 2, 4, 5)));    // left of l
  EXPECT_TRUE(b.RegionBeyond(Rect(8, 9, 4, 5)));    // right of r
  EXPECT_TRUE(b.RegionBeyond(Rect(4, 5, 0, 2)));    // below b
  EXPECT_TRUE(b.RegionBeyond(Rect(4, 5, 8, 9)));    // above t
  EXPECT_FALSE(b.RegionBeyond(Rect(4, 5, 4, 5)));   // inside
  EXPECT_FALSE(b.RegionBeyond(Rect(1, 9, 1, 9)));   // straddles
  EXPECT_TRUE(b.RegionBeyond(Rect::Empty()));
}

TEST(PBoundTest, UnionWithLoosensAllSides) {
  PBound a{2, 8, 2, 8};
  const PBound b{1, 9, 3, 7};
  a.UnionWith(b);
  EXPECT_DOUBLE_EQ(a.l, 1);
  EXPECT_DOUBLE_EQ(a.r, 9);
  EXPECT_DOUBLE_EQ(a.b, 2);
  EXPECT_DOUBLE_EQ(a.t, 8);
}

TEST(PBoundTest, UnionSoundForPruning) {
  // Anything beyond the union bound is beyond each constituent bound.
  PBound merged{3, 7, 3, 7};
  const PBound other{4, 6, 4, 6};
  merged.UnionWith(other);
  const Rect probe(0, 2.5, 4, 5);  // beyond merged.l = 3
  ASSERT_TRUE(merged.RegionBeyond(probe));
  EXPECT_TRUE(PBound({3, 7, 3, 7}).RegionBeyond(probe));
  EXPECT_TRUE(PBound({4, 6, 4, 6}).RegionBeyond(probe));
}

TEST(PBoundTest, ToStringRenders) {
  const PBound b{1, 2, 3, 4};
  EXPECT_EQ(b.ToString(), "l=1 r=2 b=3 t=4");
}

}  // namespace
}  // namespace ilq
