// Differential bit-identity suite for the SIMD kernel tiers.
//
// Strict mode's contract is that the explicit-width kernels are invisible:
// every query method must return bit-identical AnswerSets whether the
// dispatch tables point at the scalar, SSE2, AVX2, or AVX-512 kernels. This
// suite collects every evaluator's answers at the scalar tier — basic
// IPQ/IUQ, enhanced IPQ/IUQ, C-IPQ (both filters), C-IUQ over R-tree and
// PTI — then replays the identical queries at each wider tier the machine
// supports and asserts exact equality: same ids, same order, same
// probability doubles. Both the analytic (Gauss-Legendre) and Monte-Carlo
// kernels are covered; the MC path additionally exercises the SoA sample
// blocks and count kernels in src/core/duality.h.
//
// Tiers above the detected level (or above an ILQ_SIMD_LEVEL cap, as in the
// forced-scalar CI job) install a lower table; those are skipped via
// ScopedSimdLevel::installed().

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "simd/simd_policy.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

std::vector<UncertainObject> MakeMixedObjects(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < count; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 3) {
      case 0:
        objects.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        objects.emplace_back(id, MakeGaussian(region));
        break;
      default:
        objects.emplace_back(id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
    }
  }
  return objects;
}

std::vector<PointObject> MakePoints(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<PointObject> points;
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  return points;
}

void ExpectBitIdentical(const AnswerSet& got, const AnswerSet& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " answer #" << i;
    // Exact double comparison — strict mode pins bit identity, not
    // tolerance.
    EXPECT_EQ(got[i].probability, want[i].probability)
        << what << " answer #" << i << " (id " << got[i].id << ")";
  }
}

// All eight query methods against one issuer/spec, in a fixed order.
std::vector<AnswerSet> RunAllMethods(const QueryEngine& engine,
                                     const UncertainObject& issuer,
                                     const RangeQuerySpec& spec) {
  std::vector<AnswerSet> answers;
  answers.push_back(engine.IpqBasic(issuer, spec));
  answers.push_back(engine.IuqBasic(issuer, spec));
  answers.push_back(engine.Ipq(issuer, spec));
  answers.push_back(engine.Iuq(issuer, spec));
  answers.push_back(engine.Cipq(issuer, spec));
  answers.push_back(engine.Cipq(issuer, spec, CipqFilter::kMinkowski));
  answers.push_back(engine.CiuqRTree(issuer, spec));
  answers.push_back(engine.CiuqPti(issuer, spec));
  return answers;
}

const char* const kMethodNames[] = {"IpqBasic", "IuqBasic", "Ipq",
                                    "Iuq",      "Cipq",     "Cipq/minkowski",
                                    "CiuqRTree", "CiuqPti"};

class SimdDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.eval.quadrature_order = 8;  // keep generic quadrature affordable
    Result<QueryEngine> engine = QueryEngine::Build(
        MakePoints(311, 250), MakeMixedObjects(312, 90), config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_.emplace(std::move(engine).ValueOrDie());
  }

  // Runs the eight methods at the scalar tier, then at every wider tier
  // this machine supports, and asserts bit identity per method.
  void CheckAllTiers(const QueryEngine& engine,
                     const UncertainObject& issuer,
                     const RangeQuerySpec& spec, const std::string& tag) {
    std::vector<AnswerSet> want;
    {
      simd::ScopedSimdLevel scalar(simd::SimdLevel::kScalar);
      want = RunAllMethods(engine, issuer, spec);
    }
    for (int l = 1; l <= static_cast<int>(simd::SimdLevel::kAvx512); ++l) {
      const auto level = static_cast<simd::SimdLevel>(l);
      simd::ScopedSimdLevel scoped(level);
      if (scoped.installed() != level) continue;  // unsupported or capped
      const std::vector<AnswerSet> got = RunAllMethods(engine, issuer, spec);
      for (size_t m = 0; m < got.size(); ++m) {
        ExpectBitIdentical(got[m], want[m],
                           tag + "/" + kMethodNames[m] + "@" +
                               simd::SimdLevelName(level));
      }
    }
  }

  std::optional<QueryEngine> engine_;
};

TEST_F(SimdDifferentialTest, AllEvaluatorsBitIdenticalAcrossTiersAnalytic) {
  std::vector<std::unique_ptr<UncertaintyPdf>> issuers;
  issuers.push_back(MakeUniform(Rect(350, 650, 350, 650)));
  issuers.push_back(MakeGaussian(Rect(400, 700, 300, 600)));
  issuers.push_back(MakeSkewedHistogram(Rect(300, 620, 380, 700), 3, 3, 77));

  for (auto& pdf : issuers) {
    Result<UncertainObject> issuer = engine_->MakeIssuer(std::move(pdf));
    ASSERT_TRUE(issuer.ok());
    const std::string who = issuer->pdf().name();
    for (const RangeQuerySpec spec :
         {RangeQuerySpec(120, 120, 0.0), RangeQuerySpec(250, 180, 0.3)}) {
      CheckAllTiers(*engine_, *issuer, spec,
                    who + " w=" + std::to_string(spec.w));
    }
  }
}

TEST_F(SimdDifferentialTest, AllEvaluatorsBitIdenticalAcrossTiersMonteCarlo) {
  // The MC kernels draw per-call deterministic sample streams, so answers
  // at different tiers compare exactly — the count kernels must agree with
  // Rect::Contains on every sampled point, including the NaN padding lanes
  // the wide tiers read past the sealed length.
  EngineConfig config;
  config.eval.kernel = ProbabilityKernel::kMonteCarlo;
  config.eval.mc_samples = 120;
  Result<QueryEngine> engine = QueryEngine::Build(
      MakePoints(311, 250), MakeMixedObjects(312, 90), config);
  ASSERT_TRUE(engine.ok());

  Result<UncertainObject> issuer =
      engine->MakeIssuer(MakeGaussian(Rect(350, 650, 350, 650)));
  ASSERT_TRUE(issuer.ok());
  CheckAllTiers(*engine, *issuer, RangeQuerySpec(200, 200, 0.2), "mc");
}

// EngineConfig::simd_level must reach the process-global dispatch policy
// at Build time (ILQ_SIMD_LEVEL still caps it, so assert <=, not ==).
TEST_F(SimdDifferentialTest, EngineConfigPlumbsSimdLevel) {
  const simd::SimdLevel before = simd::ActiveSimdLevel();
  EngineConfig config;
  config.simd_level = simd::SimdLevel::kScalar;
  Result<QueryEngine> engine = QueryEngine::Build(
      MakePoints(21, 10), MakeMixedObjects(22, 6), config);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(simd::ActiveSimdLevel(), simd::SimdLevel::kScalar);
  simd::SetActiveSimdLevel(before);
}

}  // namespace
}  // namespace ilq
