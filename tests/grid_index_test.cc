#include "index/grid_index.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::RandomRect;

TEST(GridIndexTest, CreateValidatesArguments) {
  EXPECT_FALSE(GridIndex::Create(Rect::Empty(), 4, 4).ok());
  EXPECT_FALSE(GridIndex::Create(Rect(0, 1, 0, 1), 0, 4).ok());
  EXPECT_TRUE(GridIndex::Create(Rect(0, 1, 0, 1), 1, 1).ok());
}

TEST(GridIndexTest, SingleItemFound) {
  Result<GridIndex> made = GridIndex::Create(Rect(0, 100, 0, 100), 10, 10);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  grid.Insert(Rect(10, 20, 10, 20), 42);
  const std::vector<ObjectId> got = grid.QueryIds(Rect(15, 16, 15, 16));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42u);
  EXPECT_TRUE(grid.QueryIds(Rect(50, 60, 50, 60)).empty());
}

TEST(GridIndexTest, SpanningItemReportedOnce) {
  Result<GridIndex> made = GridIndex::Create(Rect(0, 100, 0, 100), 10, 10);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  grid.Insert(Rect(5, 95, 5, 95), 1);  // spans nearly every cell
  const std::vector<ObjectId> got = grid.QueryIds(Rect(0, 100, 0, 100));
  EXPECT_EQ(got.size(), 1u);
}

TEST(GridIndexTest, MatchesBruteForce) {
  const Rect space(0, 1000, 0, 1000);
  Result<GridIndex> made = GridIndex::Create(space, 32, 32);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  Rng rng(21);
  std::vector<std::pair<Rect, ObjectId>> items;
  for (size_t i = 0; i < 3000; ++i) {
    const Rect box = RandomRect(&rng, space, 0.5, 60);
    items.emplace_back(box, static_cast<ObjectId>(i));
    grid.Insert(box, static_cast<ObjectId>(i));
  }
  for (int q = 0; q < 100; ++q) {
    const Rect range = RandomRect(&rng, space, 10, 300);
    std::set<ObjectId> expected;
    for (const auto& [box, id] : items) {
      if (box.Intersects(range)) expected.insert(id);
    }
    const std::vector<ObjectId> got = grid.QueryIds(range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()), expected);
    EXPECT_EQ(got.size(), expected.size());  // dedup by stamp
  }
}

TEST(GridIndexTest, QueryOutsideSpaceIsEmpty) {
  Result<GridIndex> made = GridIndex::Create(Rect(0, 100, 0, 100), 4, 4);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  grid.Insert(Rect(10, 20, 10, 20), 1);
  EXPECT_TRUE(grid.QueryIds(Rect(200, 300, 200, 300)).empty());
}

TEST(GridIndexTest, StatsCountCellAccesses) {
  Result<GridIndex> made = GridIndex::Create(Rect(0, 100, 0, 100), 10, 10);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  for (int i = 0; i < 100; ++i) {
    grid.Insert(Rect(i % 10 * 10.0 + 2, i % 10 * 10.0 + 4,
                     i / 10 * 10.0 + 2, i / 10 * 10.0 + 4),
                static_cast<ObjectId>(i));
  }
  IndexStats stats;
  grid.QueryIds(Rect(0, 35, 0, 35), &stats);
  EXPECT_GT(stats.node_accesses, 0u);
  EXPECT_GT(stats.candidates, 0u);
}

TEST(GridIndexTest, PointDataWorks) {
  const Rect space(0, 100, 0, 100);
  Result<GridIndex> made = GridIndex::Create(space, 16, 16);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  Rng rng(22);
  std::vector<std::pair<Point, ObjectId>> pts;
  for (size_t i = 0; i < 2000; ++i) {
    const Point p(rng.Uniform(0, 100), rng.Uniform(0, 100));
    pts.emplace_back(p, static_cast<ObjectId>(i));
    grid.Insert(Rect::AtPoint(p), static_cast<ObjectId>(i));
  }
  for (int q = 0; q < 50; ++q) {
    const Rect range = RandomRect(&rng, space, 5, 40);
    std::set<ObjectId> expected;
    for (const auto& [p, id] : pts) {
      if (range.Contains(p)) expected.insert(id);
    }
    const std::vector<ObjectId> got = grid.QueryIds(range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()), expected);
  }
}

TEST(GridIndexTest, RemoveUnregistersFromEveryCell) {
  Result<GridIndex> made = GridIndex::Create(Rect(0, 100, 0, 100), 10, 10);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  const Rect spanning(5, 95, 5, 95);  // overlaps nearly every cell
  grid.Insert(spanning, 1);
  grid.Insert(Rect(10, 20, 10, 20), 2);
  EXPECT_EQ(grid.size(), 2u);

  EXPECT_TRUE(grid.Remove(spanning, 1));
  EXPECT_EQ(grid.size(), 1u);
  // Gone from every region it used to overlap.
  EXPECT_TRUE(grid.QueryIds(Rect(80, 90, 80, 90)).empty());
  EXPECT_EQ(grid.QueryIds(Rect(0, 100, 0, 100)),
            std::vector<ObjectId>{2});

  // Removing again, or with a mismatched box/id, reports absence.
  EXPECT_FALSE(grid.Remove(spanning, 1));
  EXPECT_FALSE(grid.Remove(Rect(10, 20, 10, 20), 99));
  EXPECT_FALSE(grid.Remove(Rect(10, 21, 10, 20), 2));
  EXPECT_TRUE(grid.Remove(Rect(10, 20, 10, 20), 2));
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.QueryIds(Rect(0, 100, 0, 100)).empty());
}

TEST(GridIndexTest, RemoveRecyclesSlots) {
  Result<GridIndex> made = GridIndex::Create(Rect(0, 100, 0, 100), 4, 4);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  grid.Insert(Rect(10, 20, 10, 20), 1);
  grid.Insert(Rect(30, 40, 30, 40), 2);
  ASSERT_TRUE(grid.Remove(Rect(10, 20, 10, 20), 1));
  // The freed slot is reused; the new item is queryable, the old one gone.
  grid.Insert(Rect(60, 70, 60, 70), 3);
  EXPECT_EQ(grid.size(), 2u);
  const std::vector<ObjectId> got = grid.QueryIds(Rect(0, 100, 0, 100));
  EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()),
            (std::set<ObjectId>{2, 3}));
}

TEST(GridIndexTest, RemoveWithDuplicatesTakesOne) {
  Result<GridIndex> made = GridIndex::Create(Rect(0, 100, 0, 100), 4, 4);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  const Rect box(10, 20, 10, 20);
  grid.Insert(box, 7);
  grid.Insert(box, 7);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_TRUE(grid.Remove(box, 7));
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.QueryIds(box), std::vector<ObjectId>{7});
  EXPECT_TRUE(grid.Remove(box, 7));
  EXPECT_FALSE(grid.Remove(box, 7));
}

TEST(GridIndexTest, ChurnMatchesBruteForce) {
  const Rect space(0, 1000, 0, 1000);
  Result<GridIndex> made = GridIndex::Create(space, 16, 16);
  ASSERT_TRUE(made.ok());
  GridIndex grid = std::move(made).ValueOrDie();
  Rng rng(77);
  std::vector<std::pair<Rect, ObjectId>> live;
  ObjectId next_id = 1;
  for (int step = 0; step < 2000; ++step) {
    if (!live.empty() && rng.NextDouble() < 0.45) {
      const size_t at = static_cast<size_t>(rng.NextBelow(live.size()));
      const auto [box, id] = live[at];
      live[at] = live.back();
      live.pop_back();
      ASSERT_TRUE(grid.Remove(box, id)) << "step " << step;
    } else {
      const Rect box = RandomRect(&rng, space, 0.5, 80);
      grid.Insert(box, next_id);
      live.emplace_back(box, next_id);
      ++next_id;
    }
  }
  ASSERT_EQ(grid.size(), live.size());
  for (int q = 0; q < 50; ++q) {
    const Rect range = RandomRect(&rng, space, 10, 300);
    std::set<ObjectId> expected;
    for (const auto& [box, id] : live) {
      if (box.Intersects(range)) expected.insert(id);
    }
    const std::vector<ObjectId> got = grid.QueryIds(range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()), expected);
    EXPECT_EQ(got.size(), expected.size());
  }
}

}  // namespace
}  // namespace ilq
