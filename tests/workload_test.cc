#include "datagen/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "common/logging.h"
#include "core/engine.h"

namespace ilq {
namespace {

TEST(WorkloadTest, GeneratesRequestedQueries) {
  WorkloadConfig config;
  config.queries = 50;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->issuers.size(), 50u);
  EXPECT_DOUBLE_EQ(workload->spec.w, 500.0);
  EXPECT_DOUBLE_EQ(workload->spec.threshold, 0.0);
}

TEST(WorkloadTest, IssuerRegionsHaveRequestedSizeAndStayInside) {
  WorkloadConfig config;
  config.u = 250;
  config.queries = 100;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_NEAR(issuer.region().Width(), 500.0, 1e-9);
    EXPECT_NEAR(issuer.region().Height(), 500.0, 1e-9);
    EXPECT_TRUE(config.space.ContainsRect(issuer.region()));
  }
}

TEST(WorkloadTest, IssuersCarryCatalogs) {
  WorkloadConfig config;
  config.queries = 10;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    ASSERT_NE(issuer.catalog(), nullptr);
    EXPECT_EQ(issuer.catalog()->size(), 11u);
  }
}

TEST(WorkloadTest, GaussianIssuerKind) {
  WorkloadConfig config;
  config.queries = 5;
  config.issuer_pdf = IssuerPdfKind::kGaussian;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_EQ(issuer.pdf().name(), "gaussian");
  }
}

TEST(WorkloadTest, ZeroUProducesEpsilonRegions) {
  WorkloadConfig config;
  config.u = 0.0;
  config.queries = 5;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_GT(issuer.region().Width(), 0.0);
    EXPECT_LT(issuer.region().Width(), 0.01);
  }
}

TEST(WorkloadTest, ThresholdPropagatesToSpec) {
  WorkloadConfig config;
  config.qp = 0.6;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_DOUBLE_EQ(workload->spec.threshold, 0.6);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadConfig config;
  config.queries = 20;
  config.seed = 5;
  Result<Workload> a = GenerateWorkload(config);
  Result<Workload> b = GenerateWorkload(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->issuers.size(); ++i) {
    EXPECT_EQ(a->issuers[i].region(), b->issuers[i].region());
  }
}

TEST(WorkloadTest, RejectsBadArguments) {
  WorkloadConfig config;
  config.w = 0.0;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.qp = 1.5;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.u = -3.0;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.space = Rect::Empty();
  EXPECT_FALSE(GenerateWorkload(config).ok());
}

TEST(WorkloadTest, CustomCatalogLadder) {
  WorkloadConfig config;
  config.queries = 3;
  config.catalog_values = {0.0, 0.5, 1.0};
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->issuers[0].catalog()->size(), 3u);
}

// ---- Skewed serving traffic -------------------------------------------------

TEST(SkewedWorkloadTest, PoolCarriesUniqueNonZeroIdsAndCatalogs) {
  WorkloadConfig base;
  SkewConfig skew;
  skew.pool = 32;
  skew.requests = 100;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->pool.size(), 32u);
  for (size_t i = 0; i < workload->pool.size(); ++i) {
    EXPECT_EQ(workload->pool[i].id(), static_cast<ObjectId>(i + 1));
    EXPECT_NE(workload->pool[i].catalog(), nullptr);
    EXPECT_TRUE(base.space.ContainsRect(workload->pool[i].region()));
  }
  EXPECT_EQ(workload->sequence.size(), 100u);
  for (const size_t pick : workload->sequence) EXPECT_LT(pick, 32u);
}

TEST(SkewedWorkloadTest, ZipfianSelectionIsRankSkewed) {
  WorkloadConfig base;
  SkewConfig skew;
  skew.pool = 50;
  skew.requests = 5000;
  skew.zipf_s = 1.0;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(workload.ok());
  std::vector<size_t> counts(skew.pool, 0);
  for (const size_t pick : workload->sequence) ++counts[pick];
  // Rank 0 is the hottest issuer and beats the tail by a wide margin
  // (expected ratio 1/1 vs 1/50 under s = 1).
  EXPECT_GT(counts[0], counts[49] * 5);
  // The head (top 10 ranks) takes well over its uniform 20% share.
  size_t head = 0;
  for (size_t k = 0; k < 10; ++k) head += counts[k];
  EXPECT_GT(head, skew.requests / 2);
}

TEST(SkewedWorkloadTest, ZeroExponentIsRoughlyUniform) {
  WorkloadConfig base;
  SkewConfig skew;
  skew.pool = 10;
  skew.requests = 5000;
  skew.zipf_s = 0.0;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(workload.ok());
  std::vector<size_t> counts(skew.pool, 0);
  for (const size_t pick : workload->sequence) ++counts[pick];
  for (const size_t count : counts) {
    EXPECT_GT(count, 350u);  // expectation 500, generous noise margin
    EXPECT_LT(count, 650u);
  }
}

TEST(SkewedWorkloadTest, ClusteredPlacementConcentratesIssuers) {
  WorkloadConfig base;
  SkewConfig skew;
  skew.pool = 60;
  skew.requests = 10;
  skew.clustered = true;
  skew.clusters = 3;
  skew.cluster_spread = 0.02;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(workload.ok());
  // With 3 tight clusters the pairwise-nearest issuer is far closer than
  // under uniform placement over a 10000-wide space; check that every
  // issuer has some neighbour within a few spreads.
  const double spread = skew.cluster_spread * 10000.0;
  for (size_t i = 0; i < workload->pool.size(); ++i) {
    double nearest = 1e18;
    const Point a = workload->pool[i].region().Center();
    for (size_t j = 0; j < workload->pool.size(); ++j) {
      if (i == j) continue;
      const Point b = workload->pool[j].region().Center();
      const double dx = a.x - b.x;
      const double dy = a.y - b.y;
      nearest = std::min(nearest, dx * dx + dy * dy);
    }
    EXPECT_LT(nearest, 36.0 * spread * spread) << "issuer " << i;
  }
  // Regions still live inside the space (clamped).
  for (const UncertainObject& issuer : workload->pool) {
    EXPECT_TRUE(base.space.ContainsRect(issuer.region()));
  }
}

TEST(SkewedWorkloadTest, DeterministicPerSeedAndRejectsBadArguments) {
  WorkloadConfig base;
  base.seed = 11;
  SkewConfig skew;
  skew.pool = 16;
  skew.requests = 64;
  Result<SkewedWorkload> a = GenerateSkewedWorkload(base, skew);
  Result<SkewedWorkload> b = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sequence, b->sequence);
  for (size_t i = 0; i < a->pool.size(); ++i) {
    EXPECT_EQ(a->pool[i].region(), b->pool[i].region());
  }

  SkewConfig bad = skew;
  bad.pool = 0;
  EXPECT_FALSE(GenerateSkewedWorkload(base, bad).ok());
  bad = skew;
  bad.zipf_s = -1.0;
  EXPECT_FALSE(GenerateSkewedWorkload(base, bad).ok());
  bad = skew;
  bad.clustered = true;
  bad.clusters = 0;
  EXPECT_FALSE(GenerateSkewedWorkload(base, bad).ok());
  WorkloadConfig bad_base = base;
  bad_base.w = 0.0;
  EXPECT_FALSE(GenerateSkewedWorkload(bad_base, skew).ok());
}

// ---- Churn streams ----------------------------------------------------------

TEST(ChurnWorkloadTest, SeedsDatasetsAndStreamShape) {
  WorkloadConfig base;
  base.space = Rect(0, 1000, 0, 1000);
  ChurnConfig churn;
  churn.initial_points = 40;
  churn.initial_uncertains = 25;
  churn.ops = 300;
  churn.object_half_extent = 20.0;
  Result<ChurnWorkload> workload = GenerateChurnWorkload(base, churn);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  ASSERT_EQ(workload->initial_points.size(), 40u);
  ASSERT_EQ(workload->initial_uncertains.size(), 25u);
  EXPECT_EQ(workload->stream.size(), 300u);
  for (size_t i = 0; i < workload->initial_points.size(); ++i) {
    EXPECT_EQ(workload->initial_points[i].id, static_cast<ObjectId>(i + 1));
    EXPECT_TRUE(base.space.Contains(workload->initial_points[i].location));
  }
  for (size_t i = 0; i < workload->initial_uncertains.size(); ++i) {
    const UncertainObject& u = workload->initial_uncertains[i];
    EXPECT_EQ(u.id(), static_cast<ObjectId>(i + 1));
    EXPECT_TRUE(base.space.ContainsRect(u.region()));
    EXPECT_NEAR(u.region().Width(), 40.0, 1e-9);
  }
  // Placements stay inside the space; uncertain ops carry pdfs.
  for (const UpdateOp& op : workload->stream) {
    switch (op.kind) {
      case UpdateKind::kInsertPoint:
      case UpdateKind::kMovePoint:
        EXPECT_TRUE(base.space.Contains(op.location));
        break;
      case UpdateKind::kInsertUncertain:
      case UpdateKind::kMoveUncertain:
        ASSERT_TRUE(op.pdf.has_value());
        break;
      default:
        break;
    }
  }
}

// The stream must be valid by construction: replaying it against plain
// live-id sets never inserts a duplicate or touches a missing id.
TEST(ChurnWorkloadTest, StreamIsValidByConstruction) {
  WorkloadConfig base;
  ChurnConfig churn;
  churn.initial_points = 10;
  churn.initial_uncertains = 5;
  churn.ops = 2000;
  churn.erase_fraction = 0.45;  // erase-heavy: drains the sets repeatedly
  churn.insert_fraction = 0.30;
  Result<ChurnWorkload> workload = GenerateChurnWorkload(base, churn);
  ASSERT_TRUE(workload.ok());

  std::set<ObjectId> points;
  std::set<ObjectId> uncertains;
  for (const PointObject& p : workload->initial_points) points.insert(p.id);
  for (const UncertainObject& u : workload->initial_uncertains) {
    uncertains.insert(u.id());
  }
  for (size_t i = 0; i < workload->stream.size(); ++i) {
    const UpdateOp& op = workload->stream[i];
    switch (op.kind) {
      case UpdateKind::kInsertPoint:
        EXPECT_TRUE(points.insert(op.id).second) << "op " << i;
        break;
      case UpdateKind::kErasePoint:
        EXPECT_EQ(points.erase(op.id), 1u) << "op " << i;
        break;
      case UpdateKind::kMovePoint:
        EXPECT_TRUE(points.count(op.id)) << "op " << i;
        break;
      case UpdateKind::kInsertUncertain:
        EXPECT_TRUE(uncertains.insert(op.id).second) << "op " << i;
        break;
      case UpdateKind::kEraseUncertain:
        EXPECT_EQ(uncertains.erase(op.id), 1u) << "op " << i;
        break;
      case UpdateKind::kMoveUncertain:
        EXPECT_TRUE(uncertains.count(op.id)) << "op " << i;
        break;
    }
  }
}

TEST(ChurnWorkloadTest, PlacementFollowsHotspotSkew) {
  WorkloadConfig base;
  base.space = Rect(0, 10000, 0, 10000);
  ChurnConfig churn;
  churn.initial_points = 500;
  churn.initial_uncertains = 0;
  churn.ops = 0;
  churn.hotspots = 3;
  churn.hotspot_spread = 0.01;
  Result<ChurnWorkload> workload = GenerateChurnWorkload(base, churn);
  ASSERT_TRUE(workload.ok());
  // With 3 tight hotspots every point has a near neighbour, unlike uniform
  // placement over a 10000-wide space (same argument as the clustered
  // skewed-workload test).
  const double spread = churn.hotspot_spread * 10000.0;
  for (size_t i = 0; i < workload->initial_points.size(); ++i) {
    double nearest = 1e18;
    const Point a = workload->initial_points[i].location;
    for (size_t j = 0; j < workload->initial_points.size(); ++j) {
      if (i == j) continue;
      const Point b = workload->initial_points[j].location;
      nearest = std::min(nearest, (a.x - b.x) * (a.x - b.x) +
                                      (a.y - b.y) * (a.y - b.y));
    }
    EXPECT_LT(nearest, 36.0 * spread * spread) << "point " << i;
  }
}

TEST(ChurnWorkloadTest, BitIdenticalStreamsPerSeed) {
  WorkloadConfig base;
  base.seed = 99;
  ChurnConfig churn;
  churn.ops = 400;
  Result<ChurnWorkload> a = GenerateChurnWorkload(base, churn);
  Result<ChurnWorkload> b = GenerateChurnWorkload(base, churn);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->stream.size(), b->stream.size());
  for (size_t i = 0; i < a->stream.size(); ++i) {
    EXPECT_EQ(a->stream[i].kind, b->stream[i].kind) << "op " << i;
    EXPECT_EQ(a->stream[i].id, b->stream[i].id) << "op " << i;
    EXPECT_EQ(a->stream[i].location.x, b->stream[i].location.x) << "op " << i;
    EXPECT_EQ(a->stream[i].location.y, b->stream[i].location.y) << "op " << i;
  }
  Result<ChurnWorkload> c = GenerateChurnWorkload(WorkloadConfig{}, churn);
  ASSERT_TRUE(c.ok());
  // A different seed produces a different stream (spot check).
  bool any_diff = a->stream.size() != c->stream.size();
  for (size_t i = 0; !any_diff && i < a->stream.size(); ++i) {
    any_diff = a->stream[i].kind != c->stream[i].kind ||
               a->stream[i].id != c->stream[i].id;
  }
  EXPECT_TRUE(any_diff);
}

// The determinism pin the serving stack depends on: replaying one churn
// stream and then batch-evaluating a query workload yields bit-identical
// answers regardless of the replay batching or the RunBatch thread count.
TEST(ChurnWorkloadTest, ReplayIsDeterministicAcrossThreadCounts) {
  WorkloadConfig base;
  base.space = Rect(0, 1000, 0, 1000);
  base.seed = 17;
  ChurnConfig churn;
  churn.initial_points = 80;
  churn.initial_uncertains = 40;
  churn.ops = 120;
  churn.object_half_extent = 25.0;
  Result<ChurnWorkload> workload = GenerateChurnWorkload(base, churn);
  ASSERT_TRUE(workload.ok());

  EngineConfig config;
  config.eval.quadrature_order = 8;
  const auto replay = [&](size_t batch_size) {
    Result<QueryEngine> engine = QueryEngine::Build(
        workload->initial_points, workload->initial_uncertains, config);
    ILQ_CHECK(engine.ok(), engine.status().ToString());
    for (size_t begin = 0; begin < workload->stream.size();
         begin += batch_size) {
      const size_t end =
          std::min(begin + batch_size, workload->stream.size());
      const UpdateBatch batch(workload->stream.begin() + begin,
                              workload->stream.begin() + end);
      ILQ_CHECK(engine->ApplyUpdates(batch).ok(), "replay failed");
    }
    return std::move(engine).ValueOrDie();
  };

  const QueryEngine whole = replay(workload->stream.size());
  const QueryEngine chunked = replay(7);

  Result<UncertainObject> issuer =
      whole.MakeIssuer(std::make_unique<UniformRectPdf>(
          UniformRectPdf::Make(Rect(300, 700, 300, 700)).ValueOrDie()));
  ASSERT_TRUE(issuer.ok());
  const std::vector<UncertainObject> issuers(8, *issuer);
  const BatchSpec spec{RangeQuerySpec(200, 200, 0.0)};

  for (const QueryMethod method :
       {QueryMethod::kIpq, QueryMethod::kIuq, QueryMethod::kCiuqPti}) {
    BatchOptions serial;
    serial.threads = 1;
    BatchOptions threaded;
    threaded.threads = 4;
    const BatchResult a = whole.RunBatch(method, issuers, spec, serial);
    const BatchResult b = chunked.RunBatch(method, issuers, spec, threaded);
    ASSERT_EQ(a.answers.size(), b.answers.size());
    const auto by_id = [](AnswerSet answers) {
      std::sort(answers.begin(), answers.end(),
                [](const ProbabilisticAnswer& x, const ProbabilisticAnswer& y) {
                  return x.id < y.id;
                });
      return answers;
    };
    for (size_t i = 0; i < a.answers.size(); ++i) {
      // Differently batched replays grow differently shaped trees, so
      // traversal order may differ; the answer *set* must not.
      const AnswerSet sa = by_id(a.answers[i]);
      const AnswerSet sb = by_id(b.answers[i]);
      ASSERT_EQ(sa.size(), sb.size())
          << QueryMethodName(method) << " issuer " << i;
      for (size_t j = 0; j < sa.size(); ++j) {
        EXPECT_EQ(sa[j].id, sb[j].id);
        EXPECT_EQ(sa[j].probability, sb[j].probability);
      }
    }
  }
}

TEST(ChurnWorkloadTest, RejectsBadArguments) {
  WorkloadConfig base;
  ChurnConfig churn;
  churn.insert_fraction = 0.8;
  churn.erase_fraction = 0.5;  // sums past 1
  EXPECT_FALSE(GenerateChurnWorkload(base, churn).ok());
  churn = ChurnConfig{};
  churn.point_fraction = 1.5;
  EXPECT_FALSE(GenerateChurnWorkload(base, churn).ok());
  churn = ChurnConfig{};
  churn.hotspots = 0;
  EXPECT_FALSE(GenerateChurnWorkload(base, churn).ok());
  churn = ChurnConfig{};
  churn.object_half_extent = 0.0;
  EXPECT_FALSE(GenerateChurnWorkload(base, churn).ok());
  churn = ChurnConfig{};
  churn.zipf_s = -0.5;
  EXPECT_FALSE(GenerateChurnWorkload(base, churn).ok());
  WorkloadConfig bad_base;
  bad_base.space = Rect::Empty();
  EXPECT_FALSE(GenerateChurnWorkload(bad_base, ChurnConfig{}).ok());
}

// ---- Trajectories (moving issuers) -----------------------------------------

TEST(TrajectoryWorkloadTest, DeterministicInSeedAndShape) {
  WorkloadConfig base;
  base.seed = 31;
  TrajectoryConfig traj;
  traj.issuers = 3;
  traj.steps = 12;
  traj.u_min = 20.0;
  traj.u_max = 60.0;
  Result<TrajectoryWorkload> a = GenerateTrajectoryWorkload(base, traj);
  Result<TrajectoryWorkload> b = GenerateTrajectoryWorkload(base, traj);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->steps.size(), 3u);
  for (size_t i = 0; i < a->steps.size(); ++i) {
    ASSERT_EQ(a->steps[i].size(), 12u);
    for (size_t t = 0; t < a->steps[i].size(); ++t) {
      EXPECT_EQ(a->steps[i][t].region(), b->steps[i][t].region())
          << "issuer " << i << " step " << t;
    }
  }
  // A different seed actually changes the trajectories.
  base.seed = 32;
  Result<TrajectoryWorkload> c = GenerateTrajectoryWorkload(base, traj);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->steps[0][0].region(), c->steps[0][0].region());
}

TEST(TrajectoryWorkloadTest, AddingIssuersNeverPerturbsExistingOnes) {
  WorkloadConfig base;
  base.seed = 47;
  TrajectoryConfig traj;
  traj.issuers = 2;
  traj.steps = 10;
  Result<TrajectoryWorkload> small = GenerateTrajectoryWorkload(base, traj);
  traj.issuers = 7;
  Result<TrajectoryWorkload> large = GenerateTrajectoryWorkload(base, traj);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  for (size_t i = 0; i < small->steps.size(); ++i) {
    for (size_t t = 0; t < small->steps[i].size(); ++t) {
      EXPECT_EQ(small->steps[i][t].region(), large->steps[i][t].region())
          << "issuer " << i << " step " << t;
    }
  }
}

TEST(TrajectoryWorkloadTest, StepsStayInsideWithBoundedImprecision) {
  WorkloadConfig base;
  TrajectoryConfig traj;
  traj.issuers = 4;
  traj.steps = 30;
  traj.u_min = 25.0;
  traj.u_max = 75.0;
  Result<TrajectoryWorkload> workload =
      GenerateTrajectoryWorkload(base, traj);
  ASSERT_TRUE(workload.ok());
  for (size_t i = 0; i < workload->steps.size(); ++i) {
    for (const UncertainObject& step : workload->steps[i]) {
      EXPECT_EQ(step.id(), static_cast<ObjectId>(i + 1));
      EXPECT_TRUE(base.space.ContainsRect(step.region()));
      EXPECT_GE(step.region().Width(), 2 * traj.u_min - 1e-9);
      EXPECT_LE(step.region().Width(), 2 * traj.u_max + 1e-9);
      ASSERT_NE(step.catalog(), nullptr);
    }
  }
}

TEST(TrajectoryWorkloadTest, WaypointMotionIsSpeedBounded) {
  WorkloadConfig base;
  TrajectoryConfig traj;
  traj.issuers = 3;
  traj.steps = 40;
  traj.kind = TrajectoryKind::kWaypoint;
  traj.step = 150.0;
  traj.u_min = 10.0;
  traj.u_max = 10.0;
  traj.hotspots = 4;
  Result<TrajectoryWorkload> workload =
      GenerateTrajectoryWorkload(base, traj);
  ASSERT_TRUE(workload.ok());
  for (const std::vector<UncertainObject>& trajectory : workload->steps) {
    for (size_t t = 1; t < trajectory.size(); ++t) {
      // Region centres sit within u of the true position (border clamping
      // can shift a region by at most its half-side), so consecutive
      // centres can be at most step + 2u apart.
      const Point a = trajectory[t - 1].region().Center();
      const Point b = trajectory[t].region().Center();
      const double moved = std::hypot(b.x - a.x, b.y - a.y);
      EXPECT_LE(moved, traj.step + 2 * traj.u_max + 1e-9)
          << "step " << t;
    }
  }
}

TEST(TrajectoryWorkloadTest, GaussianIssuerFamilyIsRespected) {
  WorkloadConfig base;
  base.issuer_pdf = IssuerPdfKind::kGaussian;
  TrajectoryConfig traj;
  traj.issuers = 2;
  traj.steps = 4;
  Result<TrajectoryWorkload> workload =
      GenerateTrajectoryWorkload(base, traj);
  ASSERT_TRUE(workload.ok());
  for (const auto& trajectory : workload->steps) {
    for (const UncertainObject& step : trajectory) {
      EXPECT_EQ(step.pdf().name(), "gaussian");
    }
  }
}

TEST(TrajectoryWorkloadTest, RejectsInvalidConfigs) {
  const WorkloadConfig base;
  TrajectoryConfig traj;
  traj.issuers = 0;
  EXPECT_FALSE(GenerateTrajectoryWorkload(base, traj).ok());
  traj = TrajectoryConfig{};
  traj.steps = 0;
  EXPECT_FALSE(GenerateTrajectoryWorkload(base, traj).ok());
  traj = TrajectoryConfig{};
  traj.step = -1.0;
  EXPECT_FALSE(GenerateTrajectoryWorkload(base, traj).ok());
  traj = TrajectoryConfig{};
  traj.u_min = 50.0;
  traj.u_max = 10.0;
  EXPECT_FALSE(GenerateTrajectoryWorkload(base, traj).ok());
  traj = TrajectoryConfig{};
  traj.kind = TrajectoryKind::kWaypoint;
  traj.hotspots = 0;
  EXPECT_FALSE(GenerateTrajectoryWorkload(base, traj).ok());
  traj = TrajectoryConfig{};
  traj.zipf_s = -0.5;
  EXPECT_FALSE(GenerateTrajectoryWorkload(base, traj).ok());
}

}  // namespace
}  // namespace ilq

