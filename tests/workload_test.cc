#include "datagen/workload.h"

#include <gtest/gtest.h>

namespace ilq {
namespace {

TEST(WorkloadTest, GeneratesRequestedQueries) {
  WorkloadConfig config;
  config.queries = 50;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->issuers.size(), 50u);
  EXPECT_DOUBLE_EQ(workload->spec.w, 500.0);
  EXPECT_DOUBLE_EQ(workload->spec.threshold, 0.0);
}

TEST(WorkloadTest, IssuerRegionsHaveRequestedSizeAndStayInside) {
  WorkloadConfig config;
  config.u = 250;
  config.queries = 100;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_NEAR(issuer.region().Width(), 500.0, 1e-9);
    EXPECT_NEAR(issuer.region().Height(), 500.0, 1e-9);
    EXPECT_TRUE(config.space.ContainsRect(issuer.region()));
  }
}

TEST(WorkloadTest, IssuersCarryCatalogs) {
  WorkloadConfig config;
  config.queries = 10;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    ASSERT_NE(issuer.catalog(), nullptr);
    EXPECT_EQ(issuer.catalog()->size(), 11u);
  }
}

TEST(WorkloadTest, GaussianIssuerKind) {
  WorkloadConfig config;
  config.queries = 5;
  config.issuer_pdf = IssuerPdfKind::kGaussian;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_EQ(issuer.pdf().name(), "gaussian");
  }
}

TEST(WorkloadTest, ZeroUProducesEpsilonRegions) {
  WorkloadConfig config;
  config.u = 0.0;
  config.queries = 5;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_GT(issuer.region().Width(), 0.0);
    EXPECT_LT(issuer.region().Width(), 0.01);
  }
}

TEST(WorkloadTest, ThresholdPropagatesToSpec) {
  WorkloadConfig config;
  config.qp = 0.6;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_DOUBLE_EQ(workload->spec.threshold, 0.6);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadConfig config;
  config.queries = 20;
  config.seed = 5;
  Result<Workload> a = GenerateWorkload(config);
  Result<Workload> b = GenerateWorkload(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->issuers.size(); ++i) {
    EXPECT_EQ(a->issuers[i].region(), b->issuers[i].region());
  }
}

TEST(WorkloadTest, RejectsBadArguments) {
  WorkloadConfig config;
  config.w = 0.0;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.qp = 1.5;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.u = -3.0;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.space = Rect::Empty();
  EXPECT_FALSE(GenerateWorkload(config).ok());
}

TEST(WorkloadTest, CustomCatalogLadder) {
  WorkloadConfig config;
  config.queries = 3;
  config.catalog_values = {0.0, 0.5, 1.0};
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->issuers[0].catalog()->size(), 3u);
}

}  // namespace
}  // namespace ilq
