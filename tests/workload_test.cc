#include "datagen/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ilq {
namespace {

TEST(WorkloadTest, GeneratesRequestedQueries) {
  WorkloadConfig config;
  config.queries = 50;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->issuers.size(), 50u);
  EXPECT_DOUBLE_EQ(workload->spec.w, 500.0);
  EXPECT_DOUBLE_EQ(workload->spec.threshold, 0.0);
}

TEST(WorkloadTest, IssuerRegionsHaveRequestedSizeAndStayInside) {
  WorkloadConfig config;
  config.u = 250;
  config.queries = 100;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_NEAR(issuer.region().Width(), 500.0, 1e-9);
    EXPECT_NEAR(issuer.region().Height(), 500.0, 1e-9);
    EXPECT_TRUE(config.space.ContainsRect(issuer.region()));
  }
}

TEST(WorkloadTest, IssuersCarryCatalogs) {
  WorkloadConfig config;
  config.queries = 10;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    ASSERT_NE(issuer.catalog(), nullptr);
    EXPECT_EQ(issuer.catalog()->size(), 11u);
  }
}

TEST(WorkloadTest, GaussianIssuerKind) {
  WorkloadConfig config;
  config.queries = 5;
  config.issuer_pdf = IssuerPdfKind::kGaussian;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_EQ(issuer.pdf().name(), "gaussian");
  }
}

TEST(WorkloadTest, ZeroUProducesEpsilonRegions) {
  WorkloadConfig config;
  config.u = 0.0;
  config.queries = 5;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    EXPECT_GT(issuer.region().Width(), 0.0);
    EXPECT_LT(issuer.region().Width(), 0.01);
  }
}

TEST(WorkloadTest, ThresholdPropagatesToSpec) {
  WorkloadConfig config;
  config.qp = 0.6;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_DOUBLE_EQ(workload->spec.threshold, 0.6);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadConfig config;
  config.queries = 20;
  config.seed = 5;
  Result<Workload> a = GenerateWorkload(config);
  Result<Workload> b = GenerateWorkload(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->issuers.size(); ++i) {
    EXPECT_EQ(a->issuers[i].region(), b->issuers[i].region());
  }
}

TEST(WorkloadTest, RejectsBadArguments) {
  WorkloadConfig config;
  config.w = 0.0;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.qp = 1.5;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.u = -3.0;
  EXPECT_FALSE(GenerateWorkload(config).ok());
  config = WorkloadConfig{};
  config.space = Rect::Empty();
  EXPECT_FALSE(GenerateWorkload(config).ok());
}

TEST(WorkloadTest, CustomCatalogLadder) {
  WorkloadConfig config;
  config.queries = 3;
  config.catalog_values = {0.0, 0.5, 1.0};
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->issuers[0].catalog()->size(), 3u);
}

// ---- Skewed serving traffic -------------------------------------------------

TEST(SkewedWorkloadTest, PoolCarriesUniqueNonZeroIdsAndCatalogs) {
  WorkloadConfig base;
  SkewConfig skew;
  skew.pool = 32;
  skew.requests = 100;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->pool.size(), 32u);
  for (size_t i = 0; i < workload->pool.size(); ++i) {
    EXPECT_EQ(workload->pool[i].id(), static_cast<ObjectId>(i + 1));
    EXPECT_NE(workload->pool[i].catalog(), nullptr);
    EXPECT_TRUE(base.space.ContainsRect(workload->pool[i].region()));
  }
  EXPECT_EQ(workload->sequence.size(), 100u);
  for (const size_t pick : workload->sequence) EXPECT_LT(pick, 32u);
}

TEST(SkewedWorkloadTest, ZipfianSelectionIsRankSkewed) {
  WorkloadConfig base;
  SkewConfig skew;
  skew.pool = 50;
  skew.requests = 5000;
  skew.zipf_s = 1.0;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(workload.ok());
  std::vector<size_t> counts(skew.pool, 0);
  for (const size_t pick : workload->sequence) ++counts[pick];
  // Rank 0 is the hottest issuer and beats the tail by a wide margin
  // (expected ratio 1/1 vs 1/50 under s = 1).
  EXPECT_GT(counts[0], counts[49] * 5);
  // The head (top 10 ranks) takes well over its uniform 20% share.
  size_t head = 0;
  for (size_t k = 0; k < 10; ++k) head += counts[k];
  EXPECT_GT(head, skew.requests / 2);
}

TEST(SkewedWorkloadTest, ZeroExponentIsRoughlyUniform) {
  WorkloadConfig base;
  SkewConfig skew;
  skew.pool = 10;
  skew.requests = 5000;
  skew.zipf_s = 0.0;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(workload.ok());
  std::vector<size_t> counts(skew.pool, 0);
  for (const size_t pick : workload->sequence) ++counts[pick];
  for (const size_t count : counts) {
    EXPECT_GT(count, 350u);  // expectation 500, generous noise margin
    EXPECT_LT(count, 650u);
  }
}

TEST(SkewedWorkloadTest, ClusteredPlacementConcentratesIssuers) {
  WorkloadConfig base;
  SkewConfig skew;
  skew.pool = 60;
  skew.requests = 10;
  skew.clustered = true;
  skew.clusters = 3;
  skew.cluster_spread = 0.02;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(workload.ok());
  // With 3 tight clusters the pairwise-nearest issuer is far closer than
  // under uniform placement over a 10000-wide space; check that every
  // issuer has some neighbour within a few spreads.
  const double spread = skew.cluster_spread * 10000.0;
  for (size_t i = 0; i < workload->pool.size(); ++i) {
    double nearest = 1e18;
    const Point a = workload->pool[i].region().Center();
    for (size_t j = 0; j < workload->pool.size(); ++j) {
      if (i == j) continue;
      const Point b = workload->pool[j].region().Center();
      const double dx = a.x - b.x;
      const double dy = a.y - b.y;
      nearest = std::min(nearest, dx * dx + dy * dy);
    }
    EXPECT_LT(nearest, 36.0 * spread * spread) << "issuer " << i;
  }
  // Regions still live inside the space (clamped).
  for (const UncertainObject& issuer : workload->pool) {
    EXPECT_TRUE(base.space.ContainsRect(issuer.region()));
  }
}

TEST(SkewedWorkloadTest, DeterministicPerSeedAndRejectsBadArguments) {
  WorkloadConfig base;
  base.seed = 11;
  SkewConfig skew;
  skew.pool = 16;
  skew.requests = 64;
  Result<SkewedWorkload> a = GenerateSkewedWorkload(base, skew);
  Result<SkewedWorkload> b = GenerateSkewedWorkload(base, skew);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sequence, b->sequence);
  for (size_t i = 0; i < a->pool.size(); ++i) {
    EXPECT_EQ(a->pool[i].region(), b->pool[i].region());
  }

  SkewConfig bad = skew;
  bad.pool = 0;
  EXPECT_FALSE(GenerateSkewedWorkload(base, bad).ok());
  bad = skew;
  bad.zipf_s = -1.0;
  EXPECT_FALSE(GenerateSkewedWorkload(base, bad).ok());
  bad = skew;
  bad.clustered = true;
  bad.clusters = 0;
  EXPECT_FALSE(GenerateSkewedWorkload(base, bad).ok());
  WorkloadConfig bad_base = base;
  bad_base.w = 0.0;
  EXPECT_FALSE(GenerateSkewedWorkload(bad_base, skew).ok());
}

}  // namespace
}  // namespace ilq

