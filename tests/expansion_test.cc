#include "core/expansion.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/duality.h"
#include "object/uncertain_object.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

TEST(ExpansionTest, MinkowskiGrowsByHalfExtents) {
  // Figure 2's construction.
  const Rect u0(100, 150, 200, 260);
  EXPECT_EQ(MinkowskiExpandedQuery(u0, 30, 40), Rect(70, 180, 160, 300));
}

TEST(ExpansionTest, ZeroExpandedEqualsMinkowski) {
  // "the Minkowski Sum of R and U0 is equivalent to a 0-expanded-query".
  auto pdf = MakeUniform(Rect(0, 100, 0, 60));
  const Rect p0 = PExpandedQuery(*pdf, 25, 15, 0.0);
  EXPECT_EQ(p0, MinkowskiExpandedQuery(pdf->bounds(), 25, 15));
}

TEST(ExpansionTest, PExpandedShrinksWithP) {
  // "pj >= pk iff the pj-expanded-query is enclosed by the pk-expanded".
  auto pdf = MakeUniform(Rect(0, 100, 0, 100));
  const Rect q0 = PExpandedQuery(*pdf, 50, 50, 0.0);
  const Rect q2 = PExpandedQuery(*pdf, 50, 50, 0.2);
  const Rect q4 = PExpandedQuery(*pdf, 50, 50, 0.4);
  EXPECT_TRUE(q0.ContainsRect(q2));
  EXPECT_TRUE(q2.ContainsRect(q4));
  EXPECT_LT(q4.Area(), q2.Area());
}

TEST(ExpansionTest, UniformLemma5Distances) {
  // Lemma 5: lcb(p) sits d units right of lcb(0) where d is the distance
  // between l0(0) and l0(p). For a uniform issuer of width 100, p = 0.2
  // gives d = 20.
  auto pdf = MakeUniform(Rect(0, 100, 0, 100));
  const Rect q0 = PExpandedQuery(*pdf, 50, 50, 0.0);
  const Rect q2 = PExpandedQuery(*pdf, 50, 50, 0.2);
  EXPECT_DOUBLE_EQ(q2.xmin - q0.xmin, 20.0);
  EXPECT_DOUBLE_EQ(q0.xmax - q2.xmax, 20.0);
}

TEST(ExpansionTest, PExpandedCanBecomeEmpty) {
  // A narrow query with a high threshold cannot be satisfied anywhere.
  auto pdf = MakeUniform(Rect(0, 100, 0, 100));
  const Rect q = PExpandedQuery(*pdf, 1, 1, 0.9);
  EXPECT_TRUE(q.IsEmpty());
}

TEST(ExpansionTest, CatalogFloorIsConservative) {
  // The catalog-based filter must enclose the exact Qp-expanded-query.
  auto pdf = MakeGaussian(Rect(0, 120, 0, 120));
  UncertainObject issuer(0, pdf->Clone());
  ASSERT_TRUE(issuer.BuildCatalog(UCatalog::EvenlySpacedValues(11)).ok());
  for (double qp : {0.05, 0.17, 0.33, 0.61, 0.99}) {
    const Rect from_catalog =
        PExpandedQueryFromCatalog(*issuer.catalog(), 40, 40, qp);
    const Rect exact = PExpandedQuery(*pdf, 40, 40, qp);
    EXPECT_TRUE(from_catalog.ContainsRect(exact)) << "qp=" << qp;
  }
}

TEST(ExpansionTest, CatalogExactValueMatches) {
  // When Qp is exactly catalogued the two constructions coincide.
  auto pdf = MakeUniform(Rect(0, 100, 0, 100));
  UncertainObject issuer(0, pdf->Clone());
  ASSERT_TRUE(issuer.BuildCatalog(UCatalog::EvenlySpacedValues(11)).ok());
  const Rect from_catalog =
      PExpandedQueryFromCatalog(*issuer.catalog(), 30, 30, 0.3);
  const Rect exact = PExpandedQuery(*pdf, 30, 30, 0.3);
  EXPECT_NEAR(from_catalog.xmin, exact.xmin, 1e-9);
  EXPECT_NEAR(from_catalog.xmax, exact.xmax, 1e-9);
}

// Definition 7 / Lemma 5 property: any point outside the p-expanded-query
// has qualification probability <= p. Swept over pdf families and random
// geometry.
class PExpandedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PExpandedPropertyTest, OutsidePointsQualifyBelowP) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const Rect region = RandomRect(&rng, Rect(0, 1000, 0, 1000), 20, 200);
    std::unique_ptr<UncertaintyPdf> pdf;
    if (iter % 2 == 0) {
      pdf = MakeUniform(region);
    } else {
      pdf = MakeGaussian(region);
    }
    const double w = rng.Uniform(10, 150);
    const double h = rng.Uniform(10, 150);
    const double p = rng.Uniform(0.05, 0.95);
    const Rect expanded = PExpandedQuery(*pdf, w, h, p);
    for (int s = 0; s < 40; ++s) {
      const Point probe(rng.Uniform(-100, 1100), rng.Uniform(-100, 1100));
      if (expanded.Contains(probe)) continue;
      const double pi = PointQualification(*pdf, probe, w, h);
      EXPECT_LE(pi, p + 1e-9)
          << "outside point qualified with " << pi << " > " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PExpandedPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace ilq
