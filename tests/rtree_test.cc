#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::RandomRect;

std::vector<RTree::Item> RandomItems(size_t n, uint64_t seed,
                                     double max_side = 40.0) {
  Rng rng(seed);
  const Rect space(0, 1000, 0, 1000);
  std::vector<RTree::Item> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.push_back(
        {RandomRect(&rng, space, 0.5, max_side), static_cast<ObjectId>(i)});
  }
  return items;
}

std::set<ObjectId> BruteForce(const std::vector<RTree::Item>& items,
                              const Rect& range) {
  std::set<ObjectId> hits;
  for (const RTree::Item& item : items) {
    if (item.box.Intersects(range)) hits.insert(item.id);
  }
  return hits;
}

TEST(RTreeTest, MaxEntriesDerivedFromPageSize) {
  RTreeOptions options;
  options.page_size_bytes = 4096;
  // (4096 - 16) / 36 = 113 entries per 4K page.
  EXPECT_EQ(MaxEntriesForPage(options), 113u);
  options.extra_entry_bytes = 11 * 32;  // PTI with an 11-value catalog
  EXPECT_EQ(MaxEntriesForPage(options), (4096u - 16u) / (36u + 352u));
}

TEST(RTreeTest, CreateRejectsTinyPages) {
  RTreeOptions options;
  options.page_size_bytes = 50;
  EXPECT_FALSE(RTree::Create(options).ok());
}

TEST(RTreeTest, CreateRejectsBadFillFraction) {
  RTreeOptions options;
  options.min_fill_fraction = 0.9;
  EXPECT_FALSE(RTree::Create(options).ok());
  options.min_fill_fraction = 0.0;
  EXPECT_FALSE(RTree::Create(options).ok());
}

TEST(RTreeTest, EmptyTreeQueriesNothing) {
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_TRUE(tree->QueryIds(Rect(0, 1, 0, 1)).empty());
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(RTreeTest, BulkLoadSingleItem) {
  Result<RTree> tree =
      RTree::BulkLoad(RTreeOptions{}, {{Rect(1, 2, 3, 4), 7}});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(tree->height(), 1u);
  const std::vector<ObjectId> ids = tree->QueryIds(Rect(0, 5, 0, 5));
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 7u);
}

TEST(RTreeTest, BulkLoadValidatesInvariants) {
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, RandomItems(5000, 1));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  EXPECT_EQ(tree->size(), 5000u);
  EXPECT_GE(tree->height(), 2u);
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  const std::vector<RTree::Item> items = RandomItems(3000, 2);
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(tree.ok());
  Rng rng(3);
  for (int q = 0; q < 100; ++q) {
    const Rect range = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 300);
    const std::vector<ObjectId> got = tree->QueryIds(range);
    const std::set<ObjectId> expected = BruteForce(items, range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()), expected);
    EXPECT_EQ(got.size(), expected.size());  // no duplicates
  }
}

TEST(RTreeTest, InsertMatchesBruteForce) {
  const std::vector<RTree::Item> items = RandomItems(2000, 4);
  Result<RTree> made = RTree::Create(RTreeOptions{});
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  for (const RTree::Item& item : items) tree.Insert(item.box, item.id);
  EXPECT_EQ(tree.size(), items.size());
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  Rng rng(5);
  for (int q = 0; q < 100; ++q) {
    const Rect range = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 250);
    const std::vector<ObjectId> got = tree.QueryIds(range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()),
              BruteForce(items, range));
  }
}

TEST(RTreeTest, InsertWithSmallFanoutForcesDeepSplits) {
  RTreeOptions options;
  options.max_entries_override = 4;
  Result<RTree> made = RTree::Create(options);
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  const std::vector<RTree::Item> items = RandomItems(500, 6);
  for (const RTree::Item& item : items) tree.Insert(item.box, item.id);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_GE(tree.height(), 4u);
  Rng rng(7);
  for (int q = 0; q < 50; ++q) {
    const Rect range = RandomRect(&rng, Rect(0, 1000, 0, 1000), 10, 200);
    const std::vector<ObjectId> got = tree.QueryIds(range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()),
              BruteForce(items, range));
  }
}

TEST(RTreeTest, MixedBulkLoadThenInsert) {
  std::vector<RTree::Item> items = RandomItems(1000, 8);
  Result<RTree> made = RTree::BulkLoad(
      RTreeOptions{},
      std::vector<RTree::Item>(items.begin(), items.begin() + 500));
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  for (size_t i = 500; i < items.size(); ++i) {
    tree.Insert(items[i].box, items[i].id);
  }
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  const Rect everything(-10, 1010, -10, 1010);
  EXPECT_EQ(tree.QueryIds(everything).size(), items.size());
}

TEST(RTreeTest, PointItemsWork) {
  Rng rng(9);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 1000; ++i) {
    const Point p(rng.Uniform(0, 100), rng.Uniform(0, 100));
    items.push_back({Rect::AtPoint(p), static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(tree.ok());
  for (int q = 0; q < 50; ++q) {
    const Rect range = RandomRect(&rng, Rect(0, 100, 0, 100), 5, 30);
    const std::vector<ObjectId> got = tree->QueryIds(range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()),
              BruteForce(items, range));
  }
}

TEST(RTreeTest, StatsCountNodeAccesses) {
  Result<RTree> tree =
      RTree::BulkLoad(RTreeOptions{}, RandomItems(20000, 10));
  ASSERT_TRUE(tree.ok());
  IndexStats stats;
  tree->QueryIds(Rect(100, 200, 100, 200), &stats);
  EXPECT_GT(stats.node_accesses, 0u);
  EXPECT_GE(stats.node_accesses, stats.leaf_accesses);
  // A selective query must touch far fewer pages than the whole tree.
  EXPECT_LT(stats.node_accesses, tree->node_count() / 2);

  IndexStats full;
  tree->QueryIds(Rect(-1, 1001, -1, 1001), &full);
  EXPECT_EQ(full.candidates, 20000u);
  EXPECT_EQ(full.node_accesses, tree->node_count());
}

TEST(RTreeTest, BoundsCoverEverything) {
  const std::vector<RTree::Item> items = RandomItems(500, 11);
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(tree.ok());
  const Rect bounds = tree->bounds();
  for (const RTree::Item& item : items) {
    EXPECT_TRUE(bounds.ContainsRect(item.box));
  }
}

TEST(RTreeTest, HeightShrinksWithLargerPages) {
  const std::vector<RTree::Item> items = RandomItems(20000, 12);
  RTreeOptions small;
  small.page_size_bytes = 1024;
  RTreeOptions large;
  large.page_size_bytes = 8192;
  Result<RTree> t_small = RTree::BulkLoad(small, items);
  Result<RTree> t_large = RTree::BulkLoad(large, items);
  ASSERT_TRUE(t_small.ok() && t_large.ok());
  EXPECT_GT(t_small->height(), t_large->height());
  EXPECT_GT(t_small->node_count(), t_large->node_count());
}

TEST(RTreeTest, RemoveMissingReturnsFalse) {
  Result<RTree> made = RTree::BulkLoad(RTreeOptions{}, RandomItems(100, 40));
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  EXPECT_FALSE(tree.Remove(Rect(5000, 5001, 5000, 5001), 999));
  // Right box, wrong id.
  EXPECT_FALSE(tree.Remove(Rect(0, 1, 0, 1), 12345));
  EXPECT_EQ(tree.size(), 100u);
}

TEST(RTreeTest, RemoveSingleItemEmptiesTree) {
  Result<RTree> made =
      RTree::BulkLoad(RTreeOptions{}, {{Rect(1, 2, 3, 4), 7}});
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  EXPECT_TRUE(tree.Remove(Rect(1, 2, 3, 4), 7));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.QueryIds(Rect(0, 10, 0, 10)).empty());
  EXPECT_TRUE(tree.Validate().ok());
  // The tree is reusable after becoming empty.
  tree.Insert(Rect(5, 6, 5, 6), 8);
  EXPECT_EQ(tree.QueryIds(Rect(0, 10, 0, 10)).size(), 1u);
}

TEST(RTreeTest, RemoveHalfThenQueriesMatchBruteForce) {
  const std::vector<RTree::Item> items = RandomItems(3000, 41);
  Result<RTree> made = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  // Remove every other item.
  std::vector<RTree::Item> kept;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(tree.Remove(items[i].box, items[i].id)) << "item " << i;
    } else {
      kept.push_back(items[i]);
    }
  }
  EXPECT_EQ(tree.size(), kept.size());
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  Rng rng(42);
  for (int q = 0; q < 60; ++q) {
    const Rect range = RandomRect(&rng, Rect(0, 1000, 0, 1000), 20, 300);
    const std::vector<ObjectId> got = tree.QueryIds(range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()),
              BruteForce(kept, range));
  }
}

TEST(RTreeTest, RemoveAllThenReinsert) {
  const std::vector<RTree::Item> items = RandomItems(800, 43);
  Result<RTree> made = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  for (const RTree::Item& item : items) {
    ASSERT_TRUE(tree.Remove(item.box, item.id));
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Validate().ok());
  for (const RTree::Item& item : items) tree.Insert(item.box, item.id);
  EXPECT_EQ(tree.size(), items.size());
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  const std::vector<ObjectId> all = tree.QueryIds(Rect(-1, 1001, -1, 1001));
  EXPECT_EQ(all.size(), items.size());
}

TEST(RTreeTest, RemoveRecyclesNodes) {
  const std::vector<RTree::Item> items = RandomItems(5000, 44);
  Result<RTree> made = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  const size_t nodes_before = tree.node_count();
  for (size_t i = 0; i < items.size(); i += 2) {
    ASSERT_TRUE(tree.Remove(items[i].box, items[i].id));
  }
  EXPECT_LT(tree.node_count(), nodes_before);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

TEST(RTreeTest, InterleavedInsertRemoveStress) {
  Rng rng(45);
  Result<RTree> made = RTree::Create(RTreeOptions{});
  ASSERT_TRUE(made.ok());
  RTree tree = std::move(made).ValueOrDie();
  std::vector<RTree::Item> live;
  ObjectId next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    if (live.empty() || rng.NextDouble() < 0.6) {
      RTree::Item item{RandomRect(&rng, Rect(0, 1000, 0, 1000), 1, 50),
                       next_id++};
      tree.Insert(item.box, item.id);
      live.push_back(item);
    } else {
      const size_t victim = rng.NextBelow(live.size());
      ASSERT_TRUE(tree.Remove(live[victim].box, live[victim].id));
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  const Rect range(200, 600, 200, 600);
  const std::vector<ObjectId> got = tree.QueryIds(range);
  EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()),
            BruteForce(live, range));
}

TEST(RTreeTest, NearestSingle) {
  Result<RTree> made = RTree::BulkLoad(
      RTreeOptions{}, {{Rect::AtPoint(Point(10, 10)), 1},
                       {Rect::AtPoint(Point(50, 50)), 2},
                       {Rect::AtPoint(Point(90, 10)), 3}});
  ASSERT_TRUE(made.ok());
  const std::vector<RTree::Neighbor> nn = made->Nearest(Point(45, 48), 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 2u);
  EXPECT_NEAR(nn[0].distance, std::sqrt(25.0 + 4.0), 1e-12);
}

TEST(RTreeTest, NearestKOrderedAndMatchesBruteForce) {
  Rng rng(46);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 2000; ++i) {
    items.push_back({Rect::AtPoint(Point(rng.Uniform(0, 1000),
                                         rng.Uniform(0, 1000))),
                     static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(tree.ok());
  for (int q = 0; q < 30; ++q) {
    const Point query(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    const size_t k = 1 + rng.NextBelow(10);
    const std::vector<RTree::Neighbor> nn = tree->Nearest(query, k);
    ASSERT_EQ(nn.size(), k);
    // Ordered ascending.
    for (size_t i = 1; i < nn.size(); ++i) {
      EXPECT_GE(nn[i].distance, nn[i - 1].distance);
    }
    // Matches a brute-force sort.
    std::vector<double> dists;
    for (const RTree::Item& item : items) {
      dists.push_back(item.box.MinDistanceTo(query));
    }
    std::sort(dists.begin(), dists.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(nn[i].distance, dists[i], 1e-9);
    }
  }
}

TEST(RTreeTest, NearestMoreThanSizeReturnsAll) {
  Result<RTree> made = RTree::BulkLoad(
      RTreeOptions{}, {{Rect::AtPoint(Point(1, 1)), 1},
                       {Rect::AtPoint(Point(2, 2)), 2}});
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(made->Nearest(Point(0, 0), 10).size(), 2u);
  EXPECT_TRUE(made->Nearest(Point(0, 0), 0).empty());
}

TEST(RTreeTest, NearestPrunesNodes) {
  Rng rng(47);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 50000; ++i) {
    items.push_back({Rect::AtPoint(Point(rng.Uniform(0, 10000),
                                         rng.Uniform(0, 10000))),
                     static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(tree.ok());
  IndexStats stats;
  tree->Nearest(Point(5000, 5000), 5, &stats);
  // Best-first search must touch a tiny fraction of the tree.
  EXPECT_LT(stats.node_accesses, tree->node_count() / 10);
}

// Parameterized: bulk load equals brute force across dataset sizes,
// including the degenerate boundaries of a single leaf and exactly-full
// nodes.
class RTreeSizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeSizeSweepTest, QueryMatchesBruteForce) {
  const std::vector<RTree::Item> items = RandomItems(GetParam(), 13);
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, items);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  Rng rng(14);
  for (int q = 0; q < 20; ++q) {
    const Rect range = RandomRect(&rng, Rect(0, 1000, 0, 1000), 50, 400);
    const std::vector<ObjectId> got = tree->QueryIds(range);
    EXPECT_EQ(std::set<ObjectId>(got.begin(), got.end()),
              BruteForce(items, range));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeSizeSweepTest,
                         ::testing::Values(1, 2, 113, 114, 500, 1130, 12770));

}  // namespace
}  // namespace ilq
