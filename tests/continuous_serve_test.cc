// Differential + behavioural suite for the serving-tier continuous path
// (SubscriptionManager over AsyncServer + ShardedEngine):
//
//  * every trajectory-step answer is bit-identical to ShardedEngine::Run
//    (hence, by the sharded differential suite, to the monolith), all
//    eight methods, reuse ON and OFF;
//  * the AnswerCache's region entries are exercised end to end — exact
//    hits when the issuer holds still, containment-driven basis adoption
//    across register/unregister churn — and the exact vs containment
//    split surfaces in ServeStats (ISSUE satellite: split counters);
//  * plain Lookup never serves a region entry (one-shot queries through
//    the same server stay exact).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/batch.h"
#include "datagen/workload.h"
#include "serve/sharded_engine.h"
#include "serve/subscription_manager.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

std::vector<UncertainObject> MakeMixedObjects(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<UncertainObject> objects;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < count; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 3) {
      case 0:
        objects.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        objects.emplace_back(id, MakeGaussian(region));
        break;
      default:
        objects.emplace_back(id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
    }
  }
  return objects;
}

std::vector<PointObject> MakePoints(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<PointObject> points;
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(static_cast<ObjectId>(i + 1),
                        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  return points;
}

void ExpectBitIdentical(const AnswerSet& continuous, const AnswerSet& sharded,
                        const std::string& what) {
  ASSERT_EQ(continuous.size(), sharded.size()) << what;
  for (size_t i = 0; i < continuous.size(); ++i) {
    EXPECT_EQ(continuous[i].id, sharded[i].id) << what << " answer #" << i;
    EXPECT_EQ(continuous[i].probability, sharded[i].probability)
        << what << " answer #" << i << " (id " << continuous[i].id << ")";
  }
}

ShardedEngine BuildEngine(ProbabilityKernel kernel, size_t shards) {
  ShardedEngineConfig config;
  config.shards = shards;
  config.engine.eval.kernel = kernel;
  config.engine.eval.quadrature_order = 8;
  config.engine.eval.mc_samples = 64;
  Result<ShardedEngine> engine = ShardedEngine::Build(
      MakePoints(901, 300), MakeMixedObjects(902, 120), config);
  ILQ_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).ValueOrDie();
}

TrajectoryWorkload MakeTrajectories(double threshold, size_t issuers,
                                    size_t steps) {
  WorkloadConfig base;
  base.space = Rect(0, 1000, 0, 1000);
  base.w = 120.0;
  base.qp = threshold;
  base.seed = 77;
  TrajectoryConfig traj;
  traj.issuers = issuers;
  traj.steps = steps;
  traj.kind = TrajectoryKind::kRandomWalk;
  traj.step = 60.0;
  traj.u_min = 30.0;
  traj.u_max = 45.0;
  Result<TrajectoryWorkload> workload =
      GenerateTrajectoryWorkload(base, traj);
  ILQ_CHECK(workload.ok(), workload.status().ToString());
  return std::move(workload).ValueOrDie();
}

void RunDifferential(ProbabilityKernel kernel, bool reuse) {
  const ShardedEngine engine = BuildEngine(kernel, /*shards=*/3);
  AsyncServerOptions serve_options;
  serve_options.threads = 2;
  serve_options.cache_capacity = 128;
  AsyncServer server(engine, serve_options);
  SubscriptionOptions options;
  options.reuse = reuse;
  SubscriptionManager manager(&server, options);

  for (const double threshold : {0.0, 0.3}) {
    const TrajectoryWorkload workload =
        MakeTrajectories(threshold, /*issuers=*/2, /*steps=*/6);
    const BatchSpec spec{workload.spec};
    for (const std::vector<UncertainObject>& trajectory : workload.steps) {
      for (const QueryMethod method : AllQueryMethods()) {
        const std::string what =
            std::string(QueryMethodName(method)) + " Qp=" +
            std::to_string(threshold) + (reuse ? " reuse" : " naive");
        Result<SubscriptionManager::Registered> registered =
            manager.Register(method, spec, trajectory.front());
        ASSERT_TRUE(registered.ok()) << what << ": "
                                     << registered.status().ToString();
        ExpectBitIdentical(registered->answer.answers,
                           engine.Run(method, trajectory.front(), spec),
                           what + " register");
        for (size_t t = 1; t < trajectory.size(); ++t) {
          Result<ContinuousAnswer> answer =
              manager.UpdatePosition(registered->id, trajectory[t]);
          ASSERT_TRUE(answer.ok()) << what << ": "
                                   << answer.status().ToString();
          EXPECT_TRUE(
              answer->valid_region.ContainsRect(trajectory[t].region()))
              << what << " step " << t;
          ExpectBitIdentical(answer->answers,
                             engine.Run(method, trajectory[t], spec),
                             what + " step " + std::to_string(t));
        }
        EXPECT_TRUE(manager.Unregister(registered->id).ok()) << what;
      }
    }
  }

  const ServeStats stats = manager.stats();
  EXPECT_EQ(stats.continuous_active, 0u);
  EXPECT_GT(stats.continuous_reevaluations, 0u);
  if (reuse) {
    EXPECT_GT(stats.continuous_validations, 0u);
  } else {
    EXPECT_EQ(stats.continuous_validations, 0u);
  }
  // Continuous traffic rides the same worker queue as one-shot queries, so
  // it shows up in the server's submission accounting too. (No check on
  // stats.pending: the worker decrements it *after* fulfilling the future,
  // so it is transiently nonzero even when every answer is already home.)
  EXPECT_GT(stats.submitted, 0u);
}

TEST(ContinuousServeTest, BitIdenticalToShardedEngineAnalytic) {
  RunDifferential(ProbabilityKernel::kAnalytic, /*reuse=*/true);
}

TEST(ContinuousServeTest, BitIdenticalToShardedEngineMonteCarlo) {
  RunDifferential(ProbabilityKernel::kMonteCarlo, /*reuse=*/true);
}

TEST(ContinuousServeTest, NaiveBaselineBitIdenticalToo) {
  RunDifferential(ProbabilityKernel::kAnalytic, /*reuse=*/false);
}

// A stationary issuer exact-hits the cache's region entry: the stored
// answers come back without touching the workers, and the exact/containment
// split in ServeStats records it (satellite: split counters).
TEST(ContinuousServeTest, StationaryIssuerExactHitsTheRegionEntry) {
  const ShardedEngine engine =
      BuildEngine(ProbabilityKernel::kAnalytic, /*shards=*/2);
  AsyncServerOptions serve_options;
  serve_options.threads = 1;
  serve_options.cache_capacity = 64;
  AsyncServer server(engine, serve_options);
  SubscriptionManager manager(&server);

  UncertainObject issuer(601u, MakeUniform(Rect(400, 480, 400, 480)));
  ASSERT_TRUE(
      issuer.BuildCatalog(engine.config().engine.catalog_values).ok());
  const BatchSpec spec{RangeQuerySpec(120, 120, 0.0)};
  Result<SubscriptionManager::Registered> registered =
      manager.Register(QueryMethod::kIpq, spec, issuer);
  ASSERT_TRUE(registered.ok());

  const ServeStats before = manager.stats();
  Result<ContinuousAnswer> answer =
      manager.UpdatePosition(registered->id, issuer);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->revalidated);
  ExpectBitIdentical(answer->answers, registered->answer.answers,
                     "stationary update");

  const ServeStats after = manager.stats();
  EXPECT_EQ(after.cache_exact_hits, before.cache_exact_hits + 1);
  EXPECT_EQ(after.cache_containment_hits, before.cache_containment_hits);
  // An exact hit is answered from the cache, not the worker queue.
  EXPECT_EQ(after.submitted, before.submitted);
  EXPECT_EQ(after.continuous_validations, before.continuous_validations + 1);
}

// Unregister + re-register of the same issuer id/spec adopts the cached
// basis via a containment hit instead of prefetching again — the
// churn-reuse feature the cache's region entries exist for.
TEST(ContinuousServeTest, ReRegistrationAdoptsTheCachedBasis) {
  const ShardedEngine engine =
      BuildEngine(ProbabilityKernel::kAnalytic, /*shards=*/2);
  AsyncServerOptions serve_options;
  serve_options.threads = 1;
  serve_options.cache_capacity = 64;
  AsyncServer server(engine, serve_options);
  SubscriptionManager manager(&server);

  UncertainObject issuer(602u, MakeUniform(Rect(300, 380, 300, 380)));
  ASSERT_TRUE(
      issuer.BuildCatalog(engine.config().engine.catalog_values).ok());
  const BatchSpec spec{RangeQuerySpec(120, 120, 0.3)};
  Result<SubscriptionManager::Registered> first =
      manager.Register(QueryMethod::kCiuqRTree, spec, issuer);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(manager.Unregister(first->id).ok());

  // Nudge the issuer inside the old valid region with a *different* pdf
  // placement, so the lookup is a containment hit (not exact) and the
  // adopted basis still answers by replay.
  UncertainObject moved(602u, MakeUniform(Rect(310, 390, 305, 385)));
  ASSERT_TRUE(
      moved.BuildCatalog(engine.config().engine.catalog_values).ok());
  ASSERT_TRUE(first->answer.valid_region.ContainsRect(moved.region()));

  const ServeStats before = manager.stats();
  Result<SubscriptionManager::Registered> second =
      manager.Register(QueryMethod::kCiuqRTree, spec, moved);
  ASSERT_TRUE(second.ok());
  const ServeStats after = manager.stats();

  EXPECT_EQ(after.cache_containment_hits, before.cache_containment_hits + 1);
  // Adoption means the second registration replays instead of rebuilding.
  EXPECT_TRUE(second->answer.revalidated);
  EXPECT_EQ(second->answer.valid_region, first->answer.valid_region);
  EXPECT_EQ(after.continuous_reevaluations, before.continuous_reevaluations);
  ExpectBitIdentical(second->answer.answers,
                     engine.Run(QueryMethod::kCiuqRTree, moved, spec),
                     "adopted-basis registration");
}

// One-shot traffic through the same server must never be served a region
// entry: Lookup demands placement identity, LookupRegion is the only
// entry point that may adopt by containment.
TEST(ContinuousServeTest, OneShotLookupsIgnoreRegionEntries) {
  const ShardedEngine engine =
      BuildEngine(ProbabilityKernel::kAnalytic, /*shards=*/2);
  AsyncServerOptions serve_options;
  serve_options.threads = 1;
  serve_options.cache_capacity = 64;
  AsyncServer server(engine, serve_options);
  SubscriptionManager manager(&server);

  UncertainObject issuer(603u, MakeUniform(Rect(500, 580, 500, 580)));
  ASSERT_TRUE(
      issuer.BuildCatalog(engine.config().engine.catalog_values).ok());
  const BatchSpec spec{RangeQuerySpec(120, 120, 0.0)};
  Result<SubscriptionManager::Registered> registered =
      manager.Register(QueryMethod::kIuq, spec, issuer);
  ASSERT_TRUE(registered.ok());

  // A one-shot submission for a *different* placement inside the valid
  // region: it must evaluate (miss), not inherit the subscription's basis.
  UncertainObject moved(603u, MakeUniform(Rect(510, 590, 510, 590)));
  ASSERT_TRUE(
      moved.BuildCatalog(engine.config().engine.catalog_values).ok());
  const ServeStats before = server.stats();
  const AnswerSet answers =
      server.Submit(moved, spec, QueryMethod::kIuq).get();
  const ServeStats after = server.stats();
  EXPECT_EQ(after.cache_exact_hits, before.cache_exact_hits);
  EXPECT_EQ(after.cache_containment_hits, before.cache_containment_hits);
  ExpectBitIdentical(answers, engine.Run(QueryMethod::kIuq, moved, spec),
                     "one-shot through subscribed server");
}

}  // namespace
}  // namespace ilq
