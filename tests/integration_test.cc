// End-to-end integration tests: paper-shaped datasets (scaled down),
// workloads from §6.1, and cross-method consistency over the full engine.

#include <gtest/gtest.h>

#include <fstream>
#include <map>

#include "benchutil/harness.h"
#include "core/duality.h"
#include "core/engine.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"

namespace ilq {
namespace {

// One shared scaled-down paper setup (5K points / 4K rectangles in the
// 10,000² space) reused across tests in this file.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig points_config;
    points_config.count = 5000;
    points_config.seed = 1001;
    RectangleConfig rect_config;
    rect_config.base.count = 4000;
    rect_config.base.seed = 1002;
    Result<std::vector<UncertainObject>> objects =
        MakeUniformUncertainObjects(GenerateLongBeachLikeRects(rect_config));
    ASSERT_TRUE(objects.ok());
    Result<QueryEngine> engine = QueryEngine::Build(
        GenerateCaliforniaLikePoints(points_config),
        std::move(objects).ValueOrDie());
    ASSERT_TRUE(engine.ok());
    engine_ = new QueryEngine(std::move(engine).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static const QueryEngine& engine() { return *engine_; }

 private:
  static QueryEngine* engine_;
};

QueryEngine* IntegrationTest::engine_ = nullptr;

TEST_F(IntegrationTest, PaperDefaultWorkloadRuns) {
  WorkloadConfig config;
  config.queries = 25;
  config.seed = 2001;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  size_t total_answers = 0;
  for (const UncertainObject& issuer : workload->issuers) {
    total_answers += engine().Ipq(issuer, workload->spec).size();
  }
  EXPECT_GT(total_answers, 0u);
}

TEST_F(IntegrationTest, EnhancedMatchesBasicAcrossWorkload) {
  WorkloadConfig config;
  config.queries = 10;
  config.seed = 2002;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const UncertainObject& issuer : workload->issuers) {
    const AnswerSet fast = engine().Iuq(issuer, workload->spec);
    const AnswerSet slow = engine().IuqBasic(issuer, workload->spec);
    std::map<ObjectId, double> slow_by_id;
    for (const auto& a : slow) slow_by_id[a.id] = a.probability;
    for (const auto& a : fast) {
      if (a.probability < 0.05) continue;  // below grid-baseline resolution
      ASSERT_TRUE(slow_by_id.count(a.id));
      EXPECT_NEAR(a.probability, slow_by_id[a.id], 0.05);
    }
  }
}

TEST_F(IntegrationTest, CiuqMethodsAgreeOnPaperWorkload) {
  for (double qp : {0.0, 0.3, 0.6, 0.9}) {
    WorkloadConfig config;
    config.queries = 8;
    config.qp = qp;
    config.seed = 2003;
    Result<Workload> workload = GenerateWorkload(config);
    ASSERT_TRUE(workload.ok());
    for (const UncertainObject& issuer : workload->issuers) {
      const AnswerSet a = engine().CiuqRTree(issuer, workload->spec);
      const AnswerSet b = engine().CiuqPti(issuer, workload->spec);
      std::map<ObjectId, double> ma;
      for (const auto& x : a) ma[x.id] = x.probability;
      std::map<ObjectId, double> mb;
      for (const auto& x : b) mb[x.id] = x.probability;
      EXPECT_EQ(ma, mb) << "qp=" << qp;
    }
  }
}

TEST_F(IntegrationTest, CandidatesGrowWithUncertaintySize) {
  // Figure 9/10 mechanism: larger u ⇒ larger Minkowski sum ⇒ more
  // candidates.
  double prev = -1.0;
  for (double u : {50.0, 250.0, 500.0, 1000.0}) {
    WorkloadConfig config;
    config.u = u;
    config.queries = 20;
    config.seed = 2004;
    Result<Workload> workload = GenerateWorkload(config);
    ASSERT_TRUE(workload.ok());
    double candidates = 0.0;
    for (const UncertainObject& issuer : workload->issuers) {
      IndexStats stats;
      engine().Ipq(issuer, workload->spec, &stats);
      candidates += static_cast<double>(stats.candidates);
    }
    EXPECT_GT(candidates, prev) << "u=" << u;
    prev = candidates;
  }
}

TEST_F(IntegrationTest, PTICandidatesShrinkWithThreshold) {
  // Figure 12 mechanism: the p-expanded-query + strategies prune more as
  // Qp rises.
  double prev = std::numeric_limits<double>::max();
  for (double qp : {0.0, 0.3, 0.6, 0.9}) {
    WorkloadConfig config;
    config.qp = qp;
    config.queries = 20;
    config.seed = 2005;
    Result<Workload> workload = GenerateWorkload(config);
    ASSERT_TRUE(workload.ok());
    double candidates = 0.0;
    for (const UncertainObject& issuer : workload->issuers) {
      IndexStats stats;
      engine().CiuqPti(issuer, workload->spec, CiuqPruneConfig{}, &stats);
      candidates += static_cast<double>(stats.candidates);
    }
    EXPECT_LE(candidates, prev) << "qp=" << qp;
    prev = candidates;
  }
}

TEST_F(IntegrationTest, GaussianWorkloadMonteCarloMatchesAnalytic) {
  // Figure 13 path: Gaussian issuers + MC kernel vs the analytic kernel.
  WorkloadConfig config;
  config.queries = 5;
  config.issuer_pdf = IssuerPdfKind::kGaussian;
  config.seed = 2006;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());

  Result<std::vector<UncertainObject>> g_objects =
      MakeGaussianUncertainObjects([] {
        RectangleConfig rc;
        rc.base.count = 1500;
        rc.base.seed = 2007;
        return GenerateLongBeachLikeRects(rc);
      }());
  ASSERT_TRUE(g_objects.ok());
  EngineConfig mc_config;
  mc_config.eval.kernel = ProbabilityKernel::kMonteCarlo;
  mc_config.eval.mc_samples = 4000;
  Result<QueryEngine> mc_engine =
      QueryEngine::Build({}, *g_objects, mc_config);
  ASSERT_TRUE(mc_engine.ok());
  EngineConfig exact_config;
  Result<QueryEngine> exact_engine =
      QueryEngine::Build({}, std::move(g_objects).ValueOrDie(), exact_config);
  ASSERT_TRUE(exact_engine.ok());

  for (const UncertainObject& issuer : workload->issuers) {
    const AnswerSet sampled = mc_engine->Iuq(issuer, workload->spec);
    const AnswerSet analytic = exact_engine->Iuq(issuer, workload->spec);
    std::map<ObjectId, double> truth;
    for (const auto& a : analytic) truth[a.id] = a.probability;
    for (const auto& a : sampled) {
      ASSERT_TRUE(truth.count(a.id));
      EXPECT_NEAR(a.probability, truth[a.id], 0.05);
    }
  }
}

TEST_F(IntegrationTest, HarnessProducesSaneCells) {
  WorkloadConfig config;
  config.queries = 10;
  config.seed = 2008;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  const CellResult cell = RunCell(
      workload->issuers, [&](const UncertainObject& issuer,
                             IndexStats* stats) {
        return engine().Ipq(issuer, workload->spec, stats).size();
      });
  EXPECT_EQ(cell.queries, 10u);
  EXPECT_GT(cell.mean_candidates, 0.0);
  EXPECT_GT(cell.mean_node_accesses, 0.0);
  EXPECT_GE(cell.p95_ms, cell.mean_ms * 0.1);
}

TEST_F(IntegrationTest, SeriesTableCsvRoundtrip) {
  SeriesTable table("test", "u", {"m1", "m2"});
  CellResult c1;
  c1.mean_ms = 1.5;
  c1.mean_candidates = 10;
  CellResult c2;
  c2.mean_ms = 0.5;
  c2.mean_candidates = 5;
  table.AddRow(100, {c1, c2});
  table.AddRow(200, {c2, c1});
  const std::string path = ::testing::TempDir() + "/ilq_series.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("mean_ms"), std::string::npos);
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4u);  // 2 x-values × 2 methods
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ilq
