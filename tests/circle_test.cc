#include "geometry/circle.h"

#include <gtest/gtest.h>

#include <numbers>

#include "common/rng.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MonteCarloArea;

TEST(CircleTest, BoundingBox) {
  const Circle c(Point(3, 4), 2);
  EXPECT_EQ(c.BoundingBox(), Rect(1, 5, 2, 6));
}

TEST(CircleTest, AreaFormula) {
  const Circle c(Point(0, 0), 3);
  EXPECT_NEAR(c.Area(), 9 * std::numbers::pi, 1e-12);
}

TEST(CircleTest, ContainsIsClosed) {
  const Circle c(Point(0, 0), 1);
  EXPECT_TRUE(c.Contains(Point(1, 0)));  // on the boundary
  EXPECT_TRUE(c.Contains(Point(0, 0)));
  EXPECT_FALSE(c.Contains(Point(1.0001, 0)));
}

TEST(CircleTest, IntersectsRect) {
  const Circle c(Point(0, 0), 1);
  EXPECT_TRUE(c.Intersects(Rect(-0.5, 0.5, -0.5, 0.5)));   // inside
  EXPECT_TRUE(c.Intersects(Rect(0.9, 2, -0.1, 0.1)));      // crosses edge
  EXPECT_TRUE(c.Intersects(Rect(1, 2, -0.1, 0.1)));        // touches
  EXPECT_FALSE(c.Intersects(Rect(1.1, 2, -0.1, 0.1)));     // clear
  EXPECT_FALSE(c.Intersects(Rect(0.9, 2, 0.9, 2)));        // corner miss
}

TEST(CircleTest, ContainsRect) {
  const Circle c(Point(0, 0), 5);
  EXPECT_TRUE(c.ContainsRect(Rect(-3, 3, -3, 3)));  // corners at ~4.24 < 5
  EXPECT_FALSE(c.ContainsRect(Rect(-4, 4, -4, 4)));
  EXPECT_TRUE(c.ContainsRect(Rect::Empty()));
}

TEST(CircleTest, IntersectionAreaRectInsideCircle) {
  const Circle c(Point(0, 0), 10);
  const Rect r(-2, 2, -3, 3);
  EXPECT_NEAR(c.IntersectionArea(r), r.Area(), 1e-9);
}

TEST(CircleTest, IntersectionAreaCircleInsideRect) {
  const Circle c(Point(0, 0), 2);
  const Rect r(-10, 10, -10, 10);
  EXPECT_NEAR(c.IntersectionArea(r), c.Area(), 1e-9);
}

TEST(CircleTest, IntersectionAreaDisjoint) {
  const Circle c(Point(0, 0), 1);
  EXPECT_DOUBLE_EQ(c.IntersectionArea(Rect(5, 6, 5, 6)), 0.0);
}

TEST(CircleTest, IntersectionAreaHalfPlane) {
  // The rect covers exactly the right half of the disk.
  const Circle c(Point(0, 0), 2);
  const Rect r(0, 10, -10, 10);
  EXPECT_NEAR(c.IntersectionArea(r), 0.5 * c.Area(), 1e-9);
}

TEST(CircleTest, IntersectionAreaQuarter) {
  const Circle c(Point(0, 0), 2);
  const Rect r(0, 10, 0, 10);
  EXPECT_NEAR(c.IntersectionArea(r), 0.25 * c.Area(), 1e-9);
}

TEST(CircleTest, IntersectionAreaZeroRadius) {
  const Circle c(Point(0, 0), 0);
  EXPECT_DOUBLE_EQ(c.IntersectionArea(Rect(-1, 1, -1, 1)), 0.0);
}

// Property sweep: exact overlap areas agree with Monte-Carlo estimates on
// random circle/rect configurations.
class CircleAreaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CircleAreaPropertyTest, MatchesMonteCarlo) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const Circle c(Point(rng.Uniform(-5, 5), rng.Uniform(-5, 5)),
                   rng.Uniform(0.5, 4.0));
    const Rect r = Rect::Centered(
        Point(rng.Uniform(-5, 5), rng.Uniform(-5, 5)),
        rng.Uniform(0.5, 4.0), rng.Uniform(0.5, 4.0));
    const double exact = c.IntersectionArea(r);
    const double mc = MonteCarloArea(
        r, [&](const Point& p) { return c.Contains(p); }, 200000,
        GetParam() * 1000 + static_cast<uint64_t>(iter));
    EXPECT_NEAR(exact, mc, 0.05 * std::max(1.0, r.Area()))
        << "circle r=" << c.radius << " rect=" << r.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircleAreaPropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace ilq
