// Wire codec suite (ISSUE: fuzz/property satellite). Two halves:
//
//  1. Round-trip properties: every QueryMethod × pdf alternative × prune
//     combination survives encode→decode bit-exactly (doubles compared
//     with ==, not a tolerance — the codec ships IEEE-754 bit patterns);
//     responses round-trip empty, duplicate-heavy, and large AnswerSets;
//     error frames reconstitute their Status.
//
//  2. Fuzz totality: 10k seeded random byte strings, plus truncations and
//     single-byte mutations of *valid* encodings, through every decoder.
//     The contract is an error Status — never a crash, never a giant
//     allocation (ASan/UBSan runs of this suite are the enforcement).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/batch.h"
#include "prob/gaussian_pdf.h"
#include "prob/histogram_pdf.h"
#include "prob/disk_pdf.h"
#include "prob/uniform_pdf.h"
#include <memory>
#include "wire/codec.h"
#include "wire/message.h"
#include "wire/shard_map.h"
#include "wire/snapshot_codec.h"

namespace ilq {
namespace {

PdfVariant RectPdf(double x0, double x1, double y0, double y1) {
  return PdfVariant(
      UniformRectPdf::Make(Rect(x0, x1, y0, y1)).ValueOrDie());
}

std::vector<PdfVariant> AllEncodablePdfs() {
  std::vector<PdfVariant> pdfs;
  pdfs.push_back(RectPdf(10.25, 20.75, -5.5, 5.5));
  pdfs.push_back(PdfVariant(
      UniformDiskPdf::Make(Circle{Point(3.0, -4.0), 2.5}).ValueOrDie()));
  pdfs.push_back(PdfVariant(
      TruncatedGaussianPdf::Make(Rect(0, 60, 0, 30), 10.0, 5.0)
          .ValueOrDie()));
  pdfs.push_back(PdfVariant(
      HistogramPdf::FromCellMasses(Rect(0, 8, 0, 8), 2, 2,
                                   {0.125, 0.25, 0.5, 0.125})
          .ValueOrDie()));
  return pdfs;
}

std::vector<uint8_t> EncodeRequestBytes(const WireRequest& request) {
  ByteWriter writer;
  const Status status = EncodeRequest(request, &writer);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return std::move(writer).Take();
}

// ---- Round-trip properties -------------------------------------------------

TEST(WireRequestTest, RoundTripsEveryMethodPdfAndPruneCombination) {
  const std::vector<PdfVariant> pdfs = AllEncodablePdfs();
  for (const QueryMethod method : AllQueryMethods()) {
    for (size_t p = 0; p < pdfs.size(); ++p) {
      for (uint8_t prune = 0; prune < 8; ++prune) {
        WireRequest request;
        request.issuer_id = 1000 + static_cast<ObjectId>(p);
        request.issuer_pdf = pdfs[p];
        request.method = method;
        request.spec.query.w = 123.456;
        request.spec.query.h = 0.0;  // degenerate extents are legal
        request.spec.query.threshold = 0.625;
        request.spec.prune.strategy1 = (prune & 1) != 0;
        request.spec.prune.strategy2 = (prune & 2) != 0;
        request.spec.prune.strategy3 = (prune & 4) != 0;

        auto decoded = DecodeRequest(EncodeRequestBytes(request));
        ASSERT_TRUE(decoded.ok())
            << QueryMethodName(method) << ": " << decoded.status().ToString();
        EXPECT_EQ(decoded->issuer_id, request.issuer_id);
        EXPECT_EQ(decoded->method, method);
        EXPECT_EQ(decoded->spec.query.w, request.spec.query.w);
        EXPECT_EQ(decoded->spec.query.h, request.spec.query.h);
        EXPECT_EQ(decoded->spec.query.threshold,
                  request.spec.query.threshold);
        EXPECT_EQ(decoded->spec.prune.strategy1,
                  request.spec.prune.strategy1);
        EXPECT_EQ(decoded->spec.prune.strategy2,
                  request.spec.prune.strategy2);
        EXPECT_EQ(decoded->spec.prune.strategy3,
                  request.spec.prune.strategy3);
        EXPECT_EQ(decoded->issuer_pdf.index(), request.issuer_pdf.index());
      }
    }
  }
}

TEST(WireRequestTest, HistogramMassesRoundTripBitExactly) {
  WireRequest request;
  // Masses that do NOT survive a renormalization pass unchanged unless the
  // decoder stores them verbatim (HistogramPdf::FromCellMasses).
  const std::vector<double> masses = {0.1, 0.2, 0.3, 0.4};
  request.issuer_pdf = PdfVariant(
      HistogramPdf::FromCellMasses(Rect(0, 4, 0, 4), 2, 2, masses)
          .ValueOrDie());
  auto decoded = DecodeRequest(EncodeRequestBytes(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const auto& pdf = std::get<HistogramPdf>(decoded->issuer_pdf);
  ASSERT_EQ(pdf.cell_masses().size(), masses.size());
  for (size_t i = 0; i < masses.size(); ++i) {
    EXPECT_EQ(pdf.cell_masses()[i], masses[i]) << i;
  }
}

TEST(WireRequestTest, HistogramCellCountOverflowIsRejected) {
  // Regression: nx=2^31 × ny=2^30 makes cells*sizeof(double) wrap to 0
  // mod 2^64, so a multiplication-form size check would pass and the
  // decoder would attempt a 2^61-element vector (std::length_error →
  // std::terminate on a server thread). The division-form check must
  // reject the frame with a Status instead.
  ByteWriter writer;
  writer.U8(3);  // histogram pdf tag
  writer.F64(0.0);
  writer.F64(1.0);
  writer.F64(0.0);
  writer.F64(1.0);
  writer.U32(0x80000000u);  // nx = 2^31
  writer.U32(0x40000000u);  // ny = 2^30
  const std::vector<uint8_t> bytes = std::move(writer).Take();
  ByteReader reader(bytes);
  auto pdf = DecodePdf(&reader);
  ASSERT_FALSE(pdf.ok());
  EXPECT_EQ(pdf.status().code(), StatusCode::kOutOfRange);
}

TEST(WireRequestTest, AnyPdfIsNotEncodable) {
  WireRequest request;
  request.issuer_pdf = PdfVariant(AnyPdf(std::make_unique<UniformRectPdf>(
      UniformRectPdf::Make(Rect(0, 1, 0, 1)).ValueOrDie())));
  ByteWriter writer;
  EXPECT_EQ(EncodeRequest(request, &writer).code(),
            StatusCode::kNotImplemented);
}

TEST(WireRequestTest, RejectsSemanticGarbage) {
  WireRequest request;
  request.spec.query.w = 10.0;
  std::vector<uint8_t> valid = EncodeRequestBytes(request);

  {  // method out of range
    std::vector<uint8_t> bytes = valid;
    bytes[0] = static_cast<uint8_t>(kQueryMethodCount);
    EXPECT_EQ(DecodeRequest(bytes).status().code(),
              StatusCode::kInvalidArgument);
  }
  {  // reserved prune bits
    std::vector<uint8_t> bytes = valid;
    bytes[1 + 3 * 8] = 0x80;
    EXPECT_EQ(DecodeRequest(bytes).status().code(),
              StatusCode::kInvalidArgument);
  }
  {  // trailing bytes
    std::vector<uint8_t> bytes = valid;
    bytes.push_back(0);
    EXPECT_EQ(DecodeRequest(bytes).status().code(),
              StatusCode::kInvalidArgument);
  }
  {  // negative query extent (sign bit of w's F64)
    std::vector<uint8_t> bytes = valid;
    bytes[1 + 7] |= 0x80;
    EXPECT_EQ(DecodeRequest(bytes).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(WireResponseTest, RoundTripsEmptyDuplicateHeavyAndLargeAnswerSets) {
  std::vector<AnswerSet> cases;
  cases.push_back({});  // empty
  AnswerSet duplicates;  // duplicate-heavy: same id, same + near probs
  for (int i = 0; i < 64; ++i) {
    duplicates.push_back({7, 0.5});
    duplicates.push_back({7, 0.5000000000000001});
  }
  cases.push_back(duplicates);
  AnswerSet large;
  Rng rng(2026);
  for (uint32_t i = 0; i < 5000; ++i) {
    large.push_back({i, rng.Uniform(0.0, 1.0)});
  }
  cases.push_back(large);

  for (const AnswerSet& answers : cases) {
    WireResponse response;
    response.answers = answers;
    response.stats.epoch = 42;
    response.stats.server_ms = 1.5;
    response.stats.submitted = 10;
    response.stats.completed = 9;
    response.stats.pending = 1;
    response.stats.p50_ms = 0.25;
    response.stats.p95_ms = 0.75;
    response.stats.p99_ms = 1.25;

    ByteWriter writer;
    ASSERT_TRUE(EncodeResponse(response, &writer).ok());
    auto decoded = DecodeResponse(writer.bytes());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(decoded->stats == response.stats);
    ASSERT_EQ(decoded->answers.size(), answers.size());
    for (size_t i = 0; i < answers.size(); ++i) {
      EXPECT_EQ(decoded->answers[i].id, answers[i].id);
      EXPECT_EQ(decoded->answers[i].probability, answers[i].probability);
    }
  }
}

TEST(WireResponseTest, ForgedAnswerCountIsRejectedBeforeAllocation) {
  WireResponse response;
  response.answers.push_back({1, 0.5});
  ByteWriter writer;
  ASSERT_TRUE(EncodeResponse(response, &writer).ok());
  std::vector<uint8_t> bytes = std::move(writer).Take();
  // The answer count u32 sits right after the 64-byte stats block (eight
  // u64/f64 fields); forge it to claim ~4 billion answers backed by 12
  // bytes.
  const size_t count_offset = 64;
  for (size_t i = 0; i < 4; ++i) bytes[count_offset + i] = 0xFF;
  EXPECT_EQ(DecodeResponse(bytes).status().code(), StatusCode::kOutOfRange);
}

TEST(WireErrorTest, RoundTripsEveryErrorCode) {
  for (uint8_t code = 1;
       code <= static_cast<uint8_t>(StatusCode::kDeadlineExceeded); ++code) {
    const Status error(static_cast<StatusCode>(code), "context message");
    ByteWriter writer;
    ASSERT_TRUE(EncodeError(error, &writer).ok());
    Status decoded = Status::OK();
    ASSERT_TRUE(DecodeError(writer.bytes(), &decoded).ok());
    EXPECT_TRUE(decoded == error) << decoded.ToString();
  }
}

TEST(WireErrorTest, OkIsNotAnError) {
  ByteWriter writer;
  EXPECT_EQ(EncodeError(Status::OK(), &writer).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireFrameHeaderTest, RoundTripsAndRejects) {
  ByteWriter writer;
  EncodeFrameHeader(FrameType::kResponse, 1234, &writer);
  ASSERT_EQ(writer.size(), kFrameHeaderBytes);

  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(writer.bytes(), 1 << 20, &header).ok());
  EXPECT_EQ(header.payload_size, 1234u);
  EXPECT_EQ(header.type, FrameType::kResponse);

  // Oversized payload: rejected before any allocation happens.
  EXPECT_EQ(DecodeFrameHeader(writer.bytes(), 1000, &header).code(),
            StatusCode::kOutOfRange);

  std::vector<uint8_t> bad_version = writer.bytes();
  bad_version[4] = kWireVersion + 1;
  EXPECT_EQ(DecodeFrameHeader(bad_version, 1 << 20, &header).code(),
            StatusCode::kInvalidArgument);

  std::vector<uint8_t> bad_type = writer.bytes();
  bad_type[5] = 0x7F;
  EXPECT_EQ(DecodeFrameHeader(bad_type, 1 << 20, &header).code(),
            StatusCode::kInvalidArgument);

  std::vector<uint8_t> truncated(writer.bytes().begin(),
                                 writer.bytes().begin() + 3);
  EXPECT_EQ(DecodeFrameHeader(truncated, 1 << 20, &header).code(),
            StatusCode::kOutOfRange);
}

// ---- Continuous sessions (v2) ----------------------------------------------

TEST(WireContinuousTest, RequestRoundTripsEveryPdfAndMethod) {
  const std::vector<PdfVariant> pdfs = AllEncodablePdfs();
  for (const QueryMethod method : AllQueryMethods()) {
    for (size_t p = 0; p < pdfs.size(); ++p) {
      WireContinuousRequest request;
      request.subscription_id = 0xFEEDFACE00000000ull + p;
      request.request.issuer_id = 2000 + static_cast<ObjectId>(p);
      request.request.issuer_pdf = pdfs[p];
      request.request.method = method;
      request.request.spec.query.w = 250.5;
      request.request.spec.query.h = 31.25;
      request.request.spec.query.threshold = 0.375;

      ByteWriter writer;
      ASSERT_TRUE(EncodeContinuousRequest(request, &writer).ok());
      auto decoded = DecodeContinuousRequest(writer.bytes());
      ASSERT_TRUE(decoded.ok())
          << QueryMethodName(method) << ": " << decoded.status().ToString();
      EXPECT_EQ(decoded->subscription_id, request.subscription_id);
      EXPECT_EQ(decoded->request.issuer_id, request.request.issuer_id);
      EXPECT_EQ(decoded->request.method, method);
      EXPECT_EQ(decoded->request.spec.query.w, 250.5);
      EXPECT_EQ(decoded->request.spec.query.threshold, 0.375);
      EXPECT_EQ(decoded->request.issuer_pdf.index(), pdfs[p].index());
    }
  }
}

TEST(WireContinuousTest, UpdateRoundTripsEveryPdf) {
  for (const PdfVariant& pdf : AllEncodablePdfs()) {
    WireContinuousUpdate update;
    update.subscription_id = 77;
    update.issuer_id = 4242;
    update.issuer_pdf = pdf;
    ByteWriter writer;
    ASSERT_TRUE(EncodeContinuousUpdate(update, &writer).ok());
    auto decoded = DecodeContinuousUpdate(writer.bytes());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->subscription_id, 77u);
    EXPECT_EQ(decoded->issuer_id, 4242u);
    EXPECT_EQ(decoded->issuer_pdf.index(), pdf.index());
  }
}

TEST(WireContinuousTest, ResponseRoundTripsRegionsFlagsAndAnswers) {
  // Finite, empty (the canonical inverted-infinite rect — infinities are
  // legal on the wire), and degenerate regions all round-trip bit-exactly.
  const std::vector<Rect> regions = {Rect(10.5, 20.5, -3.25, 4.75),
                                     Rect::Empty(),
                                     Rect(1.0, 1.0, 2.0, 2.0)};
  for (const Rect& region : regions) {
    for (const bool revalidated : {false, true}) {
      WireContinuousResponse response;
      response.subscription_id = 31337;
      response.revalidated = revalidated;
      response.valid_region = region;
      response.response.answers.push_back({9, 0.75});
      response.response.stats.epoch = 17;  // the basis epoch rides here

      ByteWriter writer;
      ASSERT_TRUE(EncodeContinuousResponse(response, &writer).ok());
      auto decoded = DecodeContinuousResponse(writer.bytes());
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->subscription_id, 31337u);
      EXPECT_EQ(decoded->revalidated, revalidated);
      EXPECT_EQ(decoded->valid_region.xmin, region.xmin);
      EXPECT_EQ(decoded->valid_region.xmax, region.xmax);
      EXPECT_EQ(decoded->valid_region.ymin, region.ymin);
      EXPECT_EQ(decoded->valid_region.ymax, region.ymax);
      EXPECT_EQ(decoded->response.stats.epoch, 17u);
      ASSERT_EQ(decoded->response.answers.size(), 1u);
      EXPECT_EQ(decoded->response.answers[0].probability, 0.75);
    }
  }
}

TEST(WireContinuousTest, ResponseRejectsBadFlagNaNRegionAndTrailingBytes) {
  WireContinuousResponse response;
  response.subscription_id = 5;
  response.valid_region = Rect(0, 10, 0, 10);
  ByteWriter writer;
  ASSERT_TRUE(EncodeContinuousResponse(response, &writer).ok());
  const std::vector<uint8_t> valid = std::move(writer).Take();

  {  // revalidated must be 0 or 1 (offset 8: right after the u64 id)
    std::vector<uint8_t> bytes = valid;
    bytes[8] = 2;
    EXPECT_EQ(DecodeContinuousResponse(bytes).status().code(),
              StatusCode::kInvalidArgument);
  }
  {  // a NaN coordinate would poison the router's region intersection
    std::vector<uint8_t> bytes = valid;
    // First F64 of the rect starts at offset 9; quiet-NaN bit pattern.
    const uint8_t nan_le[8] = {0, 0, 0, 0, 0, 0, 0xF8, 0x7F};
    for (size_t i = 0; i < 8; ++i) bytes[9 + i] = nan_le[i];
    EXPECT_EQ(DecodeContinuousResponse(bytes).status().code(),
              StatusCode::kInvalidArgument);
  }
  {  // trailing bytes
    std::vector<uint8_t> bytes = valid;
    bytes.push_back(0);
    EXPECT_EQ(DecodeContinuousResponse(bytes).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(WireContinuousTest, UnregisterRoundTripsAndRejectsTruncation) {
  ByteWriter writer;
  ASSERT_TRUE(EncodeUnregister(0xDEADBEEFCAFEF00Dull, &writer).ok());
  auto decoded = DecodeUnregister(writer.bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, 0xDEADBEEFCAFEF00Dull);

  const std::vector<uint8_t> bytes = std::move(writer).Take();
  EXPECT_FALSE(
      DecodeUnregister(std::span<const uint8_t>(bytes.data(), 7)).ok());
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeUnregister(trailing).ok());
}

TEST(WireContinuousTest, V2FrameTypesRoundTripThroughTheHeader) {
  for (const FrameType type :
       {FrameType::kRegister, FrameType::kContinuousUpdate,
        FrameType::kContinuousResponse, FrameType::kUnregister}) {
    ByteWriter writer;
    EncodeFrameHeader(type, 99, &writer);
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(writer.bytes(), 1 << 20, &header).ok());
    EXPECT_EQ(header.type, type);
    EXPECT_EQ(header.payload_size, 99u);
  }
}

// ---- Fuzz totality ---------------------------------------------------------

// Runs one byte string through every decoder; the only acceptable outcomes
// are OK or an error Status. Crashes/overflows surface under ASan.
void DecodeEverything(const std::vector<uint8_t>& bytes) {
  (void)DecodeRequest(bytes);
  (void)DecodeResponse(bytes);
  Status error = Status::OK();
  (void)DecodeError(bytes, &error);
  FrameHeader header;
  (void)DecodeFrameHeader(bytes, 1 << 16, &header);
  (void)DecodeSnapshot(bytes);
  (void)DecodeShardMap(bytes);
  (void)DecodeContinuousRequest(bytes);
  (void)DecodeContinuousUpdate(bytes);
  (void)DecodeContinuousResponse(bytes);
  (void)DecodeUnregister(bytes);
  ByteReader reader(bytes);
  (void)DecodePdf(&reader);
}

TEST(WireFuzzTest, RandomByteStringsNeverCrashAnyDecoder) {
  Rng rng(0xF00DF00D);
  for (int iteration = 0; iteration < 10000; ++iteration) {
    const size_t length = static_cast<size_t>(rng.NextBelow(200));
    std::vector<uint8_t> bytes(length);
    for (uint8_t& b : bytes) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    DecodeEverything(bytes);
  }
}

TEST(WireFuzzTest, TruncationsAndMutationsOfValidEncodingsNeverCrash) {
  // Seed corpus: one valid encoding per message kind.
  std::vector<std::vector<uint8_t>> corpus;
  for (const PdfVariant& pdf : AllEncodablePdfs()) {
    WireRequest request;
    request.issuer_pdf = pdf;
    request.spec.query.w = 250.0;
    request.spec.query.h = 250.0;
    corpus.push_back(EncodeRequestBytes(request));
  }
  {
    WireResponse response;
    for (uint32_t i = 0; i < 16; ++i) response.answers.push_back({i, 0.5});
    ByteWriter writer;
    ASSERT_TRUE(EncodeResponse(response, &writer).ok());
    corpus.push_back(std::move(writer).Take());
  }
  {
    ByteWriter writer;
    ASSERT_TRUE(EncodeError(Status::IOError("boom"), &writer).ok());
    corpus.push_back(std::move(writer).Take());
  }
  {
    CatalogImage image;
    image.epoch = 3;
    image.points.push_back(PointObject{1, Point(2.0, 3.0)});
    image.uncertains.emplace_back(
        1, RectPdf(0, 10, 0, 10));
    ByteWriter writer;
    ASSERT_TRUE(EncodeSnapshot(image, &writer).ok());
    corpus.push_back(std::move(writer).Take());
  }
  {
    ShardMap map(3);
    map[1].point_bounds = Rect(0, 1, 0, 1);
    map[2].uncertain_bounds = Rect(2, 3, 2, 3);
    ByteWriter writer;
    EncodeShardMap(map, &writer);
    corpus.push_back(std::move(writer).Take());
  }
  {  // v2 continuous payloads, one seed each
    WireContinuousRequest request;
    request.subscription_id = 11;
    request.request.issuer_pdf = AllEncodablePdfs().front();
    request.request.spec.query.w = 100.0;
    ByteWriter writer;
    ASSERT_TRUE(EncodeContinuousRequest(request, &writer).ok());
    corpus.push_back(std::move(writer).Take());
  }
  {
    WireContinuousUpdate update;
    update.subscription_id = 12;
    update.issuer_id = 7;
    update.issuer_pdf = AllEncodablePdfs().back();
    ByteWriter writer;
    ASSERT_TRUE(EncodeContinuousUpdate(update, &writer).ok());
    corpus.push_back(std::move(writer).Take());
  }
  {
    WireContinuousResponse response;
    response.subscription_id = 13;
    response.revalidated = true;
    response.valid_region = Rect(0, 50, 0, 50);
    for (uint32_t i = 0; i < 8; ++i) response.response.answers.push_back(
        {i, 0.25});
    ByteWriter writer;
    ASSERT_TRUE(EncodeContinuousResponse(response, &writer).ok());
    corpus.push_back(std::move(writer).Take());
  }
  {
    ByteWriter writer;
    ASSERT_TRUE(EncodeUnregister(14, &writer).ok());
    corpus.push_back(std::move(writer).Take());
  }

  Rng rng(0xBADC0DE);
  for (const std::vector<uint8_t>& seed : corpus) {
    // Every prefix truncation.
    for (size_t length = 0; length < seed.size(); ++length) {
      DecodeEverything(
          std::vector<uint8_t>(seed.begin(),
                               seed.begin() + static_cast<ptrdiff_t>(length)));
    }
    // Seeded single- and multi-byte mutations.
    for (int iteration = 0; iteration < 400; ++iteration) {
      std::vector<uint8_t> mutated = seed;
      const size_t flips = 1 + rng.NextBelow(4);
      for (size_t f = 0; f < flips; ++f) {
        const size_t pos = static_cast<size_t>(rng.NextBelow(mutated.size()));
        mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
      }
      DecodeEverything(mutated);
    }
  }
}

}  // namespace
}  // namespace ilq
