// Over-the-wire differential suite for continuous sessions (protocol v2):
// a Router streaming trajectory updates to a fleet of ShardServers over
// real localhost sockets must answer every step bit-identically to a
// one-shot query on the monolithic QueryEngine — all eight methods, both
// kernels, for trajectories that wander locally (valid-region replay) and
// trajectories that cross the space (shard-set churn, transparent
// re-registration). Also covers the session lifecycle over the wire:
// unregister, unknown handles, and recovery after DisconnectAll (the
// servers drop their connection-scoped halves; the next update must
// re-register on their kNotFound and keep answering exactly).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/batch.h"
#include "core/engine.h"
#include "datagen/workload.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "serve/partition.h"
#include "serve/sharded_engine.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::MakeGaussian;
using ::ilq::testing::MakeSkewedHistogram;
using ::ilq::testing::MakeUniform;
using ::ilq::testing::RandomRect;

CatalogImage MakeImage(uint64_t seed, size_t uncertains, size_t points) {
  Rng rng(seed);
  CatalogImage image;
  const Rect space(0, 1000, 0, 1000);
  for (size_t i = 0; i < points; ++i) {
    image.points.emplace_back(
        static_cast<ObjectId>(i + 1),
        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  for (size_t i = 0; i < uncertains; ++i) {
    const Rect region = RandomRect(&rng, space, 15, 70);
    const ObjectId id = static_cast<ObjectId>(i + 1);
    switch (i % 3) {
      case 0:
        image.uncertains.emplace_back(id, MakeUniform(region));
        break;
      case 1:
        image.uncertains.emplace_back(id, MakeGaussian(region));
        break;
      default:
        image.uncertains.emplace_back(
            id, MakeSkewedHistogram(region, 3, 3, seed + i));
        break;
    }
  }
  return image;
}

AnswerSet Canonical(AnswerSet answers) {
  CanonicalizeAnswers(&answers);
  return answers;
}

void ExpectBitIdentical(const AnswerSet& remote, const AnswerSet& mono,
                        const std::string& what) {
  ASSERT_EQ(remote.size(), mono.size()) << what;
  for (size_t i = 0; i < remote.size(); ++i) {
    EXPECT_EQ(remote[i].id, mono[i].id) << what << " answer #" << i;
    EXPECT_EQ(remote[i].probability, mono[i].probability)
        << what << " answer #" << i << " (id " << remote[i].id << ")";
  }
}

// Monolith reference + a 3-shard socket fleet over the same catalog image.
struct Fleet {
  std::unique_ptr<QueryEngine> mono;
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::unique_ptr<Router> router;

  Fleet() = default;
  Fleet(Fleet&&) = default;

  ~Fleet() {
    router.reset();  // close client connections before the servers stop
    for (auto& server : servers) {
      if (server != nullptr) server->Stop();
    }
  }
};

Fleet MakeFleet(ProbabilityKernel kernel) {
  const CatalogImage image = MakeImage(111, 120, 100);
  EngineConfig engine_config;
  engine_config.eval.kernel = kernel;
  engine_config.eval.mc_samples = 64;

  Fleet fleet;
  auto mono =
      QueryEngine::Build(image.points, image.uncertains, engine_config);
  ILQ_CHECK(mono.ok(), mono.status().ToString());
  fleet.mono = std::make_unique<QueryEngine>(std::move(mono).ValueOrDie());

  constexpr size_t kShards = 3;
  auto split = SplitCatalogImage(image, kShards);
  ILQ_CHECK(split.ok(), split.status().ToString());
  RouterOptions router_options;
  router_options.map = split->map;
  for (CatalogImage& shard : split->shards) {
    ShardedEngineConfig shard_config;
    shard_config.shards = 1;
    shard_config.engine = engine_config;
    auto engine =
        ShardedEngine::Build(std::move(shard.points),
                             std::move(shard.uncertains), shard_config);
    ILQ_CHECK(engine.ok(), engine.status().ToString());
    fleet.engines.push_back(
        std::make_unique<ShardedEngine>(std::move(engine).ValueOrDie()));
    fleet.servers.push_back(
        std::make_unique<ShardServer>(*fleet.engines.back()));
    ILQ_CHECK(fleet.servers.back()->Start().ok(), "server start");
    router_options.endpoints.push_back(
        RouterEndpoint{"127.0.0.1", fleet.servers.back()->port()});
  }
  auto router = Router::Make(std::move(router_options));
  ILQ_CHECK(router.ok(), router.status().ToString());
  fleet.router = std::make_unique<Router>(std::move(router).ValueOrDie());
  return fleet;
}

TrajectoryWorkload MakeTrajectories(TrajectoryKind kind, double threshold,
                                    size_t issuers, size_t steps,
                                    double step_size) {
  WorkloadConfig base;
  base.space = Rect(0, 1000, 0, 1000);
  base.w = 120.0;
  base.qp = threshold;
  base.seed = 99;
  TrajectoryConfig traj;
  traj.issuers = issuers;
  traj.steps = steps;
  traj.kind = kind;
  traj.step = step_size;
  traj.u_min = 30.0;
  traj.u_max = 45.0;
  traj.hotspots = 3;
  Result<TrajectoryWorkload> workload =
      GenerateTrajectoryWorkload(base, traj);
  ILQ_CHECK(workload.ok(), workload.status().ToString());
  return std::move(workload).ValueOrDie();
}

class ContinuousNetTest : public ::testing::TestWithParam<ProbabilityKernel> {
};

// Local wandering: the session mostly replays inside its valid region.
TEST_P(ContinuousNetTest, RandomWalkMatchesMonolithBitExactly) {
  Fleet fleet = MakeFleet(GetParam());
  const TrajectoryWorkload workload = MakeTrajectories(
      TrajectoryKind::kRandomWalk, 0.3, /*issuers=*/1, /*steps=*/6, 60.0);
  const BatchSpec spec{workload.spec};
  const std::vector<UncertainObject>& trajectory = workload.steps.front();

  for (const QueryMethod method : AllQueryMethods()) {
    SCOPED_TRACE(QueryMethodName(method));
    auto registered =
        fleet.router->RegisterContinuous(method, spec, trajectory.front());
    ASSERT_TRUE(registered.ok()) << registered.status().ToString();
    ExpectBitIdentical(
        registered->answer.answers,
        Canonical(RunQueryMethod(*fleet.mono, method, trajectory.front(),
                                 spec)),
        "register");
    for (size_t t = 1; t < trajectory.size(); ++t) {
      auto answer =
          fleet.router->UpdateContinuous(registered->id, trajectory[t]);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      EXPECT_TRUE(answer->valid_region.ContainsRect(trajectory[t].region()))
          << "step " << t;
      ExpectBitIdentical(
          answer->answers,
          Canonical(RunQueryMethod(*fleet.mono, method, trajectory[t],
                                   spec)),
          "step " + std::to_string(t));
    }
    EXPECT_TRUE(fleet.router->UnregisterContinuous(registered->id).ok());
  }
  EXPECT_EQ(fleet.router->continuous_session_count(), 0u);
}

// Space-crossing waypoint motion: the routed shard set changes along the
// way, so the router must transparently re-register — and stay exact.
TEST_P(ContinuousNetTest, WaypointShardChurnStaysExact) {
  Fleet fleet = MakeFleet(GetParam());
  const TrajectoryWorkload workload = MakeTrajectories(
      TrajectoryKind::kWaypoint, 0.0, /*issuers=*/2, /*steps=*/10, 150.0);
  const BatchSpec spec{workload.spec};

  // Two representative methods (point- and uncertain-routed); the full
  // method sweep is the random-walk test's job.
  for (const QueryMethod method :
       {QueryMethod::kIpq, QueryMethod::kCiuqRTree}) {
    for (const std::vector<UncertainObject>& trajectory : workload.steps) {
      SCOPED_TRACE(std::string(QueryMethodName(method)) + " issuer " +
                   std::to_string(trajectory.front().id()));
      auto registered =
          fleet.router->RegisterContinuous(method, spec, trajectory.front());
      ASSERT_TRUE(registered.ok()) << registered.status().ToString();
      for (size_t t = 1; t < trajectory.size(); ++t) {
        auto answer =
            fleet.router->UpdateContinuous(registered->id, trajectory[t]);
        ASSERT_TRUE(answer.ok()) << answer.status().ToString();
        ExpectBitIdentical(
            answer->answers,
            Canonical(RunQueryMethod(*fleet.mono, method, trajectory[t],
                                     spec)),
            "step " + std::to_string(t));
      }
      EXPECT_TRUE(fleet.router->UnregisterContinuous(registered->id).ok());
    }
  }
  // Crossing the space must actually have exercised the re-registration
  // path, or this test is only re-checking the random-walk regime.
  EXPECT_GT(fleet.router->stats().continuous_reregisters, 0u);
}

// DisconnectAll kills the transport under live sessions. The servers drop
// their connection-scoped session halves; the next update must reconnect,
// re-register on the server's kNotFound, and answer exactly.
TEST_P(ContinuousNetTest, SessionsSurviveDisconnectAll) {
  Fleet fleet = MakeFleet(GetParam());
  const TrajectoryWorkload workload = MakeTrajectories(
      TrajectoryKind::kRandomWalk, 0.0, /*issuers=*/1, /*steps=*/4, 60.0);
  const BatchSpec spec{workload.spec};
  const std::vector<UncertainObject>& trajectory = workload.steps.front();

  auto registered = fleet.router->RegisterContinuous(
      QueryMethod::kIuq, spec, trajectory.front());
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();

  fleet.router->DisconnectAll();
  EXPECT_EQ(fleet.router->continuous_session_count(), 1u);

  for (size_t t = 1; t < trajectory.size(); ++t) {
    auto answer =
        fleet.router->UpdateContinuous(registered->id, trajectory[t]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ExpectBitIdentical(
        answer->answers,
        Canonical(RunQueryMethod(*fleet.mono, QueryMethod::kIuq,
                                 trajectory[t], spec)),
        "post-disconnect step " + std::to_string(t));
    // A second disconnect mid-stream, for good measure.
    if (t == 1) fleet.router->DisconnectAll();
  }
  EXPECT_TRUE(fleet.router->UnregisterContinuous(registered->id).ok());
}

TEST(ContinuousNetLifecycleTest, UnknownHandlesAreNotFound) {
  Fleet fleet = MakeFleet(ProbabilityKernel::kAnalytic);
  UncertainObject issuer(801u, MakeUniform(Rect(400, 480, 400, 480)));
  EXPECT_EQ(fleet.router->UpdateContinuous(424242, issuer).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fleet.router->UnregisterContinuous(424242).code(),
            StatusCode::kNotFound);

  const BatchSpec spec{RangeQuerySpec(120, 120, 0.0)};
  auto registered =
      fleet.router->RegisterContinuous(QueryMethod::kIpq, spec, issuer);
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  EXPECT_TRUE(fleet.router->UnregisterContinuous(registered->id).ok());
  EXPECT_EQ(fleet.router->UnregisterContinuous(registered->id).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      fleet.router->UpdateContinuous(registered->id, issuer).status().code(),
      StatusCode::kNotFound);
}

// One-shot queries and continuous sessions share the connections; mixing
// them frame-by-frame must not confuse either path.
TEST(ContinuousNetLifecycleTest, OneShotAndContinuousInterleave) {
  Fleet fleet = MakeFleet(ProbabilityKernel::kAnalytic);
  const TrajectoryWorkload workload = MakeTrajectories(
      TrajectoryKind::kRandomWalk, 0.0, /*issuers=*/1, /*steps=*/4, 60.0);
  const BatchSpec spec{workload.spec};
  const std::vector<UncertainObject>& trajectory = workload.steps.front();

  auto registered = fleet.router->RegisterContinuous(
      QueryMethod::kIpq, spec, trajectory.front());
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();

  UncertainObject oneshot(802u, MakeUniform(Rect(200, 300, 600, 700)));
  for (size_t t = 1; t < trajectory.size(); ++t) {
    auto remote = fleet.router->Query(oneshot, QueryMethod::kIuq, spec);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    ExpectBitIdentical(
        Canonical(*remote),
        Canonical(RunQueryMethod(*fleet.mono, QueryMethod::kIuq, oneshot,
                                 spec)),
        "interleaved one-shot");
    auto answer =
        fleet.router->UpdateContinuous(registered->id, trajectory[t]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ExpectBitIdentical(
        answer->answers,
        Canonical(RunQueryMethod(*fleet.mono, QueryMethod::kIpq,
                                 trajectory[t], spec)),
        "interleaved step " + std::to_string(t));
  }
  EXPECT_TRUE(fleet.router->UnregisterContinuous(registered->id).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ContinuousNetTest,
    ::testing::Values(ProbabilityKernel::kAnalytic,
                      ProbabilityKernel::kMonteCarlo),
    [](const ::testing::TestParamInfo<ProbabilityKernel>& info) {
      return info.param == ProbabilityKernel::kAnalytic ? "Analytic"
                                                        : "MonteCarlo";
    });

}  // namespace
}  // namespace ilq
