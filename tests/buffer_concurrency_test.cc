// Concurrency suite for the paged storage tier (thread label -> TSan CI
// job): the LRU BufferManager and a disk-resident R-tree are shared by
// many threads at once, under a buffer budget small enough that eviction
// races are constant. Pins must stay correct (every handle sees the exact
// page bytes even when its page is evicted mid-use), counters must account
// for every pin exactly once across threads, and concurrent queries over
// one paged tree must all produce the arena tree's answers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/rtree.h"
#include "storage/buffer_manager.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace ilq {
namespace {

using ::ilq::testing::RandomRect;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "ilq_buffer_concurrency_" + name;
}

TEST(BufferConcurrencyTest, ConcurrentPinsSeeCorrectBytesAndCounters) {
  constexpr uint32_t kPage = 128;
  constexpr uint32_t kPages = 24;
  const std::string path = TempPath("hammer.ilqp");
  {
    auto writer = PageFileWriter::Create(path, kPage);
    ASSERT_TRUE(writer.ok());
    std::vector<uint8_t> page(kPage, 0);
    for (uint32_t p = 0; p < kPages; ++p) {
      for (size_t i = kPageChecksumBytes; i < page.size(); ++i) {
        page[i] = static_cast<uint8_t>((p * 131 + i) & 0xFF);
      }
      ASSERT_TRUE(writer->WritePage(page).ok());
    }
    PageFileHeader header;
    header.page_size = kPage;
    header.page_count = kPages;
    header.root = 0;
    header.height = 1;
    header.max_entries = 3;
    header.min_entries = 1;
    ASSERT_TRUE(writer->Finish(header).ok());
  }
  auto file = PageFile::Open(path);
  ASSERT_TRUE(file.ok());
  BufferManager buffer(*file, 4 * kPage);  // far fewer slots than pages

  constexpr size_t kThreads = 8;
  constexpr size_t kPinsPerThread = 2000;
  std::atomic<size_t> bad_bytes{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (size_t i = 0; i < kPinsPerThread; ++i) {
        const auto page_id = static_cast<uint32_t>(
            rng.Uniform(0, static_cast<double>(kPages)));
        auto handle = buffer.Pin(page_id % kPages);
        if (!handle.ok()) {
          ++bad_bytes;
          continue;
        }
        // Spot-check the pattern: an eviction racing this read must not be
        // able to hand us another page's bytes.
        const std::vector<uint8_t>& bytes = **handle;
        for (size_t off = kPageChecksumBytes; off < bytes.size();
             off += 37) {
          if (bytes[off] !=
              static_cast<uint8_t>(((page_id % kPages) * 131 + off) &
                                   0xFF)) {
            ++bad_bytes;
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(bad_bytes.load(), 0u);
  const BufferCounters total = buffer.counters();
  // Every pin is exactly one hit or one miss — no double counting, no
  // dropped updates across threads.
  EXPECT_EQ(total.hits + total.misses, kThreads * kPinsPerThread);
  EXPECT_GT(total.evictions, 0u);
  EXPECT_LE(buffer.resident_pages(), buffer.capacity_pages());
  std::remove(path.c_str());
}

TEST(BufferConcurrencyTest, ConcurrentQueriesOverOnePagedTreeStayCorrect) {
  Rng rng(83);
  const Rect space(0, 1000, 0, 1000);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < 500; ++i) {
    items.push_back(RTree::Item{RandomRect(&rng, space, 1, 40),
                                static_cast<ObjectId>(i)});
  }
  RTreeOptions options;
  options.page_size_bytes = 256;
  auto ram = RTree::BulkLoad(options, items);
  ASSERT_TRUE(ram.ok());
  const std::string path = TempPath("tree.ilqp");
  ASSERT_TRUE(ram->SavePaged(path).ok());
  PagedOpenOptions open;
  open.buffer_pool_bytes = 3 * 256;  // tiny: queries evict each other
  auto disk = RTree::OpenPaged(path, open);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  // Precompute expected answers single-threaded on the arena tree.
  constexpr size_t kQueries = 64;
  std::vector<Rect> ranges;
  std::vector<std::vector<ObjectId>> expected;
  for (size_t q = 0; q < kQueries; ++q) {
    ranges.push_back(RandomRect(&rng, space, 10, 200));
    expected.push_back(ram->QueryIds(ranges.back()));
  }

  const BufferCounters before = disk->buffer_counters();
  constexpr size_t kThreads = 8;
  std::atomic<size_t> mismatches{0};
  std::atomic<uint64_t> node_reads{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      IndexStats stats;  // per-thread: never shared between queries
      for (size_t round = 0; round < 4; ++round) {
        for (size_t q = t % kQueries; q < kQueries; q += kThreads) {
          if (disk->QueryIds(ranges[q], &stats) != expected[q]) {
            ++mismatches;
          }
        }
      }
      node_reads += stats.node_accesses;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // The lifetime buffer counters account for exactly the node reads made
  // (the hit/miss *split* is interleaving-dependent, the sum is not).
  const BufferCounters after = disk->buffer_counters();
  EXPECT_EQ((after.hits + after.misses) - (before.hits + before.misses),
            node_reads.load());
  EXPECT_GT(after.evictions, before.evictions);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ilq
