// Serving-layer throughput bench: Zipfian issuer traffic submitted through
// AsyncServer against ShardedEngine configurations, reporting wall-clock
// QPS, latency quantiles, cache hit rates and routing fan-out.
//
// Scenarios (fixed names — they feed the tracked micro-bench JSON flow and
// are gated against bench/baselines/BENCH_serve.json by the perf-smoke CI
// job via check_perf_regression.py --normalize):
//   BM_ServeSubmit/ipq/shards=1        monolithic reference
//   BM_ServeSubmit/ipq/sharded         --shards spatial shards
//   BM_ServeSubmit/ipq/sharded_cached  + AnswerCache over skewed repeats
//   BM_ServeSubmit/ciuq_pti/sharded    threshold method through the stack
// Each records the mean submission-to-completion time per request
// (cpu_time_ns == real_time_ns; the serving path is CPU-bound).
//
// Flags: --shards=N --threads=N --cache=N --skew=S (plus --requests=N,
// --pool=N) and the usual ILQ_BENCH_QUERIES / ILQ_BENCH_SCALE /
// ILQ_BENCH_JSON environment knobs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/async_server.h"
#include "serve/sharded_engine.h"

namespace ilq::bench {
namespace {

// --flag=V / "--flag V" numeric parser (same convention as BenchThreads).
double ParseFlag(int argc, char** argv, const char* flag, double fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) != 0) continue;
    if (argv[i][flag_len] == '=') return std::atof(argv[i] + flag_len + 1);
    if (argv[i][flag_len] == '\0' && i + 1 < argc) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

ShardedEngine BuildShardedPaperEngine(double scale, size_t shards) {
  Result<std::vector<UncertainObject>> objects =
      MakeUniformUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(objects.ok(), objects.status().ToString());
  ShardedEngineConfig config;
  config.shards = shards;
  Result<ShardedEngine> engine = ShardedEngine::Build(
      CaliforniaPoints(scale), std::move(objects).ValueOrDie(), config);
  ILQ_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).ValueOrDie();
}

struct ScenarioResult {
  double wall_ms = 0.0;
  double qps = 0.0;
  size_t answers = 0;
  ServeStats stats;
};

// Pushes the whole request stream through an AsyncServer and waits for
// every answer.
ScenarioResult RunScenario(const ShardedEngine& engine, QueryMethod method,
                           const SkewedWorkload& workload, size_t threads,
                           size_t cache_capacity) {
  AsyncServerOptions options;
  options.threads = threads;
  options.queue_capacity = 256;
  options.cache_capacity = cache_capacity;
  AsyncServer server(engine, options);

  std::vector<std::future<AnswerSet>> futures;
  futures.reserve(workload.sequence.size());
  const BatchSpec spec{workload.spec};

  Stopwatch watch;
  for (const size_t pick : workload.sequence) {
    futures.push_back(server.Submit(workload.pool[pick], spec, method));
  }
  size_t answers = 0;
  for (auto& future : futures) answers += future.get().size();
  server.Drain();

  ScenarioResult result;
  result.wall_ms = watch.ElapsedMillis();
  result.qps = result.wall_ms > 0.0
                   ? 1000.0 * static_cast<double>(futures.size()) /
                         result.wall_ms
                   : 0.0;
  result.answers = answers;
  result.stats = server.stats();
  return result;
}

double MeanShardsRouted(const ShardedEngine& engine, QueryMethod method,
                        const SkewedWorkload& workload) {
  size_t routed = 0;
  for (const UncertainObject& issuer : workload.pool) {
    routed += engine.Route(method, issuer, workload.spec).size();
  }
  return workload.pool.empty()
             ? 0.0
             : static_cast<double>(routed) /
                   static_cast<double>(workload.pool.size());
}

}  // namespace
}  // namespace ilq::bench

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv, 2);
  const auto shards =
      static_cast<size_t>(ParseFlag(argc, argv, "--shards", 4));
  const auto cache =
      static_cast<size_t>(ParseFlag(argc, argv, "--cache", 512));
  const double skew = ParseFlag(argc, argv, "--skew", 1.0);
  const auto pool =
      static_cast<size_t>(ParseFlag(argc, argv, "--pool", 128));
  const auto requests = static_cast<size_t>(ParseFlag(
      argc, argv, "--requests",
      static_cast<double>(BenchQueriesPerPoint(240))));

  PrintHeader("Serving", "sharded async throughput over Zipfian traffic",
              threads);
  std::printf("serve: shards=%zu cache=%zu skew=%.2f pool=%zu "
              "requests=%zu\n\n",
              shards, cache, skew, pool, requests);

  WorkloadConfig base;  // §6.1 defaults: u=250, w=500, uniform issuers
  SkewConfig traffic;
  traffic.pool = pool;
  traffic.requests = requests;
  traffic.zipf_s = skew;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, traffic);
  ILQ_CHECK(workload.ok(), workload.status().ToString());

  const double scale = BenchDatasetScale();
  ShardedEngine mono = BuildShardedPaperEngine(scale, 1);
  ShardedEngine sharded = BuildShardedPaperEngine(scale, shards);

  struct Scenario {
    const char* name;
    const ShardedEngine* engine;
    QueryMethod method;
    size_t cache_capacity;
  };
  const std::vector<Scenario> scenarios = {
      {"BM_ServeSubmit/ipq/shards=1", &mono, QueryMethod::kIpq, 0},
      {"BM_ServeSubmit/ipq/sharded", &sharded, QueryMethod::kIpq, 0},
      {"BM_ServeSubmit/ipq/sharded_cached", &sharded, QueryMethod::kIpq,
       cache},
      {"BM_ServeSubmit/ciuq_pti/sharded", &sharded, QueryMethod::kCiuqPti,
       0},
  };

  // Each scenario runs `--reps` times and every rep is emitted under the
  // same name: check_perf_regression.py's loader min-collapses duplicates,
  // which is what keeps wall-clock scenarios stable on busy hosts.
  const auto reps = static_cast<size_t>(
      std::max(1.0, ParseFlag(argc, argv, "--reps", 3)));
  std::vector<MicroBenchResult> results;
  std::printf("%-36s %10s %10s %8s %8s %8s %9s %7s %9s\n", "scenario",
              "wall_ms", "qps", "p50_ms", "p95_ms", "p99_ms", "hit_rate",
              "fanout", "answers");
  for (const Scenario& scenario : scenarios) {
    ScenarioResult best;
    for (size_t rep = 0; rep < reps; ++rep) {
      const ScenarioResult run = RunScenario(
          *scenario.engine, scenario.method, *workload, threads,
          scenario.cache_capacity);
      const double ns_per_request =
          requests == 0 ? 0.0
                        : run.wall_ms * 1e6 / static_cast<double>(requests);
      results.push_back({scenario.name, ns_per_request, ns_per_request,
                         static_cast<double>(requests)});
      if (rep == 0 || run.wall_ms < best.wall_ms) best = run;
    }
    const uint64_t lookups = best.stats.cache_hits + best.stats.cache_misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(best.stats.cache_hits) /
                           static_cast<double>(lookups);
    const double fanout =
        MeanShardsRouted(*scenario.engine, scenario.method, *workload);
    std::printf("%-36s %10.1f %10.0f %8.3f %8.3f %8.3f %8.1f%% %7.2f %9zu\n",
                scenario.name, best.wall_ms, best.qps, best.stats.p50_ms,
                best.stats.p95_ms, best.stats.p99_ms, 100.0 * hit_rate,
                fanout, best.answers);
  }

  // Own default filename: the serve scenarios must not clobber a
  // micro_kernels BENCH_micro.json sitting in the same directory
  // (MicroBenchJsonPath's fallback). ILQ_BENCH_JSON still overrides.
  const char* json_env = std::getenv("ILQ_BENCH_JSON");
  const std::string path =
      json_env != nullptr ? json_env : "BENCH_serve.json";
  const Status status = WriteMicroBenchJson(path, results);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu serve scenarios to %s\n", results.size(),
              path.c_str());
  std::printf("expected shape: sharding cuts per-request work (fanout < "
              "shard count), the cache collapses repeated Zipfian issuers, "
              "answers stay bit-identical to the monolithic engine.\n");
  return 0;
}
