// Figure 13: T vs. Qp for C-IPQ under Gaussian uncertainty pdfs.
//
// The paper evaluates non-uniform pdfs with Monte-Carlo sampling (its
// sensitivity analysis settled on ≥200 samples per C-IPQ evaluation) and
// shows the p-expanded-query retaining its advantage; absolute times are
// an order of magnitude above the uniform case because of the sampling.

#include "bench_common.h"

int main() {
  using namespace ilq;
  using namespace ilq::bench;

  PrintHeader("Figure 13",
              "C-IPQ with Gaussian pdfs (Monte-Carlo, 200 samples)");
  const size_t queries = BenchQueriesPerPoint(120);
  EngineConfig config;
  config.eval.kernel = ProbabilityKernel::kMonteCarlo;
  config.eval.mc_samples = 200;  // §6.2 sensitivity analysis
  QueryEngine engine = BuildPaperEngine(BenchDatasetScale(), config);

  SeriesTable table(
      "Figure 13 — Avg. response time vs probability threshold "
      "(C-IPQ, Gaussian issuer pdf, Monte-Carlo kernel)",
      "Qp", {"p-Expanded-Query", "Minkowski Sum"});
  for (double qp : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const Workload workload = MakeWorkload(250.0, 500.0, qp, queries,
                                           IssuerPdfKind::kGaussian);
    const CellResult pexp = RunCell(
        workload.issuers,
        [&](const UncertainObject& issuer, IndexStats* stats) {
          return engine.Cipq(issuer, workload.spec, CipqFilter::kPExpanded,
                             stats)
              .size();
        });
    const CellResult mink = RunCell(
        workload.issuers,
        [&](const UncertainObject& issuer, IndexStats* stats) {
          return engine.Cipq(issuer, workload.spec, CipqFilter::kMinkowski,
                             stats)
              .size();
        });
    table.AddRow(qp, {pexp, mink});
  }
  table.Print();
  (void)table.WriteCsv("fig13_gaussian.csv");
  std::printf("expected shape (paper): same ordering as Figure 11 under a "
              "non-uniform pdf; absolute cost dominated by the Monte-Carlo "
              "evaluation.\n");
  return 0;
}
