// Figure 13: T vs. Qp for C-IPQ under Gaussian uncertainty pdfs.
//
// The paper evaluates non-uniform pdfs with Monte-Carlo sampling (its
// sensitivity analysis settled on ≥200 samples per C-IPQ evaluation) and
// shows the p-expanded-query retaining its advantage; absolute times are
// an order of magnitude above the uniform case because of the sampling.
// Pass --threads=N for parallel batch evaluation — the Monte-Carlo streams
// are per-query, so parallel answers are bit-identical to serial ones.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Figure 13",
              "C-IPQ with Gaussian pdfs (Monte-Carlo, 200 samples)",
              threads);
  const size_t queries = BenchQueriesPerPoint(120);
  EngineConfig config;
  config.eval.kernel = ProbabilityKernel::kMonteCarlo;
  config.eval.mc_samples = 200;  // §6.2 sensitivity analysis
  QueryEngine engine = BuildPaperEngine(BenchDatasetScale(), config);
  BatchOptions batch;
  batch.threads = threads;

  SeriesTable table(
      "Figure 13 — Avg. response time vs probability threshold "
      "(C-IPQ, Gaussian issuer pdf, Monte-Carlo kernel)",
      "Qp", {"p-Expanded-Query", "Minkowski Sum"});
  for (double qp : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const Workload workload = MakeWorkload(250.0, 500.0, qp, queries,
                                           IssuerPdfKind::kGaussian);
    const BatchSpec spec{workload.spec};
    const CellResult pexp = RunBatchCell(engine, QueryMethod::kCipqPExpanded,
                                         workload.issuers, spec, batch);
    const CellResult mink = RunBatchCell(engine, QueryMethod::kCipqMinkowski,
                                         workload.issuers, spec, batch);
    table.AddRow(qp, {pexp, mink});
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("fig13_gaussian.csv"));
  std::printf("expected shape (paper): same ordering as Figure 11 under a "
              "non-uniform pdf; absolute cost dominated by the Monte-Carlo "
              "evaluation.\n");
  return 0;
}
