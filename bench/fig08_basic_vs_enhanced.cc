// Figure 8: Basic vs. Enhanced (IUQ).
//
// The basic method evaluates Eq. 4 by sampling U0 on a grid (§3.3); the
// enhanced method uses the expanded query + duality closed form (Eq. 8).
// The paper's figure sweeps the uncertainty-region size u from 0 to 1000
// at w = 500 and shows the basic method costing roughly an order of
// magnitude more, with the gap widening as u grows. Pass --threads=N to
// run each cell's queries through the batch engine in parallel.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Figure 8", "Basic (Eq. 4 sampling) vs Enhanced (Eq. 8) IUQ",
              threads);
  const size_t queries = BenchQueriesPerPoint(120);
  const double scale = BenchDatasetScale();
  QueryEngine engine = BuildPaperEngine(scale);
  BatchOptions batch;
  batch.threads = threads;

  SeriesTable table("Figure 8 — Avg. response time vs uncertainty size "
                    "(IUQ, w = 500)",
                    "u", {"Enhanced", "Basic"});
  for (double u : {0.0, 100.0, 250.0, 500.0, 750.0, 1000.0}) {
    const Workload workload = MakeWorkload(u, 500.0, 0.0, queries);
    const BatchSpec spec{workload.spec};
    const CellResult enhanced =
        RunBatchCell(engine, QueryMethod::kIuq, workload.issuers, spec, batch);
    const CellResult basic = RunBatchCell(engine, QueryMethod::kIuqBasic,
                                          workload.issuers, spec, batch);
    table.AddRow(u, {enhanced, basic});
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("fig08_basic_vs_enhanced.csv"));
  std::printf("expected shape (paper): Basic ≫ Enhanced at every u; gap "
              "grows with u (paper: ~1700ms vs ~200ms at u = 1000 on 2007 "
              "hardware).\n");
  return 0;
}
