// Ablation: spatial index for the expanded-query filter (§4.3 names both
// R-tree and grid-file indexing). Compares R-tree, uniform grid and a
// linear scan on the IPQ workload across uncertainty sizes. The R-tree
// column runs through QueryEngine::RunBatch; the grid and scan columns use
// RunCellParallel directly (they are not engine methods), so --threads=N
// speeds up all three fairly.

#include "bench_common.h"
#include "core/duality.h"
#include "index/grid_index.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Ablation", "index structure for the Minkowski filter (IPQ)",
              threads);
  const size_t queries = BenchQueriesPerPoint(120);
  const double scale = BenchDatasetScale();
  const std::vector<PointObject> points = CaliforniaPoints(scale);
  BatchOptions batch;
  batch.threads = threads;

  QueryEngine engine = [&] {
    Result<QueryEngine> e = QueryEngine::Build(points, {}, {});
    ILQ_CHECK(e.ok(), e.status().ToString());
    return std::move(e).ValueOrDie();
  }();

  Result<GridIndex> grid_made =
      GridIndex::Create(Rect(0, 10000, 0, 10000), 128, 128);
  ILQ_CHECK(grid_made.ok(), grid_made.status().ToString());
  GridIndex grid = std::move(grid_made).ValueOrDie();
  for (const PointObject& p : points) {
    grid.Insert(Rect::AtPoint(p.location), p.id);
  }

  auto grid_ipq = [&](const UncertainObject& issuer,
                      const RangeQuerySpec& spec, IndexStats* stats) {
    const Rect expanded = issuer.region().Expanded(spec.w, spec.h);
    size_t answers = 0;
    grid.Query(expanded,
               [&](const Rect& box, ObjectId) {
                 if (PointQualification(issuer.pdf(), box.Center(), spec.w,
                                        spec.h) > 0) {
                   ++answers;
                 }
               },
               stats);
    return answers;
  };
  auto scan_ipq = [&](const UncertainObject& issuer,
                      const RangeQuerySpec& spec, IndexStats* stats) {
    size_t answers = 0;
    for (const PointObject& p : points) {
      if (stats != nullptr) ++stats->candidates;
      if (PointQualification(issuer.pdf(), p.location, spec.w, spec.h) > 0) {
        ++answers;
      }
    }
    return answers;
  };

  SeriesTable table("Ablation — index choice, IPQ (w = 500)", "u",
                    {"R-tree", "Grid", "Scan"});
  for (double u : {100.0, 250.0, 500.0, 1000.0}) {
    const Workload workload = MakeWorkload(u, 500.0, 0.0, queries);
    const CellResult rtree = RunBatchCell(engine, QueryMethod::kIpq,
                                          workload.issuers,
                                          BatchSpec{workload.spec}, batch);
    const CellResult grid_cell = RunCellParallel(
        workload.issuers, threads,
        [&](const UncertainObject& issuer, IndexStats* stats) {
          return grid_ipq(issuer, workload.spec, stats);
        });
    const CellResult scan = RunCellParallel(
        workload.issuers, threads,
        [&](const UncertainObject& issuer, IndexStats* stats) {
          return scan_ipq(issuer, workload.spec, stats);
        });
    table.AddRow(u, {rtree, grid_cell, scan});
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("abl_index_choice.csv"));
  std::printf("expected shape: both indexes beat the scan decisively for "
              "selective queries; R-tree and grid are comparable, with the "
              "grid's edge shrinking as the expanded query grows.\n");
  return 0;
}
