// Figure 10: T vs. u for IUQ at range sizes w ∈ {500, 1000, 1500} — the
// uncertain-object counterpart of Figure 9, over the Long-Beach-like
// rectangle dataset. Pass --threads=N for parallel batch evaluation.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Figure 10", "IUQ response time vs uncertainty size", threads);
  const size_t queries = BenchQueriesPerPoint(120);
  QueryEngine engine = BuildPaperEngine(BenchDatasetScale());
  BatchOptions batch;
  batch.threads = threads;

  SeriesTable table("Figure 10 — Avg. response time vs uncertainty size "
                    "(IUQ, Long-Beach-like rectangles)",
                    "u", {"w=500", "w=1000", "w=1500"});
  for (double u : {0.0, 100.0, 250.0, 500.0, 750.0, 1000.0}) {
    std::vector<CellResult> cells;
    for (double w : {500.0, 1000.0, 1500.0}) {
      const Workload workload = MakeWorkload(u, w, 0.0, queries);
      cells.push_back(RunBatchCell(engine, QueryMethod::kIuq,
                                   workload.issuers,
                                   BatchSpec{workload.spec}, batch));
    }
    table.AddRow(u, cells);
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("fig10_iuq_sweep.csv"));
  std::printf("expected shape (paper): same trends as Figure 9 — T grows "
              "with u and w.\n");
  return 0;
}
