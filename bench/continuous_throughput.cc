// Continuous-query throughput bench: moving-issuer trajectories streamed
// through SubscriptionManager (AsyncServer + ShardedEngine), valid-region
// reuse ON vs OFF. The OFF leg is the naive baseline — every trajectory
// step re-evaluates from the index — and the ON leg must beat it, which
// the perf-smoke CI job pins structurally with check_perf_regression.py
// --expect-faster (reuse answers most steps by replaying the session's
// prefetched basis; answers are bit-identical either way, asserted by
// tests/continuous_serve_test.cc).
//
// Scenarios (fixed names — tracked against
// bench/baselines/BENCH_continuous.json):
//   BM_Continuous/ipq/reuse        valid-region reuse (validations)
//   BM_Continuous/ipq/naive        per-step re-evaluation (reuse=false)
//   BM_Continuous/ciuq_pti/reuse   threshold method through the stack
//   BM_Continuous/ciuq_pti/naive
// Each records mean wall-clock time per position update.
//
// Flags: --shards=N --threads=N --cache=N --issuers=N --step=S --u=U (plus
// the usual ILQ_BENCH_QUERIES / ILQ_BENCH_SCALE / ILQ_BENCH_JSON knobs).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/sharded_engine.h"
#include "serve/subscription_manager.h"

namespace ilq::bench {
namespace {

// --flag=V / "--flag V" numeric parser (same convention as BenchThreads).
double ParseFlag(int argc, char** argv, const char* flag, double fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) != 0) continue;
    if (argv[i][flag_len] == '=') return std::atof(argv[i] + flag_len + 1);
    if (argv[i][flag_len] == '\0' && i + 1 < argc) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

ShardedEngine BuildShardedPaperEngine(double scale, size_t shards) {
  Result<std::vector<UncertainObject>> objects =
      MakeUniformUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(objects.ok(), objects.status().ToString());
  ShardedEngineConfig config;
  config.shards = shards;
  Result<ShardedEngine> engine = ShardedEngine::Build(
      CaliforniaPoints(scale), std::move(objects).ValueOrDie(), config);
  ILQ_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).ValueOrDie();
}

struct ScenarioResult {
  double wall_ms = 0.0;
  size_t updates = 0;
  size_t answers = 0;
  ContinuousStats continuous;
  ServeStats serve;
};

// Registers every trajectory at its first position (outside the clock),
// then streams the remaining steps through UpdatePosition.
ScenarioResult RunScenario(const ShardedEngine& engine, QueryMethod method,
                           const TrajectoryWorkload& workload,
                           size_t threads, size_t cache_capacity,
                           bool reuse) {
  AsyncServerOptions serve_options;
  serve_options.threads = threads;
  serve_options.queue_capacity = 256;
  serve_options.cache_capacity = cache_capacity;
  AsyncServer server(engine, serve_options);
  SubscriptionOptions options;
  options.reuse = reuse;
  SubscriptionManager manager(&server, options);

  const BatchSpec spec{workload.spec};
  std::vector<SubscriptionId> ids;
  ids.reserve(workload.steps.size());
  for (const auto& trajectory : workload.steps) {
    auto registered = manager.Register(method, spec, trajectory.front());
    ILQ_CHECK(registered.ok(), registered.status().ToString());
    ids.push_back(registered->id);
  }

  ScenarioResult result;
  const size_t steps =
      workload.steps.empty() ? 0 : workload.steps.front().size();
  Stopwatch watch;
  for (size_t t = 1; t < steps; ++t) {
    for (size_t i = 0; i < ids.size(); ++i) {
      auto answer = manager.UpdatePosition(ids[i], workload.steps[i][t]);
      ILQ_CHECK(answer.ok(), answer.status().ToString());
      result.answers += answer->answers.size();
      ++result.updates;
    }
  }
  result.wall_ms = watch.ElapsedMillis();
  result.continuous = manager.continuous_stats();
  result.serve = manager.stats();
  return result;
}

}  // namespace
}  // namespace ilq::bench

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv, 2);
  const auto shards =
      static_cast<size_t>(ParseFlag(argc, argv, "--shards", 4));
  const auto cache =
      static_cast<size_t>(ParseFlag(argc, argv, "--cache", 512));
  const auto issuers =
      static_cast<size_t>(ParseFlag(argc, argv, "--issuers", 16));
  const double step = ParseFlag(argc, argv, "--step", 30.0);
  const double u = ParseFlag(argc, argv, "--u", 50.0);
  const auto updates = static_cast<size_t>(ParseFlag(
      argc, argv, "--updates",
      static_cast<double>(BenchQueriesPerPoint(240))));

  PrintHeader("Continuous", "moving issuers: valid-region reuse vs naive",
              threads);
  std::printf("continuous: shards=%zu cache=%zu issuers=%zu step=%.0f "
              "u=%.0f updates=%zu\n\n",
              shards, cache, issuers, step, u, updates);

  WorkloadConfig base;  // §6.1 space and query defaults (w=500)
  base.u = u;
  TrajectoryConfig traj;
  traj.issuers = issuers;
  traj.steps = std::max<size_t>(2, updates / std::max<size_t>(issuers, 1));
  traj.kind = TrajectoryKind::kRandomWalk;
  traj.step = step;  // σ well inside the default horizon (2u), so the
                     // reuse leg validates most steps
  traj.u_min = u;
  traj.u_max = u;
  Result<TrajectoryWorkload> workload =
      GenerateTrajectoryWorkload(base, traj);
  ILQ_CHECK(workload.ok(), workload.status().ToString());

  const double scale = BenchDatasetScale();
  ShardedEngine engine = BuildShardedPaperEngine(scale, shards);

  struct Scenario {
    const char* name;
    QueryMethod method;
    bool reuse;
  };
  const std::vector<Scenario> scenarios = {
      {"BM_Continuous/ipq/reuse", QueryMethod::kIpq, true},
      {"BM_Continuous/ipq/naive", QueryMethod::kIpq, false},
      {"BM_Continuous/ciuq_pti/reuse", QueryMethod::kCiuqPti, true},
      {"BM_Continuous/ciuq_pti/naive", QueryMethod::kCiuqPti, false},
  };

  // Each scenario runs `--reps` times under the same name; the checker's
  // loader min-collapses duplicates (wall-clock stability on busy hosts).
  const auto reps = static_cast<size_t>(
      std::max(1.0, ParseFlag(argc, argv, "--reps", 3)));
  std::vector<MicroBenchResult> results;
  std::printf("%-32s %10s %10s %12s %12s %9s\n", "scenario", "wall_ms",
              "ups", "validations", "reevals", "answers");
  for (const Scenario& scenario : scenarios) {
    ScenarioResult best;
    for (size_t rep = 0; rep < reps; ++rep) {
      const ScenarioResult run =
          RunScenario(engine, scenario.method, *workload, threads, cache,
                      scenario.reuse);
      const double ns_per_update =
          run.updates == 0
              ? 0.0
              : run.wall_ms * 1e6 / static_cast<double>(run.updates);
      results.push_back({scenario.name, ns_per_update, ns_per_update,
                         static_cast<double>(run.updates)});
      if (rep == 0 || run.wall_ms < best.wall_ms) best = run;
    }
    const double ups =
        best.wall_ms > 0.0
            ? 1000.0 * static_cast<double>(best.updates) / best.wall_ms
            : 0.0;
    std::printf("%-32s %10.1f %10.0f %12lu %12lu %9zu\n", scenario.name,
                best.wall_ms, ups,
                static_cast<unsigned long>(best.continuous.validations),
                static_cast<unsigned long>(best.continuous.reevaluations),
                best.answers);
  }

  // Own default filename (see serve_throughput's note on
  // MicroBenchJsonPath's fallback); ILQ_BENCH_JSON still overrides.
  const char* json_env = std::getenv("ILQ_BENCH_JSON");
  const std::string path =
      json_env != nullptr ? json_env : "BENCH_continuous.json";
  const Status status = WriteMicroBenchJson(path, results);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu continuous scenarios to %s\n", results.size(),
              path.c_str());
  std::printf("expected shape: the reuse legs answer most steps by basis "
              "replay (validations >> reevals) and beat the naive legs; "
              "answers are bit-identical either way.\n");
  return 0;
}
