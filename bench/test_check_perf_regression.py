#!/usr/bin/env python3
"""Self-test for check_perf_regression.py.

Runs the checker as a subprocess against small synthetic bench files and
asserts on exit codes and key output lines. Plain asserts, stdlib only, no
pytest — registered as a ctest test (label: bench) so it runs in every CI
build that has Python 3.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_perf_regression.py")


def write_bench(path, times, context=None):
    doc = {
        "context": {"library": "ilq", "time_unit": "ns",
                    **(context or {})},
        "benchmarks": [
            {"name": name, "real_time_ns": t, "cpu_time_ns": t,
             "iterations": 100}
            for name, t in times.items()
        ],
    }
    with open(path, "w") as f:
        json.dump(doc, f)


def run(*argv):
    proc = subprocess.run([sys.executable, CHECKER, *argv],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    with tempfile.TemporaryDirectory() as tmp:
        cur = os.path.join(tmp, "cur.json")
        base = os.path.join(tmp, "base.json")

        # Identical files pass.
        write_bench(cur, {"BM_a": 100.0, "BM_b": 200.0})
        write_bench(base, {"BM_a": 100.0, "BM_b": 200.0})
        code, out = run(cur, base)
        assert code == 0, out
        assert "OK:" in out, out

        # A >threshold regression fails with the bench named.
        write_bench(cur, {"BM_a": 100.0, "BM_b": 400.0})
        code, out = run(cur, base, "--threshold", "0.25")
        assert code == 1, out
        assert "REGRESSION" in out and "BM_b" in out, out

        # A bench missing from the current run fails.
        write_bench(cur, {"BM_a": 100.0})
        code, out = run(cur, base)
        assert code == 1, out
        assert "MISSING" in out, out

        # Missing baseline file passes (new-bench bootstrap).
        write_bench(cur, {"BM_a": 100.0})
        code, out = run(cur, os.path.join(tmp, "nonexistent.json"))
        assert code == 0, out
        assert "does not exist yet" in out, out

        # Malformed JSON in the current file exits 2 with a clear message.
        with open(cur, "w") as f:
            f.write("{not json")
        code, out = run(cur, base)
        assert code == 2, out
        assert "not valid JSON" in out, out

        # An unreadable current file exits 2.
        code, out = run(os.path.join(tmp, "missing.json"), base)
        assert code == 2, out
        assert "cannot read" in out, out

        # A current file with no usable benchmarks exits 2 — a crashed
        # bench binary emitting an empty report must not pass the gate.
        write_bench(cur, {})
        code, out = run(cur, base)
        assert code == 2, out
        assert "no usable benchmarks" in out, out

        # Wrong top-level type exits 2.
        with open(cur, "w") as f:
            json.dump([1, 2, 3], f)
        code, out = run(cur, base)
        assert code == 2, out
        assert "top level" in out, out

        # Metadata mismatch warns but does not fail.
        write_bench(cur, {"BM_a": 100.0, "BM_b": 200.0},
                    context={"simd_level": "avx2", "compile_isa": "sse2"})
        write_bench(base, {"BM_a": 100.0, "BM_b": 200.0},
                    context={"simd_level": "scalar", "compile_isa": "sse2"})
        code, out = run(cur, base)
        assert code == 0, out
        assert "warning: context.simd_level differs" in out, out
        assert "warning: context.compile_isa" not in out, out

        # --expect-faster: satisfied assertion passes...
        write_bench(cur, {"BM_fast": 50.0, "BM_slow": 100.0})
        write_bench(base, {"BM_fast": 50.0, "BM_slow": 100.0})
        code, out = run(cur, base, "--expect-faster", "BM_fast,BM_slow")
        assert code == 0, out
        assert "expect-faster" in out and "ok" in out, out

        # ...a violated one fails even when no benchmark regressed...
        write_bench(cur, {"BM_fast": 120.0, "BM_slow": 100.0})
        write_bench(base, {"BM_fast": 120.0, "BM_slow": 100.0})
        code, out = run(cur, base, "--expect-faster", "BM_fast,BM_slow")
        assert code == 1, out
        assert "--expect-faster assertion(s) failed" in out, out

        # ...a ratio loosens the bound...
        code, out = run(cur, base, "--expect-faster", "BM_fast,BM_slow,1.5")
        assert code == 0, out

        # ...and a name missing from the current run fails.
        code, out = run(cur, base, "--expect-faster", "BM_fast,BM_nope")
        assert code == 1, out
        assert "missing from current run" in out, out

        # --expect-faster is enforced even without a baseline file.
        code, out = run(cur, os.path.join(tmp, "nonexistent.json"),
                        "--expect-faster", "BM_fast,BM_slow")
        assert code == 1, out

        # Malformed --expect-faster spec is an argparse error (exit 2).
        code, out = run(cur, base, "--expect-faster", "only-one-name")
        assert code == 2, out

    print("OK: check_perf_regression self-test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
