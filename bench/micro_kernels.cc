// Micro-benchmarks (google-benchmark) for the hot kernels: rectangle ops,
// quadrature / Monte-Carlo integration, duality qualification kernels,
// p-bound machinery and index queries. These are the unit costs behind
// every figure bench.
//
// Besides the console table, every run emits a machine-readable
// BENCH_micro.json (override the path with ILQ_BENCH_JSON) through
// benchutil's WriteMicroBenchJson — the repo's tracked perf trajectory;
// see bench/baselines/ for the checked-in reference numbers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "benchutil/harness.h"
#include "common/rng.h"
#include "core/duality.h"
#include "core/expansion.h"
#include "index/rtree.h"
#include "prob/gaussian_pdf.h"
#include "prob/histogram_pdf.h"
#include "prob/integrate.h"
#include "prob/pdf_variant.h"
#include "prob/uniform_pdf.h"
#include "simd/qual_kernels.h"
#include "simd/sample_block.h"
#include "simd/simd_policy.h"

namespace ilq {
namespace {

void BM_RectIntersectionArea(benchmark::State& state) {
  Rng rng(1);
  std::vector<Rect> rects;
  for (int i = 0; i < 1024; ++i) {
    rects.push_back(Rect::Centered(
        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)),
        rng.Uniform(1, 100), rng.Uniform(1, 100)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rects[i % 1024].IntersectionArea(rects[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_RectIntersectionArea);

// --- Quadrature kernels ----------------------------------------------------

void BM_GetGaussLegendreRule(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  GetGaussLegendreRule(n);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(&GetGaussLegendreRule(n));
  }
}
BENCHMARK(BM_GetGaussLegendreRule)->Arg(16)->Arg(64)->Arg(128);

// The same cache hammered from concurrent threads: before the lock-free
// rebuild every iteration serialized on a global mutex, so this bench is
// the contention regression guard (threads > 1 only shows separation on
// multi-core hosts).
void BM_GetGaussLegendreRuleContended(benchmark::State& state) {
  GetGaussLegendreRule(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&GetGaussLegendreRule(16));
  }
}
BENCHMARK(BM_GetGaussLegendreRuleContended)->Threads(1)->Threads(4);

double Poly(double x) { return (x * x + 1.0) * x; }

void BM_IntegrateGLFunction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::function<double(double)> f = Poly;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntegrateGL(f, 0.0, 1.0, n));
  }
}
BENCHMARK(BM_IntegrateGLFunction)->Arg(4)->Arg(16)->Arg(64);

void BM_IntegrateGLTemplated(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IntegrateGL([](double x) { return Poly(x); }, 0.0, 1.0, n));
  }
}
BENCHMARK(BM_IntegrateGLTemplated)->Arg(4)->Arg(16)->Arg(64);

void BM_IntegrateGL2DFunction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::function<double(double, double)> f = [](double x, double y) {
    return x * y + 1.0;
  };
  const Rect rect(0, 1, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntegrateGL2D(f, rect, n, n));
  }
}
BENCHMARK(BM_IntegrateGL2DFunction)->Arg(8)->Arg(16);

void BM_IntegrateGL2DTemplated(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Rect rect(0, 1, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntegrateGL2D(
        [](double x, double y) { return x * y + 1.0; }, rect, n, n));
  }
}
BENCHMARK(BM_IntegrateGL2DTemplated)->Arg(8)->Arg(16);

// The reassociated-FMA fast variant of the same quadrature loop (compare
// against BM_IntegrateGLTemplated, its strict twin).
void BM_IntegrateGLFastVariant(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  simd::ScopedKernelVariant fast(simd::KernelVariant::kFast);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IntegrateGL([](double x) { return Poly(x); }, 0.0, 1.0, n));
  }
}
BENCHMARK(BM_IntegrateGLFastVariant)->Arg(4)->Arg(16)->Arg(64);

void BM_MonteCarloMean(benchmark::State& state) {
  const size_t samples = static_cast<size_t>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MonteCarloMean(
        [](Rng* r) { return Point(r->NextDouble(), r->NextDouble()); },
        [](const Point& p) { return p.x + p.y; }, samples, &rng));
  }
}
BENCHMARK(BM_MonteCarloMean)->Arg(200)->Arg(250);

// --- Virtual vs variant pdf dispatch ---------------------------------------
//
// The BM_*Virtual / BM_*Variant / BM_*Batch triples isolate what the
// PdfVariant refactor buys: the Virtual form calls through the
// UncertaintyPdf vtable per probe (the pre-variant evaluator inner loop),
// the Variant form std::visits once and runs the devirtualized scalar op,
// and the Batch form hands the whole probe block to
// DensityBatch/MassInBatch. Each iteration processes kProbeCount probes.

constexpr size_t kProbeCount = 1024;

std::vector<Point> MakeProbePoints(uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> probes;
  probes.reserve(kProbeCount);
  for (size_t i = 0; i < kProbeCount; ++i) {
    probes.emplace_back(rng.Uniform(-100, 600), rng.Uniform(-100, 600));
  }
  return probes;
}

std::vector<Rect> MakeProbeRects(uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> probes;
  probes.reserve(kProbeCount);
  for (size_t i = 0; i < kProbeCount; ++i) {
    probes.push_back(Rect::Centered(
        Point(rng.Uniform(-100, 600), rng.Uniform(-100, 600)),
        rng.Uniform(10, 200), rng.Uniform(10, 200)));
  }
  return probes;
}

std::unique_ptr<UncertaintyPdf> MakeOpaquePdf(const std::string& kind) {
  const Rect region(0, 500, 0, 500);
  if (kind == "uniform") {
    return std::make_unique<UniformRectPdf>(
        std::move(UniformRectPdf::Make(region)).ValueOrDie());
  }
  if (kind == "gaussian") {
    return std::make_unique<TruncatedGaussianPdf>(
        std::move(TruncatedGaussianPdf::MakePaperDefault(region))
            .ValueOrDie());
  }
  Rng rng(12);
  std::vector<double> weights(64);
  for (double& w : weights) w = rng.NextDouble() + 0.05;
  return std::make_unique<HistogramPdf>(
      std::move(HistogramPdf::Make(region, 8, 8, std::move(weights)))
          .ValueOrDie());
}

void BM_DensityVirtual(benchmark::State& state, const std::string& kind) {
  std::unique_ptr<UncertaintyPdf> pdf = MakeOpaquePdf(kind);
  benchmark::DoNotOptimize(pdf);  // keep the dynamic type opaque
  const std::vector<Point> probes = MakeProbePoints(21);
  std::vector<double> out(probes.size());
  for (auto _ : state) {
    for (size_t i = 0; i < probes.size(); ++i) {
      out[i] = pdf->Density(probes[i]);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kProbeCount));
}
BENCHMARK_CAPTURE(BM_DensityVirtual, uniform, "uniform");
BENCHMARK_CAPTURE(BM_DensityVirtual, gaussian, "gaussian");
BENCHMARK_CAPTURE(BM_DensityVirtual, histogram, "histogram");

void BM_DensityVariant(benchmark::State& state, const std::string& kind) {
  const PdfVariant v = MakePdfVariant(MakeOpaquePdf(kind));
  const std::vector<Point> probes = MakeProbePoints(21);
  std::vector<double> out(probes.size());
  for (auto _ : state) {
    std::visit(
        [&](const auto& pdf) {
          for (size_t i = 0; i < probes.size(); ++i) {
            out[i] = pdf.Density(probes[i]);
          }
        },
        v);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kProbeCount));
}
BENCHMARK_CAPTURE(BM_DensityVariant, uniform, "uniform");
BENCHMARK_CAPTURE(BM_DensityVariant, gaussian, "gaussian");
BENCHMARK_CAPTURE(BM_DensityVariant, histogram, "histogram");

void BM_DensityBatch(benchmark::State& state, const std::string& kind) {
  const PdfVariant v = MakePdfVariant(MakeOpaquePdf(kind));
  const std::vector<Point> probes = MakeProbePoints(21);
  std::vector<double> out(probes.size());
  for (auto _ : state) {
    DensityBatch(v, probes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kProbeCount));
}
BENCHMARK_CAPTURE(BM_DensityBatch, uniform, "uniform");
BENCHMARK_CAPTURE(BM_DensityBatch, gaussian, "gaussian");
BENCHMARK_CAPTURE(BM_DensityBatch, histogram, "histogram");

void BM_MassInVirtual(benchmark::State& state, const std::string& kind) {
  std::unique_ptr<UncertaintyPdf> pdf = MakeOpaquePdf(kind);
  benchmark::DoNotOptimize(pdf);
  const std::vector<Rect> probes = MakeProbeRects(22);
  std::vector<double> out(probes.size());
  for (auto _ : state) {
    for (size_t i = 0; i < probes.size(); ++i) {
      out[i] = pdf->MassIn(probes[i]);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kProbeCount));
}
BENCHMARK_CAPTURE(BM_MassInVirtual, uniform, "uniform");
BENCHMARK_CAPTURE(BM_MassInVirtual, gaussian, "gaussian");

void BM_MassInVariant(benchmark::State& state, const std::string& kind) {
  const PdfVariant v = MakePdfVariant(MakeOpaquePdf(kind));
  const std::vector<Rect> probes = MakeProbeRects(22);
  std::vector<double> out(probes.size());
  for (auto _ : state) {
    std::visit(
        [&](const auto& pdf) {
          for (size_t i = 0; i < probes.size(); ++i) {
            out[i] = pdf.MassIn(probes[i]);
          }
        },
        v);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kProbeCount));
}
BENCHMARK_CAPTURE(BM_MassInVariant, uniform, "uniform");
BENCHMARK_CAPTURE(BM_MassInVariant, gaussian, "gaussian");

void BM_MassInBatch(benchmark::State& state, const std::string& kind) {
  const PdfVariant v = MakePdfVariant(MakeOpaquePdf(kind));
  const std::vector<Rect> probes = MakeProbeRects(22);
  std::vector<double> out(probes.size());
  for (auto _ : state) {
    MassInBatch(v, probes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kProbeCount));
}
BENCHMARK_CAPTURE(BM_MassInBatch, uniform, "uniform");
BENCHMARK_CAPTURE(BM_MassInBatch, gaussian, "gaussian");

// The equal-shaped dual-range loop of ipq/cipq/basic-IUQ: the Virtual form
// is literally the legacy per-candidate evaluation (Rect::Centered + a
// virtual MassIn), the Centered form the batched replacement.
void BM_MassInCenteredVirtual(benchmark::State& state,
                              const std::string& kind) {
  std::unique_ptr<UncertaintyPdf> pdf = MakeOpaquePdf(kind);
  benchmark::DoNotOptimize(pdf);
  const std::vector<Point> probes = MakeProbePoints(23);
  std::vector<double> out(probes.size());
  for (auto _ : state) {
    for (size_t i = 0; i < probes.size(); ++i) {
      out[i] = pdf->MassIn(Rect::Centered(probes[i], 120, 90));
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kProbeCount));
}
BENCHMARK_CAPTURE(BM_MassInCenteredVirtual, uniform, "uniform");
BENCHMARK_CAPTURE(BM_MassInCenteredVirtual, gaussian, "gaussian");

void BM_MassInCenteredBatch(benchmark::State& state,
                            const std::string& kind) {
  const PdfVariant v = MakePdfVariant(MakeOpaquePdf(kind));
  const std::vector<Point> probes = MakeProbePoints(23);
  std::vector<double> out(probes.size());
  for (auto _ : state) {
    MassInCenteredBatch(v, probes, 120, 90, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kProbeCount));
}
BENCHMARK_CAPTURE(BM_MassInCenteredBatch, uniform, "uniform");
BENCHMARK_CAPTURE(BM_MassInCenteredBatch, gaussian, "gaussian");

// Pair qualification through the variant dispatch (QualifyPair) against the
// runtime virtual dispatcher, same geometry as BM_ProductQualificationGaussian
// below — the separable gaussian ⊗ gaussian path the Figure 13 workload
// leans on.
std::unique_ptr<UncertaintyPdf> MakeBenchGaussian(const Rect& region) {
  return std::make_unique<TruncatedGaussianPdf>(
      std::move(TruncatedGaussianPdf::MakePaperDefault(region)).ValueOrDie());
}

void BM_QualifyPairVariantGaussian(benchmark::State& state) {
  const PdfVariant issuer =
      MakePdfVariant(MakeBenchGaussian(Rect(300, 800, 300, 800)));
  const PdfVariant object =
      MakePdfVariant(MakeBenchGaussian(Rect(500, 620, 450, 560)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        UncertainQualification(issuer, object, 250, 250, 16));
  }
}
BENCHMARK(BM_QualifyPairVariantGaussian);

void BM_QualifyPairVirtualGaussian(benchmark::State& state) {
  std::unique_ptr<UncertaintyPdf> issuer =
      MakeBenchGaussian(Rect(300, 800, 300, 800));
  std::unique_ptr<UncertaintyPdf> object =
      MakeBenchGaussian(Rect(500, 620, 450, 560));
  benchmark::DoNotOptimize(issuer);
  benchmark::DoNotOptimize(object);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        UncertainQualification(*issuer, *object, 250, 250, 16));
  }
}
BENCHMARK(BM_QualifyPairVirtualGaussian);

// --- Qualification kernels -------------------------------------------------

void BM_PointQualificationUniform(benchmark::State& state) {
  Result<UniformRectPdf> pdf = UniformRectPdf::Make(Rect(0, 500, 0, 500));
  Rng rng(2);
  std::vector<Point> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.emplace_back(rng.Uniform(-200, 700), rng.Uniform(-200, 700));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PointQualification(*pdf, probes[i % 1024], 250, 250));
    ++i;
  }
}
BENCHMARK(BM_PointQualificationUniform);

void BM_PointQualificationGaussian(benchmark::State& state) {
  Result<TruncatedGaussianPdf> pdf =
      TruncatedGaussianPdf::MakePaperDefault(Rect(0, 500, 0, 500));
  Rng rng(3);
  std::vector<Point> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.emplace_back(rng.Uniform(-200, 700), rng.Uniform(-200, 700));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PointQualification(*pdf, probes[i % 1024], 250, 250));
    ++i;
  }
}
BENCHMARK(BM_PointQualificationGaussian);

void BM_UniformUniformQualification(benchmark::State& state) {
  Rng rng(4);
  std::vector<Rect> regions;
  for (int i = 0; i < 1024; ++i) {
    regions.push_back(Rect::Centered(
        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)),
        rng.Uniform(5, 50), rng.Uniform(5, 50)));
  }
  const Rect u0(300, 800, 300, 800);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        UniformUniformQualification(u0, regions[i % 1024], 250, 250));
    ++i;
  }
}
BENCHMARK(BM_UniformUniformQualification);

void BM_ProductQualificationGaussian(benchmark::State& state) {
  Result<TruncatedGaussianPdf> issuer =
      TruncatedGaussianPdf::MakePaperDefault(Rect(300, 800, 300, 800));
  Result<TruncatedGaussianPdf> object =
      TruncatedGaussianPdf::MakePaperDefault(Rect(500, 620, 450, 560));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ProductQualification(*issuer, *object, 250, 250, 16));
  }
}
BENCHMARK(BM_ProductQualificationGaussian);

void BM_GenericQualificationGaussian(benchmark::State& state) {
  Result<TruncatedGaussianPdf> issuer =
      TruncatedGaussianPdf::MakePaperDefault(Rect(300, 800, 300, 800));
  Result<TruncatedGaussianPdf> object =
      TruncatedGaussianPdf::MakePaperDefault(Rect(500, 620, 450, 560));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenericQualification(*issuer, *object, 250, 250, 16));
  }
}
BENCHMARK(BM_GenericQualificationGaussian);

void BM_UncertainQualificationMC(benchmark::State& state) {
  Result<UniformRectPdf> issuer = UniformRectPdf::Make(Rect(300, 800, 300, 800));
  Result<UniformRectPdf> object = UniformRectPdf::Make(Rect(500, 620, 450, 560));
  Rng rng(5);
  const size_t samples = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(UncertainQualificationMC(
        *issuer, *object, 250, 250, samples, &rng));
  }
}
BENCHMARK(BM_UncertainQualificationMC)->Arg(200)->Arg(250)->Arg(1000);

// --- p-bound machinery and index probes -------------------------------------

void BM_PBoundConstruction(benchmark::State& state) {
  Result<TruncatedGaussianPdf> pdf =
      TruncatedGaussianPdf::MakePaperDefault(Rect(0, 500, 0, 500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PBound::FromPdf(*pdf, 0.3));
  }
}
BENCHMARK(BM_PBoundConstruction);

void BM_PExpandedQuery(benchmark::State& state) {
  Result<UniformRectPdf> pdf = UniformRectPdf::Make(Rect(0, 500, 0, 500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PExpandedQuery(*pdf, 250, 250, 0.4));
  }
}
BENCHMARK(BM_PExpandedQuery);

void BM_RTreeRangeQuery(benchmark::State& state) {
  Rng rng(6);
  std::vector<RTree::Item> items;
  const auto n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    items.push_back({Rect::AtPoint(Point(rng.Uniform(0, 10000),
                                         rng.Uniform(0, 10000))),
                     static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  std::vector<Rect> queries;
  for (int i = 0; i < 256; ++i) {
    queries.push_back(Rect::Centered(
        Point(rng.Uniform(500, 9500), rng.Uniform(500, 9500)), 750, 750));
  }
  size_t i = 0;
  size_t found = 0;
  for (auto _ : state) {
    tree->Query(queries[i % 256], [&](const Rect&, ObjectId) { ++found; });
    ++i;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(10000)->Arg(62000);

// --- Per-tier SIMD kernel benchmarks ----------------------------------------
//
// Direct calls into the per-tier dispatch tables (src/simd/qual_kernels.h),
// registered at runtime for every tier this machine supports — this is
// where the AVX2-vs-scalar win is measured and gated (the perf-smoke job
// passes --expect-faster pairs over these names). Tiers above AVX2 are
// registered only with ILQ_BENCH_TIERS=all: the tracked baseline must not
// contain benches a plain-AVX2 CI runner cannot reproduce, because the
// checker hard-fails on baseline benches missing from the current run.

// Shared probe data for the tier benches; function-local statics so
// registration can hand stable pointers to the benchmark lambdas.
struct TierBenchData {
  std::vector<Point> points = MakeProbePoints(31);
  std::vector<Rect> rects = MakeProbeRects(32);
  std::vector<double> out = std::vector<double>(kProbeCount);
  simd::UniformRectParams uniform{0.0, 500.0, 0.0, 500.0,
                                  1.0 / (500.0 * 500.0)};
  HistogramPdf hist = [] {
    Rng rng(12);
    std::vector<double> weights(64);
    for (double& w : weights) w = rng.NextDouble() + 0.05;
    return std::move(
               HistogramPdf::Make(Rect(0, 500, 0, 500), 8, 8,
                                  std::move(weights)))
        .ValueOrDie();
  }();
  simd::HistogramParams histogram{0.0,
                                  500.0,
                                  0.0,
                                  500.0,
                                  500.0 / 8,
                                  500.0 / 8,
                                  (500.0 / 8) * (500.0 / 8),
                                  8,
                                  8,
                                  hist.cell_masses().data()};
  simd::PairSampleBlock pairs = [] {
    simd::PairSampleBlock block;
    Rng rng(33);
    for (size_t i = 0; i < simd::PairSampleBlock::kCapacity; ++i) {
      block.Set(i,
                Point(rng.Uniform(300, 800), rng.Uniform(300, 800)),
                Point(rng.Uniform(500, 620), rng.Uniform(450, 560)));
    }
    block.Seal(simd::PairSampleBlock::kCapacity);
    return block;
  }();
};

TierBenchData& TierData() {
  static TierBenchData data;
  return data;
}

void RegisterTierBenchmarks() {
  simd::SimdLevel cap = simd::DetectedSimdLevel();
  const char* tiers_env = std::getenv("ILQ_BENCH_TIERS");
  const bool all_tiers =
      tiers_env != nullptr && std::strcmp(tiers_env, "all") == 0;
  if (!all_tiers && cap > simd::SimdLevel::kAvx2) {
    cap = simd::SimdLevel::kAvx2;
  }
  TierBenchData& d = TierData();
  for (int l = 0; l <= static_cast<int>(cap); ++l) {
    const auto level = static_cast<simd::SimdLevel>(l);
    const simd::KernelSet* k = &simd::Kernels(level);
    const std::string suffix = std::string("/") + simd::SimdLevelName(level);
    const auto items = [](benchmark::State& state) {
      state.SetItemsProcessed(
          static_cast<int64_t>(state.iterations() * kProbeCount));
    };
    benchmark::RegisterBenchmark(
        ("BM_TierUniformDensity" + suffix).c_str(),
        [k, &d, items](benchmark::State& state) {
          for (auto _ : state) {
            k->uniform_density(d.uniform, d.points.data(), d.points.size(),
                               d.out.data());
            benchmark::DoNotOptimize(d.out.data());
            benchmark::ClobberMemory();
          }
          items(state);
        });
    benchmark::RegisterBenchmark(
        ("BM_TierMassIn" + suffix).c_str(),
        [k, &d, items](benchmark::State& state) {
          for (auto _ : state) {
            k->uniform_mass_in(d.uniform, d.rects.data(), d.rects.size(),
                               d.out.data());
            benchmark::DoNotOptimize(d.out.data());
            benchmark::ClobberMemory();
          }
          items(state);
        });
    benchmark::RegisterBenchmark(
        ("BM_TierMassInCentered" + suffix).c_str(),
        [k, &d, items](benchmark::State& state) {
          for (auto _ : state) {
            k->uniform_mass_centered(d.uniform, d.points.data(),
                                     d.points.size(), 120, 90, d.out.data());
            benchmark::DoNotOptimize(d.out.data());
            benchmark::ClobberMemory();
          }
          items(state);
        });
    benchmark::RegisterBenchmark(
        ("BM_TierHistogramDensity" + suffix).c_str(),
        [k, &d, items](benchmark::State& state) {
          for (auto _ : state) {
            k->histogram_density(d.histogram, d.points.data(),
                                 d.points.size(), d.out.data());
            benchmark::DoNotOptimize(d.out.data());
            benchmark::ClobberMemory();
          }
          items(state);
        });
    benchmark::RegisterBenchmark(
        ("BM_TierCountPairs" + suffix).c_str(),
        [k, &d](benchmark::State& state) {
          size_t hits = 0;
          for (auto _ : state) {
            hits += k->count_pairs_centered(
                d.pairs.qx(), d.pairs.qy(), d.pairs.ox(), d.pairs.oy(),
                simd::PairSampleBlock::kCapacity, 250, 250);
          }
          benchmark::DoNotOptimize(hits);
          state.SetItemsProcessed(static_cast<int64_t>(
              state.iterations() * simd::PairSampleBlock::kCapacity));
        });
  }
}

// Collects every finished run so main() can hand the table to benchutil's
// JSON writer next to the normal console output.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      results.push_back({run.benchmark_name(), run.GetAdjustedRealTime(),
                         run.GetAdjustedCPUTime(),
                         static_cast<double>(run.iterations)});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<MicroBenchResult> results;
};

}  // namespace
}  // namespace ilq

int main(int argc, char** argv) {
  ilq::RegisterTierBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ilq::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string path = ilq::MicroBenchJsonPath();
  const ilq::Status status =
      ilq::WriteMicroBenchJson(path, reporter.results);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu benchmark results to %s\n",
              reporter.results.size(), path.c_str());
  benchmark::Shutdown();
  return 0;
}
