// Micro-benchmarks (google-benchmark) for the hot kernels: rectangle ops,
// duality kernels, p-bound machinery and index queries. These are the unit
// costs behind every figure bench.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/duality.h"
#include "core/expansion.h"
#include "index/rtree.h"
#include "prob/gaussian_pdf.h"
#include "prob/uniform_pdf.h"

namespace ilq {
namespace {

void BM_RectIntersectionArea(benchmark::State& state) {
  Rng rng(1);
  std::vector<Rect> rects;
  for (int i = 0; i < 1024; ++i) {
    rects.push_back(Rect::Centered(
        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)),
        rng.Uniform(1, 100), rng.Uniform(1, 100)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rects[i % 1024].IntersectionArea(rects[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_RectIntersectionArea);

void BM_PointQualificationUniform(benchmark::State& state) {
  Result<UniformRectPdf> pdf = UniformRectPdf::Make(Rect(0, 500, 0, 500));
  Rng rng(2);
  std::vector<Point> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.emplace_back(rng.Uniform(-200, 700), rng.Uniform(-200, 700));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PointQualification(*pdf, probes[i % 1024], 250, 250));
    ++i;
  }
}
BENCHMARK(BM_PointQualificationUniform);

void BM_PointQualificationGaussian(benchmark::State& state) {
  Result<TruncatedGaussianPdf> pdf =
      TruncatedGaussianPdf::MakePaperDefault(Rect(0, 500, 0, 500));
  Rng rng(3);
  std::vector<Point> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.emplace_back(rng.Uniform(-200, 700), rng.Uniform(-200, 700));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PointQualification(*pdf, probes[i % 1024], 250, 250));
    ++i;
  }
}
BENCHMARK(BM_PointQualificationGaussian);

void BM_UniformUniformQualification(benchmark::State& state) {
  Rng rng(4);
  std::vector<Rect> regions;
  for (int i = 0; i < 1024; ++i) {
    regions.push_back(Rect::Centered(
        Point(rng.Uniform(0, 1000), rng.Uniform(0, 1000)),
        rng.Uniform(5, 50), rng.Uniform(5, 50)));
  }
  const Rect u0(300, 800, 300, 800);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        UniformUniformQualification(u0, regions[i % 1024], 250, 250));
    ++i;
  }
}
BENCHMARK(BM_UniformUniformQualification);

void BM_ProductQualificationGaussian(benchmark::State& state) {
  Result<TruncatedGaussianPdf> issuer =
      TruncatedGaussianPdf::MakePaperDefault(Rect(300, 800, 300, 800));
  Result<TruncatedGaussianPdf> object =
      TruncatedGaussianPdf::MakePaperDefault(Rect(500, 620, 450, 560));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ProductQualification(*issuer, *object, 250, 250, 16));
  }
}
BENCHMARK(BM_ProductQualificationGaussian);

void BM_UncertainQualificationMC(benchmark::State& state) {
  Result<UniformRectPdf> issuer = UniformRectPdf::Make(Rect(300, 800, 300, 800));
  Result<UniformRectPdf> object = UniformRectPdf::Make(Rect(500, 620, 450, 560));
  Rng rng(5);
  const size_t samples = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(UncertainQualificationMC(
        *issuer, *object, 250, 250, samples, &rng));
  }
}
BENCHMARK(BM_UncertainQualificationMC)->Arg(200)->Arg(250)->Arg(1000);

void BM_PBoundConstruction(benchmark::State& state) {
  Result<TruncatedGaussianPdf> pdf =
      TruncatedGaussianPdf::MakePaperDefault(Rect(0, 500, 0, 500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PBound::FromPdf(*pdf, 0.3));
  }
}
BENCHMARK(BM_PBoundConstruction);

void BM_PExpandedQuery(benchmark::State& state) {
  Result<UniformRectPdf> pdf = UniformRectPdf::Make(Rect(0, 500, 0, 500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PExpandedQuery(*pdf, 250, 250, 0.4));
  }
}
BENCHMARK(BM_PExpandedQuery);

void BM_RTreeRangeQuery(benchmark::State& state) {
  Rng rng(6);
  std::vector<RTree::Item> items;
  const auto n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    items.push_back({Rect::AtPoint(Point(rng.Uniform(0, 10000),
                                         rng.Uniform(0, 10000))),
                     static_cast<ObjectId>(i)});
  }
  Result<RTree> tree = RTree::BulkLoad(RTreeOptions{}, std::move(items));
  std::vector<Rect> queries;
  for (int i = 0; i < 256; ++i) {
    queries.push_back(Rect::Centered(
        Point(rng.Uniform(500, 9500), rng.Uniform(500, 9500)), 750, 750));
  }
  size_t i = 0;
  size_t found = 0;
  for (auto _ : state) {
    tree->Query(queries[i % 256], [&](const Rect&, ObjectId) { ++found; });
    ++i;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(10000)->Arg(62000);

}  // namespace
}  // namespace ilq

BENCHMARK_MAIN();
