// Ablation: contribution of C-IUQ pruning strategies 1–3 (§5.2).
//
// Runs the PTI-based C-IUQ with each strategy toggled individually at a
// fixed threshold, reporting time, candidates and node accesses. Strategy 2
// (the p-expanded traversal window) is the workhorse; Strategy 1 prunes on
// object/subtree p-bounds and Strategy 3 catches cases the other two miss.
// Pass --threads=N for parallel batch evaluation.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Ablation", "C-IUQ pruning strategies (Qp sweep)", threads);
  const size_t queries = BenchQueriesPerPoint(120);
  QueryEngine engine = BuildPaperEngine(BenchDatasetScale());
  BatchOptions batch;
  batch.threads = threads;

  struct Variant {
    const char* name;
    CiuqPruneConfig config;
  };
  const Variant variants[] = {
      {"none", {false, false, false}},
      {"S1", {true, false, false}},
      {"S2", {false, true, false}},
      {"S3", {false, false, true}},
      {"S1+S2+S3", {true, true, true}},
  };

  std::vector<std::string> names;
  for (const Variant& v : variants) names.emplace_back(v.name);
  SeriesTable table("Ablation — C-IUQ pruning strategies (u=250, w=500)",
                    "Qp", names);
  for (double qp : {0.2, 0.4, 0.6, 0.8}) {
    const Workload workload = MakeWorkload(250.0, 500.0, qp, queries);
    std::vector<CellResult> cells;
    for (const Variant& v : variants) {
      cells.push_back(RunBatchCell(engine, QueryMethod::kCiuqPti,
                                   workload.issuers,
                                   BatchSpec{workload.spec, v.config},
                                   batch));
    }
    table.AddRow(qp, cells);
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("abl_strategies.csv"));
  std::printf("expected shape: every strategy alone beats 'none' on "
              "candidates; the combination is at least as good as the best "
              "single strategy at every Qp.\n");
  return 0;
}
