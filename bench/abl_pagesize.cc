// Ablation: index page size, measured against *real* paged index files
// (ISSUE 8). Earlier revisions swept the page budget of RAM-resident
// trees and reported simulated I/O; this version serializes each engine
// with SavePagedIndexes, re-mounts it with OpenPaged behind per-index LRU
// buffers, and runs the query batches over actual page reads — so the
// tables show measured buffer hit/miss/eviction behaviour next to the
// paper's node-access counts.
//
// Flags:
//   --threads=N    parallel batch evaluation (also ILQ_BENCH_THREADS)
//   --buffer-mb=M  per-index LRU budget in MiB (default 4)
//   --objects=N    point-object count; overrides ILQ_BENCH_SCALE and
//                  scales the rectangle set proportionally. Use
//                  --objects=1000000 for indexes far beyond the buffer
//                  budget (the out-of-core regime this sweep exists for).

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "object/snapshot.h"

namespace ilq::bench {
namespace {

// --flag=V / "--flag V" numeric parser (same convention as BenchThreads).
double ParseFlag(int argc, char** argv, const char* flag, double fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) != 0) continue;
    if (argv[i][flag_len] == '=') return std::atof(argv[i] + flag_len + 1);
    if (argv[i][flag_len] == '\0' && i + 1 < argc) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

// Lifetime buffer totals summed over the engine's (up to) three indexes.
BufferCounters EngineBufferCounters(const QueryEngine& engine) {
  BufferCounters total = engine.point_index().buffer_counters();
  const BufferCounters u = engine.uncertain_index().buffer_counters();
  total.hits += u.hits;
  total.misses += u.misses;
  total.evictions += u.evictions;
  if (engine.pti() != nullptr) {
    const BufferCounters p = engine.pti()->tree().buffer_counters();
    total.hits += p.hits;
    total.misses += p.misses;
    total.evictions += p.evictions;
  }
  return total;
}

uint64_t IndexFileBytes(const PagedIndexFiles& files) {
  namespace fs = std::filesystem;
  uint64_t bytes = 0;
  for (const std::string* path :
       {&files.point_index, &files.uncertain_index, &files.pti_index}) {
    std::error_code ec;
    const uint64_t size = fs::file_size(*path, ec);
    if (!ec) bytes += size;
  }
  return bytes;
}

void PrintCellCounters(const char* method, const CellResult& cell,
                       const BufferCounters& delta) {
  const double reads = static_cast<double>(delta.hits + delta.misses);
  std::printf("  %-10s %8.3f ms/query  pages: %8llu hit %8llu miss "
              "%8llu evict  (%.1f%% hit rate)\n",
              method, cell.mean_ms,
              static_cast<unsigned long long>(delta.hits),
              static_cast<unsigned long long>(delta.misses),
              static_cast<unsigned long long>(delta.evictions),
              reads > 0.0 ? 100.0 * static_cast<double>(delta.hits) / reads
                          : 0.0);
}

}  // namespace
}  // namespace ilq::bench

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;
  namespace fs = std::filesystem;

  const size_t threads = BenchThreads(argc, argv);
  const auto buffer_mb = static_cast<size_t>(
      std::max(1.0, ParseFlag(argc, argv, "--buffer-mb", 4)));
  const auto objects =
      static_cast<size_t>(ParseFlag(argc, argv, "--objects", 0));
  const double scale =
      objects > 0
          ? static_cast<double>(objects) /
                static_cast<double>(kCaliforniaPoints)
          : BenchDatasetScale();

  PrintHeader("Ablation", "index page size over real paged files (IPQ and "
              "C-IUQ)", threads);
  const size_t queries = BenchQueriesPerPoint(120);
  std::printf("storage: paged (OpenPaged), %zu MiB LRU buffer per index",
              buffer_mb);
  if (objects > 0) {
    std::printf(", --objects=%zu (scale %.2f)", objects, scale);
  }
  std::printf("\n\n");
  BatchOptions batch;
  batch.threads = threads;

  // One dataset shared by every page size; each size gets its own engine
  // build + serialization + paged mount.
  CatalogImage image;
  image.points = CaliforniaPoints(scale);
  Result<std::vector<UncertainObject>> uncertains =
      MakeUniformUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(uncertains.ok(), uncertains.status().ToString());
  image.uncertains = std::move(uncertains).ValueOrDie();

  const std::string scratch =
      (fs::temp_directory_path() /
       ("ilq_abl_pagesize_" + std::to_string(::getpid())))
          .string();

  const Workload ipq_workload = MakeWorkload(250.0, 500.0, 0.0, queries);
  const Workload ciuq_workload = MakeWorkload(250.0, 500.0, 0.5, queries);

  std::vector<std::string> names;
  std::vector<CellResult> ipq_cells;
  std::vector<CellResult> ciuq_cells;
  for (size_t page : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    EngineConfig config;
    config.page_size_bytes = page;

    Result<QueryEngine> built =
        QueryEngine::Build(image.points, image.uncertains, config);
    ILQ_CHECK(built.ok(), built.status().ToString());

    const std::string dir = scratch + "/page" + std::to_string(page);
    fs::create_directories(dir);
    const PagedIndexFiles files = PagedIndexFiles::InDir(dir);
    const Status saved = built->SavePagedIndexes(files);
    ILQ_CHECK(saved.ok(), saved.ToString());

    EngineConfig paged = config;
    paged.storage = StorageMode::kPaged;
    paged.buffer_pool_bytes = buffer_mb << 20;
    paged.paged_deep_verify = false;  // this process just wrote the files
    Result<QueryEngine> engine = QueryEngine::OpenPaged(image, files, paged);
    ILQ_CHECK(engine.ok(), engine.status().ToString());

    names.push_back(std::to_string(page / 1024) + "K");
    std::printf("page %zuK: point R-tree height %zu / %zu nodes, PTI "
                "fanout %zu / %zu nodes, index files %.1f MiB\n",
                page / 1024, engine->point_index().height(),
                engine->point_index().node_count(),
                engine->pti()->tree().max_entries(),
                engine->pti()->tree().node_count(),
                static_cast<double>(IndexFileBytes(files)) / (1 << 20));

    BufferCounters before = EngineBufferCounters(*engine);
    ipq_cells.push_back(RunBatchCell(*engine, QueryMethod::kIpq,
                                     ipq_workload.issuers,
                                     BatchSpec{ipq_workload.spec}, batch));
    BufferCounters after = EngineBufferCounters(*engine);
    PrintCellCounters("ipq", ipq_cells.back(),
                      {after.hits - before.hits, after.misses - before.misses,
                       after.evictions - before.evictions});

    before = after;
    ciuq_cells.push_back(RunBatchCell(*engine, QueryMethod::kCiuqPti,
                                      ciuq_workload.issuers,
                                      BatchSpec{ciuq_workload.spec}, batch));
    after = EngineBufferCounters(*engine);
    PrintCellCounters("ciuq_pti", ciuq_cells.back(),
                      {after.hits - before.hits, after.misses - before.misses,
                       after.evictions - before.evictions});
  }
  std::printf("\n");

  SeriesTable ipq_table(
      "Ablation — page size, IPQ over paged files (u=250, w=500)", "run",
      names);
  SeriesTable ciuq_table(
      "Ablation — page size, C-IUQ via paged PTI (u=250, w=500, Qp=0.5)",
      "run", names);
  ipq_table.AddRow(0, ipq_cells);
  ciuq_table.AddRow(0, ciuq_cells);
  ipq_table.Print();
  ciuq_table.Print();
  std::printf("expected shape: node accesses fall with page size (shallower "
              "trees) while bytes moved per miss rise; candidate counts are "
              "page-size-invariant, and the buffer hit rate climbs as the "
              "whole index fits the budget. 4K stays a reasonable middle "
              "ground, matching the paper's choice.\n");

  std::error_code ec;
  fs::remove_all(scratch, ec);
  return 0;
}
