// Ablation: index page size. The paper fixes 4K nodes; this sweep shows
// how page size moves the work split between node accesses (simulated I/O)
// and per-candidate computation for IPQ and PTI-based C-IUQ. Pass
// --threads=N for parallel batch evaluation.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Ablation", "index page size (IPQ and C-IUQ)", threads);
  const size_t queries = BenchQueriesPerPoint(120);
  const double scale = BenchDatasetScale();
  BatchOptions batch;
  batch.threads = threads;

  std::vector<std::string> names;
  std::vector<QueryEngine> engines;
  for (size_t page : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    EngineConfig config;
    config.page_size_bytes = page;
    engines.push_back(BuildPaperEngine(scale, std::move(config)));
    names.push_back(std::to_string(page / 1024) + "K");
    std::printf("page %zuK: point R-tree height %zu / %zu nodes, PTI "
                "fanout %zu / %zu nodes\n",
                page / 1024, engines.back().point_index().height(),
                engines.back().point_index().node_count(),
                engines.back().pti()->tree().max_entries(),
                engines.back().pti()->tree().node_count());
  }

  SeriesTable ipq_table("Ablation — page size, IPQ (u=250, w=500)", "run",
                        names);
  SeriesTable ciuq_table(
      "Ablation — page size, C-IUQ via PTI (u=250, w=500, Qp=0.5)", "run",
      names);
  const Workload ipq_workload = MakeWorkload(250.0, 500.0, 0.0, queries);
  const Workload ciuq_workload = MakeWorkload(250.0, 500.0, 0.5, queries);
  std::vector<CellResult> ipq_cells;
  std::vector<CellResult> ciuq_cells;
  for (QueryEngine& engine : engines) {
    ipq_cells.push_back(RunBatchCell(engine, QueryMethod::kIpq,
                                     ipq_workload.issuers,
                                     BatchSpec{ipq_workload.spec}, batch));
    ciuq_cells.push_back(RunBatchCell(engine, QueryMethod::kCiuqPti,
                                      ciuq_workload.issuers,
                                      BatchSpec{ciuq_workload.spec}, batch));
  }
  ipq_table.AddRow(0, ipq_cells);
  ciuq_table.AddRow(0, ciuq_cells);
  ipq_table.Print();
  ciuq_table.Print();
  std::printf("expected shape: node accesses fall with page size (shallower "
              "trees) while per-page cost rises; candidate counts are "
              "page-size-invariant. 4K is a reasonable middle ground, "
              "matching the paper's choice.\n");
  return 0;
}
