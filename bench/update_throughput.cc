// Update-path throughput bench: churn streams (insert/erase/move) replayed
// through the epoch-versioned update machinery, plus query latency while
// the catalog is being churned underneath the serving layer.
//
// Scenarios (fixed names — gated against bench/baselines/BENCH_update.json
// by the perf-smoke CI job via check_perf_regression.py --normalize):
//   BM_Update/apply/engine     ns per update op, QueryEngine::ApplyUpdates
//   BM_Update/apply/sharded    ns per update op, routed through ShardedEngine
//   BM_Update/resplit          ns per full catalog re-partition (Resplit)
//   BM_Update/query_p99_under_churn
//                              p99 submission-to-completion time (ns) for
//                              Zipfian AsyncServer traffic racing the writer
//
// Flags: --ops=N --batch=N --shards=N --threads=N (plus --requests=N,
// --reps=N) and the usual ILQ_BENCH_SCALE / ILQ_BENCH_JSON knobs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/async_server.h"
#include "serve/sharded_engine.h"

namespace ilq::bench {
namespace {

// --flag=V / "--flag V" numeric parser (same convention as BenchThreads).
double ParseFlag(int argc, char** argv, const char* flag, double fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) != 0) continue;
    if (argv[i][flag_len] == '=') return std::atof(argv[i] + flag_len + 1);
    if (argv[i][flag_len] == '\0' && i + 1 < argc) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

ChurnWorkload MakeChurn(double scale, size_t ops) {
  WorkloadConfig base;  // 10,000 × 10,000 space, §6.1 defaults
  base.seed = 20070417;
  ChurnConfig churn;
  churn.initial_points =
      static_cast<size_t>(20000.0 * scale);
  churn.initial_uncertains =
      static_cast<size_t>(6000.0 * scale);
  churn.ops = ops;
  churn.hotspots = 6;
  churn.object_half_extent = 60.0;  // Long-Beach-like rectangle scale
  Result<ChurnWorkload> workload = GenerateChurnWorkload(base, churn);
  ILQ_CHECK(workload.ok(), workload.status().ToString());
  return std::move(workload).ValueOrDie();
}

std::vector<UpdateBatch> SliceBatches(const std::vector<UpdateOp>& stream,
                                      size_t batch_size) {
  std::vector<UpdateBatch> batches;
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, stream.size());
    batches.emplace_back(stream.begin() + begin, stream.begin() + end);
  }
  return batches;
}

double ReplayThroughEngine(const ChurnWorkload& churn,
                           const std::vector<UpdateBatch>& batches,
                           UpdateStats* stats) {
  Result<QueryEngine> engine = QueryEngine::Build(
      churn.initial_points, churn.initial_uncertains, EngineConfig{});
  ILQ_CHECK(engine.ok(), engine.status().ToString());
  Stopwatch watch;
  for (const UpdateBatch& batch : batches) {
    const Status applied = engine->ApplyUpdates(batch);
    ILQ_CHECK(applied.ok(), applied.ToString());
  }
  const double wall_ms = watch.ElapsedMillis();
  if (stats != nullptr) *stats = engine->update_stats();
  return wall_ms;
}

ShardedEngine BuildSharded(const ChurnWorkload& churn, size_t shards) {
  ShardedEngineConfig config;
  config.shards = shards;
  Result<ShardedEngine> engine = ShardedEngine::Build(
      churn.initial_points, churn.initial_uncertains, config);
  ILQ_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).ValueOrDie();
}

double ReplayThroughSharded(const ChurnWorkload& churn,
                            const std::vector<UpdateBatch>& batches,
                            size_t shards) {
  ShardedEngine engine = BuildSharded(churn, shards);
  Stopwatch watch;
  for (const UpdateBatch& batch : batches) {
    const Status applied = engine.ApplyUpdates(batch);
    ILQ_CHECK(applied.ok(), applied.ToString());
  }
  return watch.ElapsedMillis();
}

struct ChurnServeResult {
  double wall_ms = 0.0;
  double qps = 0.0;
  double updates_per_s = 0.0;
  ServeStats stats;
};

// Zipfian query traffic through the AsyncServer while this thread applies
// the churn batches underneath it — the mixed read/write serving scenario
// the epoch machinery exists for.
ChurnServeResult ServeUnderChurn(const ChurnWorkload& churn,
                                 const std::vector<UpdateBatch>& batches,
                                 const SkewedWorkload& traffic,
                                 size_t shards, size_t threads) {
  ShardedEngine engine = BuildSharded(churn, shards);
  AsyncServerOptions options;
  options.threads = threads;
  options.queue_capacity = 256;
  // No answer cache: with one, the latency sample is bimodal (µs hits vs
  // ms misses after each epoch's invalidation wave) and p99 lands on
  // whichever side of that boundary scheduling favors — far too noisy to
  // gate. Uncached, p99 measures what the scenario is for: evaluation
  // latency while epochs publish underneath the workers. (Epoch-tagged
  // invalidation itself is covered by serve tests and the serve bench.)
  options.cache_capacity = 0;
  AsyncServer server(engine, options);

  const BatchSpec spec{traffic.spec};
  std::vector<std::future<AnswerSet>> futures;
  futures.reserve(traffic.sequence.size());

  // Interleave: one update batch between every chunk of submissions, so
  // queries continuously race epoch publishes and cache invalidation.
  const size_t chunk =
      std::max<size_t>(1, traffic.sequence.size() /
                              std::max<size_t>(1, batches.size()));
  Stopwatch watch;
  size_t next_batch = 0;
  size_t ops_applied = 0;
  for (size_t i = 0; i < traffic.sequence.size(); ++i) {
    futures.push_back(
        server.Submit(traffic.pool[traffic.sequence[i]], spec,
                      QueryMethod::kIpq));
    if (i % chunk == chunk - 1 && next_batch < batches.size()) {
      const Status applied = engine.ApplyUpdates(batches[next_batch]);
      ILQ_CHECK(applied.ok(), applied.ToString());
      ops_applied += batches[next_batch].size();
      ++next_batch;
    }
  }
  for (; next_batch < batches.size(); ++next_batch) {
    const Status applied = engine.ApplyUpdates(batches[next_batch]);
    ILQ_CHECK(applied.ok(), applied.ToString());
    ops_applied += batches[next_batch].size();
  }
  for (auto& future : futures) future.get();
  server.Drain();

  ChurnServeResult result;
  result.wall_ms = watch.ElapsedMillis();
  if (result.wall_ms > 0.0) {
    result.qps = 1000.0 * static_cast<double>(futures.size()) /
                 result.wall_ms;
    result.updates_per_s =
        1000.0 * static_cast<double>(ops_applied) / result.wall_ms;
  }
  result.stats = server.stats();
  return result;
}

}  // namespace
}  // namespace ilq::bench

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv, 2);
  const auto shards =
      static_cast<size_t>(ParseFlag(argc, argv, "--shards", 4));
  const auto ops = static_cast<size_t>(ParseFlag(argc, argv, "--ops", 2000));
  const auto batch_size =
      static_cast<size_t>(std::max(1.0, ParseFlag(argc, argv, "--batch", 64)));
  const auto requests = static_cast<size_t>(ParseFlag(
      argc, argv, "--requests",
      static_cast<double>(BenchQueriesPerPoint(240))));
  const auto reps = static_cast<size_t>(
      std::max(1.0, ParseFlag(argc, argv, "--reps", 3)));

  PrintHeader("Updates", "churn-stream throughput and latency under churn",
              threads);
  const double scale = BenchDatasetScale();
  std::printf("update: ops=%zu batch=%zu shards=%zu requests=%zu reps=%zu\n\n",
              ops, batch_size, shards, requests, reps);

  const ChurnWorkload churn = MakeChurn(scale, ops);
  const std::vector<UpdateBatch> batches =
      SliceBatches(churn.stream, batch_size);

  WorkloadConfig base;  // §6.1 defaults: u=250, w=500, uniform issuers
  SkewConfig traffic;
  traffic.pool = 128;
  // p99 is the top 1% of the latency sample — at the CI request count it
  // would be the worst 2 requests, far too few to gate on. 4x the traffic
  // for the under-churn scenario so the quantile estimate is stable.
  const size_t churn_requests = requests * 4;
  traffic.requests = churn_requests;
  Result<SkewedWorkload> queries = GenerateSkewedWorkload(base, traffic);
  ILQ_CHECK(queries.ok(), queries.status().ToString());

  std::vector<MicroBenchResult> results;
  const double op_count = static_cast<double>(churn.stream.size());

  // --- Apply throughput: monolithic engine ---------------------------------
  double best_engine_ms = 0.0;
  UpdateStats engine_stats;
  for (size_t rep = 0; rep < reps; ++rep) {
    UpdateStats stats;
    const double wall_ms = ReplayThroughEngine(churn, batches, &stats);
    const double ns_per_op = wall_ms * 1e6 / op_count;
    results.push_back(
        {"BM_Update/apply/engine", ns_per_op, ns_per_op, op_count});
    if (rep == 0 || wall_ms < best_engine_ms) {
      best_engine_ms = wall_ms;
      engine_stats = stats;
    }
  }
  std::printf("%-36s %10.1f ms  %10.0f updates/s  (%zu rebuilds, %zu "
              "refreshes)\n",
              "BM_Update/apply/engine", best_engine_ms,
              best_engine_ms > 0.0 ? 1000.0 * op_count / best_engine_ms : 0.0,
              engine_stats.pti_rebuilds, engine_stats.pti_refreshes);

  // --- Apply throughput: routed through the shard layer --------------------
  double best_sharded_ms = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    const double wall_ms = ReplayThroughSharded(churn, batches, shards);
    const double ns_per_op = wall_ms * 1e6 / op_count;
    results.push_back(
        {"BM_Update/apply/sharded", ns_per_op, ns_per_op, op_count});
    if (rep == 0 || wall_ms < best_sharded_ms) best_sharded_ms = wall_ms;
  }
  std::printf("%-36s %10.1f ms  %10.0f updates/s\n",
              "BM_Update/apply/sharded", best_sharded_ms,
              best_sharded_ms > 0.0 ? 1000.0 * op_count / best_sharded_ms
                                    : 0.0);

  // --- Full re-partition cost ----------------------------------------------
  double best_resplit_ms = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    ShardedEngine engine = BuildSharded(churn, shards);
    Stopwatch watch;
    const Status split = engine.Resplit();
    ILQ_CHECK(split.ok(), split.ToString());
    const double wall_ms = watch.ElapsedMillis();
    results.push_back(
        {"BM_Update/resplit", wall_ms * 1e6, wall_ms * 1e6, 1.0});
    if (rep == 0 || wall_ms < best_resplit_ms) best_resplit_ms = wall_ms;
  }
  std::printf("%-36s %10.1f ms per re-partition\n", "BM_Update/resplit",
              best_resplit_ms);

  // --- Query latency while the catalog churns ------------------------------
  // Two emissions per rep: the mean request time (stable — this is the
  // entry the CI gate tracks) and the p99 (recorded for trend inspection
  // but deliberately absent from the tracked baseline: the tail is
  // scheduling-driven and quantized to latency-histogram buckets, so the
  // checker reports it as "new, skipped" instead of gating on noise).
  ChurnServeResult best_serve;
  for (size_t rep = 0; rep < reps; ++rep) {
    const ChurnServeResult run =
        ServeUnderChurn(churn, batches, *queries, shards, threads);
    const double mean_ns =
        churn_requests == 0
            ? 0.0
            : run.wall_ms * 1e6 / static_cast<double>(churn_requests);
    results.push_back({"BM_Update/query_mean_under_churn", mean_ns, mean_ns,
                       static_cast<double>(churn_requests)});
    const double p99_ns = run.stats.p99_ms * 1e6;
    results.push_back({"BM_Update/query_p99_under_churn", p99_ns, p99_ns,
                       static_cast<double>(churn_requests)});
    if (rep == 0 || run.stats.p99_ms < best_serve.stats.p99_ms) {
      best_serve = run;
    }
  }
  std::printf("%-36s %10.3f ms p99  (p50 %.3f, p95 %.3f, %0.0f qps, "
              "%0.0f updates/s)\n",
              "BM_Update/query_p99_under_churn", best_serve.stats.p99_ms,
              best_serve.stats.p50_ms, best_serve.stats.p95_ms,
              best_serve.qps, best_serve.updates_per_s);

  // Own default filename, same reasoning as serve_throughput: never
  // clobber another bench's JSON in the working directory.
  const char* json_env = std::getenv("ILQ_BENCH_JSON");
  const std::string path =
      json_env != nullptr ? json_env : "BENCH_update.json";
  const Status status = WriteMicroBenchJson(path, results);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu update scenarios to %s\n", results.size(),
              path.c_str());
  std::printf("expected shape: per-op cost is dominated by index "
              "maintenance (PTI refresh/rebuild policy), shard routing adds "
              "a thin layer on top, and query p99 stays bounded while "
              "updates publish epochs underneath the server.\n");
  return 0;
}
