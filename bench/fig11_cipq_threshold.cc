// Figure 11: T vs. Qp for C-IPQ — Minkowski-sum filtering vs the
// p-expanded-query (Lemma 5).
//
// The p-expanded-query shrinks as Qp grows, so fewer candidates survive
// filtering and response time falls; the Minkowski filter ignores Qp and
// stays flat. The paper reports ~3× improvement at Qp = 0.6. Pass
// --threads=N for parallel batch evaluation.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Figure 11", "C-IPQ: p-expanded-query vs Minkowski filter",
              threads);
  const size_t queries = BenchQueriesPerPoint(120);
  QueryEngine engine = BuildPaperEngine(BenchDatasetScale());
  BatchOptions batch;
  batch.threads = threads;

  SeriesTable table(
      "Figure 11 — Avg. response time vs probability threshold (C-IPQ)",
      "Qp", {"p-Expanded-Query", "Minkowski Sum"});
  for (double qp : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const Workload workload = MakeWorkload(250.0, 500.0, qp, queries);
    const BatchSpec spec{workload.spec};
    const CellResult pexp = RunBatchCell(engine, QueryMethod::kCipqPExpanded,
                                         workload.issuers, spec, batch);
    const CellResult mink = RunBatchCell(engine, QueryMethod::kCipqMinkowski,
                                         workload.issuers, spec, batch);
    table.AddRow(qp, {pexp, mink});
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("fig11_cipq_threshold.csv"));
  std::printf("expected shape (paper): p-expanded-query cost decreases with "
              "Qp while Minkowski stays flat (~3x gap at Qp = 0.6).\n");
  return 0;
}
