// Figure 12: T vs. Qp for C-IUQ — R-tree + Minkowski sum vs
// PTI + p-expanded-query with pruning strategies 1–3 (§5.2–5.3).
//
// The paper reports ~60% gain at Qp = 0.6, smaller than C-IPQ's because
// extended uncertainty regions are harder to prune than points. Pass
// --threads=N for parallel batch evaluation.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Figure 12",
              "C-IUQ: PTI + p-expanded-query vs R-tree + Minkowski",
              threads);
  const size_t queries = BenchQueriesPerPoint(120);
  QueryEngine engine = BuildPaperEngine(BenchDatasetScale());
  BatchOptions batch;
  batch.threads = threads;

  SeriesTable table(
      "Figure 12 — Avg. response time vs probability threshold (C-IUQ)",
      "Qp", {"p-Expanded-Query", "Minkowski Sum"});
  for (double qp : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const Workload workload = MakeWorkload(250.0, 500.0, qp, queries);
    const BatchSpec spec{workload.spec};
    const CellResult pti = RunBatchCell(engine, QueryMethod::kCiuqPti,
                                        workload.issuers, spec, batch);
    const CellResult rtree = RunBatchCell(engine, QueryMethod::kCiuqRTree,
                                          workload.issuers, spec, batch);
    table.AddRow(qp, {pti, rtree});
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("fig12_ciuq_threshold.csv"));
  std::printf("expected shape (paper): PTI + p-expanded-query wins for all "
              "Qp > 0 (~60%% gain at Qp = 0.6), smaller gap than C-IPQ "
              "because uncertain regions prune less readily than points.\n");
  return 0;
}
