#!/usr/bin/env python3
"""Compare a micro_kernels BENCH_micro.json run against the tracked baseline.

Usage:
    check_perf_regression.py CURRENT BASELINE [--threshold 0.25] [--normalize]

Exits non-zero when any benchmark present in both files is more than
``threshold`` slower than the baseline (cpu_time_ns). With ``--normalize``
every per-benchmark ratio is divided by the median ratio first, which cancels
the overall machine-speed difference between the baseline host and the
current host (e.g. a CI runner): a uniform slowdown then passes, but any
*specific* kernel that regressed relative to its peers fails. That is the
right gate for refactor PRs, whose regressions are local, and the only sane
cross-machine comparison — absolute times on different hardware are not
comparable.

Benchmarks only present in the current run are reported as "new, skipped"
and never fail the check (new benches land before their baseline) — and a
baseline file that does not exist at all passes the same way, so a
brand-new bench binary can join the perf-smoke job in the same PR that
introduces it. Benchmarks only present in the baseline fail it: removing a
bench without regenerating the baseline would silently shrink coverage.
"""

import argparse
import json
import os
import statistics
import sys


def load(path):
    """Name -> cpu_time_ns. Duplicate names (``--benchmark_repetitions``)
    collapse to their minimum — the repetition least disturbed by scheduler
    or frequency noise, which is what makes the gate stable on busy hosts."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        time = bench.get("cpu_time_ns")
        if name is None or time is None or time <= 0:
            continue
        time = float(time)
        out[name] = min(out[name], time) if name in out else time
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction (default 0.25)")
    parser.add_argument("--normalize", action="store_true",
                        help="divide ratios by the median ratio to cancel "
                             "machine-speed differences")
    parser.add_argument("--slack-ns", type=float, default=2.0,
                        help="absolute per-benchmark allowance added on top "
                             "of the relative threshold — keeps few-ns "
                             "kernels gated against real regressions (a "
                             "1.8->9 ns mutex reintroduction still fails) "
                             "without flapping on their +-1-2 ns timer "
                             "jitter (default 2)")
    args = parser.parse_args()

    current = load(args.current)
    if not os.path.exists(args.baseline):
        # First run of a new bench: nothing to gate against yet. Report and
        # pass so the smoke job stays green until the baseline is recorded.
        for name in sorted(current):
            print(f"  {name:50s} (new, skipped: {current[name]:.1f} ns, "
                  "no baseline file)")
        print(f"OK: baseline {args.baseline} does not exist yet; "
              f"{len(current)} benchmark(s) new, skipped")
        return 0
    baseline = load(args.baseline)
    if not baseline:
        print(f"error: no usable benchmarks in baseline {args.baseline}")
        return 2

    shared = sorted(set(current) & set(baseline))
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    if not shared:
        print("error: current run and baseline share no benchmarks")
        return 2

    ratios = {name: current[name] / baseline[name] for name in shared}
    scale = statistics.median(ratios.values()) if args.normalize else 1.0
    if args.normalize:
        print(f"median ratio (machine-speed normalizer): {scale:.3f}")

    limit = 1.0 + args.threshold
    failures = []
    for name in shared:
        normalized = ratios[name] / scale
        # A benchmark regresses when it exceeds the relative threshold AND
        # the absolute slack — the latter only matters for few-ns kernels,
        # where 25% is smaller than the timer jitter.
        allowed = baseline[name] * limit * scale + args.slack_ns
        marker = ""
        if normalized > limit and current[name] > allowed:
            failures.append(name)
            marker = "  <-- REGRESSION"
        print(f"  {name:50s} {baseline[name]:12.1f} -> {current[name]:12.1f}"
              f" ns  x{normalized:.2f}{marker}")

    for name in new:
        print(f"  {name:50s} (new, skipped: {current[name]:.1f} ns)")
    for name in missing:
        print(f"  {name:50s} (MISSING from current run)")

    if missing:
        print(f"FAIL: {len(missing)} baseline benchmark(s) missing from the "
              f"current run — regenerate {args.baseline}")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(failures)}")
        return 1
    print(f"OK: {len(shared)} benchmarks within {args.threshold:.0%} of "
          "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
