#!/usr/bin/env python3
"""Compare a micro_kernels BENCH_micro.json run against the tracked baseline.

Usage:
    check_perf_regression.py CURRENT BASELINE [--threshold 0.25] [--normalize]
        [--expect-faster FAST,SLOW[,RATIO]]...

Exits non-zero when any benchmark present in both files is more than
``threshold`` slower than the baseline (cpu_time_ns). With ``--normalize``
every per-benchmark ratio is divided by the median ratio first, which cancels
the overall machine-speed difference between the baseline host and the
current host (e.g. a CI runner): a uniform slowdown then passes, but any
*specific* kernel that regressed relative to its peers fails. That is the
right gate for refactor PRs, whose regressions are local, and the only sane
cross-machine comparison — absolute times on different hardware are not
comparable.

``--expect-faster FAST,SLOW[,RATIO]`` (repeatable) asserts a structural
property of the *current* run alone: benchmark FAST must take at most
RATIO × the time of benchmark SLOW (default RATIO 1.0, i.e. strictly not
slower). This is how the perf-smoke job pins "the AVX2 kernel beats the
scalar kernel on this machine" without comparing absolute times across
machines. Either name missing from the current run fails the check.

The checker also compares the ``context`` metadata blocks (compiler,
compile_isa, detected_simd, simd_level, kernel_variant, fp_contract) of the
two files and prints a warning — never a failure — when they differ:
numbers measured at different SIMD tiers or with different compilers are
comparable only through --normalize, and the warning makes a stale-baseline
situation visible in the CI log.

Benchmarks only present in the current run are reported as "new, skipped"
and never fail the check (new benches land before their baseline) — and a
baseline file that does not exist at all passes the same way, so a
brand-new bench binary can join the perf-smoke job in the same PR that
introduces it. Benchmarks only present in the baseline fail it: removing a
bench without regenerating the baseline would silently shrink coverage.

A current file that is missing, unreadable, malformed JSON, or contains no
usable benchmarks exits 2 with a message naming the file — a crashed bench
binary must never pass the gate by emitting an empty report.
"""

import argparse
import json
import os
import statistics
import sys

#: Context keys compared between baseline and current run (warn-only).
METADATA_KEYS = (
    "compiler",
    "compile_isa",
    "fp_contract",
    "detected_simd",
    "simd_level",
    "kernel_variant",
)


def load(path):
    """Returns ({name -> cpu_time_ns}, context dict) for a bench JSON file.

    Duplicate names (``--benchmark_repetitions``) collapse to their minimum —
    the repetition least disturbed by scheduler or frequency noise, which is
    what makes the gate stable on busy hosts.

    Exits 2 with a clear message when the file is missing, unreadable, or
    not valid bench JSON; callers that tolerate a missing *baseline* must
    check os.path.exists before calling.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"error: cannot read bench file {path}: {e.strerror or e}")
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"error: {path} is not valid JSON ({e})")
        sys.exit(2)
    if not isinstance(doc, dict):
        print(f"error: {path} is not a bench report (top level must be an "
              f"object, got {type(doc).__name__})")
        sys.exit(2)
    benches = doc.get("benchmarks", [])
    if not isinstance(benches, list):
        print(f"error: {path} has a non-list \"benchmarks\" field")
        sys.exit(2)
    out = {}
    for bench in benches:
        if not isinstance(bench, dict):
            continue
        name = bench.get("name")
        time = bench.get("cpu_time_ns")
        if name is None or not isinstance(time, (int, float)) or time <= 0:
            continue
        time = float(time)
        out[name] = min(out[name], time) if name in out else time
    context = doc.get("context", {})
    if not isinstance(context, dict):
        context = {}
    return out, context


def warn_metadata_mismatch(current_ctx, baseline_ctx):
    """Prints warnings (never fails) for machine/build metadata differences."""
    for key in METADATA_KEYS:
        cur = current_ctx.get(key)
        base = baseline_ctx.get(key)
        if base is None and cur is None:
            continue
        if cur != base:
            print(f"warning: context.{key} differs — baseline "
                  f"{base!r}, current {cur!r}; times are only comparable "
                  "through --normalize")


def parse_expectation(spec):
    """FAST,SLOW[,RATIO] -> (fast, slow, ratio)."""
    parts = spec.split(",")
    if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
        raise argparse.ArgumentTypeError(
            f"expected FAST,SLOW[,RATIO], got {spec!r}")
    ratio = 1.0
    if len(parts) == 3:
        try:
            ratio = float(parts[2])
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"RATIO must be a number in {spec!r}")
        if ratio <= 0:
            raise argparse.ArgumentTypeError(
                f"RATIO must be positive in {spec!r}")
    return parts[0], parts[1], ratio


def check_expectations(current, expectations):
    """Returns the number of failed --expect-faster assertions."""
    failed = 0
    for fast, slow, ratio in expectations:
        missing = [n for n in (fast, slow) if n not in current]
        if missing:
            print(f"FAIL: --expect-faster {fast},{slow}: benchmark(s) "
                  f"{', '.join(missing)} missing from current run")
            failed += 1
            continue
        bound = current[slow] * ratio
        verdict = "ok" if current[fast] <= bound else "FAIL"
        print(f"  expect-faster: {fast} ({current[fast]:.1f} ns) <= "
              f"{ratio:g} x {slow} ({current[slow]:.1f} ns) ... {verdict}")
        if verdict == "FAIL":
            failed += 1
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction (default 0.25)")
    parser.add_argument("--normalize", action="store_true",
                        help="divide ratios by the median ratio to cancel "
                             "machine-speed differences")
    parser.add_argument("--slack-ns", type=float, default=2.0,
                        help="absolute per-benchmark allowance added on top "
                             "of the relative threshold — keeps few-ns "
                             "kernels gated against real regressions (a "
                             "1.8->9 ns mutex reintroduction still fails) "
                             "without flapping on their +-1-2 ns timer "
                             "jitter (default 2)")
    parser.add_argument("--expect-faster", type=parse_expectation,
                        action="append", default=[], metavar="FAST,SLOW[,R]",
                        help="assert benchmark FAST <= R x benchmark SLOW "
                             "in the current run (default R 1.0); "
                             "repeatable")
    args = parser.parse_args()

    current, current_ctx = load(args.current)
    if not current:
        print(f"error: no usable benchmarks in current run {args.current}")
        return 2

    expect_failures = check_expectations(current, args.expect_faster)

    if not os.path.exists(args.baseline):
        # First run of a new bench: nothing to gate against yet. Report and
        # pass so the smoke job stays green until the baseline is recorded.
        for name in sorted(current):
            print(f"  {name:50s} (new, skipped: {current[name]:.1f} ns, "
                  "no baseline file)")
        if expect_failures:
            print(f"FAIL: {expect_failures} --expect-faster assertion(s) "
                  "failed")
            return 1
        print(f"OK: baseline {args.baseline} does not exist yet; "
              f"{len(current)} benchmark(s) new, skipped")
        return 0
    baseline, baseline_ctx = load(args.baseline)
    if not baseline:
        print(f"error: no usable benchmarks in baseline {args.baseline}")
        return 2

    warn_metadata_mismatch(current_ctx, baseline_ctx)

    shared = sorted(set(current) & set(baseline))
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    if not shared:
        print("error: current run and baseline share no benchmarks")
        return 2

    ratios = {name: current[name] / baseline[name] for name in shared}
    scale = statistics.median(ratios.values()) if args.normalize else 1.0
    if args.normalize:
        print(f"median ratio (machine-speed normalizer): {scale:.3f}")

    limit = 1.0 + args.threshold
    failures = []
    for name in shared:
        normalized = ratios[name] / scale
        # A benchmark regresses when it exceeds the relative threshold AND
        # the absolute slack — the latter only matters for few-ns kernels,
        # where 25% is smaller than the timer jitter.
        allowed = baseline[name] * limit * scale + args.slack_ns
        marker = ""
        if normalized > limit and current[name] > allowed:
            failures.append(name)
            marker = "  <-- REGRESSION"
        print(f"  {name:50s} {baseline[name]:12.1f} -> {current[name]:12.1f}"
              f" ns  x{normalized:.2f}{marker}")

    for name in new:
        print(f"  {name:50s} (new, skipped: {current[name]:.1f} ns)")
    for name in missing:
        print(f"  {name:50s} (MISSING from current run)")

    if missing:
        print(f"FAIL: {len(missing)} baseline benchmark(s) missing from the "
              f"current run — regenerate {args.baseline}")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(failures)}")
        return 1
    if expect_failures:
        print(f"FAIL: {expect_failures} --expect-faster assertion(s) failed")
        return 1
    print(f"OK: {len(shared)} benchmarks within {args.threshold:.0%} of "
          "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
