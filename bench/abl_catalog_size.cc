// Ablation: U-catalog granularity. The paper stores 11 values (0, 0.1, …,
// 1) in §6.1 but mentions a 6-entry catalog in §5.2. A finer catalog makes
// the floor value M closer to Qp (tighter pruning) but enlarges PTI entries
// and so lowers index fanout — this bench exposes that trade-off. Pass
// --threads=N for parallel batch evaluation.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Ablation", "U-catalog size (C-IUQ via PTI)", threads);
  const size_t queries = BenchQueriesPerPoint(120);
  const double scale = BenchDatasetScale();
  BatchOptions batch;
  batch.threads = threads;

  std::vector<std::string> names;
  std::vector<QueryEngine> engines;
  for (size_t n : {3u, 6u, 11u, 21u}) {
    EngineConfig config;
    config.catalog_values = UCatalog::EvenlySpacedValues(n);
    engines.push_back(BuildPaperEngine(scale, std::move(config)));
    names.push_back("n=" + std::to_string(n));
    std::printf("catalog n=%zu: PTI fanout %zu, nodes %zu\n", n,
                engines.back().pti()->tree().max_entries(),
                engines.back().pti()->tree().node_count());
  }

  SeriesTable table("Ablation — U-catalog size (C-IUQ, u=250, w=500)", "Qp",
                    names);
  for (double qp : {0.15, 0.35, 0.55, 0.75}) {
    std::vector<CellResult> cells;
    for (QueryEngine& engine : engines) {
      // Issuers must carry the same ladder as the engine's objects.
      WorkloadConfig wc;
      wc.u = 250.0;
      wc.w = 500.0;
      wc.qp = qp;
      wc.queries = queries;
      wc.catalog_values = engine.config().catalog_values;
      Result<Workload> workload = GenerateWorkload(wc);
      ILQ_CHECK(workload.ok(), workload.status().ToString());
      cells.push_back(RunBatchCell(engine, QueryMethod::kCiuqPti,
                                   workload->issuers,
                                   BatchSpec{workload->spec}, batch));
    }
    table.AddRow(qp, cells);
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("abl_catalog_size.csv"));
  std::printf("expected shape: off-grid thresholds favour finer catalogs "
              "(tighter floor values); very fine catalogs pay in fanout/"
              "node accesses.\n");
  return 0;
}
