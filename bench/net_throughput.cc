// Wire-tier throughput bench: Zipfian issuer traffic pushed through a
// Router onto ShardServer processes-in-miniature (real loopback sockets,
// same binaries' worth of framing/codec work as the multi-process
// deployment), plus codec micro scenarios isolating the serialization
// cost itself.
//
// Scenarios (fixed names — gated against bench/baselines/BENCH_net.json by
// the perf-smoke CI job via check_perf_regression.py --normalize):
//   BM_NetQuery/ipq/shards=1        router -> one shard server, loopback
//   BM_NetQuery/ipq/sharded         router fan-out over --shards servers
//   BM_NetQuery/ciuq_pti/sharded    threshold method through the wire
//   BM_NetCodec/request_roundtrip   EncodeRequest + DecodeRequest, one op
//   BM_NetCodec/response_roundtrip  EncodeResponse + DecodeResponse (250
//                                   answers), one op
// Each records ns per request (wall-clock; the loopback path is
// CPU-bound, the codec scenarios are pure CPU).
//
// Flags: --shards=N --requests=N --pool=N --skew=S --reps=N plus the usual
// ILQ_BENCH_SCALE / ILQ_BENCH_QUERIES / ILQ_BENCH_JSON environment knobs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "serve/partition.h"
#include "serve/sharded_engine.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace ilq::bench {
namespace {

double ParseFlag(int argc, char** argv, const char* flag, double fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) != 0) continue;
    if (argv[i][flag_len] == '=') return std::atof(argv[i] + flag_len + 1);
    if (argv[i][flag_len] == '\0' && i + 1 < argc) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

CatalogImage BuildPaperImage(double scale) {
  CatalogImage image;
  image.points = CaliforniaPoints(scale);
  Result<std::vector<UncertainObject>> objects =
      MakeUniformUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(objects.ok(), objects.status().ToString());
  image.uncertains = std::move(objects).ValueOrDie();
  return image;
}

/// A router plus the fleet of loopback shard servers behind it. Servers
/// must outlive the router's persistent connections.
struct Fleet {
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::unique_ptr<Router> router;
};

Fleet StartFleet(const CatalogImage& image, size_t shards) {
  Result<SplitImage> split = SplitCatalogImage(image, shards);
  ILQ_CHECK(split.ok(), split.status().ToString());

  Fleet fleet;
  RouterOptions options;
  options.map = split->map;
  for (CatalogImage& shard : split->shards) {
    ShardedEngineConfig config;
    config.shards = 1;
    Result<ShardedEngine> engine = ShardedEngine::Build(
        std::move(shard.points), std::move(shard.uncertains), config);
    ILQ_CHECK(engine.ok(), engine.status().ToString());
    fleet.engines.push_back(
        std::make_unique<ShardedEngine>(std::move(engine).ValueOrDie()));
    fleet.servers.push_back(
        std::make_unique<ShardServer>(*fleet.engines.back()));
    const Status started = fleet.servers.back()->Start();
    ILQ_CHECK(started.ok(), started.ToString());
    options.endpoints.push_back(
        RouterEndpoint{"127.0.0.1", fleet.servers.back()->port()});
  }
  Result<Router> router = Router::Make(std::move(options));
  ILQ_CHECK(router.ok(), router.status().ToString());
  fleet.router = std::make_unique<Router>(std::move(router).ValueOrDie());
  return fleet;
}

struct ScenarioResult {
  double wall_ms = 0.0;
  double qps = 0.0;
  size_t answers = 0;
  double fanout = 0.0;
};

/// Streams the whole request sequence through the router, one query at a
/// time (the router's connections are persistent, so steady-state cost is
/// codec + syscalls + shard evaluation — no reconnects).
ScenarioResult RunScenario(Fleet& fleet, QueryMethod method,
                           const SkewedWorkload& workload) {
  const BatchSpec spec{workload.spec};
  const RouterStats before = fleet.router->stats();

  Stopwatch watch;
  size_t answers = 0;
  for (const size_t pick : workload.sequence) {
    Result<AnswerSet> result =
        fleet.router->Query(workload.pool[pick], method, spec);
    ILQ_CHECK(result.ok(), result.status().ToString());
    answers += result->size();
  }

  ScenarioResult result;
  result.wall_ms = watch.ElapsedMillis();
  const double requests = static_cast<double>(workload.sequence.size());
  result.qps =
      result.wall_ms > 0.0 ? 1000.0 * requests / result.wall_ms : 0.0;
  result.answers = answers;
  const RouterStats after = fleet.router->stats();
  result.fanout =
      requests > 0.0
          ? static_cast<double>(after.shard_calls - before.shard_calls) /
                requests
          : 0.0;
  return result;
}

// ---- Codec micro scenarios -------------------------------------------------

double RequestRoundTripNs(size_t ops) {
  WireRequest request;
  request.issuer_id = 42;
  request.issuer_pdf = PdfVariant(
      UniformRectPdf::Make(Rect(100, 600, 100, 600)).ValueOrDie());
  request.method = QueryMethod::kCiuqPti;
  request.spec.query.w = 500.0;
  request.spec.query.h = 500.0;
  request.spec.query.threshold = 0.3;

  Stopwatch watch;
  size_t checksum = 0;
  for (size_t i = 0; i < ops; ++i) {
    ByteWriter writer;
    const Status status = EncodeRequest(request, &writer);
    ILQ_CHECK(status.ok(), status.ToString());
    Result<WireRequest> decoded = DecodeRequest(writer.bytes());
    ILQ_CHECK(decoded.ok(), decoded.status().ToString());
    checksum += decoded->issuer_id;
  }
  const double wall_ms = watch.ElapsedMillis();
  ILQ_CHECK(checksum == 42 * ops, "codec round-trip corrupted issuer id");
  return wall_ms * 1e6 / static_cast<double>(ops);
}

double ResponseRoundTripNs(size_t ops, size_t answers) {
  WireResponse response;
  response.stats.submitted = 1;
  response.stats.completed = 1;
  for (size_t i = 0; i < answers; ++i) {
    response.answers.push_back(
        ProbabilisticAnswer{static_cast<ObjectId>(i + 1),
                            static_cast<double>(i) /
                                static_cast<double>(answers)});
  }

  Stopwatch watch;
  size_t checksum = 0;
  for (size_t i = 0; i < ops; ++i) {
    ByteWriter writer;
    const Status status = EncodeResponse(response, &writer);
    ILQ_CHECK(status.ok(), status.ToString());
    Result<WireResponse> decoded = DecodeResponse(writer.bytes());
    ILQ_CHECK(decoded.ok(), decoded.status().ToString());
    checksum += decoded->answers.size();
  }
  const double wall_ms = watch.ElapsedMillis();
  ILQ_CHECK(checksum == answers * ops, "codec round-trip lost answers");
  return wall_ms * 1e6 / static_cast<double>(ops);
}

}  // namespace
}  // namespace ilq::bench

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const auto shards =
      static_cast<size_t>(ParseFlag(argc, argv, "--shards", 3));
  const double skew = ParseFlag(argc, argv, "--skew", 1.0);
  const auto pool =
      static_cast<size_t>(ParseFlag(argc, argv, "--pool", 64));
  const auto requests = static_cast<size_t>(ParseFlag(
      argc, argv, "--requests",
      static_cast<double>(BenchQueriesPerPoint(240))));
  const auto reps = static_cast<size_t>(
      std::max(1.0, ParseFlag(argc, argv, "--reps", 3)));

  PrintHeader("Wire", "router -> shard-server throughput over loopback");
  std::printf("net: shards=%zu skew=%.2f pool=%zu requests=%zu\n\n", shards,
              skew, pool, requests);

  WorkloadConfig base;  // §6.1 defaults: u=250, w=500, uniform issuers
  SkewConfig traffic;
  traffic.pool = pool;
  traffic.requests = requests;
  traffic.zipf_s = skew;
  Result<SkewedWorkload> workload = GenerateSkewedWorkload(base, traffic);
  ILQ_CHECK(workload.ok(), workload.status().ToString());

  const double scale = BenchDatasetScale();
  const CatalogImage image = BuildPaperImage(scale);
  Fleet mono = StartFleet(image, 1);
  Fleet fleet = StartFleet(image, shards);

  struct Scenario {
    const char* name;
    Fleet* fleet;
    QueryMethod method;
  };
  const std::vector<Scenario> scenarios = {
      {"BM_NetQuery/ipq/shards=1", &mono, QueryMethod::kIpq},
      {"BM_NetQuery/ipq/sharded", &fleet, QueryMethod::kIpq},
      {"BM_NetQuery/ciuq_pti/sharded", &fleet, QueryMethod::kCiuqPti},
  };

  // Every rep is emitted under the same scenario name:
  // check_perf_regression.py min-collapses duplicates, which keeps these
  // wall-clock numbers stable on busy hosts.
  std::vector<MicroBenchResult> results;
  std::printf("%-32s %10s %10s %7s %9s\n", "scenario", "wall_ms", "qps",
              "fanout", "answers");
  for (const Scenario& scenario : scenarios) {
    ScenarioResult best;
    for (size_t rep = 0; rep < reps; ++rep) {
      const ScenarioResult run =
          RunScenario(*scenario.fleet, scenario.method, *workload);
      const double ns_per_request =
          requests == 0 ? 0.0
                        : run.wall_ms * 1e6 / static_cast<double>(requests);
      results.push_back({scenario.name, ns_per_request, ns_per_request,
                         static_cast<double>(requests)});
      if (rep == 0 || run.wall_ms < best.wall_ms) best = run;
    }
    std::printf("%-32s %10.1f %10.0f %7.2f %9zu\n", scenario.name,
                best.wall_ms, best.qps, best.fanout, best.answers);
  }

  constexpr size_t kCodecOps = 20000;
  for (size_t rep = 0; rep < reps; ++rep) {
    const double request_ns = RequestRoundTripNs(kCodecOps);
    const double response_ns = ResponseRoundTripNs(kCodecOps / 10, 250);
    results.push_back({"BM_NetCodec/request_roundtrip", request_ns,
                       request_ns, static_cast<double>(kCodecOps)});
    results.push_back({"BM_NetCodec/response_roundtrip", response_ns,
                       response_ns, static_cast<double>(kCodecOps / 10)});
    if (rep + 1 == reps) {
      std::printf("%-32s %8.0f ns/op\n", "BM_NetCodec/request_roundtrip",
                  request_ns);
      std::printf("%-32s %8.0f ns/op\n", "BM_NetCodec/response_roundtrip",
                  response_ns);
    }
  }

  const uint64_t retries = mono.router->stats().retries +
                           fleet.router->stats().retries;
  for (auto& server : mono.servers) server->Stop();
  for (auto& server : fleet.servers) server->Stop();

  // Own default filename so the net scenarios never clobber another
  // bench's JSON in the same directory; ILQ_BENCH_JSON still overrides.
  const char* json_env = std::getenv("ILQ_BENCH_JSON");
  const std::string path = json_env != nullptr ? json_env : "BENCH_net.json";
  const Status status = WriteMicroBenchJson(path, results);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu net scenarios to %s (%llu retries)\n",
              results.size(), path.c_str(),
              static_cast<unsigned long long>(retries));
  std::printf("expected shape: loopback adds codec+syscall overhead over "
              "in-process serving but fan-out stays below the shard count; "
              "codec round-trips sit in the sub-microsecond range.\n");
  return 0;
}
