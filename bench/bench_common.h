// Shared setup for the figure benches: the paper's §6.1 configuration.
//
// Datasets: "California"-like 62K points and "Long Beach"-like 53K
// rectangles in a 10,000 × 10,000 space (synthetic TIGER stand-ins, see
// DESIGN.md §2). Indexing: 4K-page R-tree / PTI. Issuers: square U0 of
// half-side u placed uniformly; query ranges square with half-side w;
// defaults u = 250, w = 500, Qp = 0, uniform pdfs.
//
// Environment knobs (all benches):
//   ILQ_BENCH_QUERIES  queries averaged per data point (default 120;
//                      the paper used 500 — set 500 for full parity)
//   ILQ_BENCH_SCALE    dataset-size fraction in (0, 1] (default 1.0)
//   ILQ_BENCH_THREADS  worker threads for batch evaluation (default 1;
//                      0 = all hardware threads). The --threads=N flag
//                      overrides the environment.

#ifndef ILQ_BENCH_BENCH_COMMON_H_
#define ILQ_BENCH_BENCH_COMMON_H_

#include <cstdio>

#include "benchutil/harness.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"

namespace ilq::bench {

constexpr size_t kCaliforniaPoints = 62000;  // §6.1
constexpr size_t kLongBeachRects = 53000;    // §6.1

inline std::vector<PointObject> CaliforniaPoints(double scale) {
  SyntheticConfig config;
  config.count =
      static_cast<size_t>(static_cast<double>(kCaliforniaPoints) * scale);
  config.seed = 20070415;  // ICDE'07 :-)
  return GenerateCaliforniaLikePoints(config);
}

inline std::vector<Rect> LongBeachRects(double scale) {
  RectangleConfig config;
  config.base.count =
      static_cast<size_t>(static_cast<double>(kLongBeachRects) * scale);
  config.base.seed = 20070416;
  return GenerateLongBeachLikeRects(config);
}

/// Builds the default engine over both datasets with uniform pdfs.
inline QueryEngine BuildPaperEngine(double scale,
                                    EngineConfig config = EngineConfig{}) {
  Result<std::vector<UncertainObject>> objects =
      MakeUniformUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(objects.ok(), objects.status().ToString());
  Result<QueryEngine> engine =
      QueryEngine::Build(CaliforniaPoints(scale),
                         std::move(objects).ValueOrDie(), std::move(config));
  ILQ_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).ValueOrDie();
}

/// Generates a §6.1 workload (u, w, Qp) with the shared query count.
inline Workload MakeWorkload(double u, double w, double qp, size_t queries,
                             IssuerPdfKind kind = IssuerPdfKind::kUniform,
                             uint64_t seed = 4242) {
  WorkloadConfig config;
  config.u = u;
  config.w = w;
  config.qp = qp;
  config.queries = queries;
  config.issuer_pdf = kind;
  config.seed = seed;
  Result<Workload> workload = GenerateWorkload(config);
  ILQ_CHECK(workload.ok(), workload.status().ToString());
  return std::move(workload).ValueOrDie();
}

inline void PrintHeader(const char* figure, const char* what,
                        size_t threads = 1) {
  std::printf("ILQ reproduction — %s: %s\n", figure, what);
  const size_t resolved =
      threads == 0 ? ThreadPool::DefaultThreadCount() : threads;
  std::printf(
      "setup: %zu-query average per point, dataset scale %.2f, "
      "%zu worker thread(s) (ILQ_BENCH_QUERIES / ILQ_BENCH_SCALE / "
      "--threads=N to change; paper: 500 queries, full scale, serial)\n",
      BenchQueriesPerPoint(120), BenchDatasetScale(), resolved);
}

}  // namespace ilq::bench

#endif  // ILQ_BENCH_BENCH_COMMON_H_
