// §6.2 sensitivity analysis: how many Monte-Carlo samples are needed for
// accurate qualification probabilities? The paper reports needing at least
// 200 samples for C-IPQ and 250 for C-IUQ. This bench measures the max
// absolute probability error vs the analytic kernels across a workload,
// together with per-query cost, as the sample count grows.

#include <algorithm>
#include <map>

#include "bench_common.h"

#include "common/stopwatch.h"

int main() {
  using namespace ilq;
  using namespace ilq::bench;

  PrintHeader("Sensitivity (§6.2)", "Monte-Carlo sample count vs accuracy");
  const double scale = std::min(0.1, BenchDatasetScale());  // accuracy study
  const size_t queries = std::min<size_t>(20, BenchQueriesPerPoint(20));

  Result<std::vector<UncertainObject>> objects =
      MakeGaussianUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(objects.ok(), objects.status().ToString());

  std::printf("\n%-10s  %16s  %16s  %16s\n", "samples", "IPQ max |err|",
              "IUQ max |err|", "IUQ mean T(ms)");
  for (size_t samples : {25u, 50u, 100u, 200u, 250u, 500u, 1000u}) {
    EngineConfig mc_config;
    mc_config.eval.kernel = ProbabilityKernel::kMonteCarlo;
    mc_config.eval.mc_samples = samples;
    QueryEngine mc_engine = [&] {
      Result<QueryEngine> e =
          QueryEngine::Build(CaliforniaPoints(scale), *objects, mc_config);
      ILQ_CHECK(e.ok(), e.status().ToString());
      return std::move(e).ValueOrDie();
    }();
    QueryEngine exact_engine = [&] {
      Result<QueryEngine> e =
          QueryEngine::Build(CaliforniaPoints(scale), *objects, {});
      ILQ_CHECK(e.ok(), e.status().ToString());
      return std::move(e).ValueOrDie();
    }();

    const Workload workload = MakeWorkload(250.0, 500.0, 0.0, queries,
                                           IssuerPdfKind::kGaussian);
    double ipq_err = 0.0;
    double iuq_err = 0.0;
    SummaryStats iuq_time;
    for (const UncertainObject& issuer : workload.issuers) {
      const AnswerSet ipq_mc = mc_engine.Ipq(issuer, workload.spec);
      const AnswerSet ipq_ex = exact_engine.Ipq(issuer, workload.spec);
      std::map<ObjectId, double> truth;
      for (const auto& a : ipq_ex) truth[a.id] = a.probability;
      for (const auto& a : ipq_mc) {
        ipq_err = std::max(ipq_err, std::abs(a.probability - truth[a.id]));
      }

      Stopwatch watch;
      const AnswerSet iuq_mc = mc_engine.Iuq(issuer, workload.spec);
      iuq_time.Add(watch.ElapsedMillis());
      const AnswerSet iuq_ex = exact_engine.Iuq(issuer, workload.spec);
      std::map<ObjectId, double> iuq_truth;
      for (const auto& a : iuq_ex) iuq_truth[a.id] = a.probability;
      for (const auto& a : iuq_mc) {
        iuq_err =
            std::max(iuq_err, std::abs(a.probability - iuq_truth[a.id]));
      }
    }
    std::printf("%-10zu  %16.4f  %16.4f  %16.3f\n", samples, ipq_err,
                iuq_err, iuq_time.Mean());
  }
  std::printf("\nexpected shape (paper): errors shrink ~1/sqrt(samples); "
              "≈200 (C-IPQ) / 250 (C-IUQ) samples suffice for stable "
              "answers while cost grows linearly.\n");
  return 0;
}
