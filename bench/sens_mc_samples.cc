// §6.2 sensitivity analysis: how many Monte-Carlo samples are needed for
// accurate qualification probabilities? The paper reports needing at least
// 200 samples for C-IPQ and 250 for C-IUQ. This bench measures the max
// absolute probability error vs the analytic kernels across a workload,
// together with per-query cost, as the sample count grows. All four
// (engine, method) evaluations per row run through QueryEngine::RunBatch;
// pass --threads=N to parallelize.

#include <algorithm>
#include <map>

#include "bench_common.h"

namespace {

// Max |p_got - p_truth| over all queries, matching answers by object id.
double MaxAbsError(const ilq::BatchResult& got, const ilq::BatchResult& ref) {
  double max_err = 0.0;
  for (size_t q = 0; q < got.answers.size(); ++q) {
    std::map<ilq::ObjectId, double> truth;
    for (const auto& a : ref.answers[q]) truth[a.id] = a.probability;
    for (const auto& a : got.answers[q]) {
      max_err = std::max(max_err, std::abs(a.probability - truth[a.id]));
    }
  }
  return max_err;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Sensitivity (§6.2)", "Monte-Carlo sample count vs accuracy",
              threads);
  const double scale = std::min(0.1, BenchDatasetScale());  // accuracy study
  const size_t queries = std::min<size_t>(20, BenchQueriesPerPoint(20));
  BatchOptions batch;
  batch.threads = threads;

  Result<std::vector<UncertainObject>> objects =
      MakeGaussianUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(objects.ok(), objects.status().ToString());

  std::printf("\n%-10s  %16s  %16s  %16s\n", "samples", "IPQ max |err|",
              "IUQ max |err|", "IUQ mean T(ms)");
  for (size_t samples : {25u, 50u, 100u, 200u, 250u, 500u, 1000u}) {
    EngineConfig mc_config;
    mc_config.eval.kernel = ProbabilityKernel::kMonteCarlo;
    mc_config.eval.mc_samples = samples;
    QueryEngine mc_engine = [&] {
      Result<QueryEngine> e =
          QueryEngine::Build(CaliforniaPoints(scale), *objects, mc_config);
      ILQ_CHECK(e.ok(), e.status().ToString());
      return std::move(e).ValueOrDie();
    }();
    QueryEngine exact_engine = [&] {
      Result<QueryEngine> e =
          QueryEngine::Build(CaliforniaPoints(scale), *objects, {});
      ILQ_CHECK(e.ok(), e.status().ToString());
      return std::move(e).ValueOrDie();
    }();

    const Workload workload = MakeWorkload(250.0, 500.0, 0.0, queries,
                                           IssuerPdfKind::kGaussian);
    const BatchSpec spec{workload.spec};
    const BatchResult ipq_mc =
        mc_engine.RunBatch(QueryMethod::kIpq, workload.issuers, spec, batch);
    const BatchResult ipq_ex = exact_engine.RunBatch(
        QueryMethod::kIpq, workload.issuers, spec, batch);
    const BatchResult iuq_mc =
        mc_engine.RunBatch(QueryMethod::kIuq, workload.issuers, spec, batch);
    const BatchResult iuq_ex = exact_engine.RunBatch(
        QueryMethod::kIuq, workload.issuers, spec, batch);

    SummaryStats iuq_time;
    for (double ms : iuq_mc.query_ms) iuq_time.Add(ms);
    std::printf("%-10zu  %16.4f  %16.4f  %16.3f\n", samples,
                MaxAbsError(ipq_mc, ipq_ex), MaxAbsError(iuq_mc, iuq_ex),
                iuq_time.Mean());
  }
  std::printf("\nexpected shape (paper): errors shrink ~1/sqrt(samples); "
              "≈200 (C-IPQ) / 250 (C-IUQ) samples suffice for stable "
              "answers while cost grows linearly.\n");
  return 0;
}
