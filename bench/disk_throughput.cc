// Out-of-core storage bench (ISSUE 8): bulk-load write throughput, cold
// mount cost, and query latency of a disk-resident engine under varying
// LRU buffer budgets.
//
// Scenarios (fixed names — gated against bench/baselines/BENCH_disk.json
// by the perf-smoke CI job via check_perf_regression.py --normalize):
//   BM_Disk/bulk_load_per_mb     ns per MiB written, SavePagedIndexes
//   BM_Disk/cold_open            ns per OpenPaged mount including the full
//                                deep-verify corruption walk
//   BM_Disk/query_p99_cold       p99 query time (ns) for IPQ over a
//                                freshly mounted engine — every early page
//                                read is a miss
//   BM_Disk/query_mean_budget_2pct / _10pct / _100pct
//                                steady-state mean C-IUQ(PTI) query time
//                                (ns) with the aggregate buffer budget at
//                                2% / 10% / 100% of the index file bytes
//
// Flags: --reps=N --threads=N, plus the usual ILQ_BENCH_SCALE /
// ILQ_BENCH_QUERIES / ILQ_BENCH_JSON knobs.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "object/snapshot.h"

namespace ilq::bench {
namespace {

// --flag=V / "--flag V" numeric parser (same convention as BenchThreads).
double ParseFlag(int argc, char** argv, const char* flag, double fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) != 0) continue;
    if (argv[i][flag_len] == '=') return std::atof(argv[i] + flag_len + 1);
    if (argv[i][flag_len] == '\0' && i + 1 < argc) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

uint64_t IndexFileBytes(const PagedIndexFiles& files) {
  namespace fs = std::filesystem;
  uint64_t bytes = 0;
  for (const std::string* path :
       {&files.point_index, &files.uncertain_index, &files.pti_index}) {
    std::error_code ec;
    const uint64_t size = fs::file_size(*path, ec);
    if (!ec) bytes += size;
  }
  return bytes;
}

QueryEngine Mount(const CatalogImage& image, const PagedIndexFiles& files,
                  const EngineConfig& base, size_t per_index_budget,
                  bool deep_verify) {
  EngineConfig paged = base;
  paged.storage = StorageMode::kPaged;
  paged.buffer_pool_bytes = std::max<size_t>(1, per_index_budget);
  paged.paged_deep_verify = deep_verify;
  Result<QueryEngine> engine = QueryEngine::OpenPaged(image, files, paged);
  ILQ_CHECK(engine.ok(), engine.status().ToString());
  return std::move(engine).ValueOrDie();
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size())));
  return values[index];
}

}  // namespace
}  // namespace ilq::bench

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;
  namespace fs = std::filesystem;

  const size_t threads = BenchThreads(argc, argv);
  const auto reps = static_cast<size_t>(
      std::max(1.0, ParseFlag(argc, argv, "--reps", 3)));

  PrintHeader("Disk", "paged-index write/mount/query throughput", threads);
  const size_t queries = BenchQueriesPerPoint(120);
  const double scale = BenchDatasetScale();
  std::printf("disk: reps=%zu, 4K pages, deep-verify on cold open\n\n", reps);

  CatalogImage image;
  image.points = CaliforniaPoints(scale);
  Result<std::vector<UncertainObject>> uncertains =
      MakeUniformUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(uncertains.ok(), uncertains.status().ToString());
  image.uncertains = std::move(uncertains).ValueOrDie();

  EngineConfig config;  // paper default: 4K pages
  Result<QueryEngine> ram =
      QueryEngine::Build(image.points, image.uncertains, config);
  ILQ_CHECK(ram.ok(), ram.status().ToString());

  const std::string dir =
      (fs::temp_directory_path() /
       ("ilq_disk_throughput_" + std::to_string(::getpid())))
          .string();
  fs::create_directories(dir);
  const PagedIndexFiles files = PagedIndexFiles::InDir(dir);

  BatchOptions batch;
  batch.threads = threads;
  const Workload ipq_workload = MakeWorkload(250.0, 500.0, 0.0, queries);
  const Workload ciuq_workload = MakeWorkload(250.0, 500.0, 0.5, queries);
  const BatchSpec ipq_spec{ipq_workload.spec};
  const BatchSpec ciuq_spec{ciuq_workload.spec};

  std::vector<MicroBenchResult> results;

  // --- Bulk-load write throughput ------------------------------------------
  double best_save_ms = 0.0;
  double file_mb = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    const Status saved = ram->SavePagedIndexes(files);
    ILQ_CHECK(saved.ok(), saved.ToString());
    const double wall_ms = watch.ElapsedMillis();
    file_mb = static_cast<double>(IndexFileBytes(files)) / (1 << 20);
    const double ns_per_mb = file_mb > 0.0 ? wall_ms * 1e6 / file_mb : 0.0;
    results.push_back({"BM_Disk/bulk_load_per_mb", ns_per_mb, ns_per_mb,
                       file_mb});
    if (rep == 0 || wall_ms < best_save_ms) best_save_ms = wall_ms;
  }
  std::printf("%-32s %10.1f ms  %8.1f MiB  %8.1f MB/s\n",
              "BM_Disk/bulk_load_per_mb", best_save_ms, file_mb,
              best_save_ms > 0.0 ? 1000.0 * file_mb / best_save_ms : 0.0);
  const auto index_bytes = static_cast<size_t>(IndexFileBytes(files));

  // --- Cold mount including the deep-verify walk ---------------------------
  double best_open_ms = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    QueryEngine engine =
        Mount(image, files, config, config.buffer_pool_bytes, true);
    const double wall_ms = watch.ElapsedMillis();
    const double ns = wall_ms * 1e6;
    results.push_back({"BM_Disk/cold_open", ns, ns, 1.0});
    if (rep == 0 || wall_ms < best_open_ms) best_open_ms = wall_ms;
  }
  std::printf("%-32s %10.1f ms per mount (deep verify)\n", "BM_Disk/cold_open",
              best_open_ms);

  // --- Cold-cache query p99 ------------------------------------------------
  // Fresh mount per rep: the batch starts with empty buffers, so the tail
  // reflects miss-dominated queries. Serial so per-query times are not
  // inflated by scheduling.
  double best_p99_ms = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    QueryEngine engine = Mount(image, files, config,
                               std::max<size_t>(1, index_bytes / 30), false);
    BatchOptions serial = batch;
    serial.threads = 1;
    const BatchResult run = engine.RunBatch(
        QueryMethod::kIpq, ipq_workload.issuers, ipq_spec, serial);
    const double p99_ms = Quantile(run.query_ms, 0.99);
    const double p99_ns = p99_ms * 1e6;
    results.push_back({"BM_Disk/query_p99_cold", p99_ns, p99_ns,
                       static_cast<double>(run.answers.size())});
    if (rep == 0 || p99_ms < best_p99_ms) best_p99_ms = p99_ms;
  }
  std::printf("%-32s %10.3f ms p99 (IPQ, cold buffers)\n",
              "BM_Disk/query_p99_cold", best_p99_ms);

  // --- Steady-state latency vs buffer budget -------------------------------
  // Each index's buffer gets pct% of the *total* index file bytes, so at
  // 100% every index (including the PTI, the largest file) is fully
  // resident after warm-up, while 2% thrashes. One warm-up batch fills
  // the buffers; the measured batch shows the steady-state hit rate.
  for (const size_t pct : {2u, 10u, 100u}) {
    const size_t per_index = std::max<size_t>(1, index_bytes * pct / 100);
    const std::string name =
        "BM_Disk/query_mean_budget_" + std::to_string(pct) + "pct";
    double best_mean_ms = 0.0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      QueryEngine engine = Mount(image, files, config, per_index, false);
      engine.RunBatch(QueryMethod::kCiuqPti, ciuq_workload.issuers, ciuq_spec,
                      batch);  // warm-up: fill the buffers
      const BatchResult run = engine.RunBatch(
          QueryMethod::kCiuqPti, ciuq_workload.issuers, ciuq_spec, batch);
      const double mean_ms =
          run.answers.empty()
              ? 0.0
              : run.wall_ms / static_cast<double>(run.answers.size());
      const double mean_ns = mean_ms * 1e6;
      results.push_back({name, mean_ns, mean_ns,
                         static_cast<double>(run.answers.size())});
      if (rep == 0 || mean_ms < best_mean_ms) {
        best_mean_ms = mean_ms;
        hits = run.total_stats.page_hits;
        misses = run.total_stats.page_misses;
      }
    }
    const double reads = static_cast<double>(hits + misses);
    std::printf("%-32s %10.3f ms/query  (%.1f%% hit rate)\n", name.c_str(),
                best_mean_ms,
                reads > 0.0 ? 100.0 * static_cast<double>(hits) / reads : 0.0);
  }

  std::error_code ec;
  fs::remove_all(dir, ec);

  // Own default filename, same reasoning as the other scenario benches:
  // never clobber another bench's JSON in the working directory.
  const char* json_env = std::getenv("ILQ_BENCH_JSON");
  const std::string path = json_env != nullptr ? json_env : "BENCH_disk.json";
  const Status status = WriteMicroBenchJson(path, results);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu disk scenarios to %s\n", results.size(),
              path.c_str());
  std::printf("expected shape: bulk load streams sequentially (hundreds of "
              "MB/s), cold open is dominated by the verify walk's full "
              "sequential read, the cold p99 sits well above the warm mean, "
              "and the budget sweep shows latency falling as the hit rate "
              "climbs toward a fully-resident index.\n");
  return 0;
}
