// Ablation: Monte-Carlo (the paper's method for non-uniform pdfs) vs ILQ's
// separable Gauss–Legendre quadrature for Gaussian×Gaussian IUQ. Reports
// per-query time and max probability deviation from a high-order reference.
// Both the reference and each variant evaluate their whole workload through
// QueryEngine::RunBatch; pass --threads=N to parallelize.

#include <algorithm>
#include <map>

#include "bench_common.h"
#include "core/duality.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Ablation", "Monte-Carlo vs quadrature (Gaussian IUQ)",
              threads);
  const double scale = std::min(0.1, BenchDatasetScale());
  const size_t queries = std::min<size_t>(30, BenchQueriesPerPoint(30));
  BatchOptions batch;
  batch.threads = threads;

  Result<std::vector<UncertainObject>> objects =
      MakeGaussianUncertainObjects(LongBeachRects(scale));
  ILQ_CHECK(objects.ok(), objects.status().ToString());

  // Reference: the quadrature kernel at very high order.
  EngineConfig ref_config;
  ref_config.eval.quadrature_order = 64;
  QueryEngine ref_engine = [&] {
    Result<QueryEngine> e = QueryEngine::Build({}, *objects, ref_config);
    ILQ_CHECK(e.ok(), e.status().ToString());
    return std::move(e).ValueOrDie();
  }();

  struct Variant {
    std::string name;
    EngineConfig config;
  };
  std::vector<Variant> variants;
  for (size_t order : {4u, 8u, 16u}) {
    EngineConfig c;
    c.eval.quadrature_order = order;
    variants.push_back({"GL-" + std::to_string(order), c});
  }
  for (size_t samples : {250u, 1000u, 4000u}) {
    EngineConfig c;
    c.eval.kernel = ProbabilityKernel::kMonteCarlo;
    c.eval.mc_samples = samples;
    variants.push_back({"MC-" + std::to_string(samples), c});
  }

  const Workload workload = MakeWorkload(250.0, 500.0, 0.0, queries,
                                         IssuerPdfKind::kGaussian);
  const BatchSpec spec{workload.spec};
  const BatchResult ref =
      ref_engine.RunBatch(QueryMethod::kIuq, workload.issuers, spec, batch);
  std::printf("\n%-10s  %14s  %14s\n", "kernel", "mean T(ms)", "max |err|");
  for (const Variant& v : variants) {
    QueryEngine engine = [&] {
      Result<QueryEngine> e = QueryEngine::Build({}, *objects, v.config);
      ILQ_CHECK(e.ok(), e.status().ToString());
      return std::move(e).ValueOrDie();
    }();
    const BatchResult got =
        engine.RunBatch(QueryMethod::kIuq, workload.issuers, spec, batch);
    SummaryStats time_ms;
    for (double ms : got.query_ms) time_ms.Add(ms);
    double max_err = 0.0;
    for (size_t q = 0; q < got.answers.size(); ++q) {
      std::map<ObjectId, double> truth;
      for (const auto& a : ref.answers[q]) truth[a.id] = a.probability;
      for (const auto& a : got.answers[q]) {
        max_err = std::max(max_err, std::abs(a.probability - truth[a.id]));
      }
    }
    std::printf("%-10s  %14.3f  %14.6f\n", v.name.c_str(), time_ms.Mean(),
                max_err);
  }
  std::printf("\nexpected shape: quadrature reaches ~1e-6 error at a "
              "fraction of the Monte-Carlo cost; MC error shrinks only as "
              "1/sqrt(samples).\n");
  return 0;
}
