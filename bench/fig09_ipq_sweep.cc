// Figure 9: T vs. u for IPQ at range sizes w ∈ {500, 1000, 1500}.
//
// Response time grows with both u and w because the Minkowski-sum expanded
// query — and hence the candidate set — grows with each. Queries within a
// cell run through QueryEngine::RunBatch; pass --threads=N to fan them out.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ilq;
  using namespace ilq::bench;

  const size_t threads = BenchThreads(argc, argv);
  PrintHeader("Figure 9", "IPQ response time vs uncertainty size", threads);
  const size_t queries = BenchQueriesPerPoint(120);
  QueryEngine engine = BuildPaperEngine(BenchDatasetScale());
  BatchOptions batch;
  batch.threads = threads;

  SeriesTable table("Figure 9 — Avg. response time vs uncertainty size "
                    "(IPQ, California-like points)",
                    "u", {"w=500", "w=1000", "w=1500"});
  for (double u : {0.0, 100.0, 250.0, 500.0, 750.0, 1000.0}) {
    std::vector<CellResult> cells;
    for (double w : {500.0, 1000.0, 1500.0}) {
      const Workload workload = MakeWorkload(u, w, 0.0, queries);
      cells.push_back(RunBatchCell(engine, QueryMethod::kIpq,
                                   workload.issuers,
                                   BatchSpec{workload.spec}, batch));
    }
    table.AddRow(u, cells);
  }
  table.Print();
  (void)table.WriteCsv(BenchCsvPath("fig09_ipq_sweep.csv"));
  std::printf("expected shape (paper): T increases with u and with w "
              "(larger expanded query ⇒ more candidates).\n");
  return 0;
}
