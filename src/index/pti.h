// Probability Threshold Index (§5.3, after Cheng et al. VLDB'04).
//
// A PTI is an R-tree over uncertain objects whose interior levels carry,
// for every probability value m in the (shared) U-catalog, an MBR(m) that
// encloses the m-bounds of everything below. Constrained queries can then
// run the §5.2 pruning tests against whole subtrees: if a node-level
// p-bound already satisfies a pruning condition, so does every child
// (the paper's index-level pruning argument).
//
// The larger interior entries (one box per catalog value) are charged
// against the same 4KB page budget as the plain R-tree, so the PTI's lower
// fanout — and its extra node accesses at Qp = 0 — are faithfully modelled.

#ifndef ILQ_INDEX_PTI_H_
#define ILQ_INDEX_PTI_H_

#include <vector>

#include "common/status.h"
#include "index/index_stats.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"

namespace ilq {

/// \brief R-tree over uncertain objects with per-node merged U-catalogs.
///
/// Built with bulk loading (the paper's datasets are static), but also
/// maintainable incrementally: Insert/Remove mutate the underlying tree and
/// leave the node catalogs stale, and RefreshCatalogs recomputes them
/// bottom-up — call it once per update batch before querying again. Stale
/// catalogs after removes are merely conservative (they over-cover), but
/// inserts and structural changes (splits, condensation reinserts) make
/// them wrong for pruning, which is why the engine always refreshes or
/// rebuilds before publishing a snapshot.
class PTI {
 public:
  /// Builds a PTI over \p objects. Every object must carry a U-catalog and
  /// all catalogs must share one value ladder; the object ids stored in the
  /// tree are *indexes into \p objects*, which the caller keeps alive.
  static Result<PTI> Build(const RTreeOptions& options,
                           const std::vector<UncertainObject>& objects);

  /// Wraps an existing tree over \p objects — typically one mounted with
  /// RTree::OpenPaged (built with PTIOptions fanout and saved via
  /// SavePaged). Node catalogs are a pure function of tree shape + object
  /// catalogs, so they are recomputed here rather than serialized; the
  /// resulting PTI prunes (and answers) identically to the one the file
  /// was saved from. Fails when a leaf id falls outside \p objects or the
  /// catalogs do not share one ladder.
  static Result<PTI> Attach(RTree tree,
                            const std::vector<UncertainObject>& objects);

  /// Inserts one object region keyed by its *index into the objects
  /// vector*. Node catalogs become stale until RefreshCatalogs.
  void Insert(const Rect& region, ObjectId obj_index);

  /// Removes the entry matching (region, obj_index); returns false when no
  /// such entry exists. Node catalogs become stale until RefreshCatalogs.
  bool Remove(const Rect& region, ObjectId obj_index);

  /// Recomputes every node catalog bottom-up over the current tree shape
  /// against \p objects (the same vector the stored indexes point into).
  /// O(nodes × ladder); resets updates_since_build to 0. Fails when a
  /// referenced object lacks a catalog or ladders disagree.
  Status RefreshCatalogs(const std::vector<UncertainObject>& objects);

  /// Tree mutations since the last Build/RefreshCatalogs-free rebuild;
  /// drives the engine's rebuild-on-threshold policy.
  size_t updates_since_build() const { return updates_since_build_; }

  /// Traverses the tree restricted to \p range (the expanded or p-expanded
  /// query rectangle).
  ///
  /// \p prune_node is called for every interior-or-leaf node's child/entry
  /// subtree as prune_node(mbr, catalog) — where catalog is the merged
  /// subtree catalog — and returning true skips the subtree without
  /// touching it. \p visit receives the index (into the build-time objects
  /// vector) of every surviving leaf entry.
  /// Thread safety: safe to call concurrently with other const member
  /// functions (the traversal stack is a local; the index keeps no mutable
  /// query-time state, and a paged tree's buffer locks internally).
  /// Caller-provided \p stats must not be shared between concurrent
  /// queries; on a paged tree it also collects buffer hit/miss counts.
  template <typename PruneNode, typename Visit>
  void Query(const Rect& range, PruneNode&& prune_node, Visit&& visit,
             IndexStats* stats = nullptr) const {
    const int32_t root = tree_.root();
    if (root < 0 || range.IsEmpty()) return;
    std::vector<int32_t> stack;
    stack.reserve(32);
    if (tree_.bounds().Intersects(range) &&
        !prune_node(tree_.bounds(), node_catalogs_[static_cast<size_t>(root)])) {
      stack.push_back(root);
    }
    while (!stack.empty()) {
      const int32_t nid = stack.back();
      stack.pop_back();
      // One NodeRef per node: in paged mode this pins the page once for
      // the whole entry scan instead of re-pinning per accessor call.
      const NodeRef node = tree_.ReadNode(nid, stats);
      if (stats != nullptr) {
        ++stats->node_accesses;
        if (node.leaf()) ++stats->leaf_accesses;
      }
      const size_t n = node.count();
      if (node.leaf()) {
        for (size_t i = 0; i < n; ++i) {
          if (!node.mbr(i).Intersects(range)) continue;
          if (stats != nullptr) ++stats->candidates;
          visit(node.id(i));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          const Rect mbr = node.mbr(i);
          if (!mbr.Intersects(range)) continue;
          const int32_t child = node.child(i);
          if (prune_node(mbr, node_catalogs_[static_cast<size_t>(child)])) {
            continue;
          }
          stack.push_back(child);
        }
      }
    }
  }

  /// The underlying packed R-tree (for stats and validation).
  const RTree& tree() const { return tree_; }

  /// Merged catalog of one node (test hook).
  const UCatalog& node_catalog(int32_t node) const {
    return node_catalogs_[static_cast<size_t>(node)];
  }

  /// Number of indexed objects.
  size_t size() const { return tree_.size(); }

 private:
  PTI(RTree tree, std::vector<UCatalog> node_catalogs)
      : tree_(std::move(tree)), node_catalogs_(std::move(node_catalogs)) {}

  RTree tree_;
  std::vector<UCatalog> node_catalogs_;  // indexed by node id
  size_t updates_since_build_ = 0;
};

/// RTreeOptions for a PTI whose catalogs have \p catalog_size values: each
/// entry is charged one 4-double box per catalog value on top of the base
/// entry, per §5.3.
RTreeOptions PTIOptions(size_t page_size_bytes, size_t catalog_size);

}  // namespace ilq

#endif  // ILQ_INDEX_PTI_H_
