#include "index/grid_index.h"

#include <algorithm>

namespace ilq {

Result<GridIndex> GridIndex::Create(const Rect& space, size_t cells_x,
                                    size_t cells_y) {
  if (space.IsEmpty() || space.Width() <= 0.0 || space.Height() <= 0.0) {
    return Status::InvalidArgument("grid space must have positive area");
  }
  if (cells_x == 0 || cells_y == 0) {
    return Status::InvalidArgument("grid must have at least 1x1 cells");
  }
  return GridIndex(space, cells_x, cells_y);
}

std::pair<size_t, size_t> GridIndex::CellOf(const Point& p) const {
  const double fx = (p.x - space_.xmin) / cell_w_;
  const double fy = (p.y - space_.ymin) / cell_h_;
  const size_t ix = std::min(
      cells_x_ - 1,
      static_cast<size_t>(std::max(0.0, fx)));
  const size_t iy = std::min(
      cells_y_ - 1,
      static_cast<size_t>(std::max(0.0, fy)));
  return {ix, iy};
}

void GridIndex::Insert(const Rect& box, ObjectId id) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    items_[slot] = {box, id, true};
  } else {
    slot = static_cast<uint32_t>(items_.size());
    items_.push_back({box, id, true});
  }
  ++live_count_;
  const Rect clipped = box.Intersection(space_);
  if (clipped.IsEmpty()) return;  // outside the space; unreachable by query
  const auto [ix0, iy0] = CellOf(Point(clipped.xmin, clipped.ymin));
  const auto [ix1, iy1] = CellOf(Point(clipped.xmax, clipped.ymax));
  for (size_t iy = iy0; iy <= iy1; ++iy) {
    for (size_t ix = ix0; ix <= ix1; ++ix) {
      cells_[iy * cells_x_ + ix].push_back(slot);
    }
  }
}

bool GridIndex::Remove(const Rect& box, ObjectId id) {
  // Linear scan rather than a cell lookup: items outside the space are
  // registered in no cells, yet must still be removable.
  for (uint32_t slot = 0; slot < items_.size(); ++slot) {
    StoredItem& item = items_[slot];
    if (!item.live || item.id != id || !(item.box == box)) continue;
    const Rect clipped = box.Intersection(space_);
    if (!clipped.IsEmpty()) {
      const auto [ix0, iy0] = CellOf(Point(clipped.xmin, clipped.ymin));
      const auto [ix1, iy1] = CellOf(Point(clipped.xmax, clipped.ymax));
      for (size_t iy = iy0; iy <= iy1; ++iy) {
        for (size_t ix = ix0; ix <= ix1; ++ix) {
          std::vector<uint32_t>& cell = cells_[iy * cells_x_ + ix];
          cell.erase(std::remove(cell.begin(), cell.end(), slot),
                     cell.end());
        }
      }
    }
    item.live = false;
    free_slots_.push_back(slot);
    --live_count_;
    return true;
  }
  return false;
}

std::vector<ObjectId> GridIndex::QueryIds(const Rect& range,
                                          IndexStats* stats) const {
  std::vector<ObjectId> out;
  Query(range, [&out](const Rect&, ObjectId id) { out.push_back(id); },
        stats);
  return out;
}

}  // namespace ilq
