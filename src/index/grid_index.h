// Uniform grid index — the grid-file-style alternative the paper mentions
// alongside the R-tree in §4.3 ([Nievergelt et al. '84]). Used by the
// index-choice ablation bench.

#ifndef ILQ_INDEX_GRID_INDEX_H_
#define ILQ_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "index/index_stats.h"
#include "object/point_object.h"

namespace ilq {

/// \brief A fixed uniform grid over a bounded space.
///
/// Each item is registered in every cell its bounding box overlaps; queries
/// visit the cells overlapping the range and deduplicate via a per-query
/// stamp. Cell directory pages are modelled for the I/O counters: each
/// visited non-empty cell counts as one page access.
class GridIndex {
 public:
  /// Creates a grid of cells_x × cells_y cells over \p space. Fails when the
  /// space is empty or a cell count is zero.
  static Result<GridIndex> Create(const Rect& space, size_t cells_x,
                                  size_t cells_y);

  /// Registers an item; boxes extending beyond the space are clamped to it.
  void Insert(const Rect& box, ObjectId id);

  /// Visits every item whose box intersects \p range, exactly once.
  template <typename Visit>
  void Query(const Rect& range, Visit&& visit,
             IndexStats* stats = nullptr) const {
    const Rect clipped = range.Intersection(space_);
    if (clipped.IsEmpty()) return;
    if (stats != nullptr) ++stats->node_accesses;  // the cell directory
    const auto [ix0, iy0] = CellOf(Point(clipped.xmin, clipped.ymin));
    const auto [ix1, iy1] = CellOf(Point(clipped.xmax, clipped.ymax));
    ++query_stamp_;
    for (size_t iy = iy0; iy <= iy1; ++iy) {
      for (size_t ix = ix0; ix <= ix1; ++ix) {
        const std::vector<uint32_t>& cell = cells_[iy * cells_x_ + ix];
        if (cell.empty()) continue;
        if (stats != nullptr) {
          ++stats->node_accesses;
          ++stats->leaf_accesses;
        }
        for (uint32_t slot : cell) {
          if (seen_stamp_[slot] == query_stamp_) continue;
          seen_stamp_[slot] = query_stamp_;
          if (items_[slot].box.Intersects(range)) {
            if (stats != nullptr) ++stats->candidates;
            visit(items_[slot].box, items_[slot].id);
          }
        }
      }
    }
  }

  /// Convenience wrapper returning the matching ids.
  std::vector<ObjectId> QueryIds(const Rect& range,
                                 IndexStats* stats = nullptr) const;

  size_t size() const { return items_.size(); }
  size_t cells_x() const { return cells_x_; }
  size_t cells_y() const { return cells_y_; }

 private:
  struct StoredItem {
    Rect box;
    ObjectId id;
  };

  GridIndex(const Rect& space, size_t cx, size_t cy)
      : space_(space),
        cells_x_(cx),
        cells_y_(cy),
        cell_w_(space.Width() / static_cast<double>(cx)),
        cell_h_(space.Height() / static_cast<double>(cy)),
        cells_(cx * cy) {}

  std::pair<size_t, size_t> CellOf(const Point& p) const;

  Rect space_;
  size_t cells_x_;
  size_t cells_y_;
  double cell_w_;
  double cell_h_;
  std::vector<StoredItem> items_;
  std::vector<std::vector<uint32_t>> cells_;  // slots into items_
  mutable std::vector<uint64_t> seen_stamp_;  // per-item dedup stamps
  mutable uint64_t query_stamp_ = 0;
};

}  // namespace ilq

#endif  // ILQ_INDEX_GRID_INDEX_H_
