// Uniform grid index — the grid-file-style alternative the paper mentions
// alongside the R-tree in §4.3 ([Nievergelt et al. '84]). Used by the
// index-choice ablation bench.

#ifndef ILQ_INDEX_GRID_INDEX_H_
#define ILQ_INDEX_GRID_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "index/index_stats.h"
#include "object/point_object.h"

namespace ilq {

/// \brief A fixed uniform grid over a bounded space.
///
/// Each item is registered in every cell its bounding box overlaps; queries
/// visit the cells overlapping the range, gather the overlapping slots and
/// deduplicate them locally (sort + unique), so const queries are safe to
/// run concurrently. Cell directory pages are modelled for the I/O
/// counters: each visited non-empty cell counts as one page access.
class GridIndex {
 public:
  /// Creates a grid of cells_x × cells_y cells over \p space. Fails when the
  /// space is empty or a cell count is zero.
  static Result<GridIndex> Create(const Rect& space, size_t cells_x,
                                  size_t cells_y);

  /// Registers an item; boxes extending beyond the space are clamped to it.
  /// Slots freed by Remove are recycled before the item vector grows.
  void Insert(const Rect& box, ObjectId id);

  /// Removes one item matching both \p box and \p id, unregistering it from
  /// every cell it overlaps. Returns false when no such item exists. With
  /// duplicates, the earliest-inserted surviving match is removed.
  bool Remove(const Rect& box, ObjectId id);

  /// Visits every item whose box intersects \p range, exactly once (in
  /// insertion order).
  ///
  /// Thread safety: safe to call concurrently with other const member
  /// functions (dedup state is local to the call). Caller-provided
  /// \p stats must not be shared between concurrent queries.
  template <typename Visit>
  void Query(const Rect& range, Visit&& visit,
             IndexStats* stats = nullptr) const {
    const Rect clipped = range.Intersection(space_);
    if (clipped.IsEmpty()) return;
    if (stats != nullptr) ++stats->node_accesses;  // the cell directory
    const auto [ix0, iy0] = CellOf(Point(clipped.xmin, clipped.ymin));
    const auto [ix1, iy1] = CellOf(Point(clipped.xmax, clipped.ymax));
    std::vector<uint32_t> slots;
    for (size_t iy = iy0; iy <= iy1; ++iy) {
      for (size_t ix = ix0; ix <= ix1; ++ix) {
        const std::vector<uint32_t>& cell = cells_[iy * cells_x_ + ix];
        if (cell.empty()) continue;
        if (stats != nullptr) {
          ++stats->node_accesses;
          ++stats->leaf_accesses;
        }
        slots.insert(slots.end(), cell.begin(), cell.end());
      }
    }
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    for (uint32_t slot : slots) {
      // Dead slots are unregistered from their cells on Remove, so they
      // never appear here; no liveness check needed.
      if (items_[slot].box.Intersects(range)) {
        if (stats != nullptr) ++stats->candidates;
        visit(items_[slot].box, items_[slot].id);
      }
    }
  }

  /// Convenience wrapper returning the matching ids.
  std::vector<ObjectId> QueryIds(const Rect& range,
                                 IndexStats* stats = nullptr) const;

  /// Number of live (inserted and not removed) items.
  size_t size() const { return live_count_; }
  size_t cells_x() const { return cells_x_; }
  size_t cells_y() const { return cells_y_; }

 private:
  struct StoredItem {
    Rect box;
    ObjectId id;
    bool live = true;
  };

  GridIndex(const Rect& space, size_t cx, size_t cy)
      : space_(space),
        cells_x_(cx),
        cells_y_(cy),
        cell_w_(space.Width() / static_cast<double>(cx)),
        cell_h_(space.Height() / static_cast<double>(cy)),
        cells_(cx * cy) {}

  std::pair<size_t, size_t> CellOf(const Point& p) const;

  Rect space_;
  size_t cells_x_;
  size_t cells_y_;
  double cell_w_;
  double cell_h_;
  size_t live_count_ = 0;
  std::vector<StoredItem> items_;
  std::vector<uint32_t> free_slots_;          // recycled by Remove
  std::vector<std::vector<uint32_t>> cells_;  // slots into items_
};

}  // namespace ilq

#endif  // ILQ_INDEX_GRID_INDEX_H_
