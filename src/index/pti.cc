#include "index/pti.h"

namespace ilq {

RTreeOptions PTIOptions(size_t page_size_bytes, size_t catalog_size) {
  RTreeOptions options;
  options.page_size_bytes = page_size_bytes;
  options.extra_entry_bytes = catalog_size * 4 * sizeof(double);
  return options;
}

namespace {

// Validates that every object referenced by the tree carries a U-catalog on
// one shared ladder; returns the prototype catalog (for EmptyLike).
Result<const UCatalog*> SharedLadderProto(
    const std::vector<UncertainObject>& objects) {
  const UCatalog* proto = objects.front().catalog();
  if (proto == nullptr) {
    return Status::FailedPrecondition(
        "PTI requires objects with pre-built U-catalogs");
  }
  for (const UncertainObject& obj : objects) {
    const UCatalog* cat = obj.catalog();
    if (cat == nullptr) {
      return Status::FailedPrecondition(
          "object " + std::to_string(obj.id()) + " has no U-catalog");
    }
    if (!cat->SameValues(*proto)) {
      return Status::FailedPrecondition(
          "all U-catalogs must share one value ladder");
    }
  }
  return proto;
}

// Bottom-up merge of subtree catalogs over the current tree shape. Nodes
// are processed children-first via an explicit post-order walk. Sized by
// the node *arena* (ids of recycled slots stay valid array indexes and
// keep empty catalogs — they are never reached by a traversal). Works over
// NodeRef so a disk-resident tree pins each page once per visit; fails on
// a leaf id outside \p objects (cannot happen for a tree this process
// built, but Attach runs over mounted files).
Result<std::vector<UCatalog>> ComputeNodeCatalogs(
    const RTree& tree, const std::vector<UncertainObject>& objects,
    const UCatalog& proto) {
  std::vector<UCatalog> node_catalogs(tree.arena_size(),
                                      UCatalog::EmptyLike(proto));
  if (tree.root() < 0) return node_catalogs;
  struct Frame {
    int32_t node;
    bool expanded;
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root(), false});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const NodeRef node = tree.ReadNode(f.node);
    if (node.leaf()) {
      UCatalog& cat = node_catalogs[static_cast<size_t>(f.node)];
      for (size_t i = 0; i < node.count(); ++i) {
        const size_t obj_idx = node.id(i);
        if (obj_idx >= objects.size()) {
          return Status::InvalidArgument(
              "PTI leaf references object " + std::to_string(obj_idx) +
              " beyond the catalog (" + std::to_string(objects.size()) +
              " objects)");
        }
        cat.MergeFrom(*objects[obj_idx].catalog());
      }
      continue;
    }
    if (!f.expanded) {
      stack.push_back({f.node, true});
      for (size_t i = 0; i < node.count(); ++i) {
        stack.push_back({node.child(i), false});
      }
      continue;
    }
    UCatalog& cat = node_catalogs[static_cast<size_t>(f.node)];
    for (size_t i = 0; i < node.count(); ++i) {
      cat.MergeFrom(node_catalogs[static_cast<size_t>(node.child(i))]);
    }
  }
  return node_catalogs;
}

}  // namespace

Result<PTI> PTI::Build(const RTreeOptions& options,
                       const std::vector<UncertainObject>& objects) {
  if (objects.empty()) {
    return Status::InvalidArgument("PTI requires at least one object");
  }
  Result<const UCatalog*> proto = SharedLadderProto(objects);
  if (!proto.ok()) return proto.status();
  std::vector<RTree::Item> items;
  items.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    items.push_back({objects[i].region(), static_cast<ObjectId>(i)});
  }

  Result<RTree> built = RTree::BulkLoad(options, std::move(items));
  if (!built.ok()) return built.status();
  RTree tree = std::move(built).ValueOrDie();

  Result<std::vector<UCatalog>> node_catalogs =
      ComputeNodeCatalogs(tree, objects, **proto);
  if (!node_catalogs.ok()) return node_catalogs.status();
  return PTI(std::move(tree), std::move(node_catalogs).ValueOrDie());
}

Result<PTI> PTI::Attach(RTree tree,
                        const std::vector<UncertainObject>& objects) {
  if (tree.size() == 0) {
    return PTI(std::move(tree), {});
  }
  if (objects.empty()) {
    return Status::FailedPrecondition(
        "PTI tree indexes entries but the objects vector is empty");
  }
  Result<const UCatalog*> proto = SharedLadderProto(objects);
  if (!proto.ok()) return proto.status();
  Result<std::vector<UCatalog>> node_catalogs =
      ComputeNodeCatalogs(tree, objects, **proto);
  if (!node_catalogs.ok()) return node_catalogs.status();
  return PTI(std::move(tree), std::move(node_catalogs).ValueOrDie());
}

void PTI::Insert(const Rect& region, ObjectId obj_index) {
  tree_.Insert(region, obj_index);
  ++updates_since_build_;
}

bool PTI::Remove(const Rect& region, ObjectId obj_index) {
  if (!tree_.Remove(region, obj_index)) return false;
  ++updates_since_build_;
  return true;
}

Status PTI::RefreshCatalogs(const std::vector<UncertainObject>& objects) {
  if (tree_.size() == 0) {
    node_catalogs_.clear();
    updates_since_build_ = 0;
    return Status::OK();
  }
  if (objects.empty()) {
    return Status::FailedPrecondition(
        "PTI indexes entries but the objects vector is empty");
  }
  Result<const UCatalog*> proto = SharedLadderProto(objects);
  if (!proto.ok()) return proto.status();
  Result<std::vector<UCatalog>> node_catalogs =
      ComputeNodeCatalogs(tree_, objects, **proto);
  if (!node_catalogs.ok()) return node_catalogs.status();
  node_catalogs_ = std::move(node_catalogs).ValueOrDie();
  updates_since_build_ = 0;
  return Status::OK();
}

}  // namespace ilq
