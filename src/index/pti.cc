#include "index/pti.h"

namespace ilq {

RTreeOptions PTIOptions(size_t page_size_bytes, size_t catalog_size) {
  RTreeOptions options;
  options.page_size_bytes = page_size_bytes;
  options.extra_entry_bytes = catalog_size * 4 * sizeof(double);
  return options;
}

Result<PTI> PTI::Build(const RTreeOptions& options,
                       const std::vector<UncertainObject>& objects) {
  if (objects.empty()) {
    return Status::InvalidArgument("PTI requires at least one object");
  }
  const UCatalog* proto = objects.front().catalog();
  if (proto == nullptr) {
    return Status::FailedPrecondition(
        "PTI requires objects with pre-built U-catalogs");
  }
  std::vector<RTree::Item> items;
  items.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    const UCatalog* cat = objects[i].catalog();
    if (cat == nullptr) {
      return Status::FailedPrecondition(
          "object " + std::to_string(objects[i].id()) + " has no U-catalog");
    }
    if (!cat->SameValues(*proto)) {
      return Status::FailedPrecondition(
          "all U-catalogs must share one value ladder");
    }
    items.push_back({objects[i].region(), static_cast<ObjectId>(i)});
  }

  Result<RTree> built = RTree::BulkLoad(options, std::move(items));
  if (!built.ok()) return built.status();
  RTree tree = std::move(built).ValueOrDie();

  // Bottom-up merge of subtree catalogs. Nodes are processed children-first
  // via an explicit post-order walk.
  std::vector<UCatalog> node_catalogs(tree.node_count(),
                                      UCatalog::EmptyLike(*proto));
  struct Frame {
    int32_t node;
    bool expanded;
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root(), false});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (tree.IsLeaf(f.node)) {
      UCatalog& cat = node_catalogs[static_cast<size_t>(f.node)];
      for (size_t i = 0; i < tree.EntryCount(f.node); ++i) {
        const size_t obj_idx = tree.EntryId(f.node, i);
        cat.MergeFrom(*objects[obj_idx].catalog());
      }
      continue;
    }
    if (!f.expanded) {
      stack.push_back({f.node, true});
      for (size_t i = 0; i < tree.EntryCount(f.node); ++i) {
        stack.push_back({tree.EntryChild(f.node, i), false});
      }
      continue;
    }
    UCatalog& cat = node_catalogs[static_cast<size_t>(f.node)];
    for (size_t i = 0; i < tree.EntryCount(f.node); ++i) {
      cat.MergeFrom(
          node_catalogs[static_cast<size_t>(tree.EntryChild(f.node, i))]);
    }
  }
  return PTI(std::move(tree), std::move(node_catalogs));
}

}  // namespace ilq
