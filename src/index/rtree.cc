#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "storage/page_file.h"

namespace ilq {

size_t MaxEntriesForPage(const RTreeOptions& options) {
  if (options.max_entries_override > 0) return options.max_entries_override;
  const size_t entry = kNodeEntryBytes + options.extra_entry_bytes;
  if (options.page_size_bytes <= kNodePageHeaderBytes) return 0;
  return (options.page_size_bytes - kNodePageHeaderBytes) / entry;
}

Result<RTree> RTree::Create(const RTreeOptions& options) {
  const size_t max_entries = MaxEntriesForPage(options);
  if (max_entries < 2) {
    return Status::InvalidArgument(
        "page budget too small: fewer than 2 entries fit per node");
  }
  if (options.min_fill_fraction <= 0.0 || options.min_fill_fraction > 0.5) {
    return Status::InvalidArgument(
        "min_fill_fraction must be in (0, 0.5]");
  }
  size_t min_entries = static_cast<size_t>(
      std::floor(options.min_fill_fraction * static_cast<double>(max_entries)));
  min_entries = std::max<size_t>(1, min_entries);
  RTree tree(max_entries, min_entries);
  tree.page_size_bytes_ = options.page_size_bytes;
  tree.extra_entry_bytes_ = options.extra_entry_bytes;
  return tree;
}

int32_t RTree::NewNode(bool leaf) {
  return store_.Allocate(leaf, max_entries_ + 1);
}

void RTree::FreeNode(int32_t nid) { store_.Free(nid); }

Rect RTree::NodeMbr(int32_t nid) const { return store_.Read(nid).NodeMbr(); }

Result<RTree> RTree::BulkLoad(const RTreeOptions& options,
                              std::vector<Item> items) {
  Result<RTree> made = Create(options);
  if (!made.ok()) return made.status();
  RTree tree = std::move(made).ValueOrDie();
  tree.item_count_ = items.size();
  if (items.empty()) return tree;

  // Level 0: sort-tile-recursive packing of the leaf level.
  //
  // STR: with N items and capacity M, S = ceil(sqrt(N / M)) vertical slices
  // are cut on x; within each slice items are packed into leaves by y.
  const size_t cap = tree.max_entries_;
  struct Pending {
    Rect mbr;
    int32_t node;
  };

  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.box.Center().x < b.box.Center().x;
  });
  const size_t n = items.size();
  const size_t leaf_count = (n + cap - 1) / cap;
  const size_t slices = static_cast<size_t>(std::ceil(
      std::sqrt(static_cast<double>(leaf_count))));
  const size_t slice_size = (n + slices - 1) / slices;

  std::vector<Pending> level;
  for (size_t s = 0; s < slices; ++s) {
    const size_t lo = s * slice_size;
    if (lo >= n) break;
    const size_t hi = std::min(lo + slice_size, n);
    std::sort(items.begin() + static_cast<ptrdiff_t>(lo),
              items.begin() + static_cast<ptrdiff_t>(hi),
              [](const Item& a, const Item& b) {
                return a.box.Center().y < b.box.Center().y;
              });
    for (size_t i = lo; i < hi; i += cap) {
      const size_t end = std::min(i + cap, hi);
      const int32_t nid = tree.NewNode(/*leaf=*/true);
      Rect mbr = Rect::Empty();
      for (size_t k = i; k < end; ++k) {
        Entry e;
        e.mbr = items[k].box;
        e.id = items[k].id;
        tree.store_.node(nid).entries.push_back(e);
        mbr = mbr.Union(items[k].box);
      }
      level.push_back({mbr, nid});
    }
  }

  // Upper levels: repeat STR packing over node MBR centres.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [](const Pending& a, const Pending& b) {
                return a.mbr.Center().x < b.mbr.Center().x;
              });
    const size_t ln = level.size();
    const size_t parent_count = (ln + cap - 1) / cap;
    const size_t lslices = static_cast<size_t>(std::ceil(
        std::sqrt(static_cast<double>(parent_count))));
    const size_t lslice_size = (ln + lslices - 1) / lslices;
    std::vector<Pending> next;
    for (size_t s = 0; s < lslices; ++s) {
      const size_t lo = s * lslice_size;
      if (lo >= ln) break;
      const size_t hi = std::min(lo + lslice_size, ln);
      std::sort(level.begin() + static_cast<ptrdiff_t>(lo),
                level.begin() + static_cast<ptrdiff_t>(hi),
                [](const Pending& a, const Pending& b) {
                  return a.mbr.Center().y < b.mbr.Center().y;
                });
      for (size_t i = lo; i < hi; i += cap) {
        const size_t end = std::min(i + cap, hi);
        const int32_t nid = tree.NewNode(/*leaf=*/false);
        Rect mbr = Rect::Empty();
        for (size_t k = i; k < end; ++k) {
          Entry e;
          e.mbr = level[k].mbr;
          e.child = level[k].node;
          tree.store_.node(nid).entries.push_back(e);
          mbr = mbr.Union(level[k].mbr);
        }
        next.push_back({mbr, nid});
      }
    }
    level = std::move(next);
  }
  tree.root_ = level.front().node;
  return tree;
}

Status RTree::SavePaged(const std::string& path) const {
  // The on-disk page must physically hold max_entries 36-byte entries plus
  // the 16-byte node header even when extra_entry_bytes inflated the
  // *logical* entry cost (then the physical need is smaller than the
  // budget) or an override forced a fanout past the budget (then we grow).
  const size_t need =
      kNodePageHeaderBytes + max_entries_ * kNodeEntryBytes;
  const size_t page_size =
      std::max({page_size_bytes_, need, static_cast<size_t>(kMinPageSize)});
  if (page_size > kMaxPageSize) {
    return Status::InvalidArgument(
        "fanout " + std::to_string(max_entries_) +
        " needs a page larger than the ILQP maximum");
  }
  if (max_entries_ > std::numeric_limits<uint16_t>::max()) {
    return Status::InvalidArgument(
        "fanout exceeds the ILQP entry-count field (u16)");
  }

  // Pass 1: compact node ids in pre-order (root -> 0; children numbered in
  // entry order before later siblings' subtrees). Deterministic, and skips
  // recycled arena slots so the file has no dead pages.
  std::vector<int32_t> order;          // new id -> old id
  std::vector<int32_t> remap;          // old id -> new id
  if (root_ >= 0) {
    order.reserve(store_.live_count());
    remap.assign(store_.size(), -1);
    std::vector<int32_t> stack{root_};
    while (!stack.empty()) {
      const int32_t old_id = stack.back();
      stack.pop_back();
      remap[static_cast<size_t>(old_id)] =
          static_cast<int32_t>(order.size());
      order.push_back(old_id);
      const NodeRef node = store_.Read(old_id);
      if (!node.leaf()) {
        // Reverse push so the pre-order visit follows entry order.
        for (size_t i = node.count(); i > 0; --i) {
          stack.push_back(node.child(i - 1));
        }
      }
    }
  }

  Result<PageFileWriter> made = PageFileWriter::Create(path, page_size);
  if (!made.ok()) return made.status();
  PageFileWriter writer = std::move(made).ValueOrDie();

  // Pass 2: encode pages in new-id order.
  std::vector<uint8_t> page(page_size);
  for (const int32_t old_id : order) {
    const NodeRef node = store_.Read(old_id);
    std::fill(page.begin(), page.end(), 0);
    page[kNodePageLeafOffset] = node.leaf() ? 1 : 0;
    StoreLe16(page.data() + kNodePageCountOffset,
              static_cast<uint16_t>(node.count()));
    for (size_t i = 0; i < node.count(); ++i) {
      uint8_t* e = page.data() + kNodePageHeaderBytes + i * kNodeEntryBytes;
      const Rect mbr = node.mbr(i);
      StoreLeF64(e, mbr.xmin);
      StoreLeF64(e + 8, mbr.xmax);
      StoreLeF64(e + 16, mbr.ymin);
      StoreLeF64(e + 24, mbr.ymax);
      const uint32_t ref =
          node.leaf()
              ? static_cast<uint32_t>(node.id(i))
              : static_cast<uint32_t>(
                    remap[static_cast<size_t>(node.child(i))]);
      StoreLe32(e + kNodeEntryChildOffset, ref);
    }
    ILQ_RETURN_NOT_OK(writer.WritePage(page));
  }

  PageFileHeader header;
  header.page_size = static_cast<uint32_t>(page_size);
  header.page_count = static_cast<uint32_t>(order.size());
  header.root = order.empty() ? -1 : 0;
  header.height = static_cast<uint32_t>(height());
  header.item_count = item_count_;
  header.max_entries = static_cast<uint32_t>(max_entries_);
  header.min_entries = static_cast<uint32_t>(min_entries_);
  header.extra_entry_bytes = static_cast<uint32_t>(extra_entry_bytes_);
  return writer.Finish(header);
}

Result<RTree> RTree::OpenPaged(const std::string& path,
                               const PagedOpenOptions& options) {
  Result<std::shared_ptr<const PageFile>> opened = PageFile::Open(path);
  if (!opened.ok()) return opened.status();
  std::shared_ptr<const PageFile> file = std::move(opened).ValueOrDie();
  const PageFileHeader& h = file->header();
  if (h.page_count > 0 &&
      (h.page_size < kNodePageHeaderBytes + kNodeEntryBytes ||
       h.max_entries >
           (h.page_size - kNodePageHeaderBytes) / kNodeEntryBytes)) {
    return Status::InvalidArgument(
        "paged index: max_entries " + std::to_string(h.max_entries) +
        " cannot fit a " + std::to_string(h.page_size) + "-byte page");
  }
  if (options.deep_verify) {
    ILQ_RETURN_NOT_OK(ValidatePagedTree(*file, options.max_leaf_id));
  }

  RTree tree(std::max<size_t>(h.max_entries, 2),
             std::max<size_t>(h.min_entries, 1));
  tree.page_size_bytes_ = h.page_size;
  tree.extra_entry_bytes_ = h.extra_entry_bytes;
  tree.item_count_ = h.item_count;
  tree.root_ = h.root;
  tree.store_ = NodeStore::OpenPaged(std::move(file),
                                     options.buffer_pool_bytes);
  return tree;
}

int32_t RTree::ChooseLeaf(const Rect& box, std::vector<int32_t>* path) const {
  int32_t nid = root_;
  for (;;) {
    path->push_back(nid);
    const Node& node = store_.node(nid);
    if (node.leaf) return nid;
    // Least area enlargement, ties by smallest area (Guttman).
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    int32_t best_child = -1;
    for (const Entry& e : node.entries) {
      const double area = e.mbr.Area();
      const double enlarged = e.mbr.Union(box).Area() - area;
      if (enlarged < best_enlarge ||
          (enlarged == best_enlarge && area < best_area)) {
        best_enlarge = enlarged;
        best_area = area;
        best_child = e.child;
      }
    }
    nid = best_child;
  }
}

int32_t RTree::SplitNode(int32_t nid) {
  // Guttman's quadratic split.
  std::vector<Entry> entries = std::move(store_.node(nid).entries);
  const bool leaf = store_.node(nid).leaf;
  store_.node(nid).entries.clear();
  const int32_t sibling = NewNode(leaf);

  // PickSeeds: pair wasting the most area.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = entries[i].mbr.Union(entries[j].mbr).Area() -
                           entries[i].mbr.Area() - entries[j].mbr.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Node& left = store_.node(nid);
  Node& right = store_.node(sibling);
  Rect left_mbr = entries[seed_a].mbr;
  Rect right_mbr = entries[seed_b].mbr;
  left.entries.push_back(entries[seed_a]);
  right.entries.push_back(entries[seed_b]);

  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    // Force-assign to meet the minimum fill requirement.
    if (left.entries.size() + remaining == min_entries_) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          left.entries.push_back(entries[i]);
          left_mbr = left_mbr.Union(entries[i].mbr);
          assigned[i] = true;
        }
      }
      break;
    }
    if (right.entries.size() + remaining == min_entries_) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          right.entries.push_back(entries[i]);
          right_mbr = right_mbr.Union(entries[i].mbr);
          assigned[i] = true;
        }
      }
      break;
    }
    // PickNext: entry with maximal preference difference.
    size_t pick = 0;
    double best_diff = -1.0;
    double d_left_pick = 0.0;
    double d_right_pick = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      const double dl = left_mbr.Union(entries[i].mbr).Area() -
                        left_mbr.Area();
      const double dr = right_mbr.Union(entries[i].mbr).Area() -
                        right_mbr.Area();
      const double diff = std::abs(dl - dr);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d_left_pick = dl;
        d_right_pick = dr;
      }
    }
    assigned[pick] = true;
    --remaining;
    const bool to_left =
        d_left_pick < d_right_pick ||
        (d_left_pick == d_right_pick &&
         left.entries.size() <= right.entries.size());
    if (to_left) {
      left.entries.push_back(entries[pick]);
      left_mbr = left_mbr.Union(entries[pick].mbr);
    } else {
      right.entries.push_back(entries[pick]);
      right_mbr = right_mbr.Union(entries[pick].mbr);
    }
  }
  return sibling;
}

void RTree::AdjustTree(std::vector<int32_t>& path, int32_t split_sibling) {
  // Walk back up the insertion path refreshing MBRs and propagating splits.
  while (path.size() > 1) {
    const int32_t child = path.back();
    path.pop_back();
    const int32_t parent = path.back();
    Node& pnode = store_.node(parent);
    for (Entry& e : pnode.entries) {
      if (e.child == child) {
        e.mbr = NodeMbr(child);
        break;
      }
    }
    if (split_sibling >= 0) {
      Entry e;
      e.mbr = NodeMbr(split_sibling);
      e.child = split_sibling;
      pnode.entries.push_back(e);
      split_sibling =
          pnode.entries.size() > max_entries_ ? SplitNode(parent) : -1;
    }
  }
  // Root level: grow the tree if the root itself split.
  if (split_sibling >= 0) {
    const int32_t old_root = path.back();
    const int32_t new_root = NewNode(/*leaf=*/false);
    Entry a;
    a.mbr = NodeMbr(old_root);
    a.child = old_root;
    Entry b;
    b.mbr = NodeMbr(split_sibling);
    b.child = split_sibling;
    Node& rnode = store_.node(new_root);
    rnode.entries.push_back(a);
    rnode.entries.push_back(b);
    root_ = new_root;
  }
}

void RTree::Insert(const Rect& box, ObjectId id) {
  ILQ_CHECK(!is_paged(), "disk-resident R-tree is read-only");
  ILQ_CHECK(!box.IsEmpty(), "cannot index an empty rectangle");
  ++item_count_;
  if (root_ < 0) {
    root_ = NewNode(/*leaf=*/true);
  }
  std::vector<int32_t> path;
  const int32_t leaf = ChooseLeaf(box, &path);
  Entry e;
  e.mbr = box;
  e.id = id;
  Node& lnode = store_.node(leaf);
  lnode.entries.push_back(e);
  const int32_t sibling =
      lnode.entries.size() > max_entries_ ? SplitNode(leaf) : -1;
  AdjustTree(path, sibling);
}

bool RTree::FindLeaf(int32_t nid, const Rect& box, ObjectId id,
                     std::vector<int32_t>* path) const {
  path->push_back(nid);
  const Node& node = store_.node(nid);
  if (node.leaf) {
    for (const Entry& e : node.entries) {
      if (e.id == id && e.mbr == box) return true;
    }
  } else {
    for (const Entry& e : node.entries) {
      if (e.mbr.ContainsRect(box) && FindLeaf(e.child, box, id, path)) {
        return true;
      }
    }
  }
  path->pop_back();
  return false;
}

void RTree::CondenseTree(std::vector<int32_t>& path) {
  // Items from dissolved nodes, reinserted at the end. Interior subtrees
  // are flattened to leaf items — simpler than level-preserving reinsertion
  // and equivalent for correctness.
  std::vector<Entry> orphans;
  auto collect_subtree = [&](int32_t start) {
    std::vector<int32_t> stack{start};
    while (!stack.empty()) {
      const int32_t cur = stack.back();
      stack.pop_back();
      Node& node = store_.node(cur);
      for (const Entry& e : node.entries) {
        if (node.leaf) {
          orphans.push_back(e);
        } else {
          stack.push_back(e.child);
        }
      }
      FreeNode(cur);
    }
  };

  while (path.size() > 1) {
    const int32_t child = path.back();
    path.pop_back();
    const int32_t parent = path.back();
    Node& pnode = store_.node(parent);
    const Node& cnode = store_.node(child);
    auto it = std::find_if(
        pnode.entries.begin(), pnode.entries.end(),
        [child](const Entry& e) { return e.child == child; });
    ILQ_CHECK(it != pnode.entries.end(), "parent lost its child entry");
    if (cnode.entries.size() < min_entries_) {
      pnode.entries.erase(it);
      collect_subtree(child);
    } else {
      it->mbr = NodeMbr(child);
    }
  }

  // Shrink the root: an interior root with one child hands over to it; an
  // empty tree resets entirely.
  while (root_ >= 0 && !store_.node(root_).leaf &&
         store_.node(root_).entries.size() == 1) {
    const int32_t child = store_.node(root_).entries[0].child;
    FreeNode(root_);
    root_ = child;
  }
  if (root_ >= 0 && store_.node(root_).leaf &&
      store_.node(root_).entries.empty()) {
    FreeNode(root_);
    root_ = -1;
  }

  // Reinsert orphaned items (item_count_ is preserved: Insert increments,
  // so pre-decrement here).
  item_count_ -= orphans.size();
  for (const Entry& e : orphans) Insert(e.mbr, e.id);
}

bool RTree::Remove(const Rect& box, ObjectId id) {
  ILQ_CHECK(!is_paged(), "disk-resident R-tree is read-only");
  if (root_ < 0) return false;
  std::vector<int32_t> path;
  if (!FindLeaf(root_, box, id, &path)) return false;
  Node& leaf = store_.node(path.back());
  auto it = std::find_if(leaf.entries.begin(), leaf.entries.end(),
                         [&](const Entry& e) {
                           return e.id == id && e.mbr == box;
                         });
  ILQ_CHECK(it != leaf.entries.end(), "FindLeaf returned a stale leaf");
  leaf.entries.erase(it);
  --item_count_;
  CondenseTree(path);
  return true;
}

std::vector<RTree::Neighbor> RTree::Nearest(const Point& query, size_t k,
                                            IndexStats* stats) const {
  std::vector<Neighbor> result;
  if (root_ < 0 || k == 0) return result;
  // Best-first search: a min-heap of nodes and entries keyed by minimum
  // distance; a node is expanded only if it can still beat the current
  // k-th best answer.
  struct HeapItem {
    double distance;
    int32_t node;    // -1 for leaf entries
    Rect box;        // entry box when node < 0
    ObjectId id;
    bool operator>(const HeapItem& o) const { return distance > o.distance; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  heap.push({0.0, root_, Rect(), 0});
  while (!heap.empty()) {
    const HeapItem top = heap.top();
    heap.pop();
    if (result.size() == k && top.distance > result.back().distance) break;
    if (top.node < 0) {
      result.push_back({top.box, top.id, top.distance});
      if (result.size() > k) result.pop_back();
      continue;
    }
    const NodeRef node = store_.Read(top.node, stats);
    if (stats != nullptr) {
      ++stats->node_accesses;
      if (node.leaf()) ++stats->leaf_accesses;
    }
    const size_t n = node.count();
    for (size_t i = 0; i < n; ++i) {
      const Rect mbr = node.mbr(i);
      const double d = mbr.MinDistanceTo(query);
      if (result.size() == k && d > result.back().distance) continue;
      if (node.leaf()) {
        heap.push({d, -1, mbr, node.id(i)});
        if (stats != nullptr) ++stats->candidates;
      } else {
        heap.push({d, node.child(i), Rect(), 0});
      }
    }
  }
  return result;
}

std::vector<ObjectId> RTree::QueryIds(const Rect& range,
                                      IndexStats* stats) const {
  std::vector<ObjectId> out;
  Query(range, [&out](const Rect&, ObjectId id) { out.push_back(id); },
        stats);
  return out;
}

size_t RTree::height() const {
  if (root_ < 0) return 0;
  // A mounted file carries its height (and validation pinned every leaf to
  // that depth); the arena walks the leftmost spine.
  if (is_paged()) return store_.file()->header().height;
  size_t h = 1;
  int32_t nid = root_;
  for (NodeRef node = store_.Read(nid); !node.leaf();
       node = store_.Read(nid)) {
    nid = node.child(0);
    ++h;
  }
  return h;
}

Rect RTree::bounds() const {
  if (root_ < 0) return Rect::Empty();
  return NodeMbr(root_);
}

Status RTree::ValidateNode(int32_t nid, size_t depth, size_t leaf_depth,
                           size_t* items_seen, size_t* nodes_seen) const {
  ++*nodes_seen;
  const NodeRef node = store_.Read(nid);
  if (node.count() == 0) {
    return Status::Internal("empty node " + std::to_string(nid));
  }
  if (node.count() > max_entries_) {
    return Status::Internal("overfull node " + std::to_string(nid));
  }
  // Non-root nodes must meet the minimum fill (bulk loads may underfill the
  // last node of a level, which is permitted by STR; accept >= 1).
  if (node.leaf()) {
    if (depth != leaf_depth) {
      return Status::Internal("leaves at different depths");
    }
    *items_seen += node.count();
    return Status::OK();
  }
  for (size_t i = 0; i < node.count(); ++i) {
    const int32_t child = node.child(i);
    if (child < 0 || static_cast<size_t>(child) >= store_.size()) {
      return Status::Internal("dangling child pointer");
    }
    const Rect child_mbr = NodeMbr(child);
    if (!node.mbr(i).ContainsRect(child_mbr)) {
      return Status::Internal("entry MBR does not cover child node " +
                              std::to_string(child));
    }
    ILQ_RETURN_NOT_OK(
        ValidateNode(child, depth + 1, leaf_depth, items_seen, nodes_seen));
  }
  return Status::OK();
}

Status RTree::Validate() const {
  if (root_ < 0) {
    if (item_count_ != 0) {
      return Status::Internal("empty tree with non-zero item count");
    }
    return Status::OK();
  }
  size_t items_seen = 0;
  size_t nodes_seen = 0;
  ILQ_RETURN_NOT_OK(
      ValidateNode(root_, 1, height(), &items_seen, &nodes_seen));
  if (items_seen != item_count_) {
    return Status::Internal("item count mismatch: tree holds " +
                            std::to_string(items_seen) + ", expected " +
                            std::to_string(item_count_));
  }
  if (nodes_seen != node_count()) {
    return Status::Internal("node accounting mismatch: reachable " +
                            std::to_string(nodes_seen) + ", live " +
                            std::to_string(node_count()));
  }
  return Status::OK();
}

}  // namespace ilq
