// NodeStore — where R-tree nodes live (ISSUE 8 tentpole).
//
// One abstraction, two backends, one traversal code path:
//
//   * arena  — today's std::vector of in-memory nodes. The default; reads
//     compile down to exactly the pointer chases the pre-refactor RTree
//     did, so RAM-resident engines pay nothing for the abstraction.
//   * paged  — an immutable "ILQP" file (storage/page_file.h) behind a
//     pinning LRU BufferManager. Reads pin the node's page, decode the
//     fixed little-endian entry layout lazily per accessor, and fold the
//     buffer's hit/miss/eviction deltas into the query's IndexStats.
//
// Traversals see either backend through NodeRef, a cheap value type whose
// accessors branch once on the mode. Mutation (Insert/Remove paths) is
// arena-only: paged trees are read-only until dirty-page write-back exists
// (ROADMAP); the engine rejects updates on paged snapshots with a Status
// before any ILQ_CHECK here could trip.
//
// Node page encoding (page offsets; the first 4 bytes are the page
// checksum owned by storage):
//
//   | u32 crc | u8 leaf | u8 reserved | u16 entry_count | 8 reserved |
//   | entry 0 | entry 1 | ...                                        |
//
//   entry  = | f64 xmin | f64 xmax | f64 ymin | f64 ymax | u32 child-or-id |
//   offset of entry i = 16 + i * 36
//
// This matches the simulated cost model exactly (rtree.cc's
// kNodeHeaderBytes = 16 / kEntryBaseBytes = 36), so MaxEntriesForPage and
// the node-access counts of a paged tree agree with the RAM tree built
// from the same options — a load-bearing property for the disk ≡ RAM
// differential suites.
//
// Corruption contract: ValidatePagedTree is a total, iterative check of an
// opened file (no recursion — a forged cyclic child pointer must not be
// able to blow the stack). After a file passes validation, mid-query
// integrity failures (disk I/O error, checksum flip under a live mmap-less
// read) abort via ILQ_CHECK: by then the file has been vouched for, and a
// query path cannot surface Status.

#ifndef ILQ_INDEX_NODE_STORE_H_
#define ILQ_INDEX_NODE_STORE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "geometry/rect.h"
#include "index/index_stats.h"
#include "object/point_object.h"
#include "storage/buffer_manager.h"
#include "storage/page_file.h"

namespace ilq {

/// One R-tree entry as stored in the arena (the pre-refactor RTree::Entry).
struct NodeEntry {
  Rect mbr;
  int32_t child = -1;  // interior: child node id
  ObjectId id = 0;     // leaf: object id
};

/// One arena-resident node.
struct ArenaNode {
  bool leaf = true;
  std::vector<NodeEntry> entries;
};

/// Node page layout constants (see the header comment).
inline constexpr size_t kNodePageHeaderBytes = 16;
inline constexpr size_t kNodePageLeafOffset = 4;
inline constexpr size_t kNodePageCountOffset = 6;
inline constexpr size_t kNodeEntryBytes = 4 * sizeof(double) + 4;
inline constexpr size_t kNodeEntryChildOffset = 4 * sizeof(double);

/// \brief Read-only view of one node, valid for either backend.
///
/// Holds the page pin in paged mode, so the bytes stay alive for the
/// NodeRef's lifetime even if the buffer evicts the page meanwhile. Cheap
/// to copy/move; accessors are index-bounded by count() (callers iterate
/// i < count(), which decode-time validation capped at max_entries).
class NodeRef {
 public:
  bool leaf() const { return leaf_; }
  size_t count() const { return count_; }

  Rect mbr(size_t i) const {
    if (arena_ != nullptr) return arena_->entries[i].mbr;
    const uint8_t* e = entry(i);
    return Rect(LoadLeF64(e), LoadLeF64(e + 8), LoadLeF64(e + 16),
                LoadLeF64(e + 24));
  }

  /// Leaf nodes only: the stored object id.
  ObjectId id(size_t i) const {
    if (arena_ != nullptr) return arena_->entries[i].id;
    return LoadLe32(entry(i) + kNodeEntryChildOffset);
  }

  /// Interior nodes only: the child node id.
  int32_t child(size_t i) const {
    if (arena_ != nullptr) return arena_->entries[i].child;
    return static_cast<int32_t>(LoadLe32(entry(i) + kNodeEntryChildOffset));
  }

  /// Union of every entry MBR (the node's own bounding box).
  Rect NodeMbr() const {
    Rect mbr = Rect::Empty();
    for (size_t i = 0; i < count_; ++i) mbr = mbr.Union(this->mbr(i));
    return mbr;
  }

 private:
  friend class NodeStore;
  explicit NodeRef(const ArenaNode* arena)
      : arena_(arena),
        count_(arena->entries.size()),
        leaf_(arena->leaf) {}
  NodeRef(PageHandle page, uint32_t count, bool leaf)
      : page_(std::move(page)),
        bytes_(page_->data()),
        count_(count),
        leaf_(leaf) {}

  const uint8_t* entry(size_t i) const {
    return bytes_ + kNodePageHeaderBytes + i * kNodeEntryBytes;
  }

  const ArenaNode* arena_ = nullptr;
  PageHandle page_;               // paged mode: keeps the pin
  const uint8_t* bytes_ = nullptr;
  size_t count_ = 0;
  bool leaf_ = false;
};

/// \brief The node container behind RTree: arena by default, or an opened
/// paged file.
///
/// Copying a NodeStore copies the arena (value semantics, exactly as the
/// old std::vector<Node> member) but *shares* the paged state — the file
/// handle and buffer are immutable/thread-safe, so snapshot copies in
/// ApplyUpdates stay cheap and RTree stays copyable.
class NodeStore {
 public:
  NodeStore() = default;

  /// Opens \p file behind a fresh LRU buffer with \p buffer_bytes budget.
  /// Assumes the file already passed ValidatePagedTree (or the caller
  /// accepts ILQ_CHECK aborts on structurally bad nodes).
  static NodeStore OpenPaged(std::shared_ptr<const PageFile> file,
                             size_t buffer_bytes) {
    NodeStore store;
    store.file_ = std::move(file);
    store.buffer_ =
        std::make_shared<BufferManager>(store.file_, buffer_bytes);
    return store;
  }

  bool paged() const { return file_ != nullptr; }

  /// Ids are always < size(): arena slots (live + recycled) or file pages.
  size_t size() const {
    return paged() ? file_->page_count() : nodes_.size();
  }
  /// Live nodes: arena slots minus the free list; every page of a paged
  /// file (the bulk writer never emits dead pages).
  size_t live_count() const {
    return paged() ? file_->page_count() : nodes_.size() - free_nodes_.size();
  }

  /// Reads node \p nid. In paged mode the page pin's hit/miss/eviction
  /// deltas are added to \p stats (node/leaf access counting stays with
  /// the traversal, which knows what it is doing with the node).
  NodeRef Read(int32_t nid, IndexStats* stats = nullptr) const {
    if (!paged()) {
      return NodeRef(&nodes_[static_cast<size_t>(nid)]);
    }
    ILQ_CHECK(nid >= 0 && static_cast<size_t>(nid) < size(),
              "paged node id out of range");
    BufferCounters delta;
    Result<PageHandle> page =
        buffer_->Pin(static_cast<uint32_t>(nid), &delta);
    ILQ_CHECK(page.ok(), page.status().ToString());
    if (stats != nullptr) {
      stats->page_hits += delta.hits;
      stats->page_misses += delta.misses;
      stats->page_evictions += delta.evictions;
    }
    const uint8_t* bytes = (*page)->data();
    const uint32_t count = LoadLe16(bytes + kNodePageCountOffset);
    ILQ_CHECK(count <= file_->header().max_entries,
              "paged node entry count exceeds fanout");
    return NodeRef(std::move(*page), count, bytes[kNodePageLeafOffset] != 0);
  }

  // --- Arena-only mutation API (callers hold the !paged() invariant) ------

  int32_t Allocate(bool leaf, size_t reserve_entries) {
    ILQ_CHECK(!paged(), "disk-resident R-tree is read-only");
    if (!free_nodes_.empty()) {
      const int32_t nid = free_nodes_.back();
      free_nodes_.pop_back();
      nodes_[static_cast<size_t>(nid)].leaf = leaf;
      nodes_[static_cast<size_t>(nid)].entries.clear();
      return nid;
    }
    nodes_.emplace_back();
    nodes_.back().leaf = leaf;
    nodes_.back().entries.reserve(reserve_entries);
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  void Free(int32_t nid) {
    nodes_[static_cast<size_t>(nid)].entries.clear();
    free_nodes_.push_back(nid);
  }

  ArenaNode& node(int32_t nid) {
    ILQ_CHECK(!paged(), "disk-resident R-tree is read-only");
    return nodes_[static_cast<size_t>(nid)];
  }
  const ArenaNode& node(int32_t nid) const {
    return nodes_[static_cast<size_t>(nid)];
  }

  // --- Paged-state introspection ------------------------------------------

  /// Null in arena mode.
  const PageFile* file() const { return file_.get(); }

  /// Lifetime buffer counters (all zero in arena mode). Shared across
  /// copies of a paged store — this is per *index*, not per snapshot copy.
  BufferCounters buffer_counters() const {
    return buffer_ != nullptr ? buffer_->counters() : BufferCounters{};
  }
  size_t buffer_capacity_pages() const {
    return buffer_ != nullptr ? buffer_->capacity_pages() : 0;
  }

 private:
  // Arena backend.
  std::vector<ArenaNode> nodes_;
  std::vector<int32_t> free_nodes_;  // recycled arena slots
  // Paged backend (shared across copies; immutable + internally locked).
  std::shared_ptr<const PageFile> file_;
  std::shared_ptr<BufferManager> buffer_;
};

/// Deep structural validation of an opened ILQP file, run before the tree
/// serves queries. Iterative explicit-stack walk with a visited set:
///   * child ids in range, no node referenced twice (forged cycles cannot
///     loop or recurse),
///   * entry counts in [1, max_entries] and leaf flags in {0, 1},
///   * all leaves at depth == header height, interior nodes above it,
///   * every entry MBR contains its child's node MBR,
///   * leaf object ids <= \p max_leaf_id (bound leaf ids that index a
///     caller-side vector, e.g. positional uncertain-object trees),
///   * every page reachable, and total leaf entries == header item_count.
/// Violations -> kInvalidArgument (checksum/structure) or kOutOfRange /
/// kIOError from the underlying reads. Reads bypass any buffer so a
/// post-validation cold open still starts with an empty cache.
Status ValidatePagedTree(
    const PageFile& file,
    uint64_t max_leaf_id = std::numeric_limits<uint64_t>::max());

}  // namespace ilq

#endif  // ILQ_INDEX_NODE_STORE_H_
