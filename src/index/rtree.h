// R-tree spatial index (Guttman '84) — the paper's I/O substrate (§4.3).
//
// The expanded query range (Minkowski sum, or p-expanded-query for
// constrained queries) is executed against this index; objects whose
// bounding boxes do not intersect it are never touched. The paper used the
// Spatial Index Library v0.44.2b with 4KB nodes; this implementation derives
// its fanout from the same page budget, supports STR bulk loading (used for
// the experiment datasets) and dynamic quadratic-split insertion, and counts
// node accesses as a hardware-independent I/O metric.

#ifndef ILQ_INDEX_RTREE_H_
#define ILQ_INDEX_RTREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "index/index_stats.h"
#include "object/point_object.h"

namespace ilq {

/// \brief Sizing and fill-factor parameters for RTree (and PTI).
struct RTreeOptions {
  /// Page budget per node; the paper's experiments use 4KB nodes.
  size_t page_size_bytes = 4096;

  /// Minimum fill fraction for node splits (Guttman's m / M).
  double min_fill_fraction = 0.4;

  /// Extra bytes charged to every entry beyond the base MBR + id/child
  /// pointer. The PTI charges its per-entry catalog MBRs here, which lowers
  /// fanout exactly as in the paper's PTI (§5.3).
  size_t extra_entry_bytes = 0;

  /// When non-zero, overrides the page-size-derived maximum entries per
  /// node (testing hook).
  size_t max_entries_override = 0;
};

/// \brief An in-memory R-tree over (bounding box, object id) pairs with
/// simulated paging.
///
/// Nodes live in a flat arena addressed by int32 ids; each node models one
/// disk page. Use BulkLoad (Sort-Tile-Recursive) to build from a dataset, or
/// Create + Insert for incremental maintenance.
class RTree {
 public:
  /// One indexed item: bounding box plus the object's id. Point objects use
  /// degenerate boxes (Rect::AtPoint).
  struct Item {
    Rect box;
    ObjectId id = 0;
  };

  /// Creates an empty tree. Fails when the page budget is too small to hold
  /// two entries per node or the fill fraction is not in (0, 0.5].
  static Result<RTree> Create(const RTreeOptions& options);

  /// Builds a packed tree over \p items with Sort-Tile-Recursive loading.
  static Result<RTree> BulkLoad(const RTreeOptions& options,
                                std::vector<Item> items);

  /// Inserts one item (Guttman ChooseLeaf + quadratic split).
  void Insert(const Rect& box, ObjectId id);

  /// Removes one item matching both \p box and \p id (Guttman delete with
  /// tree condensation and reinsertion of orphaned items). Returns false
  /// when no such entry exists.
  bool Remove(const Rect& box, ObjectId id);

  /// One k-nearest-neighbour result.
  struct Neighbor {
    Rect box;
    ObjectId id = 0;
    double distance = 0.0;  ///< min distance from the query point to box
  };

  /// Returns the \p k entries nearest to \p query (best-first branch-and-
  /// bound on node MBR distances), ordered by ascending distance. Fewer
  /// than k results are returned when the tree is smaller than k.
  std::vector<Neighbor> Nearest(const Point& query, size_t k,
                                IndexStats* stats = nullptr) const;

  /// Visits every leaf entry whose box intersects \p range.
  /// \p visit is invoked as visit(const Rect& box, ObjectId id).
  ///
  /// Thread safety: safe to call concurrently with other const member
  /// functions (the traversal stack is a local; the tree keeps no mutable
  /// query-time state). Caller-provided \p stats must not be shared
  /// between concurrent queries.
  template <typename Visit>
  void Query(const Rect& range, Visit&& visit,
             IndexStats* stats = nullptr) const {
    if (root_ < 0 || range.IsEmpty()) return;
    std::vector<int32_t> stack;
    stack.reserve(32);
    stack.push_back(root_);
    while (!stack.empty()) {
      const int32_t nid = stack.back();
      stack.pop_back();
      const Node& node = nodes_[static_cast<size_t>(nid)];
      if (stats != nullptr) {
        ++stats->node_accesses;
        if (node.leaf) ++stats->leaf_accesses;
      }
      for (const Entry& e : node.entries) {
        if (!e.mbr.Intersects(range)) continue;
        if (node.leaf) {
          if (stats != nullptr) ++stats->candidates;
          visit(e.mbr, e.id);
        } else {
          stack.push_back(e.child);
        }
      }
    }
  }

  /// Convenience wrapper returning the matching ids.
  std::vector<ObjectId> QueryIds(const Rect& range,
                                 IndexStats* stats = nullptr) const;

  /// Number of indexed items.
  size_t size() const { return item_count_; }
  /// Number of live nodes (simulated pages). Removal recycles node slots,
  /// so this can be less than the arena size.
  size_t node_count() const { return nodes_.size() - free_nodes_.size(); }
  /// Size of the node arena including recycled slots. Node ids are always
  /// < arena_size(); side tables indexed by node id (e.g. the PTI's
  /// per-node catalogs) must size to this, not node_count().
  size_t arena_size() const { return nodes_.size(); }
  /// Tree height (0 for empty, 1 for a root-only tree).
  size_t height() const;
  /// Maximum entries per node as derived from the page budget.
  size_t max_entries() const { return max_entries_; }
  /// Minimum entries per node enforced by splits.
  size_t min_entries() const { return min_entries_; }
  /// Bounding box of everything in the tree (empty when empty).
  Rect bounds() const;

  /// Checks structural invariants (MBR containment, entry counts, leaf
  /// depth uniformity, item count). Used by tests and after bulk loads.
  Status Validate() const;

  // --- Read-only structural access (used by index extensions like PTI) ---

  /// Root node id, or -1 when empty.
  int32_t root() const { return root_; }
  bool IsLeaf(int32_t node) const {
    return nodes_[static_cast<size_t>(node)].leaf;
  }
  size_t EntryCount(int32_t node) const {
    return nodes_[static_cast<size_t>(node)].entries.size();
  }
  const Rect& EntryMbr(int32_t node, size_t i) const {
    return nodes_[static_cast<size_t>(node)].entries[i].mbr;
  }
  /// Leaf nodes only: the stored object id.
  ObjectId EntryId(int32_t node, size_t i) const {
    return nodes_[static_cast<size_t>(node)].entries[i].id;
  }
  /// Interior nodes only: the child node id.
  int32_t EntryChild(int32_t node, size_t i) const {
    return nodes_[static_cast<size_t>(node)].entries[i].child;
  }

 private:
  struct Entry {
    Rect mbr;
    int32_t child = -1;  // interior: child node id
    ObjectId id = 0;     // leaf: object id
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  RTree(size_t max_entries, size_t min_entries)
      : max_entries_(max_entries), min_entries_(min_entries) {}

  int32_t NewNode(bool leaf);
  void FreeNode(int32_t nid);
  Rect NodeMbr(int32_t nid) const;
  int32_t ChooseLeaf(const Rect& box, std::vector<int32_t>* path) const;
  // Splits node nid (which is overfull) in place; returns the new sibling.
  int32_t SplitNode(int32_t nid);
  void AdjustTree(std::vector<int32_t>& path, int32_t split_sibling);
  // Depth-first search for the leaf holding (box, id); fills path with the
  // node chain root..leaf on success.
  bool FindLeaf(int32_t nid, const Rect& box, ObjectId id,
                std::vector<int32_t>* path) const;
  // Guttman CondenseTree: fix MBRs upward from the modified leaf, dissolve
  // underfull nodes and reinsert their items.
  void CondenseTree(std::vector<int32_t>& path);
  Status ValidateNode(int32_t nid, size_t depth, size_t leaf_depth,
                      size_t* items_seen, size_t* nodes_seen) const;

  size_t max_entries_;
  size_t min_entries_;
  size_t item_count_ = 0;
  int32_t root_ = -1;
  std::vector<Node> nodes_;
  std::vector<int32_t> free_nodes_;  // recycled arena slots
};

/// Derives the maximum entries per node from a page budget: a node header
/// plus per-entry MBR (4 doubles), a 4-byte child/id slot and any
/// extra_entry_bytes. Exposed for tests and for the PTI fanout math.
size_t MaxEntriesForPage(const RTreeOptions& options);

}  // namespace ilq

#endif  // ILQ_INDEX_RTREE_H_
