// R-tree spatial index (Guttman '84) — the paper's I/O substrate (§4.3).
//
// The expanded query range (Minkowski sum, or p-expanded-query for
// constrained queries) is executed against this index; objects whose
// bounding boxes do not intersect it are never touched. The paper used the
// Spatial Index Library v0.44.2b with 4KB nodes; this implementation derives
// its fanout from the same page budget, supports STR bulk loading (used for
// the experiment datasets) and dynamic quadratic-split insertion, and counts
// node accesses as a hardware-independent I/O metric.
//
// Since ISSUE 8 node storage lives behind NodeStore (index/node_store.h):
// the same traversal code runs over the in-memory arena (default,
// zero-overhead) or a disk-resident "ILQP" paged file behind an LRU buffer
// — SavePaged serializes any tree to a paged file, OpenPaged mounts one
// read-only. Disk trees answer bit-identically to the arena tree they were
// saved from: SavePaged compacts node ids in a deterministic traversal
// order but preserves entry order and tree shape exactly, and no query
// result (nor node-access count) depends on node *ids*.

#ifndef ILQ_INDEX_RTREE_H_
#define ILQ_INDEX_RTREE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "index/index_stats.h"
#include "index/node_store.h"
#include "object/point_object.h"

namespace ilq {

/// \brief Sizing and fill-factor parameters for RTree (and PTI).
struct RTreeOptions {
  /// Page budget per node; the paper's experiments use 4KB nodes.
  size_t page_size_bytes = 4096;

  /// Minimum fill fraction for node splits (Guttman's m / M).
  double min_fill_fraction = 0.4;

  /// Extra bytes charged to every entry beyond the base MBR + id/child
  /// pointer. The PTI charges its per-entry catalog MBRs here, which lowers
  /// fanout exactly as in the paper's PTI (§5.3).
  size_t extra_entry_bytes = 0;

  /// When non-zero, overrides the page-size-derived maximum entries per
  /// node (testing hook).
  size_t max_entries_override = 0;
};

/// \brief Open parameters for a disk-resident tree (RTree::OpenPaged).
struct PagedOpenOptions {
  /// LRU buffer budget for this index, in bytes (at least one page is
  /// always resident). Far-below-index-size budgets are supported — the
  /// tree thrashes but stays correct and bit-identical.
  size_t buffer_pool_bytes = 8ull << 20;

  /// Run ValidatePagedTree before serving (one sequential read of the
  /// whole file). Leave on for untrusted files: with it off, a corrupt
  /// file aborts (ILQ_CHECK) at first bad read instead of returning
  /// Status here.
  bool deep_verify = true;

  /// Upper bound for leaf object ids (inclusive). Trees whose leaf ids
  /// index a caller-side vector (uncertain/PTI trees store *positions*)
  /// pass size-1 so a forged id cannot read out of bounds at query time.
  uint64_t max_leaf_id = std::numeric_limits<uint64_t>::max();
};

/// \brief An R-tree over (bounding box, object id) pairs whose nodes live
/// in a NodeStore — in-memory arena or disk-resident pages.
///
/// Each node models one disk page (and in paged mode *is* one). Use
/// BulkLoad (Sort-Tile-Recursive) to build from a dataset, Create + Insert
/// for incremental maintenance, or OpenPaged to mount a SavePaged file.
/// Paged trees are read-only: Insert/Remove on them abort, so callers gate
/// updates up front (QueryEngine returns kFailedPrecondition).
class RTree {
 public:
  /// One indexed item: bounding box plus the object's id. Point objects use
  /// degenerate boxes (Rect::AtPoint).
  struct Item {
    Rect box;
    ObjectId id = 0;
  };

  /// Creates an empty tree. Fails when the page budget is too small to hold
  /// two entries per node or the fill fraction is not in (0, 0.5].
  static Result<RTree> Create(const RTreeOptions& options);

  /// Builds a packed tree over \p items with Sort-Tile-Recursive loading.
  static Result<RTree> BulkLoad(const RTreeOptions& options,
                                std::vector<Item> items);

  /// Serializes the tree to an "ILQP" paged file at \p path (overwrite).
  /// Node ids are compacted in deterministic pre-order, children before
  /// later siblings' subtrees; recycled arena slots are not written. The
  /// page size is the build-time page budget, grown only if an
  /// max_entries_override forced a fanout the budget cannot hold.
  Status SavePaged(const std::string& path) const;

  /// Mounts a SavePaged file read-only behind an LRU page buffer. The
  /// tree's geometry (fanout, page size, extra entry bytes) is restored
  /// from the file header; traversal behaviour and all query answers are
  /// bit-identical to the tree that was saved.
  static Result<RTree> OpenPaged(const std::string& path,
                                 const PagedOpenOptions& options = {});

  /// Inserts one item (Guttman ChooseLeaf + quadratic split). Arena only.
  void Insert(const Rect& box, ObjectId id);

  /// Removes one item matching both \p box and \p id (Guttman delete with
  /// tree condensation and reinsertion of orphaned items). Returns false
  /// when no such entry exists. Arena only.
  bool Remove(const Rect& box, ObjectId id);

  /// One k-nearest-neighbour result.
  struct Neighbor {
    Rect box;
    ObjectId id = 0;
    double distance = 0.0;  ///< min distance from the query point to box
  };

  /// Returns the \p k entries nearest to \p query (best-first branch-and-
  /// bound on node MBR distances), ordered by ascending distance. Fewer
  /// than k results are returned when the tree is smaller than k.
  std::vector<Neighbor> Nearest(const Point& query, size_t k,
                                IndexStats* stats = nullptr) const;

  /// Visits every leaf entry whose box intersects \p range.
  /// \p visit is invoked as visit(const Rect& box, ObjectId id).
  ///
  /// Thread safety: safe to call concurrently with other const member
  /// functions (the traversal stack is a local; the tree keeps no mutable
  /// query-time state, and the paged buffer locks internally).
  /// Caller-provided \p stats must not be shared between concurrent
  /// queries; in paged mode it also collects the query's buffer
  /// hit/miss/eviction counts.
  template <typename Visit>
  void Query(const Rect& range, Visit&& visit,
             IndexStats* stats = nullptr) const {
    if (root_ < 0 || range.IsEmpty()) return;
    std::vector<int32_t> stack;
    stack.reserve(32);
    stack.push_back(root_);
    while (!stack.empty()) {
      const int32_t nid = stack.back();
      stack.pop_back();
      const NodeRef node = store_.Read(nid, stats);
      if (stats != nullptr) {
        ++stats->node_accesses;
        if (node.leaf()) ++stats->leaf_accesses;
      }
      const size_t n = node.count();
      for (size_t i = 0; i < n; ++i) {
        const Rect mbr = node.mbr(i);
        if (!mbr.Intersects(range)) continue;
        if (node.leaf()) {
          if (stats != nullptr) ++stats->candidates;
          visit(mbr, node.id(i));
        } else {
          stack.push_back(node.child(i));
        }
      }
    }
  }

  /// Convenience wrapper returning the matching ids.
  std::vector<ObjectId> QueryIds(const Rect& range,
                                 IndexStats* stats = nullptr) const;

  /// Number of indexed items.
  size_t size() const { return item_count_; }
  /// Number of live nodes (pages). Removal recycles arena slots, so this
  /// can be less than the arena size.
  size_t node_count() const { return store_.live_count(); }
  /// Size of the node arena including recycled slots (page count for a
  /// paged tree). Node ids are always < arena_size(); side tables indexed
  /// by node id (e.g. the PTI's per-node catalogs) must size to this, not
  /// node_count().
  size_t arena_size() const { return store_.size(); }
  /// Tree height (0 for empty, 1 for a root-only tree).
  size_t height() const;
  /// Maximum entries per node as derived from the page budget.
  size_t max_entries() const { return max_entries_; }
  /// Minimum entries per node enforced by splits.
  size_t min_entries() const { return min_entries_; }
  /// Page budget the tree was built with (or the page size of the mounted
  /// file).
  size_t page_size_bytes() const { return page_size_bytes_; }
  /// Per-entry extra charge (PTI catalogs); round-tripped through the file
  /// header so the engine can cross-check a mounted index against its
  /// config.
  size_t extra_entry_bytes() const { return extra_entry_bytes_; }
  /// Bounding box of everything in the tree (empty when empty).
  Rect bounds() const;

  /// True for a tree mounted from a paged file (read-only).
  bool is_paged() const { return store_.paged(); }
  /// Lifetime buffer hit/miss/eviction totals (zeros in arena mode).
  BufferCounters buffer_counters() const { return store_.buffer_counters(); }
  /// Pages the LRU budget admits (0 in arena mode).
  size_t buffer_capacity_pages() const {
    return store_.buffer_capacity_pages();
  }

  /// Checks structural invariants (MBR containment, entry counts, leaf
  /// depth uniformity, item count). Used by tests and after bulk loads.
  /// (OpenPaged's deep_verify runs the stronger untrusted-file walk; this
  /// one assumes ids are in range, like the arena version always has.)
  Status Validate() const;

  // --- Read-only structural access (used by index extensions like PTI) ---

  /// Root node id, or -1 when empty.
  int32_t root() const { return root_; }

  /// Reads one node; the primary structural accessor. In paged mode \p
  /// stats collects the page pin's buffer counters. Hold the NodeRef for
  /// repeated entry access instead of re-reading per entry.
  NodeRef ReadNode(int32_t nid, IndexStats* stats = nullptr) const {
    return store_.Read(nid, stats);
  }

  bool IsLeaf(int32_t node) const { return store_.Read(node).leaf(); }
  size_t EntryCount(int32_t node) const { return store_.Read(node).count(); }
  /// By value since ISSUE 8: a paged node decodes its MBRs, so there is no
  /// stable Rect to reference.
  Rect EntryMbr(int32_t node, size_t i) const {
    return store_.Read(node).mbr(i);
  }
  /// Leaf nodes only: the stored object id.
  ObjectId EntryId(int32_t node, size_t i) const {
    return store_.Read(node).id(i);
  }
  /// Interior nodes only: the child node id.
  int32_t EntryChild(int32_t node, size_t i) const {
    return store_.Read(node).child(i);
  }

 private:
  using Entry = NodeEntry;
  using Node = ArenaNode;

  RTree(size_t max_entries, size_t min_entries)
      : max_entries_(max_entries), min_entries_(min_entries) {}

  int32_t NewNode(bool leaf);
  void FreeNode(int32_t nid);
  Rect NodeMbr(int32_t nid) const;
  int32_t ChooseLeaf(const Rect& box, std::vector<int32_t>* path) const;
  // Splits node nid (which is overfull) in place; returns the new sibling.
  int32_t SplitNode(int32_t nid);
  void AdjustTree(std::vector<int32_t>& path, int32_t split_sibling);
  // Depth-first search for the leaf holding (box, id); fills path with the
  // node chain root..leaf on success.
  bool FindLeaf(int32_t nid, const Rect& box, ObjectId id,
                std::vector<int32_t>* path) const;
  // Guttman CondenseTree: fix MBRs upward from the modified leaf, dissolve
  // underfull nodes and reinsert their items.
  void CondenseTree(std::vector<int32_t>& path);
  Status ValidateNode(int32_t nid, size_t depth, size_t leaf_depth,
                      size_t* items_seen, size_t* nodes_seen) const;

  size_t max_entries_;
  size_t min_entries_;
  size_t page_size_bytes_ = 4096;
  size_t extra_entry_bytes_ = 0;
  size_t item_count_ = 0;
  int32_t root_ = -1;
  NodeStore store_;
};

/// Derives the maximum entries per node from a page budget: a node header
/// plus per-entry MBR (4 doubles), a 4-byte child/id slot and any
/// extra_entry_bytes. Exposed for tests and for the PTI fanout math.
size_t MaxEntriesForPage(const RTreeOptions& options);

}  // namespace ilq

#endif  // ILQ_INDEX_RTREE_H_
