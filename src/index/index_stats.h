// Counters reported by index traversals, used as the machine-independent
// I/O proxy in the experiment harness (the paper's server measured elapsed
// time on a 2007 SunFire; node accesses transfer across hardware).

#ifndef ILQ_INDEX_INDEX_STATS_H_
#define ILQ_INDEX_INDEX_STATS_H_

#include <cstdint>

namespace ilq {

/// \brief Per-query traversal counters.
struct IndexStats {
  uint64_t node_accesses = 0;  ///< nodes (pages) touched, incl. leaves
  uint64_t leaf_accesses = 0;  ///< leaf pages touched
  uint64_t candidates = 0;     ///< leaf entries reported to the caller

  void Reset() { *this = IndexStats{}; }

  IndexStats& operator+=(const IndexStats& o) {
    node_accesses += o.node_accesses;
    leaf_accesses += o.leaf_accesses;
    candidates += o.candidates;
    return *this;
  }

  /// Folds another counter set into this one. Integer addition is
  /// associative and commutative, so merging per-thread partials yields
  /// the same totals regardless of thread count or merge order — the
  /// property the batch determinism tests pin down.
  void Merge(const IndexStats& o) { *this += o; }

  friend bool operator==(const IndexStats& a, const IndexStats& b) = default;
};

}  // namespace ilq

#endif  // ILQ_INDEX_INDEX_STATS_H_
