// Counters reported by index traversals, used as the machine-independent
// I/O proxy in the experiment harness (the paper's server measured elapsed
// time on a 2007 SunFire; node accesses transfer across hardware).

#ifndef ILQ_INDEX_INDEX_STATS_H_
#define ILQ_INDEX_INDEX_STATS_H_

#include <cstdint>

namespace ilq {

/// \brief Per-query traversal counters.
///
/// The page_* fields are populated only by disk-resident (paged) indexes;
/// RAM-resident traversals leave them zero. On a single query thread
/// page_hits + page_misses equals the paged node reads; across concurrent
/// queries the split between hit and miss depends on interleaving, so
/// differential tests compare answers and node_accesses, never the buffer
/// split.
struct IndexStats {
  uint64_t node_accesses = 0;  ///< nodes (pages) touched, incl. leaves
  uint64_t leaf_accesses = 0;  ///< leaf pages touched
  uint64_t candidates = 0;     ///< leaf entries reported to the caller
  uint64_t page_hits = 0;      ///< buffer-manager hits (paged indexes only)
  uint64_t page_misses = 0;    ///< pages read from disk (paged indexes only)
  uint64_t page_evictions = 0;  ///< pages evicted to stay in budget

  void Reset() { *this = IndexStats{}; }

  IndexStats& operator+=(const IndexStats& o) {
    node_accesses += o.node_accesses;
    leaf_accesses += o.leaf_accesses;
    candidates += o.candidates;
    page_hits += o.page_hits;
    page_misses += o.page_misses;
    page_evictions += o.page_evictions;
    return *this;
  }

  /// Folds another counter set into this one. Integer addition is
  /// associative and commutative, so merging per-thread partials yields
  /// the same totals regardless of thread count or merge order — the
  /// property the batch determinism tests pin down.
  void Merge(const IndexStats& o) { *this += o; }

  friend bool operator==(const IndexStats& a, const IndexStats& b) = default;
};

}  // namespace ilq

#endif  // ILQ_INDEX_INDEX_STATS_H_
