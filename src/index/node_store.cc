#include "index/node_store.h"

#include <string>

namespace ilq {

Status ValidatePagedTree(const PageFile& file, uint64_t max_leaf_id) {
  const PageFileHeader& h = file.header();
  if (h.page_count == 0) return Status::OK();  // header checks ran at Open

  // The node encoding must fit the page: division form keeps a forged
  // max_entries from wrapping the offset math before this bound applies.
  if (h.page_size < kNodePageHeaderBytes + kNodeEntryBytes ||
      h.max_entries >
          (h.page_size - kNodePageHeaderBytes) / kNodeEntryBytes) {
    return Status::InvalidArgument(
        "paged index: max_entries " + std::to_string(h.max_entries) +
        " cannot fit a " + std::to_string(h.page_size) + "-byte page");
  }

  struct PendingChild {
    int32_t page;
    uint32_t depth;
    Rect cover;  // the parent entry's MBR, which must contain this node
  };
  std::vector<PendingChild> stack;
  stack.push_back({h.root, 1, Rect()});
  std::vector<uint8_t> visited(h.page_count, 0);
  visited[static_cast<uint32_t>(h.root)] = 1;

  std::vector<uint8_t> page;
  uint64_t items = 0;
  uint64_t pages_seen = 0;
  while (!stack.empty()) {
    const PendingChild cur = stack.back();
    stack.pop_back();
    ++pages_seen;
    ILQ_RETURN_NOT_OK(file.ReadPage(static_cast<uint32_t>(cur.page), &page));

    const uint8_t leaf_byte = page[kNodePageLeafOffset];
    if (leaf_byte > 1) {
      return Status::InvalidArgument(
          "paged index: page " + std::to_string(cur.page) +
          " has a forged leaf flag");
    }
    const bool leaf = leaf_byte != 0;
    const uint32_t count = LoadLe16(page.data() + kNodePageCountOffset);
    if (count == 0 || count > h.max_entries) {
      return Status::InvalidArgument(
          "paged index: page " + std::to_string(cur.page) +
          " carries a forged entry count " + std::to_string(count));
    }
    if (leaf != (cur.depth == h.height)) {
      return Status::InvalidArgument(
          "paged index: page " + std::to_string(cur.page) +
          " is at depth " + std::to_string(cur.depth) +
          " but the header height is " + std::to_string(h.height));
    }

    Rect node_mbr = Rect::Empty();
    for (uint32_t i = 0; i < count; ++i) {
      const uint8_t* e =
          page.data() + kNodePageHeaderBytes + i * kNodeEntryBytes;
      const Rect mbr(LoadLeF64(e), LoadLeF64(e + 8), LoadLeF64(e + 16),
                     LoadLeF64(e + 24));
      if (mbr.IsEmpty()) {
        return Status::InvalidArgument(
            "paged index: page " + std::to_string(cur.page) +
            " entry " + std::to_string(i) + " has an inverted MBR");
      }
      node_mbr = node_mbr.Union(mbr);
      const uint32_t ref = LoadLe32(e + kNodeEntryChildOffset);
      if (leaf) {
        ++items;
        if (ref > max_leaf_id) {
          return Status::InvalidArgument(
              "paged index: leaf object id " + std::to_string(ref) +
              " exceeds the catalog bound " + std::to_string(max_leaf_id));
        }
      } else {
        if (ref >= h.page_count) {
          return Status::InvalidArgument(
              "paged index: child page id " + std::to_string(ref) +
              " out of range");
        }
        if (visited[ref] != 0) {
          return Status::InvalidArgument(
              "paged index: page " + std::to_string(ref) +
              " is referenced twice (cycle or shared subtree)");
        }
        visited[ref] = 1;
        stack.push_back({static_cast<int32_t>(ref), cur.depth + 1, mbr});
      }
    }
    if (cur.depth > 1 && !cur.cover.ContainsRect(node_mbr)) {
      return Status::InvalidArgument(
          "paged index: parent entry MBR does not cover page " +
          std::to_string(cur.page));
    }
  }

  if (pages_seen != h.page_count) {
    return Status::InvalidArgument(
        "paged index: " + std::to_string(h.page_count - pages_seen) +
        " pages are unreachable from the root");
  }
  if (items != h.item_count) {
    return Status::InvalidArgument(
        "paged index: leaves hold " + std::to_string(items) +
        " items but the header claims " + std::to_string(h.item_count));
  }
  return Status::OK();
}

}  // namespace ilq
