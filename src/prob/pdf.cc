#include "prob/pdf.h"

#include <algorithm>

#include "common/logging.h"

namespace ilq {

namespace {

// Generic monotone bisection for quantiles: smallest t in [lo, hi] with
// cdf(t) >= p. 60 iterations bring |hi - lo| below 1e-18 of the original
// interval, far beyond the needs of p-bound construction.
template <typename Cdf>
double BisectQuantile(Cdf cdf, double lo, double hi, double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return lo;
  if (p >= 1.0) return hi;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) >= p) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

void UncertaintyPdf::DensityBatch(std::span<const Point> pts,
                                  std::span<double> out) const {
  ILQ_CHECK(pts.size() == out.size(), "DensityBatch size mismatch");
  for (size_t i = 0; i < pts.size(); ++i) out[i] = Density(pts[i]);
}

void UncertaintyPdf::MassInBatch(std::span<const Rect> rects,
                                 std::span<double> out) const {
  ILQ_CHECK(rects.size() == out.size(), "MassInBatch size mismatch");
  for (size_t i = 0; i < rects.size(); ++i) out[i] = MassIn(rects[i]);
}

void UncertaintyPdf::MassInCenteredBatch(std::span<const Point> centers,
                                         double w, double h,
                                         std::span<double> out) const {
  ILQ_CHECK(centers.size() == out.size(),
            "MassInCenteredBatch size mismatch");
  for (size_t i = 0; i < centers.size(); ++i) {
    out[i] = MassIn(Rect::Centered(centers[i], w, h));
  }
}

double UncertaintyPdf::QuantileX(double p) const {
  const Rect b = bounds();
  return BisectQuantile([this](double x) { return CdfX(x); }, b.xmin, b.xmax,
                        p);
}

double UncertaintyPdf::QuantileY(double p) const {
  const Rect b = bounds();
  return BisectQuantile([this](double y) { return CdfY(y); }, b.ymin, b.ymax,
                        p);
}

void UncertaintyPdf::AppendBreakpointsX(std::vector<double>*) const {}

void UncertaintyPdf::AppendBreakpointsY(std::vector<double>*) const {}

}  // namespace ilq
