#include "prob/pdf.h"

#include <algorithm>

namespace ilq {

namespace {

// Generic monotone bisection for quantiles: smallest t in [lo, hi] with
// cdf(t) >= p. 60 iterations bring |hi - lo| below 1e-18 of the original
// interval, far beyond the needs of p-bound construction.
template <typename Cdf>
double BisectQuantile(Cdf cdf, double lo, double hi, double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return lo;
  if (p >= 1.0) return hi;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) >= p) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

double UncertaintyPdf::QuantileX(double p) const {
  const Rect b = bounds();
  return BisectQuantile([this](double x) { return CdfX(x); }, b.xmin, b.xmax,
                        p);
}

double UncertaintyPdf::QuantileY(double p) const {
  const Rect b = bounds();
  return BisectQuantile([this](double y) { return CdfY(y); }, b.ymin, b.ymax,
                        p);
}

void UncertaintyPdf::AppendBreakpointsX(std::vector<double>*) const {}

void UncertaintyPdf::AppendBreakpointsY(std::vector<double>*) const {}

}  // namespace ilq
