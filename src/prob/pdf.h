// The probabilistic location-uncertainty model of §3.1 ([Sistla et al. '98],
// [Pfoser & Jensen '99]): each uncertain object has a closed uncertainty
// region and a pdf that is zero outside it (Definitions 1–2).
//
// UncertaintyPdf is the abstract interface every concrete pdf implements.
// The operations were chosen so that every algorithm in the paper is
// expressible against the interface alone:
//
//   * MassIn(rect)     — Eq. 3's inner integral and Lemma 3's Eq. 5;
//   * CdfX/CdfY        — marginal CDFs, which give the duality kernel
//                        qx(x) = CdfX(x + w) − CdfX(x − w) for product pdfs;
//   * QuantileX/Y      — p-bound construction (§5.1);
//   * Sample           — the Monte-Carlo path the paper uses for Gaussian
//                        pdfs (§6.2);
//   * IsProduct        — whether Density(x,y) factorizes as fx(x)·fy(y),
//                        enabling the separable fast path.

#ifndef ILQ_PROB_PDF_H_
#define ILQ_PROB_PDF_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace ilq {

/// \brief Probability distribution of an object's location over a bounded
/// uncertainty region (Definition 2).
class UncertaintyPdf {
 public:
  virtual ~UncertaintyPdf() = default;

  /// Tight bounding box of the support (for rectangular regions, the
  /// uncertainty region itself — Definition 1).
  virtual Rect bounds() const = 0;

  /// Density f(p); zero outside bounds().
  virtual double Density(const Point& p) const = 0;

  /// Probability that the object lies inside \p r: ∫∫_{r ∩ support} f.
  virtual double MassIn(const Rect& r) const = 0;

  /// Batched density: out[i] = Density(pts[i]) for every i; sizes must
  /// match (checked). The base implementation loops over the virtual
  /// Density; every concrete pdf overrides it with a tight scalar loop
  /// whose per-element operation devirtualizes (the classes are final),
  /// which is what the PdfVariant fast path monomorphizes over.
  virtual void DensityBatch(std::span<const Point> pts,
                            std::span<double> out) const;

  /// Batched mass: out[i] = MassIn(rects[i]). Same contract and override
  /// policy as DensityBatch.
  virtual void MassInBatch(std::span<const Rect> rects,
                           std::span<double> out) const;

  /// Batched mass over equal-shaped ranges:
  /// out[i] = MassIn(Rect::Centered(centers[i], w, h)) — the exact shape of
  /// the evaluators' dual-range loops (every candidate shares the query
  /// half-extents), which lets overrides stream half as many coordinates as
  /// MassInBatch. Base implementation loops over the virtual MassIn.
  virtual void MassInCenteredBatch(std::span<const Point> centers, double w,
                                   double h, std::span<double> out) const;

  /// Marginal CDF P[X ≤ x]; 0 left of the support, 1 right of it.
  virtual double CdfX(double x) const = 0;

  /// Marginal CDF P[Y ≤ y].
  virtual double CdfY(double y) const = 0;

  /// Smallest x with CdfX(x) ≥ p, for p in [0, 1]. Used to build the
  /// li(p)/ri(p) p-bound lines. The base implementation bisects CdfX; pdfs
  /// with closed-form quantiles override it.
  virtual double QuantileX(double p) const;

  /// Smallest y with CdfY(y) ≥ p.
  virtual double QuantileY(double p) const;

  /// Marginal density of the x-coordinate, d/dx CdfX. Zero outside the
  /// support. Used by the separable evaluation path.
  virtual double MarginalPdfX(double x) const = 0;

  /// Marginal density of the y-coordinate.
  virtual double MarginalPdfY(double y) const = 0;

  /// Appends interior x-coordinates at which the density is discontinuous
  /// (e.g. histogram cell borders), so quadrature can split there. Support
  /// edges need not be reported. Default: none.
  virtual void AppendBreakpointsX(std::vector<double>* out) const;

  /// Appends interior y-coordinates of density discontinuities.
  virtual void AppendBreakpointsY(std::vector<double>* out) const;

  /// True when the density factorizes as fx(x)·fy(y) over a rectangular
  /// support, enabling the separable evaluation fast path (see
  /// core/duality.h).
  virtual bool IsProduct() const = 0;

  /// Draws one location according to the pdf.
  virtual Point Sample(Rng* rng) const = 0;

  /// Short human-readable name ("uniform", "gaussian", ...).
  virtual std::string name() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<UncertaintyPdf> Clone() const = 0;
};

}  // namespace ilq

#endif  // ILQ_PROB_PDF_H_
