#include "prob/integrate.h"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

#include "common/logging.h"

namespace ilq {

namespace {

// Computes the n-point Gauss–Legendre rule by Newton iteration from the
// Chebyshev initial guess; standard and accurate to machine precision for
// the orders used here (<= 128).
GaussLegendreRule ComputeRule(size_t n) {
  GaussLegendreRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const size_t m = (n + 1) / 2;  // exploit symmetry
  for (size_t i = 0; i < m; ++i) {
    // Initial guess: Chebyshev node.
    double x = std::cos(std::numbers::pi *
                        (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate Legendre P_n(x) and its derivative by recurrence.
      double p0 = 1.0;
      double p1 = x;
      for (size_t k = 2; k <= n; ++k) {
        const double kd = static_cast<double>(k);
        const double p2 = ((2.0 * kd - 1.0) * x * p1 - (kd - 1.0) * p0) / kd;
        p0 = p1;
        p1 = p2;
      }
      pp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[i] = -x;
    rule.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  if (n == 1) {
    rule.nodes[0] = 0.0;
    rule.weights[0] = 2.0;
  }
  return rule;
}

}  // namespace

const GaussLegendreRule& GetGaussLegendreRule(size_t n) {
  ILQ_CHECK(n >= 1, "Gauss-Legendre order must be >= 1");
  static std::mutex mu;
  static std::map<size_t, GaussLegendreRule> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, ComputeRule(n)).first;
  }
  return it->second;
}

double IntegrateGL(const std::function<double(double)>& f, double a, double b,
                   size_t n) {
  if (b <= a) return 0.0;
  const GaussLegendreRule& rule = GetGaussLegendreRule(n);
  const double half = 0.5 * (b - a);
  const double mid = 0.5 * (a + b);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += rule.weights[i] * f(mid + half * rule.nodes[i]);
  }
  return half * sum;
}

double IntegrateGL2D(const std::function<double(double, double)>& f,
                     const Rect& rect, size_t nx, size_t ny) {
  if (rect.IsEmpty()) return 0.0;
  const GaussLegendreRule& rx = GetGaussLegendreRule(nx);
  const GaussLegendreRule& ry = GetGaussLegendreRule(ny);
  const double hx = 0.5 * rect.Width();
  const double mx = 0.5 * (rect.xmin + rect.xmax);
  const double hy = 0.5 * rect.Height();
  const double my = 0.5 * (rect.ymin + rect.ymax);
  double sum = 0.0;
  for (size_t i = 0; i < nx; ++i) {
    const double x = mx + hx * rx.nodes[i];
    double row = 0.0;
    for (size_t j = 0; j < ny; ++j) {
      row += ry.weights[j] * f(x, my + hy * ry.nodes[j]);
    }
    sum += rx.weights[i] * row;
  }
  return hx * hy * sum;
}

double MonteCarloMean(const std::function<Point(Rng*)>& sampler,
                      const std::function<double(const Point&)>& f,
                      size_t samples, Rng* rng) {
  ILQ_CHECK(samples > 0, "Monte-Carlo needs at least one sample");
  double sum = 0.0;
  for (size_t i = 0; i < samples; ++i) {
    sum += f(sampler(rng));
  }
  return sum / static_cast<double>(samples);
}

}  // namespace ilq
