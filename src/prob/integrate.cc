#include "prob/integrate.h"

#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <utility>

#include "common/logging.h"

namespace ilq {

namespace {

// Computes the n-point Gauss–Legendre rule by Newton iteration from the
// Chebyshev initial guess; standard and accurate to machine precision for
// the orders used here (<= 128).
GaussLegendreRule ComputeRule(size_t n) {
  GaussLegendreRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const size_t m = (n + 1) / 2;  // exploit symmetry
  for (size_t i = 0; i < m; ++i) {
    // Initial guess: Chebyshev node.
    double x = std::cos(std::numbers::pi *
                        (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate Legendre P_n(x) and its derivative by recurrence.
      double p0 = 1.0;
      double p1 = x;
      for (size_t k = 2; k <= n; ++k) {
        const double kd = static_cast<double>(k);
        const double p2 = ((2.0 * kd - 1.0) * x * p1 - (kd - 1.0) * p0) / kd;
        p0 = p1;
        p1 = p2;
      }
      pp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[i] = -x;
    rule.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  if (n == 1) {
    rule.nodes[0] = 0.0;
    rule.weights[0] = 2.0;
  }
  return rule;
}

// Every order the evaluators actually use (quadrature_order defaults to 16,
// the ablation sweeps to 64) hits this eagerly built flat table; lookups
// after the one-time build are a bounds check plus an array index. Building
// all 64 rules costs well under a millisecond.
constexpr size_t kMaxEagerOrder = 64;

struct EagerRules {
  std::array<GaussLegendreRule, kMaxEagerOrder + 1> rules;  // index 0 unused
  EagerRules() {
    for (size_t n = 1; n <= kMaxEagerOrder; ++n) rules[n] = ComputeRule(n);
  }
};

const EagerRules& GetEagerRules() {
  static const EagerRules rules;
  return rules;
}

// Orders beyond the eager table are rare (tests and one-off experiments).
// They are served from an immutable snapshot published through an atomic
// pointer: readers load-acquire and scan, never blocking; a miss takes the
// writer mutex, copies the snapshot, appends, and publishes the new one.
// Rules and superseded snapshots are retained for the process lifetime so
// references and in-flight readers stay valid — the retained memory is
// bounded by the number of distinct rare orders ever requested.
struct OverflowSnapshot {
  std::vector<std::pair<size_t, const GaussLegendreRule*>> entries;
};

std::atomic<const OverflowSnapshot*> g_overflow_head{nullptr};

const GaussLegendreRule* FindOverflow(const OverflowSnapshot* snap,
                                      size_t n) {
  if (snap == nullptr) return nullptr;
  for (const auto& [order, rule] : snap->entries) {
    if (order == n) return rule;
  }
  return nullptr;
}

const GaussLegendreRule& GetOverflowRule(size_t n) {
  if (const GaussLegendreRule* hit = FindOverflow(
          g_overflow_head.load(std::memory_order_acquire), n)) {
    return *hit;
  }
  static std::mutex mu;
  static std::vector<std::unique_ptr<GaussLegendreRule>>* rule_storage =
      new std::vector<std::unique_ptr<GaussLegendreRule>>();
  static std::vector<std::unique_ptr<OverflowSnapshot>>* snapshot_storage =
      new std::vector<std::unique_ptr<OverflowSnapshot>>();
  std::lock_guard<std::mutex> lock(mu);
  const OverflowSnapshot* current =
      g_overflow_head.load(std::memory_order_relaxed);
  if (const GaussLegendreRule* hit = FindOverflow(current, n)) {
    return *hit;  // lost the publish race to another thread
  }
  rule_storage->push_back(
      std::make_unique<GaussLegendreRule>(ComputeRule(n)));
  const GaussLegendreRule* rule = rule_storage->back().get();
  auto next = std::make_unique<OverflowSnapshot>();
  if (current != nullptr) next->entries = current->entries;
  next->entries.emplace_back(n, rule);
  g_overflow_head.store(next.get(), std::memory_order_release);
  snapshot_storage->push_back(std::move(next));
  return *rule;
}

}  // namespace

const GaussLegendreRule& GetGaussLegendreRule(size_t n) {
  ILQ_CHECK(n >= 1, "Gauss-Legendre order must be >= 1");
  if (n <= kMaxEagerOrder) return GetEagerRules().rules[n];
  return GetOverflowRule(n);
}

double IntegrateGL(const std::function<double(double)>& f, double a, double b,
                   size_t n) {
  return IntegrateGL<const std::function<double(double)>&>(f, a, b, n);
}

double IntegrateGL2D(const std::function<double(double, double)>& f,
                     const Rect& rect, size_t nx, size_t ny) {
  return IntegrateGL2D<const std::function<double(double, double)>&>(
      f, rect, nx, ny);
}

double MonteCarloMean(const std::function<Point(Rng*)>& sampler,
                      const std::function<double(const Point&)>& f,
                      size_t samples, Rng* rng) {
  return MonteCarloMean<const std::function<Point(Rng*)>&,
                        const std::function<double(const Point&)>&>(
      sampler, f, samples, rng);
}

}  // namespace ilq
