// Numeric integration used by the query evaluators:
//
//   * Gauss–Legendre quadrature (1-D and tensor-product 2-D) for the
//     separable and generic smooth paths of Eq. 8;
//   * Monte-Carlo estimation — the method the paper itself uses for
//     non-uniform pdfs (§6.2, ~200–250 samples).

#ifndef ILQ_PROB_INTEGRATE_H_
#define ILQ_PROB_INTEGRATE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "geometry/rect.h"

namespace ilq {

/// Nodes and weights of the n-point Gauss–Legendre rule on [-1, 1].
/// Computed once per order via Newton iteration on Legendre polynomials and
/// cached; thread-compatible (cache is built eagerly for common orders).
struct GaussLegendreRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Returns the cached rule of order \p n (n >= 1).
const GaussLegendreRule& GetGaussLegendreRule(size_t n);

/// ∫_a^b f(x) dx with an n-point Gauss–Legendre rule (exact for polynomials
/// of degree ≤ 2n−1).
double IntegrateGL(const std::function<double(double)>& f, double a, double b,
                   size_t n);

/// ∫∫_rect f(x, y) dx dy with an (nx × ny)-point tensor Gauss–Legendre rule.
double IntegrateGL2D(const std::function<double(double, double)>& f,
                     const Rect& rect, size_t nx, size_t ny);

/// Monte-Carlo mean of f over \p samples draws from \p sampler, i.e. an
/// unbiased estimate of E[f(X)] for X ~ sampler. This mirrors the paper's
/// evaluation procedure for non-uniform pdfs, where positions of the query
/// issuer / uncertain object are sampled repeatedly and the average result
/// taken.
double MonteCarloMean(const std::function<Point(Rng*)>& sampler,
                      const std::function<double(const Point&)>& f,
                      size_t samples, Rng* rng);

}  // namespace ilq

#endif  // ILQ_PROB_INTEGRATE_H_
