// Numeric integration used by the query evaluators:
//
//   * Gauss–Legendre quadrature (1-D and tensor-product 2-D) for the
//     separable and generic smooth paths of Eq. 8;
//   * Monte-Carlo estimation — the method the paper itself uses for
//     non-uniform pdfs (§6.2, ~200–250 samples).
//
// The kernels come in two forms:
//
//   * header-only templates (below) that inline the integrand — the form
//     the evaluators' inner loops use, with no std::function indirection;
//   * std::function overloads (integrate.cc) that forward to the templates
//     byte-for-byte, kept for callers that store integrands type-erased.
//
// Both forms read the Gauss–Legendre rules through GetGaussLegendreRule,
// which is lock-free after warmup: see the cache notes on that function.

#ifndef ILQ_PROB_INTEGRATE_H_
#define ILQ_PROB_INTEGRATE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "geometry/rect.h"
#include "simd/qual_kernels.h"
#include "simd/simd_policy.h"

namespace ilq {

/// Nodes and weights of the n-point Gauss–Legendre rule on [-1, 1].
struct GaussLegendreRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Returns the cached rule of order \p n (n >= 1). The returned reference
/// is valid for the rest of the process and identical across calls.
///
/// Concurrency: common orders (n <= 64, everything the evaluators use) live
/// in a flat table built eagerly on first use, so steady-state lookups are
/// one branch plus an array index — no lock, no map. Rarer orders go
/// through an append-only snapshot list published via an atomic pointer:
/// readers never block, and only the first thread to request a previously
/// unseen order takes the (cold-path) writer mutex.
const GaussLegendreRule& GetGaussLegendreRule(size_t n);

/// ∫_a^b f(x) dx with an n-point Gauss–Legendre rule (exact for polynomials
/// of degree ≤ 2n−1). The integrand is inlined; prefer this form in hot
/// loops.
namespace internal {

/// Chunk size for the fast-variant weight·value inner products below; large
/// enough to cover every rule order the evaluators use (n <= 64) in one
/// chunk, small enough to live on the stack.
inline constexpr size_t kGLChunk = 64;

}  // namespace internal

template <typename F>
  requires std::is_invocable_r_v<double, F&, double>
double IntegrateGL(F&& f, double a, double b, size_t n) {
  if (b <= a) return 0.0;
  const GaussLegendreRule& rule = GetGaussLegendreRule(n);
  const double half = 0.5 * (b - a);
  const double mid = 0.5 * (a + b);
  if (simd::ActiveKernelVariant() == simd::KernelVariant::kFast) {
    // Fast variant: materialize the integrand values and hand the inner
    // product to the FMA dot kernel of the active SIMD tier. Reassociated —
    // answers differ from the strict path in the last ulps, which the
    // fast_variant suite tolerance-pins.
    const simd::KernelSet& kernels = simd::ActiveKernels();
    alignas(64) double vals[internal::kGLChunk];
    double sum = 0.0;
    for (size_t off = 0; off < n; off += internal::kGLChunk) {
      const size_t m = std::min(internal::kGLChunk, n - off);
      for (size_t i = 0; i < m; ++i) {
        vals[i] = f(mid + half * rule.nodes[off + i]);
      }
      sum += kernels.dot(rule.weights.data() + off, vals, m);
    }
    return half * sum;
  }
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += rule.weights[i] * f(mid + half * rule.nodes[i]);
  }
  return half * sum;
}

/// ∫∫_rect f(x, y) dx dy with an (nx × ny)-point tensor Gauss–Legendre rule.
template <typename F>
  requires std::is_invocable_r_v<double, F&, double, double>
double IntegrateGL2D(F&& f, const Rect& rect, size_t nx, size_t ny) {
  if (rect.IsEmpty()) return 0.0;
  const GaussLegendreRule& rx = GetGaussLegendreRule(nx);
  const GaussLegendreRule& ry = GetGaussLegendreRule(ny);
  const double hx = 0.5 * rect.Width();
  const double mx = 0.5 * (rect.xmin + rect.xmax);
  const double hy = 0.5 * rect.Height();
  const double my = 0.5 * (rect.ymin + rect.ymax);
  if (simd::ActiveKernelVariant() == simd::KernelVariant::kFast) {
    // Fast variant: each row's weight·value product goes through the FMA
    // dot kernel (see IntegrateGL); the outer accumulation stays ordered.
    const simd::KernelSet& kernels = simd::ActiveKernels();
    alignas(64) double vals[internal::kGLChunk];
    double sum = 0.0;
    for (size_t i = 0; i < nx; ++i) {
      const double x = mx + hx * rx.nodes[i];
      double row = 0.0;
      for (size_t off = 0; off < ny; off += internal::kGLChunk) {
        const size_t m = std::min(internal::kGLChunk, ny - off);
        for (size_t j = 0; j < m; ++j) {
          vals[j] = f(x, my + hy * ry.nodes[off + j]);
        }
        row += kernels.dot(ry.weights.data() + off, vals, m);
      }
      sum += rx.weights[i] * row;
    }
    return hx * hy * sum;
  }
  double sum = 0.0;
  for (size_t i = 0; i < nx; ++i) {
    const double x = mx + hx * rx.nodes[i];
    double row = 0.0;
    for (size_t j = 0; j < ny; ++j) {
      row += ry.weights[j] * f(x, my + hy * ry.nodes[j]);
    }
    sum += rx.weights[i] * row;
  }
  return hx * hy * sum;
}

/// Monte-Carlo mean of f over \p samples draws from \p sampler, i.e. an
/// unbiased estimate of E[f(X)] for X ~ sampler. This mirrors the paper's
/// evaluation procedure for non-uniform pdfs, where positions of the query
/// issuer / uncertain object are sampled repeatedly and the average result
/// taken.
template <typename Sampler, typename F>
  requires std::is_invocable_r_v<Point, Sampler&, Rng*> &&
           std::is_invocable_r_v<double, F&, const Point&>
double MonteCarloMean(Sampler&& sampler, F&& f, size_t samples, Rng* rng) {
  ILQ_CHECK(samples > 0, "Monte-Carlo needs at least one sample");
  double sum = 0.0;
  for (size_t i = 0; i < samples; ++i) {
    sum += f(sampler(rng));
  }
  return sum / static_cast<double>(samples);
}

// Type-erased overloads (bit-identical forwards to the templates above).

double IntegrateGL(const std::function<double(double)>& f, double a, double b,
                   size_t n);

double IntegrateGL2D(const std::function<double(double, double)>& f,
                     const Rect& rect, size_t nx, size_t ny);

double MonteCarloMean(const std::function<Point(Rng*)>& sampler,
                      const std::function<double(const Point&)>& f,
                      size_t samples, Rng* rng);

}  // namespace ilq

#endif  // ILQ_PROB_INTEGRATE_H_
