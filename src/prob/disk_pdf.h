// Uniform pdf over a disk-shaped uncertainty region.
//
// §7 of the paper lists non-rectangular uncertainty regions as future work.
// Disks are the natural case for location uncertainty (GPS error circles,
// privacy cloaking radii), and the uniform-disk pdf stays fully closed-form:
// MassIn is an exact disk–rectangle overlap area ratio.

#ifndef ILQ_PROB_DISK_PDF_H_
#define ILQ_PROB_DISK_PDF_H_

#include <memory>

#include "common/status.h"
#include "geometry/circle.h"
#include "prob/pdf.h"

namespace ilq {

/// \brief Uniform distribution over a closed disk.
class UniformDiskPdf final : public UncertaintyPdf {
 public:
  /// Creates the pdf; fails unless the radius is positive.
  static Result<UniformDiskPdf> Make(const Circle& disk);

  Rect bounds() const override { return disk_.BoundingBox(); }
  double Density(const Point& p) const override;
  double MassIn(const Rect& r) const override;
  void DensityBatch(std::span<const Point> pts,
                    std::span<double> out) const override;
  void MassInBatch(std::span<const Rect> rects,
                   std::span<double> out) const override;
  void MassInCenteredBatch(std::span<const Point> centers, double w,
                           double h, std::span<double> out) const override;
  double CdfX(double x) const override;
  double CdfY(double y) const override;
  double MarginalPdfX(double x) const override;
  double MarginalPdfY(double y) const override;
  bool IsProduct() const override { return false; }
  Point Sample(Rng* rng) const override;
  std::string name() const override { return "uniform-disk"; }
  std::unique_ptr<UncertaintyPdf> Clone() const override {
    return std::make_unique<UniformDiskPdf>(*this);
  }

  const Circle& disk() const { return disk_; }

 private:
  explicit UniformDiskPdf(const Circle& disk)
      : disk_(disk), inv_area_(1.0 / disk.Area()) {}

  Circle disk_;
  double inv_area_;
};

}  // namespace ilq

#endif  // ILQ_PROB_DISK_PDF_H_
