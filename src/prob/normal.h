// Standard normal CDF and quantile numerics used by the truncated-Gaussian
// uncertainty pdf (the paper's §6 "Non-Uniform Distribution" experiments).

#ifndef ILQ_PROB_NORMAL_H_
#define ILQ_PROB_NORMAL_H_

namespace ilq {

/// Standard normal CDF Φ(z), accurate to ~1e-15 (erfc based).
double NormalCdf(double z);

/// Standard normal quantile Φ⁻¹(p) for p in (0, 1); returns ∓infinity at the
/// endpoints. Acklam's rational approximation refined with one Halley step,
/// accurate to ~1e-13.
double NormalQuantile(double p);

/// Standard normal density φ(z).
double NormalPdf(double z);

}  // namespace ilq

#endif  // ILQ_PROB_NORMAL_H_
