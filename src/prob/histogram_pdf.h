// Piecewise-constant (histogram) pdf over a rectangular uncertainty region.
//
// §3.1 states the solutions apply to *any* form of uncertainty pdf; the
// histogram pdf is ILQ's vehicle for exercising that claim with genuinely
// non-product densities. Masses, marginals and quantiles are all exact
// (piecewise-linear CDFs), so histogram objects run through every evaluator
// including the threshold-pruning machinery.

#ifndef ILQ_PROB_HISTOGRAM_PDF_H_
#define ILQ_PROB_HISTOGRAM_PDF_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "prob/pdf.h"

namespace ilq {

/// \brief A pdf that is constant within each cell of an nx × ny grid over a
/// rectangle.
class HistogramPdf final : public UncertaintyPdf {
 public:
  /// Creates a histogram pdf. \p weights is row-major (y-major: index
  /// iy * nx + ix), must have nx*ny non-negative entries with a positive
  /// sum; it is normalized internally to integrate to 1.
  static Result<HistogramPdf> Make(const Rect& region, size_t nx, size_t ny,
                                   std::vector<double> weights);

  /// Rebuilds a pdf from already-normalized cell masses (what
  /// cell_masses() returned) *without* renormalizing, so the stored masses
  /// are bit-identical to the source pdf's — the wire/snapshot codecs rely
  /// on this for exact round-trips. Fails unless the masses are finite,
  /// non-negative and sum to 1 within 1e-9.
  static Result<HistogramPdf> FromCellMasses(const Rect& region, size_t nx,
                                             size_t ny,
                                             std::vector<double> masses);

  Rect bounds() const override { return region_; }
  double Density(const Point& p) const override;
  double MassIn(const Rect& r) const override;
  void DensityBatch(std::span<const Point> pts,
                    std::span<double> out) const override;
  void MassInBatch(std::span<const Rect> rects,
                   std::span<double> out) const override;
  void MassInCenteredBatch(std::span<const Point> centers, double w,
                           double h, std::span<double> out) const override;
  double CdfX(double x) const override;
  double CdfY(double y) const override;
  double MarginalPdfX(double x) const override;
  double MarginalPdfY(double y) const override;
  void AppendBreakpointsX(std::vector<double>* out) const override;
  void AppendBreakpointsY(std::vector<double>* out) const override;
  bool IsProduct() const override { return false; }
  Point Sample(Rng* rng) const override;
  std::string name() const override { return "histogram"; }
  std::unique_ptr<UncertaintyPdf> Clone() const override {
    return std::make_unique<HistogramPdf>(*this);
  }

  size_t nx() const { return nx_; }
  size_t ny() const { return ny_; }

  /// Normalized per-cell masses, y-major (what Make computed from its
  /// weights); feed to FromCellMasses for an exact reconstruction.
  const std::vector<double>& cell_masses() const { return mass_; }

 private:
  HistogramPdf(const Rect& region, size_t nx, size_t ny,
               std::vector<double> mass);

  double CellXMin(size_t ix) const;
  double CellYMin(size_t iy) const;

  Rect region_;
  size_t nx_;
  size_t ny_;
  std::vector<double> mass_;        // normalized cell masses, y-major
  std::vector<double> cum_mass_;    // prefix sums for sampling
  std::vector<double> col_mass_;    // x-marginal per column
  std::vector<double> row_mass_;    // y-marginal per row
  double cell_w_;
  double cell_h_;
};

}  // namespace ilq

#endif  // ILQ_PROB_HISTOGRAM_PDF_H_
