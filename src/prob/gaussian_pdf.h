// Truncated-Gaussian pdf over a rectangular uncertainty region.
//
// This is the non-uniform distribution of the paper's Figure 13 experiment
// (§6.2): "the mean of the Gaussian distribution is the center of its
// uncertainty region, while the variance is one-sixth of the size of its
// uncertainty region". Following Wolfson et al. [17] the location follows a
// Gaussian *inside* the uncertainty region, i.e. the normal is truncated to
// the region and renormalized. ILQ models the two axes as independent
// truncated normals, which keeps the product structure (IsProduct) while
// matching the paper's setup.

#ifndef ILQ_PROB_GAUSSIAN_PDF_H_
#define ILQ_PROB_GAUSSIAN_PDF_H_

#include <memory>

#include "common/status.h"
#include "prob/pdf.h"

namespace ilq {

/// \brief Product of two 1-D truncated normal distributions over a
/// rectangle.
class TruncatedGaussianPdf final : public UncertaintyPdf {
 public:
  /// Creates a truncated Gaussian centred at \p region's centre with the
  /// given per-axis standard deviations. Fails when the region is degenerate
  /// or a stddev is non-positive.
  static Result<TruncatedGaussianPdf> Make(const Rect& region,
                                           double sigma_x, double sigma_y);

  /// Convenience constructor matching the paper's Figure 13 setup: sigma on
  /// each axis equal to that axis's extent divided by 6 (so the region spans
  /// ±3σ around the mean).
  static Result<TruncatedGaussianPdf> MakePaperDefault(const Rect& region);

  Rect bounds() const override { return region_; }
  double Density(const Point& p) const override;
  double MassIn(const Rect& r) const override;
  void DensityBatch(std::span<const Point> pts,
                    std::span<double> out) const override;
  void MassInBatch(std::span<const Rect> rects,
                   std::span<double> out) const override;
  void MassInCenteredBatch(std::span<const Point> centers, double w,
                           double h, std::span<double> out) const override;
  double CdfX(double x) const override;
  double CdfY(double y) const override;
  double QuantileX(double p) const override;
  double QuantileY(double p) const override;
  double MarginalPdfX(double x) const override;
  double MarginalPdfY(double y) const override;
  bool IsProduct() const override { return true; }
  Point Sample(Rng* rng) const override;
  std::string name() const override { return "gaussian"; }
  std::unique_ptr<UncertaintyPdf> Clone() const override {
    return std::make_unique<TruncatedGaussianPdf>(*this);
  }

  double sigma_x() const { return sx_; }
  double sigma_y() const { return sy_; }

 private:
  TruncatedGaussianPdf(const Rect& region, double sx, double sy);

  // 1-D truncated-normal building blocks over [lo, hi] with mean mu.
  double Cdf1D(double v, double mu, double sigma, double lo, double hi,
               double z_mass) const;
  double Quantile1D(double p, double mu, double sigma, double lo, double hi,
                    double z_mass) const;

  Rect region_;
  double sx_;
  double sy_;
  // Normalizing masses Φ((hi−μ)/σ) − Φ((lo−μ)/σ) per axis.
  double mass_x_;
  double mass_y_;
};

}  // namespace ilq

#endif  // ILQ_PROB_GAUSSIAN_PDF_H_
