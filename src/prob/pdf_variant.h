// Closed-world pdf variant — the devirtualized fast path of the prob layer.
//
// UncertaintyPdf's virtual dispatch (pdf.h) sits inside the per-sample loops
// of every evaluator, which blocks inlining into the templated quadrature
// kernels (prob/integrate.h) and blocks auto-vectorization of the
// qualification loops. PdfVariant closes the world to the four concrete
// pdfs the workloads use, so callers can std::visit once per object and run
// a fully monomorphized kernel:
//
//   std::visit([&](const auto& pdf) { /* pdf.Density inlines here */ }, v);
//
// Every concrete pdf additionally exposes batched entry points
// (DensityBatch / MassInBatch) implemented as tight scalar loops over the
// devirtualized scalar operation — bit-identical to calling the scalar op
// in a loop, but with the call boundary hoisted out so the compiler can
// auto-vectorize (uniform/histogram) or at least inline (gaussian/disk).
//
// The virtual interface stays available in both directions:
//   * AsUncertaintyPdf(variant) returns the UncertaintyPdf& view of any
//     alternative (the four concrete pdfs derive from it; AnyPdf forwards);
//   * AnyPdf is the escape hatch for external UncertaintyPdf subclasses —
//     it rides inside the variant and forwards virtually, so open-world
//     pdfs still work everywhere, just without the fast path.

#ifndef ILQ_PROB_PDF_VARIANT_H_
#define ILQ_PROB_PDF_VARIANT_H_

#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "prob/disk_pdf.h"
#include "prob/gaussian_pdf.h"
#include "prob/histogram_pdf.h"
#include "prob/pdf.h"
#include "prob/uniform_pdf.h"

namespace ilq {

/// \brief Escape hatch: wraps an arbitrary UncertaintyPdf subclass so it can
/// live inside PdfVariant.
///
/// Mirrors the full UncertaintyPdf surface (plus the batched entry points)
/// by forwarding through the virtual interface, so generic kernels
/// instantiate for it unchanged — they just keep paying virtual dispatch.
/// Copying deep-clones the wrapped pdf, matching UncertainObject's value
/// semantics.
class AnyPdf final {
 public:
  /// Takes ownership; \p pdf must be non-null (checked).
  explicit AnyPdf(std::unique_ptr<UncertaintyPdf> pdf);

  AnyPdf(const AnyPdf& o) : pdf_(o.pdf_->Clone()) {}
  AnyPdf& operator=(const AnyPdf& o) {
    if (this != &o) pdf_ = o.pdf_->Clone();
    return *this;
  }
  AnyPdf(AnyPdf&&) noexcept = default;
  AnyPdf& operator=(AnyPdf&&) noexcept = default;

  /// The wrapped pdf (virtual interface view).
  const UncertaintyPdf& impl() const { return *pdf_; }

  Rect bounds() const { return pdf_->bounds(); }
  double Density(const Point& p) const { return pdf_->Density(p); }
  double MassIn(const Rect& r) const { return pdf_->MassIn(r); }
  double CdfX(double x) const { return pdf_->CdfX(x); }
  double CdfY(double y) const { return pdf_->CdfY(y); }
  double QuantileX(double p) const { return pdf_->QuantileX(p); }
  double QuantileY(double p) const { return pdf_->QuantileY(p); }
  double MarginalPdfX(double x) const { return pdf_->MarginalPdfX(x); }
  double MarginalPdfY(double y) const { return pdf_->MarginalPdfY(y); }
  void AppendBreakpointsX(std::vector<double>* out) const {
    pdf_->AppendBreakpointsX(out);
  }
  void AppendBreakpointsY(std::vector<double>* out) const {
    pdf_->AppendBreakpointsY(out);
  }
  bool IsProduct() const { return pdf_->IsProduct(); }
  Point Sample(Rng* rng) const { return pdf_->Sample(rng); }
  std::string name() const { return pdf_->name(); }

  /// Batched entry points (see UncertaintyPdf::DensityBatch): virtual per
  /// element — correctness parity with the fast path, not speed.
  void DensityBatch(std::span<const Point> pts, std::span<double> out) const {
    pdf_->DensityBatch(pts, out);
  }
  void MassInBatch(std::span<const Rect> rects, std::span<double> out) const {
    pdf_->MassInBatch(rects, out);
  }
  void MassInCenteredBatch(std::span<const Point> centers, double w, double h,
                           std::span<double> out) const {
    pdf_->MassInCenteredBatch(centers, w, h, out);
  }

 private:
  std::unique_ptr<UncertaintyPdf> pdf_;
};

/// \brief The closed world of pdfs the evaluators monomorphize over, plus
/// the AnyPdf escape hatch for everything else.
using PdfVariant = std::variant<UniformRectPdf, UniformDiskPdf,
                                TruncatedGaussianPdf, HistogramPdf, AnyPdf>;

/// Compile-time mirror of IsProduct() for the closed-world alternatives, so
/// pair dispatch can pick the separable kernel with `if constexpr`. AnyPdf
/// is `false` here — pair dispatch must not rely on it (the wrapped pdf
/// decides at runtime; see core/duality.h's QualifyPair fallback).
template <typename T>
inline constexpr bool kPdfIsProduct = false;
template <>
inline constexpr bool kPdfIsProduct<UniformRectPdf> = true;
template <>
inline constexpr bool kPdfIsProduct<TruncatedGaussianPdf> = true;

/// The UncertaintyPdf& view of one alternative: the concrete pdfs upcast,
/// AnyPdf exposes its wrapped pdf.
template <typename T>
const UncertaintyPdf& PdfBaseRef(const T& pdf) {
  if constexpr (std::is_same_v<T, AnyPdf>) {
    return pdf.impl();
  } else {
    return pdf;
  }
}

/// The UncertaintyPdf& view of the variant. The reference points into \p v
/// and stays valid while the variant does.
inline const UncertaintyPdf& AsUncertaintyPdf(const PdfVariant& v) {
  return std::visit(
      [](const auto& pdf) -> const UncertaintyPdf& { return PdfBaseRef(pdf); },
      v);
}

/// Moves an owned pdf into the variant: the four concrete types land as
/// their alternative (fast path), anything else is wrapped in AnyPdf.
/// \p pdf must be non-null (checked).
PdfVariant MakePdfVariant(std::unique_ptr<UncertaintyPdf> pdf);

// ---- Non-virtual dispatch helpers -----------------------------------------
// One std::visit per call; prefer visiting once yourself when looping.

Rect PdfBounds(const PdfVariant& v);
double PdfDensity(const PdfVariant& v, const Point& p);
double PdfMassIn(const PdfVariant& v, const Rect& r);
bool PdfIsProduct(const PdfVariant& v);
Point PdfSample(const PdfVariant& v, Rng* rng);
std::string PdfName(const PdfVariant& v);

/// Batched density: out[i] = Density(pts[i]). Visits once, then runs the
/// alternative's tight scalar loop. Sizes must match (checked).
void DensityBatch(const PdfVariant& v, std::span<const Point> pts,
                  std::span<double> out);

/// Batched mass: out[i] = MassIn(rects[i]). Visits once.
void MassInBatch(const PdfVariant& v, std::span<const Rect> rects,
                 std::span<double> out);

/// Batched mass over equal-shaped dual ranges:
/// out[i] = MassIn(Rect::Centered(centers[i], w, h)). Visits once.
void MassInCenteredBatch(const PdfVariant& v, std::span<const Point> centers,
                         double w, double h, std::span<double> out);

}  // namespace ilq

#endif  // ILQ_PROB_PDF_VARIANT_H_
