#include "prob/pdf_variant.h"

#include "common/logging.h"

namespace ilq {

AnyPdf::AnyPdf(std::unique_ptr<UncertaintyPdf> pdf) : pdf_(std::move(pdf)) {
  ILQ_CHECK(pdf_ != nullptr, "AnyPdf requires a non-null pdf");
}

PdfVariant MakePdfVariant(std::unique_ptr<UncertaintyPdf> pdf) {
  ILQ_CHECK(pdf != nullptr, "MakePdfVariant requires a non-null pdf");
  // The four closed-world alternatives are copied out of the owned pdf (they
  // are small value types); anything else keeps its allocation inside AnyPdf.
  if (auto* p = dynamic_cast<UniformRectPdf*>(pdf.get())) {
    return PdfVariant(*p);
  }
  if (auto* p = dynamic_cast<UniformDiskPdf*>(pdf.get())) {
    return PdfVariant(*p);
  }
  if (auto* p = dynamic_cast<TruncatedGaussianPdf*>(pdf.get())) {
    return PdfVariant(*p);
  }
  if (auto* p = dynamic_cast<HistogramPdf*>(pdf.get())) {
    return PdfVariant(*p);
  }
  return PdfVariant(AnyPdf(std::move(pdf)));
}

Rect PdfBounds(const PdfVariant& v) {
  return std::visit([](const auto& pdf) { return pdf.bounds(); }, v);
}

double PdfDensity(const PdfVariant& v, const Point& p) {
  return std::visit([&](const auto& pdf) { return pdf.Density(p); }, v);
}

double PdfMassIn(const PdfVariant& v, const Rect& r) {
  return std::visit([&](const auto& pdf) { return pdf.MassIn(r); }, v);
}

bool PdfIsProduct(const PdfVariant& v) {
  return std::visit([](const auto& pdf) { return pdf.IsProduct(); }, v);
}

Point PdfSample(const PdfVariant& v, Rng* rng) {
  return std::visit([&](const auto& pdf) { return pdf.Sample(rng); }, v);
}

std::string PdfName(const PdfVariant& v) {
  return std::visit([](const auto& pdf) { return pdf.name(); }, v);
}

void DensityBatch(const PdfVariant& v, std::span<const Point> pts,
                  std::span<double> out) {
  std::visit([&](const auto& pdf) { pdf.DensityBatch(pts, out); }, v);
}

void MassInBatch(const PdfVariant& v, std::span<const Rect> rects,
                 std::span<double> out) {
  std::visit([&](const auto& pdf) { pdf.MassInBatch(rects, out); }, v);
}

void MassInCenteredBatch(const PdfVariant& v, std::span<const Point> centers,
                         double w, double h, std::span<double> out) {
  std::visit(
      [&](const auto& pdf) { pdf.MassInCenteredBatch(centers, w, h, out); },
      v);
}

}  // namespace ilq
