// Uniform pdf over a rectangular uncertainty region — the paper's default
// "worst-case" distribution (§3.1: fi(x,y) = 1/|Ui|) and the pdf used by
// every experiment except Figure 13.

#ifndef ILQ_PROB_UNIFORM_PDF_H_
#define ILQ_PROB_UNIFORM_PDF_H_

#include <memory>

#include "common/status.h"
#include "prob/pdf.h"

namespace ilq {

/// \brief Uniform distribution over a non-degenerate axis-parallel
/// rectangle.
///
/// All operations are closed-form: MassIn is an area ratio (this is exactly
/// Eq. 6's geometry), marginals are linear ramps and quantiles are linear
/// interpolation.
class UniformRectPdf final : public UncertaintyPdf {
 public:
  /// Creates the pdf; fails unless \p region has positive width and height.
  static Result<UniformRectPdf> Make(const Rect& region);

  Rect bounds() const override { return region_; }
  double Density(const Point& p) const override;
  double MassIn(const Rect& r) const override;
  void DensityBatch(std::span<const Point> pts,
                    std::span<double> out) const override;
  void MassInBatch(std::span<const Rect> rects,
                   std::span<double> out) const override;
  void MassInCenteredBatch(std::span<const Point> centers, double w,
                           double h, std::span<double> out) const override;
  double CdfX(double x) const override;
  double CdfY(double y) const override;
  double QuantileX(double p) const override;
  double QuantileY(double p) const override;
  double MarginalPdfX(double x) const override {
    return (x >= region_.xmin && x <= region_.xmax) ? 1.0 / region_.Width()
                                                    : 0.0;
  }
  double MarginalPdfY(double y) const override {
    return (y >= region_.ymin && y <= region_.ymax) ? 1.0 / region_.Height()
                                                    : 0.0;
  }
  bool IsProduct() const override { return true; }
  Point Sample(Rng* rng) const override;
  std::string name() const override { return "uniform"; }
  std::unique_ptr<UncertaintyPdf> Clone() const override {
    return std::make_unique<UniformRectPdf>(*this);
  }

 private:
  explicit UniformRectPdf(const Rect& region)
      : region_(region), inv_area_(1.0 / region.Area()) {}

  Rect region_;
  double inv_area_;
};

}  // namespace ilq

#endif  // ILQ_PROB_UNIFORM_PDF_H_
