#include "prob/gaussian_pdf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "prob/normal.h"
#include "simd/qual_kernels.h"

namespace ilq {

namespace {

// Hoists the pdf into the kernel-facing parameter block (see GaussianParams
// in simd/qual_kernels.h). The cdf_lo_* terms are what Cdf1D recomputes on
// every interior call — NormalCdf is deterministic, so evaluating them once
// here is bit-identical and halves the transcendental count per element.
simd::GaussianParams KernelParams(const Rect& region, double sx, double sy,
                                  double mass_x, double mass_y) {
  const Point mu = region.Center();
  simd::GaussianParams p;
  p.xmin = region.xmin;
  p.xmax = region.xmax;
  p.ymin = region.ymin;
  p.ymax = region.ymax;
  p.mux = mu.x;
  p.muy = mu.y;
  p.sx = sx;
  p.sy = sy;
  p.mass_x = mass_x;
  p.mass_y = mass_y;
  p.cdf_lo_x = NormalCdf((region.xmin - mu.x) / sx);
  p.cdf_lo_y = NormalCdf((region.ymin - mu.y) / sy);
  p.normal_cdf = &NormalCdf;
  return p;
}

}  // namespace

Result<TruncatedGaussianPdf> TruncatedGaussianPdf::Make(const Rect& region,
                                                        double sigma_x,
                                                        double sigma_y) {
  if (region.IsEmpty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument(
        "gaussian pdf requires a region with positive area, got " +
        region.ToString());
  }
  if (sigma_x <= 0.0 || sigma_y <= 0.0) {
    return Status::InvalidArgument("gaussian pdf requires positive sigmas");
  }
  return TruncatedGaussianPdf(region, sigma_x, sigma_y);
}

Result<TruncatedGaussianPdf> TruncatedGaussianPdf::MakePaperDefault(
    const Rect& region) {
  return Make(region, region.Width() / 6.0, region.Height() / 6.0);
}

TruncatedGaussianPdf::TruncatedGaussianPdf(const Rect& region, double sx,
                                           double sy)
    : region_(region), sx_(sx), sy_(sy) {
  const Point mu = region.Center();
  mass_x_ = NormalCdf((region.xmax - mu.x) / sx_) -
            NormalCdf((region.xmin - mu.x) / sx_);
  mass_y_ = NormalCdf((region.ymax - mu.y) / sy_) -
            NormalCdf((region.ymin - mu.y) / sy_);
}

double TruncatedGaussianPdf::Density(const Point& p) const {
  if (!region_.Contains(p)) return 0.0;
  const Point mu = region_.Center();
  const double fx = NormalPdf((p.x - mu.x) / sx_) / (sx_ * mass_x_);
  const double fy = NormalPdf((p.y - mu.y) / sy_) / (sy_ * mass_y_);
  return fx * fy;
}

void TruncatedGaussianPdf::DensityBatch(std::span<const Point> pts,
                                        std::span<double> out) const {
  ILQ_CHECK(pts.size() == out.size(), "DensityBatch size mismatch");
  // NormalPdf dominates, so the win is hoisting the dispatch boundary; the
  // class is final, so this is a direct (bit-identical) call per element.
  for (size_t i = 0; i < pts.size(); ++i) out[i] = Density(pts[i]);
}

void TruncatedGaussianPdf::MassInBatch(std::span<const Rect> rects,
                                       std::span<double> out) const {
  ILQ_CHECK(rects.size() == out.size(), "MassInBatch size mismatch");
  for (size_t i = 0; i < rects.size(); ++i) out[i] = MassIn(rects[i]);
}

void TruncatedGaussianPdf::MassInCenteredBatch(std::span<const Point> centers,
                                               double w, double h,
                                               std::span<double> out) const {
  ILQ_CHECK(centers.size() == out.size(),
            "MassInCenteredBatch size mismatch");
  simd::ActiveKernels().gaussian_mass_centered(
      KernelParams(region_, sx_, sy_, mass_x_, mass_y_), centers.data(),
      centers.size(), w, h, out.data());
}

double TruncatedGaussianPdf::Cdf1D(double v, double mu, double sigma,
                                   double lo, double hi,
                                   double z_mass) const {
  if (v <= lo) return 0.0;
  if (v >= hi) return 1.0;
  return (NormalCdf((v - mu) / sigma) - NormalCdf((lo - mu) / sigma)) /
         z_mass;
}

double TruncatedGaussianPdf::Quantile1D(double p, double mu, double sigma,
                                        double lo, double hi,
                                        double z_mass) const {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return lo;
  if (p >= 1.0) return hi;
  const double target = NormalCdf((lo - mu) / sigma) + p * z_mass;
  const double v = mu + sigma * NormalQuantile(target);
  return std::clamp(v, lo, hi);
}

double TruncatedGaussianPdf::MassIn(const Rect& r) const {
  const Rect i = region_.Intersection(r);
  if (i.IsEmpty()) return 0.0;
  // Product of per-axis truncated-normal interval masses.
  return (CdfX(i.xmax) - CdfX(i.xmin)) * (CdfY(i.ymax) - CdfY(i.ymin));
}

double TruncatedGaussianPdf::CdfX(double x) const {
  return Cdf1D(x, region_.Center().x, sx_, region_.xmin, region_.xmax,
               mass_x_);
}

double TruncatedGaussianPdf::CdfY(double y) const {
  return Cdf1D(y, region_.Center().y, sy_, region_.ymin, region_.ymax,
               mass_y_);
}

double TruncatedGaussianPdf::QuantileX(double p) const {
  return Quantile1D(p, region_.Center().x, sx_, region_.xmin, region_.xmax,
                    mass_x_);
}

double TruncatedGaussianPdf::MarginalPdfX(double x) const {
  if (x < region_.xmin || x > region_.xmax) return 0.0;
  return NormalPdf((x - region_.Center().x) / sx_) / (sx_ * mass_x_);
}

double TruncatedGaussianPdf::MarginalPdfY(double y) const {
  if (y < region_.ymin || y > region_.ymax) return 0.0;
  return NormalPdf((y - region_.Center().y) / sy_) / (sy_ * mass_y_);
}

double TruncatedGaussianPdf::QuantileY(double p) const {
  return Quantile1D(p, region_.Center().y, sy_, region_.ymin, region_.ymax,
                    mass_y_);
}

Point TruncatedGaussianPdf::Sample(Rng* rng) const {
  // Inverse-CDF sampling keeps determinism simple and is exact for the
  // truncated marginals.
  return Point(QuantileX(rng->NextDouble()), QuantileY(rng->NextDouble()));
}

}  // namespace ilq
