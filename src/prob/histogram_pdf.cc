#include "prob/histogram_pdf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "simd/qual_kernels.h"

namespace ilq {

Result<HistogramPdf> HistogramPdf::Make(const Rect& region, size_t nx,
                                        size_t ny,
                                        std::vector<double> weights) {
  if (region.IsEmpty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument(
        "histogram pdf requires a region with positive area");
  }
  if (nx == 0 || ny == 0) {
    return Status::InvalidArgument("histogram grid must be at least 1x1");
  }
  if (weights.size() != nx * ny) {
    return Status::InvalidArgument("histogram weights size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "histogram weights must be finite and non-negative");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("histogram weights must not all be zero");
  }
  for (double& w : weights) w /= total;
  return HistogramPdf(region, nx, ny, std::move(weights));
}

Result<HistogramPdf> HistogramPdf::FromCellMasses(const Rect& region,
                                                  size_t nx, size_t ny,
                                                  std::vector<double> masses) {
  if (region.IsEmpty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument(
        "histogram pdf requires a region with positive area");
  }
  if (nx == 0 || ny == 0) {
    return Status::InvalidArgument("histogram grid must be at least 1x1");
  }
  if (masses.size() != nx * ny) {
    return Status::InvalidArgument("histogram masses size mismatch");
  }
  double total = 0.0;
  for (double m : masses) {
    if (m < 0.0 || !std::isfinite(m)) {
      return Status::InvalidArgument(
          "histogram masses must be finite and non-negative");
    }
    total += m;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        "histogram masses must sum to 1 (pass raw weights to Make instead)");
  }
  return HistogramPdf(region, nx, ny, std::move(masses));
}

HistogramPdf::HistogramPdf(const Rect& region, size_t nx, size_t ny,
                           std::vector<double> mass)
    : region_(region),
      nx_(nx),
      ny_(ny),
      mass_(std::move(mass)),
      cell_w_(region.Width() / static_cast<double>(nx)),
      cell_h_(region.Height() / static_cast<double>(ny)) {
  cum_mass_.resize(mass_.size() + 1, 0.0);
  for (size_t i = 0; i < mass_.size(); ++i) {
    cum_mass_[i + 1] = cum_mass_[i] + mass_[i];
  }
  col_mass_.assign(nx_, 0.0);
  row_mass_.assign(ny_, 0.0);
  for (size_t iy = 0; iy < ny_; ++iy) {
    for (size_t ix = 0; ix < nx_; ++ix) {
      const double m = mass_[iy * nx_ + ix];
      col_mass_[ix] += m;
      row_mass_[iy] += m;
    }
  }
}

double HistogramPdf::CellXMin(size_t ix) const {
  return region_.xmin + static_cast<double>(ix) * cell_w_;
}

double HistogramPdf::CellYMin(size_t iy) const {
  return region_.ymin + static_cast<double>(iy) * cell_h_;
}

double HistogramPdf::Density(const Point& p) const {
  if (!region_.Contains(p)) return 0.0;
  size_t ix = static_cast<size_t>((p.x - region_.xmin) / cell_w_);
  size_t iy = static_cast<size_t>((p.y - region_.ymin) / cell_h_);
  ix = std::min(ix, nx_ - 1);  // right/top boundary belongs to the last cell
  iy = std::min(iy, ny_ - 1);
  return mass_[iy * nx_ + ix] / (cell_w_ * cell_h_);
}

double HistogramPdf::MassIn(const Rect& r) const {
  const Rect i = region_.Intersection(r);
  if (i.IsEmpty()) return 0.0;
  // Density is constant per cell, so the mass in a sub-rectangle of a cell
  // is the cell mass times the covered area fraction. Only cells touching
  // the clip rectangle are visited.
  const auto first_ix = static_cast<size_t>(
      std::max(0.0, std::floor((i.xmin - region_.xmin) / cell_w_)));
  const auto first_iy = static_cast<size_t>(
      std::max(0.0, std::floor((i.ymin - region_.ymin) / cell_h_)));
  double total = 0.0;
  for (size_t iy = first_iy; iy < ny_; ++iy) {
    const double cy0 = CellYMin(iy);
    if (cy0 >= i.ymax) break;
    const double oy = std::min(cy0 + cell_h_, i.ymax) - std::max(cy0, i.ymin);
    if (oy <= 0.0) continue;
    for (size_t ix = first_ix; ix < nx_; ++ix) {
      const double cx0 = CellXMin(ix);
      if (cx0 >= i.xmax) break;
      const double ox =
          std::min(cx0 + cell_w_, i.xmax) - std::max(cx0, i.xmin);
      if (ox <= 0.0) continue;
      total += mass_[iy * nx_ + ix] * (ox * oy) / (cell_w_ * cell_h_);
    }
  }
  return total;
}

void HistogramPdf::DensityBatch(std::span<const Point> pts,
                                std::span<double> out) const {
  ILQ_CHECK(pts.size() == out.size(), "DensityBatch size mismatch");
  // The wide tiers index cells with int32 arithmetic and gathers, so grids
  // beyond the kernel cap fall back to the per-element scalar loop. The cap
  // check is tier-independent — every tier takes the same branch, keeping
  // strict-mode answers bit-identical across SIMD levels.
  if (nx_ <= simd::kHistogramKernelMaxCells &&
      ny_ <= simd::kHistogramKernelMaxCells) {
    const simd::HistogramParams params{region_.xmin,
                                       region_.xmax,
                                       region_.ymin,
                                       region_.ymax,
                                       cell_w_,
                                       cell_h_,
                                       cell_w_ * cell_h_,
                                       static_cast<int32_t>(nx_),
                                       static_cast<int32_t>(ny_),
                                       mass_.data()};
    simd::ActiveKernels().histogram_density(params, pts.data(), pts.size(),
                                            out.data());
    return;
  }
  for (size_t i = 0; i < pts.size(); ++i) out[i] = Density(pts[i]);
}

void HistogramPdf::MassInBatch(std::span<const Rect> rects,
                               std::span<double> out) const {
  ILQ_CHECK(rects.size() == out.size(), "MassInBatch size mismatch");
  for (size_t i = 0; i < rects.size(); ++i) out[i] = MassIn(rects[i]);
}

void HistogramPdf::MassInCenteredBatch(std::span<const Point> centers,
                                       double w, double h,
                                       std::span<double> out) const {
  ILQ_CHECK(centers.size() == out.size(),
            "MassInCenteredBatch size mismatch");
  for (size_t i = 0; i < centers.size(); ++i) {
    out[i] = MassIn(Rect::Centered(centers[i], w, h));
  }
}

double HistogramPdf::CdfX(double x) const {
  if (x <= region_.xmin) return 0.0;
  if (x >= region_.xmax) return 1.0;
  const double offset = (x - region_.xmin) / cell_w_;
  const size_t full = std::min(static_cast<size_t>(offset), nx_ - 1);
  double cdf = 0.0;
  for (size_t ix = 0; ix < full; ++ix) cdf += col_mass_[ix];
  cdf += col_mass_[full] * (offset - static_cast<double>(full));
  return std::min(cdf, 1.0);
}

double HistogramPdf::CdfY(double y) const {
  if (y <= region_.ymin) return 0.0;
  if (y >= region_.ymax) return 1.0;
  const double offset = (y - region_.ymin) / cell_h_;
  const size_t full = std::min(static_cast<size_t>(offset), ny_ - 1);
  double cdf = 0.0;
  for (size_t iy = 0; iy < full; ++iy) cdf += row_mass_[iy];
  cdf += row_mass_[full] * (offset - static_cast<double>(full));
  return std::min(cdf, 1.0);
}

double HistogramPdf::MarginalPdfX(double x) const {
  if (x < region_.xmin || x > region_.xmax) return 0.0;
  size_t ix = static_cast<size_t>((x - region_.xmin) / cell_w_);
  ix = std::min(ix, nx_ - 1);
  return col_mass_[ix] / cell_w_;
}

double HistogramPdf::MarginalPdfY(double y) const {
  if (y < region_.ymin || y > region_.ymax) return 0.0;
  size_t iy = static_cast<size_t>((y - region_.ymin) / cell_h_);
  iy = std::min(iy, ny_ - 1);
  return row_mass_[iy] / cell_h_;
}

void HistogramPdf::AppendBreakpointsX(std::vector<double>* out) const {
  for (size_t ix = 1; ix < nx_; ++ix) out->push_back(CellXMin(ix));
}

void HistogramPdf::AppendBreakpointsY(std::vector<double>* out) const {
  for (size_t iy = 1; iy < ny_; ++iy) out->push_back(CellYMin(iy));
}

Point HistogramPdf::Sample(Rng* rng) const {
  // Pick a cell by cumulative mass, then a uniform point within the cell.
  const double u = rng->NextDouble();
  const auto it = std::upper_bound(cum_mass_.begin(), cum_mass_.end(), u);
  size_t idx = static_cast<size_t>(
      std::max<ptrdiff_t>(0, it - cum_mass_.begin() - 1));
  idx = std::min(idx, mass_.size() - 1);
  const size_t iy = idx / nx_;
  const size_t ix = idx % nx_;
  const double x0 = CellXMin(ix);
  const double y0 = CellYMin(iy);
  return Point(rng->Uniform(x0, x0 + cell_w_),
               rng->Uniform(y0, y0 + cell_h_));
}

}  // namespace ilq
