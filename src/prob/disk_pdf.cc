#include "prob/disk_pdf.h"

#include <cmath>

#include "common/logging.h"
#include "simd/qual_kernels.h"

namespace ilq {

Result<UniformDiskPdf> UniformDiskPdf::Make(const Circle& disk) {
  if (disk.radius <= 0.0) {
    return Status::InvalidArgument("disk pdf requires a positive radius");
  }
  return UniformDiskPdf(disk);
}

double UniformDiskPdf::Density(const Point& p) const {
  return disk_.Contains(p) ? inv_area_ : 0.0;
}

double UniformDiskPdf::MassIn(const Rect& r) const {
  return disk_.IntersectionArea(r) * inv_area_;
}

void UniformDiskPdf::DensityBatch(std::span<const Point> pts,
                                  std::span<double> out) const {
  ILQ_CHECK(pts.size() == out.size(), "DensityBatch size mismatch");
  // Dispatches to the active SIMD tier's disk kernel; every tier replays
  // Circle::Contains' squared-distance compare exactly (mul/mul/add, no
  // FMA), so results are bit-identical to the scalar Density loop.
  const simd::DiskParams params{disk_.center.x, disk_.center.y,
                                disk_.radius * disk_.radius, inv_area_};
  simd::ActiveKernels().disk_density(params, pts.data(), pts.size(),
                                     out.data());
}

void UniformDiskPdf::MassInBatch(std::span<const Rect> rects,
                                 std::span<double> out) const {
  ILQ_CHECK(rects.size() == out.size(), "MassInBatch size mismatch");
  // The disk–rect overlap area is call-heavy; the win here is hoisting the
  // virtual-dispatch boundary, not vectorization. Final class: direct
  // (bit-identical) call per element.
  for (size_t i = 0; i < rects.size(); ++i) out[i] = MassIn(rects[i]);
}

void UniformDiskPdf::MassInCenteredBatch(std::span<const Point> centers,
                                         double w, double h,
                                         std::span<double> out) const {
  ILQ_CHECK(centers.size() == out.size(),
            "MassInCenteredBatch size mismatch");
  for (size_t i = 0; i < centers.size(); ++i) {
    out[i] = MassIn(Rect::Centered(centers[i], w, h));
  }
}

double UniformDiskPdf::CdfX(double x) const {
  const Rect b = bounds();
  if (x <= b.xmin) return 0.0;
  if (x >= b.xmax) return 1.0;
  // Mass of the half-plane {X <= x}, clipped to the bounding box in y.
  return MassIn(Rect(b.xmin, x, b.ymin, b.ymax));
}

double UniformDiskPdf::CdfY(double y) const {
  const Rect b = bounds();
  if (y <= b.ymin) return 0.0;
  if (y >= b.ymax) return 1.0;
  return MassIn(Rect(b.xmin, b.xmax, b.ymin, y));
}

double UniformDiskPdf::MarginalPdfX(double x) const {
  // Chord length at abscissa x times the constant density.
  const double dx = x - disk_.center.x;
  const double r2 = disk_.radius * disk_.radius;
  if (dx * dx >= r2) return 0.0;
  return 2.0 * std::sqrt(r2 - dx * dx) * inv_area_;
}

double UniformDiskPdf::MarginalPdfY(double y) const {
  const double dy = y - disk_.center.y;
  const double r2 = disk_.radius * disk_.radius;
  if (dy * dy >= r2) return 0.0;
  return 2.0 * std::sqrt(r2 - dy * dy) * inv_area_;
}

Point UniformDiskPdf::Sample(Rng* rng) const {
  // Polar sampling: radius ~ sqrt(U) for area uniformity.
  const double r = disk_.radius * std::sqrt(rng->NextDouble());
  const double theta = rng->Uniform(0.0, 2.0 * 3.14159265358979323846);
  return Point(disk_.center.x + r * std::cos(theta),
               disk_.center.y + r * std::sin(theta));
}

}  // namespace ilq
