#include "prob/uniform_pdf.h"

#include <algorithm>

#include "common/logging.h"
#include "simd/qual_kernels.h"

namespace ilq {

Result<UniformRectPdf> UniformRectPdf::Make(const Rect& region) {
  if (region.IsEmpty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument(
        "uniform pdf requires a region with positive area, got " +
        region.ToString());
  }
  return UniformRectPdf(region);
}

double UniformRectPdf::Density(const Point& p) const {
  return region_.Contains(p) ? inv_area_ : 0.0;
}

double UniformRectPdf::MassIn(const Rect& r) const {
  return region_.IntersectionArea(r) * inv_area_;
}

// The three batch entry points dispatch to the explicit-width kernel table
// for the active SIMD tier (src/simd/qual_kernels.h). Every tier replays
// the exact compare/min/max/mul arithmetic of the scalar members above —
// in strict mode (the default) answers are bit-identical across tiers and
// to the scalar Density/MassIn loops the batches replaced, which the
// simd_differential suites pin per tier.

namespace {
simd::UniformRectParams RectParams(const Rect& r, double inv_area) {
  return {r.xmin, r.xmax, r.ymin, r.ymax, inv_area};
}
}  // namespace

void UniformRectPdf::DensityBatch(std::span<const Point> pts,
                                  std::span<double> out) const {
  ILQ_CHECK(pts.size() == out.size(), "DensityBatch size mismatch");
  simd::ActiveKernels().uniform_density(RectParams(region_, inv_area_),
                                        pts.data(), pts.size(), out.data());
}

void UniformRectPdf::MassInBatch(std::span<const Rect> rects,
                                 std::span<double> out) const {
  ILQ_CHECK(rects.size() == out.size(), "MassInBatch size mismatch");
  simd::ActiveKernels().uniform_mass_in(RectParams(region_, inv_area_),
                                        rects.data(), rects.size(),
                                        out.data());
}

void UniformRectPdf::MassInCenteredBatch(std::span<const Point> centers,
                                         double w, double h,
                                         std::span<double> out) const {
  ILQ_CHECK(centers.size() == out.size(),
            "MassInCenteredBatch size mismatch");
  simd::ActiveKernels().uniform_mass_centered(RectParams(region_, inv_area_),
                                              centers.data(), centers.size(),
                                              w, h, out.data());
}

double UniformRectPdf::CdfX(double x) const {
  if (x <= region_.xmin) return 0.0;
  if (x >= region_.xmax) return 1.0;
  return (x - region_.xmin) / region_.Width();
}

double UniformRectPdf::CdfY(double y) const {
  if (y <= region_.ymin) return 0.0;
  if (y >= region_.ymax) return 1.0;
  return (y - region_.ymin) / region_.Height();
}

double UniformRectPdf::QuantileX(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  return region_.xmin + p * region_.Width();
}

double UniformRectPdf::QuantileY(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  return region_.ymin + p * region_.Height();
}

Point UniformRectPdf::Sample(Rng* rng) const {
  return Point(rng->Uniform(region_.xmin, region_.xmax),
               rng->Uniform(region_.ymin, region_.ymax));
}

}  // namespace ilq
