#include "prob/uniform_pdf.h"

#include <algorithm>

#include "common/logging.h"

namespace ilq {

Result<UniformRectPdf> UniformRectPdf::Make(const Rect& region) {
  if (region.IsEmpty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument(
        "uniform pdf requires a region with positive area, got " +
        region.ToString());
  }
  return UniformRectPdf(region);
}

double UniformRectPdf::Density(const Point& p) const {
  return region_.Contains(p) ? inv_area_ : 0.0;
}

double UniformRectPdf::MassIn(const Rect& r) const {
  return region_.IntersectionArea(r) * inv_area_;
}

void UniformRectPdf::DensityBatch(std::span<const Point> pts,
                                  std::span<double> out) const {
  ILQ_CHECK(pts.size() == out.size(), "DensityBatch size mismatch");
  // Branchless compare-and-select over the hoisted region bounds; `&`
  // instead of `&&` drops the short-circuit control flow so the loop
  // auto-vectorizes. Same comparisons as Density (the region is
  // non-degenerate by construction), so results stay bit-identical.
  const double xmin = region_.xmin, xmax = region_.xmax;
  const double ymin = region_.ymin, ymax = region_.ymax;
  const double inv_area = inv_area_;
  const Point* p = pts.data();
  double* o = out.data();
  const size_t n = pts.size();
  for (size_t i = 0; i < n; ++i) {
    const bool inside = (p[i].x >= xmin) & (p[i].x <= xmax) &
                        (p[i].y >= ymin) & (p[i].y <= ymax);
    o[i] = inside ? inv_area : 0.0;
  }
}

void UniformRectPdf::MassInBatch(std::span<const Rect> rects,
                                 std::span<double> out) const {
  ILQ_CHECK(rects.size() == out.size(), "MassInBatch size mismatch");
  // Unfolded IntersectionArea with the empty-overlap guard expressed as
  // max(·, 0) clamps instead of a compare-and-select, so the loop is
  // branch-free (minpd/maxpd) and vectorizes. Bit-identical to the scalar
  // path: positive overlaps give the exact same (w*h)*inv_area_ product,
  // and clamped overlaps give +0.0 exactly as the scalar branch does (the
  // overlap widths can never be -0.0 — IEEE subtraction of equal finite
  // values rounds to +0.0).
  const double xmin = region_.xmin, xmax = region_.xmax;
  const double ymin = region_.ymin, ymax = region_.ymax;
  const double inv_area = inv_area_;
  const Rect* r = rects.data();
  double* o = out.data();
  const size_t n = rects.size();
  for (size_t i = 0; i < n; ++i) {
    const double w = std::min(xmax, r[i].xmax) - std::max(xmin, r[i].xmin);
    const double h = std::min(ymax, r[i].ymax) - std::max(ymin, r[i].ymin);
    o[i] = (std::max(w, 0.0) * std::max(h, 0.0)) * inv_area;
  }
}

void UniformRectPdf::MassInCenteredBatch(std::span<const Point> centers,
                                         double w, double h,
                                         std::span<double> out) const {
  ILQ_CHECK(centers.size() == out.size(),
            "MassInCenteredBatch size mismatch");
  // Same branch-free overlap product as MassInBatch, but streaming only the
  // 16-byte centers: the dual range around centers[i] is
  // [c.x - w, c.x + w] × [c.y - h, c.y + h], computed with exactly the
  // Rect::Centered arithmetic so results match the scalar path bit for bit.
  const double xmin = region_.xmin, xmax = region_.xmax;
  const double ymin = region_.ymin, ymax = region_.ymax;
  const double inv_area = inv_area_;
  const Point* c = centers.data();
  double* o = out.data();
  const size_t n = centers.size();
  for (size_t i = 0; i < n; ++i) {
    const double ov_w =
        std::min(xmax, c[i].x + w) - std::max(xmin, c[i].x - w);
    const double ov_h =
        std::min(ymax, c[i].y + h) - std::max(ymin, c[i].y - h);
    o[i] = (std::max(ov_w, 0.0) * std::max(ov_h, 0.0)) * inv_area;
  }
}

double UniformRectPdf::CdfX(double x) const {
  if (x <= region_.xmin) return 0.0;
  if (x >= region_.xmax) return 1.0;
  return (x - region_.xmin) / region_.Width();
}

double UniformRectPdf::CdfY(double y) const {
  if (y <= region_.ymin) return 0.0;
  if (y >= region_.ymax) return 1.0;
  return (y - region_.ymin) / region_.Height();
}

double UniformRectPdf::QuantileX(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  return region_.xmin + p * region_.Width();
}

double UniformRectPdf::QuantileY(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  return region_.ymin + p * region_.Height();
}

Point UniformRectPdf::Sample(Rng* rng) const {
  return Point(rng->Uniform(region_.xmin, region_.xmax),
               rng->Uniform(region_.ymin, region_.ymax));
}

}  // namespace ilq
