#include "prob/uniform_pdf.h"

#include <algorithm>

namespace ilq {

Result<UniformRectPdf> UniformRectPdf::Make(const Rect& region) {
  if (region.IsEmpty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument(
        "uniform pdf requires a region with positive area, got " +
        region.ToString());
  }
  return UniformRectPdf(region);
}

double UniformRectPdf::Density(const Point& p) const {
  return region_.Contains(p) ? inv_area_ : 0.0;
}

double UniformRectPdf::MassIn(const Rect& r) const {
  return region_.IntersectionArea(r) * inv_area_;
}

double UniformRectPdf::CdfX(double x) const {
  if (x <= region_.xmin) return 0.0;
  if (x >= region_.xmax) return 1.0;
  return (x - region_.xmin) / region_.Width();
}

double UniformRectPdf::CdfY(double y) const {
  if (y <= region_.ymin) return 0.0;
  if (y >= region_.ymax) return 1.0;
  return (y - region_.ymin) / region_.Height();
}

double UniformRectPdf::QuantileX(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  return region_.xmin + p * region_.Width();
}

double UniformRectPdf::QuantileY(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  return region_.ymin + p * region_.Height();
}

Point UniformRectPdf::Sample(Rng* rng) const {
  return Point(rng->Uniform(region_.xmin, region_.xmax),
               rng->Uniform(region_.ymin, region_.ymax));
}

}  // namespace ilq
