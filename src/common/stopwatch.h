// Wall-clock timing for the experiment harness.

#ifndef ILQ_COMMON_STOPWATCH_H_
#define ILQ_COMMON_STOPWATCH_H_

#include <chrono>

namespace ilq {

/// \brief Monotonic wall-clock stopwatch.
///
/// Starts on construction; ElapsedMillis()/ElapsedMicros() read without
/// stopping, Restart() rebases.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Rebases the stopwatch to "now".
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or last Restart().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ilq

#endif  // ILQ_COMMON_STOPWATCH_H_
