#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ilq {

namespace {

// splitmix64: expands one 64-bit seed into well-distributed state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double mantissa resolution.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection-free multiply-shift; bias is negligible for the
  // simulation ranges used here (n << 2^64).
  __uint128_t wide = static_cast<__uint128_t>(NextU64()) * n;
  return static_cast<uint64_t>(wide >> 64);
}

double Rng::Gaussian() {
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace ilq
