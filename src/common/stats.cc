#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace ilq {

void SummaryStats::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

double SummaryStats::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double SummaryStats::StdDev() const {
  const size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (double x : samples_) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double SummaryStats::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SummaryStats::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SummaryStats::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const size_t n = sorted_.size();
  // Nearest-rank with linear interpolation between adjacent order statistics.
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, n - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

void SummaryStats::Reset() {
  samples_.clear();
  sorted_.clear();
  sum_ = 0.0;
  sorted_valid_ = false;
}

}  // namespace ilq
