// A small fixed-size thread pool with a chunked parallel-for, built for the
// batch query evaluation subsystem (QueryEngine::RunBatch). Workers pull
// index chunks off a shared atomic cursor, so uneven per-query costs (large
// vs small expanded ranges) balance without a scheduler.
//
// Design constraints:
//  - The calling thread participates as worker 0, so a pool constructed
//    with N threads runs bodies on exactly N threads and `threads == 1`
//    degenerates to an inline serial loop (no pool threads are ever
//    touched) — the serial and parallel paths share one code path.
//  - Exceptions thrown by the body are captured, the iteration space is
//    drained early, and the first exception is rethrown on the caller.
//  - Nested ParallelFor (calling it from inside a body) is rejected with
//    std::logic_error: the pool is sized to the hardware, and nesting would
//    deadlock a same-pool reentry.

#ifndef ILQ_COMMON_THREAD_POOL_H_
#define ILQ_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ilq {

/// \brief Fixed-size pool of worker threads with a chunked ParallelFor.
///
/// Thread-compatible: one ParallelFor runs at a time (concurrent external
/// submissions serialize on an internal mutex). The pool itself must
/// outlive any running ParallelFor; destruction joins all workers.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining worker).
  /// `threads == 0` selects DefaultThreadCount().
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute bodies (pool workers + caller).
  size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(i, worker) for every i in [0, n), distributing contiguous
  /// chunks across threads. `worker` is in [0, thread_count()) and is
  /// stable within one body invocation — use it to index per-thread
  /// accumulators. `chunk == 0` picks a size that gives each thread ~8
  /// chunks for dynamic balancing.
  ///
  /// Blocks until all iterations finish. If any body throws, remaining
  /// chunks are abandoned and the first exception is rethrown here.
  /// Throws std::logic_error when called from inside a ParallelFor body
  /// (nested use).
  void ParallelFor(size_t n,
                   const std::function<void(size_t index, size_t worker)>& body,
                   size_t chunk = 0);

  /// Hardware concurrency, at least 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop(size_t worker);
  // Pulls chunks until the cursor passes the end or an error is recorded.
  void DrainChunks(size_t worker);
  void RecordError() noexcept;

  std::vector<std::thread> workers_;

  std::mutex submit_mu_;  // serializes external ParallelFor calls

  std::mutex mu_;  // guards the job state + both condition variables
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t job_id_ = 0;      // bumped per ParallelFor; workers watch it
  size_t job_running_ = 0;   // pool workers still inside the current job
  bool stop_ = false;

  // Current job (valid while job_running_ > 0 or the caller drains).
  const std::function<void(size_t, size_t)>* body_ = nullptr;
  size_t end_ = 0;
  size_t chunk_ = 1;
  std::atomic<size_t> cursor_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;  // guarded by mu_
};

/// One-shot convenience: runs body(i, worker) over [0, n) on a transient
/// pool of `threads` threads (0 = hardware). `threads <= 1` runs inline.
void ParallelFor(size_t threads, size_t n,
                 const std::function<void(size_t index, size_t worker)>& body,
                 size_t chunk = 0);

}  // namespace ilq

#endif  // ILQ_COMMON_THREAD_POOL_H_
