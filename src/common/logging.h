// Minimal leveled logging plus CHECK-style invariant assertions.
//
// The library core is quiet by default; data generators, benches and example
// apps log progress at kInfo. ILQ_CHECK documents internal invariants that
// are cheap enough to keep in release builds.

#ifndef ILQ_COMMON_LOGGING_H_
#define ILQ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ilq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line to stderr; exposed for the macro only.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

/// Prints the failure and aborts; exposed for the ILQ_CHECK macro only.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

}  // namespace internal
}  // namespace ilq

#define ILQ_LOG(level, msg_expr)                                         \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::ilq::GetLogLevel())) {                        \
      std::ostringstream _ilq_os;                                        \
      _ilq_os << msg_expr;                                               \
      ::ilq::internal::LogMessage(level, __FILE__, __LINE__,             \
                                  _ilq_os.str());                        \
    }                                                                    \
  } while (false)

#define ILQ_DEBUG(msg) ILQ_LOG(::ilq::LogLevel::kDebug, msg)
#define ILQ_INFO(msg) ILQ_LOG(::ilq::LogLevel::kInfo, msg)
#define ILQ_WARN(msg) ILQ_LOG(::ilq::LogLevel::kWarning, msg)
#define ILQ_ERROR(msg) ILQ_LOG(::ilq::LogLevel::kError, msg)

/// Aborts with a diagnostic when \p cond is false. Used for internal
/// invariants (not input validation, which returns Status).
#define ILQ_CHECK(cond, msg_expr)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream _ilq_os;                                        \
      _ilq_os << msg_expr;                                               \
      ::ilq::internal::CheckFailed(__FILE__, __LINE__, #cond,            \
                                   _ilq_os.str());                       \
    }                                                                    \
  } while (false)

#endif  // ILQ_COMMON_LOGGING_H_
