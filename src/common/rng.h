// Deterministic random number generation for data generators, Monte-Carlo
// evaluation and workloads. All randomness in the library flows through Rng
// with explicit seeds so experiments are reproducible.

#ifndef ILQ_COMMON_RNG_H_
#define ILQ_COMMON_RNG_H_

#include <cstdint>

namespace ilq {

/// \brief Small, fast, seedable PRNG (xoshiro256**).
///
/// Not cryptographically secure; statistically solid for simulation work and
/// an order of magnitude cheaper to construct than std::mt19937_64, which
/// matters when each query evaluation owns a private stream.
class Rng {
 public:
  /// Seeds the generator; two Rng instances with the same seed produce the
  /// same stream on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when equal.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Standard normal variate (Box–Muller, no caching).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Derives an independent child stream; used to hand each worker or query
  /// its own generator from one experiment seed.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Mixes a base seed with a salt (e.g. an object id) into a statistically
/// independent stream seed (SplitMix64 finalizer over the golden-ratio
/// sequence). The Monte-Carlo evaluators seed one Rng per candidate from
/// (EvalOptions::mc_seed, candidate id), so a candidate's qualification
/// probability depends only on that pair — never on the order the index
/// streams candidates. That order-invariance is what lets the sharded
/// serving layer fan one query out across shard engines and still merge
/// bit-identical answers.
constexpr uint64_t MixSeeds(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace ilq

#endif  // ILQ_COMMON_RNG_H_
