// Streaming summary statistics used by the experiment harness: every figure
// in the paper reports a mean over repeated query runs, and we additionally
// report dispersion and percentiles for the measured series.

#ifndef ILQ_COMMON_STATS_H_
#define ILQ_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace ilq {

/// \brief Accumulates samples and reports mean / stddev / min / max /
/// percentiles.
///
/// Samples are retained so exact percentiles can be computed; the workloads
/// here are at most a few thousand samples per series point.
class SummaryStats {
 public:
  SummaryStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  size_t count() const { return samples_.size(); }

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;

  double Min() const;
  double Max() const;
  double Sum() const { return sum_; }

  /// Exact percentile by nearest-rank; \p p in [0, 100]. 0 when empty.
  double Percentile(double p) const;

  /// Median, i.e. Percentile(50).
  double Median() const { return Percentile(50.0); }

  /// Removes all observations.
  void Reset();

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;  // lazily rebuilt percentile cache
  mutable bool sorted_valid_ = false;
};

}  // namespace ilq

#endif  // ILQ_COMMON_STATS_H_
