// Status / Result error-handling primitives in the Arrow / RocksDB idiom.
//
// Library entry points that can fail due to bad input or bad configuration
// return an ilq::Status (or ilq::Result<T> when they also produce a value)
// instead of throwing. Hot-path query kernels are noexcept value code and do
// not use these types.

#ifndef ILQ_COMMON_STATUS_H_
#define ILQ_COMMON_STATUS_H_

// ilq is C++20-only (std::numbers, defaulted operator== on aggregates, ...).
// Fail fast with one clear message instead of a cascade of cryptic errors
// when the build is misconfigured with an older -std flag.
#if (defined(_MSVC_LANG) && _MSVC_LANG < 202002L) || \
    (!defined(_MSVC_LANG) && defined(__cplusplus) && __cplusplus < 202002L)
#error "ilq requires C++20: compile with -std=c++20 (the CMake targets set cxx_std_20)"
#endif

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ilq {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// diagnostic message otherwise. Use the static factories:
///
///     ilq::Status s = ilq::Status::InvalidArgument("w must be positive");
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "<code name>: <message>" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
///     ilq::Result<RTree> r = RTree::BulkLoad(...);
///     if (!r.ok()) return r.status();
///     RTree tree = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value)  // NOLINT(google-explicit-constructor): mirror Arrow.
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK \p status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the value; the result must be OK.
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ilq

/// Propagates a non-OK Status from the evaluated expression.
#define ILQ_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::ilq::Status _ilq_status = (expr);        \
    if (!_ilq_status.ok()) return _ilq_status; \
  } while (false)

#endif  // ILQ_COMMON_STATUS_H_
