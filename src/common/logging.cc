#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ilq {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  // Trim directories from the file path for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s — %s\n", file, line,
               expr, msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ilq
