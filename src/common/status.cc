#include "common/status.h"

namespace ilq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace ilq
