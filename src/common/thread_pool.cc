#include "common/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace ilq {

namespace {
// Set while this thread is executing a ParallelFor body (as caller or pool
// worker); used to reject nested submissions, which would deadlock a
// same-pool reentry and oversubscribe the hardware otherwise.
thread_local bool tls_in_parallel_for = false;

struct InBodyGuard {
  InBodyGuard() { tls_in_parallel_for = true; }
  ~InBodyGuard() { tls_in_parallel_for = false; }
};
}  // namespace

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads - 1);
  for (size_t w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  // submit_mu_ drains any in-flight ParallelFor before we signal shutdown.
  std::lock_guard<std::mutex> submit(submit_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RecordError() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  if (error_ == nullptr) error_ = std::current_exception();
  failed_.store(true, std::memory_order_relaxed);
}

void ThreadPool::DrainChunks(size_t worker) {
  InBodyGuard guard;
  while (!failed_.load(std::memory_order_relaxed)) {
    const size_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= end_) break;
    const size_t limit = std::min(end_, begin + chunk_);
    for (size_t i = begin; i < limit; ++i) {
      if (failed_.load(std::memory_order_relaxed)) return;
      try {
        (*body_)(i, worker);
      } catch (...) {
        RecordError();
        return;
      }
    }
  }
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen_job = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || job_id_ != seen_job; });
    if (stop_) return;
    seen_job = job_id_;
    lk.unlock();
    DrainChunks(worker);
    lk.lock();
    if (--job_running_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& body, size_t chunk) {
  if (tls_in_parallel_for) {
    throw std::logic_error(
        "ThreadPool::ParallelFor called from inside a ParallelFor body "
        "(nested parallelism is rejected)");
  }
  if (n == 0) return;
  std::lock_guard<std::mutex> submit(submit_mu_);
  if (chunk == 0) chunk = std::max<size_t>(1, n / (thread_count() * 8));
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    end_ = n;
    chunk_ = chunk;
    cursor_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    job_running_ = workers_.size();
    ++job_id_;
  }
  work_cv_.notify_all();
  DrainChunks(/*worker=*/0);  // the caller is worker 0
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return job_running_ == 0; });
    body_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err != nullptr) std::rethrow_exception(err);
}

void ParallelFor(size_t threads, size_t n,
                 const std::function<void(size_t, size_t)>& body,
                 size_t chunk) {
  ThreadPool pool(threads);
  pool.ParallelFor(n, body, chunk);
}

}  // namespace ilq
