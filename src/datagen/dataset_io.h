// CSV persistence for datasets, so generated stand-in data can be inspected,
// versioned, or swapped for real TIGER extracts when those are available
// (the loaders accept the classic "x y" / "xmin ymin xmax ymax" layouts).

#ifndef ILQ_DATAGEN_DATASET_IO_H_
#define ILQ_DATAGEN_DATASET_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "object/point_object.h"

namespace ilq {

/// Writes one "x,y" line per point (ids are positional on reload).
Status SavePointsCsv(const std::string& path,
                     const std::vector<PointObject>& points);

/// Reads points from CSV ("x,y" per line; whitespace-separated also
/// accepted). Ids are assigned 1..n in file order.
Result<std::vector<PointObject>> LoadPointsCsv(const std::string& path);

/// Writes one "xmin,ymin,xmax,ymax" line per rectangle.
Status SaveRectsCsv(const std::string& path, const std::vector<Rect>& rects);

/// Reads rectangles from CSV ("xmin,ymin,xmax,ymax" per line).
Result<std::vector<Rect>> LoadRectsCsv(const std::string& path);

}  // namespace ilq

#endif  // ILQ_DATAGEN_DATASET_IO_H_
