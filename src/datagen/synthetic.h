// Synthetic stand-ins for the paper's TIGER datasets (§6.1).
//
// The paper evaluates on two TIGER/Line extracts in a 10,000 × 10,000
// space: "California" (62K points, used as the point-object database) and
// "Long Beach" (53K rectangles, used as the uncertain-object database).
// Those files are not available offline, so ILQ generates data with the
// same statistical character:
//
//   * points drawn along many random line segments (road networks are
//     overwhelmingly line-shaped) plus a uniform background — matching the
//     strong spatial skew of TIGER points;
//   * small axis-parallel rectangles with skewed centres and TIGER-like
//     side lengths (a tiny fraction of the space per object) for the
//     uncertain set.
//
// Query performance in the paper depends on object density inside expanded
// query windows and on rectangle size/skew — both reproduced here. See
// DESIGN.md §2 for the substitution rationale.

#ifndef ILQ_DATAGEN_SYNTHETIC_H_
#define ILQ_DATAGEN_SYNTHETIC_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geometry/rect.h"
#include "object/point_object.h"
#include "object/uncertain_object.h"

namespace ilq {

/// \brief Shape of a synthetic spatial dataset.
struct SyntheticConfig {
  Rect space = Rect(0.0, 10000.0, 0.0, 10000.0);  ///< paper's data space
  size_t count = 62000;          ///< number of objects (62K / 53K in §6.1)
  size_t segments = 180;         ///< road-like line segments to scatter on
  double background_fraction = 0.15;  ///< share of uniformly placed objects
  double jitter = 25.0;          ///< perpendicular scatter around segments
  uint64_t seed = 42;            ///< generator seed (fully deterministic)
};

/// Generates a "California"-like clustered point set.
std::vector<PointObject> GenerateCaliforniaLikePoints(
    const SyntheticConfig& config);

/// \brief Extra knobs for rectangle datasets.
struct RectangleConfig {
  SyntheticConfig base;
  /// Mean rectangle side; TIGER Long Beach objects are tiny relative to
  /// the space. Sides are drawn from an exponential-like distribution with
  /// this mean, clamped to [min_side, max_side].
  double mean_side = 40.0;
  double min_side = 2.0;
  double max_side = 400.0;
};

/// Generates a "Long Beach"-like set of small rectangles (returned as
/// plain rectangles; attach pdfs with MakeUniformUncertainObjects or
/// MakeGaussianUncertainObjects).
std::vector<Rect> GenerateLongBeachLikeRects(const RectangleConfig& config);

/// Wraps rectangles as uncertain objects with uniform pdfs (the paper's
/// default: fi = 1/|Ui|). Object ids are assigned 1..n in order.
Result<std::vector<UncertainObject>> MakeUniformUncertainObjects(
    const std::vector<Rect>& regions);

/// Wraps rectangles as uncertain objects with the paper's Figure 13
/// Gaussian pdfs (mean at the region centre, σ = side/6).
Result<std::vector<UncertainObject>> MakeGaussianUncertainObjects(
    const std::vector<Rect>& regions);

}  // namespace ilq

#endif  // ILQ_DATAGEN_SYNTHETIC_H_
