#include "datagen/snapshot_gen.h"

#include <utility>
#include <vector>

namespace ilq {

Result<CatalogImage> GenerateCatalogImage(const SnapshotGenConfig& config) {
  CatalogImage image;
  image.epoch = config.epoch;
  image.points = GenerateCaliforniaLikePoints(config.points);

  const std::vector<Rect> regions = GenerateLongBeachLikeRects(
      config.uncertains);
  auto uncertains = config.gaussian_pdfs
                        ? MakeGaussianUncertainObjects(regions)
                        : MakeUniformUncertainObjects(regions);
  ILQ_RETURN_NOT_OK(uncertains.status());
  image.uncertains = std::move(uncertains).ValueOrDie();
  return image;
}

}  // namespace ilq
