#include "datagen/workload.h"

#include <algorithm>
#include <cmath>

#include "prob/gaussian_pdf.h"
#include "prob/uniform_pdf.h"

namespace ilq {

namespace {

// Builds one issuer with the workload's pdf family over a square region of
// half-side u centred at (cx, cy), clamped inside the space.
Result<UncertainObject> MakeWorkloadIssuer(const WorkloadConfig& config,
                                           double u, ObjectId id, double cx,
                                           double cy,
                                           const std::vector<double>& ladder) {
  cx = std::clamp(cx, config.space.xmin + u,
                  std::max(config.space.xmin + u, config.space.xmax - u));
  cy = std::clamp(cy, config.space.ymin + u,
                  std::max(config.space.ymin + u, config.space.ymax - u));
  const Rect region(cx - u, cx + u, cy - u, cy + u);

  std::unique_ptr<UncertaintyPdf> pdf;
  if (config.issuer_pdf == IssuerPdfKind::kGaussian) {
    Result<TruncatedGaussianPdf> made =
        TruncatedGaussianPdf::MakePaperDefault(region);
    if (!made.ok()) return made.status();
    pdf =
        std::make_unique<TruncatedGaussianPdf>(std::move(made).ValueOrDie());
  } else {
    Result<UniformRectPdf> made = UniformRectPdf::Make(region);
    if (!made.ok()) return made.status();
    pdf = std::make_unique<UniformRectPdf>(std::move(made).ValueOrDie());
  }
  UncertainObject issuer(id, std::move(pdf));
  ILQ_RETURN_NOT_OK(issuer.BuildCatalog(ladder));
  return issuer;
}

// Zipfian rank selection: cumulative weights 1/(k+1)^s, drawn against with
// lower_bound. Shared by the skewed request stream and the churn
// generator's hotspot placement.
std::vector<double> BuildZipfCdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = total;
  }
  return cdf;
}

size_t DrawZipf(Rng& rng, const std::vector<double>& cdf) {
  const double draw = rng.NextDouble() * cdf.back();
  const size_t pick = static_cast<size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), draw) - cdf.begin());
  return std::min(pick, cdf.size() - 1);
}

}  // namespace

Result<Workload> GenerateWorkload(const WorkloadConfig& config) {
  if (config.space.IsEmpty()) {
    return Status::InvalidArgument("workload space must be non-empty");
  }
  if (config.u < 0.0 || config.w <= 0.0) {
    return Status::InvalidArgument("u must be >= 0 and w > 0");
  }
  if (config.qp < 0.0 || config.qp > 1.0) {
    return Status::InvalidArgument("qp must be in [0, 1]");
  }
  // A zero-sized issuer region degenerates the pdfs; follow the paper's
  // "u = 0" data points with an epsilon region (effectively a precise
  // issuer).
  const double u = std::max(config.u, 1e-6);

  std::vector<double> ladder = config.catalog_values;
  if (ladder.empty()) ladder = UCatalog::EvenlySpacedValues(11);

  Rng rng(config.seed);
  Workload workload;
  workload.spec = RangeQuerySpec(config.w, config.w, config.qp);
  workload.issuers.reserve(config.queries);
  for (size_t i = 0; i < config.queries; ++i) {
    // Centre placed so the whole uncertainty region stays inside the space.
    const double cx = rng.Uniform(config.space.xmin + u,
                                  std::max(config.space.xmin + u,
                                           config.space.xmax - u));
    const double cy = rng.Uniform(config.space.ymin + u,
                                  std::max(config.space.ymin + u,
                                           config.space.ymax - u));
    Result<UncertainObject> issuer =
        MakeWorkloadIssuer(config, u, /*id=*/0, cx, cy, ladder);
    if (!issuer.ok()) return issuer.status();
    workload.issuers.push_back(std::move(issuer).ValueOrDie());
  }
  return workload;
}

Result<SkewedWorkload> GenerateSkewedWorkload(const WorkloadConfig& base,
                                              const SkewConfig& skew) {
  if (base.space.IsEmpty()) {
    return Status::InvalidArgument("workload space must be non-empty");
  }
  if (base.u < 0.0 || base.w <= 0.0) {
    return Status::InvalidArgument("u must be >= 0 and w > 0");
  }
  if (base.qp < 0.0 || base.qp > 1.0) {
    return Status::InvalidArgument("qp must be in [0, 1]");
  }
  if (skew.pool == 0) {
    return Status::InvalidArgument("issuer pool must be non-empty");
  }
  if (skew.zipf_s < 0.0) {
    return Status::InvalidArgument("zipf_s must be >= 0");
  }
  if (skew.clustered && skew.clusters == 0) {
    return Status::InvalidArgument("clustered placement needs clusters > 0");
  }
  const double u = std::max(base.u, 1e-6);

  std::vector<double> ladder = base.catalog_values;
  if (ladder.empty()) ladder = UCatalog::EvenlySpacedValues(11);

  Rng rng(base.seed);
  SkewedWorkload workload;
  workload.spec = RangeQuerySpec(base.w, base.w, base.qp);

  // Cluster centres first (when used) so pool size does not perturb them.
  std::vector<Point> centres;
  if (skew.clustered) {
    centres.reserve(skew.clusters);
    for (size_t c = 0; c < skew.clusters; ++c) {
      centres.emplace_back(rng.Uniform(base.space.xmin, base.space.xmax),
                           rng.Uniform(base.space.ymin, base.space.ymax));
    }
  }
  const double spread =
      skew.cluster_spread *
      std::min(base.space.Width(), base.space.Height());

  workload.pool.reserve(skew.pool);
  for (size_t i = 0; i < skew.pool; ++i) {
    double cx, cy;
    if (skew.clustered) {
      const Point& centre = centres[i % centres.size()];
      cx = rng.Gaussian(centre.x, spread);
      cy = rng.Gaussian(centre.y, spread);
    } else {
      cx = rng.Uniform(base.space.xmin, base.space.xmax);
      cy = rng.Uniform(base.space.ymin, base.space.ymax);
    }
    // Ids 1..pool: non-zero, so the serving layer's cache may key on them.
    Result<UncertainObject> issuer = MakeWorkloadIssuer(
        base, u, static_cast<ObjectId>(i + 1), cx, cy, ladder);
    if (!issuer.ok()) return issuer.status();
    workload.pool.push_back(std::move(issuer).ValueOrDie());
  }

  // Zipfian selection by rank: P(pool[k]) ∝ 1/(k+1)^s. Rank r maps to pool
  // index r directly — hot issuers are simply the first pool entries, which
  // keeps tests and cache-hit reasoning legible.
  const std::vector<double> cdf = BuildZipfCdf(skew.pool, skew.zipf_s);
  workload.sequence.reserve(skew.requests);
  for (size_t i = 0; i < skew.requests; ++i) {
    workload.sequence.push_back(DrawZipf(rng, cdf));
  }
  return workload;
}

Result<ChurnWorkload> GenerateChurnWorkload(const WorkloadConfig& base,
                                            const ChurnConfig& churn) {
  if (base.space.IsEmpty()) {
    return Status::InvalidArgument("workload space must be non-empty");
  }
  if (churn.insert_fraction < 0.0 || churn.erase_fraction < 0.0 ||
      churn.insert_fraction + churn.erase_fraction > 1.0) {
    return Status::InvalidArgument(
        "insert_fraction/erase_fraction must be >= 0 and sum to <= 1");
  }
  if (churn.point_fraction < 0.0 || churn.point_fraction > 1.0) {
    return Status::InvalidArgument("point_fraction must be in [0, 1]");
  }
  if (churn.zipf_s < 0.0) {
    return Status::InvalidArgument("zipf_s must be >= 0");
  }
  if (churn.hotspots == 0) {
    return Status::InvalidArgument("churn placement needs hotspots > 0");
  }
  if (churn.object_half_extent <= 0.0) {
    return Status::InvalidArgument("object_half_extent must be > 0");
  }

  Rng rng(base.seed);
  ChurnWorkload workload;

  // Hotspot centres first (like the skewed generator's clusters) so the
  // dataset sizes do not perturb them.
  std::vector<Point> hotspots;
  hotspots.reserve(churn.hotspots);
  for (size_t c = 0; c < churn.hotspots; ++c) {
    hotspots.emplace_back(rng.Uniform(base.space.xmin, base.space.xmax),
                          rng.Uniform(base.space.ymin, base.space.ymax));
  }
  const std::vector<double> cdf =
      BuildZipfCdf(churn.hotspots, churn.zipf_s);
  const double spread =
      churn.hotspot_spread *
      std::min(base.space.Width(), base.space.Height());
  const double he = churn.object_half_extent;

  // Placement: Gaussian around a Zipf-ranked hotspot, clamped so regions
  // stay inside the space.
  const auto place = [&](double half_extent) {
    const Point& centre = hotspots[DrawZipf(rng, cdf)];
    const double cx =
        std::clamp(rng.Gaussian(centre.x, spread),
                   base.space.xmin + half_extent,
                   std::max(base.space.xmin + half_extent,
                            base.space.xmax - half_extent));
    const double cy =
        std::clamp(rng.Gaussian(centre.y, spread),
                   base.space.ymin + half_extent,
                   std::max(base.space.ymin + half_extent,
                            base.space.ymax - half_extent));
    return Point(cx, cy);
  };
  const auto make_pdf = [&](const Point& centre) -> Result<PdfVariant> {
    Result<UniformRectPdf> made = UniformRectPdf::Make(
        Rect(centre.x - he, centre.x + he, centre.y - he, centre.y + he));
    if (!made.ok()) return made.status();
    return PdfVariant(std::move(made).ValueOrDie());
  };

  // Seed datasets. Live-id books are kept as dense vectors so erase/move
  // target selection is a deterministic NextBelow draw.
  std::vector<ObjectId> live_points;
  std::vector<ObjectId> live_uncertains;
  workload.initial_points.reserve(churn.initial_points);
  for (size_t i = 0; i < churn.initial_points; ++i) {
    const ObjectId id = static_cast<ObjectId>(i + 1);
    workload.initial_points.emplace_back(id, place(0.0));
    live_points.push_back(id);
  }
  workload.initial_uncertains.reserve(churn.initial_uncertains);
  for (size_t i = 0; i < churn.initial_uncertains; ++i) {
    const ObjectId id = static_cast<ObjectId>(i + 1);
    Result<PdfVariant> pdf = make_pdf(place(he));
    if (!pdf.ok()) return pdf.status();
    workload.initial_uncertains.emplace_back(id,
                                             std::move(pdf).ValueOrDie());
    live_uncertains.push_back(id);
  }
  ObjectId next_point_id = static_cast<ObjectId>(churn.initial_points + 1);
  ObjectId next_uncertain_id =
      static_cast<ObjectId>(churn.initial_uncertains + 1);

  const auto pick_live = [&](std::vector<ObjectId>& live) {
    const size_t i = static_cast<size_t>(rng.NextBelow(live.size()));
    return std::pair<size_t, ObjectId>(i, live[i]);
  };

  workload.stream.reserve(churn.ops);
  for (size_t i = 0; i < churn.ops; ++i) {
    const bool on_points = rng.NextDouble() < churn.point_fraction;
    std::vector<ObjectId>& live = on_points ? live_points : live_uncertains;
    double kind_draw = rng.NextDouble();
    if (live.empty()) kind_draw = 0.0;  // nothing to erase/move: insert
    if (kind_draw < churn.insert_fraction) {
      if (on_points) {
        const ObjectId id = next_point_id++;
        workload.stream.push_back(UpdateOp::InsertPoint(id, place(0.0)));
        live_points.push_back(id);
      } else {
        const ObjectId id = next_uncertain_id++;
        Result<PdfVariant> pdf = make_pdf(place(he));
        if (!pdf.ok()) return pdf.status();
        workload.stream.push_back(
            UpdateOp::InsertUncertain(id, std::move(pdf).ValueOrDie()));
        live_uncertains.push_back(id);
      }
    } else if (kind_draw < churn.insert_fraction + churn.erase_fraction) {
      const auto [at, id] = pick_live(live);
      live[at] = live.back();
      live.pop_back();
      workload.stream.push_back(on_points ? UpdateOp::ErasePoint(id)
                                          : UpdateOp::EraseUncertain(id));
    } else {
      const auto [at, id] = pick_live(live);
      (void)at;
      if (on_points) {
        workload.stream.push_back(UpdateOp::MovePoint(id, place(0.0)));
      } else {
        Result<PdfVariant> pdf = make_pdf(place(he));
        if (!pdf.ok()) return pdf.status();
        workload.stream.push_back(
            UpdateOp::MoveUncertain(id, std::move(pdf).ValueOrDie()));
      }
    }
  }
  return workload;
}

Result<TrajectoryWorkload> GenerateTrajectoryWorkload(
    const WorkloadConfig& base, const TrajectoryConfig& traj) {
  if (base.space.IsEmpty()) {
    return Status::InvalidArgument("workload space must be non-empty");
  }
  if (base.w <= 0.0) {
    return Status::InvalidArgument("w must be > 0");
  }
  if (base.qp < 0.0 || base.qp > 1.0) {
    return Status::InvalidArgument("qp must be in [0, 1]");
  }
  if (traj.issuers == 0 || traj.steps == 0) {
    return Status::InvalidArgument(
        "trajectory workload needs issuers > 0 and steps > 0");
  }
  if (traj.step < 0.0) {
    return Status::InvalidArgument("step must be >= 0");
  }
  if (traj.u_min < 0.0 || traj.u_max < traj.u_min) {
    return Status::InvalidArgument("need 0 <= u_min <= u_max");
  }
  if (traj.kind == TrajectoryKind::kWaypoint && traj.hotspots == 0) {
    return Status::InvalidArgument("waypoint motion needs hotspots > 0");
  }
  if (traj.zipf_s < 0.0) {
    return Status::InvalidArgument("zipf_s must be >= 0");
  }

  std::vector<double> ladder = base.catalog_values;
  if (ladder.empty()) ladder = UCatalog::EvenlySpacedValues(11);

  // Waypoint pool from the base seed (not per-issuer): all commuters share
  // the same hot places, which is what concentrates their traffic.
  std::vector<Point> waypoints;
  std::vector<double> cdf;
  if (traj.kind == TrajectoryKind::kWaypoint) {
    Rng pool_rng(base.seed);
    waypoints.reserve(traj.hotspots);
    for (size_t c = 0; c < traj.hotspots; ++c) {
      waypoints.emplace_back(
          pool_rng.Uniform(base.space.xmin, base.space.xmax),
          pool_rng.Uniform(base.space.ymin, base.space.ymax));
    }
    cdf = BuildZipfCdf(traj.hotspots, traj.zipf_s);
  }

  TrajectoryWorkload workload;
  workload.spec = RangeQuerySpec(base.w, base.w, base.qp);
  workload.steps.resize(traj.issuers);
  for (size_t i = 0; i < traj.issuers; ++i) {
    const ObjectId id = static_cast<ObjectId>(i + 1);
    Rng rng(MixSeeds(base.seed, static_cast<uint64_t>(id)));
    std::vector<UncertainObject>& steps = workload.steps[i];
    steps.reserve(traj.steps);

    double x = rng.Uniform(base.space.xmin, base.space.xmax);
    double y = rng.Uniform(base.space.ymin, base.space.ymax);
    // Waypoint state: where this issuer is heading.
    Point target(x, y);
    for (size_t t = 0; t < traj.steps; ++t) {
      if (t > 0) {
        if (traj.kind == TrajectoryKind::kRandomWalk) {
          x += rng.Gaussian(0.0, traj.step);
          y += rng.Gaussian(0.0, traj.step);
        } else {
          const double dx = target.x - x;
          const double dy = target.y - y;
          const double dist = std::hypot(dx, dy);
          if (dist <= traj.step) {
            // Arrived: snap to the waypoint and pick the next one.
            x = target.x;
            y = target.y;
            target = waypoints[DrawZipf(rng, cdf)];
          } else {
            x += traj.step * dx / dist;
            y += traj.step * dy / dist;
          }
        }
        x = std::clamp(x, base.space.xmin, base.space.xmax);
        y = std::clamp(y, base.space.ymin, base.space.ymax);
      }
      // Per-step imprecision; MakeWorkloadIssuer clamps the region into
      // the space. Epsilon floor as in GenerateWorkload (u = 0 steps are
      // momentarily precise fixes).
      const double u = std::max(rng.Uniform(traj.u_min, traj.u_max), 1e-6);
      Result<UncertainObject> issuer =
          MakeWorkloadIssuer(base, u, id, x, y, ladder);
      if (!issuer.ok()) return issuer.status();
      steps.push_back(std::move(issuer).ValueOrDie());
    }
  }
  return workload;
}

}  // namespace ilq
