#include "datagen/workload.h"

#include <algorithm>

#include "prob/gaussian_pdf.h"
#include "prob/uniform_pdf.h"

namespace ilq {

Result<Workload> GenerateWorkload(const WorkloadConfig& config) {
  if (config.space.IsEmpty()) {
    return Status::InvalidArgument("workload space must be non-empty");
  }
  if (config.u < 0.0 || config.w <= 0.0) {
    return Status::InvalidArgument("u must be >= 0 and w > 0");
  }
  if (config.qp < 0.0 || config.qp > 1.0) {
    return Status::InvalidArgument("qp must be in [0, 1]");
  }
  // A zero-sized issuer region degenerates the pdfs; follow the paper's
  // "u = 0" data points with an epsilon region (effectively a precise
  // issuer).
  const double u = std::max(config.u, 1e-6);

  std::vector<double> ladder = config.catalog_values;
  if (ladder.empty()) ladder = UCatalog::EvenlySpacedValues(11);

  Rng rng(config.seed);
  Workload workload;
  workload.spec = RangeQuerySpec(config.w, config.w, config.qp);
  workload.issuers.reserve(config.queries);
  for (size_t i = 0; i < config.queries; ++i) {
    // Centre placed so the whole uncertainty region stays inside the space.
    const double cx = rng.Uniform(config.space.xmin + u,
                                  std::max(config.space.xmin + u,
                                           config.space.xmax - u));
    const double cy = rng.Uniform(config.space.ymin + u,
                                  std::max(config.space.ymin + u,
                                           config.space.ymax - u));
    const Rect region(cx - u, cx + u, cy - u, cy + u);

    std::unique_ptr<UncertaintyPdf> pdf;
    if (config.issuer_pdf == IssuerPdfKind::kGaussian) {
      Result<TruncatedGaussianPdf> made =
          TruncatedGaussianPdf::MakePaperDefault(region);
      if (!made.ok()) return made.status();
      pdf = std::make_unique<TruncatedGaussianPdf>(
          std::move(made).ValueOrDie());
    } else {
      Result<UniformRectPdf> made = UniformRectPdf::Make(region);
      if (!made.ok()) return made.status();
      pdf = std::make_unique<UniformRectPdf>(std::move(made).ValueOrDie());
    }
    UncertainObject issuer(/*id=*/0, std::move(pdf));
    ILQ_RETURN_NOT_OK(issuer.BuildCatalog(ladder));
    workload.issuers.push_back(std::move(issuer));
  }
  return workload;
}

}  // namespace ilq
