#include "datagen/workload.h"

#include <algorithm>
#include <cmath>

#include "prob/gaussian_pdf.h"
#include "prob/uniform_pdf.h"

namespace ilq {

namespace {

// Builds one issuer with the workload's pdf family over a square region of
// half-side u centred at (cx, cy), clamped inside the space.
Result<UncertainObject> MakeWorkloadIssuer(const WorkloadConfig& config,
                                           double u, ObjectId id, double cx,
                                           double cy,
                                           const std::vector<double>& ladder) {
  cx = std::clamp(cx, config.space.xmin + u,
                  std::max(config.space.xmin + u, config.space.xmax - u));
  cy = std::clamp(cy, config.space.ymin + u,
                  std::max(config.space.ymin + u, config.space.ymax - u));
  const Rect region(cx - u, cx + u, cy - u, cy + u);

  std::unique_ptr<UncertaintyPdf> pdf;
  if (config.issuer_pdf == IssuerPdfKind::kGaussian) {
    Result<TruncatedGaussianPdf> made =
        TruncatedGaussianPdf::MakePaperDefault(region);
    if (!made.ok()) return made.status();
    pdf =
        std::make_unique<TruncatedGaussianPdf>(std::move(made).ValueOrDie());
  } else {
    Result<UniformRectPdf> made = UniformRectPdf::Make(region);
    if (!made.ok()) return made.status();
    pdf = std::make_unique<UniformRectPdf>(std::move(made).ValueOrDie());
  }
  UncertainObject issuer(id, std::move(pdf));
  ILQ_RETURN_NOT_OK(issuer.BuildCatalog(ladder));
  return issuer;
}

}  // namespace

Result<Workload> GenerateWorkload(const WorkloadConfig& config) {
  if (config.space.IsEmpty()) {
    return Status::InvalidArgument("workload space must be non-empty");
  }
  if (config.u < 0.0 || config.w <= 0.0) {
    return Status::InvalidArgument("u must be >= 0 and w > 0");
  }
  if (config.qp < 0.0 || config.qp > 1.0) {
    return Status::InvalidArgument("qp must be in [0, 1]");
  }
  // A zero-sized issuer region degenerates the pdfs; follow the paper's
  // "u = 0" data points with an epsilon region (effectively a precise
  // issuer).
  const double u = std::max(config.u, 1e-6);

  std::vector<double> ladder = config.catalog_values;
  if (ladder.empty()) ladder = UCatalog::EvenlySpacedValues(11);

  Rng rng(config.seed);
  Workload workload;
  workload.spec = RangeQuerySpec(config.w, config.w, config.qp);
  workload.issuers.reserve(config.queries);
  for (size_t i = 0; i < config.queries; ++i) {
    // Centre placed so the whole uncertainty region stays inside the space.
    const double cx = rng.Uniform(config.space.xmin + u,
                                  std::max(config.space.xmin + u,
                                           config.space.xmax - u));
    const double cy = rng.Uniform(config.space.ymin + u,
                                  std::max(config.space.ymin + u,
                                           config.space.ymax - u));
    Result<UncertainObject> issuer =
        MakeWorkloadIssuer(config, u, /*id=*/0, cx, cy, ladder);
    if (!issuer.ok()) return issuer.status();
    workload.issuers.push_back(std::move(issuer).ValueOrDie());
  }
  return workload;
}

Result<SkewedWorkload> GenerateSkewedWorkload(const WorkloadConfig& base,
                                              const SkewConfig& skew) {
  if (base.space.IsEmpty()) {
    return Status::InvalidArgument("workload space must be non-empty");
  }
  if (base.u < 0.0 || base.w <= 0.0) {
    return Status::InvalidArgument("u must be >= 0 and w > 0");
  }
  if (base.qp < 0.0 || base.qp > 1.0) {
    return Status::InvalidArgument("qp must be in [0, 1]");
  }
  if (skew.pool == 0) {
    return Status::InvalidArgument("issuer pool must be non-empty");
  }
  if (skew.zipf_s < 0.0) {
    return Status::InvalidArgument("zipf_s must be >= 0");
  }
  if (skew.clustered && skew.clusters == 0) {
    return Status::InvalidArgument("clustered placement needs clusters > 0");
  }
  const double u = std::max(base.u, 1e-6);

  std::vector<double> ladder = base.catalog_values;
  if (ladder.empty()) ladder = UCatalog::EvenlySpacedValues(11);

  Rng rng(base.seed);
  SkewedWorkload workload;
  workload.spec = RangeQuerySpec(base.w, base.w, base.qp);

  // Cluster centres first (when used) so pool size does not perturb them.
  std::vector<Point> centres;
  if (skew.clustered) {
    centres.reserve(skew.clusters);
    for (size_t c = 0; c < skew.clusters; ++c) {
      centres.emplace_back(rng.Uniform(base.space.xmin, base.space.xmax),
                           rng.Uniform(base.space.ymin, base.space.ymax));
    }
  }
  const double spread =
      skew.cluster_spread *
      std::min(base.space.Width(), base.space.Height());

  workload.pool.reserve(skew.pool);
  for (size_t i = 0; i < skew.pool; ++i) {
    double cx, cy;
    if (skew.clustered) {
      const Point& centre = centres[i % centres.size()];
      cx = rng.Gaussian(centre.x, spread);
      cy = rng.Gaussian(centre.y, spread);
    } else {
      cx = rng.Uniform(base.space.xmin, base.space.xmax);
      cy = rng.Uniform(base.space.ymin, base.space.ymax);
    }
    // Ids 1..pool: non-zero, so the serving layer's cache may key on them.
    Result<UncertainObject> issuer = MakeWorkloadIssuer(
        base, u, static_cast<ObjectId>(i + 1), cx, cy, ladder);
    if (!issuer.ok()) return issuer.status();
    workload.pool.push_back(std::move(issuer).ValueOrDie());
  }

  // Zipfian selection by rank: P(pool[k]) ∝ 1/(k+1)^s via the cumulative
  // distribution + binary search. Rank r maps to pool index r directly —
  // hot issuers are simply the first pool entries, which keeps tests and
  // cache-hit reasoning legible.
  std::vector<double> cdf(skew.pool);
  double total = 0.0;
  for (size_t k = 0; k < skew.pool; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew.zipf_s);
    cdf[k] = total;
  }
  workload.sequence.reserve(skew.requests);
  for (size_t i = 0; i < skew.requests; ++i) {
    const double draw = rng.NextDouble() * total;
    const size_t pick = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), draw) - cdf.begin());
    workload.sequence.push_back(std::min(pick, skew.pool - 1));
  }
  return workload;
}

}  // namespace ilq
