// Catalog-image generation for the multi-process serving tier: bundles the
// synthetic TIGER-like generators (datagen/synthetic.h) into the
// CatalogImage the wire layer persists (wire/snapshot_codec.h), so a shard
// fleet and an in-process engine can bootstrap from the *same bytes* — the
// precondition for the bit-identity tests and the examples/router_demo
// walkthrough.

#ifndef ILQ_DATAGEN_SNAPSHOT_GEN_H_
#define ILQ_DATAGEN_SNAPSHOT_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "datagen/synthetic.h"
#include "object/snapshot.h"

namespace ilq {

/// \brief How a generated catalog image should look.
struct SnapshotGenConfig {
  /// Point-object set ("California"-like).
  SyntheticConfig points;

  /// Uncertain-object regions ("Long Beach"-like).
  RectangleConfig uncertains;

  /// Attach Gaussian pdfs (paper Figure 13) instead of the default
  /// uniform fi = 1/|Ui|.
  bool gaussian_pdfs = false;

  /// Epoch stamped into the image (0 = freshly generated).
  uint64_t epoch = 0;
};

/// Generates a deterministic catalog image: same config, same bytes.
Result<CatalogImage> GenerateCatalogImage(const SnapshotGenConfig& config);

}  // namespace ilq

#endif  // ILQ_DATAGEN_SNAPSHOT_GEN_H_
