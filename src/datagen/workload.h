// Query workload generation matching §6.1: square issuer uncertainty
// regions U0 of "size" u (half side length) centred uniformly in the data
// space, square query ranges of size w, uniform issuer pdfs by default and
// Gaussian issuers for the Figure 13 experiment.

#ifndef ILQ_DATAGEN_WORKLOAD_H_
#define ILQ_DATAGEN_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/query.h"
#include "object/uncertain_object.h"

namespace ilq {

/// Issuer pdf family for a workload.
enum class IssuerPdfKind {
  kUniform,   ///< paper default (§6.1)
  kGaussian,  ///< Figure 13 (mean = centre, σ = extent/6)
};

/// \brief One experiment workload: queries sharing (u, w, Qp) with random
/// issuer placements.
struct WorkloadConfig {
  Rect space = Rect(0.0, 10000.0, 0.0, 10000.0);
  double u = 250.0;   ///< issuer uncertainty-region size (half side, §6.1)
  double w = 500.0;   ///< query-range size (half side, §6.1)
  double qp = 0.0;    ///< probability threshold
  size_t queries = 500;  ///< runs per data point (§6.1 averages over 500)
  IssuerPdfKind issuer_pdf = IssuerPdfKind::kUniform;
  uint64_t seed = 7;
  /// Catalog ladder built for each issuer (threshold methods need it).
  std::vector<double> catalog_values;  // empty = EvenlySpacedValues(11)
};

/// \brief A generated workload: issuers plus the query spec they share.
struct Workload {
  std::vector<UncertainObject> issuers;
  RangeQuerySpec spec;
};

/// Generates \p config.queries issuers with square uncertainty regions of
/// half-side u centred uniformly in the space (clamped to stay inside), and
/// the accompanying query spec. When u is 0 a tiny epsilon region is used so
/// pdfs stay well-defined (the paper's u = 0 data points are precise
/// issuers).
Result<Workload> GenerateWorkload(const WorkloadConfig& config);

}  // namespace ilq

#endif  // ILQ_DATAGEN_WORKLOAD_H_
