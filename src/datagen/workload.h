// Query workload generation matching §6.1: square issuer uncertainty
// regions U0 of "size" u (half side length) centred uniformly in the data
// space, square query ranges of size w, uniform issuer pdfs by default and
// Gaussian issuers for the Figure 13 experiment.

#ifndef ILQ_DATAGEN_WORKLOAD_H_
#define ILQ_DATAGEN_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/query.h"
#include "object/catalog.h"
#include "object/uncertain_object.h"

namespace ilq {

/// Issuer pdf family for a workload.
enum class IssuerPdfKind {
  kUniform,   ///< paper default (§6.1)
  kGaussian,  ///< Figure 13 (mean = centre, σ = extent/6)
};

/// \brief One experiment workload: queries sharing (u, w, Qp) with random
/// issuer placements.
struct WorkloadConfig {
  Rect space = Rect(0.0, 10000.0, 0.0, 10000.0);
  double u = 250.0;   ///< issuer uncertainty-region size (half side, §6.1)
  double w = 500.0;   ///< query-range size (half side, §6.1)
  double qp = 0.0;    ///< probability threshold
  size_t queries = 500;  ///< runs per data point (§6.1 averages over 500)
  IssuerPdfKind issuer_pdf = IssuerPdfKind::kUniform;
  uint64_t seed = 7;
  /// Catalog ladder built for each issuer (threshold methods need it).
  std::vector<double> catalog_values;  // empty = EvenlySpacedValues(11)
};

/// \brief A generated workload: issuers plus the query spec they share.
struct Workload {
  std::vector<UncertainObject> issuers;
  RangeQuerySpec spec;
};

/// Generates \p config.queries issuers with square uncertainty regions of
/// half-side u centred uniformly in the space (clamped to stay inside), and
/// the accompanying query spec. When u is 0 a tiny epsilon region is used so
/// pdfs stay well-defined (the paper's u = 0 data points are precise
/// issuers).
Result<Workload> GenerateWorkload(const WorkloadConfig& config);

// ---- Skewed serving traffic ------------------------------------------------

/// \brief Traffic shape for the serving layer's benches and cache
/// scenarios: a pool of distinct registered issuers, re-selected per
/// request with Zipfian rank skew (a handful of hot issuers dominate, the
/// tail is cold — the classic serving distribution).
struct SkewConfig {
  /// Distinct issuers in the pool. They carry ids 1..pool (non-zero, so
  /// the serving layer's AnswerCache may key on them).
  size_t pool = 64;

  /// Requests drawn from the pool (the sequence's length).
  size_t requests = 500;

  /// Zipf exponent s: P(rank k) ∝ 1/k^s. 0 = uniform selection, ~1 =
  /// classic web-traffic skew; larger concentrates harder.
  double zipf_s = 1.0;

  /// When true, pool issuers are placed around a few cluster centres
  /// instead of uniformly — spatially skewed traffic, so some shards run
  /// hot (the scenario shard routing must win on).
  bool clustered = false;

  /// Cluster count for \p clustered placement.
  size_t clusters = 4;

  /// Gaussian spread of issuer centres around their cluster centre, as a
  /// fraction of the space's smaller extent.
  double cluster_spread = 0.05;
};

/// \brief A skewed request stream: the issuer pool plus the per-request
/// selection (request i queries pool[sequence[i]]).
struct SkewedWorkload {
  std::vector<UncertainObject> pool;  ///< ids 1..pool, catalogs attached
  std::vector<size_t> sequence;       ///< indices into pool, one per request
  RangeQuerySpec spec;
};

/// Generates the issuer pool with \p base's geometry knobs (space, u,
/// issuer_pdf, catalog ladder; base.queries is ignored in favour of
/// \p skew.pool) and draws \p skew.requests Zipfian-ranked selections.
/// Deterministic in (base.seed, skew).
Result<SkewedWorkload> GenerateSkewedWorkload(const WorkloadConfig& base,
                                              const SkewConfig& skew);

// ---- Churn (insert/delete/move) streams ------------------------------------

/// \brief Shape of a dynamic-catalog update stream: seeded object sets plus
/// a Zipfian-hotspot-placed sequence of UpdateOps to churn them with (the
/// mobile-object scenario the serving layer's re-split machinery targets).
struct ChurnConfig {
  /// Seeded datasets the stream starts from (point ids 1..initial_points,
  /// uncertain ids 1..initial_uncertains; the namespaces are independent).
  size_t initial_points = 200;
  size_t initial_uncertains = 100;

  /// UpdateOps in the stream.
  size_t ops = 500;

  /// Op mix: P(insert), P(erase); the rest are moves. Erase/move ops fall
  /// back to inserts while the targeted object set is empty, keeping the
  /// stream valid by construction.
  double insert_fraction = 0.25;
  double erase_fraction = 0.25;

  /// P(an op targets the point set); the rest target the uncertain set.
  double point_fraction = 0.5;

  /// Placement skew: inserts/moves land Gaussian-spread around one of
  /// \p hotspots centres, with the centre chosen by Zipfian rank
  /// (P(rank k) ∝ 1/k^s — the same selection machinery as
  /// GenerateSkewedWorkload). 0 = uniform over the hotspots.
  double zipf_s = 1.0;
  size_t hotspots = 4;

  /// Gaussian spread around the chosen hotspot, as a fraction of the
  /// space's smaller extent.
  double hotspot_spread = 0.05;

  /// Half side of generated uncertainty regions (uniform-rect pdfs).
  double object_half_extent = 50.0;
};

/// \brief A generated churn stream: the seed datasets and the op sequence.
/// Replayable against QueryEngine::ApplyUpdates / ShardedEngine::
/// ApplyUpdates in any batching (each op is self-contained and ordered).
struct ChurnWorkload {
  std::vector<PointObject> initial_points;
  std::vector<UncertainObject> initial_uncertains;
  std::vector<UpdateOp> stream;
};

/// Generates the seed datasets and \p churn.ops updates, placed with
/// Zipfian hotspot skew inside \p base.space. Deterministic in
/// (base.seed, base.space, churn) — bit-identical streams for equal
/// inputs, independent of any thread count the replay later uses.
Result<ChurnWorkload> GenerateChurnWorkload(const WorkloadConfig& base,
                                            const ChurnConfig& churn);

// ---- Trajectories (moving issuers) -----------------------------------------

/// Motion model of a generated trajectory.
enum class TrajectoryKind {
  /// Gaussian step around the previous position (local wandering — the
  /// regime valid-region reuse wins on).
  kRandomWalk,
  /// Piecewise-linear motion towards Zipf-ranked hotspot waypoints at a
  /// fixed speed (commuting between a few hot places; crosses the space,
  /// so it also exercises shard-set churn over the wire).
  kWaypoint,
};

/// \brief Shape of a moving-issuer stream for the continuous tier:
/// per-issuer position sequences with per-step imprecision, ready to feed
/// Register / UpdatePosition.
struct TrajectoryConfig {
  /// Trajectories; issuer ids are 1..issuers (non-zero so the serving
  /// cache may key on them).
  size_t issuers = 8;

  /// Positions per trajectory, including the starting one.
  size_t steps = 50;

  TrajectoryKind kind = TrajectoryKind::kRandomWalk;

  /// kRandomWalk: per-axis Gaussian step σ. kWaypoint: distance travelled
  /// per step.
  double step = 100.0;

  /// Per-step imprecision — the square uncertainty region's half side,
  /// drawn uniformly from [u_min, u_max] each step (a GPS whose error
  /// budget fluctuates). Equal bounds pin it.
  double u_min = 50.0;
  double u_max = 50.0;

  /// kWaypoint: waypoint pool placed uniformly in the space, selected by
  /// Zipfian rank (P(rank k) ∝ 1/(k+1)^s) like the other generators'
  /// hotspot machinery. Ignored by kRandomWalk.
  size_t hotspots = 4;
  double zipf_s = 1.0;
};

/// \brief Generated trajectories: steps[i][t] is issuer i's imprecise
/// position at time t, carrying id i+1 and a built catalog ladder.
struct TrajectoryWorkload {
  std::vector<std::vector<UncertainObject>> steps;
  RangeQuerySpec spec;
};

/// Generates \p traj.issuers trajectories of \p traj.steps positions each
/// inside \p base.space, with \p base's pdf family, query spec and catalog
/// ladder. Deterministic in (base, traj), and per-issuer independent: each
/// trajectory draws from Rng(MixSeeds(base.seed, issuer id)), so changing
/// traj.issuers never perturbs the trajectories already generated.
Result<TrajectoryWorkload> GenerateTrajectoryWorkload(
    const WorkloadConfig& base, const TrajectoryConfig& traj);

}  // namespace ilq

#endif  // ILQ_DATAGEN_WORKLOAD_H_
