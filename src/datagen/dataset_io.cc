#include "datagen/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ilq {

namespace {

// Accepts comma- or whitespace-separated doubles; returns how many parsed.
size_t ParseDoubles(const std::string& line, double* out, size_t want) {
  std::string normalized = line;
  for (char& c : normalized) {
    if (c == ',' || c == ';' || c == '\t') c = ' ';
  }
  std::istringstream in(normalized);
  size_t got = 0;
  while (got < want && (in >> out[got])) ++got;
  return got;
}

}  // namespace

Status SavePointsCsv(const std::string& path,
                     const std::vector<PointObject>& points) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "# x,y\n";
  char buf[96];
  for (const PointObject& p : points) {
    std::snprintf(buf, sizeof(buf), "%.10g,%.10g\n", p.location.x,
                  p.location.y);
    out << buf;
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<PointObject>> LoadPointsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::vector<PointObject> points;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    double vals[2];
    if (ParseDoubles(line, vals, 2) != 2) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'x,y'");
    }
    points.emplace_back(static_cast<ObjectId>(points.size() + 1),
                        Point(vals[0], vals[1]));
  }
  return points;
}

Status SaveRectsCsv(const std::string& path, const std::vector<Rect>& rects) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "# xmin,ymin,xmax,ymax\n";
  char buf[160];
  for (const Rect& r : rects) {
    std::snprintf(buf, sizeof(buf), "%.10g,%.10g,%.10g,%.10g\n", r.xmin,
                  r.ymin, r.xmax, r.ymax);
    out << buf;
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Rect>> LoadRectsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::vector<Rect> rects;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    double v[4];
    if (ParseDoubles(line, v, 4) != 4) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'xmin,ymin,xmax,ymax'");
    }
    const Rect r(v[0], v[2], v[1], v[3]);
    if (r.IsEmpty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": inverted rectangle");
    }
    rects.push_back(r);
  }
  return rects;
}

}  // namespace ilq
