#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "prob/gaussian_pdf.h"
#include "prob/uniform_pdf.h"

namespace ilq {

namespace {

// A road-like segment with endpoints inside the space.
struct Segment {
  Point a;
  Point b;
};

std::vector<Segment> MakeSegments(const Rect& space, size_t count,
                                  Rng* rng) {
  std::vector<Segment> segments;
  segments.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Segment anchored at a random point with a random direction and a
    // length between 2% and 30% of the space diagonal — mimics a mix of
    // short streets and long arterials.
    const Point a(rng->Uniform(space.xmin, space.xmax),
                  rng->Uniform(space.ymin, space.ymax));
    const double diag = std::sqrt(space.Width() * space.Width() +
                                  space.Height() * space.Height());
    const double len = rng->Uniform(0.02, 0.30) * diag;
    const double theta = rng->Uniform(0.0, 2.0 * 3.14159265358979323846);
    Point b(a.x + len * std::cos(theta), a.y + len * std::sin(theta));
    b.x = std::clamp(b.x, space.xmin, space.xmax);
    b.y = std::clamp(b.y, space.ymin, space.ymax);
    segments.push_back({a, b});
  }
  return segments;
}

Point SamplePointOnSegments(const std::vector<Segment>& segments,
                            const Rect& space, double jitter, Rng* rng) {
  const Segment& s = segments[rng->NextBelow(segments.size())];
  const double t = rng->NextDouble();
  Point p(s.a.x + t * (s.b.x - s.a.x), s.a.y + t * (s.b.y - s.a.y));
  p.x = std::clamp(p.x + rng->Gaussian(0.0, jitter), space.xmin, space.xmax);
  p.y = std::clamp(p.y + rng->Gaussian(0.0, jitter), space.ymin, space.ymax);
  return p;
}

}  // namespace

std::vector<PointObject> GenerateCaliforniaLikePoints(
    const SyntheticConfig& config) {
  ILQ_CHECK(!config.space.IsEmpty(), "space must be non-empty");
  Rng rng(config.seed);
  const std::vector<Segment> segments =
      MakeSegments(config.space, std::max<size_t>(1, config.segments), &rng);
  std::vector<PointObject> points;
  points.reserve(config.count);
  for (size_t i = 0; i < config.count; ++i) {
    Point p;
    if (rng.NextDouble() < config.background_fraction) {
      p = Point(rng.Uniform(config.space.xmin, config.space.xmax),
                rng.Uniform(config.space.ymin, config.space.ymax));
    } else {
      p = SamplePointOnSegments(segments, config.space, config.jitter, &rng);
    }
    points.emplace_back(static_cast<ObjectId>(i + 1), p);
  }
  return points;
}

std::vector<Rect> GenerateLongBeachLikeRects(const RectangleConfig& config) {
  const SyntheticConfig& base = config.base;
  ILQ_CHECK(!base.space.IsEmpty(), "space must be non-empty");
  ILQ_CHECK(config.min_side > 0.0 && config.min_side <= config.max_side,
            "invalid side bounds");
  Rng rng(base.seed);
  const std::vector<Segment> segments =
      MakeSegments(base.space, std::max<size_t>(1, base.segments), &rng);

  std::vector<Rect> rects;
  rects.reserve(base.count);
  for (size_t i = 0; i < base.count; ++i) {
    Point c;
    if (rng.NextDouble() < base.background_fraction) {
      c = Point(rng.Uniform(base.space.xmin, base.space.xmax),
                rng.Uniform(base.space.ymin, base.space.ymax));
    } else {
      c = SamplePointOnSegments(segments, base.space, base.jitter, &rng);
    }
    // Exponential side lengths (footprints of parcels/blocks are heavily
    // right-skewed), clamped to the configured range.
    auto draw_side = [&]() {
      double u = rng.NextDouble();
      while (u <= 1e-12) u = rng.NextDouble();
      const double side = -config.mean_side * std::log(u);
      return std::clamp(side, config.min_side, config.max_side);
    };
    const double half_w = 0.5 * draw_side();
    const double half_h = 0.5 * draw_side();
    Rect r(c.x - half_w, c.x + half_w, c.y - half_h, c.y + half_h);
    // Keep the region inside the space so the index bounds stay tight.
    r.xmin = std::max(r.xmin, base.space.xmin);
    r.xmax = std::min(r.xmax, base.space.xmax);
    r.ymin = std::max(r.ymin, base.space.ymin);
    r.ymax = std::min(r.ymax, base.space.ymax);
    // Clamping at a space border can leave a sliver; restore the minimum
    // side by growing back into the space.
    if (r.Width() < config.min_side) {
      if (r.xmin > base.space.xmin) {
        r.xmin = r.xmax - config.min_side;
      } else {
        r.xmax = r.xmin + config.min_side;
      }
    }
    if (r.Height() < config.min_side) {
      if (r.ymin > base.space.ymin) {
        r.ymin = r.ymax - config.min_side;
      } else {
        r.ymax = r.ymin + config.min_side;
      }
    }
    rects.push_back(r);
  }
  return rects;
}

Result<std::vector<UncertainObject>> MakeUniformUncertainObjects(
    const std::vector<Rect>& regions) {
  std::vector<UncertainObject> objects;
  objects.reserve(regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    Result<UniformRectPdf> pdf = UniformRectPdf::Make(regions[i]);
    if (!pdf.ok()) return pdf.status();
    objects.emplace_back(
        static_cast<ObjectId>(i + 1),
        std::make_unique<UniformRectPdf>(std::move(pdf).ValueOrDie()));
  }
  return objects;
}

Result<std::vector<UncertainObject>> MakeGaussianUncertainObjects(
    const std::vector<Rect>& regions) {
  std::vector<UncertainObject> objects;
  objects.reserve(regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    Result<TruncatedGaussianPdf> pdf =
        TruncatedGaussianPdf::MakePaperDefault(regions[i]);
    if (!pdf.ok()) return pdf.status();
    objects.emplace_back(
        static_cast<ObjectId>(i + 1),
        std::make_unique<TruncatedGaussianPdf>(std::move(pdf).ValueOrDie()));
  }
  return objects;
}

}  // namespace ilq
