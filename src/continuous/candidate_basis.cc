#include "continuous/candidate_basis.h"

#include <algorithm>
#include <utility>

namespace ilq {

Result<CandidateBasis> BuildCandidateBasis(const QueryEngine& engine,
                                           QueryMethod method,
                                           const Rect& valid_region,
                                           const RangeQuerySpec& spec) {
  if (valid_region.IsEmpty()) {
    return Status::InvalidArgument("valid region must be non-empty");
  }
  CandidateBasis basis;
  basis.valid_region = valid_region;
  basis.prefetch_box = valid_region.Expanded(spec.w, spec.h);

  // Pin one snapshot for the whole prefetch so the candidate copies and
  // the recorded epoch describe the same engine state even under
  // concurrent ApplyUpdates.
  const QueryEngine::SnapshotPtr snap = engine.snapshot();
  basis.epoch = snap->epoch();

  RTreeOptions options;
  options.page_size_bytes = engine.config().page_size_bytes;

  if (QueryMethodUsesPoints(method)) {
    // Point entries are degenerate boxes (Rect::AtPoint), so the visited
    // MBR *is* the object's location — the copy is exact by construction.
    std::vector<RTree::Item> items;
    snap->point_index.Query(basis.prefetch_box,
                            [&](const Rect& box, ObjectId id) {
                              basis.points.push_back(
                                  PointObject{id, Point(box.xmin, box.ymin)});
                            });
    // Traversal order depends on tree shape; sort for a deterministic
    // basis layout (ids unique per the engine's update contract).
    std::sort(basis.points.begin(), basis.points.end(),
              [](const PointObject& a, const PointObject& b) {
                return a.id < b.id;
              });
    items.reserve(basis.points.size());
    for (const PointObject& p : basis.points) {
      items.push_back({Rect::AtPoint(p.location), p.id});
    }
    auto tree = RTree::BulkLoad(options, std::move(items));
    ILQ_RETURN_NOT_OK(tree.status());
    basis.point_index = std::move(tree).ValueOrDie();
    return basis;
  }

  // Uncertain methods: index ids are positions into the engine's object
  // vector. Collect the positions, copy the objects (U-catalogs ride
  // along), and re-key the mini index by the *new* positions 0..k-1.
  std::vector<ObjectId> positions;
  snap->uncertain_index.Query(basis.prefetch_box,
                              [&](const Rect&, ObjectId pos) {
                                positions.push_back(pos);
                              });
  std::sort(positions.begin(), positions.end());
  const std::vector<UncertainObject>& all = snap->catalog->uncertains;
  basis.uncertains.reserve(positions.size());
  std::vector<RTree::Item> items;
  items.reserve(positions.size());
  for (ObjectId pos : positions) {
    if (static_cast<size_t>(pos) >= all.size()) {
      return Status::Internal("uncertain index id out of catalog range");
    }
    const ObjectId mini_pos = static_cast<ObjectId>(basis.uncertains.size());
    basis.uncertains.push_back(all[static_cast<size_t>(pos)]);
    items.push_back({basis.uncertains.back().region(), mini_pos});
  }
  auto tree = RTree::BulkLoad(options, std::move(items));
  ILQ_RETURN_NOT_OK(tree.status());
  basis.uncertain_index = std::move(tree).ValueOrDie();

  if (method == QueryMethod::kCiuqPti && !basis.uncertains.empty()) {
    auto pti = PTI::Build(
        PTIOptions(engine.config().page_size_bytes,
                   engine.config().catalog_values.size()),
        basis.uncertains);
    ILQ_RETURN_NOT_OK(pti.status());
    basis.pti = std::move(pti).ValueOrDie();
  }
  return basis;
}

}  // namespace ilq
