#include "continuous/replay.h"

#include "common/logging.h"
#include "core/basic_eval.h"
#include "core/cipq.h"
#include "core/ciuq.h"
#include "core/ipq.h"
#include "core/iuq.h"

namespace ilq {

AnswerSet ReplayQueryMethod(const CandidateBasis& basis,
                            const EngineConfig& config, QueryMethod method,
                            const UncertainObject& issuer,
                            const BatchSpec& spec, IndexStats* stats) {
  ILQ_CHECK(basis.valid_region.ContainsRect(issuer.region()),
            "replay outside the basis valid region");
  AnswerSet answers;
  if (QueryMethodUsesPoints(method)) {
    ILQ_CHECK(basis.point_index.has_value(),
              "point-family replay needs a point basis");
    const RTree& index = *basis.point_index;
    switch (method) {
      case QueryMethod::kIpq:
        answers = EvaluateIPQ(index, issuer, spec.query, config.eval, stats);
        break;
      case QueryMethod::kIpqBasic:
        answers = EvaluateIPQBasic(index, basis.points, issuer, spec.query,
                                   config.basic, stats);
        break;
      case QueryMethod::kCipqPExpanded:
        answers = EvaluateCIPQ(index, issuer, spec.query,
                               CipqFilter::kPExpanded, config.eval, stats);
        break;
      case QueryMethod::kCipqMinkowski:
        answers = EvaluateCIPQ(index, issuer, spec.query,
                               CipqFilter::kMinkowski, config.eval, stats);
        break;
      default:
        ILQ_CHECK(false, "point-family dispatch out of sync");
    }
  } else {
    ILQ_CHECK(basis.uncertain_index.has_value(),
              "uncertain-family replay needs an uncertain basis");
    const RTree& index = *basis.uncertain_index;
    switch (method) {
      case QueryMethod::kIuq:
        answers = EvaluateIUQ(index, basis.uncertains, issuer, spec.query,
                              config.eval, stats);
        break;
      case QueryMethod::kIuqBasic:
        answers = EvaluateIUQBasic(index, basis.uncertains, issuer,
                                   spec.query, config.basic, stats);
        break;
      case QueryMethod::kCiuqRTree:
        answers = EvaluateCIUQRTree(index, basis.uncertains, issuer,
                                    spec.query, config.eval, stats);
        break;
      case QueryMethod::kCiuqPti:
        // Mirrors QueryEngine::CiuqPti: no PTI (empty uncertain set) means
        // an empty answer.
        if (!basis.pti.has_value()) return {};
        answers = EvaluateCIUQPTI(*basis.pti, basis.uncertains, issuer,
                                  spec.query, config.eval, spec.prune, stats);
        break;
      default:
        ILQ_CHECK(false, "uncertain-family dispatch out of sync");
    }
  }
  CanonicalizeAnswers(&answers);
  return answers;
}

}  // namespace ilq
