#include "continuous/inn_session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace ilq {

Result<InnBasis> BuildInnBasis(const QueryEngine& engine,
                               const Rect& valid_region) {
  if (valid_region.IsEmpty()) {
    return Status::InvalidArgument("valid region must be non-empty");
  }
  InnBasis basis;
  basis.valid_region = valid_region;

  const QueryEngine::SnapshotPtr snap = engine.snapshot();
  basis.epoch = snap->epoch();

  RTreeOptions options;
  options.page_size_bytes = engine.config().page_size_bytes;

  if (snap->point_index.size() > 0) {
    // Anchors: the 2-NN of the region centre. With a single object in the
    // dataset the second anchor degenerates to the first, which still
    // yields a sound (just looser) radius.
    const std::vector<RTree::Neighbor> anchors =
        snap->point_index.Nearest(valid_region.Center(), 2);
    ILQ_CHECK(!anchors.empty(), "non-empty index returned no neighbour");
    const Rect& v = valid_region;
    const Point corners[4] = {Point(v.xmin, v.ymin), Point(v.xmax, v.ymin),
                              Point(v.xmax, v.ymax), Point(v.xmin, v.ymax)};
    for (const RTree::Neighbor& anchor : anchors) {
      const Point a = anchor.box.Center();
      for (const Point& corner : corners) {
        basis.radius = std::max(basis.radius, corner.DistanceTo(a));
      }
    }
    snap->point_index.Query(
        valid_region.Expanded(basis.radius, basis.radius),
        [&](const Rect& box, ObjectId id) {
          const Point s = box.Center();
          if (valid_region.MinDistanceTo(s) <= basis.radius) {
            basis.candidates.push_back(PointObject{id, s});
          }
        });
    std::sort(basis.candidates.begin(), basis.candidates.end(),
              [](const PointObject& a, const PointObject& b) {
                return a.id < b.id;
              });
  }

  std::vector<RTree::Item> items;
  items.reserve(basis.candidates.size());
  for (const PointObject& p : basis.candidates) {
    items.push_back({Rect::AtPoint(p.location), p.id});
  }
  auto tree = RTree::BulkLoad(options, std::move(items));
  ILQ_RETURN_NOT_OK(tree.status());
  basis.index = std::move(tree).ValueOrDie();
  return basis;
}

AnswerSet ReplayInn(const InnBasis& basis, const UncertainObject& issuer,
                    const InnOptions& options, IndexStats* stats) {
  ILQ_CHECK(basis.valid_region.ContainsRect(issuer.region()),
            "INN replay outside the basis valid region");
  ILQ_CHECK(basis.index.has_value(), "INN basis has no index");
  return EvaluateINN(*basis.index, issuer, options, stats);
}

double InnSupportMargin(const InnBasis& basis, const Rect& issuer_region,
                        const AnswerSet& answers) {
  if (answers.empty()) return 0.0;
  if (basis.candidates.size() < 2) {
    return std::numeric_limits<double>::infinity();
  }
  // Winner = highest probability, smaller id on ties (EvaluateINN answers
  // are id-sorted, so the first strict maximum is that).
  const ProbabilisticAnswer* winner = &answers.front();
  for (const ProbabilisticAnswer& a : answers) {
    if (a.probability > winner->probability) winner = &a;
  }
  const auto it = std::lower_bound(
      basis.candidates.begin(), basis.candidates.end(), winner->id,
      [](const PointObject& p, ObjectId id) { return p.id < id; });
  ILQ_CHECK(it != basis.candidates.end() && it->id == winner->id,
            "winner missing from the basis candidate set");
  const Point w = it->location;

  const Point c = issuer_region.Center();
  const double hw = issuer_region.Width() * 0.5;
  const double hh = issuer_region.Height() * 0.5;
  double margin = std::numeric_limits<double>::infinity();
  for (const PointObject& rival : basis.candidates) {
    if (rival.id == winner->id) continue;
    // Perpendicular bisector of (w, rival): n·x = c0 with
    // n = rival − w, c0 = (|rival|² − |w|²) / 2.
    const double nx = rival.location.x - w.x;
    const double ny = rival.location.y - w.y;
    const double norm = std::sqrt(nx * nx + ny * ny);
    if (norm == 0.0) return 0.0;  // co-located rival: no stable margin
    const double c0 = 0.5 * (rival.location.x * rival.location.x +
                             rival.location.y * rival.location.y -
                             (w.x * w.x + w.y * w.y));
    // Distance from the issuer rectangle to the line: centre distance
    // minus the rectangle's support radius along the line normal.
    const double center_dist = std::abs(nx * c.x + ny * c.y - c0) / norm;
    const double support = (std::abs(nx) * hw + std::abs(ny) * hh) / norm;
    margin = std::min(margin, std::max(0.0, center_dist - support));
  }
  return margin;
}

}  // namespace ilq
